#!/usr/bin/env python3
"""Run Clang Thread Safety Analysis over the whole tree as a pass/fail check.

Compiles every .cpp under src/ (and the model checker under tests/model/)
with `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety`, so any
violation of the ORWL_GUARDED_BY / ORWL_REQUIRES / ORWL_EXCLUDES annotations
(src/support/thread_annotations.h) fails the check. Syntax-only: no objects
are produced and no build directory is needed.

Exit codes: 0 = clean, 1 = violations (or clang errors), 77 = clang not
available (ctest SKIP_RETURN_CODE; the CI leg installs clang, so the check
gates there).

Usage: tools/check_thread_safety.py [--clang CLANG++] [--jobs N]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import glob
import os
import shutil
import subprocess
import sys

SKIP = 77


def find_clang(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang", help="clang++ binary to use")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args()

    clang = find_clang(args.clang)
    if clang is None:
        print("check_thread_safety: clang++ not found — skipping "
              "(Thread Safety Analysis is clang-only)", file=sys.stderr)
        return SKIP

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sources = sorted(
        glob.glob(os.path.join(root, "src", "**", "*.cpp"), recursive=True)
        + glob.glob(os.path.join(root, "tests", "model", "*.cpp")))
    if not sources:
        print("check_thread_safety: no sources found", file=sys.stderr)
        return 1

    cmd_base = [
        clang, "-std=c++20", "-fsyntax-only",
        "-Wthread-safety", "-Werror=thread-safety",
        "-I", os.path.join(root, "src"),
        "-I", os.path.join(root, "tests"),
    ]

    def check(src: str) -> tuple[str, subprocess.CompletedProcess]:
        return src, subprocess.run(cmd_base + [src], capture_output=True,
                                   text=True)

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for src, proc in pool.map(check, sources):
            rel = os.path.relpath(src, root)
            if proc.returncode != 0:
                failures += 1
                print(f"FAIL {rel}", file=sys.stderr)
                sys.stderr.write(proc.stderr)
            elif proc.stderr.strip():
                # Non-fatal diagnostics still worth surfacing in logs.
                sys.stderr.write(proc.stderr)

    if failures:
        print(f"check_thread_safety: {failures}/{len(sources)} files failed",
              file=sys.stderr)
        return 1
    print(f"check_thread_safety: {len(sources)} files clean under "
          f"{clang} -Wthread-safety")
    return 0


if __name__ == "__main__":
    sys.exit(main())
