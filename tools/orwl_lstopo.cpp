// orwl-lstopo: print a machine topology, lstopo-style, plus the NUMA node
// inventory (cpus, memory size, SLIT distances) placement and memory
// decisions are based on.
//
// Usage:
//   orwl-lstopo                      # detected host machine
//   orwl-lstopo "pack:24 core:8 pu:1"
//   orwl-lstopo --dot [spec]         # graphviz output
//   orwl-lstopo --sysfs <root> [..]  # detect from an alternate sysfs root

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mem/numa.h"
#include "topo/sysfs.h"
#include "topo/topology.h"

namespace {

std::string fmt_bytes(long long bytes) {
  if (bytes < 0) return "?";
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= (1LL << 30))
    os << static_cast<double>(bytes) / (1LL << 30) << " GiB";
  else if (bytes >= (1LL << 20))
    os << static_cast<double>(bytes) / (1LL << 20) << " MiB";
  else
    os << bytes << " B";
  return os.str();
}

/// Logical indices of the tree objects of `type` whose cpuset intersects
/// `cpus` — which packages / L3 domains a NUMA node's CPUs live under.
std::string grouping_for(const orwl::topo::Topology& topo,
                         orwl::topo::ObjType type,
                         const orwl::topo::Bitmap& cpus) {
  std::ostringstream os;
  bool any = false;
  for (int d = 0; d < topo.depth(); ++d) {
    for (const orwl::topo::Object* obj : topo.level(d)) {
      if (obj->type != type || !obj->cpuset.intersects(cpus)) continue;
      if (any) os << ',';
      os << obj->logical_index;
      any = true;
    }
  }
  return any ? os.str() : std::string();
}

/// The node inventory: memory sizes and distances are what numa_local /
/// numa_interleave placement trades off, so make them inspectable. The
/// package/L3 grouping next to each node shows the combiner-handoff
/// locality domains (topo::current_node_id feeds sync::Combiner) at a
/// glance — on most machines node == package, but multi-node packages
/// (sub-NUMA clustering) and multi-package nodes both exist.
void print_numa(const orwl::mem::NumaInfo& numa,
                const orwl::topo::Topology& topo) {
  if (!numa.available()) {
    std::cout << "numa: no nodes exposed (memory policies fall back)\n";
    return;
  }
  std::cout << "numa: " << numa.num_nodes() << " node"
            << (numa.num_nodes() == 1 ? "" : "s") << '\n';
  for (const orwl::mem::NumaNode& node : numa.nodes()) {
    std::cout << "  node" << node.id << ": cpus "
              << node.cpus.to_list_string() << "  mem "
              << fmt_bytes(node.mem_bytes);
    const std::string packs =
        grouping_for(topo, orwl::topo::ObjType::Package, node.cpus);
    if (!packs.empty()) std::cout << "  package " << packs;
    const std::string l3s =
        grouping_for(topo, orwl::topo::ObjType::L3, node.cpus);
    if (!l3s.empty()) std::cout << "  l3 " << l3s;
    if (!node.distances.empty()) {
      std::cout << "  distance";
      for (const int d : node.distances) std::cout << ' ' << d;
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orwl::topo;

  bool dot = false;
  std::string sysfs_root;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg == "--sysfs") {
      if (++i >= argc) {
        std::cerr << "orwl-lstopo: --sysfs needs a path\n";
        return 1;
      }
      sysfs_root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: orwl-lstopo [--dot] [--sysfs <root>] "
                   "[synthetic-spec]\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }

  Topology topo = Topology::flat(1);
  try {
    if (!positional.empty()) {
      topo = Topology::synthetic(positional.front());
    } else if (!sysfs_root.empty()) {
      auto detected = detect_from_sysfs(sysfs_root);
      if (!detected) {
        std::cerr << "orwl-lstopo: no topology under '" << sysfs_root
                  << "'\n";
        return 1;
      }
      topo = std::move(*detected);
    } else {
      topo = Topology::host();
    }
  } catch (const std::exception& e) {
    std::cerr << "orwl-lstopo: " << e.what() << '\n';
    return 1;
  }

  if (dot) {
    std::cout << topo.to_dot();
  } else {
    std::cout << "machine: " << topo.summary() << " — " << topo.num_pus()
              << " PUs, depth " << topo.depth() << '\n'
              << topo.to_string();
    // NUMA inventory comes from sysfs, so it only applies to detected
    // machines — a synthetic spec has no node directories to read.
    if (positional.empty())
      print_numa(orwl::mem::NumaInfo::detect(
                     sysfs_root.empty() ? "/sys" : sysfs_root),
                 topo);
  }
  return 0;
}
