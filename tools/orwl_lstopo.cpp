// orwl-lstopo: print a machine topology, lstopo-style.
//
// Usage:
//   orwl-lstopo                      # detected host machine
//   orwl-lstopo "pack:24 core:8 pu:1"
//   orwl-lstopo --dot [spec]         # graphviz output
//   orwl-lstopo --sysfs <root> [..]  # detect from an alternate sysfs root

#include <iostream>
#include <string>
#include <vector>

#include "topo/sysfs.h"
#include "topo/topology.h"

int main(int argc, char** argv) {
  using namespace orwl::topo;

  bool dot = false;
  std::string sysfs_root;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg == "--sysfs") {
      if (++i >= argc) {
        std::cerr << "orwl-lstopo: --sysfs needs a path\n";
        return 1;
      }
      sysfs_root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: orwl-lstopo [--dot] [--sysfs <root>] "
                   "[synthetic-spec]\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }

  Topology topo = Topology::flat(1);
  try {
    if (!positional.empty()) {
      topo = Topology::synthetic(positional.front());
    } else if (!sysfs_root.empty()) {
      auto detected = detect_from_sysfs(sysfs_root);
      if (!detected) {
        std::cerr << "orwl-lstopo: no topology under '" << sysfs_root
                  << "'\n";
        return 1;
      }
      topo = std::move(*detected);
    } else {
      topo = Topology::host();
    }
  } catch (const std::exception& e) {
    std::cerr << "orwl-lstopo: " << e.what() << '\n';
    return 1;
  }

  if (dot) {
    std::cout << topo.to_dot();
  } else {
    std::cout << "machine: " << topo.summary() << " — " << topo.num_pus()
              << " PUs, depth " << topo.depth() << '\n'
              << topo.to_string();
  }
  return 0;
}
