#!/usr/bin/env python3
"""Chrome/Perfetto trace validator for obs::write_chrome_trace output.

Two modes, stdlib only:

  python3 tools/check_trace.py TRACE.json [TRACE2.json ...]
      validate already-written trace files;

  python3 tools/check_trace.py --bench PATH/TO/orwl_bench
      run a small runtime-backend workload with --trace into a temp
      directory, then validate what came out — the end-to-end path the
      `trace_check` CTest exercises.

What "valid" means here (the exporter's own contract, docs/observability.md):
  1. the file parses as JSON with a `traceEvents` array and an
     `otherData.dropped` integer >= 0;
  2. every event carries a known phase (B, E, i, M), metadata events a
     `thread_name`, and every non-metadata event an integer `tid` and a
     numeric `ts` in microseconds;
  3. per tid, `ts` is non-decreasing in file order — collect() sorts each
     thread's ring by timestamp, so disorder means exporter breakage;
  4. per tid, B/E spans are balanced with stack discipline: every E matches
     the name of the innermost open B, and nothing stays open at the end.
     The exporter sanitizes ring-overwrite artifacts (orphaned E becomes an
     instant, unclosed B is closed at the last timestamp), so an imbalance
     in the OUTPUT is a bug no matter what the ring dropped.

Exit status 0 when every file is clean; 1 with a per-finding report.
"""

import json
import os
import subprocess
import sys
import tempfile

KNOWN_PHASES = {"B", "E", "i", "M"}


def validate(path, errors):
    tag = os.path.basename(path)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{tag}: unreadable or invalid JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{tag}: no traceEvents array")
        return
    dropped = doc.get("otherData", {}).get("dropped")
    if not isinstance(dropped, int) or dropped < 0:
        errors.append(f"{tag}: otherData.dropped missing or negative")

    last_ts = {}    # tid -> latest ts seen
    open_spans = {} # tid -> stack of open B names
    for n, ev in enumerate(events):
        where = f"{tag}: event {n}"
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if ev.get("name") != "thread_name":
                errors.append(f"{where}: unexpected metadata {ev.get('name')!r}")
            continue
        tid = ev.get("tid")
        ts = ev.get("ts")
        if not isinstance(tid, int) or not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing integer tid or numeric ts")
            continue
        if ts < last_ts.get(tid, 0):
            errors.append(
                f"{where}: ts {ts} goes backwards on tid {tid} "
                f"(previous {last_ts[tid]})")
        last_ts[tid] = ts
        stack = open_spans.setdefault(tid, [])
        if ph == "B":
            stack.append(ev.get("name"))
        elif ph == "E":
            if not stack:
                errors.append(f"{where}: E with no open span on tid {tid}")
            else:
                stack.pop()
    for tid, stack in sorted(open_spans.items()):
        if stack:
            errors.append(
                f"{tag}: tid {tid} ends with unclosed span(s) {stack}")
    if not any(isinstance(e, dict) and e.get("ph") != "M" for e in events):
        errors.append(f"{tag}: trace contains no events")


def run_bench(bench, tmpdir):
    """Produce runtime- and sim-backend traces with the real binary."""
    paths = []
    for backend in ("runtime", "sim"):
        out = os.path.join(tmpdir, f"trace_{backend}.json")
        cmd = [
            bench, "--workload", "stencil2d", "--policy", "none",
            "--backend", backend, "--tasks", "4", "--size", "64",
            "--iters", "4", "--reps", "1", "--warmup", "0",
            "--trace", out,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"bench run failed: {' '.join(cmd)}")
        paths.append(out)
    return paths


def main(argv):
    errors = []
    if len(argv) >= 2 and argv[0] == "--bench":
        with tempfile.TemporaryDirectory() as tmpdir:
            for path in run_bench(argv[1], tmpdir):
                validate(path, errors)
    elif argv and not argv[0].startswith("-"):
        for path in argv:
            validate(path, errors)
    else:
        sys.stderr.write(__doc__)
        return 2
    if errors:
        for e in errors:
            print(e)
        print(f"{len(errors)} trace problem(s)")
        return 1
    print("traces OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
