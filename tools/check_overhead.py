#!/usr/bin/env python3
"""Tracing-disabled overhead smoke check.

The obs/ trace hooks are compiled into every grant/acquire/release path and
gated by one relaxed load. This check asserts the gate actually is that
cheap: it runs micro_orwl_overhead fresh (tracing compiled in, DISABLED —
the default state) and compares each case's median against the recorded
BENCH_micro_orwl_overhead.json, failing when a case regresses past the
tolerance.

  python3 tools/check_overhead.py --bench build/micro_orwl_overhead \\
      [--baseline BENCH_micro_orwl_overhead.json] [--tolerance 0.5]
      [--reps 5] [--warmup 1]

  python3 tools/check_overhead.py --fresh NEW.json [--baseline ...]
      compare an already-written recording instead of running the bench.

The default tolerance is deliberately generous (50%): CI machines are
noisy and shared, and the point is to catch a hook that turned into a
syscall or a lock — an order-of-magnitude smell — not to re-litigate
single-digit noise. Recordings made on different hosts are incomparable;
the check warns and passes when host names differ.

Exit status: 0 within tolerance (or hosts differ), 1 on regression, 2 on
usage errors.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    medians = {b["name"]: b["seconds_median"] for b in doc["benchmarks"]}
    return doc.get("context", {}), medians


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", help="micro_orwl_overhead binary to run")
    ap.add_argument("--fresh", help="already-written recording to compare")
    ap.add_argument("--baseline", default="BENCH_micro_orwl_overhead.json")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional regression (default 0.5)")
    ap.add_argument("--reps", type=int, default=5)
    ap.add_argument("--warmup", type=int, default=1)
    args = ap.parse_args()
    if bool(args.bench) == bool(args.fresh):
        ap.error("exactly one of --bench / --fresh is required")

    base_ctx, base = load(args.baseline)
    if args.bench:
        with tempfile.TemporaryDirectory() as tmpdir:
            out = os.path.join(tmpdir, "fresh.json")
            cmd = [args.bench, "--reps", str(args.reps),
                   "--warmup", str(args.warmup), "--json", out]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                sys.stderr.write(proc.stdout + proc.stderr)
                raise SystemExit(f"bench run failed: {' '.join(cmd)}")
            fresh_ctx, fresh = load(out)
    else:
        fresh_ctx, fresh = load(args.fresh)

    base_host = base_ctx.get("host_name", "")
    fresh_host = fresh_ctx.get("host_name", "")
    if base_host and fresh_host and base_host != fresh_host:
        print(f"hosts differ ({fresh_host} vs recorded {base_host}); "
              "timings are incomparable — skipping")
        return 0

    failures = []
    for name in sorted(set(base) & set(fresh)):
        limit = base[name] * (1.0 + args.tolerance)
        verdict = "FAIL" if fresh[name] > limit else "ok"
        print(f"{verdict:4} {name}: {fresh[name]:.9f}s vs baseline "
              f"{base[name]:.9f}s (limit {limit:.9f}s)")
        if fresh[name] > limit:
            failures.append(name)
    missing = sorted(set(base) - set(fresh))
    if missing:
        print(f"note: baseline-only cases not compared: {', '.join(missing)}")
    if failures:
        print(f"{len(failures)} case(s) regressed past "
              f"{args.tolerance:.0%}")
        return 1
    print("overhead within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
