// orwl_bench: benchmark any registered workload across placement policies
// and backends through the shared harness, with the measured-matrix
// feedback mode of the paper as a first-class flag.
//
//   orwl_bench --list
//   orwl_bench --workload stencil2d --policy treematch --backend sim
//              --json out.json
//   orwl_bench --workload all --policy all --backend both --feedback
//
// Policies: none | compact | scatter | random | treematch | all.
// Backends: runtime (host execution) | sim (NUMA model) | both.
// --feedback re-places with TreeMatch on the comm matrix measured during
// the static runs and reports the speedup per case.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench.h"
#include "obs/export.h"
#include "support/table.h"
#include "support/time.h"

namespace {

using namespace orwl;

int usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " --list | --list-names\n"
     << "       " << argv0 << " --workload NAME|all [options]\n"
     << "options:\n"
     << "  --policy P      none|compact|scatter|random|treematch|all "
        "(default treematch)\n"
     << "  --backend B     runtime|sim|both (default sim)\n"
     << "  --topo SPEC     sim topology, e.g. 'pack:4 core:8 pu:1' "
        "(default: paper machine)\n"
     << "  --tasks N --size S --iters I   scale overrides (default: "
        "per-workload)\n"
     << "  --warmup W      warmup runs (default 1)\n"
     << "  --reps R        timed repetitions (default 3)\n"
     << "  --feedback      measured-matrix TreeMatch re-placement phase\n"
     << "  --replace M     online re-placement: off|every_epoch|on_drift "
        "(default off);\n"
     << "                  each case runs twice — static, then with the "
        "policy — so\n"
     << "                  the adaptive win is visible side by side\n"
     << "  --epoch N       epoch length in iterations for --replace "
        "(default 2)\n"
     << "  --tau X         on_drift threshold in [0,1] (default 0.25)\n"
     << "  --wait-strategy S   runtime-backend wait strategy: block | spin "
        "|\n"
     << "                  spin_then_park[(N)] (default: runtime default, "
        "block)\n"
     << "  --memory-policy P   location memory: heap | numa_local | "
        "numa_interleave\n"
     << "                  (default heap); a non-heap policy runs each "
        "case twice —\n"
     << "                  heap, then the policy — so the memory win is "
        "visible\n"
     << "                  side by side\n"
     << "  --no-verify     skip result verification\n"
     << "  --seed N        placement / simulation seed (default 42)\n"
     << "  --json PATH     write machine-readable results (BENCH_*.json)\n"
     << "  --trace PATH    record a Chrome/Perfetto trace of each case's "
        "last\n"
        "                  timed run (open at ui.perfetto.dev); with "
        "multiple\n"
        "                  cases the case name is spliced into PATH. "
        "Recording\n"
        "                  overhead lands in the measured time — trace OR\n"
        "                  measure, not both at once\n"
     << "  --metrics       collect and print the runtime metric registry "
        "per\n"
        "                  case (grant counters, wait/latency histograms)\n";
  return code;
}

std::string fmt_stats(const harness::Stats& s) {
  return orwl::format_seconds(s.median) + " ±" + orwl::format_seconds(s.mad);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(argv[0], 2);

  std::string workload, policy_arg = "treematch", backend_arg = "sim";
  harness::CaseSpec base;
  bool tasks_set = false, size_set = false, iters_set = false;
  std::string json_path;
  place::ReplacementPolicy replace;
  replace.epoch_length = 2;
  mem::MemoryPolicy mempol = mem::MemoryPolicy::Heap;

  const auto need_value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) {
      std::cerr << args[i] << " needs a value\n";
      std::exit(usage(argv[0], 2));
    }
    return args[++i];
  };

  const auto parse_long = [&](const std::string& flag,
                              const std::string& value) -> long {
    try {
      std::size_t used = 0;
      const long v = std::stol(value, &used);
      if (used == value.size()) return v;
    } catch (const std::exception&) {
    }
    std::cerr << flag << " needs a number, got '" << value << "'\n";
    std::exit(usage(argv[0], 2));
  };

  const auto parse_double = [&](const std::string& flag,
                                const std::string& value) -> double {
    try {
      std::size_t used = 0;
      const double v = std::stod(value, &used);
      if (used == value.size()) return v;
    } catch (const std::exception&) {
    }
    std::cerr << flag << " needs a number, got '" << value << "'\n";
    std::exit(usage(argv[0], 2));
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") return usage(argv[0], 0);
    if (a == "--list" || a == "--list-names") {
      if (a == "--list") {
        Table table({"workload", "description", "tasks", "size", "iters"});
        for (const workloads::Workload& w : workloads::registry())
          table.add_row({w.name, w.description,
                         std::to_string(w.defaults.tasks),
                         std::to_string(w.defaults.size),
                         std::to_string(w.defaults.iterations)});
        table.print(std::cout);
      } else {
        for (const std::string& name : workloads::names())
          std::cout << name << '\n';
      }
      return 0;
    }
    if (a == "--workload") workload = need_value(i);
    else if (a == "--policy") policy_arg = need_value(i);
    else if (a == "--backend") backend_arg = need_value(i);
    else if (a == "--topo") base.topo_spec = need_value(i);
    else if (a == "--tasks") { base.params.tasks = static_cast<int>(parse_long(a, need_value(i))); tasks_set = true; }
    else if (a == "--size") { base.params.size = parse_long(a, need_value(i)); size_set = true; }
    else if (a == "--iters") { base.params.iterations = static_cast<int>(parse_long(a, need_value(i))); iters_set = true; }
    else if (a == "--warmup") base.warmup = static_cast<int>(parse_long(a, need_value(i)));
    else if (a == "--reps") base.repetitions = static_cast<int>(parse_long(a, need_value(i)));
    else if (a == "--feedback") base.feedback = true;
    else if (a == "--replace") replace.mode = place::parse_replacement_mode(need_value(i));
    else if (a == "--epoch") replace.epoch_length = static_cast<int>(parse_long(a, need_value(i)));
    else if (a == "--tau") replace.drift_threshold = parse_double(a, need_value(i));
    else if (a == "--wait-strategy") base.wait = sync::parse_wait_strategy(need_value(i));
    else if (a == "--memory-policy") mempol = mem::parse_memory_policy(need_value(i));
    else if (a == "--no-verify") base.verify = false;
    else if (a == "--seed") base.seed = static_cast<std::uint64_t>(parse_long(a, need_value(i)));
    else if (a == "--json") json_path = need_value(i);
    else if (a == "--trace") base.trace_path = need_value(i);
    else if (a == "--metrics") base.collect_metrics = true;
    else {
      std::cerr << "unknown option '" << a << "'\n";
      return usage(argv[0], 2);
    }
  }
  if (workload.empty()) {
    std::cerr << "--workload is required (or --list)\n";
    return usage(argv[0], 2);
  }

  std::vector<std::string> workload_names;
  if (workload == "all") workload_names = workloads::names();
  else workload_names = {workload};

  std::vector<std::string> backends;
  if (backend_arg == "both") backends = {"runtime", "sim"};
  else backends = {backend_arg};

  std::vector<harness::CaseResult> results;
  try {
    std::vector<place::Policy> policies;
    if (policy_arg == "all")
      policies = {place::Policy::None, place::Policy::Compact,
                  place::Policy::Scatter, place::Policy::Random,
                  place::Policy::TreeMatch};
    else
      policies = {place::parse_policy(policy_arg)};

    // A non-heap memory policy pairs every case with its heap twin, the
    // same way --replace pairs static with adaptive.
    std::vector<mem::MemoryPolicy> memories = {mem::MemoryPolicy::Heap};
    if (mempol != mem::MemoryPolicy::Heap) memories.push_back(mempol);

    // Several sweeps off the same base (workload / memory / replacement
    // twins) must not overwrite one --trace file between them.
    const bool split_traces =
        workload_names.size() * memories.size() *
            (replace.enabled() ? 2 : 1) >
        1;

    for (const std::string& name : workload_names) {
      harness::CaseSpec spec = base;
      spec.workload = name;
      const workloads::Params defaults = workloads::get(name).defaults;
      if (!tasks_set) spec.params.tasks = defaults.tasks;
      if (!size_set) spec.params.size = defaults.size;
      if (!iters_set) spec.params.iterations = defaults.iterations;
      for (const mem::MemoryPolicy memory : memories) {
        spec.memory = memory;
        spec.replacement = {};
        for (const harness::CaseResult& r :
             harness::run_sweep(spec, policies, backends, split_traces))
          results.push_back(r);
        if (replace.enabled()) {
          // The same grid again with online re-placement, so each
          // adaptive case sits next to its static twin in the output.
          spec.replacement = replace;
          for (const harness::CaseResult& r :
               harness::run_sweep(spec, policies, backends, split_traces))
            results.push_back(r);
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  Table table({"case", "tasks", "time (median ±MAD)", "feedback time",
               "feedback speedup", "replaced", "verified"});
  bool all_ok = true;
  for (const harness::CaseResult& r : results) {
    const bool ok = !r.verify_ran || r.verified;
    all_ok = all_ok && ok;
    table.add_row(
        {harness::case_name(r.spec), std::to_string(r.num_tasks),
         fmt_stats(r.time),
         r.feedback.ran ? fmt_stats(r.feedback.time) : std::string("-"),
         r.feedback.ran ? orwl::fmt(r.feedback.speedup, 2) + "x"
                        : std::string("-"),
         r.spec.replacement.enabled()
             ? std::to_string(r.replacements) + "/" +
                   std::to_string(r.epochs.size())
             : std::string("-"),
         r.verify_ran ? (r.verified ? "yes" : "NO") : "skipped"});
    if (r.verify_ran && !r.verified)
      std::cerr << harness::case_name(r.spec) << ": verification failed: "
                << r.verify_error << '\n';
  }
  table.print(std::cout);

  if (base.collect_metrics) {
    for (const harness::CaseResult& r : results) {
      if (r.metrics.empty()) continue;
      std::cout << '\n' << "metrics for " << harness::case_name(r.spec)
                << ":\n";
      obs::dump_metrics(std::cout, r.metrics);
    }
  }

  if (!json_path.empty()) {
    std::cout << '\n';
    if (!harness::write_json_file(json_path, results)) return 1;
  }
  return all_ok ? 0 : 1;
}
