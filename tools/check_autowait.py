#!/usr/bin/env python3
"""Self-tuning wait-strategy + batched shared-read smoke check (gating).

Two promises, both asserted on cases measured in the SAME process run, so
host speed cancels out and the tolerance only absorbs back-to-back
scheduling noise:

* `spin_then_park(auto)` re-derives its per-handle spin budget from the
  observed wait-round histograms (docs/architecture.md, "Self-tuning
  waits"). Its whole value proposition is "never worse than just
  blocking": for each grant-delivery mode, the auto case's median must
  not exceed the block case's median by more than the tolerance.

* Batched shared-read grants (FifoQueue::on_grant_batch, on by default)
  exist to make reader fan-out cheaper: for each reader count, the
  batched `runtime_shared_reads/N` median must not exceed the
  `runtime_shared_reads/N/nobatch` median by more than the tolerance.

  python3 tools/check_autowait.py --bench build/micro_orwl_overhead \\
      [--baseline BENCH_micro_orwl_overhead.json] [--tolerance 0.10] \\
      [--reps 3] [--warmup 1]

  python3 tools/check_autowait.py --fresh NEW.json
      compare an already-written recording instead of running the bench.

This check GATES CI, with the same host escape hatch as
check_overhead.py: when the current host differs from the one that made
the repo's recorded baseline (context.host_name), the runner is an
unknown, shared machine whose double-digit jitter would make red runs
noise — the check warns and passes. A missing baseline file means the
recording host is unknown and is treated the same way. On the recording
host it must hold.

Exit status: 0 within tolerance (or host mismatch), 1 on regression, 2 on
usage errors.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile

AUTO_PAIRS = [
    ("runtime_alternation/direct",
     "runtime_alternation/direct/spin_then_park(auto)"),
    ("runtime_alternation/control-threads",
     "runtime_alternation/control-threads/spin_then_park(auto)"),
]

BATCH_PAIRS = [
    (f"runtime_shared_reads/{n}/nobatch", f"runtime_shared_reads/{n}")
    for n in (2, 4, 8)
]


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    medians = {b["name"]: b["seconds_median"] for b in doc["benchmarks"]}
    return doc.get("context", {}), medians


def check_pairs(pairs, medians, tolerance, what):
    failed = False
    for base_name, case_name in pairs:
        if base_name not in medians or case_name not in medians:
            print(f"check_autowait: missing case "
                  f"{base_name!r} or {case_name!r}", file=sys.stderr)
            failed = True
            continue
        base, case = medians[base_name], medians[case_name]
        ratio = case / base
        verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSION"
        print(f"{case_name}: {case * 1e3:.3f} ms vs "
              f"{base_name}: {base * 1e3:.3f} ms "
              f"(ratio {ratio:.3f}, limit {1.0 + tolerance:.2f}) "
              f"{verdict}")
        if verdict != "OK":
            print(f"check_autowait: {what} regressed past tolerance",
                  file=sys.stderr)
            failed = True
    return failed


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", help="micro_orwl_overhead binary to run")
    ap.add_argument("--fresh", help="already-written recording to compare")
    ap.add_argument("--baseline", default="BENCH_micro_orwl_overhead.json",
                    help="recorded baseline whose context.host_name names "
                         "the host the assertions are calibrated for")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional excess over the reference "
                         "case (default 0.10)")
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--warmup", type=int, default=1)
    args = ap.parse_args()
    if bool(args.bench) == bool(args.fresh):
        ap.error("exactly one of --bench / --fresh is required")

    # Host escape hatch (pattern from check_overhead.py): timing promises
    # are only asserted on the host that made the recorded baseline. A
    # missing baseline means the recording host is UNKNOWN — treat it like
    # a mismatch (warn and pass) rather than gating an arbitrary runner.
    if not os.path.exists(args.baseline):
        print(f"baseline {args.baseline!r} not found; recording host "
              f"unknown — timing promises not asserted — skipping")
        return 0
    base_ctx, _ = load(args.baseline)
    base_host = base_ctx.get("host_name", "")
    here = socket.gethostname()
    if base_host and here != base_host:
        print(f"host {here!r} differs from recorded baseline host "
              f"{base_host!r}; timing promises not asserted — skipping")
        return 0

    if args.bench:
        with tempfile.TemporaryDirectory() as tmpdir:
            out = os.path.join(tmpdir, "fresh.json")
            # "runtime" covers alternation (auto-wait pairs) and
            # shared_reads incl. /nobatch (batch pairs) in one process.
            cmd = [args.bench, "--filter", "runtime",
                   "--reps", str(args.reps), "--warmup", str(args.warmup),
                   "--json", out]
            print("+", " ".join(cmd))
            subprocess.run(cmd, check=True)
            _, medians = load(out)
    else:
        _, medians = load(args.fresh)

    failed = check_pairs(AUTO_PAIRS, medians, args.tolerance,
                         "spin_then_park(auto)")
    failed |= check_pairs(BATCH_PAIRS, medians, args.tolerance,
                          "batched shared-read grants")
    if failed:
        return 1
    print("check_autowait OK: auto wait within tolerance of block; "
          "batched shared reads within tolerance of unbatched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
