#!/usr/bin/env python3
"""Self-tuning wait-strategy smoke check.

`spin_then_park(auto)` re-derives its per-handle spin budget from the
observed wait-round histograms (docs/architecture.md, "Self-tuning
waits"). Its whole value proposition is "never worse than just
blocking": the budget collapses toward kMinSpins when spinning does not
pay off. This check asserts that promise on the runtime_alternation
micro — for each grant-delivery mode, the auto case's median must not
exceed the block case's median by more than the tolerance.

  python3 tools/check_autowait.py --bench build/micro_orwl_overhead \\
      [--tolerance 0.10] [--reps 3] [--warmup 1]

  python3 tools/check_autowait.py --fresh NEW.json
      compare an already-written recording instead of running the bench.

Both compared cases come from the SAME process run, so host speed
cancels out; the tolerance only has to absorb scheduling noise between
two back-to-back measurements. Still, alternation medians on shared CI
runners jitter by double digits, so this runs as a NON-GATING CI step
(continue-on-error) — a red run is a prompt to look, not a merge block.

Exit status: 0 within tolerance, 1 on regression, 2 on usage errors.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

PAIRS = [
    ("runtime_alternation/direct",
     "runtime_alternation/direct/spin_then_park(auto)"),
    ("runtime_alternation/control-threads",
     "runtime_alternation/control-threads/spin_then_park(auto)"),
]


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {b["name"]: b["seconds_median"] for b in doc["benchmarks"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", help="micro_orwl_overhead binary to run")
    ap.add_argument("--fresh", help="already-written recording to compare")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional excess over block (default "
                         "0.10)")
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--warmup", type=int, default=1)
    args = ap.parse_args()
    if bool(args.bench) == bool(args.fresh):
        ap.error("exactly one of --bench / --fresh is required")

    if args.bench:
        with tempfile.TemporaryDirectory() as tmpdir:
            out = os.path.join(tmpdir, "fresh.json")
            cmd = [args.bench, "--filter", "runtime_alternation",
                   "--reps", str(args.reps), "--warmup", str(args.warmup),
                   "--json", out]
            print("+", " ".join(cmd))
            subprocess.run(cmd, check=True)
            medians = load(out)
    else:
        medians = load(args.fresh)

    failed = False
    for block_name, auto_name in PAIRS:
        if block_name not in medians or auto_name not in medians:
            print(f"check_autowait: missing case "
                  f"{block_name!r} or {auto_name!r}", file=sys.stderr)
            failed = True
            continue
        block, auto = medians[block_name], medians[auto_name]
        ratio = auto / block
        verdict = "OK" if ratio <= 1.0 + args.tolerance else "REGRESSION"
        print(f"{auto_name}: {auto * 1e3:.3f} ms vs "
              f"{block_name}: {block * 1e3:.3f} ms "
              f"(ratio {ratio:.3f}, limit {1.0 + args.tolerance:.2f}) "
              f"{verdict}")
        if verdict != "OK":
            failed = True

    if failed:
        print("check_autowait: spin_then_park(auto) regressed past "
              "tolerance", file=sys.stderr)
        return 1
    print("check_autowait OK: auto wait within tolerance of block")
    return 0


if __name__ == "__main__":
    sys.exit(main())
