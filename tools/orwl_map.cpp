// orwl-map: command-line front end to Algorithm 1.
//
// Reads a communication matrix (CSV, one row per thread) and maps it onto
// a topology — the host machine by default, or a synthetic description.
// Prints the thread -> PU assignment, the control-thread strategy chosen,
// and locality metrics compared against the baseline policies.
//
// Usage:
//   orwl-map matrix.csv                      # map onto the host
//   orwl-map matrix.csv "pack:24 core:8 pu:1"
//   orwl-map --pattern stencil:16x12 "pack:24 core:8 pu:1"
//   orwl-map --pattern ring:32
//
// Exit code 0 on success, 1 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "place/placement.h"
#include "support/table.h"

namespace {

using namespace orwl;

int usage() {
  std::cerr <<
      "usage: orwl-map <matrix.csv> [synthetic-topology]\n"
      "       orwl-map --pattern stencil:<bx>x<by> [synthetic-topology]\n"
      "       orwl-map --pattern ring:<n>          [synthetic-topology]\n"
      "       orwl-map --pattern clustered:<n>/<size> [synthetic-topology]\n"
      "The topology defaults to the detected host machine.\n";
  return 1;
}

std::optional<comm::CommMatrix> make_pattern(const std::string& desc) {
  const auto colon = desc.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string kind = desc.substr(0, colon);
  const std::string args = desc.substr(colon + 1);
  try {
    if (kind == "stencil") {
      const auto x = args.find('x');
      if (x == std::string::npos) return std::nullopt;
      comm::StencilSpec spec;
      spec.blocks_x = std::stoi(args.substr(0, x));
      spec.blocks_y = std::stoi(args.substr(x + 1));
      spec.block_rows = 256;
      spec.block_cols = 256;
      return comm::stencil_matrix(spec);
    }
    if (kind == "ring") return comm::ring_matrix(std::stoi(args), 4096.0);
    if (kind == "clustered") {
      const auto slash = args.find('/');
      if (slash == std::string::npos) return std::nullopt;
      return comm::clustered_matrix(std::stoi(args.substr(0, slash)),
                                    std::stoi(args.substr(slash + 1)),
                                    4096.0, 16.0);
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  comm::CommMatrix m(0);
  int topo_arg = 2;
  if (std::string(argv[1]) == "--pattern") {
    if (argc < 3) return usage();
    const auto pattern = make_pattern(argv[2]);
    if (!pattern) return usage();
    m = *pattern;
    topo_arg = 3;
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "orwl-map: cannot open '" << argv[1] << "'\n";
      return 1;
    }
    try {
      m = comm::CommMatrix::load_csv(in);
    } catch (const std::exception& e) {
      std::cerr << "orwl-map: bad matrix: " << e.what() << '\n';
      return 1;
    }
  }
  if (m.order() == 0) {
    std::cerr << "orwl-map: empty matrix\n";
    return 1;
  }

  topo::Topology topo = topo::Topology::flat(1);
  try {
    topo = argc > topo_arg ? topo::Topology::synthetic(argv[topo_arg])
                           : topo::Topology::host();
  } catch (const std::exception& e) {
    std::cerr << "orwl-map: bad topology: " << e.what() << '\n';
    return 1;
  }

  std::cout << "topology: " << topo.summary() << " (" << topo.num_pus()
            << " PUs)\nthreads:  " << m.order() << ", total volume "
            << fmt(m.total_volume() / 1024.0, 1) << " KiB\n\n";

  const place::Plan plan =
      place::compute_plan(place::Policy::TreeMatch, topo, m);

  Table assign({"thread", "compute PU", "control PU"});
  for (int t = 0; t < m.order(); ++t)
    assign.add_row(
        {std::to_string(t),
         std::to_string(plan.compute_pu[static_cast<std::size_t>(t)]),
         std::to_string(plan.control_pu[static_cast<std::size_t>(t)])});
  assign.print(std::cout);
  std::cout << "\ncontrol strategy: "
            << treematch::to_string(plan.treematch.control_used)
            << ", oversubscribed: "
            << (plan.treematch.oversubscribed ? "yes" : "no") << " (x"
            << plan.treematch.threads_per_leaf << ")\n\n";

  Table metrics({"policy", "hop-bytes (KiB)", "package-local %"});
  for (place::Policy policy :
       {place::Policy::TreeMatch, place::Policy::Compact,
        place::Policy::Scatter, place::Policy::Random}) {
    const place::Plan p = place::compute_plan(policy, topo, m);
    metrics.add_row(
        {place::to_string(policy),
         fmt(comm::hop_bytes(topo, m, p.compute_pu) / 1024.0, 1),
         fmt(100.0 * comm::locality_fraction(topo, m, p.compute_pu, 1), 1)});
  }
  metrics.print(std::cout);
  return 0;
}
