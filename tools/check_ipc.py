#!/usr/bin/env python3
"""Two-process shm-transport driver for the `ipc_check` CTest entry.

Runs examples/ipc_alternation.cpp (stdlib only, no gtest) through its
three modes and asserts the exit codes the transport documents:

  ok           both processes alternate Write sections on the shared
               counter and verify strict parity       -> exit 0
  crash-peer   the peer is SIGKILLed inside a section; the surviving
               owner must detect the dead process within its liveness
               tick and fail-stop                     -> exit 75
  crash-owner  the owner dies holding arbitration state; the surviving
               peer must detect it                    -> exit 75

75 is ipc::kPeerFailureExitCode (EX_TEMPFAIL), produced by the DEFAULT
on_peer_failure handler — so this checker pins the out-of-the-box
behaviour end to end: bounded-time loud failure, never a hang. Every
subprocess runs under a hard timeout; the binary also arms its own
alarm() watchdog, so a wedged transport fails twice over rather than
blocking CI.

Usage: python3 tools/check_ipc.py --exe PATH/TO/ipc_alternation
Exit status 0 when every mode behaved; 1 with a per-mode report.
"""

import argparse
import subprocess
import sys

# (mode, expected exit code). 75 = ipc::kPeerFailureExitCode.
EXPECTATIONS = [
    ("ok", 0),
    ("crash-peer", 75),
    ("crash-owner", 75),
]

# Generous CI bound; a clean run takes milliseconds, detection ~tens of
# ms. Anything approaching this is a hang, which is itself the bug the
# crash modes exist to rule out.
TIMEOUT_SEC = 60


def run_mode(exe, mode, rounds):
    cmd = [exe, mode, str(rounds)]
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=TIMEOUT_SEC,
        )
    except subprocess.TimeoutExpired:
        return None, f"{' '.join(cmd)}: HUNG past {TIMEOUT_SEC}s"
    return proc, None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--exe", required=True,
                    help="path to the ipc_alternation binary")
    ap.add_argument("--rounds", type=int, default=64)
    ap.add_argument("--repeat", type=int, default=3,
                    help="runs per mode (schedule/timing variation)")
    args = ap.parse_args()

    errors = []
    for mode, want in EXPECTATIONS:
        for rep in range(args.repeat):
            proc, hang = run_mode(args.exe, mode, args.rounds)
            if hang:
                errors.append(hang)
                continue
            if proc.returncode != want:
                out = proc.stdout.decode(errors="replace").strip()
                errors.append(
                    f"mode {mode} (run {rep}): exit {proc.returncode}, "
                    f"expected {want}\n  output: {out or '(none)'}")

    if errors:
        print(f"check_ipc: {len(errors)} failure(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    modes = ", ".join(m for m, _ in EXPECTATIONS)
    print(f"check_ipc: OK ({modes}; {args.repeat} run(s) each, "
          f"{args.rounds} rounds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
