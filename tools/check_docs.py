#!/usr/bin/env python3
"""Docs hygiene checker: keeps README + docs/ from rotting.

Run from the repository root (CI's docs job and the `docs_check` CTest do):

  python3 tools/check_docs.py

Checks, stdlib only:
  1. every relative markdown link in README.md and docs/*.md resolves to an
     existing file (http(s)/mailto links and pure #anchors are skipped);
  2. the first ```cpp fenced block in README.md equals (after dedent) the
     region between the `// [quickstart-begin]` / `// [quickstart-end]`
     markers of examples/quickstart.cpp — the file the build compiles — so
     the README quickstart snippet cannot silently stop compiling.

Exit status 0 when clean; 1 with a per-finding report otherwise.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_CPP_RE = re.compile(r"```cpp\n(.*?)```", re.DOTALL)


def markdown_files():
    files = ["README.md"]
    if os.path.isdir("docs"):
        files += sorted(
            os.path.join("docs", f) for f in os.listdir("docs")
            if f.endswith(".md"))
    return files


def check_links(errors):
    for md in markdown_files():
        with open(md, encoding="utf-8") as f:
            text = f.read()
        base = os.path.dirname(md)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                errors.append(f"{md}: broken link -> {target}")


def dedent(lines):
    indents = [
        len(line) - len(line.lstrip()) for line in lines if line.strip()
    ]
    cut = min(indents, default=0)
    return [line[cut:].rstrip() if line.strip() else "" for line in lines]


def check_quickstart_parity(errors):
    with open("README.md", encoding="utf-8") as f:
        readme = f.read()
    m = FENCE_CPP_RE.search(readme)
    if not m:
        errors.append("README.md: no ```cpp quickstart block found")
        return
    readme_lines = [line.rstrip() for line in m.group(1).splitlines()]

    src_path = os.path.join("examples", "quickstart.cpp")
    with open(src_path, encoding="utf-8") as f:
        src = f.read().splitlines()
    try:
        begin = next(i for i, l in enumerate(src)
                     if l.strip() == "// [quickstart-begin]")
        end = next(i for i, l in enumerate(src)
                   if l.strip() == "// [quickstart-end]")
    except StopIteration:
        errors.append(f"{src_path}: quickstart markers missing")
        return
    region = dedent(src[begin + 1:end])

    if readme_lines != region:
        errors.append(
            "README.md quickstart snippet differs from the marked region "
            f"of {src_path}:")
        width = max(len(readme_lines), len(region))
        for i in range(width):
            want = region[i] if i < len(region) else "<missing>"
            got = readme_lines[i] if i < len(readme_lines) else "<missing>"
            if want != got:
                errors.append(f"  line {i + 1}: README {got!r} != source "
                              f"{want!r}")


def main():
    if not os.path.exists("README.md"):
        print("run from the repository root (README.md not found)",
              file=sys.stderr)
        return 1
    errors = []
    check_links(errors)
    check_quickstart_parity(errors)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    n_files = len(markdown_files())
    print(f"docs check OK: {n_files} markdown files, links resolve, "
          "quickstart snippet in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
