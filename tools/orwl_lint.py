#!/usr/bin/env python3
"""orwl_lint: repo-specific correctness lint for the ORWL codebase.

Rules
-----
sink-contract    Every `on_grant` override (and the pure-virtual declaration)
                 must carry a `// sink-contract: no-queue-reentry` comment on
                 the same line or within the preceding lines: the sink runs
                 with the queue lock held and must never re-enter the queue.
                 Scope: src/ and tests/ (the model checker implements sinks).

naked-acquire    `.acquire()` / `->acquire()` outside the Section RAII layer
                 (src/orwl/program.h) and the Handle implementation itself
                 must carry `// lint: allow-naked-acquire(<reason>)` on the
                 same or the preceding line — a naked acquire with no paired
                 RAII release is how grants leak. Scope: src/.

order-comment    Every `memory_order_*` use in src/sync and src/orwl must be
                 justified by a `// order:` comment on the same line or within
                 the 3 preceding lines, naming the pairing (what it publishes
                 or consumes).

rmw-allowlist    Atomic read-modify-write calls (`fetch_*`, `.exchange(...)`,
                 `compare_exchange_*`) are the building blocks of lock-free
                 protocols and belong in the sanctioned lock-free files
                 (src/sync/, the ticket queue src/orwl/queue.{h,cpp}, the
                 wait-free metrics src/obs/metrics.h). Anywhere else each RMW
                 must carry `// lint: allow-rmw(<reason>)` on the same or a
                 nearby preceding line — a one-off counter bump is fine, an
                 unreviewed ad-hoc protocol is not. Scope: src/.

include-hygiene  Headers open with `#pragma once` (first non-comment line);
                 no `..` path segments in includes; quoted includes are
                 module-rooted (e.g. "orwl/queue.h", never "queue.h"); a
                 module .cpp includes its own header first. Scope: src/.

Usage
-----
  tools/orwl_lint.py [--root DIR]    lint the repo (default: cwd); exit 1 on
                                     any violation
  tools/orwl_lint.py --self-test     run every rule against the seeded
                                     negative fixtures in tests/lint_fixtures
                                     and verify each rule still fires (and
                                     that the clean fixture stays clean)

Registered as the `orwl_lint` / `orwl_lint_selftest` ctest cases and as a
gating CI job.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, Iterable, List, NamedTuple

MODULES = {
    "support", "sync", "orwl", "obs", "topo", "comm", "treematch", "mem",
    "place", "sim", "baselines", "lk23", "workloads", "harness", "model",
    "ipc",
}

SINK_CONTRACT = "sink-contract: no-queue-reentry"
SINK_WINDOW = 6  # comment may sit this many lines above the declaration

NAKED_ACQUIRE_ALLOW = re.compile(r"//\s*lint:\s*allow-naked-acquire\([^)]+\)")
ACQUIRE_CALL = re.compile(r"(?:\.|->)acquire\s*\(")
# Files that ARE the sanctioned acquire layer: the Section RAII guards and
# the Handle implementation they drive.
ACQUIRE_WHITELIST = {
    "src/orwl/program.h",
    "src/orwl/program.cpp",
    "src/orwl/handle.h",
    "src/orwl/handle.cpp",
}

ORDER_WINDOW = 3
MEMORY_ORDER = re.compile(r"\bmemory_order_\w+")
ORDER_COMMENT = re.compile(r"//\s*order:")

RMW_WINDOW = 3
# Member-call syntax only: `std::exchange(...)` (the <utility> value swap)
# must not trip the rule, so require `.` or `->` before the method name.
RMW_CALL = re.compile(
    r"(?:\.|->)\s*"
    r"(fetch_(?:add|sub|and|or|xor)|exchange|"
    r"compare_exchange_(?:weak|strong))\s*\(")
RMW_ALLOW = re.compile(r"//\s*lint:\s*allow-rmw\([^)]+\)")
# Files sanctioned to build lock-free protocols out of RMWs: the sync
# primitives module, the ticket-ordered grant queue, and the wait-free
# metrics structures.
RMW_ALLOWLIST_PREFIXES = ("src/sync/",)
RMW_ALLOWLIST = {
    "src/orwl/queue.h",
    "src/orwl/queue.cpp",
    "src/obs/metrics.h",
}

ON_GRANT_DECL = re.compile(r"\bon_grant\s*\(.*\)\s*(?:override|final|=\s*0)")


class Violation(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def iter_files(root: str, subdirs: Iterable[str], exts=(".h", ".cpp"),
               exclude: Iterable[str] = ()) -> Iterable[str]:
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir == e or rel_dir.startswith(e + os.sep)
                   for e in exclude):
                continue
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    yield os.path.join(rel_dir, fn).replace(os.sep, "/")


def read_lines(root: str, rel: str) -> List[str]:
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read().splitlines()


def window(lines: List[str], idx: int, size: int) -> str:
    """The line at idx plus up to `size` preceding lines, joined."""
    return "\n".join(lines[max(0, idx - size): idx + 1])


# ---------------------------------------------------------------------------
# Rules. Each takes (rel_path, lines) and yields Violations.
# ---------------------------------------------------------------------------

def check_sink_contract(rel: str, lines: List[str]) -> Iterable[Violation]:
    for i, line in enumerate(lines):
        if not ON_GRANT_DECL.search(line):
            continue
        if SINK_CONTRACT not in window(lines, i, SINK_WINDOW):
            yield Violation(
                rel, i + 1, "sink-contract",
                "on_grant override without a "
                f"'// {SINK_CONTRACT}' contract comment")


def check_naked_acquire(rel: str, lines: List[str]) -> Iterable[Violation]:
    if rel in ACQUIRE_WHITELIST:
        return
    for i, line in enumerate(lines):
        if not ACQUIRE_CALL.search(line):
            continue
        if NAKED_ACQUIRE_ALLOW.search(window(lines, i, 1)):
            continue
        yield Violation(
            rel, i + 1, "naked-acquire",
            "acquire() outside a Section RAII guard; wrap it in "
            "Step::read/write or annotate with "
            "'// lint: allow-naked-acquire(<reason>)'")


def check_order_comment(rel: str, lines: List[str]) -> Iterable[Violation]:
    if not (rel.startswith("src/sync/") or rel.startswith("src/orwl/")):
        return
    for i, line in enumerate(lines):
        m = MEMORY_ORDER.search(line)
        if not m:
            continue
        if ORDER_COMMENT.search(window(lines, i, ORDER_WINDOW)):
            continue
        yield Violation(
            rel, i + 1, "order-comment",
            f"{m.group(0)} without a '// order:' justification within "
            f"{ORDER_WINDOW} lines")


def check_rmw_allowlist(rel: str, lines: List[str]) -> Iterable[Violation]:
    if rel.startswith(RMW_ALLOWLIST_PREFIXES) or rel in RMW_ALLOWLIST:
        return
    for i, line in enumerate(lines):
        # Strip the trailing comment so doc comments that *mention* an RMW
        # (e.g. "pairs with the queue's fetch_add(...)") don't trip the rule.
        code = line.split("//", 1)[0]
        m = RMW_CALL.search(code)
        if not m:
            continue
        if RMW_ALLOW.search(window(lines, i, RMW_WINDOW)):
            continue
        yield Violation(
            rel, i + 1, "rmw-allowlist",
            f"atomic {m.group(1)}() outside the lock-free allow-list "
            "(src/sync/, orwl/queue, obs/metrics); move the protocol there "
            "or annotate with '// lint: allow-rmw(<reason>)'")


INCLUDE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')


def check_include_hygiene(rel: str, lines: List[str]) -> Iterable[Violation]:
    if rel.endswith(".h"):
        for i, line in enumerate(lines):
            stripped = line.strip()
            if not stripped or stripped.startswith("//"):
                continue
            if stripped != "#pragma once":
                yield Violation(
                    rel, i + 1, "include-hygiene",
                    "header must open with '#pragma once' before any code")
            break

    first_quoted = None
    for i, line in enumerate(lines):
        m = INCLUDE.match(line)
        if not m:
            continue
        quoted, path = m.group(1) == '"', m.group(2)
        if ".." in path.split("/"):
            yield Violation(rel, i + 1, "include-hygiene",
                            f"'..' in include path '{path}'")
        if quoted:
            if first_quoted is None:
                first_quoted = (i, path)
            if path.split("/")[0] not in MODULES:
                yield Violation(
                    rel, i + 1, "include-hygiene",
                    f"quoted include '{path}' is not module-rooted "
                    "(expected e.g. \"orwl/queue.h\")")

    # Own-header-first: src/<mod>/foo.cpp whose header exists must include
    # "<mod>/foo.h" before any other include.
    if rel.startswith("src/") and rel.endswith(".cpp"):
        own = rel[len("src/"):-len(".cpp")] + ".h"
        if os.path.exists(os.path.join(_current_root, "src", own)):
            if first_quoted is None or first_quoted[1] != own:
                at = 1 if first_quoted is None else first_quoted[0] + 1
                yield Violation(
                    rel, at, "include-hygiene",
                    f"module source must include its own header "
                    f"\"{own}\" first")


_current_root = "."

RULES: List[Callable[[str, List[str]], Iterable[Violation]]] = [
    check_sink_contract,
    check_naked_acquire,
    check_order_comment,
    check_rmw_allowlist,
    check_include_hygiene,
]

# sink-contract also covers test code (the model checker implements sinks);
# the other rules are src-only.
TEST_RULES = [check_sink_contract]


def lint(root: str) -> List[Violation]:
    global _current_root
    _current_root = root
    out: List[Violation] = []
    for rel in iter_files(root, ["src"]):
        lines = read_lines(root, rel)
        for rule in RULES:
            out.extend(rule(rel, lines))
    for rel in iter_files(root, ["tests"], exclude=["tests/lint_fixtures"]):
        lines = read_lines(root, rel)
        for rule in TEST_RULES:
            out.extend(rule(rel, lines))
    return out


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on the seeded negative fixtures, and the
# clean fixture must stay clean — proving the lint still detects what it
# claims to detect.
# ---------------------------------------------------------------------------

EXPECTED_FIXTURE_RULES = {
    "src/orwl/bad_sink.h": {"sink-contract"},
    "src/orwl/bad_acquire.cpp": {"naked-acquire"},
    "src/orwl/bad_order.cpp": {"order-comment"},
    "src/orwl/bad_rmw.cpp": {"rmw-allowlist"},
    "src/orwl/bad_include.h": {"include-hygiene"},
    "src/orwl/clean.h": set(),
}


def self_test(repo_root: str) -> int:
    fixture_root = os.path.join(repo_root, "tests", "lint_fixtures")
    violations = lint(fixture_root)
    by_file: dict = {rel: set() for rel in EXPECTED_FIXTURE_RULES}
    unexpected = []
    for v in violations:
        if v.path in by_file:
            by_file[v.path].add(v.rule)
        else:
            unexpected.append(v)

    failed = False
    for rel, expected in sorted(EXPECTED_FIXTURE_RULES.items()):
        got = by_file[rel]
        if expected - got:
            print(f"self-test FAIL: {rel}: rules {sorted(expected - got)} "
                  "did not fire", file=sys.stderr)
            failed = True
        if got - expected:
            print(f"self-test FAIL: {rel}: unexpected rules "
                  f"{sorted(got - expected)}", file=sys.stderr)
            failed = True
    for v in unexpected:
        print(f"self-test FAIL: violation outside fixture set: {v}",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    n = sum(len(r) for r in EXPECTED_FIXTURE_RULES.values())
    print(f"orwl_lint self-test OK: {n} seeded violations detected, "
          "clean fixture clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root to lint (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against tests/lint_fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = lint(args.root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"orwl_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("orwl_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
