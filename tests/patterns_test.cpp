// Unit tests for the synthetic communication-pattern generators.

#include <gtest/gtest.h>

#include "comm/patterns.h"
#include "support/assert.h"

namespace orwl::comm {
namespace {

TEST(Stencil, SingleBlockHasNoEdges) {
  StencilSpec s;
  s.blocks_x = 1;
  s.blocks_y = 1;
  const CommMatrix m = stencil_matrix(s);
  EXPECT_EQ(m.order(), 1);
  EXPECT_EQ(m.total_volume(), 0.0);
}

TEST(Stencil, TwoByTwoNonPeriodic) {
  StencilSpec s;
  s.blocks_x = 2;
  s.blocks_y = 2;
  s.block_rows = 4;
  s.block_cols = 8;
  s.elem_bytes = 8;
  s.corners = true;
  const CommMatrix m = stencil_matrix(s);
  EXPECT_EQ(m.order(), 4);
  // Horizontal neighbours exchange block_rows elems: 4*8 = 32 bytes.
  EXPECT_EQ(m.at(0, 1), 32.0);
  EXPECT_EQ(m.at(2, 3), 32.0);
  // Vertical neighbours exchange block_cols elems: 8*8 = 64 bytes.
  EXPECT_EQ(m.at(0, 2), 64.0);
  EXPECT_EQ(m.at(1, 3), 64.0);
  // Diagonals exchange one element = 8 bytes.
  EXPECT_EQ(m.at(0, 3), 8.0);
  EXPECT_EQ(m.at(1, 2), 8.0);
}

TEST(Stencil, CornersCanBeDisabled) {
  StencilSpec s;
  s.blocks_x = 2;
  s.blocks_y = 2;
  s.corners = false;
  const CommMatrix m = stencil_matrix(s);
  EXPECT_EQ(m.at(0, 3), 0.0);
  EXPECT_EQ(m.at(1, 2), 0.0);
  EXPECT_GT(m.at(0, 1), 0.0);
}

TEST(Stencil, PeriodicWrapsAround) {
  StencilSpec s;
  s.blocks_x = 4;
  s.blocks_y = 1;
  s.block_rows = 2;
  s.elem_bytes = 8;
  s.periodic = true;
  s.corners = false;
  const CommMatrix m = stencil_matrix(s);
  EXPECT_GT(m.at(0, 3), 0.0) << "periodic edge 3 -> 0 missing";
}

TEST(Stencil, NonPeriodicBorderHasNoWrap) {
  StencilSpec s;
  s.blocks_x = 4;
  s.blocks_y = 1;
  s.periodic = false;
  s.corners = false;
  const CommMatrix m = stencil_matrix(s);
  EXPECT_EQ(m.at(0, 3), 0.0);
}

TEST(Stencil, InteriorBlockDegreeIs8) {
  StencilSpec s;
  s.blocks_x = 3;
  s.blocks_y = 3;
  const CommMatrix m = stencil_matrix(s);
  int degree = 0;
  for (int j = 0; j < 9; ++j)
    if (j != 4 && m.at(4, j) > 0.0) ++degree;
  EXPECT_EQ(degree, 8) << "centre block must touch all 8 neighbours";
}

TEST(Stencil, RejectsBadSpec) {
  StencilSpec s;
  s.blocks_x = 0;
  EXPECT_THROW(stencil_matrix(s), ContractError);
}

TEST(Ring, NonPeriodicChain) {
  const CommMatrix m = ring_matrix(4, 10.0, /*periodic=*/false);
  EXPECT_EQ(m.at(0, 1), 10.0);
  EXPECT_EQ(m.at(1, 2), 10.0);
  EXPECT_EQ(m.at(2, 3), 10.0);
  EXPECT_EQ(m.at(0, 3), 0.0);
}

TEST(Ring, PeriodicClosesLoop) {
  const CommMatrix m = ring_matrix(4, 10.0, /*periodic=*/true);
  EXPECT_EQ(m.at(0, 3), 10.0);
}

TEST(Ring, TwoThreadsNoDoubleEdge) {
  const CommMatrix m = ring_matrix(2, 5.0, /*periodic=*/true);
  EXPECT_EQ(m.at(0, 1), 5.0);
}

TEST(Uniform, AllPairsEqual) {
  const CommMatrix m = uniform_matrix(4, 3.0);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(m.at(i, j), i == j ? 0.0 : 3.0);
}

TEST(Random, DeterministicInSeed) {
  const CommMatrix a = random_matrix(16, 0.5, 10.0, 7);
  const CommMatrix b = random_matrix(16, 0.5, 10.0, 7);
  const CommMatrix c = random_matrix(16, 0.5, 10.0, 8);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Random, DensityBoundsRespected) {
  const CommMatrix empty = random_matrix(16, 0.0, 10.0, 1);
  EXPECT_EQ(empty.total_volume(), 0.0);
  const CommMatrix full = random_matrix(16, 1.0, 10.0, 1);
  for (int i = 0; i < 16; ++i)
    for (int j = i + 1; j < 16; ++j) EXPECT_GT(full.at(i, j), 0.0);
}

TEST(Random, RejectsBadDensity) {
  EXPECT_THROW(random_matrix(4, 1.5, 10.0, 1), ContractError);
  EXPECT_THROW(random_matrix(4, -0.1, 10.0, 1), ContractError);
}

TEST(Clustered, IntraHeavierThanInter) {
  const CommMatrix m = clustered_matrix(8, 4, 100.0, 1.0);
  EXPECT_EQ(m.at(0, 3), 100.0);
  EXPECT_EQ(m.at(0, 4), 1.0);
  EXPECT_EQ(m.at(4, 7), 100.0);
}

TEST(Clustered, RejectsInvertedWeights) {
  EXPECT_THROW(clustered_matrix(8, 4, 1.0, 100.0), ContractError);
}

}  // namespace
}  // namespace orwl::comm
