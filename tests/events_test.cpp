// Unit tests for the control-thread event queue.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "orwl/events.h"
#include "orwl/queue.h"

namespace orwl {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, PostThenPop) {
  EventQueue q;
  Request r;
  q.post({&r});
  EXPECT_EQ(q.pending(), 1u);
  const auto ev = q.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->request, &r);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, FifoOrder) {
  EventQueue q;
  Request r[3];
  for (auto& x : r) q.post({&x});
  EXPECT_EQ(q.pop()->request, &r[0]);
  EXPECT_EQ(q.pop()->request, &r[1]);
  EXPECT_EQ(q.pop()->request, &r[2]);
}

TEST(EventQueue, StopUnblocksPopper) {
  EventQueue q;
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    const auto ev = q.pop();
    EXPECT_FALSE(ev.has_value());
    returned = true;
  });
  // Give the popper a moment to block, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.stop();
  popper.join();
  EXPECT_TRUE(returned.load());
}

TEST(EventQueue, DrainsBacklogAfterStop) {
  EventQueue q;
  Request r[2];
  q.post({&r[0]});
  q.post({&r[1]});
  q.stop();
  EXPECT_EQ(q.pop()->request, &r[0]);
  EXPECT_EQ(q.pop()->request, &r[1]);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PostAfterStopStillDelivered) {
  // The runtime may race a final grant against shutdown; the event must
  // not be lost for the drain.
  EventQueue q;
  q.stop();
  Request r;
  q.post({&r});
  EXPECT_EQ(q.pop()->request, &r);
}

TEST(EventQueue, PopAllDrainsTheWholeBacklogInOnePass) {
  EventQueue q;
  Request r[4];
  for (auto& x : r) q.post({&x});
  std::vector<Event> batch;
  ASSERT_TRUE(q.pop_all(batch));
  ASSERT_EQ(batch.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(batch[static_cast<std::size_t>(i)].request, &r[i]);
  EXPECT_EQ(q.pending(), 0u);
  // Appends rather than clears: the caller owns the buffer lifecycle.
  q.post({&r[1]});
  ASSERT_TRUE(q.pop_all(batch));
  EXPECT_EQ(batch.size(), 5u);
}

TEST(EventQueue, PopAllBlocksThenReturnsFalseOnceStoppedAndDrained) {
  EventQueue q;
  Request r;
  std::atomic<int> batches{0};
  std::thread consumer([&] {
    std::vector<Event> batch;
    while (q.pop_all(batch)) {
      batches += 1;
      batch.clear();
    }
    EXPECT_TRUE(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.post({&r});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.stop();
  consumer.join();
  EXPECT_GE(batches.load(), 1);
}

TEST(EventQueue, ManyProducersOneBatchedConsumer) {
  EventQueue q;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<Request> reqs(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        q.post({&reqs[static_cast<std::size_t>(p * kPerProducer + i)]});
    });
  }
  std::atomic<int> received{0};
  std::thread consumer([&] {
    std::vector<Event> batch;
    while (received < kProducers * kPerProducer) {
      if (q.pop_all(batch)) {
        received += static_cast<int>(batch.size());
        batch.clear();
      }
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(EventQueue, ManyProducersOneConsumer) {
  EventQueue q;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<Request> reqs(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        q.post({&reqs[static_cast<std::size_t>(p * kPerProducer + i)]});
    });
  }
  int received = 0;
  std::thread consumer([&] {
    while (received < kProducers * kPerProducer) {
      if (q.pop().has_value()) ++received;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

}  // namespace
}  // namespace orwl
