// Tests for the sync:: support layer (waiter, wait strategies, sharded
// counter) and for the FifoQueue on top of it: a randomized concurrent
// linearizability check replaying the observed ticket order through a
// single-threaded model run, the always-on re-entrancy assert on the
// grant sink contract, and a lost-wakeup regression driven by the
// deterministic model scheduler (tests/model/).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "model/vthread.h"
#include "orwl/queue.h"
#include "sync/combiner.h"
#include "sync/shared_futex.h"
#include "support/assert.h"
#include "support/rng.h"
#include "sync/adaptive_wait.h"
#include "sync/sharded_counter.h"
#include "sync/wait_strategy.h"
#include "sync/waiter.h"

namespace orwl {
namespace {

// ---------------------------------------------------------------------------
// WaitStrategy parsing / formatting
// ---------------------------------------------------------------------------

TEST(WaitStrategy, ParseRoundTrip) {
  EXPECT_EQ(sync::parse_wait_strategy("block"), sync::WaitStrategy::block());
  EXPECT_EQ(sync::parse_wait_strategy("spin"), sync::WaitStrategy::spin());
  EXPECT_EQ(sync::parse_wait_strategy("spin_then_park"),
            sync::WaitStrategy::spin_then_park());
  EXPECT_EQ(sync::parse_wait_strategy("spin_then_park(512)"),
            sync::WaitStrategy::spin_then_park(512));
  EXPECT_EQ(sync::parse_wait_strategy("spin_then_park:64"),
            sync::WaitStrategy::spin_then_park(64));
  EXPECT_EQ(sync::parse_wait_strategy("BLOCK"), sync::WaitStrategy::block());
  EXPECT_EQ(sync::to_string(sync::WaitStrategy::spin_then_park(128)),
            "spin_then_park(128)");
  EXPECT_THROW(sync::parse_wait_strategy("condvar"), ContractError);
  EXPECT_THROW(sync::parse_wait_strategy("spin_then_park(x)"),
               ContractError);
  // Overflow must surface as the documented ContractError, not
  // std::out_of_range from stoi.
  EXPECT_THROW(sync::parse_wait_strategy("spin_then_park(99999999999999999)"),
               ContractError);
}

TEST(WaitStrategy, AutoParseRoundTrip) {
  EXPECT_EQ(sync::parse_wait_strategy("spin_then_park(auto)"),
            sync::WaitStrategy::spin_then_park_auto());
  EXPECT_EQ(sync::parse_wait_strategy("auto"),
            sync::WaitStrategy::spin_then_park_auto());
  EXPECT_EQ(sync::to_string(sync::WaitStrategy::spin_then_park_auto()),
            "spin_then_park(auto)");
  EXPECT_EQ(sync::WaitStrategy::spin_then_park_auto().mode,
            sync::WaitMode::Auto);
  // Untuned Auto waiters fall back to the static default budget.
  EXPECT_EQ(sync::WaitStrategy::spin_then_park_auto().spins,
            sync::AdaptiveWaitBudget::kInitialSpins);
}

// ---------------------------------------------------------------------------
// AdaptiveWaitBudget: the retune policy, one window shape per branch
// ---------------------------------------------------------------------------

namespace {
// One epoch window in the obs::Histogram log2 convention: bucket 0 holds
// exact zeros, bucket i >= 1 holds [2^(i-1), 2^i - 1].
std::array<std::uint64_t, 20> window(
    std::initializer_list<std::pair<int, std::uint64_t>> counts) {
  std::array<std::uint64_t, 20> b{};
  for (const auto& [bucket, n] : counts)
    b[static_cast<std::size_t>(bucket)] = n;
  return b;
}
}  // namespace

TEST(AdaptiveWaitBudget, EmptyWindowKeepsBudget) {
  sync::AdaptiveWaitBudget budget;
  EXPECT_EQ(budget.spins(), sync::AdaptiveWaitBudget::kInitialSpins);
  const auto w = window({});
  EXPECT_EQ(budget.retune(w.data(), w.size()),
            sync::AdaptiveWaitBudget::kInitialSpins);
}

TEST(AdaptiveWaitBudget, MedianPastBudgetHalvesTowardFloor) {
  sync::AdaptiveWaitBudget budget;
  // Every wait lands in [2048, 4095]: the median outlasts any budget the
  // halving passes through, so the budget walks 256 -> 128 -> ... -> 16
  // and pins at the floor (never fully gives up spinning).
  const auto w = window({{12, 100}});
  EXPECT_EQ(budget.retune(w.data(), w.size()), 128);
  EXPECT_EQ(budget.retune(w.data(), w.size()), 64);
  EXPECT_EQ(budget.retune(w.data(), w.size()), 32);
  EXPECT_EQ(budget.retune(w.data(), w.size()), 16);
  EXPECT_EQ(budget.retune(w.data(), w.size()),
            sync::AdaptiveWaitBudget::kMinSpins);
}

TEST(AdaptiveWaitBudget, ShortWaitsSizeBudgetToTwiceP95) {
  sync::AdaptiveWaitBudget budget;
  // 90% of waits resolve within [8, 15], a 10% tail reaches [64, 127]:
  // p50 = 15 < 256, p95 = 127, so the budget becomes 2 * 127 = 254 —
  // the common case stays park-free without chasing the max.
  const auto w = window({{4, 90}, {7, 10}});
  EXPECT_EQ(budget.retune(w.data(), w.size()), 254);
  EXPECT_EQ(budget.spins(), 254);
}

TEST(AdaptiveWaitBudget, GrowthClampsAtMaxSpins) {
  sync::AdaptiveWaitBudget budget;
  // Bimodal: mostly instant grants (bucket 0), a 40% tail in
  // [4096, 8191]. p50 = 0 keeps the grow branch, but 2 * p95 = 16382
  // must clamp to kMaxSpins.
  const auto w = window({{0, 60}, {13, 40}});
  EXPECT_EQ(budget.retune(w.data(), w.size()),
            sync::AdaptiveWaitBudget::kMaxSpins);
}

TEST(AdaptiveWaitBudget, AllZeroWaitsClampAtMinSpins) {
  sync::AdaptiveWaitBudget budget;
  // Every grant was already there (bucket 0 only): 2 * p95 = 0 clamps up
  // to the floor instead of disabling the spin phase entirely.
  const auto w = window({{0, 50}});
  EXPECT_EQ(budget.retune(w.data(), w.size()),
            sync::AdaptiveWaitBudget::kMinSpins);
}

// ---------------------------------------------------------------------------
// Waiter: park/wake correctness under every strategy, incl. spurious wakes
// ---------------------------------------------------------------------------

class WaiterTest : public ::testing::TestWithParam<sync::WaitStrategy> {};

TEST_P(WaiterTest, ReturnsImmediatelyWhenAlreadyChanged) {
  std::atomic<std::uint32_t> word{7};
  EXPECT_EQ(sync::wait_while_equal(word, 3u, GetParam()), 7u);
}

TEST_P(WaiterTest, WakesOnGenuineChange) {
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    const std::uint32_t v = sync::wait_while_equal(word, 0u, GetParam());
    EXPECT_EQ(v, 42u);
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  word.store(42, std::memory_order_release);
  sync::notify_all(word);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST_P(WaiterTest, AbsorbsSpuriousWakes) {
  // Notifies without a value change must not make the waiter return: the
  // contract is "returns only on a genuine change".
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    const std::uint32_t v = sync::wait_while_equal(word, 0u, GetParam());
    returned = true;
    EXPECT_EQ(v, 9u);
  });
  for (int i = 0; i < 50; ++i) {
    sync::notify_all(word);  // spurious: value still 0
    std::this_thread::yield();
    EXPECT_FALSE(returned.load());
  }
  word.store(9, std::memory_order_release);
  sync::notify_all(word);
  waiter.join();
  EXPECT_TRUE(returned.load());
}

TEST_P(WaiterTest, ManySequentialHandoffs) {
  // Ping-pong a counter through two threads; every step is a full
  // store+notify / wait cycle. Catches lost-wake bugs under the strategy.
  constexpr std::uint32_t kSteps = 2000;
  std::atomic<std::uint32_t> word{0};
  const sync::WaitStrategy ws = GetParam();
  std::thread peer([&] {
    for (std::uint32_t v = 0; v < kSteps; v += 2) {
      EXPECT_EQ(sync::wait_while_equal(word, v, ws), v + 1);
      word.store(v + 2, std::memory_order_release);
      sync::notify_one(word);
    }
  });
  for (std::uint32_t v = 0; v < kSteps; v += 2) {
    word.store(v + 1, std::memory_order_release);
    sync::notify_one(word);
    EXPECT_EQ(sync::wait_while_equal(word, v + 1, ws), v + 2);
  }
  peer.join();
  EXPECT_EQ(word.load(), kSteps);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, WaiterTest,
    ::testing::Values(sync::WaitStrategy::block(),
                      sync::WaitStrategy::spin_then_park(64),
                      sync::WaitStrategy::spin(),
                      sync::WaitStrategy::spin_then_park_auto()),
    [](const auto& info) {
      switch (info.param.mode) {
        case sync::WaitMode::Block: return "Block";
        case sync::WaitMode::SpinThenPark: return "SpinThenPark";
        case sync::WaitMode::Spin: return "Spin";
        case sync::WaitMode::Auto: return "Auto";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// ShardedCounter
// ---------------------------------------------------------------------------

TEST(ShardedCounter, SingleThreadExact) {
  sync::ShardedCounter c;
  EXPECT_EQ(c.read(), 0u);
  for (int i = 0; i < 1000; ++i) c.add();
  c.add(234);
  EXPECT_EQ(c.read(), 1234u);
}

TEST(ShardedCounter, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  sync::ShardedCounter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.read(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Combiner: preferred-owner (NUMA-aware) handoff
// ---------------------------------------------------------------------------

TEST(Combiner, PreferredOwnerHandoffIsDeterministicallyReachable) {
  // Choreographed two-thread handoff on real threads. B's spin_observer
  // raises a flag from inside its linger loop, and A's process function
  // holds the round open until it sees the flag — so when A closes the
  // round, B is provably lingering on A's node and the baton offer MUST
  // be claimed (both rendezvous budgets are effectively unbounded, so a
  // loaded machine cannot time the offer out into a retraction).
  sync::Combiner combiner;
  combiner.set_handoff_budgets(/*linger_rounds=*/1 << 30,
                               /*offer_rounds=*/1 << 30);
  std::atomic<bool> b_lingering{false};
  std::atomic<int> in_process{0};
  std::atomic<int> rounds_a{0};
  std::atomic<int> rounds_b{0};
  std::atomic<bool> violated{false};

  std::thread a([&] {
    combiner.run(
        [&] {
          if (in_process.fetch_add(1) != 0) violated = true;
          rounds_a.fetch_add(1);
          // Hold the round open until B is lingering for the baton.
          while (!b_lingering.load()) std::this_thread::yield();
          in_process.fetch_sub(1);
        },
        /*node=*/0);
  });
  std::thread b([&] {
    // Wait for A to hold the combiner role, so our announcement loses.
    while (in_process.load() == 0 && rounds_a.load() == 0)
      std::this_thread::yield();
    sync::Combiner::spin_observer = {
        [](void* arg) {
          static_cast<std::atomic<bool>*>(arg)->store(true);
        },
        &b_lingering};
    combiner.run(
        [&] {
          if (in_process.fetch_add(1) != 0) violated = true;
          rounds_b.fetch_add(1);
          in_process.fetch_sub(1);
        },
        /*node=*/0);
    sync::Combiner::spin_observer = {nullptr, nullptr};
  });
  a.join();
  b.join();

  EXPECT_FALSE(violated.load()) << "process() ran concurrently";
  EXPECT_EQ(combiner.handoffs(), 1u)
      << "the lingering same-node announcer must have claimed the baton";
  EXPECT_EQ(rounds_a.load(), 1);
  EXPECT_EQ(rounds_b.load(), 1)
      << "the transferred backlog must be processed by the new owner";
}

TEST(Combiner, HandoffStressKeepsExclusionAndLosesNoWork) {
  // Unchoreographed stress across two fabricated nodes: announcers race,
  // linger, give up (the spurious-rendezvous case: a budget-exhausted
  // lingerer leaves exactly as a spuriously woken waiter re-parks), claim
  // batons and retract offers at whatever interleavings the scheduler
  // serves. Whatever mix of paths fires, process() stays mutually
  // exclusive and every announced unit is drained exactly once.
  sync::Combiner combiner;
  combiner.set_handoff_budgets(/*linger_rounds=*/64, /*offer_rounds=*/64);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<int> work{0};
  std::atomic<long> processed{0};
  std::atomic<int> in_process{0};
  std::atomic<bool> violated{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const int node = t % 2;
      for (int op = 0; op < kOpsPerThread; ++op) {
        work.fetch_add(1);
        combiner.run(
            [&] {
              if (in_process.fetch_add(1) != 0) violated = true;
              processed.fetch_add(work.exchange(0));
              in_process.fetch_sub(1);
            },
            node);
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_FALSE(violated.load()) << "process() ran concurrently";
  EXPECT_EQ(work.load(), 0) << "announced work left undrained";
  EXPECT_EQ(processed.load(), long{kThreads} * kOpsPerThread);
}

// ---------------------------------------------------------------------------
// FifoQueue: randomized concurrent linearizability vs model replay
// ---------------------------------------------------------------------------

/// One worker operation, recorded as it executed concurrently. Tickets are
/// stamped by the queue under its lock, so sorting inserts by ticket
/// recovers the exact serialization order of the concurrent run.
struct Op {
  enum Kind { Insert, Release, Renew } kind;
  int slot;             ///< request slot index within the worker
  Ticket ticket;        ///< stamped by insert / renew (the renewal's)
  Ticket old_ticket;    ///< renew: the released request's ticket
};

struct WorkerLog {
  std::vector<Op> ops;
  std::vector<Request> slots;  ///< enough slots that none is ever reused
};

/// Concurrent phase: `workers` threads hammer one queue with
/// insert/release/release_and_renew in random mixes; grants are observed
/// by the sink in announcement order. Returns per-worker logs + the
/// grant-announcement ticket sequence.
struct ConcurrentRun {
  std::vector<WorkerLog> logs;
  std::vector<Ticket> grant_order;
};

ConcurrentRun run_concurrent(int workers, int cycles, std::uint64_t seed) {
  ConcurrentRun run;
  run.logs.resize(static_cast<std::size_t>(workers));
  for (WorkerLog& log : run.logs)
    log.slots.resize(static_cast<std::size_t>(cycles) + 1);

  std::mutex grant_mu;
  GrantFn sink([&](Request& r) {
    // Called with the queue lock held: the announcement order is the
    // queue's own serialization of grants.
    {
      std::lock_guard lock(grant_mu);
      run.grant_order.push_back(r.ticket);
    }
    // Delivery, as the runtime would do it: wake the parked owner.
    sync::notify_all(r.state);
  });
  FifoQueue queue(&sink);

  std::atomic<int> write_holders{0};
  std::atomic<int> read_holders{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerLog& log = run.logs[static_cast<std::size_t>(w)];
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(w) * 7919);
      int slot = 0;
      log.slots[0].mode =
          rng.below(2) == 0 ? AccessMode::Read : AccessMode::Write;
      queue.insert(log.slots[0]);
      log.ops.push_back({Op::Insert, 0, log.slots[0].ticket, 0});
      for (int c = 0; c < cycles; ++c) {
        Request& cur = log.slots[static_cast<std::size_t>(slot)];
        // Wait for our grant through the same waiter the runtime uses.
        (void)sync::wait_while_equal(cur.state, RequestState::Requested,
                                     sync::WaitStrategy::spin_then_park(32));
        // Invariant window: writers exclusive, readers share.
        if (cur.mode == AccessMode::Write) {
          if (write_holders.fetch_add(1) != 0 || read_holders.load() != 0)
            violation = true;
          for (int i = 0; i < 50; ++i) sync::cpu_relax();
          write_holders.fetch_sub(1);
        } else {
          read_holders.fetch_add(1);
          if (write_holders.load() != 0) violation = true;
          for (int i = 0; i < 50; ++i) sync::cpu_relax();
          read_holders.fetch_sub(1);
        }
        const bool last = c + 1 == cycles;
        if (!last && rng.below(4) != 0) {
          // release_and_renew into a fresh slot (random next mode).
          Request& next = log.slots[static_cast<std::size_t>(slot + 1)];
          next.mode =
              rng.below(2) == 0 ? AccessMode::Read : AccessMode::Write;
          queue.release_and_renew(cur, next);
          log.ops.push_back({Op::Renew, slot + 1, next.ticket, cur.ticket});
          ++slot;
        } else {
          queue.release(cur);
          log.ops.push_back({Op::Release, slot, 0, cur.ticket});
          if (last) break;
          Request& next = log.slots[static_cast<std::size_t>(slot + 1)];
          next.mode =
              rng.below(2) == 0 ? AccessMode::Read : AccessMode::Write;
          queue.insert(next);
          log.ops.push_back({Op::Insert, slot + 1, next.ticket, 0});
          ++slot;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load())
      << "write exclusivity / read sharing violated during concurrent run";
  EXPECT_EQ(queue.size(), 0u);
  return run;
}

TEST(QueueLinearizability, ConcurrentMatchesModelReplay) {
  constexpr int kWorkers = 6;
  constexpr int kCycles = 60;
  const ConcurrentRun run = run_concurrent(kWorkers, kCycles, /*seed=*/1234);

  // Grant announcements must be monotone in ticket: the FIFO frontier only
  // moves forward.
  for (std::size_t i = 1; i < run.grant_order.size(); ++i)
    ASSERT_LT(run.grant_order[i - 1], run.grant_order[i])
        << "grant announcements out of ticket order at index " << i;

  // Single-threaded model replay: apply every worker's op sequence on a
  // fresh queue, scheduling greedily under two constraints — per-worker
  // program order, and global ticket order for operations that take a FIFO
  // position (insert and the renewal half of release_and_renew). If the
  // concurrent execution was linearizable in ticket order, the replay
  // never gets stuck and announces the identical grant sequence.
  std::vector<Ticket> model_grants;
  GrantFn model_sink([&](Request& r) { model_grants.push_back(r.ticket); });
  FifoQueue model(&model_sink);

  // Fresh request objects for the replay, keyed by original ticket: the
  // model queue re-stamps tickets, and because insertions are replayed in
  // ticket order it assigns each request its original number (asserted).
  std::map<Ticket, Request> replay;
  for (const WorkerLog& log : run.logs)
    for (const Op& op : log.ops)
      if (op.kind != Op::Release) {
        Request& r = replay[op.ticket];
        // Mode lives in the worker's slot record.
        r.mode = log.slots[static_cast<std::size_t>(op.slot)].mode;
      }

  std::vector<std::size_t> next_op(run.logs.size(), 0);
  Ticket next_insert_ticket = 0;
  for (;;) {
    bool progressed = false;
    bool all_done = true;
    for (std::size_t w = 0; w < run.logs.size(); ++w) {
      const WorkerLog& log = run.logs[w];
      if (next_op[w] >= log.ops.size()) continue;
      all_done = false;
      const Op& op = log.ops[next_op[w]];
      const auto granted = [&](Ticket t) {
        return replay[t].state.load(std::memory_order_relaxed) ==
               RequestState::Granted;
      };
      bool applied = false;
      switch (op.kind) {
        case Op::Insert:
          if (op.ticket == next_insert_ticket) {
            model.insert(replay[op.ticket]);
            ASSERT_EQ(replay[op.ticket].ticket, op.ticket)
                << "model re-stamped a different ticket";
            ++next_insert_ticket;
            applied = true;
          }
          break;
        case Op::Release:
          if (granted(op.old_ticket)) {
            model.release(replay[op.old_ticket]);
            applied = true;
          }
          break;
        case Op::Renew:
          if (op.ticket == next_insert_ticket && granted(op.old_ticket)) {
            model.release_and_renew(replay[op.old_ticket],
                                    replay[op.ticket]);
            ASSERT_EQ(replay[op.ticket].ticket, op.ticket);
            ++next_insert_ticket;
            applied = true;
          }
          break;
      }
      if (applied) {
        ++next_op[w];
        progressed = true;
      }
    }
    if (all_done) break;
    ASSERT_TRUE(progressed)
        << "model replay stuck: concurrent run not linearizable in "
           "ticket order";
  }

  EXPECT_EQ(model_grants, run.grant_order)
      << "single-threaded replay granted a different sequence than the "
         "concurrent run";
}

TEST(QueueLinearizability, ManySeeds) {
  for (const std::uint64_t seed : {7u, 21u, 99u})
    run_concurrent(/*workers=*/4, /*cycles=*/30, seed);
}

// ---------------------------------------------------------------------------
// Grant sink re-entrancy assert (always-on protocol assert)
// ---------------------------------------------------------------------------

TEST(QueueReentrancy, SinkReenteringQueueAsserts) {
#if !ORWL_PROTOCOL_ASSERTS_ENABLED
  GTEST_SKIP() << "protocol asserts compiled out "
                  "(ORWL_DISABLE_PROTOCOL_ASSERTS)";
#else
  FifoQueue* queue_ptr = nullptr;
  Request extra;
  extra.mode = AccessMode::Write;
  GrantFn sink([&](Request&) {
    if (queue_ptr) queue_ptr->insert(extra);  // forbidden re-entry
  });
  FifoQueue queue(&sink);
  queue_ptr = &queue;
  Request w;
  w.mode = AccessMode::Write;
  EXPECT_THROW(queue.insert(w), ContractError);
  // The RAII announce scope must have cleared the marker: legal use from
  // this thread still works afterwards.
  queue_ptr = nullptr;
  Request w2;
  w2.mode = AccessMode::Write;
  FifoQueue queue2(&sink);
  queue2.insert(w2);
  EXPECT_EQ(w2.state.load(), RequestState::Granted);
#endif
}

// ---------------------------------------------------------------------------
// Lost-wakeup regression: release lands between the waiter's load and park
// ---------------------------------------------------------------------------

/// Build the 2-request race on a real FifoQueue and run one schedule:
/// "holder" owns the location, "waiter" is queued behind it. The waiter
/// performs Handle::acquire's two phases explicitly — load the state, then
/// park — with a schedule point between them, so the holder's release (and
/// the grant announcement) can land exactly inside that window. A lost
/// wakeup turns such a schedule into a deadlock.
bool run_lost_wakeup_schedule(model::Chooser& chooser,
                              std::vector<int>* trace_out,
                              bool* hit_window) {
  GrantFn sink([](Request& req) {
    // Delivery as the runtime does it: wake whoever parked on the state.
    sync::notify_all(req.state);
  });
  FifoQueue queue(&sink);
  Request holder_req;
  Request waiter_req;
  holder_req.mode = AccessMode::Write;
  waiter_req.mode = AccessMode::Write;
  queue.insert(holder_req);  // granted immediately
  queue.insert(waiter_req);  // queued behind the holder

  bool in_window = false;
  bool released_in_window = false;
  model::Scheduler sched;
  sched.spawn("waiter", [&](model::ThreadCtx& ctx) {
    // order: acquire — Handle::acquire's fast-path load.
    if (waiter_req.state.load(std::memory_order_acquire) !=
        RequestState::Granted) {
      in_window = true;
      ctx.yield();  // the load/park window: the release may land here
      in_window = false;
      ctx.wait_until([&] {
        // order: acquire — grant consumption, pairs with the queue's
        // release store.
        return waiter_req.state.load(std::memory_order_acquire) ==
               RequestState::Granted;
      });
    }
    queue.release(waiter_req);
  });
  sched.spawn("holder", [&](model::ThreadCtx& ctx) {
    ctx.yield();
    queue.release(holder_req);
    if (in_window) released_in_window = true;
  });
  const auto res = sched.run(chooser);
  if (trace_out) *trace_out = sched.trace();
  if (hit_window && released_in_window) *hit_window = true;
  return res == model::Scheduler::Result::Completed &&
         sched.error().empty();
}

TEST(LostWakeupRegression, ReleaseInsideLoadParkWindowExhaustive) {
  // Every schedule of the race must complete — including the ones where
  // the release fires inside the waiter's load/park window, which must be
  // reached at least once or the regression is not actually exercised.
  model::DfsChooser dfs;
  bool hit_window = false;
  do {
    std::vector<int> trace;
    ASSERT_TRUE(run_lost_wakeup_schedule(dfs, &trace, &hit_window))
        << "lost wakeup (deadlock) under schedule "
        << model::format_trace(trace);
  } while (dfs.next_schedule());
  EXPECT_GT(dfs.schedules(), 1u);
  EXPECT_TRUE(hit_window)
      << "no explored schedule released inside the load/park window";
}

TEST(LostWakeupRegression, ReleaseInsideLoadParkWindowSeeded) {
  for (const std::uint64_t seed : {3u, 17u, 42u, 1009u, 65537u}) {
    model::SeededChooser chooser(seed);
    std::vector<int> trace;
    ASSERT_TRUE(run_lost_wakeup_schedule(chooser, &trace, nullptr))
        << "lost wakeup (deadlock) under seed " << seed << ", schedule "
        << model::format_trace(trace);
  }
}

TEST(LostWakeupRegression, FutexRaceStress) {
  // Real-thread companion: the notifier fires with no delay, so across
  // iterations the waiter is caught at every point of its load -> park
  // path, including between the futex value check and the park syscall.
  for (int iter = 0; iter < 1000; ++iter) {
    std::atomic<std::uint32_t> word{0};
    std::thread notifier([&] {
      word.store(1, std::memory_order_release);
      sync::notify_all(word);
    });
    EXPECT_EQ(sync::wait_while_equal(word, 0u, sync::WaitStrategy::block()),
              1u);
    notifier.join();
  }
}

// ---------------------------------------------------------------------------
// Process-shared futex (sync/shared_futex.h): the cross-address-space
// parking point the ipc:: transport stands on. The core waiter's PRIVATE
// futexes cannot be woken from another process — these cases prove the
// shared flavour can, with the waker in a forked child and the futex word
// in a MAP_SHARED page.
// ---------------------------------------------------------------------------

#ifdef __linux__

TEST(SharedFutex, RealFutexBacksLinuxBuilds) {
  // The yield fallback would still be correct but silently slow — on
  // Linux the real process-shared futex must be in force.
  EXPECT_TRUE(sync::shared_futex_available());
}

TEST(SharedFutex, CrossProcessWakeReachesParkedParent) {
  // Word lives in an anonymous MAP_SHARED page; the parent parks on it,
  // the forked child publishes a new value and wakes. With PRIVATE
  // futexes (the sync/waiter.h flavour) the wake would never arrive and
  // the bounded wait would time out — so Changed here is exactly the
  // property the shm transport needs.
  void* page = ::mmap(nullptr, sizeof(std::atomic<std::uint32_t>),
                      PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                      -1, 0);
  ASSERT_NE(page, MAP_FAILED);
  auto* word = new (page) std::atomic<std::uint32_t>(0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // order: release — publishes the value the parent's acquire observes.
    word->store(1, std::memory_order_release);
    sync::shared_futex_wake_all(*word);
    ::_exit(0);
  }

  std::uint32_t seen = 0;
  const auto res = sync::wait_while_equal_shared(
      *word, 0u, sync::WaitStrategy::block(), 10'000'000'000, &seen);
  EXPECT_EQ(res, sync::SharedWait::Changed);
  EXPECT_EQ(seen, 1u);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::munmap(page, sizeof(std::atomic<std::uint32_t>));
}

TEST(SharedFutex, BoundedWaitTimesOutWithNoWaker) {
  // Dead peers wake nobody: every shared wait is bounded, and expiry with
  // the word unchanged reports TimedOut (the caller's cue to probe
  // liveness — ipc::Channel does exactly that).
  std::atomic<std::uint32_t> word{0};
  std::uint32_t seen = 42;
  const auto res = sync::wait_while_equal_shared(
      word, 0u, sync::WaitStrategy::block(), 20'000'000, &seen);
  EXPECT_EQ(res, sync::SharedWait::TimedOut);
  EXPECT_EQ(seen, 0u);
}

#endif  // __linux__

}  // namespace
}  // namespace orwl
