// Tests for epoch-based online re-placement: the drift metric
// (comm::normalized_distance), the Replacer decision engine, the runtime
// epoch barrier (heterogeneous iteration counts, mid-run rebinding), and
// the end-to-end properties — determinism across repeated runs, on_drift
// staying quiet on stationary workloads, and the phaseshift workload under
// on_drift being no slower than the static TreeMatch mapping on the
// simulated paper machine.

#include <gtest/gtest.h>

#include "comm/metrics.h"
#include "mem/numa.h"
#include "mem/policy.h"
#include "orwl/backend.h"
#include "orwl/program.h"
#include "place/replace.h"
#include "support/assert.h"
#include "topo/bitmap.h"
#include "topo/topology.h"
#include "workloads/workloads.h"

namespace orwl {
namespace {

// --------------------------------------------------------------------------
// Drift metric.
// --------------------------------------------------------------------------

comm::CommMatrix ring3(double w) {
  comm::CommMatrix m(3);
  m.set(0, 1, w);
  m.set(1, 2, w);
  return m;
}

TEST(NormalizedDistance, IdenticalPatternsAreAtZero) {
  const comm::CommMatrix m = ring3(100.0);
  EXPECT_DOUBLE_EQ(comm::normalized_distance(m, m), 0.0);
}

TEST(NormalizedDistance, ScaleInvariant) {
  // Measuring twice as long must not register as drift.
  EXPECT_DOUBLE_EQ(comm::normalized_distance(ring3(1.0), ring3(64.0)), 0.0);
}

TEST(NormalizedDistance, DisjointSupportsAreAtOne) {
  comm::CommMatrix a(3), b(3);
  a.set(0, 1, 10.0);
  b.set(1, 2, 10.0);
  EXPECT_DOUBLE_EQ(comm::normalized_distance(a, b), 1.0);
}

TEST(NormalizedDistance, ZeroVolumeRules) {
  const comm::CommMatrix empty(3);
  EXPECT_DOUBLE_EQ(comm::normalized_distance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(comm::normalized_distance(empty, ring3(5.0)), 1.0);
}

TEST(NormalizedDistance, PartialOverlapIsBetween) {
  comm::CommMatrix a(3), b(3);
  a.set(0, 1, 1.0);
  a.set(1, 2, 1.0);
  b.set(0, 1, 1.0);
  b.set(0, 2, 1.0);
  // Half the mass moved from edge (1,2) to edge (0,2).
  EXPECT_DOUBLE_EQ(comm::normalized_distance(a, b), 0.5);
}

TEST(NormalizedDistance, OrderMismatchThrows) {
  EXPECT_THROW(
      (void)comm::normalized_distance(comm::CommMatrix(2),
                                      comm::CommMatrix(3)),
      ContractError);
}

// --------------------------------------------------------------------------
// Policy parsing.
// --------------------------------------------------------------------------

TEST(ReplacementPolicy, ParseAndToString) {
  using Mode = place::ReplacementPolicy::Mode;
  EXPECT_EQ(place::parse_replacement_mode("off"), Mode::Off);
  EXPECT_EQ(place::parse_replacement_mode("every_epoch"), Mode::EveryEpoch);
  EXPECT_EQ(place::parse_replacement_mode("EVERY"), Mode::EveryEpoch);
  EXPECT_EQ(place::parse_replacement_mode("on_drift"), Mode::OnDrift);
  EXPECT_EQ(place::parse_replacement_mode("drift"), Mode::OnDrift);
  EXPECT_THROW((void)place::parse_replacement_mode("sometimes"),
               ContractError);
  EXPECT_STREQ(place::to_string(Mode::OnDrift), "on_drift");
  EXPECT_TRUE(place::ReplacementPolicy::on_drift(0.3, 4).enabled());
  EXPECT_FALSE(place::ReplacementPolicy::off().enabled());
}

// --------------------------------------------------------------------------
// Replacer decisions.
// --------------------------------------------------------------------------

TEST(Replacer, OnDriftFiresOnlyAboveThreshold) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  const comm::CommMatrix basis = ring3(10.0);
  place::Replacer replacer(place::ReplacementPolicy::on_drift(0.4, 2), topo,
                           {}, 42, basis);

  // Same pattern, different scale: drift 0, no fire.
  auto d = replacer.evaluate(ring3(30.0));
  EXPECT_DOUBLE_EQ(d.drift, 0.0);
  EXPECT_FALSE(d.replaced);

  // Disjoint pattern: drift 1, fire; the fresh matrix becomes the basis.
  comm::CommMatrix shifted(3);
  shifted.set(0, 2, 10.0);
  d = replacer.evaluate(shifted);
  EXPECT_DOUBLE_EQ(d.drift, 1.0);
  EXPECT_TRUE(d.replaced);
  EXPECT_EQ(static_cast<int>(d.plan.compute_pu.size()), 3);
  EXPECT_EQ(replacer.replacements(), 1);

  // The same shifted pattern again: now at distance 0 from the new basis.
  d = replacer.evaluate(shifted);
  EXPECT_DOUBLE_EQ(d.drift, 0.0);
  EXPECT_FALSE(d.replaced);
}

TEST(Replacer, EveryEpochAlwaysFires) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  place::Replacer replacer(place::ReplacementPolicy::every_epoch(1), topo,
                           {}, 42, ring3(1.0));
  EXPECT_TRUE(replacer.evaluate(ring3(1.0)).replaced);
  EXPECT_TRUE(replacer.evaluate(ring3(2.0)).replaced);
  EXPECT_EQ(replacer.replacements(), 2);
}

TEST(Replacer, EmptyWindowNeverFires) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  place::Replacer replacer(place::ReplacementPolicy::every_epoch(1), topo,
                           {}, 42, ring3(1.0));
  const auto d = replacer.evaluate(comm::CommMatrix(3));
  EXPECT_FALSE(d.replaced);
  EXPECT_DOUBLE_EQ(d.drift, 0.0);
}

TEST(Replacer, CountMigrations) {
  EXPECT_EQ(place::count_migrations({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(place::count_migrations({0, 1, 2}, {0, 2, 1}), 2);
  EXPECT_THROW((void)place::count_migrations({0}, {0, 1}), ContractError);
}

TEST(Replacer, ReplacementWithoutPlacementThrows) {
  Program p;
  EXPECT_THROW(p.replacement(place::ReplacementPolicy::on_drift(0.25, 2)),
               ContractError);
}

// --------------------------------------------------------------------------
// End-to-end: simulated paper machine.
// --------------------------------------------------------------------------

RunReport run_sim(const std::string& workload, const workloads::Params& prm,
                  place::ReplacementPolicy rp) {
  Program p;
  workloads::get(workload).build(p, prm);
  p.place(place::Policy::TreeMatch);
  if (rp.enabled()) p.replacement(rp);
  SimBackend backend(topo::Topology::paper_machine());
  return p.run(backend);
}

TEST(OnlineReplacement, DeterministicAcrossRepeatedSimRuns) {
  const workloads::Params prm{.tasks = 16, .size = 1024, .iterations = 12};
  const auto rp = place::ReplacementPolicy::on_drift(0.25, 2);
  const RunReport a = run_sim("phaseshift", prm, rp);
  const RunReport b = run_sim("phaseshift", prm, rp);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.replacements, b.replacements);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].drift, b.epochs[i].drift) << "epoch " << i;
    EXPECT_EQ(a.epochs[i].replaced, b.epochs[i].replaced) << "epoch " << i;
    EXPECT_EQ(a.epochs[i].compute_pu, b.epochs[i].compute_pu)
        << "epoch " << i;
  }
}

TEST(OnlineReplacement, OnDriftNeverFiresOnStationaryWorkloadSim) {
  // A stationary pattern drifts by 0 between epochs; the initial basis
  // (the declared matrix the placement was computed from) matches the
  // per-window pattern too, so no boundary fires.
  for (const char* name : {"stencil2d", "alltoall"}) {
    const RunReport rep =
        run_sim(name, {.tasks = 8, .size = 64, .iterations = 12},
                place::ReplacementPolicy::on_drift(0.25, 3));
    EXPECT_EQ(rep.replacements, 0) << name;
    EXPECT_FALSE(rep.epochs.empty()) << name;
    for (const RunReport::EpochRecord& e : rep.epochs) {
      EXPECT_FALSE(e.replaced) << name << " epoch " << e.epoch;
      EXPECT_LE(e.drift, 0.25) << name << " epoch " << e.epoch;
    }
  }
}

TEST(OnlineReplacement, PhaseshiftOnDriftFiresExactlyAtTheShift) {
  const RunReport rep =
      run_sim("phaseshift", {.tasks = 16, .size = 4096, .iterations = 16},
              place::ReplacementPolicy::on_drift(0.25, 2));
  EXPECT_EQ(rep.replacements, 1);
  // The firing boundary is the first whose window lies in phase B
  // (H = 8, epoch length 2 -> the window [8, 10) evaluated at round 10).
  bool fired = false;
  for (const RunReport::EpochRecord& e : rep.epochs) {
    if (e.replaced) {
      fired = true;
      EXPECT_EQ(e.round, 10);
      EXPECT_GT(e.drift, 0.25);
      EXPECT_GT(e.migrated, 0);
      EXPECT_GT(e.replace_seconds, 0.0);
    }
  }
  EXPECT_TRUE(fired);
}

// The acceptance property: on the simulated paper machine, phaseshift
// under on_drift re-placement is no slower than the static TreeMatch
// mapping (in fact faster — the recorded BENCH_workloads.json shows the
// margin at the default scale).
TEST(OnlineReplacement, PhaseshiftOnDriftNoSlowerThanStaticTreeMatch) {
  const workloads::Params prm = workloads::get("phaseshift").defaults;
  const RunReport fixed =
      run_sim("phaseshift", prm, place::ReplacementPolicy::off());
  const RunReport adaptive =
      run_sim("phaseshift", prm, place::ReplacementPolicy::on_drift(0.25, 2));
  EXPECT_EQ(adaptive.replacements, 1);
  EXPECT_LE(adaptive.seconds, fixed.seconds * 1.001)
      << "adaptive " << adaptive.seconds << " s vs static " << fixed.seconds
      << " s";
}

// --------------------------------------------------------------------------
// End-to-end: real runtime.
// --------------------------------------------------------------------------

TEST(OnlineReplacement, RuntimeEpochBarrierAndRebindWork) {
  const workloads::Params prm{.tasks = 4, .size = 64, .iterations = 6};
  Program p;
  const workloads::Built built = workloads::get("phaseshift").build(p, prm);
  p.place(place::Policy::TreeMatch);
  p.replacement(place::ReplacementPolicy::every_epoch(2));
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  // Boundaries before rounds 2 and 4; every_epoch re-places at each.
  ASSERT_EQ(rep.epochs.size(), 2u);
  EXPECT_EQ(rep.epochs[0].round, 2);
  EXPECT_EQ(rep.epochs[1].round, 4);
  EXPECT_EQ(rep.replacements, 2);
  for (const RunReport::EpochRecord& e : rep.epochs)
    EXPECT_EQ(e.compute_pu.size(), static_cast<std::size_t>(p.num_tasks()));
  std::string why;
  EXPECT_TRUE(built.verify(backend, why)) << why;
}

TEST(OnlineReplacement, RuntimeOnDriftStationaryStaysQuiet) {
  // alltoall exchanges the identical uniform pattern every round, so no
  // measured window can drift from the basis.
  Program p;
  const workloads::Built built = workloads::get("alltoall").build(
      p, {.tasks = 4, .size = 32, .iterations = 9});
  p.place(place::Policy::TreeMatch);
  p.replacement(place::ReplacementPolicy::on_drift(0.25, 3));
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  EXPECT_EQ(rep.replacements, 0);
  ASSERT_EQ(rep.epochs.size(), 2u);
  for (const RunReport::EpochRecord& e : rep.epochs)
    EXPECT_FALSE(e.replaced);
  std::string why;
  EXPECT_TRUE(built.verify(backend, why)) << why;
}

TEST(OnlineReplacement, RuntimeDeterministicReplacementDecisions) {
  const auto decisions = [] {
    Program p;
    workloads::get("phaseshift")
        .build(p, {.tasks = 4, .size = 64, .iterations = 8});
    p.place(place::Policy::TreeMatch);
    p.replacement(place::ReplacementPolicy::on_drift(0.25, 2));
    RuntimeBackend backend;
    const RunReport rep = p.run(backend);
    std::vector<bool> replaced;
    replaced.reserve(rep.epochs.size());
    for (const RunReport::EpochRecord& e : rep.epochs)
      replaced.push_back(e.replaced);
    return replaced;
  };
  const std::vector<bool> a = decisions();
  const std::vector<bool> b = decisions();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// --------------------------------------------------------------------------
// Location memory follows re-placement (memory policy numa_local).
// --------------------------------------------------------------------------

TEST(OnlineReplacement, LocationPagesFollowTheMigratedWriter) {
  // Mechanism level, with a fabricated two-node inventory so the check is
  // meaningful on single-node hosts: each location's target node must
  // track its planned writer's PU across re-placements.
  RuntimeOptions opts;
  opts.memory = mem::MemoryPolicy::NumaLocal;
  Runtime rt(opts);
  const LocationId a = rt.add_location(4096, "a");
  const LocationId b = rt.add_location(4096, "b");
  const TaskId t0 = rt.add_task("w0", [](TaskContext&) {});
  const TaskId t1 = rt.add_task("w1", [](TaskContext&) {});
  rt.add_handle(t0, a, AccessMode::Write);
  rt.add_handle(t1, b, AccessMode::Write);
  // Readers must not steal ownership: the *first Write* handle decides.
  rt.add_handle(t1, a, AccessMode::Read);

  const auto topo = topo::Topology::synthetic("pack:2 pu:1");
  const mem::NumaInfo numa = mem::NumaInfo::from_node_cpus(
      {topo::Bitmap::single(0), topo::Bitmap::single(1)});

  EXPECT_EQ(rt.place_location_memory({0, 1}, topo, &numa), 2);
  EXPECT_EQ(rt.location_node(a), 0);
  EXPECT_EQ(rt.location_node(b), 1);

  // The writers swap PUs (an epoch re-placement): the pages follow.
  EXPECT_EQ(rt.place_location_memory({1, 0}, topo, &numa), 2);
  EXPECT_EQ(rt.location_node(a), 1);
  EXPECT_EQ(rt.location_node(b), 0);

  // Unchanged mapping: nothing left to move.
  EXPECT_EQ(rt.place_location_memory({1, 0}, topo, &numa), 0);
  // Unbound writer: its location stays where it is.
  EXPECT_EQ(rt.place_location_memory({-1, 0}, topo, &numa), 0);
  EXPECT_EQ(rt.location_node(a), 1);
}

TEST(OnlineReplacement, NumaLocalRunsEndToEndWithEpochMigration) {
  Program p;
  const workloads::Built built = workloads::get("phaseshift")
      .build(p, {.tasks = 4, .size = 64, .iterations = 6});
  p.place(place::Policy::TreeMatch);
  p.replacement(place::ReplacementPolicy::every_epoch(2));
  p.memory_policy(mem::MemoryPolicy::NumaLocal);
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  EXPECT_EQ(rep.replacements, 2);
  for (const RunReport::EpochRecord& e : rep.epochs)
    EXPECT_GE(e.moved_locations, 0);
  std::string why;
  EXPECT_TRUE(built.verify(backend, why)) << why;
}

TEST(OnlineReplacement, SimNumaLocalMovesHomesAndChargesPageMoves) {
  const auto run = [](mem::MemoryPolicy mp) {
    Program p;
    workloads::get("phaseshift")
        .build(p, {.tasks = 16, .size = 4096, .iterations = 16});
    p.place(place::Policy::TreeMatch);
    p.replacement(place::ReplacementPolicy::on_drift(0.25, 2));
    p.memory_policy(mp);
    SimBackend backend(topo::Topology::paper_machine());
    return p.run(backend);
  };
  const RunReport heap = run(mem::MemoryPolicy::Heap);
  const RunReport local = run(mem::MemoryPolicy::NumaLocal);
  // Identical decision sequence; the memory policy only changes what a
  // firing boundary costs and where the data lives afterwards.
  ASSERT_EQ(heap.replacements, 1);
  ASSERT_EQ(local.replacements, 1);
  for (std::size_t i = 0; i < heap.epochs.size(); ++i) {
    const RunReport::EpochRecord& h = heap.epochs[i];
    const RunReport::EpochRecord& l = local.epochs[i];
    EXPECT_EQ(h.replaced, l.replaced);
    EXPECT_EQ(h.moved_locations, 0);
    if (l.replaced) {
      EXPECT_GT(l.moved_locations, 0);
      // The page move is charged on top of the thread-migration cost.
      EXPECT_GT(l.replace_seconds, h.replace_seconds);
    }
  }
  EXPECT_NE(heap.seconds, local.seconds);
}

TEST(OnlineReplacement, HeterogeneousIterationCountsCannotDeadlock) {
  // A task that finishes before later epoch boundaries retires from the
  // barrier population; the remaining tasks must keep meeting boundaries.
  Program p;
  auto a = p.location<long>(1, "a");
  auto b = p.location<long>(1, "b");
  p.task("short").writes(a).iterations(3).body([a](Step& s) {
    s.write(a, [&](std::span<long> x) { x[0] += 1; });
  });
  p.task("long").writes(b).iterations(9).body([b](Step& s) {
    s.write(b, [&](std::span<long> x) { x[0] += 1; });
  });
  p.place(place::Policy::Compact);
  p.replacement(place::ReplacementPolicy::every_epoch(2));
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  EXPECT_EQ(backend.fetch(a)[0], 3);
  EXPECT_EQ(backend.fetch(b)[0], 9);
  // Boundaries at rounds 2, 4, 6, 8 — the later ones met by "long" alone.
  EXPECT_EQ(rep.epochs.size(), 4u);
}

}  // namespace
}  // namespace orwl
