#pragma once
// Protocol model: the REAL FifoQueue + Request state machine + GrantSink,
// driven by virtual threads (model/vthread.h) so every interleaving of
// protocol steps can be explored deterministically — seeded corpora for
// larger configurations, bounded-exhaustive DFS for small ones.
//
// A World owns L locations (each a real FifoQueue behind a recording
// GrantSink) and T task scripts. Each task holds a ModelHandle per
// location it accesses — the same double-slot renewal discipline as
// orwl::Handle, but parking through ctx.wait_until instead of the futex
// waiter (a cooperative scheduler cannot spin on a real futex). The task
// scripts run the iterative ORWL discipline: prime in canonical order,
// then acquire -> (hold) -> release_and_renew for a fixed round count.
//
// Invariants asserted (the paper-level guarantees):
//   * FIFO grant delivery  — per location, grant announcements happen in
//     strictly increasing ticket order (insertion order is never bypassed)
//   * exclusivity          — per location, the granted set is one Write or
//     only Reads, never a mix, never two Writes
//   * single announcement  — each (location, ticket) is announced exactly
//     once
//   * no lost wakeup       — a blocked task whose grant has arrived is
//     always runnable (checked by the scheduler before declaring deadlock)
//   * termination          — every explored schedule completes; a Deadlock
//     result fails the test with the offending schedule trace

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "model/vthread.h"
#include "orwl/queue.h"

namespace orwl::model {

/// Per-location recording sink. Checks FIFO order + single announcement at
/// announcement time; exclusivity is checked against the queue snapshot
/// after every protocol step.
// sink-contract: no-queue-reentry — records the ticket and returns (the
// optional forward hook publishes to a model ring deque; it must not call
// back into the queue either).
class RecordingSink final : public GrantSink {
 public:
  void on_grant(Request& req) override {
    grants.push_back(req.ticket);
    if (forward) forward(req);
  }
  std::vector<Ticket> grants;  ///< announcement order
  /// Remote world: mirrors ipc::RemoteGrantSink — grants whose request is
  /// remote-owned are additionally published onto the model grant ring.
  std::function<void(const Request&)> forward;
};

/// A location under test: real queue + recording sink.
struct ModelLocation {
  ModelLocation() : queue(&sink) {}
  RecordingSink sink;
  FifoQueue queue;
};

/// Mirrors orwl::Handle's two-slot renewal discipline over the real queue,
/// but waits cooperatively. The two-phase acquire makes the waiter's
/// "load, then park" window an explicit schedule point, so the exhaustive
/// mode covers the release-lands-between-load-and-park interleaving that a
/// lost-wakeup bug would turn into a deadlock.
class ModelHandle {
 public:
  ModelHandle(ModelLocation& loc, AccessMode mode) : loc_(loc) {
    for (Request& r : slots_) r.mode = mode;
  }

  void request() { loc_.queue.insert(cur()); }

  /// Two-phase blocking acquire: observe the state (one protocol step),
  /// then block until granted (the park). A grant landing between the two
  /// phases must be picked up by the re-check in wait_until.
  void acquire(ThreadCtx& ctx) {
    // order: acquire — same pairing as Handle::acquire's fast path.
    const RequestState seen = cur().state.load(std::memory_order_acquire);
    if (seen != RequestState::Granted) {
      ctx.yield();  // the load/park window: releases may land here
      Request& r = cur();
      ctx.wait_until([&r] {
        // order: acquire — grant consumption, pairs with the queue's
        // release store.
        return r.state.load(std::memory_order_acquire) ==
               RequestState::Granted;
      });
    }
  }

  void release() { loc_.queue.release(cur()); }

  /// The iterative renewal, modelled as the TWO steps the lock-free queue
  /// makes independently visible: the renewal takes its ticket and
  /// publishes its ring slot (insert), and only then is the current grant
  /// given up (release). The explicit schedule point between them drives
  /// the ticket window — the DFS lands every other protocol step inside
  /// it, proving the cyclic order cannot be usurped while a renewal is
  /// published but its predecessor still holds the grant. (The runtime's
  /// single-call release_and_renew is the same two steps back to back;
  /// queue_test covers that form.)
  void release_and_renew(ThreadCtx& ctx) {
    Request& c = cur();
    Request& n = spare();
    active_ ^= 1;
    loc_.queue.insert(n);   // ticket window opens: renewal is queued...
    ctx.yield();            // ...any protocol step may land here...
    loc_.queue.release(c);  // ...before the current grant is given up
  }

  [[nodiscard]] Ticket current_ticket() const { return cur().ticket; }

 private:
  Request& cur() { return slots_[static_cast<std::size_t>(active_)]; }
  [[nodiscard]] const Request& cur() const {
    return slots_[static_cast<std::size_t>(active_)];
  }
  Request& spare() { return slots_[static_cast<std::size_t>(active_ ^ 1)]; }

  ModelLocation& loc_;
  Request slots_[2];
  int active_ = 0;
};

/// One task's accesses: (location index, mode) pairs, acquired in declared
/// order each round — the canonical ORWL iterative task shape.
struct TaskSpec {
  std::string name;
  struct Access {
    int location;
    AccessMode mode;
  };
  std::vector<Access> accesses;
  int rounds = 2;
  /// run_remote_world only: this task lives in the "peer process" — its
  /// handle operations cross the model ops ring and its grants come back
  /// over the model grant ring (run_world ignores the flag).
  bool remote = false;
  /// Fabricated NUMA node for the task's vthread (installed with
  /// topo::ScopedNodeId for the vthread's lifetime), so model worlds can
  /// exercise the queue's node plumbing — including the combiner's
  /// preferred-owner handoff paths — on a single-package machine.
  int node = 0;
};

/// Outcome of one explored schedule.
struct WorldResult {
  bool completed = false;
  std::string failure;       ///< empty when all invariants held
  std::vector<int> trace;    ///< schedule steps (vthread ids), for repros
  std::uint64_t steps = 0;
};

/// Build the world, run one schedule under `chooser`, check invariants.
/// (format_trace in model/vthread.h renders a failed schedule.)
WorldResult run_world(const std::vector<TaskSpec>& tasks, int num_locations,
                      Chooser& chooser);

/// The cross-address-space seam (src/ipc/transport.h) as a model: tasks
/// with `remote = true` route request / release / release_and_renew
/// through an explicit ops-ring deque drained by an owner-pump vthread
/// into kRemoteOwner proxy requests on the real queues, and their grants
/// come back through a grant-ring deque drained by a peer-pump vthread —
/// so the ring's publish/consume window is an explicit schedule point and
/// the chooser can interleave pump steps against every protocol step.
/// Priming mirrors the transport's wait_peer_attached barrier: every
/// initial request (local and remote) is drained into the FIFOs before
/// any task or pump vthread takes a step. Invariants are run_world's.
WorldResult run_remote_world(const std::vector<TaskSpec>& tasks,
                             int num_locations, Chooser& chooser);

}  // namespace orwl::model
