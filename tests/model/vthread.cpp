#include "model/vthread.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace orwl::model {

std::string format_trace(const std::vector<int>& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i)
    os << (i ? " " : "") << 't' << trace[i];
  return os.str();
}

namespace {
/// Thrown through a virtual-thread body to unwind it at teardown; a
/// dedicated type so it can never be confused with an exception from the
/// code under test.
struct TeardownSignal {};
}  // namespace

// ---------------------------------------------------------------------------
// Choosers
// ---------------------------------------------------------------------------

int SeededChooser::pick(int n) {
  // SplitMix64 step; stable across platforms and standard libraries.
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(n));
}

int DfsChooser::pick(int n) {
  if (depth_ == prefix_.size()) {
    // New decision point: take branch 0, remember the width for the
    // odometer advance.
    prefix_.push_back(0);
    width_.push_back(n);
  }
  const int choice = prefix_[depth_];
  ++depth_;
  return choice < n ? choice : n - 1;  // defensive; widths are replayed
}

bool DfsChooser::next_schedule() {
  ++schedules_;
  depth_ = 0;
  // Odometer with carry: bump the deepest decision that still has an
  // unexplored sibling, forget everything deeper.
  while (!prefix_.empty()) {
    if (prefix_.back() + 1 < width_.back()) {
      ++prefix_.back();
      return true;
    }
    prefix_.pop_back();
    width_.pop_back();
  }
  return false;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

void ThreadCtx::yield() {
  if (!sched_.yield_to_scheduler(id_, Scheduler::State::Ready, nullptr))
    throw TeardownSignal{};
}

void ThreadCtx::wait_until(std::function<bool()> pred) {
  if (pred()) return;  // already true: not a blocking point
  if (!sched_.yield_to_scheduler(id_, Scheduler::State::Blocked,
                                 std::move(pred)))
    throw TeardownSignal{};
}

void Scheduler::spawn(std::string name,
                      std::function<void(ThreadCtx&)> body) {
  if (started_) throw std::logic_error("spawn after run()");
  auto vt = std::make_unique<VThread>();
  vt->name = std::move(name);
  vt->body = std::move(body);
  threads_.push_back(std::move(vt));
}

bool Scheduler::yield_to_scheduler(int id, State new_state,
                                   std::function<bool()> pred) {
  std::unique_lock lock(mu_);
  VThread& vt = *threads_[static_cast<std::size_t>(id)];
  vt.state = new_state;
  vt.pred = std::move(pred);
  vt.go = false;
  running_ = -1;
  cv_.notify_all();
  cv_.wait(lock, [&] { return vt.go || teardown_; });
  if (teardown_) return false;
  vt.state = State::Running;
  return true;
}

void Scheduler::thread_main(int id) {
  VThread& vt = *threads_[static_cast<std::size_t>(id)];
  {
    // Wait for the first token before touching any shared state.
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return vt.go || teardown_; });
    if (teardown_) return;
    vt.state = State::Running;
  }
  ThreadCtx ctx(*this, id);
  try {
    vt.body(ctx);
  } catch (const TeardownSignal&) {
    // teardown unwind — fall through to Done
  } catch (const std::exception& e) {
    std::unique_lock lock(mu_);
    if (error_.empty()) error_ = vt.name + ": " + e.what();
  }
  std::unique_lock lock(mu_);
  vt.state = State::Done;
  vt.go = false;
  running_ = -1;
  cv_.notify_all();
}

Scheduler::Result Scheduler::run(Chooser& chooser) {
  if (started_) throw std::logic_error("run() may only be called once");
  started_ = true;
  for (std::size_t i = 0; i < threads_.size(); ++i)
    threads_[i]->os_thread =
        std::thread([this, i] { thread_main(static_cast<int>(i)); });

  Result result = Result::Completed;
  {
    std::unique_lock lock(mu_);
    for (;;) {
      // Collect runnable threads: Ready, plus Blocked whose predicate now
      // holds. Predicates run here, with no virtual thread executing, so
      // they can safely read protocol state.
      std::vector<int> runnable;
      bool all_done = true;
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        VThread& vt = *threads_[i];
        if (vt.state == State::Done) continue;
        all_done = false;
        if (vt.state == State::Ready ||
            (vt.state == State::Blocked && vt.pred && vt.pred())) {
          runnable.push_back(static_cast<int>(i));
        }
      }
      if (all_done) break;
      if (!error_.empty()) break;
      if (runnable.empty()) {
        // Every live thread is blocked on a false predicate. Because
        // predicates were just re-evaluated, this cannot be a lost
        // wakeup — it is a genuine protocol deadlock.
        result = Result::Deadlock;
        for (const auto& vt : threads_)
          if (vt->state == State::Blocked) deadlocked_.push_back(vt->name);
        break;
      }
      const int pick = chooser.pick(static_cast<int>(runnable.size()));
      const int id = runnable[static_cast<std::size_t>(pick)];
      trace_.push_back(id);
      VThread& vt = *threads_[static_cast<std::size_t>(id)];
      vt.pred = nullptr;
      vt.go = true;
      running_ = id;
      cv_.notify_all();
      cv_.wait(lock, [&] { return running_ == -1; });
    }
    teardown_ = true;
    cv_.notify_all();
  }
  for (auto& vt : threads_)
    if (vt->os_thread.joinable()) vt->os_thread.join();
  return result;
}

Scheduler::~Scheduler() {
  {
    std::unique_lock lock(mu_);
    teardown_ = true;
    cv_.notify_all();
  }
  for (auto& vt : threads_)
    if (vt->os_thread.joinable()) vt->os_thread.join();
}

}  // namespace orwl::model
