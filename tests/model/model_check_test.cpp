// Protocol model checker: drives the REAL FifoQueue / Request state machine
// through the deterministic virtual-thread scheduler and asserts the
// paper-level invariants over every explored schedule (see model/protocol.h).
//
// Two regimes:
//   * bounded-exhaustive — DfsChooser enumerates EVERY schedule of small
//     2-handle worlds (writer/writer, writer/reader, reader/reader)
//   * seeded corpus      — SeededChooser explores fixed pseudo-random
//     schedules of 3-4-task worlds too large to exhaust

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "model/protocol.h"
#include "model/vthread.h"

namespace orwl::model {
namespace {

using Access = TaskSpec::Access;

/// Run every schedule of `tasks` to exhaustion; fail on the first schedule
/// that violates an invariant, printing its trace for replay. Writes the
/// number of schedules explored to `*explored`.
void explore_exhaustively(const std::vector<TaskSpec>& tasks,
                          int num_locations, std::uint64_t max_schedules,
                          std::uint64_t* explored) {
  DfsChooser dfs;
  do {
    WorldResult r = run_world(tasks, num_locations, dfs);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nschedule: " << format_trace(r.trace);
    ASSERT_LT(dfs.schedules(), max_schedules)
        << "exhaustive exploration exceeded the schedule budget — "
           "shrink the configuration";
  } while (dfs.next_schedule());
  *explored = dfs.schedules();
}

// ---------------------------------------------------------------------------
// Bounded-exhaustive: 2 handles, every schedule
// ---------------------------------------------------------------------------

TEST(ModelExhaustive, TwoWritersOneLocation) {
  const std::vector<TaskSpec> tasks = {
      {"w0", {Access{0, AccessMode::Write}}, 2},
      {"w1", {Access{0, AccessMode::Write}}, 2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  // The tree must branch: both interleavings of the two writers exist.
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, WriterAndReaderOneLocation) {
  const std::vector<TaskSpec> tasks = {
      {"w", {Access{0, AccessMode::Write}}, 2},
      {"r", {Access{0, AccessMode::Read}}, 2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, TwoReadersOverlap) {
  // Concurrent readers are the schedule-rich case: both may hold the
  // location at once, so the hold-window yields genuinely interleave.
  const std::vector<TaskSpec> tasks = {
      {"r0", {Access{0, AccessMode::Read}}, 2},
      {"r1", {Access{0, AccessMode::Read}}, 2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, CrossedWritersTwoLocations) {
  // The classic lock-ordering deadlock shape: t0 takes L0 then L1, t1
  // takes L1 then L0. Under ORWL's canonical priming + renewal discipline
  // this is deadlock-free — every schedule must terminate.
  const std::vector<TaskSpec> tasks = {
      {"t0",
       {Access{0, AccessMode::Write}, Access{1, AccessMode::Write}},
       2},
      {"t1",
       {Access{1, AccessMode::Write}, Access{0, AccessMode::Write}},
       2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 2, 1u << 21, &n);
  EXPECT_GT(n, 1u);
}

/// Fixed seed corpus — failures name the seed, so a repro is one run.
const std::uint64_t kSeeds[] = {1,  2,  3,  5,  8,   13,  21,  34,
                                55, 89, 144, 233, 377, 610, 987, 1597};

// ---------------------------------------------------------------------------
// Remote world: the shm-transport seam (ipc/transport.h) as a model —
// ring publish/consume is an explicit schedule point (see run_remote_world)
// ---------------------------------------------------------------------------

/// DFS driver for the remote world, mirroring explore_exhaustively.
void explore_remote_exhaustively(const std::vector<TaskSpec>& tasks,
                                 int num_locations,
                                 std::uint64_t max_schedules,
                                 std::uint64_t* explored) {
  DfsChooser dfs;
  do {
    WorldResult r = run_remote_world(tasks, num_locations, dfs);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nschedule: " << format_trace(r.trace);
    ASSERT_LT(dfs.schedules(), max_schedules)
        << "exhaustive exploration exceeded the schedule budget — "
           "shrink the configuration";
  } while (dfs.next_schedule());
  *explored = dfs.schedules();
}

TEST(ModelRemoteExhaustive, LocalAndRemoteWriterOneLocation) {
  // The acceptance shape: one in-process writer (the owner's own task) and
  // one writer whose every operation crosses the model rings. Every
  // schedule — including pumps lagging arbitrarily far behind publishes —
  // must preserve FIFO, exclusivity and termination. One round each: four
  // vthreads (two tasks + two pumps) make multi-round worlds infeasible
  // to exhaust; renewal traffic is covered by the seeded corpus below.
  const std::vector<TaskSpec> tasks = {
      {"local-w", {Access{0, AccessMode::Write}}, 1, /*remote=*/false},
      {"remote-w", {Access{0, AccessMode::Write}}, 1, /*remote=*/true},
  };
  std::uint64_t n = 0;
  explore_remote_exhaustively(tasks, 1, 1u << 22, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelRemoteExhaustive, RemoteReaderAgainstLocalWriter) {
  // Reader grants can overlap the drain window: a remote Read section may
  // still be open (proxy Granted) while the local writer's request sits
  // queued behind it and the grant ring holds undelivered announcements.
  const std::vector<TaskSpec> tasks = {
      {"local-w", {Access{0, AccessMode::Write}}, 1, /*remote=*/false},
      {"remote-r", {Access{0, AccessMode::Read}}, 1, /*remote=*/true},
  };
  std::uint64_t n = 0;
  explore_remote_exhaustively(tasks, 1, 1u << 22, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelRemoteSeeded, MixedLocalRemoteTwoLocations) {
  // Too large to exhaust: two remote handles (slots exercise the proxy
  // table) plus two local tasks over two locations, seeded corpus.
  const std::vector<TaskSpec> tasks = {
      {"local-w0", {Access{0, AccessMode::Write}}, 3, /*remote=*/false},
      {"local-r1", {Access{1, AccessMode::Read}}, 3, /*remote=*/false},
      {"remote-x",
       {Access{0, AccessMode::Write}, Access{1, AccessMode::Write}},
       3,
       /*remote=*/true},
  };
  for (const std::uint64_t seed : kSeeds) {
    SeededChooser chooser(seed);
    WorldResult r = run_remote_world(tasks, 2, chooser);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nseed: " << seed
        << "\nschedule: " << format_trace(r.trace);
  }
}

// ---------------------------------------------------------------------------
// Seeded corpus: larger worlds, fixed reproducible schedules
// ---------------------------------------------------------------------------

void explore_seeded(const std::vector<TaskSpec>& tasks, int num_locations) {
  for (const std::uint64_t seed : kSeeds) {
    SeededChooser chooser(seed);
    WorldResult r = run_world(tasks, num_locations, chooser);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nseed: " << seed
        << "\nschedule: " << format_trace(r.trace);
  }
}

TEST(ModelSeeded, FourTasksTwoLocationsMixedModes) {
  const std::vector<TaskSpec> tasks = {
      {"w0", {Access{0, AccessMode::Write}}, 3},
      {"r0", {Access{0, AccessMode::Read}}, 3},
      {"w1", {Access{1, AccessMode::Write}}, 3},
      {"x",
       {Access{0, AccessMode::Read}, Access{1, AccessMode::Read}},
       3},
  };
  explore_seeded(tasks, 2);
}

TEST(ModelSeeded, RingOfWritersWithNeighbourReads) {
  // The paper's benchmark shape: task i owns (writes) location i and reads
  // its neighbour — a dependence cycle in the task graph that the ordered
  // renewal discipline must still drain every round.
  const std::vector<TaskSpec> tasks = {
      {"t0",
       {Access{0, AccessMode::Write}, Access{1, AccessMode::Read}},
       3},
      {"t1",
       {Access{1, AccessMode::Write}, Access{2, AccessMode::Read}},
       3},
      {"t2",
       {Access{2, AccessMode::Write}, Access{0, AccessMode::Read}},
       3},
  };
  explore_seeded(tasks, 3);
}

TEST(ModelSeeded, WriterContentionSingleLocation) {
  const std::vector<TaskSpec> tasks = {
      {"w0", {Access{0, AccessMode::Write}}, 4},
      {"w1", {Access{0, AccessMode::Write}}, 4},
      {"w2", {Access{0, AccessMode::Write}}, 4},
      {"w3", {Access{0, AccessMode::Write}}, 4},
  };
  explore_seeded(tasks, 1);
}

// ---------------------------------------------------------------------------
// Scheduler self-checks
// ---------------------------------------------------------------------------

TEST(ModelScheduler, DetectsGenuineDeadlock) {
  // Two threads each waiting on a flag only the other would set — the
  // scheduler must report Deadlock (after re-evaluating predicates), not
  // hang.
  bool a = false;
  bool b = false;
  Scheduler sched;
  sched.spawn("p", [&](ThreadCtx& ctx) {
    ctx.wait_until([&] { return a; });
    b = true;
  });
  sched.spawn("q", [&](ThreadCtx& ctx) {
    ctx.wait_until([&] { return b; });
    a = true;
  });
  SeededChooser chooser(7);
  EXPECT_EQ(sched.run(chooser), Scheduler::Result::Deadlock);
  EXPECT_EQ(sched.deadlocked().size(), 2u);
}

TEST(ModelScheduler, NoLostWakeupAcrossParkWindow) {
  // Thread r observes "not ready", then parks; thread w sets ready while r
  // sits between the observation and the park. The scheduler re-evaluates
  // r's predicate at every step, so the wakeup cannot be lost.
  bool ready = false;
  bool r_done = false;
  DfsChooser dfs;
  do {
    ready = false;
    r_done = false;
    Scheduler s;
    s.spawn("r", [&](ThreadCtx& ctx) {
      if (!ready) {
        ctx.yield();  // the load/park window
        ctx.wait_until([&] { return ready; });
      }
      r_done = true;
    });
    s.spawn("w", [&](ThreadCtx& ctx) {
      ctx.yield();
      ready = true;
    });
    ASSERT_EQ(s.run(dfs), Scheduler::Result::Completed)
        << "schedule: " << format_trace(s.trace());
    ASSERT_TRUE(r_done);
  } while (dfs.next_schedule());
  EXPECT_GT(dfs.schedules(), 1u);
}

TEST(ModelScheduler, DfsEnumeratesAllInterleavings) {
  // Two threads, one yield each: C(2,1)-style token orders. Count distinct
  // traces; DFS must cover more than one and terminate.
  std::vector<std::vector<int>> traces;
  DfsChooser dfs;
  do {
    Scheduler s;
    s.spawn("a", [](ThreadCtx& ctx) { ctx.yield(); });
    s.spawn("b", [](ThreadCtx& ctx) { ctx.yield(); });
    ASSERT_EQ(s.run(dfs), Scheduler::Result::Completed);
    traces.push_back(s.trace());
  } while (dfs.next_schedule());
  EXPECT_GT(traces.size(), 1u);
  for (std::size_t i = 1; i < traces.size(); ++i)
    EXPECT_NE(traces[i - 1], traces[i]) << "duplicate schedule explored";
}

}  // namespace
}  // namespace orwl::model
