// Protocol model checker: drives the REAL FifoQueue / Request state machine
// through the deterministic virtual-thread scheduler and asserts the
// paper-level invariants over every explored schedule (see model/protocol.h).
//
// Two regimes:
//   * bounded-exhaustive — DfsChooser enumerates EVERY schedule of small
//     2-handle worlds (writer/writer, writer/reader, reader/reader)
//   * seeded corpus      — SeededChooser explores fixed pseudo-random
//     schedules of 3-4-task worlds too large to exhaust

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "model/protocol.h"
#include "model/vthread.h"
#include "sync/combiner.h"
#include "topo/binding.h"

namespace orwl::model {
namespace {

using Access = TaskSpec::Access;

/// Run every schedule of `tasks` to exhaustion; fail on the first schedule
/// that violates an invariant, printing its trace for replay. Writes the
/// number of schedules explored to `*explored`.
void explore_exhaustively(const std::vector<TaskSpec>& tasks,
                          int num_locations, std::uint64_t max_schedules,
                          std::uint64_t* explored) {
  DfsChooser dfs;
  do {
    WorldResult r = run_world(tasks, num_locations, dfs);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nschedule: " << format_trace(r.trace);
    ASSERT_LT(dfs.schedules(), max_schedules)
        << "exhaustive exploration exceeded the schedule budget — "
           "shrink the configuration";
  } while (dfs.next_schedule());
  *explored = dfs.schedules();
}

// ---------------------------------------------------------------------------
// Bounded-exhaustive: 2 handles, every schedule
// ---------------------------------------------------------------------------

TEST(ModelExhaustive, TwoWritersOneLocation) {
  const std::vector<TaskSpec> tasks = {
      {"w0", {Access{0, AccessMode::Write}}, 2},
      {"w1", {Access{0, AccessMode::Write}}, 2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  // The tree must branch: both interleavings of the two writers exist.
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, WriterAndReaderOneLocation) {
  const std::vector<TaskSpec> tasks = {
      {"w", {Access{0, AccessMode::Write}}, 2},
      {"r", {Access{0, AccessMode::Read}}, 2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, TwoReadersOverlap) {
  // Concurrent readers are the schedule-rich case: both may hold the
  // location at once, so the hold-window yields genuinely interleave.
  const std::vector<TaskSpec> tasks = {
      {"r0", {Access{0, AccessMode::Read}}, 2},
      {"r1", {Access{0, AccessMode::Read}}, 2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, CrossedWritersTwoLocations) {
  // The classic lock-ordering deadlock shape: t0 takes L0 then L1, t1
  // takes L1 then L0. Under ORWL's canonical priming + renewal discipline
  // this is deadlock-free — every schedule must terminate.
  const std::vector<TaskSpec> tasks = {
      {"t0",
       {Access{0, AccessMode::Write}, Access{1, AccessMode::Write}},
       2},
      {"t1",
       {Access{1, AccessMode::Write}, Access{0, AccessMode::Write}},
       2},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 2, 1u << 21, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, ReadersAcrossTwoPackages) {
  // Fabricated 2-package world (TaskSpec::node + topo::ScopedNodeId): the
  // queue's grant path runs with DISTINCT node ids flowing into the
  // combiner's hierarchical plumbing, and concurrent readers make the
  // batched shared-read announcement (grant_run -> default on_grant_batch
  // loop) reachable. Every schedule must keep ticket order and single
  // announcement — the sink's strictly-increasing-ticket check plus the
  // exact grant count cover both, batched or not.
  const std::vector<TaskSpec> tasks = {
      {"r0", {Access{0, AccessMode::Read}}, 2, /*remote=*/false, /*node=*/0},
      {"r1", {Access{0, AccessMode::Read}}, 2, /*remote=*/false, /*node=*/1},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelExhaustive, WriterAndReaderAcrossTwoPackages) {
  // Same 2-package fabrication with mixed modes: exclusivity must hold
  // when the announcing threads disagree about their node.
  const std::vector<TaskSpec> tasks = {
      {"w", {Access{0, AccessMode::Write}}, 2, /*remote=*/false, /*node=*/0},
      {"r", {Access{0, AccessMode::Read}}, 2, /*remote=*/false, /*node=*/1},
  };
  std::uint64_t n = 0;
  explore_exhaustively(tasks, 1, 1u << 20, &n);
  EXPECT_GT(n, 1u);
}

// ---------------------------------------------------------------------------
// Combiner handoff: bounded-exhaustive DFS over the rendezvous itself
// ---------------------------------------------------------------------------

/// Spin hook: turns every rendezvous spin round (linger / offer loops)
/// into an explicit schedule point of the calling vthread.
void yield_observer(void* arg) { static_cast<ThreadCtx*>(arg)->yield(); }

TEST(ModelExhaustive, CombinerHandoffTwoPackages) {
  // The queue-level worlds cannot reach the combiner's handoff window: in
  // a cooperative world a whole combine() pass runs inside ONE protocol
  // step, so pending_ is always 0 when the next vthread announces. This
  // world drives sync::Combiner DIRECTLY with a process function that
  // yields mid-round (and spin loops that yield each round, via
  // spin_observer), making "combiner active", "announcer lingering" and
  // "baton offered" first-class schedulable states. DFS then exhausts a
  // 2-package world: two announcers on node 0 (handoff candidates), one
  // on node 1 (the cross-node loser path).
  //
  // Invariants, every schedule:
  //   * mutual exclusion — process() never runs concurrently with itself
  //   * no lost work     — every announced unit is drained exactly once
  //     (single announcement at the combiner level), even across a
  //     baton transfer
  //   * termination      — the bounded rendezvous never deadlocks
  // And across the whole exploration: at least one schedule transfers the
  // role (handoffs() > 0) — the window is genuinely covered, not skipped.
  struct Party {
    const char* name;
    int node;
  };
  // One announcement per party: enough to reach the handoff (a node-0
  // combiner mid-round, the other node-0 announcer lingering, the offer
  // claimed) while keeping the DFS tree small enough to exhaust — every
  // extra announcement multiplies the schedule count by orders of
  // magnitude, and each schedule is a fresh 3-vthread Scheduler run.
  const Party parties[] = {{"a0", 0}, {"b0", 0}, {"c1", 1}};
  constexpr int kOpsPerParty = 1;

  std::uint64_t total_handoffs = 0;
  std::uint64_t total_cross_node = 0;
  DfsChooser dfs;
  do {
    sync::Combiner combiner;
    // Tiny rendezvous budgets: each spin round is a schedule point, so
    // the DFS tree's depth (and the explored-schedule count) stays small.
    combiner.set_handoff_budgets(/*linger_rounds=*/2, /*offer_rounds=*/2);
    int announced = 0;   // work units published but not yet drained
    int processed = 0;   // work units drained by some process() round
    int in_process = 0;  // mutual-exclusion witness

    Scheduler sched;
    for (const Party& p : parties) {
      sched.spawn(p.name, [&, p](ThreadCtx& ctx) {
        topo::ScopedNodeId node_scope(p.node);
        // Per-thread (vthreads are real std::threads), so concurrent
        // worlds cannot observe each other's hook.
        sync::Combiner::spin_observer = {&yield_observer, &ctx};
        for (int op = 0; op < kOpsPerParty; ++op) {
          ++announced;  // the unit of work this announcement covers
          combiner.run(
              [&] {
                if (++in_process != 1)
                  throw std::logic_error(
                      "combiner mutual exclusion violated");
                ctx.yield();  // the handoff window: a round in progress
                processed += announced;  // catch up completely
                announced = 0;
                --in_process;
              },
              p.node);
          ctx.yield();
        }
        sync::Combiner::spin_observer = {nullptr, nullptr};
      });
    }

    ASSERT_EQ(sched.run(dfs), Scheduler::Result::Completed)
        << sched.error() << "\nschedule: " << format_trace(sched.trace());
    ASSERT_TRUE(sched.error().empty())
        << sched.error() << "\nschedule: " << format_trace(sched.trace());
    ASSERT_EQ(announced, 0)
        << "work lost across a round/handoff\nschedule: "
        << format_trace(sched.trace());
    ASSERT_EQ(processed, static_cast<int>(std::size(parties)) * kOpsPerParty)
        << "schedule: " << format_trace(sched.trace());
    total_handoffs += combiner.handoffs();
    total_cross_node += combiner.cross_node();
    ASSERT_LT(dfs.schedules(), std::uint64_t{1} << 22)
        << "exhaustive exploration exceeded the schedule budget — "
           "shrink the configuration";
  } while (dfs.next_schedule());

  EXPECT_GT(dfs.schedules(), 1u);
  // The exploration must actually land schedules in the window: some
  // schedule transferred the baton, and some schedule absorbed a node-1
  // announcement while a node-0 combiner held the role.
  EXPECT_GT(total_handoffs, 0u);
  EXPECT_GT(total_cross_node, 0u);
}

/// Fixed seed corpus — failures name the seed, so a repro is one run.
const std::uint64_t kSeeds[] = {1,  2,  3,  5,  8,   13,  21,  34,
                                55, 89, 144, 233, 377, 610, 987, 1597};

// ---------------------------------------------------------------------------
// Remote world: the shm-transport seam (ipc/transport.h) as a model —
// ring publish/consume is an explicit schedule point (see run_remote_world)
// ---------------------------------------------------------------------------

/// DFS driver for the remote world, mirroring explore_exhaustively.
void explore_remote_exhaustively(const std::vector<TaskSpec>& tasks,
                                 int num_locations,
                                 std::uint64_t max_schedules,
                                 std::uint64_t* explored) {
  DfsChooser dfs;
  do {
    WorldResult r = run_remote_world(tasks, num_locations, dfs);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nschedule: " << format_trace(r.trace);
    ASSERT_LT(dfs.schedules(), max_schedules)
        << "exhaustive exploration exceeded the schedule budget — "
           "shrink the configuration";
  } while (dfs.next_schedule());
  *explored = dfs.schedules();
}

TEST(ModelRemoteExhaustive, LocalAndRemoteWriterOneLocation) {
  // The acceptance shape: one in-process writer (the owner's own task) and
  // one writer whose every operation crosses the model rings. Every
  // schedule — including pumps lagging arbitrarily far behind publishes —
  // must preserve FIFO, exclusivity and termination. One round each: four
  // vthreads (two tasks + two pumps) make multi-round worlds infeasible
  // to exhaust; renewal traffic is covered by the seeded corpus below.
  const std::vector<TaskSpec> tasks = {
      {"local-w", {Access{0, AccessMode::Write}}, 1, /*remote=*/false},
      {"remote-w", {Access{0, AccessMode::Write}}, 1, /*remote=*/true},
  };
  std::uint64_t n = 0;
  explore_remote_exhaustively(tasks, 1, 1u << 22, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelRemoteExhaustive, RemoteReaderAgainstLocalWriter) {
  // Reader grants can overlap the drain window: a remote Read section may
  // still be open (proxy Granted) while the local writer's request sits
  // queued behind it and the grant ring holds undelivered announcements.
  const std::vector<TaskSpec> tasks = {
      {"local-w", {Access{0, AccessMode::Write}}, 1, /*remote=*/false},
      {"remote-r", {Access{0, AccessMode::Read}}, 1, /*remote=*/true},
  };
  std::uint64_t n = 0;
  explore_remote_exhaustively(tasks, 1, 1u << 22, &n);
  EXPECT_GT(n, 1u);
}

TEST(ModelRemoteSeeded, MixedLocalRemoteTwoLocations) {
  // Too large to exhaust: two remote handles (slots exercise the proxy
  // table) plus two local tasks over two locations, seeded corpus.
  const std::vector<TaskSpec> tasks = {
      {"local-w0", {Access{0, AccessMode::Write}}, 3, /*remote=*/false},
      {"local-r1", {Access{1, AccessMode::Read}}, 3, /*remote=*/false},
      {"remote-x",
       {Access{0, AccessMode::Write}, Access{1, AccessMode::Write}},
       3,
       /*remote=*/true},
  };
  for (const std::uint64_t seed : kSeeds) {
    SeededChooser chooser(seed);
    WorldResult r = run_remote_world(tasks, 2, chooser);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nseed: " << seed
        << "\nschedule: " << format_trace(r.trace);
  }
}

// ---------------------------------------------------------------------------
// Seeded corpus: larger worlds, fixed reproducible schedules
// ---------------------------------------------------------------------------

void explore_seeded(const std::vector<TaskSpec>& tasks, int num_locations) {
  for (const std::uint64_t seed : kSeeds) {
    SeededChooser chooser(seed);
    WorldResult r = run_world(tasks, num_locations, chooser);
    ASSERT_TRUE(r.completed)
        << r.failure << "\nseed: " << seed
        << "\nschedule: " << format_trace(r.trace);
  }
}

TEST(ModelSeeded, FourTasksTwoLocationsMixedModes) {
  const std::vector<TaskSpec> tasks = {
      {"w0", {Access{0, AccessMode::Write}}, 3},
      {"r0", {Access{0, AccessMode::Read}}, 3},
      {"w1", {Access{1, AccessMode::Write}}, 3},
      {"x",
       {Access{0, AccessMode::Read}, Access{1, AccessMode::Read}},
       3},
  };
  explore_seeded(tasks, 2);
}

TEST(ModelSeeded, RingOfWritersWithNeighbourReads) {
  // The paper's benchmark shape: task i owns (writes) location i and reads
  // its neighbour — a dependence cycle in the task graph that the ordered
  // renewal discipline must still drain every round.
  const std::vector<TaskSpec> tasks = {
      {"t0",
       {Access{0, AccessMode::Write}, Access{1, AccessMode::Read}},
       3},
      {"t1",
       {Access{1, AccessMode::Write}, Access{2, AccessMode::Read}},
       3},
      {"t2",
       {Access{2, AccessMode::Write}, Access{0, AccessMode::Read}},
       3},
  };
  explore_seeded(tasks, 3);
}

TEST(ModelSeeded, WriterContentionSingleLocation) {
  const std::vector<TaskSpec> tasks = {
      {"w0", {Access{0, AccessMode::Write}}, 4},
      {"w1", {Access{0, AccessMode::Write}}, 4},
      {"w2", {Access{0, AccessMode::Write}}, 4},
      {"w3", {Access{0, AccessMode::Write}}, 4},
  };
  explore_seeded(tasks, 1);
}

// ---------------------------------------------------------------------------
// Scheduler self-checks
// ---------------------------------------------------------------------------

TEST(ModelScheduler, DetectsGenuineDeadlock) {
  // Two threads each waiting on a flag only the other would set — the
  // scheduler must report Deadlock (after re-evaluating predicates), not
  // hang.
  bool a = false;
  bool b = false;
  Scheduler sched;
  sched.spawn("p", [&](ThreadCtx& ctx) {
    ctx.wait_until([&] { return a; });
    b = true;
  });
  sched.spawn("q", [&](ThreadCtx& ctx) {
    ctx.wait_until([&] { return b; });
    a = true;
  });
  SeededChooser chooser(7);
  EXPECT_EQ(sched.run(chooser), Scheduler::Result::Deadlock);
  EXPECT_EQ(sched.deadlocked().size(), 2u);
}

TEST(ModelScheduler, NoLostWakeupAcrossParkWindow) {
  // Thread r observes "not ready", then parks; thread w sets ready while r
  // sits between the observation and the park. The scheduler re-evaluates
  // r's predicate at every step, so the wakeup cannot be lost.
  bool ready = false;
  bool r_done = false;
  DfsChooser dfs;
  do {
    ready = false;
    r_done = false;
    Scheduler s;
    s.spawn("r", [&](ThreadCtx& ctx) {
      if (!ready) {
        ctx.yield();  // the load/park window
        ctx.wait_until([&] { return ready; });
      }
      r_done = true;
    });
    s.spawn("w", [&](ThreadCtx& ctx) {
      ctx.yield();
      ready = true;
    });
    ASSERT_EQ(s.run(dfs), Scheduler::Result::Completed)
        << "schedule: " << format_trace(s.trace());
    ASSERT_TRUE(r_done);
  } while (dfs.next_schedule());
  EXPECT_GT(dfs.schedules(), 1u);
}

TEST(ModelScheduler, DfsEnumeratesAllInterleavings) {
  // Two threads, one yield each: C(2,1)-style token orders. Count distinct
  // traces; DFS must cover more than one and terminate.
  std::vector<std::vector<int>> traces;
  DfsChooser dfs;
  do {
    Scheduler s;
    s.spawn("a", [](ThreadCtx& ctx) { ctx.yield(); });
    s.spawn("b", [](ThreadCtx& ctx) { ctx.yield(); });
    ASSERT_EQ(s.run(dfs), Scheduler::Result::Completed);
    traces.push_back(s.trace());
  } while (dfs.next_schedule());
  EXPECT_GT(traces.size(), 1u);
  for (std::size_t i = 1; i < traces.size(); ++i)
    EXPECT_NE(traces[i - 1], traces[i]) << "duplicate schedule explored";
}

}  // namespace
}  // namespace orwl::model
