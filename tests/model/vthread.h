#pragma once
// Deterministic schedule-exploration scheduler for protocol model checking.
//
// A Scheduler runs N "virtual threads" (real std::threads, but cooperative:
// exactly ONE ever executes at a time, and control passes only at explicit
// yield points). Between yield points a virtual thread runs real library
// code — the model tests drive the real FifoQueue / Request state machine —
// so the interleavings explored are interleavings of the actual protocol
// steps, serialized by the scheduler's token handoff (which also gives
// every step a happens-before edge: no data races, TSan-clean).
//
// Yield points:
//   ctx.yield()            — unconditional schedule point
//   ctx.wait_until(pred)   — block until pred() is true. The scheduler
//                            re-evaluates predicates of blocked threads at
//                            every scheduling step, which is the model-level
//                            statement of "no lost wakeup": a thread whose
//                            condition has become true is always runnable.
//
// Schedules are chosen by a Chooser:
//   SeededChooser(seed)    — reproducible pseudo-random schedules
//   DfsChooser             — bounded-exhaustive DFS over ALL schedules
//                            (feasible for 2-3 threads and short scripts)
//
// Outcomes:
//   Result::Completed      — every thread ran to the end of its script
//   Result::Deadlock       — all live threads blocked with false
//                            predicates; the trace names the stuck threads
//
// The scheduler itself uses plain std::mutex/condition_variable (not the
// library's sync:: layer) so a bug in the code under test cannot take the
// test harness down with it.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace orwl::model {

class Scheduler;

/// Render a schedule trace as "t0 t2 t1 ..." for assertion messages.
std::string format_trace(const std::vector<int>& trace);

/// Handed to every virtual-thread body; all yields go through it.
class ThreadCtx {
 public:
  /// Unconditional schedule point: another runnable thread may run.
  void yield();

  /// Block until `pred()` holds. pred is evaluated ONLY by the scheduler
  /// (between steps, with no virtual thread running), so it may read any
  /// state the protocol steps mutate.
  void wait_until(std::function<bool()> pred);

  [[nodiscard]] int id() const { return id_; }

 private:
  friend class Scheduler;
  ThreadCtx(Scheduler& sched, int id) : sched_(sched), id_(id) {}
  Scheduler& sched_;
  int id_;
};

/// Picks which runnable virtual thread performs the next step.
class Chooser {
 public:
  virtual ~Chooser() = default;
  /// Pick an index in [0, n); n >= 1.
  virtual int pick(int n) = 0;
};

/// Reproducible pseudo-random schedules (SplitMix64, seed-stable across
/// platforms — no std::mt19937 distribution skew).
class SeededChooser final : public Chooser {
 public:
  explicit SeededChooser(std::uint64_t seed) : state_(seed) {}
  int pick(int n) override;

 private:
  std::uint64_t state_;
};

/// Bounded-exhaustive depth-first exploration: drive repeated runs with
///   DfsChooser dfs;
///   do { ... run with dfs ... } while (dfs.next_schedule());
/// Each run follows the recorded choice prefix, then takes branch 0 at new
/// decision points; next_schedule() advances the last branch with siblings
/// left (odometer with carry), truncating deeper choices.
class DfsChooser final : public Chooser {
 public:
  int pick(int n) override;

  /// Advance to the next unexplored schedule. False when the tree is
  /// exhausted. Must be called between runs (not mid-run).
  bool next_schedule();

  /// Schedules fully explored so far.
  [[nodiscard]] std::uint64_t schedules() const { return schedules_; }

 private:
  std::vector<int> prefix_;  ///< choice taken at each decision depth
  std::vector<int> width_;   ///< branching factor observed there
  std::size_t depth_ = 0;    ///< current depth within this run
  std::uint64_t schedules_ = 0;
};

class Scheduler {
 public:
  enum class Result {
    Completed,  ///< all threads finished their scripts
    Deadlock,   ///< all live threads blocked, no predicate true
  };

  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a virtual thread before run(). The body runs real code and
  /// must yield through the ctx at every point where another thread's step
  /// should be able to interleave.
  void spawn(std::string name, std::function<void(ThreadCtx&)> body);

  /// Run all spawned threads to completion (or deadlock) under `chooser`.
  /// May be called once per Scheduler instance.
  Result run(Chooser& chooser);

  /// Names of threads still blocked when run() returned Deadlock.
  [[nodiscard]] const std::vector<std::string>& deadlocked() const {
    return deadlocked_;
  }

  /// The schedule actually executed: the virtual-thread id of every step,
  /// in order — printable as a repro trace.
  [[nodiscard]] const std::vector<int>& trace() const { return trace_; }

  /// Exception text from a virtual thread body, empty when none. A
  /// throwing body fails the run; the remaining threads are unwound.
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  friend class ThreadCtx;

  enum class State { Ready, Running, Blocked, Done };

  struct VThread {
    std::string name;
    std::function<void(ThreadCtx&)> body;
    State state = State::Ready;
    std::function<bool()> pred;  ///< valid while Blocked
    std::thread os_thread;
    bool go = false;  ///< token: this vthread may run (guarded by mu_)
  };

  /// Body side: give the token back and wait for it again. Returns false
  /// when the scheduler is tearing down (body should unwind).
  bool yield_to_scheduler(int id, State new_state,
                          std::function<bool()> pred);
  void thread_main(int id);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<VThread>> threads_;
  bool started_ = false;
  bool teardown_ = false;
  int running_ = -1;  ///< id of the vthread holding the token, -1 = none
  std::vector<std::string> deadlocked_;
  std::vector<int> trace_;
  std::string error_;
};

}  // namespace orwl::model
