#include "model/protocol.h"

#include <stdexcept>

namespace orwl::model {

namespace {

/// Thrown by invariant checks; surfaces through Scheduler::error().
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct World {
  std::vector<std::unique_ptr<ModelLocation>> locations;

  explicit World(int n) {
    for (int i = 0; i < n; ++i)
      locations.push_back(std::make_unique<ModelLocation>());
  }

  /// Assert the paper-level safety invariants over every location. Runs
  /// after every protocol step, while the stepping thread still holds the
  /// token — the world is quiescent.
  void check() const {
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const ModelLocation& loc = *locations[li];
      // FIFO grant delivery + single announcement: announcement tickets
      // strictly increase (the frontier only ever moves forward, and no
      // ticket is announced twice).
      const auto& g = loc.sink.grants;
      for (std::size_t i = 1; i < g.size(); ++i) {
        if (g[i - 1] >= g[i]) {
          std::ostringstream os;
          os << "FIFO violation at location " << li << ": grant ticket "
             << g[i] << " announced after ticket " << g[i - 1];
          throw InvariantViolation(os.str());
        }
      }
      // Exclusivity: the granted set is one Write or only Reads.
      int writes = 0;
      int reads = 0;
      for (const auto& e : loc.queue.snapshot()) {
        if (e.state != RequestState::Granted) continue;
        (e.mode == AccessMode::Write ? writes : reads) += 1;
      }
      if (writes > 1 || (writes == 1 && reads > 0)) {
        std::ostringstream os;
        os << "exclusivity violation at location " << li << ": " << writes
           << " writers and " << reads << " readers granted simultaneously";
        throw InvariantViolation(os.str());
      }
    }
  }
};

}  // namespace

WorldResult run_world(const std::vector<TaskSpec>& tasks, int num_locations,
                      Chooser& chooser) {
  World world(num_locations);

  // Per-task handles, in the task's declared access order.
  std::vector<std::vector<std::unique_ptr<ModelHandle>>> handles(
      tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t)
    for (const auto& a : tasks[t].accesses)
      handles[t].push_back(std::make_unique<ModelHandle>(
          *world.locations[static_cast<std::size_t>(a.location)], a.mode));

  // Canonical priming in registration order — single-threaded, exactly as
  // Runtime::run() does before spawning. This global deterministic order
  // is the liveness precondition of the iterative discipline.
  for (std::size_t t = 0; t < tasks.size(); ++t)
    for (auto& h : handles[t]) h->request();
  world.check();

  Scheduler sched;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const TaskSpec& spec = tasks[t];
    auto& hs = handles[t];
    sched.spawn(spec.name, [&world, &hs, spec](ThreadCtx& ctx) {
      for (int round = 0; round < spec.rounds; ++round) {
        for (auto& h : hs) {
          h->acquire(ctx);
          world.check();
        }
        // Hold the section across a schedule point so reader overlap and
        // writer exclusion are actually observable states.
        ctx.yield();
        world.check();
        const bool last = round + 1 == spec.rounds;
        for (auto& h : hs) {
          if (last)
            h->release();
          else
            h->release_and_renew();
          world.check();
          ctx.yield();
        }
      }
    });
  }

  const Scheduler::Result res = sched.run(chooser);
  WorldResult out;
  out.trace = sched.trace();
  out.steps = sched.trace().size();
  if (!sched.error().empty()) {
    out.failure = sched.error();
    return out;
  }
  if (res == Scheduler::Result::Deadlock) {
    std::ostringstream os;
    os << "deadlock: blocked threads [";
    for (std::size_t i = 0; i < sched.deadlocked().size(); ++i)
      os << (i ? ", " : "") << sched.deadlocked()[i];
    os << "]";
    out.failure = os.str();
    return out;
  }

  // Liveness accounting: every inserted request was eventually granted —
  // per location, rounds inserts per accessing handle, each announced
  // exactly once (single announcement is implied by the strict FIFO check
  // plus this count) — and the FIFOs drained.
  std::vector<std::size_t> expected(
      static_cast<std::size_t>(num_locations), 0);
  for (const TaskSpec& spec : tasks)
    for (const auto& a : spec.accesses)
      expected[static_cast<std::size_t>(a.location)] +=
          static_cast<std::size_t>(spec.rounds);
  for (int li = 0; li < num_locations; ++li) {
    const ModelLocation& loc = *world.locations[static_cast<std::size_t>(li)];
    if (loc.queue.size() != 0) {
      out.failure = "location FIFO not drained after completion";
      return out;
    }
    if (loc.sink.grants.size() != expected[static_cast<std::size_t>(li)]) {
      std::ostringstream os;
      os << "location " << li << " announced " << loc.sink.grants.size()
         << " grants, expected " << expected[static_cast<std::size_t>(li)];
      out.failure = os.str();
      return out;
    }
  }
  out.completed = true;
  return out;
}

}  // namespace orwl::model
