#include "model/protocol.h"

#include <deque>
#include <stdexcept>

#include "topo/binding.h"

namespace orwl::model {

namespace {

/// Thrown by invariant checks; surfaces through Scheduler::error().
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct World {
  std::vector<std::unique_ptr<ModelLocation>> locations;

  explicit World(int n) {
    for (int i = 0; i < n; ++i)
      locations.push_back(std::make_unique<ModelLocation>());
  }

  /// Assert the paper-level safety invariants over every location. Runs
  /// after every protocol step, while the stepping thread still holds the
  /// token — the world is quiescent.
  void check() const {
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const ModelLocation& loc = *locations[li];
      // FIFO grant delivery + single announcement: announcement tickets
      // strictly increase (the frontier only ever moves forward, and no
      // ticket is announced twice).
      const auto& g = loc.sink.grants;
      for (std::size_t i = 1; i < g.size(); ++i) {
        if (g[i - 1] >= g[i]) {
          std::ostringstream os;
          os << "FIFO violation at location " << li << ": grant ticket "
             << g[i] << " announced after ticket " << g[i - 1];
          throw InvariantViolation(os.str());
        }
      }
      // Exclusivity: the granted set is one Write or only Reads.
      int writes = 0;
      int reads = 0;
      for (const auto& e : loc.queue.snapshot()) {
        if (e.state != RequestState::Granted) continue;
        (e.mode == AccessMode::Write ? writes : reads) += 1;
      }
      if (writes > 1 || (writes == 1 && reads > 0)) {
        std::ostringstream os;
        os << "exclusivity violation at location " << li << ": " << writes
           << " writers and " << reads << " readers granted simultaneously";
        throw InvariantViolation(os.str());
      }
    }
  }
};

/// Model wire format — the three peer->owner operations and the
/// owner->peer grant announcement, as plain deque entries (the rings'
/// SPSC order is a property of the deque; the publish/consume WINDOW is
/// what the pump vthreads' schedule points expose).
enum class WireKind { Request, Release, ReleaseRenew };

struct WireOp {
  WireKind kind;
  int slot;
  AccessMode mode;
  int location;
};

struct WireGrant {
  int slot;
  Ticket ticket;
};

struct ModelChannel {
  std::deque<WireOp> ops;      ///< peer -> owner
  std::deque<WireGrant> grants;  ///< owner -> peer
};

/// Peer-side half of a remote handle: same double-slot renewal as
/// ModelHandle, but every operation is a ring publish instead of a queue
/// call — the model twin of ipc::PeerEndpoint::RemotePort.
class RemoteModelHandle {
 public:
  RemoteModelHandle(ModelChannel& ch, int slot, int location, AccessMode mode)
      : ch_(ch), slot_(slot), location_(location) {
    for (Request& r : slots_) r.mode = mode;
  }

  void request() {
    // order: relaxed — the issuing vthread consumes its own store, as in
    // RemotePort::insert.
    cur().state.store(RequestState::Requested, std::memory_order_relaxed);
    ch_.ops.push_back({WireKind::Request, slot_, cur().mode, location_});
  }

  /// Two-phase acquire, exactly like ModelHandle — the load/park window
  /// now also races against both pump vthreads.
  void acquire(ThreadCtx& ctx) {
    // order: acquire — pairs with deliver()'s release store.
    const RequestState seen = cur().state.load(std::memory_order_acquire);
    if (seen != RequestState::Granted) {
      ctx.yield();  // the load/park window
      Request& r = cur();
      ctx.wait_until([&r] {
        // order: acquire — grant consumption.
        return r.state.load(std::memory_order_acquire) ==
               RequestState::Granted;
      });
    }
  }

  void release() {
    // order: relaxed — owning-vthread slot reuse.
    cur().state.store(RequestState::Inactive, std::memory_order_relaxed);
    ch_.ops.push_back({WireKind::Release, slot_, cur().mode, location_});
  }

  void release_and_renew() {
    // order: relaxed — both stores are consumed by this vthread / the
    // serialized pump; the deque order is the ring order.
    spare().state.store(RequestState::Requested, std::memory_order_relaxed);
    cur().state.store(RequestState::Inactive, std::memory_order_relaxed);
    active_ ^= 1;
    ch_.ops.push_back({WireKind::ReleaseRenew, slot_, cur().mode, location_});
  }

  /// Peer-pump delivery: the grant-ring message reaches the in-flight
  /// peer-side request (ipc::PeerEndpoint::pump's job).
  void deliver(Ticket ticket) {
    Request& r = cur();
    if (r.state.load(std::memory_order_relaxed) != RequestState::Requested)
      throw InvariantViolation(
          "grant delivered to a slot with no request in flight");
    r.ticket = ticket;
    // order: release — pairs with acquire()'s load, as in the real pump.
    r.state.store(RequestState::Granted, std::memory_order_release);
  }

 private:
  Request& cur() { return slots_[static_cast<std::size_t>(active_)]; }
  Request& spare() { return slots_[static_cast<std::size_t>(active_ ^ 1)]; }

  ModelChannel& ch_;
  int slot_;
  int location_;
  Request slots_[2];
  int active_ = 0;
};

/// Owner-side proxy pair per peer slot (ipc::OwnerEndpoint::ProxySlot).
struct ModelProxySlot {
  Request reqs[2];
  int active = 0;
  bool queued = false;
};

/// Owner-pump step: materialize one drained op as a proxy-request
/// operation on the real queue (ipc::OwnerEndpoint::handle_msg).
void apply_op(World& world, std::vector<ModelProxySlot>& proxies,
              const WireOp& op) {
  ModelProxySlot& ps = proxies[static_cast<std::size_t>(op.slot)];
  FifoQueue& queue =
      world.locations[static_cast<std::size_t>(op.location)]->queue;
  switch (op.kind) {
    case WireKind::Request: {
      if (ps.queued)
        throw InvariantViolation("remote slot already has a request queued");
      Request& r = ps.reqs[ps.active];
      r.mode = op.mode;
      r.owner = kRemoteOwner;
      r.handle = static_cast<HandleId>(op.slot);
      r.location = static_cast<LocationId>(op.location);
      ps.queued = true;
      queue.insert(r);
      return;
    }
    case WireKind::Release:
      if (!ps.queued)
        throw InvariantViolation("Release for an idle remote slot");
      ps.queued = false;
      queue.release(ps.reqs[ps.active]);
      return;
    case WireKind::ReleaseRenew: {
      if (!ps.queued)
        throw InvariantViolation("ReleaseRenew for an idle remote slot");
      Request& cur = ps.reqs[ps.active];
      Request& next = ps.reqs[ps.active ^ 1];
      next.mode = op.mode;
      next.owner = kRemoteOwner;
      next.handle = cur.handle;
      next.location = cur.location;
      ps.active ^= 1;
      queue.release_and_renew(cur, next);
      return;
    }
  }
}

}  // namespace

WorldResult run_world(const std::vector<TaskSpec>& tasks, int num_locations,
                      Chooser& chooser) {
  World world(num_locations);

  // Per-task handles, in the task's declared access order.
  std::vector<std::vector<std::unique_ptr<ModelHandle>>> handles(
      tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t)
    for (const auto& a : tasks[t].accesses)
      handles[t].push_back(std::make_unique<ModelHandle>(
          *world.locations[static_cast<std::size_t>(a.location)], a.mode));

  // Canonical priming in registration order — single-threaded, exactly as
  // Runtime::run() does before spawning. This global deterministic order
  // is the liveness precondition of the iterative discipline.
  for (std::size_t t = 0; t < tasks.size(); ++t)
    for (auto& h : handles[t]) h->request();
  world.check();

  Scheduler sched;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const TaskSpec& spec = tasks[t];
    auto& hs = handles[t];
    sched.spawn(spec.name, [&world, &hs, spec](ThreadCtx& ctx) {
      // The vthread is a real std::thread, so the per-thread node override
      // scopes exactly to this task's protocol steps.
      topo::ScopedNodeId node_scope(spec.node);
      for (int round = 0; round < spec.rounds; ++round) {
        for (auto& h : hs) {
          h->acquire(ctx);
          world.check();
        }
        // Hold the section across a schedule point so reader overlap and
        // writer exclusion are actually observable states.
        ctx.yield();
        world.check();
        const bool last = round + 1 == spec.rounds;
        for (auto& h : hs) {
          if (last)
            h->release();
          else
            h->release_and_renew(ctx);
          world.check();
          ctx.yield();
        }
      }
    });
  }

  const Scheduler::Result res = sched.run(chooser);
  WorldResult out;
  out.trace = sched.trace();
  out.steps = sched.trace().size();
  if (!sched.error().empty()) {
    out.failure = sched.error();
    return out;
  }
  if (res == Scheduler::Result::Deadlock) {
    std::ostringstream os;
    os << "deadlock: blocked threads [";
    for (std::size_t i = 0; i < sched.deadlocked().size(); ++i)
      os << (i ? ", " : "") << sched.deadlocked()[i];
    os << "]";
    out.failure = os.str();
    return out;
  }

  // Liveness accounting: every inserted request was eventually granted —
  // per location, rounds inserts per accessing handle, each announced
  // exactly once (single announcement is implied by the strict FIFO check
  // plus this count) — and the FIFOs drained.
  std::vector<std::size_t> expected(
      static_cast<std::size_t>(num_locations), 0);
  for (const TaskSpec& spec : tasks)
    for (const auto& a : spec.accesses)
      expected[static_cast<std::size_t>(a.location)] +=
          static_cast<std::size_t>(spec.rounds);
  for (int li = 0; li < num_locations; ++li) {
    const ModelLocation& loc = *world.locations[static_cast<std::size_t>(li)];
    if (loc.queue.size() != 0) {
      out.failure = "location FIFO not drained after completion";
      return out;
    }
    if (loc.sink.grants.size() != expected[static_cast<std::size_t>(li)]) {
      std::ostringstream os;
      os << "location " << li << " announced " << loc.sink.grants.size()
         << " grants, expected " << expected[static_cast<std::size_t>(li)];
      out.failure = os.str();
      return out;
    }
  }
  out.completed = true;
  return out;
}

WorldResult run_remote_world(const std::vector<TaskSpec>& tasks,
                             int num_locations, Chooser& chooser) {
  World world(num_locations);
  ModelChannel channel;

  // Remote grants leave through the sink onto the model grant ring — the
  // RemoteGrantSink seam. Local grants take the in-process path (the
  // queue's own state store), exactly as in the shm transport.
  for (auto& loc : world.locations)
    loc->sink.forward = [&channel](const Request& req) {
      if (req.owner == kRemoteOwner)
        channel.grants.push_back({static_cast<int>(req.handle), req.ticket});
    };

  // Per-task handles; remote tasks get ring-routed ones, with peer slot
  // ids assigned in registration order (the wire's HandleId space).
  std::vector<std::vector<std::unique_ptr<ModelHandle>>> local_handles(
      tasks.size());
  std::vector<std::vector<std::unique_ptr<RemoteModelHandle>>> remote_handles(
      tasks.size());
  std::vector<RemoteModelHandle*> slot_map;  // peer slot id -> handle
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const auto& a : tasks[t].accesses) {
      if (tasks[t].remote) {
        remote_handles[t].push_back(std::make_unique<RemoteModelHandle>(
            channel, static_cast<int>(slot_map.size()), a.location, a.mode));
        slot_map.push_back(remote_handles[t].back().get());
      } else {
        local_handles[t].push_back(std::make_unique<ModelHandle>(
            *world.locations[static_cast<std::size_t>(a.location)], a.mode));
      }
    }
  }
  std::vector<ModelProxySlot> proxies(slot_map.size());

  // Canonical priming with the transport's startup barrier: local primes
  // go straight into the FIFOs, remote primes are published and then the
  // ops ring is drained to empty before anything is scheduled — the
  // wait_peer_attached() contract.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (auto& h : local_handles[t]) h->request();
    for (auto& h : remote_handles[t]) h->request();
  }
  while (!channel.ops.empty()) {
    const WireOp op = channel.ops.front();
    channel.ops.pop_front();
    apply_op(world, proxies, op);
  }
  world.check();

  // Post-prime traffic the pumps must move: every remote access does
  // rounds-1 renews and one final release (ops), and is granted `rounds`
  // times (grant-ring messages).
  std::size_t pump_ops = 0;
  std::size_t pump_grants = 0;
  for (const TaskSpec& spec : tasks) {
    if (!spec.remote) continue;
    pump_ops += spec.accesses.size() * static_cast<std::size_t>(spec.rounds);
    pump_grants +=
        spec.accesses.size() * static_cast<std::size_t>(spec.rounds);
  }

  Scheduler sched;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const TaskSpec& spec = tasks[t];
    if (spec.remote) {
      auto& hs = remote_handles[t];
      sched.spawn(spec.name, [&world, &hs, spec](ThreadCtx& ctx) {
        topo::ScopedNodeId node_scope(spec.node);
        for (int round = 0; round < spec.rounds; ++round) {
          for (auto& h : hs) {
            h->acquire(ctx);
            world.check();
          }
          ctx.yield();  // hold the section across a schedule point
          world.check();
          const bool last = round + 1 == spec.rounds;
          for (auto& h : hs) {
            if (last)
              h->release();
            else
              h->release_and_renew();  // one wire message, atomic at the owner
            world.check();
            ctx.yield();
          }
        }
      });
    } else {
      auto& hs = local_handles[t];
      sched.spawn(spec.name, [&world, &hs, spec](ThreadCtx& ctx) {
        topo::ScopedNodeId node_scope(spec.node);
        for (int round = 0; round < spec.rounds; ++round) {
          for (auto& h : hs) {
            h->acquire(ctx);
            world.check();
          }
          ctx.yield();
          world.check();
          const bool last = round + 1 == spec.rounds;
          for (auto& h : hs) {
            if (last)
              h->release();
            else
              h->release_and_renew(ctx);
            world.check();
            ctx.yield();
          }
        }
      });
    }
  }

  // The two pump vthreads. Their wait_until on "ring non-empty" makes the
  // publish/consume window a first-class schedule point: the chooser can
  // run a pump immediately, or let arbitrary protocol steps land between
  // a publish and its drain.
  sched.spawn("owner-pump",
              [&world, &channel, &proxies, pump_ops](ThreadCtx& ctx) {
                for (std::size_t i = 0; i < pump_ops; ++i) {
                  ctx.wait_until([&channel] { return !channel.ops.empty(); });
                  const WireOp op = channel.ops.front();
                  channel.ops.pop_front();
                  ctx.yield();  // drained but not yet applied
                  apply_op(world, proxies, op);
                  world.check();
                }
              });
  sched.spawn("peer-pump",
              [&world, &channel, &slot_map, pump_grants](ThreadCtx& ctx) {
                for (std::size_t i = 0; i < pump_grants; ++i) {
                  ctx.wait_until(
                      [&channel] { return !channel.grants.empty(); });
                  const WireGrant g = channel.grants.front();
                  channel.grants.pop_front();
                  ctx.yield();  // consumed but not yet delivered
                  slot_map[static_cast<std::size_t>(g.slot)]->deliver(
                      g.ticket);
                  world.check();
                }
              });

  const Scheduler::Result res = sched.run(chooser);
  WorldResult out;
  out.trace = sched.trace();
  out.steps = sched.trace().size();
  if (!sched.error().empty()) {
    out.failure = sched.error();
    return out;
  }
  if (res == Scheduler::Result::Deadlock) {
    std::ostringstream os;
    os << "deadlock: blocked threads [";
    for (std::size_t i = 0; i < sched.deadlocked().size(); ++i)
      os << (i ? ", " : "") << sched.deadlocked()[i];
    os << "]";
    out.failure = os.str();
    return out;
  }

  // Same liveness accounting as run_world, plus: both rings drained.
  if (!channel.ops.empty() || !channel.grants.empty()) {
    out.failure = "model rings not drained after completion";
    return out;
  }
  std::vector<std::size_t> expected(
      static_cast<std::size_t>(num_locations), 0);
  for (const TaskSpec& spec : tasks)
    for (const auto& a : spec.accesses)
      expected[static_cast<std::size_t>(a.location)] +=
          static_cast<std::size_t>(spec.rounds);
  for (int li = 0; li < num_locations; ++li) {
    const ModelLocation& loc = *world.locations[static_cast<std::size_t>(li)];
    if (loc.queue.size() != 0) {
      out.failure = "location FIFO not drained after completion";
      return out;
    }
    if (loc.sink.grants.size() != expected[static_cast<std::size_t>(li)]) {
      std::ostringstream os;
      os << "location " << li << " announced " << loc.sink.grants.size()
         << " grants, expected " << expected[static_cast<std::size_t>(li)];
      out.failure = os.str();
      return out;
    }
  }
  out.completed = true;
  return out;
}

}  // namespace orwl::model
