// Tests for the obs:: layer: the per-thread trace ring (wraparound drops
// the oldest events and counts them, disabled tracing records nothing),
// the metrics registry (log2 histogram bucketing/quantiles, get-or-create
// stability), the Chrome trace exporter (balanced spans even from torn
// input), the Instrument::resize construction-phase contract, and the
// counted waiter overload feeding the wait-length histograms.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orwl/instrument.h"
#include "orwl/runtime.h"
#include "support/assert.h"
#include "sync/waiter.h"

namespace orwl {
namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size()))
    ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

// Flips the process-global gate on for the test body and leaves clean
// rings behind — the flag and rings are shared process state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = obs::enable_tracing(true);
    obs::reset();
  }
  void TearDown() override {
    obs::reset();
    obs::enable_tracing(prev_);
  }
  bool prev_ = false;
};

TEST_F(TraceTest, RecordsInTimestampOrder) {
  obs::trace(obs::EventKind::Grant, 7);
  obs::trace(obs::EventKind::Release, 8);
  obs::trace(obs::EventKind::EventPop, 9);
  const obs::TraceData data = obs::collect();
  EXPECT_EQ(data.dropped, 0u);
  ASSERT_EQ(data.threads.size(), 1u);
  const obs::TraceThread& t = data.threads[0];
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_EQ(t.events[0].kind, obs::EventKind::Grant);
  EXPECT_EQ(t.events[0].arg, 7u);
  EXPECT_EQ(t.events[2].kind, obs::EventKind::EventPop);
  for (std::size_t i = 1; i < t.events.size(); ++i)
    EXPECT_GE(t.events[i].ts_ns, t.events[i - 1].ts_ns);
  for (const obs::TraceEvent& ev : t.events) EXPECT_EQ(ev.tid, t.tid);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  obs::enable_tracing(false);
  for (int i = 0; i < 1000; ++i) obs::trace(obs::EventKind::Grant, 1);
  EXPECT_EQ(obs::buffered_events(), 0u);
  EXPECT_TRUE(obs::collect().empty());
}

TEST_F(TraceTest, WraparoundDropsOldestAndCounts) {
  const std::size_t cap = obs::ring_capacity();
  const std::size_t extra = 100;
  const std::uint64_t before =
      obs::global_registry().counter("trace.dropped").read();
  for (std::size_t i = 0; i < cap + extra; ++i)
    obs::trace(obs::EventKind::Grant, i);
  EXPECT_EQ(obs::buffered_events(), cap);
  const obs::TraceData data = obs::collect();
  EXPECT_EQ(data.dropped, extra);
  ASSERT_EQ(data.threads.size(), 1u);
  const std::vector<obs::TraceEvent>& evs = data.threads[0].events;
  ASSERT_EQ(evs.size(), cap);
  // The OLDEST events are the ones overwritten: args 0..extra-1 are gone.
  EXPECT_EQ(evs.front().arg, extra);
  EXPECT_EQ(evs.back().arg, cap + extra - 1);
  EXPECT_EQ(obs::global_registry().counter("trace.dropped").read(),
            before + extra);
}

TEST_F(TraceTest, CollectReportsDropDeltasNotTotals) {
  const std::size_t cap = obs::ring_capacity();
  for (std::size_t i = 0; i < cap + 50; ++i)
    obs::trace(obs::EventKind::Grant, i);
  EXPECT_EQ(obs::collect().dropped, 50u);
  // Nothing new recorded: a second collect must not re-report the same
  // overwrites (or the trace.dropped metric would double-count).
  EXPECT_EQ(obs::collect().dropped, 0u);
  obs::trace(obs::EventKind::Grant, 1);
  EXPECT_EQ(obs::collect().dropped, 1u);
}

TEST_F(TraceTest, ThreadsCollectSeparately) {
  obs::trace(obs::EventKind::Grant, 1);
  std::thread other([] { obs::trace(obs::EventKind::Release, 2); });
  other.join();
  const obs::TraceData data = obs::collect();
  ASSERT_EQ(data.threads.size(), 2u);
  EXPECT_NE(data.threads[0].tid, data.threads[1].tid);
  for (const obs::TraceThread& t : data.threads) {
    ASSERT_EQ(t.events.size(), 1u);
    EXPECT_EQ(t.events[0].tid, t.tid);
  }
}

TEST(TraceTables, SpanTablesAreConsistent) {
  const int n = static_cast<int>(obs::EventKind::kCount);
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<obs::EventKind>(i);
    EXPECT_STRNE(obs::to_string(k), "");
    EXPECT_FALSE(obs::is_span_begin(k) && obs::is_span_end(k));
    if (obs::is_span_end(k)) {
      const obs::EventKind b = obs::begin_of(k);
      EXPECT_TRUE(obs::is_span_begin(b));
      EXPECT_STREQ(obs::span_name(b), obs::span_name(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

obs::TraceEvent ev(std::uint64_t ts_ns, obs::EventKind kind,
                   std::int32_t tid, std::uint64_t arg = 0) {
  return {ts_ns, arg, tid, kind};
}

TEST(ChromeExport, BalancedSpansAndMicrosecondTimestamps) {
  obs::TraceData data;
  data.threads.push_back(
      {3,
       "w3",
       {ev(1000, obs::EventKind::AcquireBegin, 3, 5),
        ev(2500, obs::EventKind::AcquireEnd, 3, 5),
        ev(2600, obs::EventKind::Grant, 3, 5)}});
  data.dropped = 4;
  std::ostringstream os;
  obs::write_chrome_trace(os, data);
  const std::string out = os.str();
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"E\""), 1u);
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"i\""), 1u);
  EXPECT_NE(out.find("\"name\":\"w3\""), std::string::npos);
  // ts is microseconds relative to the earliest event: 2500ns - 1000ns.
  EXPECT_NE(out.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(out.find("\"dropped\":4"), std::string::npos);
}

TEST(ChromeExport, SanitizesTornSpans) {
  // Ring overwrites can orphan an End (its Begin was dropped) and leave a
  // Begin unclosed (the run stopped mid-span). The exporter must still
  // emit balanced B/E.
  obs::TraceData data;
  data.threads.push_back(
      {0,
       "torn",
       {ev(10, obs::EventKind::AcquireEnd, 0),     // orphan -> instant
        ev(20, obs::EventKind::EpochBegin, 0),     // unclosed -> closed
        ev(30, obs::EventKind::Grant, 0)}});
  std::ostringstream os;
  obs::write_chrome_trace(os, data);
  const std::string out = os.str();
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"B\""),
            count_occurrences(out, "\"ph\":\"E\""));
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"i\""), 2u);
}

TEST(ChromeExport, EscapesThreadNames) {
  obs::TraceData data;
  data.threads.push_back(
      {0, "quo\"te\\back", {ev(1, obs::EventKind::Grant, 0)}});
  std::ostringstream os;
  obs::write_chrome_trace(os, data);
  EXPECT_NE(os.str().find("quo\\\"te\\\\back"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramLog2Bucketing) {
  obs::Histogram h;
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull})
    h.record(v);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 1010u);
  EXPECT_EQ(s.buckets[0], 1u);   // exactly zero
  EXPECT_EQ(s.buckets[1], 1u);   // 1
  EXPECT_EQ(s.buckets[2], 2u);   // 2, 3
  EXPECT_EQ(s.buckets[3], 1u);   // 4
  EXPECT_EQ(s.buckets[10], 1u);  // 1000 in [512, 1023]
  EXPECT_DOUBLE_EQ(s.mean(), 1010.0 / 6.0);
  EXPECT_EQ(s.quantile(0.0), 0u);
  EXPECT_EQ(s.quantile(0.5), obs::HistogramSnapshot::bucket_upper(2));
  EXPECT_EQ(s.quantile(1.0), 1023u);
}

TEST(ObsMetrics, BucketUpperBounds) {
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(10), 1023u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(64), ~0ull);
}

TEST(ObsMetrics, HistogramConcurrentRecords) {
  obs::Histogram h;
  constexpr int kThreads = 8, kPer = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPer; ++i)
        h.record(static_cast<std::uint64_t>(i & 255));
    });
  for (std::thread& t : threads) t.join();
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(ObsMetrics, RegistryGetOrCreateIsStable) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("same");
  a.add(3);
  EXPECT_EQ(reg.counter("same").read(), 3u);   // same object, not a new one
  EXPECT_EQ(&reg.counter("same"), &a);
  reg.gauge("g").set(-5);
  reg.histogram("h").record(9);
  reg.counter("aardvark").add(1);
  const obs::RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "aardvark");  // sorted by name
  EXPECT_EQ(snap.counters[1].first, "same");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].name, "h");
}

TEST(ObsMetrics, DumpMetricsFormat) {
  obs::Registry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(7);
  reg.histogram("empty");
  std::ostringstream os;
  obs::dump_metrics(os, reg.snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("counter c 2"), std::string::npos);
  EXPECT_NE(out.find("gauge g 7"), std::string::npos);
}

TEST(ObsMetrics, DetailedMetricsFlagRoundTrips) {
  const bool prev = obs::enable_detailed_metrics(true);
  EXPECT_TRUE(obs::detailed_metrics_enabled());
  EXPECT_TRUE(obs::enable_detailed_metrics(prev));
  EXPECT_EQ(obs::detailed_metrics_enabled(), prev);
}

// ---------------------------------------------------------------------------
// Instrument::resize construction-phase contract
// ---------------------------------------------------------------------------

TEST(InstrumentContract, ResizeAllowedWhilePristine) {
  obs::Registry reg;
  Instrument ins(2, reg);
  EXPECT_TRUE(ins.pristine());
  EXPECT_NO_THROW(ins.resize(8));
  EXPECT_NO_THROW(ins.resize(16));
}

TEST(InstrumentContract, ResizeThrowsAfterGrantRecorded) {
  obs::Registry reg;
  Instrument ins(2, reg);
  ins.record_grant(AccessMode::Write);
  EXPECT_FALSE(ins.pristine());
  EXPECT_THROW(ins.resize(4), ContractError);
}

TEST(InstrumentContract, ResizeThrowsAfterFlowRecorded) {
  obs::Registry reg;
  Instrument ins(4, reg);
  ins.record_flow(0, 1, 64);
  EXPECT_FALSE(ins.pristine());
  EXPECT_THROW(ins.resize(8), ContractError);
}

// ---------------------------------------------------------------------------
// Counted waiter (WaitLength)
// ---------------------------------------------------------------------------

TEST(WaitLength, FastPathLeavesLengthZeroed) {
  std::atomic<std::uint32_t> word{1};
  sync::WaitLength len{5, 5};  // poisoned: must be zeroed on the fast path
  const std::uint32_t v =
      sync::wait_while_equal(word, 0u, sync::WaitStrategy::spin(), &len);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(len.rounds, 0u);
  EXPECT_EQ(len.parks, 0u);
}

TEST(WaitLength, SpinNeverParks) {
  std::atomic<std::uint32_t> word{0};
  std::thread waker([&word] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // order: release — pairs with the waiter's acquire loads.
    word.store(1, std::memory_order_release);
    sync::notify_all(word);
  });
  sync::WaitLength len;
  const std::uint32_t v =
      sync::wait_while_equal(word, 0u, sync::WaitStrategy::spin(), &len);
  waker.join();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(len.parks, 0u);
}

TEST(WaitLength, BlockNeverCountsSpinRounds) {
  std::atomic<std::uint32_t> word{0};
  std::thread waker([&word] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // order: release — pairs with the waiter's acquire loads.
    word.store(1, std::memory_order_release);
    sync::notify_all(word);
  });
  sync::WaitLength len;
  const std::uint32_t v =
      sync::wait_while_equal(word, 0u, sync::WaitStrategy::block(), &len);
  waker.join();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(len.rounds, 0u);
}

// ---------------------------------------------------------------------------
// Runtime integration: per-handle histograms and the detailed gate
// ---------------------------------------------------------------------------

std::uint64_t histogram_count(const obs::RegistrySnapshot& snap,
                              const std::string& prefix) {
  std::uint64_t n = 0;
  for (const obs::HistogramSnapshot& h : snap.histograms)
    if (h.name.rfind(prefix, 0) == 0) n += h.count;
  return n;
}

void run_two_writers() {
  RuntimeOptions opts;
  opts.record_flows = false;
  Runtime rt(opts);
  const LocationId loc = rt.add_location(64);
  for (int i = 0; i < 2; ++i)
    rt.add_task("w" + std::to_string(i), [i](TaskContext& ctx) {
      Handle& h = ctx.handle(i);
      for (int r = 0; r < 50; ++r) {
        h.acquire();
        if (r + 1 == 50)
          h.release();
        else
          h.release_and_renew();
      }
    });
  for (int i = 0; i < 2; ++i) rt.add_handle(i, loc, AccessMode::Write);
  rt.run();
  const obs::RegistrySnapshot snap = rt.metrics().snapshot();
  // Wait-length recording is always on: one sample per acquire.
  EXPECT_EQ(histogram_count(snap, "orwl.wait_rounds"), 100u);
  // Acquire-latency clock reads are gated behind the detailed flag.
  const std::uint64_t latency = histogram_count(snap, "orwl.acquire_ns");
  if (obs::detailed_metrics_enabled())
    EXPECT_EQ(latency, 100u);
  else
    EXPECT_EQ(latency, 0u);
  EXPECT_EQ(rt.stats().write_grants(), 100u);
}

TEST(RuntimeMetrics, WaitHistogramsAlwaysOnLatencyGated) {
  const bool prev = obs::enable_detailed_metrics(false);
  run_two_writers();
  obs::enable_detailed_metrics(true);
  run_two_writers();
  obs::enable_detailed_metrics(prev);
}

}  // namespace
}  // namespace orwl
