// Property tests for the shm wire layer (ipc/layout.h, ipc/ring.h) and
// the Channel attach validation (ipc/channel.h) — the codec half of the
// cross-address-space transport, runnable without forking:
//
//   * seeded round-trip fuzz of SpscRing over every capacity class, both
//     single-threaded and with a real producer/consumer thread pair;
//   * attach rejection: truncated blocks, zero / non-power-of-two
//     capacities, scribbled segment headers (magic, version, sizes) must
//     all throw ContractError instead of running the protocol on garbage.
//
// Seeded, not libFuzzer: failures name the seed, a repro is one run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "ipc/layout.h"
#include "ipc/ring.h"
#include "support/assert.h"
#include "support/rng.h"
#include "sync/wait_strategy.h"

#ifdef __linux__
#include <unistd.h>

#include "ipc/channel.h"
#include "mem/segment.h"
#endif

namespace orwl::ipc {
namespace {

/// All capacity classes the layout supports in practice: the minimum, the
/// default, and the extremes either side.
const std::uint32_t kCapacities[] = {1, 2, 4, 8, 64, 256, 1024};

constexpr std::int64_t kWaitNs = 5'000'000'000;  // CI-safe bound

/// Aligned zeroed backing for a heap-hosted ring.
struct RingBuffer {
  explicit RingBuffer(std::uint32_t capacity)
      : bytes(SpscRing::bytes_needed(capacity)),
        storage(new std::byte[bytes + kBlockAlign]) {
    auto addr = reinterpret_cast<std::uintptr_t>(storage.get());
    base = storage.get() + (align_up(addr) - addr);
    std::memset(base, 0, bytes);
  }
  std::size_t bytes;
  std::unique_ptr<std::byte[]> storage;
  std::byte* base = nullptr;
};

WireMsg msg_from(Xoshiro256& rng) {
  WireMsg m;
  m.arg = rng();
  m.kind = static_cast<std::uint32_t>(rng());
  m.slot = static_cast<std::uint32_t>(rng());
  m.loc = static_cast<std::uint32_t>(rng());
  return m;
}

bool same(const WireMsg& a, const WireMsg& b) {
  return a.arg == b.arg && a.kind == b.kind && a.slot == b.slot &&
         a.loc == b.loc;
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

TEST(IpcRing, RoundTripsEveryCapacityClassSingleThreaded) {
  for (const std::uint32_t cap : kCapacities) {
    RingBuffer buf(cap);
    SpscRing ring = SpscRing::create(buf.base, cap);
    ASSERT_EQ(ring.capacity(), cap);

    Xoshiro256 rng(0x9e3779b9u ^ cap);
    // Random push/pop bursts, never exceeding capacity in flight; popped
    // messages must replay the pushed sequence field-for-field.
    std::deque<WireMsg> expected;
    for (int step = 0; step < 2000; ++step) {
      if (expected.size() < cap && rng.below(2) == 0) {
        const WireMsg m = msg_from(rng);
        ASSERT_TRUE(ring.try_push(m));
        expected.push_back(m);
      } else if (!expected.empty()) {
        WireMsg got;
        ASSERT_TRUE(ring.try_pop(got));
        ASSERT_TRUE(same(got, expected.front()))
            << "capacity " << cap << " step " << step;
        expected.pop_front();
      }
    }
    // Full-ring edge: fill to capacity, one more must fail, drain clean.
    while (expected.size() < cap) {
      ASSERT_TRUE(ring.try_push(WireMsg{}));
      expected.push_back(WireMsg{});
    }
    EXPECT_FALSE(ring.try_push(WireMsg{}));
    WireMsg got;
    while (!expected.empty()) {
      ASSERT_TRUE(ring.try_pop(got));
      ASSERT_TRUE(same(got, expected.front()));
      expected.pop_front();
    }
    EXPECT_FALSE(ring.try_pop(got));
  }
}

TEST(IpcRing, TwoThreadedStreamKeepsOrderEveryCapacity) {
  // In-process producer/consumer pair (the SPSC contract does not care
  // that it is the same address space): N messages with a checkable
  // pattern stream through intact and in order, including many cursor
  // wraps for the small capacities.
  for (const std::uint32_t cap : kCapacities) {
    RingBuffer buf(cap);
    SpscRing ring = SpscRing::create(buf.base, cap);
    const std::uint64_t n = 20'000;
    std::atomic<bool> ok{true};

    std::thread consumer([&ring, n, &ok] {
      const sync::WaitStrategy ws{};
      for (std::uint64_t i = 0; i < n; ++i) {
        WireMsg got;
        if (ring.pop_wait(got, kWaitNs, ws) != sync::SharedWait::Changed ||
            got.arg != i || got.slot != static_cast<std::uint32_t>(i * 7)) {
          // order: relaxed — joined before being read.
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
    });
    for (std::uint64_t i = 0; i < n; ++i) {
      WireMsg m;
      m.arg = i;
      m.kind = static_cast<std::uint32_t>(MsgKind::Grant);
      m.slot = static_cast<std::uint32_t>(i * 7);
      ASSERT_EQ(ring.push_wait(m, kWaitNs), sync::SharedWait::Changed)
          << "capacity " << cap << " message " << i;
    }
    consumer.join();
    // order: relaxed — the join ordered the consumer's stores.
    EXPECT_TRUE(ok.load(std::memory_order_relaxed)) << "capacity " << cap;
  }
}

TEST(IpcRing, PopWaitTimesOutOnEmptyRing) {
  RingBuffer buf(8);
  SpscRing ring = SpscRing::create(buf.base, 8);
  WireMsg got;
  const sync::WaitStrategy ws{};
  EXPECT_EQ(ring.pop_wait(got, 20'000'000, ws), sync::SharedWait::TimedOut);
}

// ---------------------------------------------------------------------------
// Attach validation: garbage must be rejected, loudly
// ---------------------------------------------------------------------------

TEST(IpcRingAttach, AcceptsItsOwnCreation) {
  for (const std::uint32_t cap : kCapacities) {
    RingBuffer buf(cap);
    (void)SpscRing::create(buf.base, cap);
    SpscRing ring = SpscRing::attach(buf.base, buf.bytes);
    EXPECT_EQ(ring.capacity(), cap);
  }
}

TEST(IpcRingAttach, RejectsTruncatedBlock) {
  RingBuffer buf(64);
  (void)SpscRing::create(buf.base, 64);
  // Anything shorter than the laid-out ring is a truncated mapping.
  EXPECT_THROW((void)SpscRing::attach(buf.base, buf.bytes - 1),
               ContractError);
  EXPECT_THROW((void)SpscRing::attach(buf.base, sizeof(RingHeader) - 1),
               ContractError);
}

TEST(IpcRingAttach, RejectsCorruptCapacity) {
  RingBuffer buf(64);
  (void)SpscRing::create(buf.base, 64);
  auto* hdr = reinterpret_cast<RingHeader*>(buf.base);
  hdr->capacity = 0;  // zero
  EXPECT_THROW((void)SpscRing::attach(buf.base, buf.bytes), ContractError);
  hdr->capacity = 48;  // non-power-of-two
  EXPECT_THROW((void)SpscRing::attach(buf.base, buf.bytes), ContractError);
  hdr->capacity = 1u << 20;  // slots would overrun the block
  EXPECT_THROW((void)SpscRing::attach(buf.base, buf.bytes), ContractError);
  hdr->capacity = 64;  // restored: sanity that only the corruption failed
  EXPECT_EQ(SpscRing::attach(buf.base, buf.bytes).capacity(), 64u);
}

#ifdef __linux__

/// Channel-level scribble harness: create a real memfd-backed segment,
/// corrupt one header field through a second mapping, and attach.
class IpcChannelAttach : public ::testing::Test {
 protected:
  Channel make_channel() {
    return Channel::create(
        {.shm_name = {},
         .ring_capacity = 8,
         .locations = {{.name = "blob", .bytes = 128}}});
  }

  /// Independent writable view of the channel's segment.
  mem::Segment raw_view(const Channel& ch) {
    return mem::Segment::attach_shm_fd(ch.shm_fd(), 0);
  }
};

TEST_F(IpcChannelAttach, AcceptsCleanSegment) {
  Channel ch = make_channel();
  Channel peer = Channel::attach_fd(ch.shm_fd());
  EXPECT_EQ(peer.role(), Channel::Role::Peer);
  EXPECT_EQ(peer.num_locations(), 1u);
  EXPECT_EQ(peer.location_name(0), "blob");
  EXPECT_EQ(peer.location_bytes(0).size(), 128u);
}

TEST_F(IpcChannelAttach, RejectsWrongMagic) {
  Channel ch = make_channel();
  mem::Segment raw = raw_view(ch);
  auto* hdr = reinterpret_cast<SegmentHeader*>(raw.bytes().data());
  hdr->magic ^= 0xffull;
  EXPECT_THROW((void)Channel::attach_fd(ch.shm_fd()), ContractError);
}

TEST_F(IpcChannelAttach, RejectsWrongVersion) {
  Channel ch = make_channel();
  mem::Segment raw = raw_view(ch);
  auto* hdr = reinterpret_cast<SegmentHeader*>(raw.bytes().data());
  hdr->version = kVersion + 1;
  EXPECT_THROW((void)Channel::attach_fd(ch.shm_fd()), ContractError);
}

TEST_F(IpcChannelAttach, RejectsOversizedTotalBytes) {
  // total_bytes larger than the real mapping means the creator's layout
  // promises bytes the attacher does not have — a truncated segment.
  Channel ch = make_channel();
  mem::Segment raw = raw_view(ch);
  auto* hdr = reinterpret_cast<SegmentHeader*>(raw.bytes().data());
  hdr->total_bytes *= 2;
  EXPECT_THROW((void)Channel::attach_fd(ch.shm_fd()), ContractError);
}

TEST_F(IpcChannelAttach, RejectsOutOfRangeLocationExtent) {
  Channel ch = make_channel();
  mem::Segment raw = raw_view(ch);
  auto* hdr = reinterpret_cast<SegmentHeader*>(raw.bytes().data());
  auto* entry = reinterpret_cast<LocationEntry*>(
      raw.bytes().data() + hdr->loc_table_off);
  entry->bytes = hdr->total_bytes;  // extends past the segment end
  EXPECT_THROW((void)Channel::attach_fd(ch.shm_fd()), ContractError);
}

TEST_F(IpcChannelAttach, RejectsCorruptRingCapacity) {
  Channel ch = make_channel();
  mem::Segment raw = raw_view(ch);
  auto* hdr = reinterpret_cast<SegmentHeader*>(raw.bytes().data());
  auto* ring = reinterpret_cast<RingHeader*>(raw.bytes().data() + hdr->ops_ring_off);
  ring->capacity = 48;  // disagrees with the header (and not a pow2)
  EXPECT_THROW((void)Channel::attach_fd(ch.shm_fd()), ContractError);
}

#endif  // __linux__

}  // namespace
}  // namespace orwl::ipc
