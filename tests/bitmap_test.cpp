// Unit tests for topo::Bitmap (the cpuset abstraction).

#include <gtest/gtest.h>

#include "support/assert.h"
#include "topo/bitmap.h"

namespace orwl::topo {
namespace {

TEST(Bitmap, StartsEmpty) {
  Bitmap b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0);
  EXPECT_EQ(b.first(), -1);
  EXPECT_EQ(b.last(), -1);
}

TEST(Bitmap, SetAndTest) {
  Bitmap b;
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(200);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(200));
  EXPECT_FALSE(b.test(1));
  EXPECT_FALSE(b.test(199));
  EXPECT_EQ(b.count(), 4);
}

TEST(Bitmap, TestOutOfRangeIsFalse) {
  Bitmap b = Bitmap::single(3);
  EXPECT_FALSE(b.test(1000));
  EXPECT_FALSE(b.test(-1));
}

TEST(Bitmap, ClearRemovesBit) {
  Bitmap b = Bitmap::range(0, 10);
  b.clear(5);
  EXPECT_FALSE(b.test(5));
  EXPECT_EQ(b.count(), 10);
}

TEST(Bitmap, FirstNextLastIterate) {
  Bitmap b;
  b.set(2);
  b.set(66);
  b.set(130);
  EXPECT_EQ(b.first(), 2);
  EXPECT_EQ(b.next(2), 66);
  EXPECT_EQ(b.next(66), 130);
  EXPECT_EQ(b.next(130), -1);
  EXPECT_EQ(b.last(), 130);
}

TEST(Bitmap, RangeInclusive) {
  Bitmap b = Bitmap::range(3, 7);
  EXPECT_EQ(b.count(), 5);
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(7));
  EXPECT_FALSE(b.test(2));
  EXPECT_FALSE(b.test(8));
}

TEST(Bitmap, RangeRejectsDescending) {
  EXPECT_THROW(Bitmap::range(5, 3), ContractError);
  EXPECT_THROW(Bitmap::range(-1, 3), ContractError);
}

TEST(Bitmap, UnionAndIntersection) {
  Bitmap a = Bitmap::range(0, 5);
  Bitmap b = Bitmap::range(4, 9);
  const Bitmap u = a | b;
  const Bitmap i = a & b;
  EXPECT_EQ(u.count(), 10);
  EXPECT_EQ(i.count(), 2);
  EXPECT_TRUE(i.test(4));
  EXPECT_TRUE(i.test(5));
}

TEST(Bitmap, SubsetAndIntersects) {
  Bitmap a = Bitmap::range(2, 4);
  Bitmap big = Bitmap::range(0, 10);
  EXPECT_TRUE(a.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(a));
  EXPECT_TRUE(a.intersects(big));
  EXPECT_FALSE(a.intersects(Bitmap::range(5, 9)));
  EXPECT_TRUE(Bitmap().is_subset_of(a));
}

TEST(Bitmap, EqualityIgnoresTrailingZeros) {
  Bitmap a = Bitmap::single(3);
  Bitmap b = Bitmap::single(3);
  b.set(300);
  b.clear(300);
  EXPECT_EQ(a, b);
}

TEST(Bitmap, ToVectorSorted) {
  Bitmap b;
  b.set(9);
  b.set(1);
  b.set(128);
  const std::vector<int> v = b.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[2], 128);
}

TEST(Bitmap, ListStringRoundTrip) {
  Bitmap b;
  b.set(0);
  b.set(1);
  b.set(2);
  b.set(8);
  b.set(10);
  b.set(11);
  EXPECT_EQ(b.to_list_string(), "0-2,8,10-11");
  EXPECT_EQ(Bitmap::parse_list("0-2,8,10-11"), b);
}

TEST(Bitmap, ParseSingletons) {
  const Bitmap b = Bitmap::parse_list("5");
  EXPECT_EQ(b.count(), 1);
  EXPECT_TRUE(b.test(5));
}

TEST(Bitmap, ParseWithWhitespace) {
  const Bitmap b = Bitmap::parse_list(" 1, 3-4\n");
  EXPECT_EQ(b.to_list_string(), "1,3-4");
}

TEST(Bitmap, ParseEmptyIsEmpty) {
  EXPECT_TRUE(Bitmap::parse_list("").empty());
}

TEST(Bitmap, ParseRejectsGarbage) {
  EXPECT_THROW(Bitmap::parse_list("abc"), std::exception);
  EXPECT_THROW(Bitmap::parse_list("5-2"), ContractError);
}

TEST(Bitmap, ParseHexMaskSimple) {
  const Bitmap b = Bitmap::parse_hex_mask("ff");
  EXPECT_EQ(b.to_list_string(), "0-7");
}

TEST(Bitmap, ParseHexMaskMultiWord) {
  // Words are 32-bit, most significant first: "1,00000000" = bit 32.
  const Bitmap b = Bitmap::parse_hex_mask("1,00000000");
  EXPECT_EQ(b.count(), 1);
  EXPECT_TRUE(b.test(32));
}

TEST(Bitmap, ParseHexMaskMixedCaseAndNewline) {
  const Bitmap b = Bitmap::parse_hex_mask("F0\n");
  EXPECT_EQ(b.to_list_string(), "4-7");
  EXPECT_EQ(Bitmap::parse_hex_mask("f0"), b);
}

TEST(Bitmap, ParseHexMaskSparse) {
  const Bitmap b = Bitmap::parse_hex_mask("00ff00ff");
  EXPECT_EQ(b.to_list_string(), "0-7,16-23");
}

TEST(Bitmap, ParseHexMaskRejectsGarbage) {
  EXPECT_THROW(Bitmap::parse_hex_mask(""), ContractError);
  EXPECT_THROW(Bitmap::parse_hex_mask("zz"), ContractError);
  EXPECT_THROW(Bitmap::parse_hex_mask("123456789"), ContractError);
  EXPECT_THROW(Bitmap::parse_hex_mask("ff,,ff"), ContractError);
}

TEST(Bitmap, SingleFactory) {
  const Bitmap b = Bitmap::single(77);
  EXPECT_EQ(b.count(), 1);
  EXPECT_EQ(b.first(), 77);
}

TEST(Bitmap, NegativeBitRejected) {
  Bitmap b;
  EXPECT_THROW(b.set(-1), ContractError);
}

}  // namespace
}  // namespace orwl::topo
