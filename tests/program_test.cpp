// Tests for the typed Program front-end: typed locations, the fluent task
// builder, RAII section guards with last-iteration release semantics,
// priming ranks, and the const acquire path on Handle.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "orwl/backend.h"
#include "orwl/program.h"

namespace orwl {
namespace {

RuntimeOptions direct_mode() {
  RuntimeOptions o;
  o.control = RuntimeOptions::ControlMode::Direct;
  return o;
}

TEST(Program, TypedLocationGeometry) {
  Program p;
  const Location<long> a = p.location<long>(4, "a");
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bytes(), 4 * sizeof(long));
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(Location<long>().valid());
  EXPECT_EQ(p.num_locations(), 1);
  EXPECT_EQ(p.location_decls()[0].name, "a");
  EXPECT_EQ(p.location_decls()[0].bytes, 4 * sizeof(long));
}

TEST(Program, SingleTaskWritesTypedSpan) {
  Program p;
  const Location<int> loc = p.location<int>(3);
  p.task("writer").writes(loc).body([loc](Step& s) {
    s.write(loc, [](std::span<int> v) {
      std::iota(v.begin(), v.end(), 7);
    });
  });
  RuntimeBackend be(direct_mode());
  const RunReport rep = p.run(be);
  EXPECT_EQ(rep.backend, "runtime");
  EXPECT_FALSE(rep.placed);
  EXPECT_EQ(be.fetch(loc), (std::vector<int>{7, 8, 9}));
}

TEST(Program, InitHookRunsBeforeTasks) {
  Program p;
  const Location<double> loc = p.location<double>(2);
  p.init(loc, [](std::span<double> v) { v[0] = 1.5; v[1] = 2.5; });
  double seen0 = 0.0;
  p.task("reader").reads(loc).body([loc, &seen0](Step& s) {
    seen0 = s.read(loc, [](std::span<const double> v) { return v[0] + v[1]; });
  });
  RuntimeBackend be(direct_mode());
  p.run(be);
  EXPECT_EQ(seen0, 4.0);
}

TEST(Program, AutoRenewAlternationMatchesManualDiscipline) {
  // Two writer tasks on one counter: sections renew on every iteration but
  // the last, so the FIFO alternation of the classic manual version must
  // reproduce exactly (a sees 0,2,4,... / b sees 1,3,5,...).
  constexpr int kIters = 25;
  Program p;
  const Location<long> counter = p.location<long>(1);
  std::vector<long> seen_a, seen_b;
  p.task("a").writes(counter).iterations(kIters).body(
      [counter, &seen_a](Step& s) {
        s.write(counter, [&](std::span<long> v) {
          seen_a.push_back(v[0]);
          v[0] += 1;
        });
      });
  p.task("b").writes(counter).iterations(kIters).body(
      [counter, &seen_b](Step& s) {
        s.write(counter, [&](std::span<long> v) {
          seen_b.push_back(v[0]);
          v[0] += 1;
        });
      });
  RuntimeBackend be(direct_mode());
  const RunReport rep = p.run(be);
  ASSERT_EQ(seen_a.size(), static_cast<std::size_t>(kIters));
  ASSERT_EQ(seen_b.size(), static_cast<std::size_t>(kIters));
  for (int i = 0; i < kIters; ++i) {
    EXPECT_EQ(seen_a[static_cast<std::size_t>(i)], 2 * i);
    EXPECT_EQ(seen_b[static_cast<std::size_t>(i)], 2 * i + 1);
  }
  EXPECT_EQ(be.fetch(counter)[0], 2L * kIters);
  // Exactly one grant per iteration per task: renewals stopped on the last
  // iteration, no dangling request needed draining.
  EXPECT_EQ(rep.grants, static_cast<std::uint64_t>(2 * kIters));
}

TEST(Program, DeclaredButUnusedHandleIsDrained) {
  // A task declares a location it never touches; the runtime primes the
  // request, so the backend must drain it or the co-writer behind it in
  // the FIFO would deadlock.
  Program p;
  const Location<long> loc = p.location<long>(1);
  p.task("lazy").writes(loc).body([](Step&) {});
  p.task("eager").writes(loc).body([loc](Step& s) {
    s.write(loc, [](std::span<long> v) { v[0] = 42; });
  });
  RuntimeBackend be(direct_mode());
  p.run(be);
  EXPECT_EQ(be.fetch(loc)[0], 42);
}

TEST(Program, LastIterationReleasesWithoutRenew) {
  // One task, N iterations on its own location: N grants total means the
  // last section released instead of renewing (a renewal would leave an
  // N+1-th request to drain).
  constexpr int kIters = 9;
  Program p;
  const Location<long> loc = p.location<long>(1);
  p.task("t").writes(loc).iterations(kIters).body([loc](Step& s) {
    EXPECT_EQ(s.last(), s.round() + 1 == kIters);
    s.write(loc, [&](std::span<long> v) { v[0] += 1; });
  });
  RuntimeBackend be(direct_mode());
  const RunReport rep = p.run(be);
  EXPECT_EQ(be.fetch(loc)[0], kIters);
  EXPECT_EQ(rep.grants, static_cast<std::uint64_t>(kIters));
}

TEST(Program, UndeclaredAccessThrows) {
  Program p;
  const Location<long> a = p.location<long>(1);
  const Location<long> b = p.location<long>(1);
  p.task("t").writes(a).body([b](Step& s) {
    s.write(b, [](std::span<long>) {});  // never declared
  });
  RuntimeBackend be(direct_mode());
  EXPECT_THROW(p.run(be), ContractError);
}

TEST(Program, WrongModeAccessThrows) {
  Program p;
  const Location<long> a = p.location<long>(1);
  p.task("t").reads(a).body([a](Step& s) {
    s.write(a, [](std::span<long>) {});  // declared read, asked for write
  });
  RuntimeBackend be(direct_mode());
  EXPECT_THROW(p.run(be), ContractError);
}

TEST(Program, BuilderRejectsDuplicateAndBogusDeclarations) {
  Program p;
  const Location<long> a = p.location<long>(1);
  TaskBuilder t = p.task("t");
  t.reads(a);
  EXPECT_THROW(t.reads(a), ContractError);
  EXPECT_NO_THROW(t.writes(a));  // same location, different mode is fine
  EXPECT_THROW(t.iterations(-1), ContractError);
  EXPECT_THROW(t.reads(Location<long>()), ContractError);
  EXPECT_THROW(t.body(nullptr), ContractError);
}

TEST(Program, RunWithoutBodyThrows) {
  Program p;
  const Location<long> a = p.location<long>(1);
  p.task("structural").writes(a);  // no body: fine for analysis only
  EXPECT_NO_THROW(p.static_comm_matrix());
  RuntimeBackend be(direct_mode());
  EXPECT_THROW(p.run(be), ContractError);
}

TEST(Program, StaticCommMatrixMatchesRuntimeRule) {
  Program p;
  const Location<std::byte> big = p.location<std::byte>(1000);
  const Location<std::byte> small = p.location<std::byte>(10);
  p.task("t0").writes(big);
  p.task("t1").reads(big).writes(small);
  p.task("t2").reads(small);
  const comm::CommMatrix m = p.static_comm_matrix();
  EXPECT_EQ(m.order(), 3);
  EXPECT_EQ(m.at(0, 1), 1000.0);
  EXPECT_EQ(m.at(1, 2), 10.0);
  EXPECT_EQ(m.at(0, 2), 0.0);
}

TEST(Program, PrimingRanksControlFirstGrant) {
  // The reader is *declared* first but ranked after the writer, so the
  // writer's request is primed first and the reader observes the product.
  Program p;
  const Location<int> loc = p.location<int>(1);
  int seen = -1;
  p.task("consumer").reads(loc, {.rank = 1}).body([loc, &seen](Step& s) {
    seen = s.read(loc, [](std::span<const int> v) { return v[0]; });
  });
  p.task("producer").writes(loc, {.rank = 0}).body([loc](Step& s) {
    s.write(loc, [](std::span<int> v) { v[0] = 7; });
  });
  RuntimeBackend be(direct_mode());
  p.run(be);
  EXPECT_EQ(seen, 7);
}

TEST(Program, DefaultPrimingIsDeclarationOrder) {
  // Same program without ranks: the reader is primed first and sees the
  // zero-initialized buffer.
  Program p;
  const Location<int> loc = p.location<int>(1);
  int seen = -1;
  p.task("consumer").reads(loc).body([loc, &seen](Step& s) {
    seen = s.read(loc, [](std::span<const int> v) { return v[0]; });
  });
  p.task("producer").writes(loc).body([loc](Step& s) {
    s.write(loc, [](std::span<int> v) { v[0] = 7; });
  });
  RuntimeBackend be(direct_mode());
  p.run(be);
  EXPECT_EQ(seen, 0);
}

TEST(Program, SectionSpanFormsAndMoves) {
  Program p;
  const Location<int> loc = p.location<int>(4);
  p.task("t").writes(loc).body([loc](Step& s) {
    Section<int> sec = s.write(loc);
    EXPECT_EQ(sec.size(), 4u);
    sec[0] = 1;
    std::span<int> as_plain_span = sec;
    as_plain_span[1] = 2;
    *(sec.begin() + 2) = 3;
    Section<int> moved = std::move(sec);  // moved-from dtor must be a no-op
    moved[3] = 4;
  });
  RuntimeBackend be(direct_mode());
  p.run(be);
  EXPECT_EQ(be.fetch(loc), (std::vector<int>{1, 2, 3, 4}));
}

TEST(Handle, ConstAcquirePath) {
  // The quickstart wart: a Read handle had to convert the mutable byte
  // span manually before as_span<const T>. acquire_const() is the direct
  // const path.
  Runtime rt(direct_mode());
  const LocationId loc = rt.add_location(sizeof(long));
  const TaskId w = rt.add_task("w", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    auto bytes = h.acquire();
    as_span<long>(bytes)[0] = 11;
    h.release();
  });
  long seen = 0;
  const TaskId r = rt.add_task("r", [&seen](TaskContext& ctx) {
    Handle& h = ctx.handle(1);
    const std::span<const std::byte> bytes = h.acquire_const();
    seen = as_span<const long>(bytes)[0];
    h.release();
  });
  rt.add_handle(w, loc, AccessMode::Write);
  rt.add_handle(r, loc, AccessMode::Read);
  rt.run();
  EXPECT_EQ(seen, 11);
}

TEST(Program, PlacePopulatesPlan) {
  Program p;
  const Location<long> a = p.location<long>(64);
  p.task("t0").writes(a).body([a](Step& s) {
    s.write(a, [](std::span<long>) {});
  });
  p.task("t1").reads(a).body([a](Step& s) {
    s.read(a, [](std::span<const long>) {});
  });
  p.place(place::Policy::Compact);
  RuntimeBackend be(direct_mode());
  const RunReport rep = p.run(be);
  EXPECT_TRUE(rep.placed);
  ASSERT_EQ(rep.plan.compute_pu.size(), 2u);
  EXPECT_GE(rep.plan.compute_pu[0], 0);
}

}  // namespace
}  // namespace orwl
