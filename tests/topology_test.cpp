// Unit tests for topo::Topology (synthetic builder, levels, distances).

#include <gtest/gtest.h>

#include "support/assert.h"
#include "topo/topology.h"

namespace orwl::topo {
namespace {

TEST(Synthetic, PaperMachineShape) {
  const Topology t = Topology::paper_machine();
  EXPECT_EQ(t.depth(), 4);  // machine / pack / core / pu
  EXPECT_EQ(t.num_pus(), 192);
  EXPECT_EQ(t.level(1).size(), 24u);
  EXPECT_EQ(t.level(2).size(), 192u);
  const std::vector<int> arities = t.arities();
  ASSERT_EQ(arities.size(), 3u);
  EXPECT_EQ(arities[0], 24);
  EXPECT_EQ(arities[1], 8);
  EXPECT_EQ(arities[2], 1);
  EXPECT_TRUE(t.is_balanced());
}

TEST(Synthetic, SmtMachine) {
  const Topology t = Topology::synthetic("pack:2 core:4 pu:2");
  EXPECT_EQ(t.num_pus(), 16);
  EXPECT_EQ(t.depth(), 4);
  // PUs of one core are adjacent in logical order.
  EXPECT_EQ(t.pus()[0]->parent, t.pus()[1]->parent);
  EXPECT_NE(t.pus()[1]->parent, t.pus()[2]->parent);
}

TEST(Synthetic, FlatMachine) {
  const Topology t = Topology::flat(5);
  EXPECT_EQ(t.depth(), 2);
  EXPECT_EQ(t.num_pus(), 5);
  EXPECT_EQ(t.arities(), std::vector<int>{5});
}

TEST(Synthetic, OsIndicesAreSequential) {
  const Topology t = Topology::synthetic("pack:2 core:2 pu:2");
  const auto pus = t.pus();
  for (int i = 0; i < t.num_pus(); ++i)
    EXPECT_EQ(pus[static_cast<std::size_t>(i)]->os_index, i);
}

TEST(Synthetic, CpusetsAggregate) {
  const Topology t = Topology::synthetic("pack:2 core:4 pu:1");
  EXPECT_EQ(t.root().cpuset.to_list_string(), "0-7");
  EXPECT_EQ(t.level(1)[0]->cpuset.to_list_string(), "0-3");
  EXPECT_EQ(t.level(1)[1]->cpuset.to_list_string(), "4-7");
}

TEST(Synthetic, RejectsMalformedSpecs) {
  EXPECT_THROW(Topology::synthetic(""), ContractError);
  EXPECT_THROW(Topology::synthetic("core:4"), ContractError);       // no pu
  EXPECT_THROW(Topology::synthetic("pu:2 core:2"), ContractError);  // pu first
  EXPECT_THROW(Topology::synthetic("pack:0 pu:1"), ContractError);
  EXPECT_THROW(Topology::synthetic("pack pu:1"), ContractError);
  EXPECT_THROW(Topology::synthetic("bogus:2 pu:1"), ContractError);
  EXPECT_THROW(Topology::synthetic("machine:1 pu:1"), ContractError);
}

TEST(Synthetic, AcceptsAliases) {
  const Topology t = Topology::synthetic("socket:2 numa:1 l3:1 core:2 pu:1");
  EXPECT_EQ(t.depth(), 6);
  EXPECT_EQ(t.level(1)[0]->type, ObjType::Package);
  EXPECT_EQ(t.level(2)[0]->type, ObjType::NUMANode);
  EXPECT_EQ(t.level(3)[0]->type, ObjType::L3);
}

TEST(ObjTypeNames, RoundTrip) {
  for (ObjType ty : {ObjType::Machine, ObjType::Group, ObjType::Package,
                     ObjType::NUMANode, ObjType::L3, ObjType::L2,
                     ObjType::Core, ObjType::PU}) {
    EXPECT_EQ(parse_obj_type(to_string(ty)), ty);
  }
  EXPECT_THROW(parse_obj_type("nonsense"), ContractError);
}

TEST(Distance, CommonAncestorDepth) {
  const Topology t = Topology::synthetic("pack:2 core:2 pu:2");
  const auto pus = t.pus();
  // Same core: pus 0 and 1.
  EXPECT_EQ(t.common_ancestor_depth(*pus[0], *pus[1]), 2);
  // Same pack, different core: pus 0 and 2.
  EXPECT_EQ(t.common_ancestor_depth(*pus[0], *pus[2]), 1);
  // Different pack: pus 0 and 4.
  EXPECT_EQ(t.common_ancestor_depth(*pus[0], *pus[4]), 0);
  // Same PU.
  EXPECT_EQ(t.common_ancestor_depth(*pus[0], *pus[0]), 3);
}

TEST(Distance, HopDistance) {
  const Topology t = Topology::synthetic("pack:2 core:2 pu:2");
  const auto pus = t.pus();
  EXPECT_EQ(t.hop_distance(*pus[0], *pus[0]), 0);
  EXPECT_EQ(t.hop_distance(*pus[0], *pus[1]), 2);
  EXPECT_EQ(t.hop_distance(*pus[0], *pus[2]), 4);
  EXPECT_EQ(t.hop_distance(*pus[0], *pus[4]), 6);
  // Symmetry.
  EXPECT_EQ(t.hop_distance(*pus[4], *pus[0]), 6);
}

TEST(Distance, MixedDepthObjects) {
  const Topology t = Topology::synthetic("pack:2 core:2 pu:2");
  const Object& pack0 = *t.level(1)[0];
  const Object& pu0 = *t.pus()[0];
  EXPECT_EQ(t.common_ancestor_depth(pack0, pu0), 1);
  EXPECT_EQ(t.hop_distance(pack0, pu0), 2);
}

TEST(Lookup, PuByOsIndex) {
  const Topology t = Topology::synthetic("pack:2 core:2 pu:1");
  const Object* pu = t.pu_by_os(3);
  ASSERT_NE(pu, nullptr);
  EXPECT_EQ(pu->os_index, 3);
  EXPECT_EQ(t.pu_by_os(99), nullptr);
}

TEST(Clone, DeepCopyMatches) {
  const Topology t = Topology::synthetic("pack:3 core:2 pu:2");
  const Topology c = t.clone();
  EXPECT_EQ(c.depth(), t.depth());
  EXPECT_EQ(c.num_pus(), t.num_pus());
  EXPECT_EQ(c.arities(), t.arities());
  for (int i = 0; i < t.num_pus(); ++i)
    EXPECT_EQ(c.pus()[static_cast<std::size_t>(i)]->os_index,
              t.pus()[static_cast<std::size_t>(i)]->os_index);
  // Independent trees.
  EXPECT_NE(&c.root(), &t.root());
}

TEST(Host, DetectsOrFallsBack) {
  const Topology t = Topology::host();
  EXPECT_GE(t.num_pus(), 1);
  EXPECT_GE(t.depth(), 2);
}

TEST(Render, ToStringMentionsStructure) {
  const Topology t = Topology::synthetic("pack:2 core:1 pu:1");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("machine"), std::string::npos);
  EXPECT_NE(s.find("pack"), std::string::npos);
  EXPECT_NE(s.find("pu"), std::string::npos);
}

TEST(Render, DotContainsNodesAndEdges) {
  const Topology t = Topology::synthetic("pack:2 pu:2");
  const std::string dot = t.to_dot();
  EXPECT_NE(dot.find("digraph topology"), std::string::npos);
  EXPECT_NE(dot.find("machine 0"), std::string::npos);
  EXPECT_NE(dot.find("os 3"), std::string::npos);
  // 7 objects, 6 edges.
  std::size_t edges = 0;
  for (std::size_t p = dot.find("->"); p != std::string::npos;
       p = dot.find("->", p + 2))
    ++edges;
  EXPECT_EQ(edges, 6u);
}

TEST(Render, SummaryRoundTripsSynthetic) {
  const std::string spec = "pack:24 core:8 pu:1";
  const Topology t = Topology::synthetic(spec);
  EXPECT_EQ(t.summary(), spec);
  // The summary is itself a valid synthetic description.
  const Topology back = Topology::synthetic(t.summary());
  EXPECT_EQ(back.num_pus(), t.num_pus());
  EXPECT_EQ(back.arities(), t.arities());
}

TEST(FromTree, RejectsNonUniformDepth) {
  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;
  auto pu = std::make_unique<Object>();
  pu->type = ObjType::PU;
  pu->os_index = 0;
  pu->parent = root.get();
  auto core = std::make_unique<Object>();
  core->type = ObjType::Core;
  core->parent = root.get();
  auto pu2 = std::make_unique<Object>();
  pu2->type = ObjType::PU;
  pu2->os_index = 1;
  pu2->parent = core.get();
  core->children.push_back(std::move(pu2));
  root->children.push_back(std::move(pu));   // leaf at depth 1
  root->children.push_back(std::move(core)); // leaf at depth 2
  EXPECT_THROW(Topology::from_tree(std::move(root)), ContractError);
}

TEST(FromTree, RejectsDuplicateOsIndex) {
  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;
  for (int i = 0; i < 2; ++i) {
    auto pu = std::make_unique<Object>();
    pu->type = ObjType::PU;
    pu->os_index = 7;  // duplicate
    pu->parent = root.get();
    root->children.push_back(std::move(pu));
  }
  EXPECT_THROW(Topology::from_tree(std::move(root)), ContractError);
}

TEST(Balance, UnbalancedDetected) {
  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;
  int os = 0;
  for (int c = 0; c < 2; ++c) {
    auto core = std::make_unique<Object>();
    core->type = ObjType::Core;
    core->parent = root.get();
    const int npus = c == 0 ? 1 : 2;
    for (int p = 0; p < npus; ++p) {
      auto pu = std::make_unique<Object>();
      pu->type = ObjType::PU;
      pu->os_index = os++;
      pu->parent = core.get();
      core->children.push_back(std::move(pu));
    }
    root->children.push_back(std::move(core));
  }
  const Topology t = Topology::from_tree(std::move(root));
  EXPECT_FALSE(t.is_balanced());
  EXPECT_EQ(t.num_pus(), 3);
  // arities reports the max at the irregular level.
  EXPECT_EQ(t.arities(), (std::vector<int>{2, 2}));
}

}  // namespace
}  // namespace orwl::topo
