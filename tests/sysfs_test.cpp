// Tests for the Linux sysfs topology detector, using a fabricated sysfs
// tree on disk (the detector takes the root path as a parameter).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "topo/sysfs.h"

namespace orwl::topo {
namespace {

namespace fs = std::filesystem;

class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("orwl_sysfs_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "devices/system/cpu");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  void add_cpu(int cpu, int pack, int core) {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    write(base + "physical_package_id", std::to_string(pack) + "\n");
    write(base + "core_id", std::to_string(core) + "\n");
  }

  fs::path root_;
};

TEST_F(SysfsFixture, MissingOnlineFileFails) {
  EXPECT_FALSE(detect_from_sysfs(root_.string()).has_value());
}

TEST_F(SysfsFixture, TwoPackagesTwoCoresSmt) {
  write("devices/system/cpu/online", "0-7\n");
  // pack 0: cores 0,1 with 2 SMT threads each; pack 1 likewise.
  add_cpu(0, 0, 0);
  add_cpu(1, 0, 0);
  add_cpu(2, 0, 1);
  add_cpu(3, 0, 1);
  add_cpu(4, 1, 0);
  add_cpu(5, 1, 0);
  add_cpu(6, 1, 1);
  add_cpu(7, 1, 1);
  const auto topo = detect_from_sysfs(root_.string());
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->num_pus(), 8);
  EXPECT_EQ(topo->depth(), 4);  // machine/pack/core/pu
  EXPECT_EQ(topo->level(1).size(), 2u);
  EXPECT_EQ(topo->level(2).size(), 4u);
  EXPECT_TRUE(topo->is_balanced());
  // SMT siblings share a core.
  EXPECT_EQ(topo->pu_by_os(0)->parent, topo->pu_by_os(1)->parent);
  EXPECT_NE(topo->pu_by_os(1)->parent, topo->pu_by_os(2)->parent);
}

TEST_F(SysfsFixture, NumaNodesInsertLevel) {
  write("devices/system/cpu/online", "0-3\n");
  add_cpu(0, 0, 0);
  add_cpu(1, 0, 1);
  add_cpu(2, 0, 2);
  add_cpu(3, 0, 3);
  write("devices/system/node/node0/cpulist", "0-1\n");
  write("devices/system/node/node1/cpulist", "2-3\n");
  const auto topo = detect_from_sysfs(root_.string());
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->depth(), 5);  // machine/pack/numa/core/pu
  EXPECT_EQ(topo->level(2).size(), 2u);
  EXPECT_EQ(topo->level(2)[0]->type, ObjType::NUMANode);
  EXPECT_EQ(topo->level(2)[0]->cpuset.to_list_string(), "0-1");
  EXPECT_EQ(topo->level(2)[1]->cpuset.to_list_string(), "2-3");
}

TEST_F(SysfsFixture, SparseOnlineMaskRespected) {
  write("devices/system/cpu/online", "0,2\n");
  add_cpu(0, 0, 0);
  add_cpu(1, 0, 1);  // present in tree but offline
  add_cpu(2, 0, 2);
  const auto topo = detect_from_sysfs(root_.string());
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->num_pus(), 2);
  EXPECT_NE(topo->pu_by_os(0), nullptr);
  EXPECT_EQ(topo->pu_by_os(1), nullptr);
  EXPECT_NE(topo->pu_by_os(2), nullptr);
}

TEST_F(SysfsFixture, SiblingMaskFallback) {
  // Only package_cpus/core_cpus hex masks, like stripped-down VMs:
  // one package, 2 cores with 2 SMT threads each.
  write("devices/system/cpu/online", "0-3\n");
  for (int cpu = 0; cpu < 4; ++cpu) {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    write(base + "package_cpus", "f\n");
    write(base + "core_cpus", cpu < 2 ? "3\n" : "c\n");
  }
  const auto topo = detect_from_sysfs(root_.string());
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->depth(), 4);
  EXPECT_EQ(topo->level(1).size(), 1u);  // one package
  EXPECT_EQ(topo->level(2).size(), 2u);  // two cores
  EXPECT_EQ(topo->pu_by_os(0)->parent, topo->pu_by_os(1)->parent);
  EXPECT_NE(topo->pu_by_os(1)->parent, topo->pu_by_os(2)->parent);
}

TEST_F(SysfsFixture, LegacySiblingNames) {
  // Old kernels: core_siblings (package mask) + thread_siblings (core).
  write("devices/system/cpu/online", "0-1\n");
  for (int cpu = 0; cpu < 2; ++cpu) {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    write(base + "core_siblings", "3\n");
    write(base + "thread_siblings",
          cpu == 0 ? std::string("1\n") : std::string("2\n"));
  }
  const auto topo = detect_from_sysfs(root_.string());
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->level(1).size(), 1u);
  EXPECT_EQ(topo->level(2).size(), 2u);  // two single-thread cores
}

TEST_F(SysfsFixture, NoTopologyFilesFails) {
  write("devices/system/cpu/online", "0-3\n");
  // No per-cpu topology directories, no NUMA info: nothing to build from.
  EXPECT_FALSE(detect_from_sysfs(root_.string()).has_value());
}

TEST_F(SysfsFixture, GarbageOnlineFileFails) {
  write("devices/system/cpu/online", "not-a-cpulist\n");
  EXPECT_FALSE(detect_from_sysfs(root_.string()).has_value());
}

TEST_F(SysfsFixture, RealSysfsIfPresent) {
  // On Linux CI machines /sys usually exists; the call must either fail
  // cleanly or produce a sane topology.
  const auto topo = detect_from_sysfs("/sys");
  if (topo.has_value()) {
    EXPECT_GE(topo->num_pus(), 1);
    EXPECT_GE(topo->depth(), 2);
  }
}

}  // namespace
}  // namespace orwl::topo
