// Tests for the location-memory layer (src/mem): policy parsing, Segment
// alignment and zero-byte guarantees, bind/interleave intent + content
// preservation across migrations, Arena backend selection incl. the
// forced heap fallback, the sysfs NUMA inventory, and the policy knob
// end-to-end through Runtime, Program and both backends.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "mem/numa.h"
#include "mem/policy.h"
#include "mem/segment.h"
#include "orwl/backend.h"
#include "orwl/program.h"
#include "orwl/runtime.h"
#include "support/assert.h"
#include "topo/topology.h"
#include "workloads/workloads.h"

namespace orwl::mem {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------------------------
// MemoryPolicy parsing.
// --------------------------------------------------------------------------

TEST(MemoryPolicyNames, ToStringParseRoundTrip) {
  for (const MemoryPolicy p : {MemoryPolicy::Heap, MemoryPolicy::NumaLocal,
                               MemoryPolicy::NumaInterleave}) {
    EXPECT_EQ(parse_memory_policy(to_string(p)), p);
  }
  EXPECT_EQ(parse_memory_policy("HEAP"), MemoryPolicy::Heap);
  EXPECT_EQ(parse_memory_policy("local"), MemoryPolicy::NumaLocal);
  EXPECT_EQ(parse_memory_policy("Interleave"), MemoryPolicy::NumaInterleave);
  try {
    (void)parse_memory_policy("pmem");
    FAIL() << "unknown policy did not throw";
  } catch (const ContractError& e) {
    // The error names the known policies so CLI typos are actionable.
    EXPECT_NE(std::string(e.what()).find("numa_local"), std::string::npos);
  }
}

// --------------------------------------------------------------------------
// Segment / Arena.
// --------------------------------------------------------------------------

bool aligned_to(const void* p, std::size_t a) {
  return reinterpret_cast<std::uintptr_t>(p) % a == 0;
}

TEST(Segment, HeapBackingIsAlignedAndZeroed) {
  const Arena arena;  // default: heap
  const Segment seg = arena.allocate(1000);
  ASSERT_EQ(seg.size(), 1000u);
  EXPECT_EQ(seg.backing(), Segment::Backing::Heap);
  EXPECT_TRUE(aligned_to(seg.bytes().data(), kSegmentAlignment));
  for (const std::byte b : seg.bytes()) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(seg.target_node(), -1);
  EXPECT_FALSE(seg.interleaved());
}

TEST(Segment, NumaArenaIsAlignedAndZeroedOnAnyHost) {
  // With the syscalls available this is an mmap (page-aligned); on hosts
  // without them it falls back to the heap — both satisfy the guarantees.
  const Arena arena({.policy = MemoryPolicy::NumaLocal});
  const Segment seg = arena.allocate(3 * page_size() + 17);
  ASSERT_EQ(seg.size(), 3 * page_size() + 17);
  EXPECT_TRUE(aligned_to(seg.bytes().data(), kSegmentAlignment));
  if (arena.numa_backed()) {
    EXPECT_EQ(seg.backing(), Segment::Backing::Mmap);
    EXPECT_TRUE(aligned_to(seg.bytes().data(), page_size()));
  } else {
    EXPECT_EQ(seg.backing(), Segment::Backing::Heap);
  }
  for (const std::byte b : seg.bytes()) EXPECT_EQ(b, std::byte{0});
}

TEST(Segment, ZeroByteSegmentIsEmptyAndPlacementIsVacuous) {
  for (const MemoryPolicy p :
       {MemoryPolicy::Heap, MemoryPolicy::NumaLocal}) {
    const Arena arena({.policy = p});
    Segment seg = arena.allocate(0);
    EXPECT_EQ(seg.size(), 0u);
    EXPECT_EQ(seg.backing(), Segment::Backing::None);
    EXPECT_TRUE(seg.bytes().empty());
    // Pure synchronization locations have no pages: binding trivially
    // succeeds and still records the intent.
    EXPECT_TRUE(seg.bind_to_node(0));
    EXPECT_EQ(seg.target_node(), 0);
    EXPECT_TRUE(seg.interleave({0}));
    EXPECT_TRUE(seg.interleaved());
  }
}

TEST(Segment, MigrationRoundTripPreservesContents) {
  const Arena arena({.policy = MemoryPolicy::NumaLocal});
  Segment seg = arena.allocate(4 * page_size());
  auto bytes = seg.bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::byte>(i * 31 % 251);

  const NumaInfo& numa = NumaInfo::host();
  const int a = numa.available() ? numa.nodes().front().id : 0;
  const int b = numa.available() ? numa.nodes().back().id : 0;
  seg.bind_to_node(a);
  EXPECT_EQ(seg.target_node(), a);
  seg.bind_to_node(b);  // a != b on multi-node hosts; same-node otherwise
  seg.bind_to_node(a);
  EXPECT_EQ(seg.target_node(), a);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    ASSERT_EQ(bytes[i], static_cast<std::byte>(i * 31 % 251)) << "byte " << i;
  if (arena.numa_backed() && seg.physically_placed()) {
    // The kernel accepted the preference; a touched first page should
    // report a node (exact id is advisory under MPOL_PREFERRED).
    EXPECT_TRUE(page_node_of(bytes.data()).has_value());
  }
}

TEST(Segment, MoveTransfersOwnershipAndIntent) {
  const Arena arena({.policy = MemoryPolicy::Heap});
  Segment a = arena.allocate(128);
  a.bytes()[7] = std::byte{42};
  a.bind_to_node(3);
  Segment b = std::move(a);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(b.bytes()[7], std::byte{42});
  EXPECT_EQ(b.target_node(), 3);
  EXPECT_EQ(a.size(), 0u);                           // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.backing(), Segment::Backing::None);    // NOLINT(bugprone-use-after-move)
}

TEST(Arena, ForcedFallbackAlwaysUsesHeapButKeepsIntent) {
  const Arena arena(
      {.policy = MemoryPolicy::NumaLocal, .force_fallback = true});
  EXPECT_FALSE(arena.numa_backed());
  Segment seg = arena.allocate(page_size());
  EXPECT_EQ(seg.backing(), Segment::Backing::Heap);
  // Page ops degrade to intent-recording: the policy stays observable
  // even where the kernel cannot move anything.
  EXPECT_FALSE(seg.bind_to_node(1));
  EXPECT_EQ(seg.target_node(), 1);
  EXPECT_FALSE(seg.physically_placed());
}

// --------------------------------------------------------------------------
// NumaInfo.
// --------------------------------------------------------------------------

class NumaSysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("orwl_mem_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "devices/system/node");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  fs::path root_;
};

TEST_F(NumaSysfsFixture, DetectParsesCpusMemoryAndDistances) {
  write("devices/system/node/node0/cpulist", "0-3\n");
  write("devices/system/node/node0/meminfo",
        "Node 0 MemTotal:       16777216 kB\n"
        "Node 0 MemFree:         8388608 kB\n");
  write("devices/system/node/node0/distance", "10 21\n");
  write("devices/system/node/node1/cpulist", "4-7\n");
  write("devices/system/node/node1/meminfo",
        "Node 1 MemTotal:       8388608 kB\n");
  write("devices/system/node/node1/distance", "21 10\n");

  const NumaInfo info = NumaInfo::detect(root_.string());
  ASSERT_TRUE(info.available());
  ASSERT_EQ(info.num_nodes(), 2);
  EXPECT_EQ(info.nodes()[0].id, 0);
  EXPECT_EQ(info.nodes()[0].cpus.to_list_string(), "0-3");
  EXPECT_EQ(info.nodes()[0].mem_bytes, 16777216LL * 1024);
  EXPECT_EQ(info.nodes()[0].distances, (std::vector<int>{10, 21}));
  EXPECT_EQ(info.nodes()[1].mem_bytes, 8388608LL * 1024);
  EXPECT_EQ(info.node_of_cpu(2), 0);
  EXPECT_EQ(info.node_of_cpu(5), 1);
  EXPECT_EQ(info.node_of_cpu(64), -1);
  EXPECT_EQ(info.node_ids(), (std::vector<int>{0, 1}));
}

TEST_F(NumaSysfsFixture, EmptyTreeIsUnavailable) {
  const NumaInfo info = NumaInfo::detect(root_.string());
  EXPECT_FALSE(info.available());
  EXPECT_EQ(info.node_of_cpu(0), -1);
}

TEST(NumaInfoSynthetic, FromNodeCpus) {
  const NumaInfo info = NumaInfo::from_node_cpus(
      {topo::Bitmap::range(0, 1), topo::Bitmap::range(2, 3)});
  ASSERT_EQ(info.num_nodes(), 2);
  EXPECT_EQ(info.node_of_cpu(1), 0);
  EXPECT_EQ(info.node_of_cpu(3), 1);
}

// --------------------------------------------------------------------------
// Runtime / Program / backend plumbing.
// --------------------------------------------------------------------------

TEST(RuntimeMemory, LocationStorageComesFromTheArena) {
  RuntimeOptions opts;
  opts.memory = MemoryPolicy::NumaLocal;
  Runtime rt(opts);
  const LocationId data = rt.add_location(4096, "data");
  const LocationId sync_only = rt.add_location(0, "sync");
  EXPECT_EQ(rt.memory_policy(), MemoryPolicy::NumaLocal);
  EXPECT_EQ(rt.location_storage(data).size(), 4096u);
  EXPECT_EQ(rt.location_storage(sync_only).size(), 0u);
  EXPECT_EQ(rt.location_node(data), -1);  // no placement applied yet
  // Zero-initialized regardless of backing.
  for (const std::byte b : rt.location_data(data))
    ASSERT_EQ(b, std::byte{0});
}

TEST(RuntimeMemory, InterleavePolicySpreadsOncePerLocation) {
  RuntimeOptions opts;
  opts.memory = MemoryPolicy::NumaInterleave;
  Runtime rt(opts);
  rt.add_location(4096, "a");
  rt.add_location(4096, "b");
  rt.add_location(0, "sync");
  const auto topo = topo::Topology::synthetic("pack:2 pu:1");
  const NumaInfo numa = NumaInfo::from_node_cpus(
      {topo::Bitmap::single(0), topo::Bitmap::single(1)});
  // Both data locations get interleaved; the empty one has no pages.
  EXPECT_EQ(rt.place_location_memory({0, 1}, topo, &numa), 2);
  EXPECT_TRUE(rt.location_storage(0).interleaved());
  // Re-applying (an epoch re-placement) finds nothing left to do.
  EXPECT_EQ(rt.place_location_memory({1, 0}, topo, &numa), 0);
}

TEST(ProgramMemory, PolicyKnobTravelsToTheRuntime) {
  Program p;
  auto a = p.location<long>(8, "a");
  p.task("t").writes(a).iterations(2).body([a](Step& s) {
    s.write(a, [&](std::span<long> x) { x[0] += 1; });
  });
  EXPECT_FALSE(p.memory_policy().has_value());
  p.memory_policy(MemoryPolicy::NumaLocal);
  ASSERT_TRUE(p.memory_policy().has_value());
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  EXPECT_GT(rep.grants, 0u);
  EXPECT_EQ(backend.runtime().memory_policy(), MemoryPolicy::NumaLocal);
  EXPECT_EQ(backend.fetch(a)[0], 2);
}

TEST(ProgramMemory, InterleaveAppliesEvenWithoutAPlacementPolicy) {
  // numa_interleave needs no task mapping, so an unplaced program must
  // still interleave its real pages (the sim models it unconditionally —
  // the backends may not diverge here).
  Program p;
  auto a = p.location<long>(1024, "a");
  p.task("t").writes(a).iterations(1).body([a](Step& s) {
    s.write(a, [](std::span<long> x) { x[0] = 1; });
  });
  p.memory_policy(MemoryPolicy::NumaInterleave);
  RuntimeBackend backend;
  p.run(backend);
  if (NumaInfo::host().available()) {
    EXPECT_TRUE(backend.runtime().location_storage(a.id()).interleaved());
  }
  EXPECT_EQ(backend.fetch(a)[0], 1);
}

TEST(ProgramMemory, NumaLocalRunsEndToEndOnAnyHostViaTheFallback) {
  // The acceptance path: --memory-policy numa_local on a host that may
  // have no NUMA nodes (or filtered syscalls) must run and verify — the
  // Arena degrades to the heap and the page ops to intent recording.
  for (const MemoryPolicy mp :
       {MemoryPolicy::NumaLocal, MemoryPolicy::NumaInterleave}) {
    Program p;
    const workloads::Built built = workloads::get("stencil2d")
        .build(p, {.tasks = 4, .size = 16, .iterations = 3});
    p.place(place::Policy::TreeMatch);
    p.memory_policy(mp);
    RuntimeBackend backend;
    const RunReport rep = p.run(backend);
    EXPECT_TRUE(rep.placed);
    std::string why;
    EXPECT_TRUE(built.verify(backend, why)) << to_string(mp) << ": " << why;
  }
}

// --------------------------------------------------------------------------
// Sim model: heap unchanged, interleave distinct.
// --------------------------------------------------------------------------

double sim_seconds(const std::optional<MemoryPolicy>& mp) {
  Program p;
  workloads::get("stencil2d")
      .build(p, {.tasks = 16, .size = 256, .iterations = 8});
  p.place(place::Policy::TreeMatch);
  if (mp) p.memory_policy(*mp);
  SimBackend backend(topo::Topology::paper_machine());
  return p.run(backend).seconds;
}

TEST(SimMemoryModel, ExplicitHeapPredictsExactlyLikeTheDefault) {
  EXPECT_EQ(sim_seconds(std::nullopt), sim_seconds(MemoryPolicy::Heap));
}

TEST(SimMemoryModel, InterleaveChangesTheMemoryTerm) {
  // Interleaved pages stream at the blended bandwidth instead of the
  // local one — a well-placed stencil predicts slower under interleave.
  const double heap = sim_seconds(MemoryPolicy::Heap);
  const double interleave = sim_seconds(MemoryPolicy::NumaInterleave);
  EXPECT_NE(heap, interleave);
  EXPECT_GT(interleave, heap);
}

}  // namespace
}  // namespace orwl::mem
