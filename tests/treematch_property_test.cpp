// Property-based suites for Algorithm 1: over random matrices and a family
// of topologies, the mapping must always be a valid assignment and must
// never lose to random placement on locality metrics (on average it must
// win clearly).

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "support/rng.h"
#include "treematch/treematch.h"

namespace orwl::treematch {
namespace {

Options no_control() {
  Options o;
  o.manage_control_threads = false;
  return o;
}

comm::Mapping random_mapping(int threads, int npus, std::uint64_t seed) {
  std::vector<int> perm(static_cast<std::size_t>(npus));
  std::iota(perm.begin(), perm.end(), 0);
  orwl::Xoshiro256 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1],
              perm[static_cast<std::size_t>(rng.below(i))]);
  comm::Mapping map(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    map[static_cast<std::size_t>(t)] = perm[static_cast<std::size_t>(t % npus)];
  return map;
}

// (topology spec, thread count, seed)
using Param = std::tuple<const char*, int, int>;

class MappingProperty : public ::testing::TestWithParam<Param> {};

TEST_P(MappingProperty, ValidAndNoWorseThanAverageRandom) {
  const auto [spec, threads, seed] = GetParam();
  const auto topo = topo::Topology::synthetic(spec);
  const auto m = comm::random_matrix(threads, 0.4, 100.0,
                                     static_cast<std::uint64_t>(seed));
  const Result r = map_threads(topo, m, no_control());

  // Validity: every thread mapped, never more than threads_per_leaf per PU.
  comm::validate_mapping(topo, r.compute_pu, r.threads_per_leaf);
  for (int pu : r.compute_pu) EXPECT_GE(pu, 0);

  // Locality: beat the average of random placements. (A single random
  // draw could in principle win; the average of 20 cannot, except for
  // degenerate matrices, which density 0.4 avoids at these sizes.)
  const double tm_cost = comm::hop_bytes(topo, m, r.compute_pu);
  double random_sum = 0.0;
  const int kDraws = 20;
  for (int d = 0; d < kDraws; ++d)
    random_sum += comm::hop_bytes(
        topo, m,
        random_mapping(threads, topo.num_pus(),
                       static_cast<std::uint64_t>(seed * 100 + d)));
  EXPECT_LE(tm_cost, random_sum / kDraws * 1.0001)
      << "TreeMatch lost to average random placement";
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSizes, MappingProperty,
    ::testing::Values(
        Param{"pack:2 core:4 pu:1", 8, 1}, Param{"pack:2 core:4 pu:1", 8, 2},
        Param{"pack:4 core:4 pu:1", 16, 3},
        Param{"pack:4 core:4 pu:1", 12, 4},
        Param{"pack:2 core:2 pu:2", 8, 5}, Param{"pack:8 core:4 pu:1", 32, 6},
        Param{"pack:2 numa:2 core:4 pu:1", 16, 7},
        Param{"pack:4 core:8 pu:1", 32, 8},
        Param{"pack:4 core:8 pu:1", 24, 9},
        Param{"pu:16", 16, 10}));

class StencilProperty : public ::testing::TestWithParam<int> {};

// On stencil patterns (the paper's workload) TreeMatch must keep a clear
// majority of the traffic inside packages on a multi-package machine.
TEST_P(StencilProperty, KeepsTrafficInsidePackages) {
  const int blocks = GetParam();
  const auto topo = topo::Topology::synthetic("pack:4 core:4 pu:1");
  comm::StencilSpec spec;
  spec.blocks_x = blocks;
  spec.blocks_y = blocks;
  spec.block_rows = 128;
  spec.block_cols = 128;
  const auto m = comm::stencil_matrix(spec);
  const Result r = map_threads(topo, m, no_control());
  comm::validate_mapping(topo, r.compute_pu, r.threads_per_leaf);

  const double tm_local = comm::locality_fraction(topo, m, r.compute_pu, 1);
  // Row-major sequential placement is the natural naive baseline.
  comm::Mapping naive(static_cast<std::size_t>(blocks * blocks));
  for (int t = 0; t < blocks * blocks; ++t)
    naive[static_cast<std::size_t>(t)] = t % topo.num_pus();
  const double naive_local = comm::locality_fraction(topo, m, naive, 1);
  EXPECT_GE(tm_local, naive_local - 1e-9);
  EXPECT_GE(tm_local, 0.5) << "stencil should be mostly package-local";
}

INSTANTIATE_TEST_SUITE_P(BlockGrids, StencilProperty,
                         ::testing::Values(2, 4, 8));

// Oversubscribed property: threads > PUs must still produce a balanced
// assignment (each PU gets at most ceil(threads / PUs)).
class OversubProperty : public ::testing::TestWithParam<int> {};

TEST_P(OversubProperty, BalancedSharing) {
  const int factor = GetParam();
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  const int threads = topo.num_pus() * factor;
  const auto m = comm::random_matrix(threads, 0.3, 10.0,
                                     static_cast<std::uint64_t>(factor));
  const Result r = map_threads(topo, m, no_control());
  EXPECT_EQ(r.oversubscribed, factor > 1);
  EXPECT_EQ(r.threads_per_leaf, factor);
  comm::validate_mapping(topo, r.compute_pu, factor);
}

INSTANTIATE_TEST_SUITE_P(Factors, OversubProperty,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace orwl::treematch
