// End-to-end integration tests: the ORWL and fork-join LK23
// implementations must reproduce the blocked reference bit-for-bit, under
// every placement policy and control mode.

#include <gtest/gtest.h>

#include "lk23/forkjoin_impl.h"
#include "lk23/kernel.h"
#include "lk23/orwl_impl.h"
#include "sim/lk23_model.h"

namespace orwl::lk23 {
namespace {

Spec small_spec() {
  Spec spec;
  spec.n = 64;
  spec.iterations = 6;
  spec.bx = 4;
  spec.by = 2;
  return spec;
}

TEST(OrwlLk23, MatchesBlockedReferenceBitwise) {
  const Spec spec = small_spec();
  const auto topo = topo::Topology::host();
  const OrwlRunResult res = run_orwl(spec, place::Policy::None, topo);
  const auto ref = blocked_reference(spec);
  EXPECT_EQ(max_abs_diff(res.za, ref), 0.0);
  // 8 blocks, each with a main op; frontier op count depends on geometry.
  EXPECT_GT(res.num_tasks, 8);
}

TEST(OrwlLk23, SingleBlockDegenerateCase) {
  Spec spec;
  spec.n = 32;
  spec.iterations = 4;
  spec.bx = 1;
  spec.by = 1;
  const auto topo = topo::Topology::host();
  const OrwlRunResult res = run_orwl(spec, place::Policy::None, topo);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
  EXPECT_EQ(res.num_tasks, 9)
      << "1 main + 8 frontier ops even without neighbours (paper Sec. III)";
}

TEST(OrwlLk23, ZeroIterations) {
  Spec spec = small_spec();
  spec.iterations = 0;
  const auto topo = topo::Topology::host();
  const OrwlRunResult res = run_orwl(spec, place::Policy::None, topo);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

TEST(OrwlLk23, AllPoliciesProduceIdenticalResults) {
  const Spec spec = small_spec();
  const auto topo = topo::Topology::host();
  const auto ref = blocked_reference(spec);
  for (place::Policy policy :
       {place::Policy::None, place::Policy::Compact, place::Policy::Scatter,
        place::Policy::Random, place::Policy::TreeMatch}) {
    const OrwlRunResult res = run_orwl(spec, policy, topo);
    EXPECT_EQ(max_abs_diff(res.za, ref), 0.0)
        << "policy " << place::to_string(policy)
        << " changed the numerics";
  }
}

TEST(OrwlLk23, DirectControlModeIdentical) {
  const Spec spec = small_spec();
  const auto topo = topo::Topology::host();
  RuntimeOptions direct;
  direct.control = RuntimeOptions::ControlMode::Direct;
  const OrwlRunResult res =
      run_orwl(spec, place::Policy::TreeMatch, topo, direct);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

TEST(OrwlLk23, StaticMatrixMatchesStencilStructure) {
  const Spec spec = small_spec();
  Runtime rt;
  const OrwlProgram prog = build_orwl_program(rt, spec);
  const comm::CommMatrix m = rt.static_comm_matrix();
  EXPECT_EQ(m.order(), prog.num_tasks);
  // Every main op communicates with its own frontier ops (they read the
  // block) — mains are tasks 0..7; all their rows must be non-empty.
  for (int b = 0; b < 8; ++b) {
    double row = 0.0;
    for (int j = 0; j < m.order(); ++j) row += m.at(b, j);
    EXPECT_GT(row, 0.0) << "main " << b << " communicates with nobody";
  }
}

TEST(OrwlLk23, MeasuredFlowsReflectIterations) {
  Spec spec;
  spec.n = 16;
  spec.iterations = 3;
  spec.bx = 2;
  spec.by = 1;
  const auto topo = topo::Topology::host();
  const OrwlRunResult res = run_orwl(spec, place::Policy::None, topo);
  // 2 blocks: mains (2) write T+1 times each; 2 frontier ops do 2 grants
  // per round.
  EXPECT_GT(res.grants, 0u);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

TEST(ForkJoinLk23, MatchesBlockedReferenceBitwise) {
  const Spec spec = small_spec();
  for (int threads : {1, 2, 4, 8}) {
    const ForkJoinRunResult res = run_forkjoin(spec, threads);
    EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0)
        << threads << " threads";
  }
}

TEST(ForkJoinLk23, BoundVariantIdentical) {
  const Spec spec = small_spec();
  const auto topo = topo::Topology::host();
  const ForkJoinRunResult res = run_forkjoin(spec, 4, &topo);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

TEST(ForkJoinLk23, MoreThreadsThanBlocks) {
  Spec spec;
  spec.n = 32;
  spec.iterations = 3;
  spec.bx = 2;
  spec.by = 1;
  const ForkJoinRunResult res = run_forkjoin(spec, 8);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

TEST(OrwlVsForkJoin, IdenticalFields) {
  const Spec spec = small_spec();
  const auto topo = topo::Topology::host();
  const auto orwl_res = run_orwl(spec, place::Policy::TreeMatch, topo);
  const auto fj_res = run_forkjoin(spec, 4);
  EXPECT_EQ(max_abs_diff(orwl_res.za, fj_res.za), 0.0);
}

TEST(OrwlLk23, SharedPoolControlModeIdentical) {
  const Spec spec = small_spec();
  const auto topo = topo::Topology::host();
  RuntimeOptions opts;
  opts.control = RuntimeOptions::ControlMode::SharedPool;
  opts.shared_control_threads = 3;
  const OrwlRunResult res =
      run_orwl(spec, place::Policy::TreeMatch, topo, opts);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

TEST(OrwlLk23, ForeignTopologyBindingsFailGracefully) {
  // Planning against the paper's 192-core machine on a small host: the
  // cpusets name CPUs that do not exist, bind_current_thread returns
  // false, and the program must still run to the correct result.
  const Spec spec = small_spec();
  const auto paper = topo::Topology::paper_machine();
  const OrwlRunResult res = run_orwl(spec, place::Policy::TreeMatch, paper);
  EXPECT_EQ(max_abs_diff(res.za, blocked_reference(spec)), 0.0);
}

// Parameterized sweep: (n, bx, by, iterations) — both parallel
// implementations must match the blocked reference bit-for-bit on every
// geometry, including degenerate strips.
using GeomParam = std::tuple<long, int, int, int>;
class GeometrySweep : public ::testing::TestWithParam<GeomParam> {};

TEST_P(GeometrySweep, OrwlAndForkJoinMatchReference) {
  const auto [n, bx, by, iters] = GetParam();
  Spec spec;
  spec.n = n;
  spec.bx = bx;
  spec.by = by;
  spec.iterations = iters;
  const auto ref = blocked_reference(spec);
  const auto topo = topo::Topology::host();
  const auto orwl_res = run_orwl(spec, place::Policy::TreeMatch, topo);
  EXPECT_EQ(max_abs_diff(orwl_res.za, ref), 0.0) << "ORWL diverged";
  const auto fj = run_forkjoin(spec, 4);
  EXPECT_EQ(max_abs_diff(fj.za, ref), 0.0) << "fork-join diverged";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeomParam{32, 1, 1, 5}, GeomParam{32, 2, 2, 5},
                      GeomParam{32, 4, 1, 3}, GeomParam{32, 1, 4, 3},
                      GeomParam{64, 8, 8, 2}, GeomParam{48, 3, 2, 4},
                      GeomParam{64, 2, 4, 7}, GeomParam{16, 4, 4, 10}));

TEST(Directions, OppositeIsInvolution) {
  for (int d = 0; d < kDirs; ++d) {
    EXPECT_EQ(opposite(opposite(d)), d);
    const auto [dx, dy] = dir_delta(d);
    const auto [ox, oy] = dir_delta(opposite(d));
    EXPECT_EQ(dx, -ox);
    EXPECT_EQ(dy, -oy);
  }
}

}  // namespace
}  // namespace orwl::lk23
