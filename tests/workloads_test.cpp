// Tests for the workload registry: lookup, per-workload result
// verification on both backends, re-run safety, and the parity between the
// flow matrix the runtime MEASURES and the analytic pattern each workload
// PREDICTS (comm/patterns.*) — the property the measured-matrix feedback
// placement relies on.

#include <gtest/gtest.h>

#include <algorithm>

#include "orwl/backend.h"
#include "support/assert.h"
#include "workloads/workloads.h"

namespace orwl::workloads {
namespace {

/// Small-but-nontrivial scale: a 2x2 block grid for the grid workloads,
/// several rounds so flows and pipelining actually happen.
Params tiny() { return {.tasks = 4, .size = 16, .iterations = 3}; }

TEST(Registry, ListsAtLeastFourWorkloads) {
  EXPECT_GE(registry().size(), 4u);
  const std::vector<std::string> got = names();
  for (const char* expected :
       {"lk23", "stencil2d", "wavefront", "alltoall", "pipeline"}) {
    EXPECT_NE(std::find(got.begin(), got.end(), expected), got.end())
        << "missing workload " << expected;
  }
}

TEST(Registry, FindAndGet) {
  ASSERT_NE(find("stencil2d"), nullptr);
  EXPECT_EQ(find("stencil2d")->name, "stencil2d");
  EXPECT_EQ(find("no-such-workload"), nullptr);
  EXPECT_EQ(get("lk23").name, "lk23");
  try {
    (void)get("no-such-workload");
    FAIL() << "get() on an unknown name did not throw";
  } catch (const ContractError& e) {
    // The error lists the registered names so CLI typos are actionable.
    EXPECT_NE(std::string(e.what()).find("no-such-workload"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("stencil2d"), std::string::npos);
  }
}

TEST(Registry, BuildReportsTaskCountAndPredictedMatrix) {
  for (const Workload& w : registry()) {
    Program p;
    const Built built = w.build(p, tiny());
    EXPECT_EQ(built.num_tasks, p.num_tasks()) << w.name;
    EXPECT_EQ(built.predicted.order(), built.num_tasks) << w.name;
    EXPECT_TRUE(static_cast<bool>(built.verify)) << w.name;
  }
}

TEST(Workloads, VerifyOnRuntimeBackend) {
  for (const Workload& w : registry()) {
    Program p;
    const Built built = w.build(p, tiny());
    RuntimeBackend backend;
    p.run(backend);
    std::string why;
    EXPECT_TRUE(built.verify(backend, why)) << w.name << ": " << why;
  }
}

TEST(Workloads, VerifyOnSimBackendEmulation) {
  for (const Workload& w : registry()) {
    Program p;
    const Built built = w.build(p, tiny());
    SimBackendOptions opts;
    opts.emulate = true;
    const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
    SimBackend backend(topo.clone(), sim::LinkCost::defaults_for(topo), opts);
    const RunReport rep = p.run(backend);
    EXPECT_GT(rep.seconds, 0.0) << w.name;
    std::string why;
    EXPECT_TRUE(built.verify(backend, why)) << w.name << ": " << why;
  }
}

TEST(Workloads, ReRunningTheSameProgramStaysCorrect) {
  // Bodies must reset their captured state on Step::first(): the harness
  // re-runs one Program per repetition.
  for (const Workload& w : registry()) {
    Program p;
    const Built built = w.build(p, tiny());
    RuntimeBackend backend;
    p.run(backend);
    p.run(backend);
    std::string why;
    EXPECT_TRUE(built.verify(backend, why))
        << w.name << " after re-run: " << why;
  }
}

TEST(Workloads, MeasuredFlowsMatchPredictedSupport) {
  for (const Workload& w : registry()) {
    Program p;
    const Built built = w.build(p, tiny());
    RuntimeBackend backend;  // record_flows defaults on
    p.run(backend);
    const comm::CommMatrix measured =
        backend.runtime().measured_comm_matrix();
    ASSERT_EQ(measured.order(), built.predicted.order()) << w.name;
    for (int i = 0; i < measured.order(); ++i) {
      for (int j = i + 1; j < measured.order(); ++j) {
        EXPECT_EQ(measured.at(i, j) > 0.0, built.predicted.at(i, j) > 0.0)
            << w.name << ": tasks (" << i << ", " << j
            << ") measured=" << measured.at(i, j)
            << " predicted=" << built.predicted.at(i, j);
      }
    }
    EXPECT_GT(measured.total_volume(), 0.0) << w.name;
  }
}

// The oversubscription gate (ROADMAP stress tier): tasks far beyond the
// PU count — on the 1-PU CI hosts this is 32 compute + 32 control
// threads convoying on one core — must still verify bit-exactly, bound
// or unbound.
TEST(Workloads, OversubscriptionStressTasksFarBeyondPUs) {
  Program p;
  const Built built = get("oversub").build(
      p, {.tasks = 32, .size = 8, .iterations = 4});
  p.place(place::Policy::Compact);  // wraps all 32 tasks onto the real PUs
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  EXPECT_TRUE(rep.placed);
  std::string why;
  EXPECT_TRUE(built.verify(backend, why)) << why;
}

TEST(Workloads, SingleTaskDegenerateCasesRun) {
  for (const char* name : {"alltoall", "pipeline", "oversub"}) {
    Program p;
    const Built built =
        get(name).build(p, {.tasks = 1, .size = 8, .iterations = 2});
    RuntimeBackend backend;
    p.run(backend);
    std::string why;
    EXPECT_TRUE(built.verify(backend, why)) << name << ": " << why;
  }
}

}  // namespace
}  // namespace orwl::workloads
