// Unit tests for the ORWL FifoQueue: strict insertion order, shared reads,
// exclusive writes, renewal semantics.

#include <gtest/gtest.h>

#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "orwl/queue.h"
#include "support/assert.h"

namespace orwl {
namespace {

class QueueTest : public ::testing::Test {
 protected:
  QueueTest() : sink_([this](Request& r) { granted_.push_back(&r); }),
                queue_(&sink_) {}

  Request make(AccessMode mode) {
    Request r;
    r.mode = mode;
    return r;
  }

  GrantFn<std::function<void(Request&)>> sink_;
  FifoQueue queue_;
  std::vector<Request*> granted_;
};

TEST_F(QueueTest, FirstRequestGrantedImmediately) {
  Request w = make(AccessMode::Write);
  queue_.insert(w);
  EXPECT_EQ(w.state, RequestState::Granted);
  ASSERT_EQ(granted_.size(), 1u);
  EXPECT_EQ(granted_[0], &w);
}

TEST_F(QueueTest, WriteIsExclusive) {
  Request w1 = make(AccessMode::Write);
  Request w2 = make(AccessMode::Write);
  Request r1 = make(AccessMode::Read);
  queue_.insert(w1);
  queue_.insert(w2);
  queue_.insert(r1);
  EXPECT_EQ(w1.state, RequestState::Granted);
  EXPECT_EQ(w2.state, RequestState::Requested);
  EXPECT_EQ(r1.state, RequestState::Requested);
}

TEST_F(QueueTest, ConsecutiveReadsShareTheGrant) {
  Request r1 = make(AccessMode::Read);
  Request r2 = make(AccessMode::Read);
  Request r3 = make(AccessMode::Read);
  queue_.insert(r1);
  queue_.insert(r2);
  queue_.insert(r3);
  EXPECT_EQ(r1.state, RequestState::Granted);
  EXPECT_EQ(r2.state, RequestState::Granted);
  EXPECT_EQ(r3.state, RequestState::Granted);
  EXPECT_EQ(granted_.size(), 3u);
}

TEST_F(QueueTest, ReadRunStopsAtWrite) {
  Request r1 = make(AccessMode::Read);
  Request w = make(AccessMode::Write);
  Request r2 = make(AccessMode::Read);
  queue_.insert(r1);
  queue_.insert(w);
  queue_.insert(r2);
  EXPECT_EQ(r1.state, RequestState::Granted);
  EXPECT_EQ(w.state, RequestState::Requested);
  EXPECT_EQ(r2.state, RequestState::Requested)
      << "a read behind a queued write must wait (strict FIFO order)";
}

TEST_F(QueueTest, ReleaseAdvancesToNextWrite) {
  Request w1 = make(AccessMode::Write);
  Request w2 = make(AccessMode::Write);
  queue_.insert(w1);
  queue_.insert(w2);
  queue_.release(w1);
  EXPECT_EQ(w1.state, RequestState::Inactive);
  EXPECT_EQ(w2.state, RequestState::Granted);
}

TEST_F(QueueTest, WriteWaitsForAllReadersToRelease) {
  Request r1 = make(AccessMode::Read);
  Request r2 = make(AccessMode::Read);
  Request w = make(AccessMode::Write);
  queue_.insert(r1);
  queue_.insert(r2);
  queue_.insert(w);
  queue_.release(r1);
  EXPECT_EQ(w.state, RequestState::Requested);
  queue_.release(r2);
  EXPECT_EQ(w.state, RequestState::Granted);
}

TEST_F(QueueTest, MiddleReaderCanReleaseFirst) {
  Request r1 = make(AccessMode::Read);
  Request r2 = make(AccessMode::Read);
  queue_.insert(r1);
  queue_.insert(r2);
  queue_.release(r2);  // later reader releases before the first
  EXPECT_EQ(r1.state, RequestState::Granted);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(QueueTest, TicketsAreMonotonic) {
  Request a = make(AccessMode::Read);
  Request b = make(AccessMode::Write);
  Request c = make(AccessMode::Read);
  queue_.insert(a);
  queue_.insert(b);
  queue_.insert(c);
  EXPECT_LT(a.ticket, b.ticket);
  EXPECT_LT(b.ticket, c.ticket);
}

TEST_F(QueueTest, ReleaseUngrantedThrows) {
  Request w1 = make(AccessMode::Write);
  Request w2 = make(AccessMode::Write);
  queue_.insert(w1);
  queue_.insert(w2);
  EXPECT_THROW(queue_.release(w2), ContractError);
}

TEST_F(QueueTest, DoubleReleaseThrows) {
  Request w = make(AccessMode::Write);
  queue_.insert(w);
  queue_.release(w);
  EXPECT_THROW(queue_.release(w), ContractError);
}

TEST_F(QueueTest, DoubleInsertThrows) {
  Request w = make(AccessMode::Write);
  queue_.insert(w);
  EXPECT_THROW(queue_.insert(w), ContractError);
}

TEST_F(QueueTest, RenewKeepsCyclicOrder) {
  // Two writers alternating: the renewal must land *behind* the waiting
  // writer, never ahead of it.
  Request a1 = make(AccessMode::Write);
  Request a2 = make(AccessMode::Write);
  Request b1 = make(AccessMode::Write);
  queue_.insert(a1);
  queue_.insert(b1);
  queue_.release_and_renew(a1, a2);
  EXPECT_EQ(b1.state, RequestState::Granted);
  EXPECT_EQ(a2.state, RequestState::Requested);
  Request b2 = make(AccessMode::Write);
  queue_.release_and_renew(b1, b2);
  EXPECT_EQ(a2.state, RequestState::Granted);
  EXPECT_EQ(b2.state, RequestState::Requested);
}

TEST_F(QueueTest, RenewOnEmptyQueueRegrantsImmediately) {
  Request a1 = make(AccessMode::Write);
  Request a2 = make(AccessMode::Write);
  queue_.insert(a1);
  queue_.release_and_renew(a1, a2);
  EXPECT_EQ(a2.state, RequestState::Granted);
}

TEST_F(QueueTest, RenewRequiresGrantedCurrent) {
  Request w1 = make(AccessMode::Write);
  Request w2 = make(AccessMode::Write);
  Request next = make(AccessMode::Write);
  queue_.insert(w1);
  queue_.insert(w2);
  EXPECT_THROW(queue_.release_and_renew(w2, next), ContractError);
}

TEST_F(QueueTest, RenewWithSameRequestThrows) {
  Request w = make(AccessMode::Write);
  queue_.insert(w);
  EXPECT_THROW(queue_.release_and_renew(w, w), ContractError);
}

TEST_F(QueueTest, SnapshotReflectsOrder) {
  Request r = make(AccessMode::Read);
  Request w = make(AccessMode::Write);
  queue_.insert(r);
  queue_.insert(w);
  const auto snap = queue_.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].mode, AccessMode::Read);
  EXPECT_EQ(snap[0].state, RequestState::Granted);
  EXPECT_EQ(snap[1].mode, AccessMode::Write);
  EXPECT_EQ(snap[1].state, RequestState::Requested);
}

TEST_F(QueueTest, WriterReaderAlternationPattern) {
  // The LK23 frontier pattern: writer exports, reader consumes, repeated.
  Request w[4] = {make(AccessMode::Write), make(AccessMode::Write),
                  make(AccessMode::Write), make(AccessMode::Write)};
  Request r[4] = {make(AccessMode::Read), make(AccessMode::Read),
                  make(AccessMode::Read), make(AccessMode::Read)};
  queue_.insert(w[0]);
  queue_.insert(r[0]);
  for (int it = 0; it + 1 < 4; ++it) {
    EXPECT_EQ(w[it].state, RequestState::Granted);
    queue_.release_and_renew(w[it], w[it + 1]);
    EXPECT_EQ(r[it].state, RequestState::Granted);
    queue_.release_and_renew(r[it], r[it + 1]);
  }
  EXPECT_EQ(w[3].state, RequestState::Granted);
}

TEST(Queue, RequiresGrantSink) {
  EXPECT_THROW(FifoQueue(nullptr), ContractError);
}

// ---------------------------------------------------------------------------
// Ticket-ring mechanics: capacity, wraparound, quiescent growth
// ---------------------------------------------------------------------------

TEST_F(QueueTest, RingWrapsAroundManyLaps) {
  // Two alternating writers renewing for several multiples of the default
  // capacity: every ticket re-lands in an already-used ring slot, so a
  // wrong per-slot sequence walk (free -> occupied -> next lap) would
  // grant out of order or deadlock long before the loop ends.
  const int cycles = static_cast<int>(FifoQueue::kDefaultCapacity) * 3 + 7;
  Request a[2] = {make(AccessMode::Write), make(AccessMode::Write)};
  Request b[2] = {make(AccessMode::Write), make(AccessMode::Write)};
  queue_.insert(a[0]);
  queue_.insert(b[0]);
  for (int i = 0; i < cycles; ++i) {
    ASSERT_EQ(a[i % 2].state, RequestState::Granted) << "cycle " << i;
    queue_.release_and_renew(a[i % 2], a[(i + 1) % 2]);
    ASSERT_EQ(b[i % 2].state, RequestState::Granted) << "cycle " << i;
    queue_.release_and_renew(b[i % 2], b[(i + 1) % 2]);
  }
  // The first prime is announced on insert; after that every
  // release_and_renew announces exactly one successor — single
  // announcement across every lap.
  ASSERT_EQ(granted_.size(), 1u + 2u * static_cast<std::size_t>(cycles));
  // Strict a/b alternation held to the end.
  EXPECT_EQ(granted_.back(), &a[cycles % 2]);
  EXPECT_EQ(granted_[granted_.size() - 2], &b[(cycles - 1) % 2]);
  EXPECT_EQ(a[cycles % 2].state, RequestState::Granted);
  EXPECT_EQ(b[cycles % 2].state, RequestState::Requested);
}

TEST_F(QueueTest, ReserveOwnersGrowsPastInFlightBound) {
  EXPECT_EQ(queue_.capacity(), FifoQueue::kDefaultCapacity);
  // 1000 owners x 2 in-flight slots each must fit: the ring may never be
  // full when a renewal needs its slot before the release reclaims one.
  queue_.reserve_owners(1000);
  EXPECT_GE(queue_.capacity(), 2u * 1000u + 2u);
  // Power-of-two capacity (ticket & mask indexing).
  EXPECT_EQ(queue_.capacity() & (queue_.capacity() - 1), 0u);
}

TEST_F(QueueTest, EnsureCapacityRebuildPreservesLiveQueue) {
  Request w1 = make(AccessMode::Write);
  Request w2 = make(AccessMode::Write);
  Request r1 = make(AccessMode::Read);
  queue_.insert(w1);
  queue_.insert(w2);
  queue_.insert(r1);
  const auto before = queue_.snapshot();
  queue_.ensure_capacity(FifoQueue::kDefaultCapacity * 4);
  EXPECT_GE(queue_.capacity(), FifoQueue::kDefaultCapacity * 4);
  // The quiescent rebuild re-seats every live ticket under the new mask:
  // same order, same states, and the protocol continues unharmed.
  const auto after = queue_.snapshot();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].ticket, before[i].ticket);
    EXPECT_EQ(after[i].state, before[i].state);
  }
  queue_.release(w1);
  EXPECT_EQ(w2.state, RequestState::Granted);
  queue_.release(w2);
  EXPECT_EQ(r1.state, RequestState::Granted);
}

TEST_F(QueueTest, EnsureCapacityBelowCurrentIsANoOp) {
  const std::size_t cap = queue_.capacity();
  queue_.ensure_capacity(1);
  EXPECT_EQ(queue_.capacity(), cap);
}

// ---------------------------------------------------------------------------
// Batched shared-read announcement (on_grant_batch)
// ---------------------------------------------------------------------------

/// Sink that records batch boundaries: singles through on_grant, runs
/// through on_grant_batch, and the flattened announcement order of both.
struct BatchRecordingSink final : GrantSink {
  // sink-contract: no-queue-reentry — records the pointer and returns.
  void on_grant(Request& req) override {
    singles.push_back(&req);
    order.push_back(&req);
  }
  // sink-contract: no-queue-reentry — records the run and returns.
  void on_grant_batch(std::span<Request* const> reqs) override {
    batches.emplace_back(reqs.begin(), reqs.end());
    for (Request* r : reqs) order.push_back(r);
  }
  std::vector<Request*> singles;
  std::vector<std::vector<Request*>> batches;
  std::vector<Request*> order;  ///< every grant, in announcement order
};

TEST(QueueBatch, ReaderRunAnnouncedAsOneBatch) {
  BatchRecordingSink sink;
  FifoQueue queue(&sink);
  Request w;
  w.mode = AccessMode::Write;
  Request r[3];
  for (Request& req : r) req.mode = AccessMode::Read;
  queue.insert(w);  // granted alone at the head: a single, never a batch
  for (Request& req : r) queue.insert(req);
  ASSERT_EQ(sink.singles.size(), 1u);
  EXPECT_EQ(sink.singles[0], &w);
  EXPECT_TRUE(sink.batches.empty());

  // Releasing the writer uncovers all three readers in ONE combiner pass:
  // one on_grant_batch call, run in ticket order, all Granted before the
  // sink heard anything.
  queue.release(w);
  ASSERT_EQ(sink.batches.size(), 1u);
  ASSERT_EQ(sink.batches[0].size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.batches[0][static_cast<std::size_t>(i)], &r[i]);
    EXPECT_EQ(r[i].state, RequestState::Granted);
  }
  EXPECT_EQ(sink.singles.size(), 1u) << "no reader announced twice";
}

TEST(QueueBatch, SingleUncoveredReaderStaysUnbatched) {
  BatchRecordingSink sink;
  FifoQueue queue(&sink);
  Request w;
  w.mode = AccessMode::Write;
  Request r;
  r.mode = AccessMode::Read;
  queue.insert(w);
  queue.insert(r);
  queue.release(w);
  // A run of one is announced through plain on_grant — batching must not
  // change the sink-visible shape of the common uncontended case.
  EXPECT_TRUE(sink.batches.empty());
  ASSERT_EQ(sink.singles.size(), 2u);
  EXPECT_EQ(sink.singles[1], &r);
}

/// Drive one mixed scenario (write head, reader run, trailing write,
/// renewals) against a queue; returns the announcement order as tickets.
std::vector<Ticket> run_mixed_scenario(bool batch) {
  BatchRecordingSink sink;
  FifoQueue queue(&sink);
  queue.set_batch_grants(batch);
  Request w1, w2;
  w1.mode = w2.mode = AccessMode::Write;
  Request r[4];
  for (Request& req : r) req.mode = AccessMode::Read;

  queue.insert(w1);
  for (int i = 0; i < 3; ++i) queue.insert(r[i]);
  queue.insert(w2);
  queue.release(w1);                  // uncovers the r[0..2] run
  queue.release_and_renew(r[1], r[3]);  // renewal lands behind w2
  queue.release(r[0]);
  queue.release(r[2]);                // uncovers w2
  queue.release(w2);                  // uncovers r[3] (run of one)
  queue.release(r[3]);

  std::vector<Ticket> tickets;
  tickets.reserve(sink.order.size());
  for (const Request* req : sink.order) tickets.push_back(req->ticket);
  return tickets;
}

/// Sink whose first on_grant_batch throws — models a routing layer failing
/// mid-delivery. The queue's contract: the run is persisted (Granted +
/// announced flags) before the sink hears anything, so a throw must leave
/// nothing behind for a later combiner round to re-announce.
struct ThrowingBatchSink final : GrantSink {
  // sink-contract: no-queue-reentry — records the pointer and returns.
  void on_grant(Request& req) override { order.push_back(&req); }
  // sink-contract: no-queue-reentry — throws or records, never calls back.
  void on_grant_batch(std::span<Request* const> reqs) override {
    if (throws_left > 0) {
      --throws_left;
      throw std::runtime_error("sink failure mid-batch");
    }
    for (Request* r : reqs) order.push_back(r);
  }
  int throws_left = 1;
  std::vector<Request*> order;
};

TEST(QueueBatch, ThrowingBatchSinkLeavesNoStaleRun) {
  ThrowingBatchSink sink;
  FifoQueue queue(&sink);
  Request w;
  w.mode = AccessMode::Write;
  Request r[3];
  for (Request& req : r) req.mode = AccessMode::Read;
  queue.insert(w);  // granted alone through on_grant: does not throw
  for (Request& req : r) queue.insert(req);

  // The batch announcement throws AFTER the run is persisted: every
  // reader is Granted, announcement-flagged (so its release cannot spin
  // forever), and the exception reaches the releaser.
  EXPECT_THROW(queue.release(w), std::runtime_error);
  for (Request& req : r)
    EXPECT_EQ(req.state, RequestState::Granted);

  // Recovery: later combiner rounds must not re-announce the failed run —
  // by now its slots are being reclaimed and may belong to a new lap.
  // Draining the readers and pushing a fresh writer through must announce
  // exactly that writer, nothing from the thrown-away batch.
  for (Request& req : r) queue.release(req);
  Request w2;
  w2.mode = AccessMode::Write;
  queue.insert(w2);
  EXPECT_EQ(w2.state, RequestState::Granted);
  ASSERT_EQ(sink.order.size(), 2u);
  EXPECT_EQ(sink.order[0], &w);
  EXPECT_EQ(sink.order[1], &w2);
  queue.release(w2);
}

TEST(QueueBatch, BatchedGrantsMatchUnbatchedReplay) {
  // The batch path is a delivery optimization, not a policy change: the
  // flattened announcement sequence must be identical with batching on
  // and off (same tickets, same order).
  const std::vector<Ticket> batched = run_mixed_scenario(true);
  const std::vector<Ticket> unbatched = run_mixed_scenario(false);
  EXPECT_EQ(batched, unbatched);
  EXPECT_EQ(batched.size(), 6u);  // w1, r0..r2, w2, r3 — each exactly once
}

TEST(QueueBatch, BatchRunSpansRingWraparound) {
  // Park a writer just below the ring boundary, queue a reader run whose
  // tickets straddle it (slot indices wrap to the ring's start), and
  // release: the run must still arrive as ONE batch in ticket order —
  // the collection loop walks tickets, not raw slot indices.
  BatchRecordingSink sink;
  FifoQueue queue(&sink);
  const std::size_t cap = queue.capacity();
  Request w[2];
  w[0].mode = w[1].mode = AccessMode::Write;
  queue.insert(w[0]);  // ticket 0
  int cur = 0;
  for (std::size_t t = 1; t + 1 < cap; ++t) {  // renew up to ticket cap-2
    queue.release_and_renew(w[cur], w[cur ^ 1]);
    cur ^= 1;
  }
  ASSERT_EQ(w[cur].ticket, cap - 2);
  Request r[4];
  for (Request& req : r) {
    req.mode = AccessMode::Read;
    queue.insert(req);  // tickets cap-1, cap, cap+1, cap+2
  }
  EXPECT_EQ(r[3].ticket, cap + 2);
  sink.batches.clear();
  queue.release(w[cur]);
  ASSERT_EQ(sink.batches.size(), 1u);
  ASSERT_EQ(sink.batches[0].size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.batches[0][static_cast<std::size_t>(i)], &r[i]);
    EXPECT_EQ(r[i].state, RequestState::Granted);
  }
}

}  // namespace
}  // namespace orwl
