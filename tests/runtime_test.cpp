// Integration-level tests for the ORWL Runtime: handles, control threads,
// iterative renewal, instrumentation, comm-matrix extraction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "orwl/runtime.h"
#include "support/assert.h"
#include "sync/adaptive_wait.h"
#include "sync/wait_strategy.h"

namespace orwl {
namespace {

RuntimeOptions direct_mode() {
  RuntimeOptions o;
  o.control = RuntimeOptions::ControlMode::Direct;
  return o;
}

TEST(Runtime, SingleTaskWritesLocation) {
  for (auto mode : {RuntimeOptions::ControlMode::Direct,
                    RuntimeOptions::ControlMode::PerTask,
                    RuntimeOptions::ControlMode::SharedPool}) {
    RuntimeOptions opts;
    opts.control = mode;
    Runtime rt(opts);
    const LocationId loc = rt.add_location(sizeof(int));
    const TaskId t = rt.add_task("writer", [](TaskContext& ctx) {
      Handle& h = ctx.handle(0);
      auto bytes = h.acquire();
      as_span<int>(bytes)[0] = 42;
      h.release();
    });
    const HandleId h = rt.add_handle(t, loc, AccessMode::Write);
    ASSERT_EQ(h, 0);
    rt.run();
    EXPECT_EQ(as_span<int>(rt.location_data(loc))[0], 42);
  }
}

TEST(Runtime, ProducerConsumerOrder) {
  Runtime rt(direct_mode());
  const LocationId loc = rt.add_location(sizeof(int));
  std::atomic<int> observed{-1};
  const TaskId producer = rt.add_task("producer", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    auto bytes = h.acquire();
    as_span<int>(bytes)[0] = 7;
    h.release();
  });
  const TaskId consumer = rt.add_task("consumer", [&](TaskContext& ctx) {
    Handle& h = ctx.handle(1);
    auto bytes = h.acquire();
    observed = as_span<const int>(std::span<const std::byte>(bytes))[0];
    h.release();
  });
  // Registration order: write first => the consumer sees the product.
  rt.add_handle(producer, loc, AccessMode::Write);
  rt.add_handle(consumer, loc, AccessMode::Read);
  rt.run();
  EXPECT_EQ(observed.load(), 7);
}

TEST(Runtime, IterativeCounterRoundRobin) {
  // Two tasks increment a shared counter in strict alternation; the FIFO
  // ordering makes the interleaving deterministic.
  constexpr int kIters = 50;
  Runtime rt(direct_mode());
  const LocationId loc = rt.add_location(sizeof(long));
  std::vector<long> seen_a, seen_b;
  const TaskId a = rt.add_task("a", [&](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    for (int i = 0; i < kIters; ++i) {
      auto bytes = h.acquire();
      long& v = as_span<long>(bytes)[0];
      seen_a.push_back(v);
      v += 1;
      h.release_and_renew();
    }
  });
  const TaskId b = rt.add_task("b", [&](TaskContext& ctx) {
    Handle& h = ctx.handle(1);
    for (int i = 0; i < kIters; ++i) {
      auto bytes = h.acquire();
      long& v = as_span<long>(bytes)[0];
      seen_b.push_back(v);
      v += 1;
      h.release_and_renew();
    }
  });
  rt.add_handle(a, loc, AccessMode::Write);
  rt.add_handle(b, loc, AccessMode::Write);
  rt.run();
  ASSERT_EQ(seen_a.size(), static_cast<std::size_t>(kIters));
  ASSERT_EQ(seen_b.size(), static_cast<std::size_t>(kIters));
  // a sees 0,2,4,...; b sees 1,3,5,... — perfect alternation.
  for (int i = 0; i < kIters; ++i) {
    EXPECT_EQ(seen_a[static_cast<std::size_t>(i)], 2 * i);
    EXPECT_EQ(seen_b[static_cast<std::size_t>(i)], 2 * i + 1);
  }
  EXPECT_EQ(as_span<long>(rt.location_data(loc))[0], 2 * kIters);
}

TEST(Runtime, SharedReadersSeeSameSnapshot) {
  Runtime rt;  // PerTask control threads
  const LocationId loc = rt.add_location(sizeof(int));
  const TaskId w = rt.add_task("w", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    auto bytes = h.acquire();
    as_span<int>(bytes)[0] = 99;
    h.release();
  });
  std::atomic<int> sum{0};
  std::vector<TaskId> readers;
  for (int i = 0; i < 4; ++i) {
    readers.push_back(rt.add_task(
        "r" + std::to_string(i), [&sum, i](TaskContext& ctx) {
          Handle& h = ctx.handle(1 + i);
          auto bytes = h.acquire();
          sum += as_span<const int>(std::span<const std::byte>(bytes))[0];
          h.release();
        }));
  }
  rt.add_handle(w, loc, AccessMode::Write);
  for (int i = 0; i < 4; ++i)
    rt.add_handle(readers[static_cast<std::size_t>(i)], loc,
                  AccessMode::Read);
  rt.run();
  EXPECT_EQ(sum.load(), 4 * 99);
  EXPECT_EQ(rt.stats().read_grants(), 4u);
  EXPECT_EQ(rt.stats().write_grants(), 1u);
}

TEST(Runtime, TaskExceptionPropagates) {
  Runtime rt(direct_mode());
  rt.add_task("boom", [](TaskContext&) {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(rt.run(), std::runtime_error);
}

TEST(Runtime, RunTwiceThrows) {
  Runtime rt(direct_mode());
  rt.add_task("noop", [](TaskContext&) {});
  rt.run();
  EXPECT_THROW(rt.run(), ContractError);
}

TEST(Runtime, RunWithoutTasksThrows) {
  Runtime rt;
  EXPECT_THROW(rt.run(), ContractError);
}

TEST(Runtime, AddAfterRunThrows) {
  Runtime rt(direct_mode());
  rt.add_task("noop", [](TaskContext&) {});
  rt.run();
  EXPECT_THROW(rt.add_location(8), ContractError);
  EXPECT_THROW(rt.add_task("late", [](TaskContext&) {}), ContractError);
}

TEST(Runtime, InvalidIdsRejected) {
  Runtime rt;
  EXPECT_THROW(rt.add_handle(0, 0, AccessMode::Read), ContractError);
  const TaskId t = rt.add_task("t", [](TaskContext&) {});
  EXPECT_THROW(rt.add_handle(t, 5, AccessMode::Read), ContractError);
  EXPECT_THROW(rt.handle(0), ContractError);
  EXPECT_THROW(rt.location_data(0), ContractError);
  EXPECT_THROW(rt.set_compute_binding(9, topo::Bitmap::single(0)),
               ContractError);
}

TEST(Runtime, HandleMisuseThrows) {
  Runtime rt(direct_mode());
  const LocationId loc = rt.add_location(8);
  const TaskId t = rt.add_task("t", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    EXPECT_THROW(h.release(), ContractError);  // release before acquire
    h.acquire();
    EXPECT_THROW(h.acquire(), ContractError);  // double acquire
    h.release();
    EXPECT_THROW(h.release(), ContractError);  // double release
  });
  rt.add_handle(t, loc, AccessMode::Write);
  rt.run();
}

TEST(Runtime, UnprimedHandleNeedsManualRequest) {
  Runtime rt(direct_mode());
  const LocationId loc = rt.add_location(sizeof(int));
  const TaskId t = rt.add_task("t", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    EXPECT_THROW(h.acquire(), ContractError);  // no request yet
    h.request();
    auto bytes = h.acquire();
    as_span<int>(bytes)[0] = 5;
    h.release();
  });
  rt.add_handle(t, loc, AccessMode::Write, /*prime=*/false);
  rt.run();
  EXPECT_EQ(as_span<int>(rt.location_data(loc))[0], 5);
}

TEST(Runtime, StaticCommMatrixFromRegistrations) {
  Runtime rt;
  const LocationId big = rt.add_location(1000);
  const LocationId small = rt.add_location(10);
  const TaskId t0 = rt.add_task("t0", [](TaskContext&) {});
  const TaskId t1 = rt.add_task("t1", [](TaskContext&) {});
  const TaskId t2 = rt.add_task("t2", [](TaskContext&) {});
  rt.add_handle(t0, big, AccessMode::Write, false);
  rt.add_handle(t1, big, AccessMode::Read, false);
  rt.add_handle(t1, small, AccessMode::Write, false);
  rt.add_handle(t2, small, AccessMode::Read, false);
  const comm::CommMatrix m = rt.static_comm_matrix();
  EXPECT_EQ(m.order(), 3);
  EXPECT_EQ(m.at(t0, t1), 1000.0);
  EXPECT_EQ(m.at(t1, t2), 10.0);
  EXPECT_EQ(m.at(t0, t2), 0.0);
}

TEST(Runtime, StaticCommMatrixWriterPairs) {
  Runtime rt;
  const LocationId loc = rt.add_location(64);
  const TaskId t0 = rt.add_task("t0", [](TaskContext&) {});
  const TaskId t1 = rt.add_task("t1", [](TaskContext&) {});
  rt.add_handle(t0, loc, AccessMode::Write, false);
  rt.add_handle(t1, loc, AccessMode::Write, false);
  const comm::CommMatrix m = rt.static_comm_matrix();
  EXPECT_EQ(m.at(t0, t1), 64.0) << "co-writers exchange the buffer";
}

TEST(Runtime, MeasuredFlowsTrackProducerConsumer) {
  Runtime rt(direct_mode());
  const LocationId loc = rt.add_location(256);
  const TaskId w = rt.add_task("w", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    h.acquire();
    h.release();
  });
  const TaskId r = rt.add_task("r", [](TaskContext& ctx) {
    Handle& h = ctx.handle(1);
    h.acquire();
    h.release();
  });
  rt.add_handle(w, loc, AccessMode::Write);
  rt.add_handle(r, loc, AccessMode::Read);
  rt.run();
  const comm::CommMatrix flows = rt.measured_comm_matrix();
  EXPECT_EQ(flows.at(w, r), 256.0);
}

TEST(Runtime, SharedPoolValidation) {
  RuntimeOptions opts;
  opts.control = RuntimeOptions::ControlMode::SharedPool;
  opts.shared_control_threads = 0;
  EXPECT_THROW(Runtime bad(opts), ContractError);

  opts.shared_control_threads = 2;
  Runtime rt(opts);
  EXPECT_NO_THROW(
      rt.set_shared_control_binding(0, topo::Bitmap::single(0)));
  EXPECT_THROW(rt.set_shared_control_binding(2, topo::Bitmap::single(0)),
               ContractError);

  Runtime per_task;  // default PerTask: shared bindings rejected
  EXPECT_THROW(
      per_task.set_shared_control_binding(0, topo::Bitmap::single(0)),
      ContractError);
}

TEST(Runtime, SharedPoolDeliversAllGrants) {
  RuntimeOptions opts;
  opts.control = RuntimeOptions::ControlMode::SharedPool;
  opts.shared_control_threads = 2;
  Runtime rt(opts);
  rt.set_shared_control_binding(0, topo::Bitmap::single(0));
  const LocationId loc = rt.add_location(sizeof(long));
  for (int i = 0; i < 5; ++i) {
    rt.add_task("t" + std::to_string(i), [i](TaskContext& ctx) {
      Handle& h = ctx.handle(i);
      for (int round = 0; round < 20; ++round) {
        auto bytes = h.acquire();
        as_span<long>(bytes)[0] += 1;
        if (round == 19)
          h.release();
        else
          h.release_and_renew();
      }
    });
  }
  for (int i = 0; i < 5; ++i) rt.add_handle(i, loc, AccessMode::Write);
  rt.run();
  EXPECT_EQ(as_span<long>(rt.location_data(loc))[0], 100);
}

TEST(Runtime, BindingsAccepted) {
  // Binding to the first online CPU must not break execution.
  Runtime rt;
  const LocationId loc = rt.add_location(sizeof(int));
  const TaskId t = rt.add_task("bound", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    auto bytes = h.acquire();
    as_span<int>(bytes)[0] = 1;
    h.release();
  });
  rt.add_handle(t, loc, AccessMode::Write);
  rt.set_compute_binding(t, topo::Bitmap::single(0));
  rt.set_control_binding(t, topo::Bitmap::single(0));
  rt.run();
  EXPECT_EQ(as_span<int>(rt.location_data(loc))[0], 1);
}

TEST(Runtime, ManyTasksManyLocationsRing) {
  // Token ring: task i reads location i and writes location (i+1) % n.
  constexpr int kTasks = 8;
  constexpr int kRounds = 10;
  Runtime rt;  // PerTask control threads exercise the event path
  std::vector<LocationId> locs;
  for (int i = 0; i < kTasks; ++i)
    locs.push_back(rt.add_location(sizeof(long)));
  for (int i = 0; i < kTasks; ++i) {
    rt.add_task("ring" + std::to_string(i), [i](TaskContext& ctx) {
      Handle& rd = ctx.handle(2 * i);
      Handle& wr = ctx.handle(2 * i + 1);
      for (int round = 0; round < kRounds; ++round) {
        const bool last = round + 1 == kRounds;
        long v;
        {
          auto bytes = rd.acquire();
          v = as_span<const long>(std::span<const std::byte>(bytes))[0];
          if (last)
            rd.release();
          else
            rd.release_and_renew();
        }
        auto bytes = wr.acquire();
        as_span<long>(bytes)[0] = v + 1;
        if (last)
          wr.release();
        else
          wr.release_and_renew();
      }
    });
  }
  // Canonical order: task i's read on loc i, then write on loc i+1. The
  // writes are what the *next* round's reads consume.
  for (int i = 0; i < kTasks; ++i) {
    rt.add_handle(i, locs[static_cast<std::size_t>(i)], AccessMode::Read);
    rt.add_handle(i, locs[static_cast<std::size_t>((i + 1) % kTasks)],
                  AccessMode::Write);
  }
  rt.run();
  // Each location was written kRounds times with (read value + 1); the ring
  // converges to a consistent wavefront — just verify no deadlock happened
  // and grant counts match: kTasks * kRounds reads + same writes.
  EXPECT_EQ(rt.stats().read_grants(),
            static_cast<std::uint64_t>(kTasks * kRounds));
  EXPECT_EQ(rt.stats().write_grants(),
            static_cast<std::uint64_t>(kTasks * kRounds));
}

// Two writers alternating on one location through control threads; returns
// the interleaving each task observed so deliveries routed inline (idle
// backlog short-cut) and deliveries routed through the control thread can
// be compared for semantic equality.
std::pair<std::vector<long>, std::vector<long>> run_alternation(
    RuntimeOptions opts, int iters) {
  opts.control = RuntimeOptions::ControlMode::PerTask;
  Runtime rt(opts);
  const LocationId loc = rt.add_location(sizeof(long));
  std::vector<long> seen_a, seen_b;
  auto body = [&](std::vector<long>& seen, HandleId handle_id) {
    return [&seen, handle_id, iters](TaskContext& ctx) {
      Handle& h = ctx.handle(handle_id);
      for (int i = 0; i < iters; ++i) {
        auto bytes = h.acquire();
        long& v = as_span<long>(bytes)[0];
        seen.push_back(v);
        v += 1;
        h.release_and_renew();
      }
    };
  };
  const TaskId a = rt.add_task("a", body(seen_a, 0));
  const TaskId b = rt.add_task("b", body(seen_b, 1));
  rt.add_handle(a, loc, AccessMode::Write);
  rt.add_handle(b, loc, AccessMode::Write);
  rt.run();
  return {std::move(seen_a), std::move(seen_b)};
}

TEST(Runtime, InlineIdleDeliveryMatchesQueuedDelivery) {
  // The idle-backlog short-cut (deliver the grant inline instead of
  // hopping through the control thread) must be invisible to the
  // protocol: same strict alternation, same values, with the flag on
  // (default) and off.
  constexpr int kIters = 200;
  RuntimeOptions queued;
  queued.inline_idle_delivery = false;
  RuntimeOptions inline_idle;
  inline_idle.inline_idle_delivery = true;
  const auto [qa, qb] = run_alternation(queued, kIters);
  const auto [ia, ib] = run_alternation(inline_idle, kIters);
  EXPECT_EQ(qa, ia);
  EXPECT_EQ(qb, ib);
  for (int i = 0; i < kIters; ++i) {
    EXPECT_EQ(ia[static_cast<std::size_t>(i)], 2 * i);
    EXPECT_EQ(ib[static_cast<std::size_t>(i)], 2 * i + 1);
  }
}

TEST(Runtime, AutoWaitBudgetRetunedAtEpochBoundaries) {
  // spin_then_park(auto): each handle gets an AdaptiveWaitBudget fed from
  // its wait-rounds histogram at every epoch boundary, exported as the
  // orwl.spin_budget gauge. Alternating writers always wait on each
  // other, so every epoch window has samples and the retune must leave
  // the budget inside [kMinSpins, kMaxSpins].
  constexpr int kIters = 40;
  RuntimeOptions opts;
  opts.control = RuntimeOptions::ControlMode::Direct;
  opts.wait = sync::WaitStrategy::spin_then_park_auto();
  Runtime rt(opts);
  const LocationId loc = rt.add_location(sizeof(long));
  int boundaries = 0;
  rt.set_epoch_hook(4, [&](int, int) { ++boundaries; });
  auto body = [&](HandleId handle_id) {
    return [&, handle_id](TaskContext& ctx) {
      Handle& h = ctx.handle(handle_id);
      for (int i = 0; i < kIters; ++i) {
        // Same boundary rendezvous the backends emit: between iterations,
        // every epoch_length rounds.
        if (i > 0 && i % rt.epoch_length() == 0)
          rt.epoch_arrive(ctx.id(), i);
        auto bytes = h.acquire();
        as_span<long>(bytes)[0] += 1;
        h.release_and_renew();
      }
    };
  };
  const TaskId a = rt.add_task("a", body(0));
  const TaskId b = rt.add_task("b", body(1));
  rt.add_handle(a, loc, AccessMode::Write);
  rt.add_handle(b, loc, AccessMode::Write);
  rt.run();
  EXPECT_GT(boundaries, 0);
  for (const char* gauge : {"orwl.spin_budget/h0", "orwl.spin_budget/h1"}) {
    const std::int64_t budget = rt.metrics().gauge(gauge).read();
    EXPECT_GE(budget, sync::AdaptiveWaitBudget::kMinSpins) << gauge;
    EXPECT_LE(budget, sync::AdaptiveWaitBudget::kMaxSpins) << gauge;
  }
  // The waits were recorded: the histograms driving the retune are live.
  EXPECT_GT(rt.metrics().histogram("orwl.wait_rounds/h0").snapshot().count,
            0u);
}

}  // namespace
}  // namespace orwl
