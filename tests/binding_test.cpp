// Tests for thread binding. These adapt to the machine they run on: they
// bind to CPUs that exist and verify via sched_getaffinity.

#include <gtest/gtest.h>

#include <thread>

#include "support/assert.h"
#include "topo/binding.h"

namespace orwl::topo {
namespace {

TEST(Binding, EmptyCpusetRejected) {
  EXPECT_THROW(bind_current_thread(Bitmap{}), ContractError);
}

TEST(Binding, QueryReturnsNonEmpty) {
  const auto mask = current_thread_binding();
#ifdef __linux__
  ASSERT_TRUE(mask.has_value());
  EXPECT_GT(mask->count(), 0);
#endif
}

#ifdef __linux__
TEST(Binding, BindToFirstAllowedCpu) {
  const auto before = current_thread_binding();
  ASSERT_TRUE(before.has_value());
  const int cpu = before->first();
  std::thread worker([&] {
    EXPECT_TRUE(bind_current_thread(Bitmap::single(cpu)));
    const auto now = current_thread_binding();
    ASSERT_TRUE(now.has_value());
    EXPECT_EQ(now->count(), 1);
    EXPECT_TRUE(now->test(cpu));
  });
  worker.join();
}

TEST(Binding, NonexistentCpuFailsGracefully) {
  std::thread worker([] {
    const auto before = current_thread_binding();
    // CPU 4090 will not exist in this environment.
    EXPECT_FALSE(bind_current_thread(Bitmap::single(4090)));
    const auto after = current_thread_binding();
    ASSERT_TRUE(before.has_value());
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*before, *after) << "failed bind must not change the mask";
  });
  worker.join();
}

TEST(Binding, ScopedBindingRestores) {
  std::thread worker([] {
    const auto before = current_thread_binding();
    ASSERT_TRUE(before.has_value());
    const int cpu = before->first();
    {
      ScopedBinding guard(Bitmap::single(cpu));
      EXPECT_TRUE(guard.bound());
      const auto inside = current_thread_binding();
      EXPECT_EQ(inside->count(), 1);
    }
    const auto after = current_thread_binding();
    EXPECT_EQ(*before, *after);
  });
  worker.join();
}

TEST(Binding, ScopedBindingFailedIsNoop) {
  std::thread worker([] {
    const auto before = current_thread_binding();
    {
      ScopedBinding guard(Bitmap::single(4090));
      EXPECT_FALSE(guard.bound());
    }
    const auto after = current_thread_binding();
    EXPECT_EQ(*before, *after);
  });
  worker.join();
}
#endif

// ---------------------------------------------------------------------------
// current_node_id: cached NUMA node of the calling thread + the test seam
// ---------------------------------------------------------------------------

TEST(NodeId, ReportsANonNegativeNode) {
  // Whatever the platform, the fallback contract is "0 when unknown" —
  // never a negative surprise on the combiner's hot path.
  EXPECT_GE(current_node_id(), 0);
  // Cached: the second read must agree while the thread has not moved its
  // affinity through our API.
  EXPECT_EQ(current_node_id(), current_node_id());
}

TEST(NodeId, ScopedOverrideAppliesAndNests) {
  const int real = current_node_id();
  {
    ScopedNodeId outer(7);
    EXPECT_EQ(current_node_id(), 7);
    {
      ScopedNodeId inner(3);
      EXPECT_EQ(current_node_id(), 3);
    }
    EXPECT_EQ(current_node_id(), 7) << "inner scope must restore the outer";
  }
  EXPECT_EQ(current_node_id(), real);
}

TEST(NodeId, OverrideIsPerThread) {
  // An override value no real machine reaches, so the check cannot be
  // confused by the worker's genuine node id.
  ScopedNodeId here(123456);
  int other = -1;
  std::thread worker([&] { other = current_node_id(); });
  worker.join();
  EXPECT_EQ(current_node_id(), 123456);
  EXPECT_GE(other, 0) << "another thread must not see this thread's override";
  EXPECT_NE(other, 123456);
}

TEST(NodeId, InvalidateForcesRequery) {
  const int before = current_node_id();
  invalidate_current_node_id();
  // The re-query may land on a different node (the OS can migrate us),
  // but it must stay within the valid contract.
  EXPECT_GE(current_node_id(), 0);
  (void)before;
}

}  // namespace
}  // namespace orwl::topo
