// Tests for thread binding. These adapt to the machine they run on: they
// bind to CPUs that exist and verify via sched_getaffinity.

#include <gtest/gtest.h>

#include <thread>

#include "support/assert.h"
#include "topo/binding.h"

namespace orwl::topo {
namespace {

TEST(Binding, EmptyCpusetRejected) {
  EXPECT_THROW(bind_current_thread(Bitmap{}), ContractError);
}

TEST(Binding, QueryReturnsNonEmpty) {
  const auto mask = current_thread_binding();
#ifdef __linux__
  ASSERT_TRUE(mask.has_value());
  EXPECT_GT(mask->count(), 0);
#endif
}

#ifdef __linux__
TEST(Binding, BindToFirstAllowedCpu) {
  const auto before = current_thread_binding();
  ASSERT_TRUE(before.has_value());
  const int cpu = before->first();
  std::thread worker([&] {
    EXPECT_TRUE(bind_current_thread(Bitmap::single(cpu)));
    const auto now = current_thread_binding();
    ASSERT_TRUE(now.has_value());
    EXPECT_EQ(now->count(), 1);
    EXPECT_TRUE(now->test(cpu));
  });
  worker.join();
}

TEST(Binding, NonexistentCpuFailsGracefully) {
  std::thread worker([] {
    const auto before = current_thread_binding();
    // CPU 4090 will not exist in this environment.
    EXPECT_FALSE(bind_current_thread(Bitmap::single(4090)));
    const auto after = current_thread_binding();
    ASSERT_TRUE(before.has_value());
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*before, *after) << "failed bind must not change the mask";
  });
  worker.join();
}

TEST(Binding, ScopedBindingRestores) {
  std::thread worker([] {
    const auto before = current_thread_binding();
    ASSERT_TRUE(before.has_value());
    const int cpu = before->first();
    {
      ScopedBinding guard(Bitmap::single(cpu));
      EXPECT_TRUE(guard.bound());
      const auto inside = current_thread_binding();
      EXPECT_EQ(inside->count(), 1);
    }
    const auto after = current_thread_binding();
    EXPECT_EQ(*before, *after);
  });
  worker.join();
}

TEST(Binding, ScopedBindingFailedIsNoop) {
  std::thread worker([] {
    const auto before = current_thread_binding();
    {
      ScopedBinding guard(Bitmap::single(4090));
      EXPECT_FALSE(guard.bound());
    }
    const auto after = current_thread_binding();
    EXPECT_EQ(*before, *after);
  });
  worker.join();
}
#endif

}  // namespace
}  // namespace orwl::topo
