// Backend parity: one Program definition, executed by RuntimeBackend and
// by SimBackend (emulation mode), must produce identical data — and the
// LK23 shared definition must reproduce both the blocked sequential
// reference (native path) and the legacy analytic Figure-1 model (sim
// path).

#include <gtest/gtest.h>

#include <vector>

#include "lk23/kernel.h"
#include "lk23/lk23_program.h"
#include "lk23/orwl_impl.h"
#include "orwl/backend.h"
#include "orwl/program.h"
#include "sim/lk23_model.h"

namespace orwl {
namespace {

// The quickstart ring, defined once and handed to any backend.
struct Ring {
  std::vector<Location<long>> stages;
};

Ring define_ring(Program& p, int stages, int rounds) {
  Ring ring;
  for (int i = 0; i < stages; ++i)
    ring.stages.push_back(p.location<long>(1, "stage" + std::to_string(i)));
  for (int i = 0; i < stages; ++i) {
    const Location<long> in = ring.stages[static_cast<std::size_t>(i)];
    const Location<long> out =
        ring.stages[static_cast<std::size_t>((i + 1) % stages)];
    p.task("stage" + std::to_string(i))
        .reads(in)
        .writes(out)
        .iterations(rounds)
        .cost(1.0, static_cast<double>(sizeof(long)))
        .body([in, out](Step& s) {
          const long v =
              s.read(in, [](std::span<const long> x) { return x[0]; });
          s.write(out, [v](std::span<long> x) { x[0] = v + 1; });
        });
  }
  return ring;
}

TEST(BackendParity, RingProducesIdenticalResultsOnBothBackends) {
  constexpr int kStages = 4;
  constexpr int kRounds = 10;

  Program p;
  const Ring ring = define_ring(p, kStages, kRounds);
  p.place(place::Policy::TreeMatch);

  RuntimeBackend real;
  const RunReport real_rep = p.run(real);

  SimBackendOptions so;
  so.emulate = true;
  SimBackend sim(topo::Topology::paper_machine(),
                 sim::LinkCost::defaults_for(topo::Topology::paper_machine()),
                 so);
  const RunReport sim_rep = p.run(sim);

  for (const Location<long>& loc : ring.stages)
    EXPECT_EQ(real.fetch(loc), sim.fetch(loc))
        << "location " << loc.id() << " diverged between backends";

  // Both backends account one grant per declared access per iteration.
  EXPECT_EQ(real_rep.grants, sim_rep.grants);

  // The prediction is a real, positive duration with the sync component of
  // the ORWL events model.
  EXPECT_GT(sim_rep.seconds, 0.0);
  EXPECT_EQ(sim_rep.backend, "sim");
  EXPECT_EQ(real_rep.backend, "runtime");
  EXPECT_TRUE(sim_rep.placed);
  EXPECT_TRUE(real_rep.placed);
}

TEST(BackendParity, SimWithoutEmulationRefusesFetch) {
  Program p;
  const Ring ring = define_ring(p, 2, 2);
  SimBackend sim(topo::Topology::flat(4));
  p.run(sim);
  EXPECT_THROW(sim.fetch(ring.stages[0]), ContractError);
}

TEST(BackendParity, Lk23ProgramMatchesBlockedReference) {
  lk23::Spec spec;
  spec.n = 64;
  spec.iterations = 4;
  spec.bx = 2;
  spec.by = 2;

  RuntimeBackend be;
  lk23::ProgramDef def;
  lk23::run_lk23_program(spec, place::Policy::TreeMatch, be, &def);
  const std::vector<double> za = lk23::fetch_field(be, def);
  const std::vector<double> ref = lk23::blocked_reference(spec);
  EXPECT_EQ(lk23::max_abs_diff(za, ref), 0.0)
      << "Program-defined LK23 must be bit-identical to the reference";
  EXPECT_EQ(def.num_tasks, 4 + 4 * 8);
}

TEST(BackendParity, Lk23ProgramMatchesLegacyOrwlRuntime) {
  lk23::Spec spec;
  spec.n = 48;
  spec.iterations = 3;
  spec.bx = 3;
  spec.by = 1;

  const auto topo = topo::Topology::host();
  const lk23::OrwlRunResult legacy =
      lk23::run_orwl(spec, place::Policy::None, topo);

  RuntimeBackend be;
  lk23::ProgramDef def;
  const RunReport rep =
      lk23::run_lk23_program(spec, place::Policy::None, be, &def);
  const std::vector<double> za = lk23::fetch_field(be, def);

  EXPECT_EQ(lk23::max_abs_diff(za, legacy.za), 0.0);
  EXPECT_EQ(def.num_tasks, legacy.num_tasks);

  // Exactly one grant per acquisition — unlike the legacy bodies, which
  // renew even on their final iteration and leave dangling granted
  // requests behind (legacy.grants counts those too). Mains acquire their
  // block every round (T+1) plus each halo read T times; each of the 8
  // frontier ops per block acquires twice per round for T rounds.
  const int B = spec.bx * spec.by;
  std::uint64_t expected = 0;
  for (int b = 0; b < B; ++b) {
    int neighbours = 0;
    for (int d = 0; d < lk23::kDirs; ++d) {
      const auto [dx, dy] = lk23::dir_delta(d);
      const int nx = b % spec.bx + dx;
      const int ny = b / spec.bx + dy;
      if (nx >= 0 && ny >= 0 && nx < spec.bx && ny < spec.by) ++neighbours;
    }
    expected += static_cast<std::uint64_t>(spec.iterations + 1) +
                static_cast<std::uint64_t>(spec.iterations) *
                    static_cast<std::uint64_t>(neighbours);
  }
  expected += static_cast<std::uint64_t>(B) * 8u * 2u *
              static_cast<std::uint64_t>(spec.iterations);
  EXPECT_EQ(rep.grants, expected);
  EXPECT_LE(rep.grants, legacy.grants);

  // Identical static communication matrices: the declaration carries the
  // same sharing structure the runtime derives from its handles.
  Program p;
  lk23::define_lk23_program(p, spec);
  const comm::CommMatrix ours = p.static_comm_matrix();
  ASSERT_EQ(ours.order(), legacy.static_matrix.order());
  for (int i = 0; i < ours.order(); ++i)
    for (int j = 0; j < ours.order(); ++j)
      EXPECT_EQ(ours.at(i, j), legacy.static_matrix.at(i, j));
}

TEST(BackendParity, Lk23SimTracksLegacyFigureOneModel) {
  // The generic Program→workload derivation must land within a few percent
  // of the hand-built Figure-1 model (the only systematic difference is
  // the +1 initialization round the real program performs).
  const auto topo = topo::Topology::paper_machine();
  const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);

  sim::Lk23SimSpec sim_spec;
  sim_spec.matrix_n = 1536;
  sim_spec.iterations = 50;
  sim_spec.tasks = 16;

  lk23::Spec spec;
  spec.n = sim_spec.matrix_n;
  spec.iterations = sim_spec.iterations;
  const auto [bx, by] = sim::block_grid(sim_spec.tasks);
  spec.bx = bx;
  spec.by = by;

  for (const place::Policy policy :
       {place::Policy::None, place::Policy::TreeMatch}) {
    const auto legacy_impl = policy == place::Policy::None
                                 ? sim::Lk23Impl::OrwlNoBind
                                 : sim::Lk23Impl::OrwlBind;
    const double legacy =
        sim::simulate_lk23(legacy_impl, topo, cost, sim_spec).total_seconds;

    SimBackend be(topo.clone(), cost);
    const RunReport rep = lk23::run_lk23_program(spec, policy, be);
    ASSERT_GT(legacy, 0.0);
    const double expected_scale =
        static_cast<double>(sim_spec.iterations + 1) / sim_spec.iterations;
    EXPECT_NEAR(rep.seconds / legacy, expected_scale, 0.05)
        << "policy " << place::to_string(policy);
  }
}

}  // namespace
}  // namespace orwl
