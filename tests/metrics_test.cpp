// Unit tests for locality metrics (hop-bytes, weighted cost, locality
// fraction, mapping validation).

#include <gtest/gtest.h>

#include "comm/metrics.h"
#include "support/assert.h"
#include "topo/topology.h"

namespace orwl::comm {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : topo_(topo::Topology::synthetic("pack:2 core:2 pu:1")) {}
  topo::Topology topo_;  // 4 PUs: {0,1} in pack0, {2,3} in pack1
};

TEST_F(MetricsTest, HopBytesZeroWhenColocatedPairsOnly) {
  CommMatrix m(2);
  m.set(0, 1, 10.0);
  // Same PU is impossible for distinct threads (1 thread per PU here);
  // neighbouring PUs in one pack give hops = 4.
  EXPECT_EQ(hop_bytes(topo_, m, {0, 1}), 40.0);
}

TEST_F(MetricsTest, HopBytesScalesWithDistance) {
  CommMatrix m(2);
  m.set(0, 1, 10.0);
  const double near = hop_bytes(topo_, m, {0, 1});   // same pack
  const double far = hop_bytes(topo_, m, {0, 2});    // cross pack
  EXPECT_LT(near, far);
  EXPECT_EQ(far, 60.0);  // 6 hops * 10 bytes
}

TEST_F(MetricsTest, UnmappedThreadsSkipped) {
  CommMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(0, 2, 99.0);
  EXPECT_EQ(hop_bytes(topo_, m, {0, 1, -1}), 40.0);
}

TEST_F(MetricsTest, WeightedCostUsesLevelTable) {
  CommMatrix m(2);
  m.set(0, 1, 2.0);
  // level_cost indexed by dca depth: machine=10, pack=3, core=1, pu=0.
  const std::vector<double> cost{10.0, 3.0, 1.0, 0.0};
  EXPECT_EQ(weighted_cost(topo_, m, {0, 1}, cost), 2.0 * 3.0);
  EXPECT_EQ(weighted_cost(topo_, m, {0, 2}, cost), 2.0 * 10.0);
}

TEST_F(MetricsTest, WeightedCostRejectsShortTable) {
  CommMatrix m(2);
  m.set(0, 1, 1.0);
  EXPECT_THROW(weighted_cost(topo_, m, {0, 1}, {1.0}), ContractError);
}

TEST_F(MetricsTest, LocalityFraction) {
  CommMatrix m(3);
  m.set(0, 1, 30.0);  // same pack when mapped 0,1
  m.set(0, 2, 10.0);  // cross pack when mapped 0,2
  const Mapping map{0, 1, 2};
  // Fraction of volume kept within a package (dca depth >= 1).
  EXPECT_DOUBLE_EQ(locality_fraction(topo_, m, map, 1), 0.75);
  // Everything is within the machine.
  EXPECT_DOUBLE_EQ(locality_fraction(topo_, m, map, 0), 1.0);
}

TEST_F(MetricsTest, LocalityFractionEmptyMatrixIsOne) {
  CommMatrix m(2);
  EXPECT_DOUBLE_EQ(locality_fraction(topo_, m, {0, 1}, 1), 1.0);
}

TEST_F(MetricsTest, ValidateAcceptsPartialMapping) {
  EXPECT_NO_THROW(validate_mapping(topo_, {0, -1, 3}));
}

TEST_F(MetricsTest, ValidateRejectsOutOfRangePu) {
  EXPECT_THROW(validate_mapping(topo_, {0, 4}), ContractError);
}

TEST_F(MetricsTest, ValidateRejectsOversubscription) {
  EXPECT_THROW(validate_mapping(topo_, {2, 2}), ContractError);
  EXPECT_NO_THROW(validate_mapping(topo_, {2, 2}, 2));
}

TEST_F(MetricsTest, MappingShorterThanMatrixRejected) {
  CommMatrix m(3);
  EXPECT_THROW(hop_bytes(topo_, m, {0, 1}), ContractError);
}

}  // namespace
}  // namespace orwl::comm
