// Tests for the benchmark harness: median/MAD statistics on known
// samples, JSON writer correctness, the end-to-end case driver on the sim
// backend, the BENCH_*.json schema, and the paper's acceptance property —
// TreeMatch fed the MEASURED matrix is no slower than unplaced execution
// on the simulated paper machine, for every registered workload.

#include <gtest/gtest.h>

#include <sstream>

#include "harness/bench.h"
#include "harness/json.h"
#include "harness/stats.h"
#include "support/assert.h"
#include "workloads/workloads.h"

namespace orwl::harness {
namespace {

TEST(Stats, MedianOfKnownSamples) {
  EXPECT_EQ(median_of({}), 0.0);
  EXPECT_EQ(median_of({7.0}), 7.0);
  EXPECT_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_EQ(median_of({1.0, 100.0, 2.0, 3.0, 4.0}), 3.0);
}

TEST(Stats, SummarizeKnownSamples) {
  // The outlier (100) must not drag median/MAD, unlike mean.
  const Stats s = summarize({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_EQ(s.samples, 5);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.mad, 1.0);  // |dev| = {2,1,0,1,97} -> median 1
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
}

TEST(Stats, SummarizeEmptyIsAllZero) {
  const Stats s = summarize({});
  EXPECT_EQ(s.samples, 0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.mad, 0.0);
}

TEST(Json, WritesNestedStructures) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.begin_object();
    json.member("name", "bench \"quoted\"");
    json.member("count", 3);
    json.member("ok", true);
    json.begin_array("values");
    json.element(1.5);
    json.element(std::string("two"));
    json.end_array();
    json.begin_object("nested");
    json.null_member("nothing");
    json.end_object();
    json.end_object();
  }
  const std::string got = os.str();
  EXPECT_NE(got.find("\"name\": \"bench \\\"quoted\\\"\""), std::string::npos)
      << got;
  EXPECT_NE(got.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(got.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(got.find("\"nothing\": null"), std::string::npos);
  EXPECT_EQ(got.front(), '{');
  EXPECT_EQ(got.back(), '}');
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\nb\t\"c\"\\"), "a\\nb\\t\\\"c\\\"\\\\");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

/// Structural JSON sanity: braces/brackets balance outside of strings and
/// there are no trailing commas — enough to catch writer bugs without a
/// full parser.
void expect_balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  char prev_significant = 0;
  for (const char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') { in_string = true; prev_significant = c; continue; }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      EXPECT_NE(prev_significant, ',') << "trailing comma in:\n" << s;
      --depth;
      EXPECT_GE(depth, 0);
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev_significant = c;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0) << "unbalanced JSON:\n" << s;
}

CaseSpec tiny_case(const std::string& workload) {
  CaseSpec spec;
  spec.workload = workload;
  spec.params = {.tasks = 4, .size = 16, .iterations = 3};
  spec.backend = "sim";
  spec.topo_spec = "pack:2 core:2 pu:1";
  spec.warmup = 0;
  spec.repetitions = 2;
  return spec;
}

TEST(Harness, RunCaseOnSimBackendVerifies) {
  CaseSpec spec = tiny_case("stencil2d");
  spec.policy = place::Policy::Compact;
  const CaseResult res = run_case(spec);
  EXPECT_EQ(res.num_tasks, 4);
  EXPECT_EQ(res.time.samples, 2);
  EXPECT_GT(res.time.median, 0.0);
  EXPECT_GT(res.grants, 0u);
  EXPECT_TRUE(res.placed);
  EXPECT_TRUE(res.verify_ran);
  EXPECT_TRUE(res.verified) << res.verify_error;
  EXPECT_FALSE(res.feedback.ran);
}

TEST(Harness, UnknownNamesThrow) {
  CaseSpec spec = tiny_case("stencil2d");
  spec.workload = "no-such-workload";
  EXPECT_THROW((void)run_case(spec), ContractError);
  spec = tiny_case("stencil2d");
  spec.backend = "gpu";
  EXPECT_THROW((void)run_case(spec), ContractError);
}

TEST(Harness, SweepCoversThePolicyBackendGrid) {
  CaseSpec base = tiny_case("pipeline");
  base.verify = false;
  const std::vector<CaseResult> results = run_sweep(
      base, {place::Policy::None, place::Policy::Compact}, {"sim"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].spec.policy, place::Policy::None);
  EXPECT_EQ(results[1].spec.policy, place::Policy::Compact);
  // `placed` records that a policy ran — Policy::None runs too (and
  // produces an all-unbound plan).
  EXPECT_TRUE(results[0].placed);
  EXPECT_TRUE(results[1].placed);
  EXPECT_GT(results[0].time.median, 0.0);
  EXPECT_GT(results[1].time.median, 0.0);
}

TEST(Harness, JsonSchemaGolden) {
  CaseSpec spec = tiny_case("wavefront");
  spec.feedback = true;
  const CaseResult res = run_case(spec);
  std::ostringstream os;
  write_json(os, {res});
  const std::string got = os.str();
  expect_balanced_json(got);
  for (const char* key :
       {"\"context\"", "\"date\"", "\"host_name\"", "\"harness_schema\"",
        "\"benchmarks\"", "\"name\"", "\"workload\"", "\"backend\"",
        "\"policy\"", "\"topology\"", "\"tasks\"", "\"size\"",
        "\"iterations\"", "\"num_tasks\"", "\"warmup\"", "\"repetitions\"",
        "\"grants\"", "\"placed\"", "\"seconds_median\"", "\"seconds_mad\"",
        "\"seconds_mean\"", "\"seconds_min\"", "\"seconds_max\"",
        "\"verify_ran\"", "\"verified\"", "\"feedback\"",
        "\"speedup_vs_static\"", "\"measured_bytes\""}) {
    EXPECT_NE(got.find(key), std::string::npos)
        << "missing key " << key << " in:\n" << got;
  }
  EXPECT_NE(got.find("\"name\": \"wavefront/sim/treematch/feedback\""),
            std::string::npos)
      << got;
}

TEST(Harness, FeedbackRunsEndToEndOnRuntimeBackend) {
  CaseSpec spec = tiny_case("alltoall");
  spec.backend = "runtime";
  spec.topo_spec.clear();
  spec.feedback = true;
  const CaseResult res = run_case(spec);
  EXPECT_TRUE(res.feedback.ran);
  EXPECT_GT(res.feedback.time.median, 0.0);
  EXPECT_GT(res.feedback.measured_bytes, 0.0);
  EXPECT_TRUE(res.verified) << res.verify_error;
}

// The paper's claim, as an invariant: for EVERY registered workload on the
// simulated paper machine, re-placing with TreeMatch on the measured flow
// matrix is no slower than leaving threads to the scheduler lottery.
TEST(Harness, FeedbackNoSlowerThanNoneOnPaperMachine) {
  for (const workloads::Workload& w : workloads::registry()) {
    CaseSpec spec = tiny_case(w.name);
    spec.topo_spec.clear();  // paper machine
    spec.policy = place::Policy::None;
    spec.feedback = true;
    const CaseResult res = run_case(spec);
    EXPECT_TRUE(res.feedback.ran) << w.name;
    EXPECT_TRUE(res.verified) << w.name << ": " << res.verify_error;
    EXPECT_LE(res.feedback.time.median, res.time.median * 1.001)
        << w.name << ": feedback " << res.feedback.time.median
        << " s vs unplaced " << res.time.median << " s";
    EXPECT_GE(res.feedback.speedup, 1.0) << w.name;
  }
}

}  // namespace
}  // namespace orwl::harness
