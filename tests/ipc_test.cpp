// Multi-process tests for the shm grant transport (src/ipc/): a fork
// fixture runs the OWNER and the PEER as sibling child processes over a
// memfd channel created pre-fork (both processes are single-threaded at
// fork time — the transport's fork-safety rule, docs/ipc.md).
//
// Covered here, end to end through real address-space separation:
//   * attach + strictly ordered two-process handoff on one location;
//   * a server-only owner (no tasks of its own) arbitrating a peer;
//   * peer-crash: SIGKILL mid-section — the survivor must fail loudly
//     within a bounded time (default handler exits kPeerFailureExitCode,
//     an overridden handler observes the detection), and NEVER hang: the
//     whole fixture runs under an alarm() watchdog, and the gtest parent
//     reaps the crashed child immediately so the survivor's kill(pid, 0)
//     liveness probe sees ESRCH rather than a zombie.
//
// TSan note (.github/workflows/ci.yml): the children never create
// threads before fork — endpoints (and their pump threads) come up only
// inside the child — so running this under TSan needs
// TSAN_OPTIONS=die_after_fork=0 but no other concession.

#include <gtest/gtest.h>

#ifndef __linux__

TEST(IpcTransport, SkippedOnNonLinux) { GTEST_SKIP() << "shm is Linux-only"; }

#else  // __linux__

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <span>

#include "ipc/channel.h"
#include "ipc/transport.h"
#include "orwl/runtime.h"

namespace orwl::ipc {
namespace {

constexpr int kRounds = 16;
/// Exit code of the overridden failure handler — distinguishable from the
/// default kPeerFailureExitCode.
constexpr int kOverrideExitCode = 42;
/// Watchdog: no single two-process case may take anywhere near this.
constexpr unsigned kWatchdogSec = 45;

std::uint64_t& counter_of(std::span<std::byte> bytes) {
  return *reinterpret_cast<std::uint64_t*>(bytes.data());
}

RuntimeOptions shm_options() {
  RuntimeOptions opts;
  opts.control = RuntimeOptions::ControlMode::Direct;
  opts.transport = RuntimeOptions::Transport::Shm;
  return opts;
}

/// Fast liveness tick so crash detection fits comfortably in the
/// watchdog; everything else keeps its defaults.
EndpointOptions fast_opts(bool override_handler) {
  EndpointOptions opts;
  opts.tick_ns = 5'000'000;  // 5 ms
  if (override_handler)
    opts.on_peer_failure = [](const std::string&) {
      std::_Exit(kOverrideExitCode);
    };
  return opts;
}

struct OwnerParams {
  int rounds = kRounds;
  bool run_task = true;          ///< false: pure arbitration server
  int crash_at = -1;             ///< SIGKILL inside this iteration
  bool override_handler = false;
};

/// Owner child body; the exit code is the test's observable.
int owner_main(Channel& ch, const OwnerParams& p) {
  Runtime rt(shm_options());
  const LocationId loc = rt.add_shared_location(ch.location_bytes(0), "ctr");
  OwnerEndpoint ep(ch, rt, fast_opts(p.override_handler));
  ep.bind_location(0, loc);

  bool order_ok = true;
  HandleId h = -1;
  if (p.run_task) {
    const TaskId t = rt.add_task("owner", [&](TaskContext& ctx) {
      Handle& hh = ctx.handle(0);
      for (int i = 0; i < p.rounds; ++i) {
        std::uint64_t& v = counter_of(hh.acquire());
        if (i == p.crash_at) ::raise(SIGKILL);
        if (v != 2 * static_cast<std::uint64_t>(i)) order_ok = false;
        ++v;
        if (i + 1 < p.rounds)
          hh.release_and_renew();
        else
          hh.release();
      }
    });
    h = rt.add_handle(t, loc, AccessMode::Write, /*prime=*/false);
    rt.handle(h).request();  // canonical: owner primes before OwnerReady
  }
  ep.start();
  if (!ep.wait_peer_attached()) return 3;
  if (p.run_task) rt.run();
  if (!ep.wait_peer_done()) return 4;
  ep.stop();
  if (!order_ok) return 5;
  return 0;
}

struct PeerParams {
  int rounds = kRounds;
  /// Expected parity of the observed counter: with an owner task the peer
  /// goes second (sees odd values); against a server-only owner it is the
  /// only writer (sees its own trail).
  bool owner_writes = true;
  int crash_at = -1;
  bool override_handler = false;
};

int peer_main(int fd, const PeerParams& p) {
  Channel ch = Channel::attach_fd(fd);
  Runtime rt(shm_options());
  PeerEndpoint ep(ch, rt, fast_opts(p.override_handler));
  const LocationId loc = ep.add_location(0);

  bool order_ok = true;
  const TaskId t = rt.add_task("peer", [&](TaskContext& ctx) {
    Handle& hh = ctx.handle(0);
    for (int i = 0; i < p.rounds; ++i) {
      std::uint64_t& v = counter_of(hh.acquire());
      if (i == p.crash_at) ::raise(SIGKILL);
      const std::uint64_t want =
          p.owner_writes ? 2 * static_cast<std::uint64_t>(i) + 1
                         : static_cast<std::uint64_t>(i);
      if (v != want) order_ok = false;
      ++v;
      if (i + 1 < p.rounds)
        hh.release_and_renew();
      else
        hh.release();
    }
  });
  const HandleId h = rt.add_handle(t, loc, AccessMode::Write,
                                   /*prime=*/false);
  ep.start();
  rt.handle(h).request();
  ep.announce_primed();
  rt.run();
  ep.stop();
  return order_ok ? 0 : 5;
}

/// Fork fixture. The channel is created per-case before any fork; the
/// owner child reuses the parent's mapping, the peer child re-attaches
/// through the inherited memfd.
class IpcTransport : public ::testing::Test {
 protected:
  void SetUp() override { ::alarm(kWatchdogSec); }
  void TearDown() override { ::alarm(0); }

  static Channel make_channel() {
    return Channel::create(
        {.shm_name = {},
         .ring_capacity = 64,
         .locations = {{.name = "ctr", .bytes = sizeof(std::uint64_t)}}});
  }

  template <typename Body>
  static pid_t fork_child(Body body) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::alarm(kWatchdogSec);  // alarms do not survive fork; re-arm
      ::_exit(body());
    }
    return pid;
  }

  /// Reap `pid` and return its exit code; -1 for abnormal termination.
  /// Reaping promptly matters: a zombie still satisfies kill(pid, 0), so
  /// the surviving sibling's liveness probe needs the crasher collected.
  static int reap(pid_t pid) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

TEST_F(IpcTransport, OrderedHandoffAcrossProcesses) {
  Channel ch = make_channel();
  const pid_t owner = fork_child([&ch] { return owner_main(ch, {}); });
  ASSERT_GT(owner, 0);
  const int fd = ch.shm_fd();
  const pid_t peer = fork_child([fd] { return peer_main(fd, {}); });
  ASSERT_GT(peer, 0);

  EXPECT_EQ(reap(owner), 0);
  EXPECT_EQ(reap(peer), 0);
  // The parent's own mapping sees both processes' writes: strict
  // alternation bumped the counter exactly 2 * kRounds times.
  EXPECT_EQ(counter_of(ch.location_bytes(0)),
            2 * static_cast<std::uint64_t>(kRounds));
}

TEST_F(IpcTransport, ServerOnlyOwnerArbitratesPeer) {
  // The owner hosts the queues but runs no task of its own — the pump
  // thread alone moves the peer through all its rounds.
  Channel ch = make_channel();
  const pid_t owner = fork_child([&ch] {
    OwnerParams p;
    p.run_task = false;
    return owner_main(ch, p);
  });
  ASSERT_GT(owner, 0);
  const int fd = ch.shm_fd();
  const pid_t peer = fork_child([fd] {
    PeerParams p;
    p.owner_writes = false;
    return peer_main(fd, p);
  });
  ASSERT_GT(peer, 0);

  EXPECT_EQ(reap(owner), 0);
  EXPECT_EQ(reap(peer), 0);
  EXPECT_EQ(counter_of(ch.location_bytes(0)),
            static_cast<std::uint64_t>(kRounds));
}

TEST_F(IpcTransport, PeerCrashMidSectionFailsOwnerLoudly) {
  // The peer SIGKILLs itself while holding the location. The owner's next
  // wait can never be satisfied; its pump must detect the dead peer
  // within its liveness tick and fail-stop with the documented exit code
  // — bounded-time loud failure, never a hang (the watchdog enforces it).
  Channel ch = make_channel();
  const pid_t owner = fork_child([&ch] { return owner_main(ch, {}); });
  ASSERT_GT(owner, 0);
  const int fd = ch.shm_fd();
  const pid_t peer = fork_child([fd] {
    PeerParams p;
    p.crash_at = kRounds / 2;
    return peer_main(fd, p);
  });
  ASSERT_GT(peer, 0);

  EXPECT_EQ(reap(peer), -1);  // SIGKILL, not an exit
  EXPECT_EQ(reap(owner), kPeerFailureExitCode);
}

TEST_F(IpcTransport, OwnerCrashMidSectionFailsPeerLoudly) {
  // Dual case: the arbiter dies holding its own section. The peer's
  // parked handle can never be granted again; its pump must notice.
  Channel ch = make_channel();
  const pid_t owner = fork_child([&ch] {
    OwnerParams p;
    p.crash_at = kRounds / 2;
    return owner_main(ch, p);
  });
  ASSERT_GT(owner, 0);
  const int fd = ch.shm_fd();
  const pid_t peer = fork_child([fd] { return peer_main(fd, {}); });
  ASSERT_GT(peer, 0);

  EXPECT_EQ(reap(owner), -1);
  EXPECT_EQ(reap(peer), kPeerFailureExitCode);
}

TEST_F(IpcTransport, OverriddenFailureHandlerObservesDetection) {
  // Tests can watch the detection instead of dying with the default
  // handler: the surviving owner exits with the override's code.
  Channel ch = make_channel();
  const pid_t owner = fork_child([&ch] {
    OwnerParams p;
    p.override_handler = true;
    return owner_main(ch, p);
  });
  ASSERT_GT(owner, 0);
  const int fd = ch.shm_fd();
  const pid_t peer = fork_child([fd] {
    PeerParams p;
    p.crash_at = kRounds / 2;
    return peer_main(fd, p);
  });
  ASSERT_GT(peer, 0);

  EXPECT_EQ(reap(peer), -1);
  EXPECT_EQ(reap(owner), kOverrideExitCode);
}

}  // namespace
}  // namespace orwl::ipc

#endif  // __linux__
