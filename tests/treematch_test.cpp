// Unit tests for Algorithm 1 (map_threads): mapping validity, locality,
// oversubscription and control-thread strategies.

#include <gtest/gtest.h>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "support/assert.h"
#include "treematch/treematch.h"

namespace orwl::treematch {
namespace {

Options no_control() {
  Options o;
  o.manage_control_threads = false;
  return o;
}

TEST(MapThreads, FillsEveryThreadOnce) {
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const auto m = comm::random_matrix(8, 0.5, 10.0, 1);
  const Result r = map_threads(topo, m, no_control());
  ASSERT_EQ(r.compute_pu.size(), 8u);
  comm::validate_mapping(topo, r.compute_pu, 1);
  for (int pu : r.compute_pu) EXPECT_GE(pu, 0);
  EXPECT_FALSE(r.oversubscribed);
  EXPECT_EQ(r.threads_per_leaf, 1);
}

TEST(MapThreads, ClusteredThreadsShareAPackage) {
  // 2 packs of 4 cores; 8 threads in 2 tight clusters of 4.
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const auto m = comm::clustered_matrix(8, 4, 100.0, 1.0);
  const Result r = map_threads(topo, m, no_control());
  // All threads of a cluster must land in the same package.
  const auto pus = topo.pus();
  for (int cluster = 0; cluster < 2; ++cluster) {
    const topo::Object* first_pack = nullptr;
    for (int t = cluster * 4; t < (cluster + 1) * 4; ++t) {
      const topo::Object* pu =
          pus[static_cast<std::size_t>(r.compute_pu[static_cast<std::size_t>(t)])];
      const topo::Object* pack = pu->parent->parent;  // pu -> core -> pack
      if (!first_pack) first_pack = pack;
      EXPECT_EQ(pack, first_pack) << "cluster " << cluster << " split";
    }
  }
}

TEST(MapThreads, StencilBeatsNaiveOrderOnHopBytes) {
  const auto topo = topo::Topology::synthetic("pack:4 core:4 pu:1");
  comm::StencilSpec spec;
  spec.blocks_x = 4;
  spec.blocks_y = 4;
  spec.block_rows = 64;
  spec.block_cols = 64;
  const auto m = comm::stencil_matrix(spec);
  const Result r = map_threads(topo, m, no_control());
  comm::validate_mapping(topo, r.compute_pu, 1);

  comm::Mapping naive(16);
  for (int t = 0; t < 16; ++t) naive[static_cast<std::size_t>(t)] = t;
  EXPECT_LE(comm::hop_bytes(topo, m, r.compute_pu),
            comm::hop_bytes(topo, m, naive));
}

TEST(MapThreads, DeterministicAcrossCalls) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:2");
  const auto m = comm::random_matrix(8, 0.6, 5.0, 21);
  const Result a = map_threads(topo, m, no_control());
  const Result b = map_threads(topo, m, no_control());
  EXPECT_EQ(a.compute_pu, b.compute_pu);
  EXPECT_EQ(a.control_pu, b.control_pu);
}

TEST(MapThreads, RejectsEmptyMatrix) {
  const auto topo = topo::Topology::flat(4);
  EXPECT_THROW(map_threads(topo, comm::CommMatrix(0)), ContractError);
}

TEST(MapThreads, RecordsGroupHierarchy) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  const auto m = comm::clustered_matrix(4, 2, 10.0, 1.0);
  const Result r = map_threads(topo, m, no_control());
  // Levels processed: pu (arity 1), core (arity 2), pack (arity 2).
  ASSERT_EQ(r.level_groups.size(), 3u);
  // The core-level grouping must pair the clusters {0,1} and {2,3}.
  const Groups& core_groups = r.level_groups[1];
  ASSERT_EQ(core_groups.size(), 2u);
  EXPECT_EQ(core_groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(core_groups[1], (std::vector<int>{2, 3}));
}

// --- oversubscription ------------------------------------------------------

TEST(Oversubscription, AddsVirtualLevel) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");  // 4 PUs
  const auto m = comm::clustered_matrix(8, 2, 10.0, 0.5);
  const Result r = map_threads(topo, m, no_control());
  EXPECT_TRUE(r.oversubscribed);
  EXPECT_EQ(r.threads_per_leaf, 2);
  comm::validate_mapping(topo, r.compute_pu, 2);
  // Tight pairs should share a PU.
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(r.compute_pu[static_cast<std::size_t>(2 * c)],
              r.compute_pu[static_cast<std::size_t>(2 * c + 1)])
        << "pair " << c << " split across PUs";
}

TEST(Oversubscription, DisallowedThrows) {
  const auto topo = topo::Topology::flat(2);
  Options opts = no_control();
  opts.allow_oversubscription = false;
  EXPECT_THROW(map_threads(topo, comm::uniform_matrix(5, 1.0), opts),
               ContractError);
}

TEST(Oversubscription, NonDivisibleThreadCount) {
  const auto topo = topo::Topology::flat(4);
  const auto m = comm::uniform_matrix(7, 1.0);  // 7 threads on 4 PUs -> k=2
  const Result r = map_threads(topo, m, no_control());
  EXPECT_TRUE(r.oversubscribed);
  EXPECT_EQ(r.threads_per_leaf, 2);
  comm::validate_mapping(topo, r.compute_pu, 2);
}

// --- control threads -------------------------------------------------------

TEST(Control, HyperthreadReservesSiblingPu) {
  // 2 packs x 2 cores x 2 PUs: HT strategy applies.
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:2");
  const auto m = comm::clustered_matrix(4, 2, 10.0, 1.0);
  Options opts;  // Auto
  const Result r = map_threads(topo, m, opts);
  EXPECT_EQ(r.control_used, ControlStrategy::Hyperthread);
  for (int t = 0; t < 4; ++t) {
    const int comp = r.compute_pu[static_cast<std::size_t>(t)];
    const int ctl = r.control_pu[static_cast<std::size_t>(t)];
    ASSERT_GE(ctl, 0);
    EXPECT_EQ(comp % 2, 0) << "compute thread on the even PU of its core";
    EXPECT_EQ(ctl, comp + 1) << "control thread on the sibling PU";
  }
  // Each core hosts exactly one compute thread.
  comm::validate_mapping(topo, r.compute_pu, 1);
}

TEST(Control, SpareCoresWhenNoSmt) {
  // 8 PUs, no SMT, 3 threads: spare cores available for control threads.
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const auto m = comm::ring_matrix(3, 10.0, false);
  Options opts;  // Auto
  const Result r = map_threads(topo, m, opts);
  EXPECT_EQ(r.control_used, ControlStrategy::SpareCores);
  comm::Mapping all;
  for (int t = 0; t < 3; ++t) {
    EXPECT_GE(r.control_pu[static_cast<std::size_t>(t)], 0);
    all.push_back(r.compute_pu[static_cast<std::size_t>(t)]);
    all.push_back(r.control_pu[static_cast<std::size_t>(t)]);
  }
  // Compute + control threads all get distinct PUs.
  comm::validate_mapping(topo, all, 1);
  // A control thread should sit near its compute thread: same package.
  const auto pus = topo.pus();
  for (int t = 0; t < 3; ++t) {
    const auto* comp =
        pus[static_cast<std::size_t>(r.compute_pu[static_cast<std::size_t>(t)])];
    const auto* ctl =
        pus[static_cast<std::size_t>(r.control_pu[static_cast<std::size_t>(t)])];
    EXPECT_GE(topo.common_ancestor_depth(*comp, *ctl), 1)
        << "control thread " << t << " landed on a remote package";
  }
}

TEST(Control, UnmanagedWhenNothingFits) {
  // 4 PUs, 4 threads, no SMT: no room for control threads.
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  const auto m = comm::uniform_matrix(4, 1.0);
  Options opts;  // Auto
  const Result r = map_threads(topo, m, opts);
  EXPECT_EQ(r.control_used, ControlStrategy::Unmanaged);
  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(r.control_pu[static_cast<std::size_t>(t)], -1);
}

TEST(Control, ExplicitHyperthreadRejectedWithoutSmt) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  Options opts;
  opts.control = ControlStrategy::Hyperthread;
  EXPECT_THROW(map_threads(topo, comm::uniform_matrix(2, 1.0), opts),
               ContractError);
}

TEST(Control, ExplicitSpareCoresRejectedWhenTooFewPus) {
  const auto topo = topo::Topology::flat(4);
  Options opts;
  opts.control = ControlStrategy::SpareCores;
  EXPECT_THROW(map_threads(topo, comm::uniform_matrix(3, 1.0), opts),
               ContractError);
}

TEST(Control, DisabledManagementIsUnmanaged) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:2");
  Options opts;
  opts.manage_control_threads = false;
  const Result r = map_threads(topo, comm::uniform_matrix(4, 1.0), opts);
  EXPECT_EQ(r.control_used, ControlStrategy::Unmanaged);
}

TEST(Control, HyperthreadWithOversubscription) {
  // 2 cores with SMT-2: 4 PUs but only 2 compute slots; 4 threads need
  // oversubscription on the core level while keeping control siblings.
  const auto topo = topo::Topology::synthetic("pack:1 core:2 pu:2");
  const auto m = comm::clustered_matrix(4, 2, 10.0, 1.0);
  Options opts;
  const Result r = map_threads(topo, m, opts);
  EXPECT_EQ(r.control_used, ControlStrategy::Hyperthread);
  EXPECT_TRUE(r.oversubscribed);
  EXPECT_EQ(r.threads_per_leaf, 2);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(r.compute_pu[static_cast<std::size_t>(t)] % 2, 0);
    EXPECT_EQ(r.control_pu[static_cast<std::size_t>(t)],
              r.compute_pu[static_cast<std::size_t>(t)] + 1);
  }
}

TEST(Control, FlatTopologyNeverHyperthread) {
  const auto topo = topo::Topology::flat(8);
  Options opts;  // Auto: flat tree must not be mistaken for SMT
  const Result r = map_threads(topo, comm::uniform_matrix(3, 1.0), opts);
  EXPECT_EQ(r.control_used, ControlStrategy::SpareCores);
}

TEST(ToString, StrategyNames) {
  EXPECT_STREQ(to_string(ControlStrategy::Auto), "auto");
  EXPECT_STREQ(to_string(ControlStrategy::Hyperthread), "hyperthread");
  EXPECT_STREQ(to_string(ControlStrategy::SpareCores), "spare-cores");
  EXPECT_STREQ(to_string(ControlStrategy::Unmanaged), "unmanaged");
}

}  // namespace
}  // namespace orwl::treematch
