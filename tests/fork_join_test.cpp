// Unit tests for the OpenMP-equivalent ForkJoinPool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "baselines/fork_join.h"
#include "support/assert.h"

namespace orwl::baselines {
namespace {

TEST(StaticChunk, CoversRangeExactly) {
  for (long n : {0L, 1L, 7L, 64L, 100L}) {
    for (int ranks : {1, 2, 3, 8}) {
      long covered = 0;
      long prev_end = 0;
      for (int r = 0; r < ranks; ++r) {
        const auto [b, e] = ForkJoinPool::static_chunk(n, r, ranks);
        EXPECT_EQ(b, prev_end) << "chunks must be contiguous";
        EXPECT_LE(b, e);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(StaticChunk, BalancedWithinOne) {
  for (int ranks : {3, 7}) {
    long min_len = 1L << 40, max_len = 0;
    for (int r = 0; r < ranks; ++r) {
      const auto [b, e] = ForkJoinPool::static_chunk(100, r, ranks);
      min_len = std::min(min_len, e - b);
      max_len = std::max(max_len, e - b);
    }
    EXPECT_LE(max_len - min_len, 1);
  }
}

TEST(StaticChunk, RejectsBadRank) {
  EXPECT_THROW(ForkJoinPool::static_chunk(10, 3, 3), ContractError);
  EXPECT_THROW(ForkJoinPool::static_chunk(10, -1, 3), ContractError);
}

TEST(ForkJoin, SingleThreadWorks) {
  ForkJoinPool pool(1);
  std::vector<int> data(100, 0);
  pool.parallel_for_each(0, 100, [&](long i) {
    data[static_cast<std::size_t>(i)] = static_cast<int>(i);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(ForkJoin, AllIndicesVisitedOnce) {
  ForkJoinPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_each(0, 1000, [&](long i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ForkJoin, EmptyRangeIsNoop) {
  ForkJoinPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_each(5, 5, [&](long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ForkJoin, RangeSmallerThanPool) {
  ForkJoinPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for_each(0, 3, [&](long i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ForkJoin, ReverseRangeRejected) {
  ForkJoinPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 4, [](long, long) {}), ContractError);
}

TEST(ForkJoin, ImplicitBarrierBetweenCalls) {
  // Phase 2 must observe all of phase 1's writes.
  ForkJoinPool pool(6);
  std::vector<long> a(600, 0), b(600, 0);
  pool.parallel_for_each(0, 600, [&](long i) {
    a[static_cast<std::size_t>(i)] = i + 1;
  });
  pool.parallel_for_each(0, 600, [&](long i) {
    b[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(599 - i)];  // cross-chunk read
  });
  for (long i = 0; i < 600; ++i)
    EXPECT_EQ(b[static_cast<std::size_t>(i)], 600 - i);
}

TEST(ForkJoin, ManyIterationsStress) {
  ForkJoinPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for_each(0, 40, [&](long) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 200 * 40);
}

TEST(ForkJoin, ExceptionPropagates) {
  ForkJoinPool pool(4);
  EXPECT_THROW(pool.parallel_for_each(
                   0, 100,
                   [&](long i) {
                     if (i == 37) throw std::runtime_error("worker failed");
                   }),
               std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for_each(0, 10, [&](long) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ForkJoin, ChunkedBodySeesWholeChunks) {
  ForkJoinPool pool(3);
  std::atomic<long> covered{0};
  pool.parallel_for(0, 100, [&](long b, long e) {
    EXPECT_LT(b, e);
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 100);
}

TEST(ForkJoin, RejectsZeroThreads) {
  EXPECT_THROW(ForkJoinPool(0), ContractError);
}

TEST(ForkJoin, CpusetListSizeChecked) {
  std::vector<std::optional<topo::Bitmap>> sets(3);
  EXPECT_THROW(ForkJoinPool(2, sets), ContractError);
}

TEST(ForkJoin, BoundWorkersStillCorrect) {
  std::vector<std::optional<topo::Bitmap>> sets(4);
  for (auto& s : sets) s = topo::Bitmap::single(0);  // all on CPU 0
  ForkJoinPool pool(4, sets);
  std::atomic<long> sum{0};
  pool.parallel_for_each(0, 100, [&](long i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

}  // namespace
}  // namespace orwl::baselines
