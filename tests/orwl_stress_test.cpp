// Stress and invariant tests for the ORWL runtime under real concurrency:
// mutual exclusion, shared-read concurrency, no lost updates, liveness of
// long iterative chains, both control modes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "orwl/runtime.h"

namespace orwl {
namespace {

class StressTest
    : public ::testing::TestWithParam<RuntimeOptions::ControlMode> {
 protected:
  RuntimeOptions opts() {
    RuntimeOptions o;
    o.control = GetParam();
    o.shared_control_threads = 3;
    return o;
  }
};

TEST_P(StressTest, WritersNeverOverlap) {
  constexpr int kWriters = 8;
  constexpr int kRounds = 200;
  Runtime rt(opts());
  const LocationId loc = rt.add_location(sizeof(long));
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < kWriters; ++i) {
    rt.add_task("w" + std::to_string(i), [&, i](TaskContext& ctx) {
      Handle& h = ctx.handle(i);
      for (int round = 0; round < kRounds; ++round) {
        auto bytes = h.acquire();
        if (inside.fetch_add(1) != 0) overlap = true;
        as_span<long>(bytes)[0] += 1;
        inside.fetch_sub(1);
        if (round + 1 == kRounds)
          h.release();
        else
          h.release_and_renew();
      }
    });
  }
  for (int i = 0; i < kWriters; ++i)
    rt.add_handle(i, loc, AccessMode::Write);
  rt.run();
  EXPECT_FALSE(overlap.load()) << "two write grants overlapped";
  EXPECT_EQ(as_span<long>(rt.location_data(loc))[0],
            static_cast<long>(kWriters) * kRounds)
      << "lost updates detected";
}

TEST_P(StressTest, ReadersOverlapWritersDoNot) {
  constexpr int kReaders = 6;
  constexpr int kRounds = 100;
  Runtime rt(opts());
  const LocationId loc = rt.add_location(sizeof(long));
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> writer_overlap{false};

  rt.add_task("writer", [&](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    for (int round = 0; round < kRounds; ++round) {
      auto bytes = h.acquire();
      if (readers_inside.load() != 0) writer_overlap = true;
      as_span<long>(bytes)[0] += 1;
      if (round + 1 == kRounds)
        h.release();
      else
        h.release_and_renew();
    }
  });
  for (int i = 0; i < kReaders; ++i) {
    rt.add_task("r" + std::to_string(i), [&, i](TaskContext& ctx) {
      Handle& h = ctx.handle(1 + i);
      for (int round = 0; round < kRounds; ++round) {
        h.acquire();
        readers_inside.fetch_add(1);
        if (round == 0) {
          // All first-round reads are granted together after the writer's
          // first release. Wait (bounded) for a peer inside its grant: this
          // can only succeed when read grants are genuinely shared, and it
          // works on single-PU hosts where a fixed spin window never
          // catches a preemption. If reads were serialized the deadline
          // expires and max_readers stays 1.
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(2);
          while (readers_inside.load() < 2 &&
                 std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
        } else {
          // Widen the observation window so concurrent read grants are
          // actually observed overlapping.
          for (int spin = 0; spin < 2000; ++spin)
            asm volatile("" : : : "memory");
        }
        const int now = readers_inside.load();
        int prev = max_readers.load();
        while (now > prev && !max_readers.compare_exchange_weak(prev, now)) {
        }
        readers_inside.fetch_sub(1);
        if (round + 1 == kRounds)
          h.release();
        else
          h.release_and_renew();
      }
    });
  }
  rt.add_handle(0, loc, AccessMode::Write);
  for (int i = 0; i < kReaders; ++i)
    rt.add_handle(1 + i, loc, AccessMode::Read);
  rt.run();
  EXPECT_FALSE(writer_overlap.load());
  EXPECT_EQ(as_span<long>(rt.location_data(loc))[0], kRounds);
  // Readers are granted together between writer rounds; with 6 readers we
  // should observe genuine overlap at least once.
  EXPECT_GT(max_readers.load(), 1)
      << "shared read grants never actually overlapped";
}

TEST_P(StressTest, LongChainStaysLive) {
  // A 16-stage pipeline over 16 locations, 100 rounds: if renewal ordering
  // were wrong this would deadlock (the test would time out).
  constexpr int kStages = 16;
  constexpr int kRounds = 100;
  Runtime rt(opts());
  std::vector<LocationId> locs;
  for (int i = 0; i < kStages; ++i)
    locs.push_back(rt.add_location(sizeof(long)));
  for (int i = 0; i < kStages; ++i) {
    rt.add_task("stage" + std::to_string(i), [i](TaskContext& ctx) {
      Handle& rd = ctx.handle(2 * i);
      Handle& wr = ctx.handle(2 * i + 1);
      for (int round = 0; round < kRounds; ++round) {
        const bool last = round + 1 == kRounds;
        long v;
        {
          auto bytes = rd.acquire();
          v = as_span<const long>(std::span<const std::byte>(bytes))[0];
          if (last)
            rd.release();
          else
            rd.release_and_renew();
        }
        auto bytes = wr.acquire();
        as_span<long>(bytes)[0] = v + 1;
        if (last)
          wr.release();
        else
          wr.release_and_renew();
      }
    });
  }
  for (int i = 0; i < kStages; ++i) {
    rt.add_handle(i, locs[static_cast<std::size_t>(i)], AccessMode::Read);
    rt.add_handle(i, locs[static_cast<std::size_t>((i + 1) % kStages)],
                  AccessMode::Write);
  }
  rt.run();
  EXPECT_EQ(rt.stats().read_grants(),
            static_cast<std::uint64_t>(kStages * kRounds));
}

TEST_P(StressTest, ManyLocationsManyTasks) {
  // 32 tasks all writing the same 4 locations in the same order for 50
  // rounds. Identical per-task acquisition order across all queues is the
  // ORWL liveness discipline; this must not deadlock.
  constexpr int kTasks = 32;
  constexpr int kLocs = 4;
  constexpr int kRounds = 50;
  Runtime rt(opts());
  std::vector<LocationId> locs;
  for (int i = 0; i < kLocs; ++i)
    locs.push_back(rt.add_location(sizeof(long)));
  int handle_id = 0;
  std::vector<int> first_handle(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    first_handle[static_cast<std::size_t>(t)] = handle_id;
    handle_id += 4;
    rt.add_task("t" + std::to_string(t), [t, &first_handle](TaskContext& ctx) {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < 4; ++k) {
          Handle& h =
              ctx.handle(first_handle[static_cast<std::size_t>(t)] + k);
          auto bytes = h.acquire();
          as_span<long>(bytes)[0] += 1;
          if (round + 1 == kRounds)
            h.release();
          else
            h.release_and_renew();
        }
      }
    });
  }
  for (int t = 0; t < kTasks; ++t)
    for (int k = 0; k < 4; ++k)
      rt.add_handle(t, locs[static_cast<std::size_t>(k)], AccessMode::Write);
  rt.run();
  long total = 0;
  for (int i = 0; i < kLocs; ++i)
    total += as_span<long>(rt.location_data(locs[static_cast<std::size_t>(i)]))[0];
  EXPECT_EQ(total, static_cast<long>(kTasks) * 4 * kRounds);
}

INSTANTIATE_TEST_SUITE_P(
    ControlModes, StressTest,
    ::testing::Values(RuntimeOptions::ControlMode::Direct,
                      RuntimeOptions::ControlMode::PerTask,
                      RuntimeOptions::ControlMode::SharedPool),
    [](const auto& info) {
      switch (info.param) {
        case RuntimeOptions::ControlMode::Direct: return "Direct";
        case RuntimeOptions::ControlMode::PerTask: return "PerTask";
        case RuntimeOptions::ControlMode::SharedPool: return "SharedPool";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace orwl
