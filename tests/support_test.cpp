// Unit tests for the support utilities (assert, cast, rng, table, time).

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/assert.h"
#include "support/cast.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/time.h"

namespace {
// Defeat optimization without volatile (deprecated in C++20).
void benchmark_guard(const double& v) {
  asm volatile("" : : "r,m"(v) : "memory");
}
}  // namespace

namespace orwl {
namespace {

TEST(Assert, CheckPassesOnTrue) {
  EXPECT_NO_THROW(ORWL_CHECK(1 + 1 == 2));
}

TEST(Assert, CheckThrowsContractError) {
  EXPECT_THROW(ORWL_CHECK(false), ContractError);
}

TEST(Assert, CheckMsgIncludesExpressionAndMessage) {
  try {
    ORWL_CHECK_MSG(2 < 1, "two is not less than " << 1);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than 1"), std::string::npos);
  }
}

TEST(Cast, RoundTripsInRange) {
  EXPECT_EQ(checked_cast<int>(42L), 42);
  EXPECT_EQ(checked_cast<std::uint8_t>(255), 255);
}

TEST(Cast, ThrowsOnOverflow) {
  EXPECT_THROW(checked_cast<std::uint8_t>(256), ContractError);
  EXPECT_THROW(checked_cast<std::int8_t>(1000), ContractError);
}

TEST(Cast, ThrowsOnNegativeToUnsigned) {
  EXPECT_THROW(checked_cast<unsigned>(-1), ContractError);
}

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all residues should appear in 1000 draws";
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsWrongWidthRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, CsvEscapesQuotes) {
  Table t({"a"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Fmt, FormatsWithPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(Time, FormatPicksUnits) {
  EXPECT_EQ(format_seconds(11.0), "11.000 s");
  EXPECT_NE(format_seconds(0.0421).find("ms"), std::string::npos);
  EXPECT_NE(format_seconds(42e-6).find("us"), std::string::npos);
  EXPECT_NE(format_seconds(3e-9).find("ns"), std::string::npos);
}

TEST(Time, WallTimerAdvances) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_guard(sink);
  EXPECT_GT(t.nanos(), 0);
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace orwl
