// Tests for the NUMA cost-model simulator: sanity, monotonicity and the
// qualitative properties Figure 1 depends on.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "sim/calibration.h"
#include "sim/lk23_model.h"
#include "sim/simulator.h"
#include "support/assert.h"

namespace orwl::sim {
namespace {

Workload one_thread(double flops, double bytes, int iters = 1) {
  Workload w;
  w.threads.push_back({flops, bytes, 0});
  w.iterations = iters;
  return w;
}

Placement fixed_at(std::vector<int> pus) {
  Placement p;
  p.compute_pu = pus;
  p.control_pu.assign(pus.size(), -1);
  p.data_home_pu = pus;
  return p;
}

TEST(CostModel, DefaultsValidateAgainstTopology) {
  const auto topo = topo::Topology::paper_machine();
  const LinkCost cost = LinkCost::defaults_for(topo);
  EXPECT_NO_THROW(cost.check(topo));
  // The ladder must be monotone: deeper common ancestor => cheaper.
  for (int d = 1; d < topo.depth(); ++d) {
    EXPECT_LE(cost.latency[static_cast<std::size_t>(d)],
              cost.latency[static_cast<std::size_t>(d - 1)]);
    EXPECT_GE(cost.bandwidth[static_cast<std::size_t>(d)],
              cost.bandwidth[static_cast<std::size_t>(d - 1)]);
  }
}

TEST(CostModel, SizeMismatchRejected) {
  const auto topo = topo::Topology::paper_machine();
  LinkCost cost = LinkCost::defaults_for(topo);
  cost.latency.pop_back();
  EXPECT_THROW(cost.check(topo), ContractError);
}

TEST(Simulate, ComputeScalesWithFlops) {
  const auto topo = topo::Topology::flat(2);
  const LinkCost cost = LinkCost::defaults_for(topo);
  const Report r1 = simulate(topo, cost, one_thread(1e6, 0.0), fixed_at({0}));
  const Report r2 = simulate(topo, cost, one_thread(2e6, 0.0), fixed_at({0}));
  EXPECT_NEAR(r2.total_seconds, 2.0 * r1.total_seconds, 1e-12);
}

TEST(Simulate, IterationsAccumulate) {
  const auto topo = topo::Topology::flat(2);
  const LinkCost cost = LinkCost::defaults_for(topo);
  const Report r1 =
      simulate(topo, cost, one_thread(1e6, 0.0, 1), fixed_at({0}));
  const Report r10 =
      simulate(topo, cost, one_thread(1e6, 0.0, 10), fixed_at({0}));
  EXPECT_NEAR(r10.total_seconds, 10.0 * r1.total_seconds, 1e-12);
}

TEST(Simulate, RemoteMemorySlowerThanLocal) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w = one_thread(0.0, 1e8);
  Placement local = fixed_at({0});
  Placement remote = fixed_at({0});
  remote.data_home_pu = {3};  // other package
  const double t_local = simulate(topo, cost, w, local).total_seconds;
  const double t_remote = simulate(topo, cost, w, remote).total_seconds;
  EXPECT_GT(t_remote, t_local * 2.0);
}

TEST(Simulate, CommEdgesCheaperWhenColocated) {
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  w.threads = {{1e6, 0.0, 0}, {1e6, 0.0, 0}};
  w.edges = {{0, 1, 1e6}};
  const double near =
      simulate(topo, cost, w, fixed_at({0, 1})).total_seconds;
  const double far =
      simulate(topo, cost, w, fixed_at({0, 7})).total_seconds;
  EXPECT_GT(far, near);
}

TEST(Simulate, OversubscriptionSerializes) {
  const auto topo = topo::Topology::flat(4);
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  for (int i = 0; i < 4; ++i) w.threads.push_back({1e6, 0.0, 0});
  const Report spread = simulate(topo, cost, w, fixed_at({0, 1, 2, 3}));
  const Report stacked = simulate(topo, cost, w, fixed_at({0, 0, 0, 0}));
  EXPECT_NEAR(stacked.total_seconds, 4.0 * spread.total_seconds, 1e-9);
  EXPECT_EQ(stacked.max_pu_load, 4);
  EXPECT_EQ(spread.max_pu_load, 1);
}

TEST(Simulate, HotspotDomainSerialization) {
  // Many threads streaming from one domain are bounded by that domain's
  // aggregate bandwidth, not per-flow bandwidth.
  const auto topo = topo::Topology::synthetic("pack:4 core:4 pu:1");
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  for (int i = 0; i < 16; ++i) w.threads.push_back({0.0, 1e8, 0});
  Placement spread_data = fixed_at({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                    13, 14, 15});
  Placement hotspot = spread_data;
  hotspot.data_home_pu.assign(16, -1);  // everything on PU 0's domain
  const double t_spread =
      simulate(topo, cost, w, spread_data).total_seconds;
  const double t_hot = simulate(topo, cost, w, hotspot).total_seconds;
  EXPECT_GT(t_hot, 2.0 * t_spread);
}

TEST(Simulate, UnmanagedControlPaysPenalty) {
  const auto topo = topo::Topology::flat(2);
  LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  w.threads = {{0.0, 0.0, 1000}};  // 1000 acquires, nothing else
  Placement managed = fixed_at({0});
  managed.control_pu = {0};
  Placement unmanaged = fixed_at({0});
  unmanaged.control_pu = {-1};
  const double t_managed = simulate(topo, cost, w, managed).total_seconds;
  const double t_unmanaged =
      simulate(topo, cost, w, unmanaged).total_seconds;
  EXPECT_GT(t_unmanaged, t_managed);
  // The managed path pays the (tiny) same-PU latency instead of the
  // penalty; the difference is the penalty minus that latency.
  EXPECT_NEAR(t_unmanaged - t_managed,
              1000 * (cost.unmanaged_grant_penalty - cost.latency.back()),
              1e-9);
}

TEST(Simulate, SpinWaitsDiscountParkWakeLatency) {
  // A spinning waiter consumes its grant without the futex park/wake
  // pair, so spin_waits workloads pay grant_overhead minus the measured
  // park+wake latencies (bench/micro_orwl_overhead's
  // park_wake_calibration cases). Block workloads — the recorded-baseline
  // configuration — must be bit-identical with the discount code in the
  // tree.
  const auto topo = topo::Topology::flat(2);
  LinkCost cost = LinkCost::defaults_for(topo);
  Workload blocking;
  blocking.threads = {{0.0, 0.0, 1000}};
  Workload spinning = blocking;
  spinning.spin_waits = true;
  Placement managed = fixed_at({0});
  managed.control_pu = {0};
  const Report rb = simulate(topo, cost, blocking, managed);
  const Report rs = simulate(topo, cost, spinning, managed);
  EXPECT_LT(rs.lock_seconds, rb.lock_seconds);
  EXPECT_NEAR(rb.lock_seconds - rs.lock_seconds,
              1000 * (cost.park_latency + cost.wake_latency), 1e-12);

  // The discount is floored at a quarter of the grant overhead: queue
  // work and announcement stay charged even if a host measured a
  // park/wake pair larger than the whole overhead.
  LinkCost extreme = cost;
  extreme.park_latency = cost.grant_overhead;
  extreme.wake_latency = cost.grant_overhead;
  const Report rf = simulate(topo, extreme, spinning, managed);
  EXPECT_NEAR(rf.lock_seconds,
              1000 * (0.25 * cost.grant_overhead + cost.latency.back()),
              1e-12);
}

TEST(Simulate, BarrierCostOnlyForForkJoin) {
  const auto topo = topo::Topology::flat(8);
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  for (int i = 0; i < 8; ++i) w.threads.push_back({0.0, 0.0, 0});
  Placement p = fixed_at({0, 1, 2, 3, 4, 5, 6, 7});
  w.sync = SyncModel::OrwlEvents;
  const double t_orwl = simulate(topo, cost, w, p).total_seconds;
  w.sync = SyncModel::ForkJoinBarrier;
  const double t_fj = simulate(topo, cost, w, p).total_seconds;
  EXPECT_EQ(t_orwl, 0.0);
  EXPECT_GT(t_fj, 0.0);
}

TEST(Simulate, UnboundPlacementDeterministicInSeed) {
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  for (int i = 0; i < 8; ++i) w.threads.push_back({1e6, 1e6, 0});
  w.iterations = 10;
  Placement p;
  p.compute_pu.assign(8, -1);
  p.control_pu.assign(8, -1);
  p.data_home_pu.assign(8, 0);
  const double a = simulate(topo, cost, w, p, 42).total_seconds;
  const double b = simulate(topo, cost, w, p, 42).total_seconds;
  EXPECT_EQ(a, b);
}

TEST(Simulate, TwoChoicesBalanceBetterThanOne) {
  // Power-of-two-choices must produce lower peak PU load than uniform
  // placement for many unbound equal threads.
  const auto topo = topo::Topology::synthetic("pack:4 core:8 pu:1");
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w;
  for (int i = 0; i < 32; ++i) w.threads.push_back({1e6, 0.0, 0});
  w.iterations = 20;
  Placement p;
  p.compute_pu.assign(32, -1);
  p.control_pu.assign(32, -1);
  p.data_home_pu.assign(32, 0);
  p.stickiness = 0.0;
  p.choices = 2;
  const Report po2 = simulate(topo, cost, w, p, 3);
  p.choices = 1;
  const Report uniform = simulate(topo, cost, w, p, 3);
  EXPECT_LE(po2.max_pu_load, uniform.max_pu_load);
  EXPECT_LE(po2.total_seconds, uniform.total_seconds * 1.0001);
}

TEST(Simulate, RejectsBadChoices) {
  const auto topo = topo::Topology::flat(2);
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w = one_thread(1.0, 1.0);
  Placement p = fixed_at({0});
  p.choices = 3;
  EXPECT_THROW(simulate(topo, cost, w, p), ContractError);
}

TEST(Simulate, InputValidation) {
  const auto topo = topo::Topology::flat(2);
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload w = one_thread(1.0, 1.0);
  Placement p = fixed_at({0});
  p.compute_pu.clear();
  EXPECT_THROW(simulate(topo, cost, w, p), ContractError);
  p = fixed_at({0});
  w.edges.push_back({0, 0, 1.0});  // self edge
  EXPECT_THROW(simulate(topo, cost, w, p), ContractError);
}

// --- Figure 1 model sanity -------------------------------------------------

TEST(Lk23Model, BlockGridFactorizes) {
  EXPECT_EQ(block_grid(192), (std::pair<int, int>{16, 12}));
  EXPECT_EQ(block_grid(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(block_grid(7), (std::pair<int, int>{7, 1}));
  EXPECT_EQ(block_grid(1), (std::pair<int, int>{1, 1}));
}

TEST(Lk23Model, OrwlWorkloadShape) {
  const auto topo = topo::Topology::paper_machine();
  Lk23SimSpec spec;
  spec.tasks = 16;  // 4x4 grid
  spec.matrix_n = 1024;
  spec.iterations = 1;
  const Lk23Model m = build_lk23_model(Lk23Impl::OrwlNoBind, topo, spec);
  // Paper decomposition: every block has 1 main + exactly 8 frontier ops.
  EXPECT_EQ(m.num_threads, 16 * 9);
  EXPECT_EQ(m.load.sync, SyncModel::OrwlEvents);
  // NoBind: everything unbound.
  for (int pu : m.place.compute_pu) EXPECT_EQ(pu, -1);
}

TEST(Lk23Model, BindMapsEveryThread) {
  const auto topo = topo::Topology::paper_machine();
  Lk23SimSpec spec;
  spec.tasks = 16;
  spec.matrix_n = 1024;
  spec.iterations = 1;
  const Lk23Model m = build_lk23_model(Lk23Impl::OrwlBind, topo, spec);
  for (int pu : m.place.compute_pu) {
    EXPECT_GE(pu, 0);
    EXPECT_LT(pu, topo.num_pus());
  }
  // Bound owners first-touch their data locally.
  EXPECT_EQ(m.place.data_home_pu, m.place.compute_pu);
}

TEST(Lk23Model, Figure1OrderingAtFullMachine) {
  // The headline property: at 192 cores, Bind < NoBind < OpenMP.
  const auto topo = topo::Topology::paper_machine();
  const LinkCost cost = LinkCost::defaults_for(topo);
  Lk23SimSpec spec;  // full paper spec: 16384^2, 100 iterations, 192 tasks
  spec.iterations = 10;  // 10 iterations are enough for the ordering
  const double bind =
      simulate_lk23(Lk23Impl::OrwlBind, topo, cost, spec).total_seconds;
  const double nobind =
      simulate_lk23(Lk23Impl::OrwlNoBind, topo, cost, spec).total_seconds;
  const double openmp =
      simulate_lk23(Lk23Impl::OpenMP, topo, cost, spec).total_seconds;
  EXPECT_LT(bind, nobind);
  EXPECT_LT(nobind, openmp);
}

// ---------------------------------------------------------------------------
// Calibration records (sim/calibration.h)
// ---------------------------------------------------------------------------

TEST(Calibration, FormatLoadRoundTrip) {
  CalibrationRecord rec;
  rec.host = "measured-host";
  rec.park_wake_pair_seconds = 2.5e-7;
  rec.grant_batch_overhead_seconds = 1.25e-6;
  const std::string path = ::testing::TempDir() + "orwl_cal_roundtrip.txt";
  {
    std::ofstream out(path);
    out << format_calibration(rec);
  }
  const auto back = load_calibration_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->host, rec.host);
  EXPECT_DOUBLE_EQ(back->park_wake_pair_seconds, rec.park_wake_pair_seconds);
  EXPECT_DOUBLE_EQ(back->grant_batch_overhead_seconds,
                   rec.grant_batch_overhead_seconds);
}

TEST(Calibration, UnknownKeysAndCommentsIgnored) {
  const std::string path = ::testing::TempDir() + "orwl_cal_forward.txt";
  {
    std::ofstream out(path);
    out << "# a comment line\n"
        << "host box42  # trailing comment\n"
        << "\n"
        << "some_future_key 123\n"
        << "park_wake_pair_seconds 1e-7\n";
  }
  const auto rec = load_calibration_file(path);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->host, "box42");
  EXPECT_DOUBLE_EQ(rec->park_wake_pair_seconds, 1e-7);
  EXPECT_DOUBLE_EQ(rec->grant_batch_overhead_seconds, 0.0)
      << "unmeasured fields keep their no-effect defaults";
}

TEST(Calibration, RejectsBadRecords) {
  // Missing file.
  EXPECT_FALSE(load_calibration_file("/nonexistent/orwl_cal.txt"));
  const std::string path = ::testing::TempDir() + "orwl_cal_bad.txt";
  // No host fingerprint: the record cannot be matched to a machine.
  {
    std::ofstream out(path);
    out << "park_wake_pair_seconds 1e-7\n";
  }
  EXPECT_FALSE(load_calibration_file(path));
  // Negative measurement: corrupt.
  {
    std::ofstream out(path);
    out << "host box\npark_wake_pair_seconds -1e-7\n";
  }
  EXPECT_FALSE(load_calibration_file(path));
  // Unparsable value.
  {
    std::ofstream out(path);
    out << "host box\ngrant_batch_overhead_seconds banana\n";
  }
  EXPECT_FALSE(load_calibration_file(path));
}

TEST(Calibration, DefaultsKeepBatchOverheadEqualToGrantOverhead) {
  // The bit-identity contract: without an activated calibration record the
  // batch overhead must EQUAL the grant overhead, so the batched-acquire
  // branch in simulate() charges nothing extra (and recorded sim numbers
  // never move). The ctest environment never sets ORWL_CALIBRATION.
  const auto topo = topo::Topology::paper_machine();
  const LinkCost cost = LinkCost::defaults_for(topo);
  EXPECT_EQ(cost.grant_batch_overhead, cost.grant_overhead);
}

TEST(Simulate, BatchedAcquiresBitIdenticalWithoutCalibration) {
  // batched_acquires is dormant while the two overheads are equal: the
  // reports must be byte-for-byte identical, not just close.
  const auto topo = topo::Topology::flat(2);
  const LinkCost cost = LinkCost::defaults_for(topo);
  Workload plain = one_thread(1e6, 1e6);
  plain.threads[0].acquires = 8;
  Workload batched = plain;
  batched.threads[0].batched_acquires = 6;
  const Placement p = fixed_at({0});
  const Report a = simulate(topo, cost, plain, p);
  const Report b = simulate(topo, cost, batched, p);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.lock_seconds, b.lock_seconds);
}

TEST(Simulate, BatchDiscountAppliesWhenOverheadsDiffer) {
  // With a (calibrated) cheaper batch overhead, batched acquisitions cost
  // less — and the batched count is clamped to the acquire count.
  const auto topo = topo::Topology::flat(2);
  LinkCost cost = LinkCost::defaults_for(topo);
  cost.grant_batch_overhead = cost.grant_overhead / 2.0;
  Workload plain = one_thread(0.0, 0.0);
  plain.threads[0].acquires = 8;
  Workload batched = plain;
  batched.threads[0].batched_acquires = 6;
  Workload clamped = plain;
  clamped.threads[0].batched_acquires = 100;  // > acquires: clamp to 8
  const Placement p = fixed_at({0});
  const double lock_plain = simulate(topo, cost, plain, p).lock_seconds;
  const double lock_batched = simulate(topo, cost, batched, p).lock_seconds;
  const double lock_clamped = simulate(topo, cost, clamped, p).lock_seconds;
  EXPECT_LT(lock_batched, lock_plain);
  EXPECT_NEAR(lock_plain - lock_batched,
              6 * (cost.grant_overhead - cost.grant_batch_overhead), 1e-15);
  EXPECT_NEAR(lock_plain - lock_clamped,
              8 * (cost.grant_overhead - cost.grant_batch_overhead), 1e-15);
}

TEST(Lk23Model, BindScalesBeyondTwoSockets) {
  // "As soon as we scale beyond one or two sockets, standard approaches
  // fail to improve" — Bind must keep improving from 16 to 64 cores.
  const auto topo = topo::Topology::paper_machine();
  const LinkCost cost = LinkCost::defaults_for(topo);
  Lk23SimSpec spec;
  spec.iterations = 5;
  spec.tasks = 16;
  const double t16 =
      simulate_lk23(Lk23Impl::OrwlBind, topo, cost, spec).total_seconds;
  spec.tasks = 64;
  const double t64 =
      simulate_lk23(Lk23Impl::OrwlBind, topo, cost, spec).total_seconds;
  EXPECT_LT(t64, t16 / 2.0);
}

}  // namespace
}  // namespace orwl::sim
