// Tests for the Livermore Kernel 23 numerics: stability, block/sequential
// agreement, halo handling.

#include <gtest/gtest.h>

#include <cmath>

#include "lk23/kernel.h"
#include "support/assert.h"

namespace orwl::lk23 {
namespace {

TEST(Coefficients, StableRange) {
  for (long j = 0; j < 50; ++j) {
    for (long k = 0; k < 50; ++k) {
      const double sum = coef_zr(j, k) + coef_zb(j, k) + coef_zu(j, k) +
                         coef_zv(j, k);
      EXPECT_GT(sum, 0.0);
      EXPECT_LT(sum, 1.0) << "kernel would be unstable";
      EXPECT_GE(coef_zz(j, k), 0.0);
      EXPECT_GE(initial_za(j, k), 0.0);
      EXPECT_LT(initial_za(j, k), 1.0);
    }
  }
}

TEST(Sequential, BorderStaysFixed) {
  const long n = 16;
  const auto za = sequential_kernel(n, 5);
  for (long k = 0; k < n; ++k) {
    EXPECT_EQ(za[static_cast<std::size_t>(k)], initial_za(0, k));
    EXPECT_EQ(za[static_cast<std::size_t>((n - 1) * n + k)],
              initial_za(n - 1, k));
    EXPECT_EQ(za[static_cast<std::size_t>(k * n)], initial_za(k, 0));
    EXPECT_EQ(za[static_cast<std::size_t>(k * n + n - 1)],
              initial_za(k, n - 1));
  }
}

TEST(Sequential, ValuesStayBounded) {
  const auto za = sequential_kernel(32, 100);
  for (double v : za) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(Sequential, ZeroIterationsIsInitialField) {
  const long n = 8;
  const auto za = sequential_kernel(n, 0);
  for (long j = 0; j < n; ++j)
    for (long k = 0; k < n; ++k)
      EXPECT_EQ(za[static_cast<std::size_t>(j * n + k)], initial_za(j, k));
}

TEST(Blocked, SingleBlockEqualsSequential) {
  // With one block there is no frontier: blocked == plain sequential GS.
  Spec spec;
  spec.n = 64;
  spec.iterations = 7;
  spec.bx = 1;
  spec.by = 1;
  const auto blocked = blocked_reference(spec);
  const auto seq = sequential_kernel(spec.n, spec.iterations);
  EXPECT_EQ(max_abs_diff(blocked, seq), 0.0);
}

TEST(Blocked, DifferentGridsConvergeTogether) {
  // Different block grids are different-but-consistent schemes; after many
  // iterations they converge to the same fixed point.
  Spec a;
  a.n = 32;
  a.iterations = 400;
  a.bx = 1;
  a.by = 1;
  Spec b = a;
  b.bx = 4;
  b.by = 2;
  const double diff =
      max_abs_diff(blocked_reference(a), blocked_reference(b));
  EXPECT_LT(diff, 1e-10) << "block-Jacobi coupling must not change the "
                            "fixed point";
}

TEST(Blocked, DeterministicAcrossRuns) {
  Spec spec;
  spec.n = 32;
  spec.iterations = 10;
  spec.bx = 4;
  spec.by = 4;
  EXPECT_EQ(max_abs_diff(blocked_reference(spec), blocked_reference(spec)),
            0.0);
}

TEST(Blocked, RejectsNonDividingGrid) {
  Spec spec;
  spec.n = 10;
  spec.bx = 3;
  EXPECT_THROW(blocked_reference(spec), ContractError);
}

TEST(SweepBlock, RespectsHaloValues) {
  // A 2x2 interior block: feed a synthetic halo and verify one update by
  // hand at (row0, col0) = (1, 1) in a 4x4 global matrix.
  const long n = 4;
  std::vector<double> za = {0.5, 0.5};  // placeholder, replaced below
  za.assign(4, 0.0);
  za[0] = initial_za(1, 1);
  za[1] = initial_za(1, 2);
  za[2] = initial_za(2, 1);
  za[3] = initial_za(2, 2);
  Halo halo;
  halo.north = {initial_za(0, 1), initial_za(0, 2)};
  halo.south = {initial_za(3, 1), initial_za(3, 2)};
  halo.west = {initial_za(1, 0), initial_za(2, 0)};
  halo.east = {initial_za(1, 3), initial_za(2, 3)};
  BlockView blk{za.data(), 2, 2, 2, 1, 1, n};
  sweep_block(blk, halo);

  // Expected: identical to one sequential sweep on the full 4x4 matrix.
  const auto full = sequential_kernel(n, 1);
  EXPECT_EQ(za[0], full[static_cast<std::size_t>(1 * n + 1)]);
  EXPECT_EQ(za[1], full[static_cast<std::size_t>(1 * n + 2)]);
  EXPECT_EQ(za[2], full[static_cast<std::size_t>(2 * n + 1)]);
  EXPECT_EQ(za[3], full[static_cast<std::size_t>(2 * n + 2)]);
}

TEST(SweepBlock, UndersizedHaloRejected) {
  std::vector<double> za(4, 0.0);
  BlockView blk{za.data(), 2, 2, 2, 1, 1, 4};
  Halo halo;  // all empty
  EXPECT_THROW(sweep_block(blk, halo), ContractError);
}

TEST(MaxAbsDiff, SizeMismatchRejected) {
  std::vector<double> a(3), b(4);
  EXPECT_THROW(max_abs_diff(a, b), ContractError);
}

TEST(InitBlock, MatchesFormula) {
  std::vector<double> za(6, -1.0);
  BlockView blk{za.data(), 3, 2, 3, 4, 5, 100};
  init_block(blk);
  for (long r = 0; r < 2; ++r)
    for (long c = 0; c < 3; ++c)
      EXPECT_EQ(za[static_cast<std::size_t>(r * 3 + c)],
                initial_za(4 + r, 5 + c));
}

}  // namespace
}  // namespace orwl::lk23
