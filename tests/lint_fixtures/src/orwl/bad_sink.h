#pragma once
// Fixture: an on_grant override with no sink-contract comment anywhere in
// the preceding window. Must trip [sink-contract].

#include "orwl/queue.h"

namespace orwl::lintfix {

class SilentSink final : public GrantSink {
 public:
  void on_grant(Request& req) override { (void)req; }
};

}  // namespace orwl::lintfix
