// Fixture: a header that (1) does not open with #pragma once, (2) climbs
// out of the tree with "..", (3) uses a non-module-rooted quoted include.
// Must trip [include-hygiene] (three times).

#include "../support/assert.h"
#include "queue.h"

namespace orwl::lintfix {
inline int three_hygiene_violations() { return 3; }
}  // namespace orwl::lintfix
