#pragma once
// Fixture: a file every rule must pass — guards the self-test against the
// lint going trigger-happy (false positives would gate CI on noise).

#include <atomic>

#include "orwl/queue.h"

namespace orwl::lintfix {

// sink-contract: no-queue-reentry — records and returns.
class QuietSink final : public GrantSink {
 public:
  void on_grant(Request& req) override { last = req.ticket; }
  Ticket last = 0;
};

inline int justified_load(const std::atomic<int>& a) {
  // order: acquire — pairs with the writer's release store.
  return a.load(std::memory_order_acquire);
}

// lint: allow-naked-acquire(fixture demonstrates the suppression form)
inline void suppressed(Handle& h) { h.acquire(); }

}  // namespace orwl::lintfix
