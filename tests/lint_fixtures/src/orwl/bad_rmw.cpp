// Fixture: an atomic read-modify-write outside the lock-free allow-list
// (src/sync/, orwl/queue, obs/metrics) with no "// lint: allow-rmw(...)"
// annotation. Must trip [rmw-allowlist]. The default (seq_cst) order keeps
// [order-comment] out of the picture — this fixture isolates one rule.

#include <atomic>

namespace orwl::lintfix {

int unreviewed_rmw(std::atomic<int>& counter) {
  return counter.fetch_add(1);
}

}  // namespace orwl::lintfix
