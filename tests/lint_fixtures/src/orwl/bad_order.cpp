// Fixture: a memory_order use with no "// order:" justification within the
// comment window. Must trip [order-comment].

#include <atomic>

namespace orwl::lintfix {

int unjustified_load(const std::atomic<int>& a) {
  return a.load(std::memory_order_acquire);
}

}  // namespace orwl::lintfix
