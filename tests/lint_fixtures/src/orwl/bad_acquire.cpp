// Fixture: a naked Handle::acquire() outside the Section RAII layer and
// without an allow-naked-acquire suppression. Must trip [naked-acquire].

#include "orwl/handle.h"

namespace orwl::lintfix {

void leak_a_grant(Handle& h) {
  h.acquire();
  // ... no RAII guard, no release on the error path ...
  h.release();
}

}  // namespace orwl::lintfix
