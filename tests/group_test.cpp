// Tests for GroupProcesses: exact vs greedy engines, determinism and
// quality on structured matrices.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "comm/patterns.h"
#include "support/assert.h"
#include "treematch/group.h"

namespace orwl::treematch {
namespace {

// Every entity appears in exactly one group; group sizes equal `arity`.
void expect_partition(const Groups& groups, int n, int arity) {
  std::set<int> seen;
  for (const auto& g : groups) {
    EXPECT_EQ(static_cast<int>(g.size()), arity);
    for (int e : g) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, n);
      EXPECT_TRUE(seen.insert(e).second) << "entity " << e << " duplicated";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), n);
}

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial_saturated(4, 2), 6u);
  EXPECT_EQ(binomial_saturated(8, 3), 56u);
  EXPECT_EQ(binomial_saturated(5, 0), 1u);
  EXPECT_EQ(binomial_saturated(5, 5), 1u);
  EXPECT_EQ(binomial_saturated(3, 4), 0u);
}

TEST(Binomial, SaturatesInsteadOfOverflow) {
  EXPECT_EQ(binomial_saturated(1000, 500),
            std::numeric_limits<std::size_t>::max());
}

TEST(GroupQuality, SumsInternalVolume) {
  comm::CommMatrix m(4);
  m.set(0, 1, 5.0);
  m.set(2, 3, 7.0);
  m.set(0, 2, 100.0);
  EXPECT_EQ(group_quality(m, {{0, 1}, {2, 3}}), 12.0);
  EXPECT_EQ(group_quality(m, {{0, 2}, {1, 3}}), 100.0);
}

TEST(GroupProcesses, AritzOneGivesSingletons) {
  comm::CommMatrix m = comm::uniform_matrix(5, 1.0);
  const Groups g = group_processes(m, 1);
  ASSERT_EQ(g.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(g[static_cast<std::size_t>(i)],
                                        std::vector<int>{i});
}

TEST(GroupProcesses, WholeSetWhenArityEqualsOrder) {
  comm::CommMatrix m = comm::uniform_matrix(6, 1.0);
  const Groups g = group_processes(m, 6);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(static_cast<int>(g[0].size()), 6);
}

TEST(GroupProcesses, RejectsNonDivisibleOrder) {
  comm::CommMatrix m = comm::uniform_matrix(5, 1.0);
  EXPECT_THROW(group_processes(m, 2), ContractError);
}

TEST(GroupProcesses, FindsObviousPairs) {
  // Entities 0-1, 2-3, 4-5 communicate heavily; the rest is noise.
  comm::CommMatrix m(6);
  m.set(0, 1, 100.0);
  m.set(2, 3, 100.0);
  m.set(4, 5, 100.0);
  m.set(0, 2, 1.0);
  m.set(1, 4, 1.0);
  const Groups g = group_processes(m, 2);
  expect_partition(g, 6, 2);
  EXPECT_EQ(group_quality(m, g), 300.0);
}

TEST(GroupProcesses, MatchesClusterStructure) {
  const comm::CommMatrix m = comm::clustered_matrix(12, 4, 50.0, 1.0);
  const Groups g = group_processes(m, 4);
  expect_partition(g, 12, 4);
  // Optimal grouping keeps every cluster together.
  EXPECT_EQ(group_quality(m, g), 3 * 6 * 50.0);
}

TEST(GroupProcesses, CompositeArityViaPrimeStages) {
  // Arity 4 = 2 * 2: make sure staged grouping still forms a partition and
  // finds the planted clusters.
  const comm::CommMatrix m = comm::clustered_matrix(16, 4, 10.0, 0.0);
  const Groups g = group_processes(m, 4);
  expect_partition(g, 16, 4);
  EXPECT_EQ(group_quality(m, g), 4 * 6 * 10.0);
}

TEST(GroupProcesses, DirectStageRescuesAwkwardRatios) {
  // The LK23 failure mode at 160/192 cores, miniaturized: clusters of 9
  // grouped with arity 8 (factors 2*2*2). One heavy "main" per cluster
  // (all-pairs intra-cluster affinity); the grouping must never place two
  // cluster-0 entities... more precisely, entities 0 and 9 (the cluster
  // representatives) must not share a group.
  const int clusters = 4;
  comm::CommMatrix m(clusters * 9);
  for (int c = 0; c < clusters; ++c)
    for (int a = 0; a < 9; ++a)
      for (int b = a + 1; b < 9; ++b)
        m.add(c * 9 + a, c * 9 + b, 1000.0);
  // Weak cross-cluster edges through "frontier" entities.
  for (int c = 0; c + 1 < clusters; ++c) m.add(c * 9 + 8, (c + 1) * 9, 1.0);

  const Groups g = group_processes(m, 4, /*candidate_limit=*/1);
  expect_partition(g, clusters * 9, 4);
  // 9 = 4 + 4 + 1 per cluster: at most the four leftovers may form mixed
  // groups; the other eight groups must stay inside one cluster each.
  int mixed = 0;
  for (const auto& grp : g) {
    const int cluster = grp.front() / 9;
    const bool pure = std::all_of(grp.begin(), grp.end(), [&](int e) {
      return e / 9 == cluster;
    });
    if (!pure) ++mixed;
  }
  EXPECT_LE(mixed, 1) << "staged grouping split the affinity clusters";
}

TEST(GroupProcesses, Deterministic) {
  const comm::CommMatrix m = comm::random_matrix(24, 0.4, 10.0, 3);
  const Groups a = group_processes(m, 4);
  const Groups b = group_processes(m, 4);
  EXPECT_EQ(a, b);
}

TEST(GroupProcesses, SeededEngineHandlesLargeInstances) {
  // Force the seeded engine with a tiny candidate limit.
  const comm::CommMatrix m = comm::clustered_matrix(32, 4, 20.0, 0.5);
  const Groups g = group_processes(m, 4, /*candidate_limit=*/1);
  expect_partition(g, 32, 4);
  // Seeded greedy must still find the planted clusters (they dominate).
  EXPECT_EQ(group_quality(m, g), 8 * 6 * 20.0);
}

TEST(GroupProcesses, ZeroMatrixStillPartitions) {
  comm::CommMatrix m(8);
  const Groups g = group_processes(m, 2);
  expect_partition(g, 8, 2);
}

TEST(Refine, FixesPlantedBadPartition) {
  // Two tight pairs, deliberately split.
  comm::CommMatrix m(4);
  m.set(0, 1, 100.0);
  m.set(2, 3, 100.0);
  Groups g = {{0, 2}, {1, 3}};
  const double gain = refine_groups(m, g);
  EXPECT_EQ(gain, 200.0);
  EXPECT_EQ(group_quality(m, g), 200.0);
  EXPECT_EQ(g, (Groups{{0, 1}, {2, 3}}));
}

TEST(Refine, NoChangeAtOptimum) {
  const comm::CommMatrix m = comm::clustered_matrix(8, 4, 10.0, 1.0);
  Groups g = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  EXPECT_EQ(refine_groups(m, g), 0.0);
  EXPECT_EQ(g, (Groups{{0, 1, 2, 3}, {4, 5, 6, 7}}));
}

TEST(Refine, NeverDecreasesQualityOnRandomInputs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const comm::CommMatrix m = comm::random_matrix(16, 0.5, 50.0, seed);
    // A deliberately naive partition.
    Groups g;
    for (int i = 0; i < 16; i += 4) g.push_back({i, i + 1, i + 2, i + 3});
    const double before = group_quality(m, g);
    const double gain = refine_groups(m, g, 10);
    EXPECT_GE(gain, 0.0);
    EXPECT_NEAR(group_quality(m, g), before + gain, 1e-9);
  }
}

TEST(Refine, Deterministic) {
  const comm::CommMatrix m = comm::random_matrix(12, 0.6, 30.0, 4);
  Groups a = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}};
  Groups b = a;
  refine_groups(m, a, 5);
  refine_groups(m, b, 5);
  EXPECT_EQ(a, b);
}

TEST(Exact, MatchesBruteForceOptimum) {
  const comm::CommMatrix m = comm::random_matrix(8, 0.8, 20.0, 11);
  const Groups best = group_processes_exact(m, 2);
  expect_partition(best, 8, 2);
  const Groups greedy = group_processes(m, 2);
  EXPECT_GE(group_quality(m, best) + 1e-12, group_quality(m, greedy));
}

TEST(Exact, RefusesLargeOrders) {
  comm::CommMatrix m(16);
  EXPECT_THROW(group_processes_exact(m, 2), ContractError);
}

// Property sweep: on random matrices the candidate-list greedy should land
// close to the exact optimum for small instances.
class GroupQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupQualitySweep, GreedyWithinHalfOfOptimum) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const comm::CommMatrix m = comm::random_matrix(8, 0.7, 10.0, seed);
  const double opt = group_quality(m, group_processes_exact(m, 4));
  const double greedy = group_quality(m, group_processes(m, 4));
  EXPECT_GE(greedy, 0.5 * opt);
  EXPECT_LE(greedy, opt + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupQualitySweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace orwl::treematch
