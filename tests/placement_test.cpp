// Unit tests for the placement policies and the runtime binder.

#include <gtest/gtest.h>

#include <set>

#include "comm/patterns.h"
#include "place/placement.h"
#include "support/assert.h"

namespace orwl::place {
namespace {

TEST(PolicyNames, RoundTrip) {
  for (Policy p : {Policy::None, Policy::Compact, Policy::Scatter,
                   Policy::Random, Policy::TreeMatch}) {
    EXPECT_EQ(parse_policy(to_string(p)), p);
  }
  EXPECT_EQ(parse_policy("nobind"), Policy::None);
  EXPECT_EQ(parse_policy("bind"), Policy::TreeMatch);
  EXPECT_THROW(parse_policy("garbage"), ContractError);
}

TEST(PolicyNames, ParseIsCaseInsensitive) {
  // CLI flags arrive in whatever case the user typed.
  EXPECT_EQ(parse_policy("TreeMatch"), Policy::TreeMatch);
  EXPECT_EQ(parse_policy("NONE"), Policy::None);
  EXPECT_EQ(parse_policy("Compact"), Policy::Compact);
  EXPECT_EQ(parse_policy("SCATTER"), Policy::Scatter);
  EXPECT_EQ(parse_policy("Bind"), Policy::TreeMatch);
  EXPECT_EQ(parse_policy("NoBind"), Policy::None);
}

TEST(PolicyNames, UnknownNamesThrowAndNameTheInput) {
  for (const char* bad : {"", " ", "treematch ", " none", "tree-match",
                          "best", "os"}) {
    try {
      (void)parse_policy(bad);
      FAIL() << "parse_policy(\"" << bad << "\") did not throw";
    } catch (const ContractError& e) {
      EXPECT_NE(std::string(e.what()).find("unknown placement policy"),
                std::string::npos)
          << e.what();
    }
  }
  // The message carries the offending name so CLI errors are actionable.
  try {
    (void)parse_policy("speedy");
    FAIL() << "parse_policy(\"speedy\") did not throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("speedy"), std::string::npos);
  }
}

TEST(ScatterOrder, SpreadsAcrossPackagesFirst) {
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const std::vector<int> order = scatter_order(topo);
  ASSERT_EQ(order.size(), 8u);
  // Consecutive scatter slots alternate packages: PU indices 0-3 are pack0,
  // 4-7 pack1.
  EXPECT_LT(order[0], 4);
  EXPECT_GE(order[1], 4);
  EXPECT_LT(order[2], 4);
  EXPECT_GE(order[3], 4);
  // It is a permutation.
  EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 8u);
}

TEST(ComputePlan, NoneLeavesUnbound) {
  const auto topo = topo::Topology::flat(4);
  const auto m = comm::uniform_matrix(4, 1.0);
  const Plan plan = compute_plan(Policy::None, topo, m);
  for (int pu : plan.compute_pu) EXPECT_EQ(pu, -1);
}

TEST(ComputePlan, CompactFillsSequentially) {
  const auto topo = topo::Topology::synthetic("pack:2 core:2 pu:1");
  const auto m = comm::uniform_matrix(3, 1.0);
  const Plan plan = compute_plan(Policy::Compact, topo, m);
  EXPECT_EQ(plan.compute_pu, (comm::Mapping{0, 1, 2}));
}

TEST(ComputePlan, CompactWrapsWhenOversubscribed) {
  const auto topo = topo::Topology::flat(2);
  const auto m = comm::uniform_matrix(5, 1.0);
  const Plan plan = compute_plan(Policy::Compact, topo, m);
  EXPECT_EQ(plan.compute_pu, (comm::Mapping{0, 1, 0, 1, 0}));
}

TEST(ComputePlan, RandomIsSeededPermutation) {
  const auto topo = topo::Topology::flat(8);
  const auto m = comm::uniform_matrix(8, 1.0);
  const Plan a = compute_plan(Policy::Random, topo, m, {}, 5);
  const Plan b = compute_plan(Policy::Random, topo, m, {}, 5);
  const Plan c = compute_plan(Policy::Random, topo, m, {}, 6);
  EXPECT_EQ(a.compute_pu, b.compute_pu);
  EXPECT_NE(a.compute_pu, c.compute_pu);
  EXPECT_EQ(std::set<int>(a.compute_pu.begin(), a.compute_pu.end()).size(),
            8u);
}

TEST(ComputePlan, TreeMatchProducesValidPlanAndDiagnostics) {
  const auto topo = topo::Topology::synthetic("pack:2 core:4 pu:1");
  const auto m = comm::clustered_matrix(8, 4, 10.0, 1.0);
  treematch::Options tm;
  tm.manage_control_threads = false;
  const Plan plan = compute_plan(Policy::TreeMatch, topo, m, tm);
  comm::validate_mapping(topo, plan.compute_pu, 1);
  EXPECT_FALSE(plan.treematch.level_groups.empty());
}

TEST(ComputePlan, RejectsEmptyMatrix) {
  const auto topo = topo::Topology::flat(2);
  EXPECT_THROW(compute_plan(Policy::Compact, topo, comm::CommMatrix(0)),
               ContractError);
}

TEST(ApplyPlan, BindsComputeAndControl) {
  const auto topo = topo::Topology::host();
  Runtime rt;
  const LocationId loc = rt.add_location(sizeof(int));
  const TaskId t = rt.add_task("t", [](TaskContext& ctx) {
    Handle& h = ctx.handle(0);
    auto bytes = h.acquire();
    as_span<int>(bytes)[0] = 11;
    h.release();
  });
  rt.add_handle(t, loc, AccessMode::Write);
  Plan plan;
  plan.compute_pu = {0};
  plan.control_pu = {-1};  // falls back to the compute PU
  apply_plan(plan, topo, rt);
  rt.run();
  EXPECT_EQ(as_span<int>(rt.location_data(loc))[0], 11);
}

TEST(ApplyPlan, RejectsShortPlan) {
  const auto topo = topo::Topology::flat(2);
  Runtime rt;
  rt.add_task("a", [](TaskContext&) {});
  rt.add_task("b", [](TaskContext&) {});
  Plan plan;
  plan.compute_pu = {0};  // only one entry for two tasks
  EXPECT_THROW(apply_plan(plan, topo, rt), ContractError);
}

TEST(ApplyPlan, EndToEndPoliciesRun) {
  // Each policy must produce a runnable configuration on the host machine.
  const auto topo = topo::Topology::host();
  for (Policy policy : {Policy::None, Policy::Compact, Policy::Scatter,
                        Policy::Random, Policy::TreeMatch}) {
    Runtime rt;
    const LocationId loc = rt.add_location(sizeof(long));
    for (int i = 0; i < 4; ++i) {
      rt.add_task("t" + std::to_string(i), [i](TaskContext& ctx) {
        Handle& h = ctx.handle(i);
        for (int round = 0; round < 5; ++round) {
          auto bytes = h.acquire();
          as_span<long>(bytes)[0] += 1;
          if (round == 4)
            h.release();
          else
            h.release_and_renew();
        }
      });
    }
    for (int i = 0; i < 4; ++i) rt.add_handle(i, loc, AccessMode::Write);
    treematch::Options tm;  // Auto control strategy, whatever the host has
    const Plan plan =
        compute_plan(policy, topo, rt.static_comm_matrix(), tm);
    apply_plan(plan, topo, rt);
    rt.run();
    EXPECT_EQ(as_span<long>(rt.location_data(loc))[0], 20)
        << "policy " << to_string(policy);
  }
}

}  // namespace
}  // namespace orwl::place
