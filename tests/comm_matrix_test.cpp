// Unit tests for comm::CommMatrix.

#include <gtest/gtest.h>

#include <sstream>

#include "comm/comm_matrix.h"
#include "support/assert.h"

namespace orwl::comm {
namespace {

TEST(CommMatrix, StartsZero) {
  CommMatrix m(4);
  EXPECT_EQ(m.order(), 4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_EQ(m.at(i, j), 0.0);
  EXPECT_EQ(m.total_volume(), 0.0);
}

TEST(CommMatrix, SetIsSymmetric) {
  CommMatrix m(3);
  m.set(0, 2, 5.0);
  EXPECT_EQ(m.at(0, 2), 5.0);
  EXPECT_EQ(m.at(2, 0), 5.0);
}

TEST(CommMatrix, AddAccumulatesSymmetrically) {
  CommMatrix m(3);
  m.add(1, 2, 2.0);
  m.add(2, 1, 3.0);
  EXPECT_EQ(m.at(1, 2), 5.0);
  EXPECT_EQ(m.at(2, 1), 5.0);
}

TEST(CommMatrix, DiagonalAddOnlyOnce) {
  CommMatrix m(2);
  m.add(1, 1, 4.0);
  EXPECT_EQ(m.at(1, 1), 4.0);
}

TEST(CommMatrix, RejectsNegativeWeight) {
  CommMatrix m(2);
  EXPECT_THROW(m.set(0, 1, -1.0), ContractError);
  EXPECT_THROW(m.add(0, 1, -1.0), ContractError);
}

TEST(CommMatrix, RejectsOutOfRange) {
  CommMatrix m(2);
  EXPECT_THROW((void)m.at(0, 2), ContractError);
  EXPECT_THROW(m.set(-1, 0, 1.0), ContractError);
}

TEST(CommMatrix, TotalVolumeCountsPairsOnce) {
  CommMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(1, 2, 2.0);
  m.set(0, 2, 4.0);
  EXPECT_EQ(m.total_volume(), 7.0);
}

TEST(CommMatrix, ResizeGrowKeepsValues) {
  CommMatrix m(2);
  m.set(0, 1, 3.0);
  m.resize(4);
  EXPECT_EQ(m.order(), 4);
  EXPECT_EQ(m.at(0, 1), 3.0);
  EXPECT_EQ(m.at(0, 3), 0.0);
}

TEST(CommMatrix, ResizeShrinkDropsValues) {
  CommMatrix m(3);
  m.set(0, 2, 3.0);
  m.set(0, 1, 1.0);
  m.resize(2);
  EXPECT_EQ(m.order(), 2);
  EXPECT_EQ(m.at(0, 1), 1.0);
}

TEST(CommMatrix, PaddedAddsZeroRows) {
  CommMatrix m(2);
  m.set(0, 1, 9.0);
  const CommMatrix p = m.padded(2);
  EXPECT_EQ(p.order(), 4);
  EXPECT_EQ(p.at(0, 1), 9.0);
  EXPECT_EQ(p.at(2, 3), 0.0);
  EXPECT_THROW(m.padded(-1), ContractError);
}

TEST(CommMatrix, AggregatedSumsGroupPairs) {
  // 4 entities in two groups {0,1} and {2,3}.
  CommMatrix m(4);
  m.set(0, 2, 1.0);
  m.set(0, 3, 2.0);
  m.set(1, 2, 3.0);
  m.set(1, 3, 4.0);
  m.set(0, 1, 100.0);  // intra-group: must not appear off-diagonal
  const CommMatrix a = m.aggregated({{0, 1}, {2, 3}});
  EXPECT_EQ(a.order(), 2);
  EXPECT_EQ(a.at(0, 1), 10.0);
  EXPECT_EQ(a.at(1, 0), 10.0);
  EXPECT_EQ(a.at(0, 0), 0.0);
}

TEST(CommMatrix, AggregatedSingletonsIsIdentity) {
  CommMatrix m(3);
  m.set(0, 1, 2.0);
  m.set(1, 2, 5.0);
  const CommMatrix a = m.aggregated({{0}, {1}, {2}});
  EXPECT_EQ(a.at(0, 1), 2.0);
  EXPECT_EQ(a.at(1, 2), 5.0);
  EXPECT_EQ(a.at(0, 2), 0.0);
}

TEST(CommMatrix, CsvRoundTrip) {
  CommMatrix m(3);
  m.set(0, 1, 1.5);
  m.set(1, 2, 2.25);
  std::stringstream ss;
  m.save_csv(ss);
  const CommMatrix back = CommMatrix::load_csv(ss);
  EXPECT_EQ(back, m);
}

TEST(CommMatrix, CsvLoadSymmetrizes) {
  std::stringstream ss("0,4\n2,0\n");
  const CommMatrix m = CommMatrix::load_csv(ss);
  EXPECT_EQ(m.order(), 2);
  EXPECT_EQ(m.at(0, 1), 3.0);
  EXPECT_EQ(m.at(1, 0), 3.0);
}

TEST(CommMatrix, CsvRejectsRaggedRows) {
  std::stringstream ss("0,1\n2\n");
  EXPECT_THROW(CommMatrix::load_csv(ss), ContractError);
}

TEST(CommMatrix, ZeroOrderAllowed) {
  CommMatrix m(0);
  EXPECT_EQ(m.order(), 0);
  EXPECT_EQ(m.total_volume(), 0.0);
}

}  // namespace
}  // namespace orwl::comm
