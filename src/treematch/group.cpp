#include "treematch/group.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/assert.h"
#include "support/cast.h"

namespace orwl::treematch {

namespace {

// Sort members inside groups and order groups by first member, so results
// are deterministic and easy to compare in tests.
void canonicalize(Groups& groups) {
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
}

// Internal communication volume of one candidate group.
double internal_volume(const comm::CommMatrix& m, const std::vector<int>& g) {
  double sum = 0.0;
  for (std::size_t x = 0; x < g.size(); ++x)
    for (std::size_t y = x + 1; y < g.size(); ++y)
      sum += m.at(g[x], g[y]);
  return sum;
}

// Candidate-enumeration engine: all C(n, a) groups, greedy disjoint pick.
Groups group_candidates(const comm::CommMatrix& m, int arity) {
  const int n = m.order();
  struct Cand {
    double vol;
    std::vector<int> members;
  };
  std::vector<Cand> cands;
  std::vector<int> cur(static_cast<std::size_t>(arity));

  // Iterative combination enumeration in lexicographic order.
  std::iota(cur.begin(), cur.end(), 0);
  while (true) {
    cands.push_back({internal_volume(m, cur), cur});
    int i = arity - 1;
    while (i >= 0 && cur[static_cast<std::size_t>(i)] == n - arity + i) --i;
    if (i < 0) break;
    ++cur[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < arity; ++j)
      cur[static_cast<std::size_t>(j)] = cur[static_cast<std::size_t>(j - 1)] + 1;
  }

  // Heaviest first; lexicographically smallest on ties (members are already
  // sorted by construction).
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) {
                     if (a.vol != b.vol) return a.vol > b.vol;
                     return a.members < b.members;
                   });

  std::vector<bool> taken(static_cast<std::size_t>(n), false);
  Groups out;
  for (const auto& c : cands) {
    const bool free = std::none_of(
        c.members.begin(), c.members.end(),
        [&](int e) { return taken[static_cast<std::size_t>(e)]; });
    if (!free) continue;
    for (int e : c.members) taken[static_cast<std::size_t>(e)] = true;
    out.push_back(c.members);
    if (ssize_of(out) == n / arity) break;
  }
  ORWL_CHECK(ssize_of(out) == n / arity);
  return out;
}

// Seeded-growth engine for large instances. Seeds are chosen by *remaining*
// affinity — the communication an entity still has towards unassigned
// entities. Entities whose partners were already consumed sink to the
// bottom of the seed order, so a cluster's leftovers group among
// themselves instead of stealing members from intact clusters (which
// cascades mixing through the whole partition).
Groups group_seeded(const comm::CommMatrix& m, int arity) {
  const int n = m.order();
  std::vector<bool> taken(static_cast<std::size_t>(n), false);

  // rem[i] = sum of m(i, j) over unassigned j; updated on every
  // assignment.
  std::vector<double> rem(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j) rem[static_cast<std::size_t>(i)] += m.at(i, j);
  auto consume = [&](int e) {
    taken[static_cast<std::size_t>(e)] = true;
    for (int i = 0; i < n; ++i)
      if (!taken[static_cast<std::size_t>(i)])
        rem[static_cast<std::size_t>(i)] -= m.at(i, e);
  };

  Groups out;
  for (int g = 0; g < n / arity; ++g) {
    int seed = -1;
    for (int i = 0; i < n; ++i) {
      if (taken[static_cast<std::size_t>(i)]) continue;
      if (seed < 0 || rem[static_cast<std::size_t>(i)] >
                          rem[static_cast<std::size_t>(seed)])
        seed = i;
    }
    ORWL_CHECK(seed >= 0);
    std::vector<int> group{seed};
    consume(seed);
    // Affinity of each free entity to the growing group.
    std::vector<double> gain(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
      if (!taken[static_cast<std::size_t>(i)])
        gain[static_cast<std::size_t>(i)] = m.at(i, seed);
    while (ssize_of(group) < arity) {
      int best = -1;
      for (int i = 0; i < n; ++i) {
        if (taken[static_cast<std::size_t>(i)]) continue;
        if (best < 0 ||
            gain[static_cast<std::size_t>(i)] >
                gain[static_cast<std::size_t>(best)] ||
            (gain[static_cast<std::size_t>(i)] ==
                 gain[static_cast<std::size_t>(best)] &&
             rem[static_cast<std::size_t>(i)] >
                 rem[static_cast<std::size_t>(best)]))
          best = i;
      }
      ORWL_CHECK(best >= 0);
      consume(best);
      group.push_back(best);
      for (int i = 0; i < n; ++i)
        if (!taken[static_cast<std::size_t>(i)])
          gain[static_cast<std::size_t>(i)] += m.at(i, best);
    }
    out.push_back(std::move(group));
  }
  return out;
}

// One stage: group the current units into `prime`-sized clusters, picking
// the engine by candidate count.
Groups group_one_stage(const comm::CommMatrix& m, int prime,
                       std::size_t candidate_limit) {
  if (prime == 1) {
    Groups singles;
    for (int i = 0; i < m.order(); ++i) singles.push_back({i});
    return singles;
  }
  const std::size_t cands = binomial_saturated(m.order(), prime);
  if (cands <= candidate_limit) return group_candidates(m, prime);
  return group_seeded(m, prime);
}

std::vector<int> prime_factors(int a) {
  std::vector<int> f;
  for (int p = 2; p * p <= a; ++p) {
    while (a % p == 0) {
      f.push_back(p);
      a /= p;
    }
  }
  if (a > 1) f.push_back(a);
  return f;
}

}  // namespace

double group_quality(const comm::CommMatrix& m, const Groups& groups) {
  double sum = 0.0;
  for (const auto& g : groups) sum += internal_volume(m, g);
  return sum;
}

std::size_t binomial_saturated(int n, int a) {
  if (a < 0 || a > n) return 0;
  a = std::min(a, n - a);
  std::size_t r = 1;
  for (int i = 1; i <= a; ++i) {
    const std::size_t num = static_cast<std::size_t>(n - a + i);
    if (r > std::numeric_limits<std::size_t>::max() / num)
      return std::numeric_limits<std::size_t>::max();
    r = r * num / static_cast<std::size_t>(i);
  }
  return r;
}

double refine_groups(const comm::CommMatrix& m, Groups& groups,
                     int max_sweeps) {
  // Affinity of entity e towards group g, excluding e itself.
  auto affinity = [&](int e, const std::vector<int>& g) {
    double sum = 0.0;
    for (int other : g)
      if (other != e) sum += m.at(e, other);
    return sum;
  };

  double improved_total = 0.0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double best_delta = 0.0;
    std::size_t best_ga = 0, best_gb = 0;
    std::size_t best_ia = 0, best_ib = 0;
    for (std::size_t ga = 0; ga < groups.size(); ++ga) {
      for (std::size_t gb = ga + 1; gb < groups.size(); ++gb) {
        for (std::size_t ia = 0; ia < groups[ga].size(); ++ia) {
          const int i = groups[ga][ia];
          const double i_in_a = affinity(i, groups[ga]);
          const double i_in_b = affinity(i, groups[gb]);
          for (std::size_t ib = 0; ib < groups[gb].size(); ++ib) {
            const int j = groups[gb][ib];
            // Swapping i and j: both lose their old group's affinity and
            // gain the other's, minus the double-counted i-j edge.
            const double delta = (i_in_b - m.at(i, j)) +
                                 (affinity(j, groups[ga]) - m.at(i, j)) -
                                 i_in_a - affinity(j, groups[gb]);
            if (delta > best_delta + 1e-12) {
              best_delta = delta;
              best_ga = ga;
              best_gb = gb;
              best_ia = ia;
              best_ib = ib;
            }
          }
        }
      }
    }
    if (best_delta <= 0.0) break;
    std::swap(groups[best_ga][best_ia], groups[best_gb][best_ib]);
    improved_total += best_delta;
  }
  canonicalize(groups);
  return improved_total;
}

Groups group_processes(const comm::CommMatrix& m, int arity,
                       std::size_t candidate_limit) {
  const int n = m.order();
  ORWL_CHECK_MSG(arity >= 1, "arity must be positive, got " << arity);
  ORWL_CHECK_MSG(n % arity == 0,
                 "order " << n << " not divisible by arity " << arity
                          << "; pad the matrix first");
  if (arity == 1) return group_one_stage(m, 1, candidate_limit);
  if (n == arity) {
    std::vector<int> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    return {all};
  }

  // Stage through the prime factorization: for arity 8, pair entities three
  // times; each stage works on the aggregated matrix of the previous stage.
  const std::vector<int> factors = prime_factors(arity);
  // units[u] = original entities contained in current unit u.
  Groups units;
  for (int i = 0; i < n; ++i) units.push_back({i});
  comm::CommMatrix cur = m;
  for (int prime : factors) {
    const Groups stage = group_one_stage(cur, prime, candidate_limit);
    Groups merged;
    for (const auto& g : stage) {
      std::vector<int> members;
      for (int unit : g) {
        const auto& src = units[static_cast<std::size_t>(unit)];
        members.insert(members.end(), src.begin(), src.end());
      }
      merged.push_back(std::move(members));
    }
    cur = cur.aggregated(stage);
    units = std::move(merged);
  }
  canonicalize(units);

  // For composite arities the staged composition can lock in early pairing
  // mistakes; a direct single-stage grouping at the full arity sometimes
  // wins. Compute both and keep the better under the common objective.
  if (factors.size() > 1) {
    Groups direct = group_one_stage(m, arity, candidate_limit);
    canonicalize(direct);
    if (group_quality(m, direct) > group_quality(m, units))
      units = std::move(direct);
  }
  // Final polish: greedy swap refinement (bounded; monotone in quality).
  refine_groups(m, units);
  return units;
}

namespace {

// Exhaustive search over all partitions into groups of size `arity`.
void exact_rec(const comm::CommMatrix& m, int arity, std::vector<bool>& taken,
               Groups& current, double vol, Groups& best, double& best_vol) {
  const int n = m.order();
  int first = -1;
  for (int i = 0; i < n; ++i)
    if (!taken[static_cast<std::size_t>(i)]) {
      first = i;
      break;
    }
  if (first < 0) {
    if (vol > best_vol) {
      best_vol = vol;
      best = current;
    }
    return;
  }
  // Enumerate all (arity-1)-subsets of the remaining entities to join
  // `first`; fixing the smallest free entity avoids counting permutations.
  std::vector<int> free;
  for (int i = first + 1; i < n; ++i)
    if (!taken[static_cast<std::size_t>(i)]) free.push_back(i);

  std::vector<int> pick(static_cast<std::size_t>(arity - 1));
  std::vector<int> idx(static_cast<std::size_t>(arity - 1));
  const int k = arity - 1;
  if (k == 0) {
    taken[static_cast<std::size_t>(first)] = true;
    current.push_back({first});
    exact_rec(m, arity, taken, current, vol, best, best_vol);
    current.pop_back();
    taken[static_cast<std::size_t>(first)] = false;
    return;
  }
  ORWL_CHECK(ssize_of(free) >= k);
  std::iota(idx.begin(), idx.end(), 0);
  while (true) {
    std::vector<int> group{first};
    for (int x = 0; x < k; ++x)
      group.push_back(free[static_cast<std::size_t>(
          idx[static_cast<std::size_t>(x)])]);
    const double add = internal_volume(m, group);
    for (int e : group) taken[static_cast<std::size_t>(e)] = true;
    current.push_back(group);
    exact_rec(m, arity, taken, current, vol + add, best, best_vol);
    current.pop_back();
    for (int e : group) taken[static_cast<std::size_t>(e)] = false;

    int i = k - 1;
    const int fn = static_cast<int>(free.size());
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == fn - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j)
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
}

}  // namespace

Groups group_processes_exact(const comm::CommMatrix& m, int arity) {
  const int n = m.order();
  ORWL_CHECK_MSG(n <= 12, "exact grouping limited to order <= 12");
  ORWL_CHECK_MSG(arity >= 1 && n % arity == 0,
                 "order " << n << " not divisible by arity " << arity);
  std::vector<bool> taken(static_cast<std::size_t>(n), false);
  Groups current;
  Groups best;
  double best_vol = -1.0;
  exact_rec(m, arity, taken, current, 0.0, best, best_vol);
  canonicalize(best);
  return best;
}

}  // namespace orwl::treematch
