#pragma once
// GroupProcesses (Algorithm 1, line 6): partition the n entities of a
// communication matrix into n/arity groups of exactly `arity`, maximizing
// the communication volume kept inside groups.
//
// Three engines, chosen by instance size:
//  * exact        — exhaustive partition search (tests / tiny instances),
//  * candidate    — enumerate all C(n, a) groups, sort by internal volume,
//                   greedily select disjoint ones (the TreeMatch approach),
//  * seeded       — for large instances: grow each group greedily from the
//                   heaviest unassigned entity.
// group_processes() additionally factorizes composite arities into prime
// stages (group into pairs three times for arity 8), which both bounds the
// candidate count and improves quality (TreeMatch "arity division").

#include <cstddef>
#include <vector>

#include "comm/comm_matrix.h"

namespace orwl::treematch {

using Groups = std::vector<std::vector<int>>;

/// Sum over groups of the intra-group communication volume. The objective
/// GroupProcesses maximizes.
double group_quality(const comm::CommMatrix& m, const Groups& groups);

/// Partition 0..m.order()-1 into groups of size `arity`.
/// Requires m.order() % arity == 0 (pad the matrix first).
/// `candidate_limit` bounds the candidate-enumeration engine; above it the
/// seeded engine is used. Deterministic: ties break towards smaller indices;
/// each group is sorted and groups are ordered by first member.
Groups group_processes(const comm::CommMatrix& m, int arity,
                       std::size_t candidate_limit = 50000);

/// Exhaustive optimum (exponential; requires m.order() <= 12). For tests.
Groups group_processes_exact(const comm::CommMatrix& m, int arity);

/// Local-search refinement: greedily apply the best entity swap between
/// two groups while it increases group_quality, up to `max_sweeps` passes.
/// Returns the total quality improvement (>= 0). Deterministic; group
/// canonical order is restored before returning. Called by
/// group_processes() as a final polish.
double refine_groups(const comm::CommMatrix& m, Groups& groups,
                     int max_sweeps = 3);

/// Number of `a`-subsets of `n` elements, saturating at SIZE_MAX.
std::size_t binomial_saturated(int n, int a);

}  // namespace orwl::treematch
