#pragma once
// Algorithm 1 of the paper: the TreeMatch-based mapping algorithm, extended
// with (a) oversubscription and (b) ORWL control-thread management.
//
//   Input:  T (topology tree), m (communication matrix), D (tree depth)
//   1  m <- extend_to_manage_control_threads(m)
//   2  T <- manage_oversubscription(T, m)
//   3  groups[1..D-1] = {}
//   4  foreach depth <- D-1 .. 1:           // from the leaves
//   5      p <- order of m
//   6      groups[depth] <- GroupProcesses(T, m, depth)
//   7      m <- AggregateComMatrix(m, groups[depth])
//   8  MapGroups(T, groups)
//
// map_threads() runs the whole pipeline and returns, for every thread of
// the input matrix, the logical PU index for its computation thread and
// (when managed) its control thread.

#include <vector>

#include "comm/comm_matrix.h"
#include "comm/metrics.h"
#include "topo/topology.h"
#include "treematch/group.h"

namespace orwl::treematch {

/// How ORWL control threads are handled (paper Sec. II):
///  * Hyperthread — on each core reserve one PU for control, one for compute;
///  * SpareCores  — extend the matrix so control threads map to spare cores;
///  * Unmanaged   — leave control threads to the OS scheduler;
///  * Auto        — first strategy that fits, in the order above.
enum class ControlStrategy { Auto, Hyperthread, SpareCores, Unmanaged };

const char* to_string(ControlStrategy s);

struct Options {
  ControlStrategy control = ControlStrategy::Auto;
  /// Disable the control-thread extension entirely (ablation baseline).
  bool manage_control_threads = true;
  /// Allow adding a virtual topology level when threads > PUs.
  bool allow_oversubscription = true;
  /// Candidate count bound for the exact-ish grouping engine.
  std::size_t candidate_limit = 50000;
  /// Weight of ctrl_i <-> comp_j edges relative to m(i, j) when extending
  /// the matrix for SpareCores; ctrl_i <-> comp_i gets the full row volume.
  double control_peer_factor = 0.25;
};

struct Result {
  /// compute_pu[t]: logical PU index (into topo.pus()) of thread t.
  comm::Mapping compute_pu;
  /// control_pu[t]: logical PU index of thread t's control thread, or -1
  /// when unmanaged.
  comm::Mapping control_pu;
  /// Strategy actually applied.
  ControlStrategy control_used = ControlStrategy::Unmanaged;
  /// True when a virtual level was added (threads share PUs).
  bool oversubscribed = false;
  /// Maximum computation threads mapped to one PU (1 unless oversubscribed).
  int threads_per_leaf = 1;
  /// Diagnostics: thread-id membership of the groups formed at each
  /// processed level, bottom-up.
  std::vector<Groups> level_groups;
};

/// Run Algorithm 1. `m.order()` is the number of computation threads.
/// Throws ContractError when an explicitly requested strategy does not fit
/// the topology, or when oversubscription is needed but disallowed.
Result map_threads(const topo::Topology& topo, const comm::CommMatrix& m,
                   const Options& opts = {});

}  // namespace orwl::treematch
