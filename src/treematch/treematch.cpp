#include "treematch/treematch.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "support/assert.h"
#include "support/cast.h"
#include "support/log.h"

namespace orwl::treematch {

const char* to_string(ControlStrategy s) {
  switch (s) {
    case ControlStrategy::Auto: return "auto";
    case ControlStrategy::Hyperthread: return "hyperthread";
    case ControlStrategy::SpareCores: return "spare-cores";
    case ControlStrategy::Unmanaged: return "unmanaged";
  }
  return "?";
}

namespace {

// A node of the group hierarchy built bottom-up. `width` is the number of
// working-leaf slots the node covers; `threads` lists the real thread ids
// inside (empty for padding).
struct HNode {
  int thread = -1;  // >= 0 for initial (single-thread) entities
  long width = 1;
  std::vector<int> threads;
  std::vector<HNode> kids;
};

long product(const std::vector<int>& v) {
  long p = 1;
  for (int a : v) p *= a;
  return p;
}

// True when the topology supports the hyperthread strategy: PUs grouped in
// cores of >= 2 (so one PU per core can be reserved for control threads).
bool hyperthread_fits(const topo::Topology& topo) {
  if (topo.depth() < 3) return false;  // need machine / core / pu at least
  const auto cores = topo.level(topo.depth() - 2);
  for (const topo::Object* core : cores)
    if (core->arity() < 2) return false;
  return true;
}

// Line 1 of Algorithm 1: extend m with one control thread per computation
// thread. Control thread i becomes entity p + i. Its affinity is dominated
// by its own computation thread (full row volume) and scaled-down copies of
// that thread's edges (it relays lock traffic with the same peers).
comm::CommMatrix extend_for_control(const comm::CommMatrix& m,
                                    double peer_factor) {
  const int p = m.order();
  comm::CommMatrix out = m.padded(p);
  for (int i = 0; i < p; ++i) {
    double row = 0.0;
    for (int j = 0; j < p; ++j)
      if (j != i) row += m.at(i, j);
    out.set(p + i, i, row > 0.0 ? row : 1.0);
    for (int j = 0; j < p; ++j)
      if (j != i && m.at(i, j) > 0.0)
        out.set(p + i, j, peer_factor * m.at(i, j));
  }
  return out;
}

// Collect real thread ids under `node` into the slot array starting at
// `offset`. Slots are working-tree leaves in DFS (= logical) order.
void flatten(const HNode& node, long offset, std::vector<int>& slots) {
  if (node.kids.empty()) {
    if (node.thread >= 0) {
      ORWL_CHECK(node.width == 1);
      slots[static_cast<std::size_t>(offset)] = node.thread;
    }
    return;
  }
  long off = offset;
  for (const HNode& kid : node.kids) {
    flatten(kid, off, slots);
    off += kid.width;
  }
}

}  // namespace

Result map_threads(const topo::Topology& topo, const comm::CommMatrix& m,
                   const Options& opts) {
  const int p = m.order();
  ORWL_CHECK_MSG(p >= 1, "empty communication matrix");
  ORWL_CHECK_MSG(topo.num_pus() >= 1, "topology has no PUs");

  // TreeMatch operates on balanced trees. Detected irregular machines fall
  // back to a flat view (mapping still valid, hierarchy unused).
  std::vector<int> arities;
  bool flat_fallback = false;
  if (topo.is_balanced()) {
    arities = topo.arities();
  } else {
    ORWL_LOG(Warn) << "unbalanced topology: TreeMatch falls back to a flat "
                      "single-level view";
    arities = {topo.num_pus()};
    flat_fallback = true;
  }

  const long num_leaves = product(arities);
  ORWL_CHECK(flat_fallback || num_leaves == topo.num_pus());

  // --- Line 1: control-thread strategy selection + matrix extension. ----
  ControlStrategy strategy = opts.control;
  if (!opts.manage_control_threads) strategy = ControlStrategy::Unmanaged;
  const bool ht_ok = !flat_fallback && hyperthread_fits(topo);
  const bool spare_ok = num_leaves >= 2L * p;
  if (strategy == ControlStrategy::Auto) {
    strategy = ht_ok        ? ControlStrategy::Hyperthread
               : spare_ok   ? ControlStrategy::SpareCores
                            : ControlStrategy::Unmanaged;
  } else if (strategy == ControlStrategy::Hyperthread) {
    ORWL_CHECK_MSG(ht_ok,
                   "hyperthread strategy requested but cores do not have "
                   ">= 2 PUs each");
  } else if (strategy == ControlStrategy::SpareCores) {
    ORWL_CHECK_MSG(spare_ok, "spare-cores strategy requested but "
                                 << num_leaves << " PUs < 2 x " << p
                                 << " threads");
  }

  // Working tree/matrix depend on the strategy.
  std::vector<int> work_arities = arities;
  int smt = 1;  // PUs per core consumed by the hyperthread strategy
  comm::CommMatrix work = m;
  if (strategy == ControlStrategy::Hyperthread) {
    smt = work_arities.back();
    work_arities.pop_back();  // leaves of the working tree are cores
  } else if (strategy == ControlStrategy::SpareCores) {
    work = extend_for_control(m, opts.control_peer_factor);
  }
  if (work_arities.empty()) work_arities = {1};
  const long work_leaves = product(work_arities);

  // --- Line 2: manage oversubscription. ---------------------------------
  Result res;
  res.control_used = strategy;
  const int q = work.order();
  if (q > work_leaves) {
    ORWL_CHECK_MSG(opts.allow_oversubscription,
                   q << " threads exceed " << work_leaves
                     << " computing resources and oversubscription is "
                        "disabled");
    const int k =
        static_cast<int>((q + work_leaves - 1) / work_leaves);
    work_arities.push_back(k);
    res.oversubscribed = true;
    res.threads_per_leaf = k;
  }

  // --- Lines 3..7: bottom-up grouping. -----------------------------------
  std::vector<HNode> entities;
  entities.reserve(static_cast<std::size_t>(q));
  for (int t = 0; t < q; ++t) {
    HNode n;
    n.thread = t;
    n.threads = {t};
    entities.push_back(std::move(n));
  }
  comm::CommMatrix cur = work;

  for (std::size_t level = work_arities.size(); level-- > 0;) {
    const int a = work_arities[level];
    // Pad entities (and the matrix) to a multiple of the arity.
    const long width = entities.empty() ? 1 : entities.front().width;
    while (ssize_of(entities) % a != 0) {
      HNode pad;
      pad.width = width;
      entities.push_back(std::move(pad));
    }
    if (cur.order() < ssize_of(entities))
      cur = cur.padded(static_cast<int>(ssize_of(entities)) - cur.order());

    Groups groups = group_processes(cur, a, opts.candidate_limit);

    // Merge entities according to the groups.
    std::vector<HNode> next;
    Groups thread_groups;
    next.reserve(groups.size());
    for (const auto& g : groups) {
      HNode parent;
      parent.width = 0;
      for (int member : g) {
        HNode& child = entities[static_cast<std::size_t>(member)];
        parent.width += child.width;
        parent.threads.insert(parent.threads.end(), child.threads.begin(),
                              child.threads.end());
        parent.kids.push_back(std::move(child));
      }
      thread_groups.push_back(parent.threads);
      next.push_back(std::move(parent));
    }
    res.level_groups.push_back(std::move(thread_groups));
    cur = cur.aggregated(groups);
    entities = std::move(next);
  }

  // --- Line 8: MapGroups — flatten the hierarchy onto the leaves. --------
  const long total_slots = product(work_arities);
  std::vector<int> slots(static_cast<std::size_t>(total_slots), -1);
  {
    long off = 0;
    for (const HNode& top : entities) {
      flatten(top, off, slots);
      off += top.width;
    }
    ORWL_CHECK(off <= total_slots);
  }

  // Translate slots into per-thread PU indices.
  const int k = res.threads_per_leaf;
  res.compute_pu.assign(static_cast<std::size_t>(p), -1);
  res.control_pu.assign(static_cast<std::size_t>(p), -1);
  for (long s = 0; s < total_slots; ++s) {
    const int id = slots[static_cast<std::size_t>(s)];
    if (id < 0) continue;
    const long work_leaf = s / k;
    int compute = -1;
    int control = -1;
    if (strategy == ControlStrategy::Hyperthread) {
      compute = static_cast<int>(work_leaf * smt);
      control = static_cast<int>(work_leaf * smt + 1);
    } else {
      compute = static_cast<int>(work_leaf);
    }
    if (id < p) {
      res.compute_pu[static_cast<std::size_t>(id)] = compute;
      if (control >= 0) res.control_pu[static_cast<std::size_t>(id)] = control;
    } else {
      // SpareCores: entity p + i is the control thread of thread i.
      res.control_pu[static_cast<std::size_t>(id - p)] = compute;
    }
  }

  for (int t = 0; t < p; ++t)
    ORWL_CHECK_MSG(res.compute_pu[static_cast<std::size_t>(t)] >= 0,
                   "thread " << t << " was not mapped");
  return res;
}

}  // namespace orwl::treematch
