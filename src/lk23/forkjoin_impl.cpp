#include "lk23/forkjoin_impl.h"

#include "baselines/fork_join.h"
#include "support/assert.h"
#include "support/time.h"

namespace orwl::lk23 {

ForkJoinRunResult run_forkjoin(const Spec& spec, int num_threads,
                               const topo::Topology* topo) {
  ORWL_CHECK_MSG(spec.n >= 2 && spec.bx >= 1 && spec.by >= 1 &&
                     spec.n % spec.bx == 0 && spec.n % spec.by == 0,
                 "block grid must divide the matrix");
  ORWL_CHECK_MSG(num_threads >= 1, "need at least one thread");

  const long n = spec.n;
  const int B = spec.bx * spec.by;
  const long brows = n / spec.by;
  const long bcols = n / spec.bx;

  std::vector<std::optional<topo::Bitmap>> cpusets;
  if (topo != nullptr) {
    const auto pus = topo->pus();
    cpusets.resize(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t)
      cpusets[static_cast<std::size_t>(t)] =
          pus[static_cast<std::size_t>(t % topo->num_pus())]->cpuset;
  }
  baselines::ForkJoinPool pool(num_threads, std::move(cpusets));

  // Serial initialization — the naive first-touch pattern of the paper's
  // OpenMP baseline.
  std::vector<double> za(static_cast<std::size_t>(n * n));
  BlockView whole{za.data(), n, n, n, 0, 0, n};
  init_block(whole);

  std::vector<Halo> halos(static_cast<std::size_t>(B));
  for (auto& h : halos) {
    h.north.resize(static_cast<std::size_t>(bcols));
    h.south.resize(static_cast<std::size_t>(bcols));
    h.west.resize(static_cast<std::size_t>(brows));
    h.east.resize(static_cast<std::size_t>(brows));
  }

  auto block_origin = [&](int b) {
    return std::pair<long, long>{(b / spec.bx) * brows,
                                 (b % spec.bx) * bcols};
  };
  auto at = [&](long j, long k) -> double {
    if (j < 0 || k < 0 || j >= n || k >= n) return 0.0;
    return za[static_cast<std::size_t>(j * n + k)];
  };

  WallTimer timer;
  for (int it = 0; it < spec.iterations; ++it) {
    // Phase 1: snapshot every block's frontier (previous-iteration values).
    pool.parallel_for_each(0, B, [&](long b) {
      const auto [row0, col0] = block_origin(static_cast<int>(b));
      Halo& h = halos[static_cast<std::size_t>(b)];
      for (long c = 0; c < bcols; ++c) {
        h.north[static_cast<std::size_t>(c)] = at(row0 - 1, col0 + c);
        h.south[static_cast<std::size_t>(c)] = at(row0 + brows, col0 + c);
      }
      for (long r = 0; r < brows; ++r) {
        h.west[static_cast<std::size_t>(r)] = at(row0 + r, col0 - 1);
        h.east[static_cast<std::size_t>(r)] = at(row0 + r, col0 + bcols);
      }
      h.nw = at(row0 - 1, col0 - 1);
      h.ne = at(row0 - 1, col0 + bcols);
      h.sw = at(row0 + brows, col0 - 1);
      h.se = at(row0 + brows, col0 + bcols);
    });
    // Phase 2: sweep all blocks in place.
    pool.parallel_for_each(0, B, [&](long b) {
      const auto [row0, col0] = block_origin(static_cast<int>(b));
      BlockView blk{za.data() + row0 * n + col0, n, brows, bcols, row0, col0,
                    n};
      sweep_block(blk, halos[static_cast<std::size_t>(b)]);
    });
  }

  ForkJoinRunResult res;
  res.seconds = timer.seconds();
  res.num_threads = num_threads;
  res.za = std::move(za);
  return res;
}

}  // namespace orwl::lk23
