#include "lk23/lk23_program.h"

#include <array>
#include <cstring>
#include <numeric>

#include "lk23/orwl_impl.h"  // Dir, opposite, dir_delta, face geometry
#include "sim/lk23_model.h"  // block_grid
#include "support/assert.h"

namespace orwl::lk23 {

namespace {

// Priming ranks of the canonical liveness order (see lk23_program.h).
constexpr int kRankBlockWrite = 0;
constexpr int kRankFopRead = 1;
constexpr int kRankFopWrite = 2;
constexpr int kRankHaloRead = 3;

}  // namespace

ProgramDef define_lk23_program(Program& p, const Spec& spec,
                               double flops_per_point,
                               double bytes_per_point) {
  ORWL_CHECK_MSG(spec.n >= 2 && spec.bx >= 1 && spec.by >= 1 &&
                     spec.n % spec.bx == 0 && spec.n % spec.by == 0,
                 "block grid must divide the matrix");
  ORWL_CHECK_MSG(spec.iterations >= 0, "negative iteration count");

  ProgramDef def;
  def.spec = spec;
  const int B = spec.bx * spec.by;
  const long brows = spec.n / spec.by;
  const long bcols = spec.n / spec.bx;
  const long n = spec.n;
  const int T = spec.iterations;
  const auto points_per_block = static_cast<double>(brows * bcols);

  auto has_neighbour = [&](int b, int dir) {
    const auto [dx, dy] = dir_delta(dir);
    const int nx = b % spec.bx + dx;
    const int ny = b / spec.bx + dy;
    return nx >= 0 && ny >= 0 && nx < spec.bx && ny < spec.by;
  };
  auto neighbour_id = [&](int b, int dir) {
    const auto [dx, dy] = dir_delta(dir);
    return (b / spec.bx + dy) * spec.bx + (b % spec.bx + dx);
  };

  // --- locations -----------------------------------------------------------
  def.blocks.reserve(static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b)
    def.blocks.push_back(p.location<double>(
        static_cast<std::size_t>(brows * bcols), "block" + std::to_string(b)));
  // Every block owns 8 frontier locations (paper Sec. III); exports at the
  // global border simply have no consumer.
  std::vector<std::array<Location<double>, kDirs>> fronts(
      static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b)
    for (int d = 0; d < kDirs; ++d)
      fronts[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)] =
          p.location<double>(static_cast<std::size_t>(face_elems(spec, d)),
                             "front" + std::to_string(b) + "d" +
                                 std::to_string(d));

  // --- main operations -----------------------------------------------------
  for (int b = 0; b < B; ++b) {
    const Location<double> block = def.blocks[static_cast<std::size_t>(b)];
    const long row0 = (b / spec.bx) * brows;
    const long col0 = (b % spec.bx) * bcols;

    // The halo reads, indexed by the direction the neighbour lies in.
    std::array<Location<double>, kDirs> halo_src{};
    TaskBuilder builder = p.task("main" + std::to_string(b));
    builder.writes(block, {.rank = kRankBlockWrite});
    for (int d = 0; d < kDirs; ++d) {
      if (!has_neighbour(b, d)) continue;
      const int nb = neighbour_id(b, d);
      // The neighbour in direction d exports towards us via its frontier
      // location for the opposite direction.
      halo_src[static_cast<std::size_t>(d)] =
          fronts[static_cast<std::size_t>(nb)]
                [static_cast<std::size_t>(opposite(d))];
      builder.reads(halo_src[static_cast<std::size_t>(d)],
                    {.rank = kRankHaloRead});
    }

    Halo halo;
    halo.north.resize(static_cast<std::size_t>(bcols));
    halo.south.resize(static_cast<std::size_t>(bcols));
    halo.west.resize(static_cast<std::size_t>(brows));
    halo.east.resize(static_cast<std::size_t>(brows));

    builder.iterations(T + 1)  // round 0 initializes, rounds 1..T sweep
        .cost(points_per_block * flops_per_point,
              points_per_block * bytes_per_point)
        .body([block, halo_src, halo, brows, bcols, row0, col0,
               n](Step& s) mutable {
          if (s.first()) {
            // Initialize the block under the first write grant (owner
            // first touch).
            Section<double> za = s.write(block);
            init_block({za.data(), bcols, brows, bcols, row0, col0, n});
            return;
          }
          // Gather the previous iteration's frontiers into the halo.
          for (int d = 0; d < kDirs; ++d) {
            const Location<double> src = halo_src[static_cast<std::size_t>(d)];
            if (!src.valid()) continue;
            s.read(src, [&](std::span<const double> face) {
              switch (d) {
                case N: std::copy(face.begin(), face.end(),
                                  halo.north.begin());
                        break;
                case S: std::copy(face.begin(), face.end(),
                                  halo.south.begin());
                        break;
                case W: std::copy(face.begin(), face.end(),
                                  halo.west.begin());
                        break;
                case E: std::copy(face.begin(), face.end(),
                                  halo.east.begin());
                        break;
                case NW: halo.nw = face[0]; break;
                case NE: halo.ne = face[0]; break;
                case SW: halo.sw = face[0]; break;
                case SE: halo.se = face[0]; break;
              }
            });
          }
          // Sweep under the write grant.
          Section<double> za = s.write(block);
          sweep_block({za.data(), bcols, brows, bcols, row0, col0, n}, halo);
        });
  }

  // --- frontier operations -------------------------------------------------
  for (int b = 0; b < B; ++b) {
    for (int d = 0; d < kDirs; ++d) {
      const Location<double> block = def.blocks[static_cast<std::size_t>(b)];
      const Location<double> front =
          fronts[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)];
      const auto face_bytes = static_cast<double>(front.bytes());
      p.task("fop" + std::to_string(b) + "d" + std::to_string(d))
          .reads(block, {.rank = kRankFopRead,
                         .touch_bytes = front.bytes()})
          .writes(front, {.rank = kRankFopWrite})
          .iterations(T)
          // Copying the frontier is ~1 flop per byte moved, touched twice.
          .cost(face_bytes, 2.0 * face_bytes)
          .body([block, front, brows, bcols, d,
                 face = std::vector<double>(front.count())](Step& s) mutable {
            s.read(block, [&](std::span<const double> za) {
              copy_face(za.data(), brows, bcols, d, face.data());
            });
            s.write(front, [&](std::span<double> out) {
              std::memcpy(out.data(), face.data(),
                          face.size() * sizeof(double));
            });
          });
    }
  }

  def.num_tasks = p.num_tasks();
  return def;
}

std::vector<double> fetch_field(Backend& backend, const ProgramDef& def) {
  const Spec& spec = def.spec;
  const long n = spec.n;
  const long brows = n / spec.by;
  const long bcols = n / spec.bx;
  std::vector<double> za(static_cast<std::size_t>(n * n));
  for (int b = 0; b < spec.bx * spec.by; ++b) {
    const long row0 = (b / spec.bx) * brows;
    const long col0 = (b % spec.bx) * bcols;
    const std::vector<double> src =
        backend.fetch(def.blocks[static_cast<std::size_t>(b)]);
    for (long r = 0; r < brows; ++r)
      std::memcpy(za.data() + (row0 + r) * n + col0, src.data() + r * bcols,
                  static_cast<std::size_t>(bcols) * sizeof(double));
  }
  return za;
}

Spec spec_for_tasks(long n, int iterations, int tasks) {
  Spec spec;
  spec.iterations = iterations;
  const auto [bx, by] = sim::block_grid(tasks);
  spec.bx = bx;
  spec.by = by;
  const long step = std::lcm(static_cast<long>(bx), static_cast<long>(by));
  const long down = n / step * step;
  const long up = down + step;
  spec.n = (n - down <= up - n && down >= step) ? down : up;
  return spec;
}

RunReport run_lk23_program(const Spec& spec, place::Policy policy,
                           Backend& backend, ProgramDef* def_out) {
  Program p;
  ProgramDef def = define_lk23_program(p, spec);
  p.place(policy);
  const RunReport rep = p.run(backend);
  if (def_out != nullptr) *def_out = std::move(def);
  return rep;
}

}  // namespace orwl::lk23
