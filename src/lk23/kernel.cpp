#include "lk23/kernel.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace orwl::lk23 {

void init_block(const BlockView& b) {
  ORWL_CHECK(b.za != nullptr && b.stride >= b.cols);
  for (long r = 0; r < b.rows; ++r)
    for (long c = 0; c < b.cols; ++c)
      b.za[r * b.stride + c] = initial_za(b.row0 + r, b.col0 + c);
}

void sweep_block(const BlockView& b, const Halo& halo) {
  ORWL_CHECK(b.za != nullptr && b.stride >= b.cols);
  ORWL_CHECK_MSG(static_cast<long>(halo.north.size()) >= b.cols &&
                     static_cast<long>(halo.south.size()) >= b.cols &&
                     static_cast<long>(halo.west.size()) >= b.rows &&
                     static_cast<long>(halo.east.size()) >= b.rows,
                 "halo buffers smaller than block faces");
  for (long r = 0; r < b.rows; ++r) {
    const long gj = b.row0 + r;
    if (gj == 0 || gj == b.n - 1) continue;  // fixed global border
    double* row = b.za + r * b.stride;
    const double* up_row =
        r > 0 ? b.za + (r - 1) * b.stride : halo.north.data();
    const double* down_row =
        r < b.rows - 1 ? b.za + (r + 1) * b.stride : halo.south.data();
    for (long c = 0; c < b.cols; ++c) {
      const long gk = b.col0 + c;
      if (gk == 0 || gk == b.n - 1) continue;
      const double up = up_row[c];
      const double down = down_row[c];
      const double left = c > 0 ? row[c - 1] : halo.west[static_cast<std::size_t>(r)];
      const double right =
          c < b.cols - 1 ? row[c + 1] : halo.east[static_cast<std::size_t>(r)];
      const double qa = down * coef_zr(gj, gk) + up * coef_zb(gj, gk) +
                        right * coef_zu(gj, gk) + left * coef_zv(gj, gk) +
                        coef_zz(gj, gk);
      row[c] += kRelax * (qa - row[c]);
    }
  }
}

std::vector<double> blocked_reference(const Spec& spec) {
  ORWL_CHECK_MSG(spec.n >= 2 && spec.iterations >= 0, "bad LK23 spec");
  ORWL_CHECK_MSG(spec.bx >= 1 && spec.by >= 1 && spec.n % spec.bx == 0 &&
                     spec.n % spec.by == 0,
                 "block grid " << spec.bx << "x" << spec.by
                               << " must divide n=" << spec.n);
  const long n = spec.n;
  const long brows = n / spec.by;
  const long bcols = n / spec.bx;
  std::vector<double> za(static_cast<std::size_t>(n * n));
  std::vector<double> prev(static_cast<std::size_t>(n * n));

  BlockView whole{za.data(), n, n, n, 0, 0, n};
  init_block(whole);

  Halo halo;
  halo.north.resize(static_cast<std::size_t>(bcols));
  halo.south.resize(static_cast<std::size_t>(bcols));
  halo.west.resize(static_cast<std::size_t>(brows));
  halo.east.resize(static_cast<std::size_t>(brows));

  for (int it = 0; it < spec.iterations; ++it) {
    prev = za;  // frontier snapshot (previous iteration)
    for (int byi = 0; byi < spec.by; ++byi) {
      for (int bxi = 0; bxi < spec.bx; ++bxi) {
        const long row0 = byi * brows;
        const long col0 = bxi * bcols;
        BlockView blk{za.data() + row0 * n + col0, n, brows, bcols,
                      row0, col0, n};
        auto prev_at = [&](long j, long k) -> double {
          if (j < 0 || k < 0 || j >= n || k >= n) return 0.0;
          return prev[static_cast<std::size_t>(j * n + k)];
        };
        for (long c = 0; c < bcols; ++c) {
          halo.north[static_cast<std::size_t>(c)] = prev_at(row0 - 1, col0 + c);
          halo.south[static_cast<std::size_t>(c)] =
              prev_at(row0 + brows, col0 + c);
        }
        for (long r = 0; r < brows; ++r) {
          halo.west[static_cast<std::size_t>(r)] = prev_at(row0 + r, col0 - 1);
          halo.east[static_cast<std::size_t>(r)] =
              prev_at(row0 + r, col0 + bcols);
        }
        sweep_block(blk, halo);
      }
    }
  }
  return za;
}

std::vector<double> sequential_kernel(long n, int iterations) {
  ORWL_CHECK_MSG(n >= 2 && iterations >= 0, "bad kernel size");
  std::vector<double> za(static_cast<std::size_t>(n * n));
  BlockView whole{za.data(), n, n, n, 0, 0, n};
  init_block(whole);
  for (int it = 0; it < iterations; ++it) {
    for (long j = 1; j < n - 1; ++j) {
      double* row = za.data() + j * n;
      for (long k = 1; k < n - 1; ++k) {
        const double qa = row[n + k] * coef_zr(j, k) +
                          row[-n + k] * coef_zb(j, k) +
                          row[k + 1] * coef_zu(j, k) +
                          row[k - 1] * coef_zv(j, k) + coef_zz(j, k);
        row[k] += kRelax * (qa - row[k]);
      }
    }
  }
  return za;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  ORWL_CHECK_MSG(a.size() == b.size(), "size mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace orwl::lk23
