#pragma once
// Livermore Kernel 23 expressed ONCE as an orwl::Program — the single
// program definition shared by the native and the simulated Figure 1
// benches (and the stencil example). The decomposition is the paper's
// (Sec. III): per block one main operation (init + Gauss–Seidel sweeps)
// plus eight frontier sub-operations exporting the block's faces, all
// communicating through ordered-RW-lock locations.
//
// Handle priming uses explicit ranks to reproduce the canonical liveness
// order of the hand-written runtime version bit for bit:
//   rank 0 — every main's write on its block,
//   rank 1 — every frontier op's read on its block,
//   rank 2 — every frontier op's write on its frontier location,
//   rank 3 — every main's reads on its neighbours' frontier locations.
//
// Running the definition on RuntimeBackend therefore produces exactly the
// field of lk23::run_orwl (and of the blocked sequential reference);
// running it on SimBackend reproduces the analytic Figure-1 model.

#include <vector>

#include "lk23/kernel.h"
#include "orwl/backend.h"
#include "orwl/program.h"

namespace orwl::lk23 {

/// Typed references into the shared definition, for result extraction.
struct ProgramDef {
  Spec spec;
  /// block b = y * bx + x, each holding (n/by)×(n/bx) doubles.
  std::vector<Location<double>> blocks;
  int num_tasks = 0;
};

/// THE shared LK23 program definition: build `spec` into `p`. The cost
/// annotations (flops / bytes per stencil point) only matter to
/// SimBackend; the defaults match the calibrated Figure-1 model.
ProgramDef define_lk23_program(Program& p, const Spec& spec,
                               double flops_per_point = 10.0,
                               double bytes_per_point = 48.0);

/// Assemble the full n×n field from a backend that ran the definition.
std::vector<double> fetch_field(Backend& backend, const ProgramDef& def);

/// Convenience for the benches: define, place with `policy`, run on `be`.
RunReport run_lk23_program(const Spec& spec, place::Policy policy,
                           Backend& backend, ProgramDef* def_out = nullptr);

/// Spec for `tasks` blocks (near-square sim::block_grid factorization) at
/// the matrix size nearest to `n` that the grid divides evenly — the real
/// decomposition needs exact divisibility where the legacy analytic model
/// silently truncated; both land within 0.1% of n.
Spec spec_for_tasks(long n, int iterations, int tasks);

}  // namespace orwl::lk23
