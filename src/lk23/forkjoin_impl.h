#pragma once
// Fork-join (OpenMP-equivalent) implementation of Livermore Kernel 23:
// the same block decomposition and halo semantics as the ORWL version,
// executed as two statically-scheduled parallel-for phases per iteration
// (snapshot frontiers, then sweep) with implicit barriers — exactly what
// `#pragma omp parallel for` over blocks does. Numerically bit-identical
// to blocked_reference() and the ORWL implementation.

#include <optional>
#include <vector>

#include "lk23/kernel.h"
#include "topo/topology.h"

namespace orwl::lk23 {

struct ForkJoinRunResult {
  std::vector<double> za;
  double seconds = 0.0;
  int num_threads = 0;
};

/// Run with `num_threads` pool threads. When `topo` is given, workers are
/// bound compactly to its PUs ("OpenMP + OMP_PROC_BIND" variant); otherwise
/// they stay unbound like the paper's baseline.
ForkJoinRunResult run_forkjoin(const Spec& spec, int num_threads,
                               const topo::Topology* topo = nullptr);

}  // namespace orwl::lk23
