#pragma once
// Livermore Kernel 23 — 2-D implicit hydrodynamics fragment (LINPACK /
// Livermore loops):
//
//   qa = za[j+1][k]*zr[j][k] + za[j-1][k]*zb[j][k]
//      + za[j][k+1]*zu[j][k] + za[j][k-1]*zv[j][k] + zz[j][k];
//   za[j][k] += 0.175 * (qa - za[j][k]);
//
// swept in place (Gauss–Seidel order) over the interior; the global border
// is fixed. The coefficient arrays zr/zb/zu/zv/zz are pure functions of the
// global index so every implementation sees identical data without storing
// five N×N arrays.
//
// Parallel semantics (all block implementations, and the blocked
// reference): values *inside* the sweeping block follow in-place GS order;
// values *outside* come from a frontier snapshot of the previous iteration
// (block-Jacobi coupling). This makes the result independent of block
// execution order, so ORWL and fork-join runs are bit-identical to the
// blocked reference.

#include <cstdint>
#include <span>
#include <vector>

namespace orwl::lk23 {

/// Relaxation factor of the kernel.
inline constexpr double kRelax = 0.175;

/// Coefficient fields (cheap integer-hash formulas; sum < 1 for stability).
inline double coef_zr(long j, long k) {
  return 0.10 + 0.02 * static_cast<double>((j * 3 + k * 7) & 15) / 15.0;
}
inline double coef_zb(long j, long k) {
  return 0.10 + 0.02 * static_cast<double>((j * 5 + k * 3) & 15) / 15.0;
}
inline double coef_zu(long j, long k) {
  return 0.10 + 0.02 * static_cast<double>((j + k * 11) & 15) / 15.0;
}
inline double coef_zv(long j, long k) {
  return 0.10 + 0.02 * static_cast<double>((j * 13 + k) & 15) / 15.0;
}
inline double coef_zz(long j, long k) {
  return 0.02 * static_cast<double>((j ^ k) & 31) / 31.0;
}

/// Initial za value at global (j, k).
inline double initial_za(long j, long k) {
  const auto h = static_cast<std::uint64_t>(j) * 2654435761ull +
                 static_cast<std::uint64_t>(k) * 40503ull;
  return static_cast<double>(h & 1023ull) / 1024.0;
}

/// Frontier snapshot around a block (previous-iteration values). Only the
/// four edges feed the 5-point stencil; the corners are carried because the
/// ORWL decomposition exchanges all 8 directions (paper Sec. III) — they
/// are validated but not consumed by the kernel.
struct Halo {
  std::vector<double> north, south;  ///< size = block cols
  std::vector<double> west, east;    ///< size = block rows
  double nw = 0, ne = 0, sw = 0, se = 0;
};

/// Geometry of one block inside the global N×N matrix.
struct BlockView {
  double* za = nullptr;  ///< first element of the block
  long stride = 0;       ///< row stride of the underlying storage
  long rows = 0, cols = 0;
  long row0 = 0, col0 = 0;  ///< global position of the block's (0, 0)
  long n = 0;               ///< global matrix size
};

/// One in-place GS sweep over a block, using `halo` for out-of-block
/// neighbours. Global border points are left untouched.
void sweep_block(const BlockView& block, const Halo& halo);

/// Fill a block with the initial za field.
void init_block(const BlockView& block);

/// Spec shared by all implementations.
struct Spec {
  long n = 256;        ///< global matrix is n×n doubles
  int iterations = 10;
  int bx = 1, by = 1;  ///< block grid (bx*by blocks); must divide n
};

/// Sequential *blocked* reference: same numerics as the parallel versions.
/// Returns the final n×n za field (row major).
std::vector<double> blocked_reference(const Spec& spec);

/// Plain sequential GS sweep (no blocking) — the classic kernel, used by
/// the quickstart and docs; NOT the oracle for the parallel versions.
std::vector<double> sequential_kernel(long n, int iterations);

/// Max |a - b| over two equally sized fields.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace orwl::lk23
