#include "lk23/orwl_impl.h"

#include <cstring>
#include <memory>

#include "support/assert.h"
#include "support/time.h"

namespace orwl::lk23 {

int opposite(int dir) {
  switch (dir) {
    case N: return S;
    case S: return N;
    case W: return E;
    case E: return W;
    case NW: return SE;
    case NE: return SW;
    case SW: return NE;
    case SE: return NW;
  }
  ORWL_CHECK_MSG(false, "bad direction " << dir);
  return -1;
}

std::pair<int, int> dir_delta(int dir) {
  switch (dir) {
    case N: return {0, -1};
    case S: return {0, +1};
    case W: return {-1, 0};
    case E: return {+1, 0};
    case NW: return {-1, -1};
    case NE: return {+1, -1};
    case SW: return {-1, +1};
    case SE: return {+1, +1};
  }
  ORWL_CHECK_MSG(false, "bad direction " << dir);
  return {0, 0};
}

// Face geometry: number of doubles block b exports towards `dir`.
long face_elems(const Spec& spec, int dir) {
  const long brows = spec.n / spec.by;
  const long bcols = spec.n / spec.bx;
  if (dir == N || dir == S) return bcols;
  if (dir == W || dir == E) return brows;
  return 1;  // corners
}

// Copy the face of a contiguous block buffer towards `dir` into `out`.
void copy_face(const double* za, long rows, long cols, int dir, double* out) {
  switch (dir) {
    case N: std::memcpy(out, za, static_cast<std::size_t>(cols) * 8); return;
    case S:
      std::memcpy(out, za + (rows - 1) * cols,
                  static_cast<std::size_t>(cols) * 8);
      return;
    case W:
      for (long r = 0; r < rows; ++r) out[r] = za[r * cols];
      return;
    case E:
      for (long r = 0; r < rows; ++r) out[r] = za[r * cols + cols - 1];
      return;
    case NW: out[0] = za[0]; return;
    case NE: out[0] = za[cols - 1]; return;
    case SW: out[0] = za[(rows - 1) * cols]; return;
    case SE: out[0] = za[(rows - 1) * cols + cols - 1]; return;
  }
  ORWL_CHECK_MSG(false, "bad direction " << dir);
}

namespace {

// Per-main-task mutable state (halo buffers), shared with the lambda.
struct MainState {
  Halo halo;
  // Read handles per direction (-1 when no neighbour).
  std::array<HandleId, kDirs> read = {-1, -1, -1, -1, -1, -1, -1, -1};
  HandleId write = -1;
  long rows = 0, cols = 0, row0 = 0, col0 = 0;
};

struct FopState {
  HandleId read_block = -1;
  HandleId write_front = -1;
  std::vector<double> face;
  long rows = 0, cols = 0;
  int dir = 0;
};

}  // namespace

OrwlProgram build_orwl_program(Runtime& rt, const Spec& spec) {
  ORWL_CHECK_MSG(spec.n >= 2 && spec.bx >= 1 && spec.by >= 1 &&
                     spec.n % spec.bx == 0 && spec.n % spec.by == 0,
                 "block grid must divide the matrix");
  ORWL_CHECK_MSG(spec.iterations >= 0, "negative iteration count");

  OrwlProgram prog;
  prog.spec = spec;
  const int B = spec.bx * spec.by;
  const long brows = spec.n / spec.by;
  const long bcols = spec.n / spec.bx;

  auto block_id = [&](int x, int y) { return y * spec.bx + x; };
  auto has_neighbour = [&](int x, int y, int dir) {
    const auto [dx, dy] = dir_delta(dir);
    const int nx = x + dx;
    const int ny = y + dy;
    return nx >= 0 && ny >= 0 && nx < spec.bx && ny < spec.by;
  };
  auto neighbour_id = [&](int b, int dir) {
    const int x = b % spec.bx;
    const int y = b / spec.bx;
    const auto [dx, dy] = dir_delta(dir);
    return block_id(x + dx, y + dy);
  };

  // --- locations -----------------------------------------------------------
  prog.block_loc.resize(static_cast<std::size_t>(B));
  prog.frontier_loc.assign(static_cast<std::size_t>(B),
                           {-1, -1, -1, -1, -1, -1, -1, -1});
  for (int b = 0; b < B; ++b) {
    prog.block_loc[static_cast<std::size_t>(b)] = rt.add_location(
        static_cast<std::size_t>(brows * bcols) * sizeof(double),
        "block" + std::to_string(b));
  }
  // Every block owns 8 frontier locations (paper Sec. III: one main
  // operation plus eight sub-operations per block); exports at the global
  // border simply have no consumer.
  for (int b = 0; b < B; ++b) {
    for (int d = 0; d < kDirs; ++d) {
      prog.frontier_loc[static_cast<std::size_t>(b)][static_cast<std::size_t>(
          d)] =
          rt.add_location(
              static_cast<std::size_t>(face_elems(spec, d)) * sizeof(double),
              "front" + std::to_string(b) + "d" + std::to_string(d));
    }
  }

  // --- tasks ---------------------------------------------------------------
  // Main tasks first, then frontier ops; bodies are wired after handle
  // registration via shared state.
  std::vector<std::shared_ptr<MainState>> mains(static_cast<std::size_t>(B));
  std::vector<std::shared_ptr<FopState>> fops;

  prog.main_task.resize(static_cast<std::size_t>(B));
  const int T = spec.iterations;

  for (int b = 0; b < B; ++b) {
    auto state = std::make_shared<MainState>();
    state->rows = brows;
    state->cols = bcols;
    state->row0 = (b / spec.bx) * brows;
    state->col0 = (b % spec.bx) * bcols;
    state->halo.north.resize(static_cast<std::size_t>(bcols));
    state->halo.south.resize(static_cast<std::size_t>(bcols));
    state->halo.west.resize(static_cast<std::size_t>(brows));
    state->halo.east.resize(static_cast<std::size_t>(brows));
    mains[static_cast<std::size_t>(b)] = state;

    const long n = spec.n;
    prog.main_task[static_cast<std::size_t>(b)] = rt.add_task(
        "main" + std::to_string(b), [state, T, n](TaskContext& ctx) {
          // Round 0: initialize the block under the first write grant.
          Handle& w = ctx.handle(state->write);
          {
            // lint: allow-naked-acquire(renewal cycle; no Section fits)
            auto bytes = w.acquire();
            BlockView blk{as_span<double>(bytes).data(), state->cols,
                          state->rows, state->cols, state->row0, state->col0,
                          n};
            init_block(blk);
            w.release_and_renew();
          }
          for (int it = 1; it <= T; ++it) {
            // Gather the previous iteration's frontiers into the halo.
            for (int d = 0; d < kDirs; ++d) {
              const HandleId h = state->read[static_cast<std::size_t>(d)];
              if (h < 0) continue;
              Handle& r = ctx.handle(h);
              // lint: allow-naked-acquire(halo gather renews the handle)
              auto bytes = std::span<const std::byte>(r.acquire());
              auto face = as_span<const double>(bytes);
              switch (d) {
                case N:
                  std::copy(face.begin(), face.end(),
                            state->halo.north.begin());
                  break;
                case S:
                  std::copy(face.begin(), face.end(),
                            state->halo.south.begin());
                  break;
                case W:
                  std::copy(face.begin(), face.end(),
                            state->halo.west.begin());
                  break;
                case E:
                  std::copy(face.begin(), face.end(),
                            state->halo.east.begin());
                  break;
                case NW: state->halo.nw = face[0]; break;
                case NE: state->halo.ne = face[0]; break;
                case SW: state->halo.sw = face[0]; break;
                case SE: state->halo.se = face[0]; break;
              }
              r.release_and_renew();
            }
            // Sweep under the write grant.
            // lint: allow-naked-acquire(sweep renews the write handle)
            auto bytes = w.acquire();
            BlockView blk{as_span<double>(bytes).data(), state->cols,
                          state->rows, state->cols, state->row0, state->col0,
                          n};
            sweep_block(blk, state->halo);
            w.release_and_renew();
          }
        });
  }

  for (int b = 0; b < B; ++b) {
    for (int d = 0; d < kDirs; ++d) {
      auto state = std::make_shared<FopState>();
      state->rows = brows;
      state->cols = bcols;
      state->dir = d;
      state->face.resize(static_cast<std::size_t>(face_elems(spec, d)));
      fops.push_back(state);
      rt.add_task("fop" + std::to_string(b) + "d" + std::to_string(d),
                  [state, T](TaskContext& ctx) {
                    Handle& r = ctx.handle(state->read_block);
                    Handle& w = ctx.handle(state->write_front);
                    // Export rounds 0..T-1 (initial content and the first
                    // T-1 sweeps); round r feeds the neighbour's halo for
                    // its sweep r+1.
                    for (int round = 0; round < T; ++round) {
                      {
                        // lint: allow-naked-acquire(frontier export renews)
                        auto bytes = std::span<const std::byte>(r.acquire());
                        copy_face(as_span<const double>(bytes).data(),
                                  state->rows, state->cols, state->dir,
                                  state->face.data());
                        r.release_and_renew();
                      }
                      // lint: allow-naked-acquire(frontier export renews)
                      auto out = w.acquire();
                      std::memcpy(out.data(), state->face.data(),
                                  state->face.size() * sizeof(double));
                      w.release_and_renew();
                    }
                  });
    }
  }

  // --- handles, in canonical priming order ---------------------------------
  // 1) Block locations: the main's write first, then the frontier reads.
  std::size_t fop_idx = 0;
  std::vector<std::pair<int, int>> fop_owner;  // (block, dir) per fop task id
  for (int b = 0; b < B; ++b) {
    mains[static_cast<std::size_t>(b)]->write = rt.add_handle(
        prog.main_task[static_cast<std::size_t>(b)],
        prog.block_loc[static_cast<std::size_t>(b)], AccessMode::Write);
  }
  // Frontier-op task ids start after the B main tasks, in creation order.
  {
    int fop_task = B;
    for (int b = 0; b < B; ++b) {
      for (int d = 0; d < kDirs; ++d) {
        auto& state = fops[fop_idx];
        state->read_block = rt.add_handle(
            fop_task, prog.block_loc[static_cast<std::size_t>(b)],
            AccessMode::Read);
        fop_owner.emplace_back(b, d);
        ++fop_task;
        ++fop_idx;
      }
    }
  }
  // 2) Frontier locations: the exporter's write first, then the
  //    neighbour main's read (border exports have no reader).
  {
    int fop_task = B;
    for (std::size_t f = 0; f < fops.size(); ++f, ++fop_task) {
      const auto [b, d] = fop_owner[f];
      const LocationId loc =
          prog.frontier_loc[static_cast<std::size_t>(b)]
                           [static_cast<std::size_t>(d)];
      fops[f]->write_front = rt.add_handle(fop_task, loc, AccessMode::Write);
      if (!has_neighbour(b % spec.bx, b / spec.bx, d)) continue;
      const int nb = neighbour_id(b, d);
      // Block nb sees block b in direction opposite(d).
      mains[static_cast<std::size_t>(nb)]
          ->read[static_cast<std::size_t>(opposite(d))] =
          rt.add_handle(prog.main_task[static_cast<std::size_t>(nb)], loc,
                        AccessMode::Read);
    }
  }

  prog.num_tasks = rt.num_tasks();
  return prog;
}

std::vector<double> extract_field(Runtime& rt, const OrwlProgram& prog) {
  const Spec& spec = prog.spec;
  const long n = spec.n;
  const long brows = n / spec.by;
  const long bcols = n / spec.bx;
  std::vector<double> za(static_cast<std::size_t>(n * n));
  for (int b = 0; b < spec.bx * spec.by; ++b) {
    const long row0 = (b / spec.bx) * brows;
    const long col0 = (b % spec.bx) * bcols;
    const auto bytes = rt.location_data(
        prog.block_loc[static_cast<std::size_t>(b)]);
    const auto src = as_span<const double>(
        std::span<const std::byte>(bytes.data(), bytes.size()));
    for (long r = 0; r < brows; ++r)
      std::memcpy(za.data() + (row0 + r) * n + col0, src.data() + r * bcols,
                  static_cast<std::size_t>(bcols) * sizeof(double));
  }
  return za;
}

OrwlRunResult run_orwl(const Spec& spec, place::Policy policy,
                       const topo::Topology& topo, RuntimeOptions opts) {
  Runtime rt(opts);
  const OrwlProgram prog = build_orwl_program(rt, spec);

  OrwlRunResult res;
  res.num_tasks = prog.num_tasks;
  res.static_matrix = rt.static_comm_matrix();
  res.plan = place::compute_plan(policy, topo, res.static_matrix);
  place::apply_plan(res.plan, topo, rt);

  WallTimer timer;
  rt.run();
  res.seconds = timer.seconds();
  res.grants = rt.stats().read_grants() + rt.stats().write_grants();
  res.za = extract_field(rt, prog);
  return res;
}

}  // namespace orwl::lk23
