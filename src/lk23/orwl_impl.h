#pragma once
// The ORWL implementation of Livermore Kernel 23, following the paper's
// decomposition (Sec. III): the matrix is split into blocks; each block has
// one *main* operation that performs the sweep and one frontier
// sub-operation per existing neighbour (up to 8) that exports the block's
// edge/corner towards that neighbour through its own orwl location. Every
// operation runs on an independent thread; read/write dependencies go
// through handles, so the FIFO ordering drives the iteration lock-step.

#include <array>
#include <vector>

#include "lk23/kernel.h"
#include "orwl/runtime.h"
#include "place/placement.h"
#include "topo/topology.h"

namespace orwl::lk23 {

/// The 8 frontier directions.
enum Dir : int { N = 0, S, W, E, NW, NE, SW, SE, kDirs };

/// Opposite direction (N<->S, NW<->SE, ...).
int opposite(int dir);

/// Neighbour block delta for a direction: {dx, dy} with y growing south.
std::pair<int, int> dir_delta(int dir);

/// Number of doubles a block exports towards `dir` (edge length, or 1 for
/// corners).
long face_elems(const Spec& spec, int dir);

/// Copy the face of a contiguous rows×cols block buffer towards `dir` into
/// `out` (face_elems doubles).
void copy_face(const double* za, long rows, long cols, int dir, double* out);

/// Ids of everything built into a Runtime for one LK23 program.
struct OrwlProgram {
  Spec spec;
  /// block b = y * bx + x.
  std::vector<LocationId> block_loc;
  /// frontier_loc[b][d]: location holding block b's face towards d, or -1
  /// when there is no neighbour in that direction.
  std::vector<std::array<LocationId, kDirs>> frontier_loc;
  /// main_task[b]: the sweep operation of block b.
  std::vector<TaskId> main_task;
  /// Total operation threads (mains + frontier ops).
  int num_tasks = 0;
};

/// Build locations, tasks and handles for `spec` into `rt`. Handles are
/// registered in the canonical liveness order (block writes before block
/// reads; frontier writes before frontier reads).
OrwlProgram build_orwl_program(Runtime& rt, const Spec& spec);

/// Copy the final block contents out of the runtime into a full n×n field.
std::vector<double> extract_field(Runtime& rt, const OrwlProgram& prog);

/// Result of a full run.
struct OrwlRunResult {
  std::vector<double> za;
  double seconds = 0.0;           ///< wall time of Runtime::run()
  int num_tasks = 0;
  comm::CommMatrix static_matrix{1};
  place::Plan plan;
  std::uint64_t grants = 0;
};

/// Build, place (policy), run and extract. `opts` selects the control mode.
OrwlRunResult run_orwl(const Spec& spec, place::Policy policy,
                       const topo::Topology& topo, RuntimeOptions opts = {});

}  // namespace orwl::lk23
