#pragma once
// Benchmark harness: one shared driver for timing registered workloads
// across placement policies and backends, replacing the hand-rolled
// repetition/timing/output loops the bench/ binaries used to carry.
//
// A case = (workload, params, policy, backend). The driver runs
// warmup + repetitions fresh Program builds, summarizes the timings as
// median/MAD (harness/stats.h), optionally verifies the numerical result
// against the workload's sequential reference, and — the paper's actual
// contribution — can close the FEEDBACK loop: take the measured
// communication matrix the ORWL runtime instrumented during the
// static-pattern runs, re-place with TreeMatch on that measured matrix,
// re-run, and report the speedup. Results serialize to the BENCH_*.json
// machine-readable format via harness/json.h.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "comm/comm_matrix.h"
#include "harness/stats.h"
#include "mem/policy.h"
#include "orwl/backend.h"
#include "place/placement.h"
#include "place/replace.h"
#include "sync/wait_strategy.h"
#include "workloads/workloads.h"

namespace orwl::harness {

class JsonWriter;

/// One benchmark configuration.
struct CaseSpec {
  std::string workload;
  workloads::Params params;
  place::Policy policy = place::Policy::TreeMatch;
  /// "runtime" (host execution) or "sim" (NUMA cost model prediction).
  std::string backend = "sim";
  /// Synthetic topology for the sim backend ("pack:24 core:8 pu:1"-style);
  /// empty = the paper machine. Ignored by the runtime backend.
  std::string topo_spec;
  int warmup = 1;
  int repetitions = 3;
  /// Run the measured-matrix feedback placement after the static runs.
  bool feedback = false;
  /// Online adaptive re-placement during every run (place/replace.h):
  /// off (default), every_epoch, or on_drift with the policy's epoch
  /// length and drift threshold.
  place::ReplacementPolicy replacement{};
  /// Check the result against the workload's sequential reference.
  bool verify = true;
  std::uint64_t seed = 42;
  /// Wait strategy for runtime-backend execution (Program::wait_strategy):
  /// block, spin, or spin_then_park. Unset = the runtime default (block).
  /// Ignored by the sim backend.
  std::optional<sync::WaitStrategy> wait;
  /// Location-memory policy (Program::memory_policy): heap (default),
  /// numa_local, or numa_interleave. Applied to both backends — the
  /// runtime places real pages, the sim models the effect.
  mem::MemoryPolicy memory = mem::MemoryPolicy::Heap;
  /// Non-empty: turn tracing on for this case's runs and write the last
  /// static-phase run's Chrome/Perfetto trace (obs/export.h) here. The
  /// recording overhead is part of the measured time — trace OR measure,
  /// not both at once.
  std::string trace_path;
  /// Turn on detailed metrics (per-handle acquire-latency histograms) and
  /// keep the run's registry snapshot in CaseResult::metrics / the JSON.
  bool collect_metrics = false;
};

/// Timings of the feedback (measured-matrix TreeMatch) phase.
struct FeedbackResult {
  bool ran = false;
  Stats time;
  /// static-placement median / feedback-placement median; > 1 means the
  /// measured matrix beat the static pattern.
  double speedup = 0.0;
  /// Total volume of the measured flow matrix fed back to Algorithm 1.
  double measured_bytes = 0.0;
};

struct CaseResult {
  CaseSpec spec;
  int num_tasks = 0;
  Stats time;  ///< static-pattern placement timings
  std::uint64_t grants = 0;
  bool placed = false;
  bool verify_ran = false;
  bool verified = false;
  std::string verify_error;
  FeedbackResult feedback;
  /// Online re-placement trace of the last timed run (empty when the
  /// spec's replacement policy is off): one record per epoch boundary.
  std::vector<orwl::RunReport::EpochRecord> epochs;
  int replacements = 0;  ///< boundaries at which Algorithm 1 re-ran
  /// Metric snapshot of the last static-phase run (CaseSpec
  /// collect_metrics; also filled when trace_path is set).
  obs::RegistrySnapshot metrics;
  /// Events in / dropped from the written trace (CaseSpec trace_path).
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
};

/// Run one case end to end. Throws ContractError on unknown workload /
/// backend names.
CaseResult run_case(const CaseSpec& spec);

/// Cartesian sweep of `base` over policies x backends. When the sweep
/// has several cases and `base.trace_path` is set, each case's trace
/// goes to its own file (the case name is spliced into the path);
/// `force_trace_split` makes that happen even for a single-case sweep —
/// for callers that run several sweeps off the same base (workload /
/// memory / replacement twins) and would otherwise overwrite one file.
std::vector<CaseResult> run_sweep(const CaseSpec& base,
                                  const std::vector<place::Policy>& policies,
                                  const std::vector<std::string>& backends,
                                  bool force_trace_split = false);

/// Serialize results in the BENCH_*.json layout: a context object plus a
/// "benchmarks" array, one entry per case.
void write_json(std::ostream& os, const std::vector<CaseResult>& results);

/// write_json to `path`; prints "wrote PATH", complains to stderr and
/// returns false when the file cannot be opened.
bool write_json_file(const std::string& path,
                     const std::vector<CaseResult>& results);

/// Emit an arbitrary BENCH_*.json document to `path`: the standard
/// context object (bench name, date, host, schema version, plus whatever
/// `context_extra` adds) followed by a "benchmarks" array filled by
/// `benchmarks` (one begin_object/members/end_object per entry). This is
/// THE file-emission path for every bench binary, so the layout cannot
/// drift between them. Same success/failure behaviour as
/// write_json_file.
bool write_bench_file(const std::string& path, const std::string& bench,
                      const std::function<void(JsonWriter&)>& context_extra,
                      const std::function<void(JsonWriter&)>& benchmarks);

/// "workload/backend/policy" display name of a case.
std::string case_name(const CaseSpec& spec);

/// Serialize one histogram snapshot as a JSON object member `key`:
/// count/sum/mean/p50/p95/p99 plus the sparse non-zero log2 buckets as
/// [upper_bound, count] pairs. Shared by write_json and the bench
/// binaries so the layout cannot drift.
void write_histogram(JsonWriter& json, const std::string& key,
                     const obs::HistogramSnapshot& h);

/// Simulated seconds of one iteration of a communication-bound exchange
/// workload under `mapping` — light compute, `exchanges_per_iteration`
/// round trips of every matrix edge. Shared by the mapping-quality benches
/// so they stop hand-rolling sim::Workload construction.
double simulated_exchange_seconds(const topo::Topology& topo,
                                  const comm::CommMatrix& m,
                                  const std::vector<int>& mapping,
                                  double exchanges_per_iteration = 1024.0);

}  // namespace orwl::harness
