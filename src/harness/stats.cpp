#include "harness/stats.h"

#include <algorithm>
#include <numeric>

namespace orwl::harness {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  const double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
  return 0.5 * (lo + hi);
}

Stats sample(int warmup, int repetitions,
             const std::function<double()>& once) {
  std::vector<double> kept;
  kept.reserve(static_cast<std::size_t>(repetitions > 0 ? repetitions : 0));
  for (int i = 0; i < warmup + repetitions; ++i) {
    const double seconds = once();
    if (i >= warmup) kept.push_back(seconds);
  }
  return summarize(kept);
}

Stats summarize(const std::vector<double>& samples) {
  Stats s;
  if (samples.empty()) return s;
  s.samples = static_cast<int>(samples.size());
  s.median = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (const double v : samples)
    dev.push_back(v > s.median ? v - s.median : s.median - v);
  s.mad = median_of(std::move(dev));
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  s.min = *lo;
  s.max = *hi;
  return s;
}

}  // namespace orwl::harness
