#include "harness/bench.h"

#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <ostream>
#include <utility>

#include "harness/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orwl/backend.h"
#include "sim/simulator.h"
#include "support/assert.h"
#include "topo/topology.h"

#include <unistd.h>  // gethostname

namespace orwl::harness {

namespace {

topo::Topology sim_topology(const CaseSpec& spec) {
  return spec.topo_spec.empty() ? topo::Topology::paper_machine()
                                : topo::Topology::synthetic(spec.topo_spec);
}

std::unique_ptr<Backend> make_backend(const CaseSpec& spec,
                                      bool need_emulation) {
  if (spec.backend == "runtime") return std::make_unique<RuntimeBackend>();
  if (spec.backend == "sim") {
    topo::Topology topo = sim_topology(spec);
    const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
    SimBackendOptions opts;
    opts.emulate = need_emulation;
    opts.seed = spec.seed;
    return std::make_unique<SimBackend>(std::move(topo), cost, opts);
  }
  ORWL_CHECK_MSG(false, "unknown backend '" << spec.backend
                                            << "'; use 'runtime' or 'sim'");
  return nullptr;  // unreachable
}

/// The measured communication-flow matrix of the backend's latest run.
comm::CommMatrix measured_matrix(Backend& backend) {
  Runtime* rt = backend.instrumented_runtime();
  ORWL_CHECK_MSG(rt != nullptr,
                 "backend has no instrumented runtime to measure flows "
                 "(sim backend without emulation?)");
  return rt->measured_comm_matrix();
}

std::string iso_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

void write_stats(JsonWriter& json, const std::string& prefix,
                 const Stats& s) {
  json.member(prefix + "_median", s.median);
  json.member(prefix + "_mad", s.mad);
  json.member(prefix + "_mean", s.mean);
  json.member(prefix + "_min", s.min);
  json.member(prefix + "_max", s.max);
}

/// The one BENCH_*.json document shape: context + benchmarks array.
void emit_document(std::ostream& os, const std::string& bench,
                   const std::function<void(JsonWriter&)>& context_extra,
                   const std::function<void(JsonWriter&)>& benchmarks) {
  JsonWriter json(os);
  json.begin_object();
  json.begin_object("context");
  json.member("bench", bench);
  json.member("date", iso_utc_now());
  json.member("host_name", host_name());
  json.member("harness_schema", 3);
  if (context_extra) context_extra(json);
  json.end_object();
  json.begin_array("benchmarks");
  if (benchmarks) benchmarks(json);
  json.end_array();
  json.end_object();
  os << '\n';
}

// "dir/out.json" + "stencil2d/sim/treematch" -> "dir/out.stencil2d_sim_treematch.json":
// one trace file per swept case, distinguishable at a glance.
std::string trace_path_for(const std::string& base,
                           const std::string& case_name) {
  std::string tag = case_name;
  for (char& c : tag)
    if (c == '/' || c == ':') c = '_';
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + "." + tag;
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

}  // namespace

std::string case_name(const CaseSpec& spec) {
  std::string name = spec.workload + "/" + spec.backend + "/" +
                     place::to_string(spec.policy) +
                     (spec.feedback ? "/feedback" : "");
  if (spec.replacement.enabled())
    name += std::string("/replace:") +
            place::to_string(spec.replacement.mode);
  if (spec.wait) name += "/wait:" + sync::to_string(*spec.wait);
  if (spec.memory != mem::MemoryPolicy::Heap)
    name += std::string("/mem:") + mem::to_string(spec.memory);
  return name;
}

CaseResult run_case(const CaseSpec& spec) {
  const workloads::Workload& wl = workloads::get(spec.workload);
  ORWL_CHECK_MSG(spec.repetitions >= 1, "need at least one repetition");
  ORWL_CHECK_MSG(spec.warmup >= 0, "negative warmup count");

  CaseResult res;
  res.spec = spec;
  // Feedback needs the instrumented flow matrix, verification the location
  // contents. The timing backend never emulates — sim predictions come
  // from the analytic model, so executing the bodies on every repetition
  // would cost full native runs for nothing. When needed, a separate
  // emulating backend executes ONCE per phase to supply fetchable state.
  const bool need_fetch = spec.verify || spec.feedback;
  const std::unique_ptr<Backend> timing = make_backend(spec, false);
  std::unique_ptr<Backend> emulated;
  Backend* fetcher = timing.get();
  if (need_fetch && spec.backend == "sim") {
    emulated = make_backend(spec, true);
    fetcher = emulated.get();
  }

  // Observability: tracing / detailed metrics are process-global flags —
  // flip them for this case's runs and restore afterwards. The last
  // static-phase run on the TIMING backend supplies the written trace and
  // the metric snapshot.
  const bool tracing = !spec.trace_path.empty();
  const bool keep_metrics = spec.collect_metrics || tracing;
  const bool prev_trace = tracing ? obs::enable_tracing(true) : false;
  const bool prev_detail =
      keep_metrics ? obs::enable_detailed_metrics(true) : false;
  obs::TraceData trace;

  workloads::Built built;
  // The recorded epoch trace covers the static phase only; the feedback
  // phase re-runs with the measured matrix and would overwrite it.
  bool record_epochs = true;
  const auto run_on = [&](Backend& backend, place::Policy policy,
                          const std::optional<comm::CommMatrix>& matrix) {
    Program p;
    built = wl.build(p, spec.params);
    p.place(policy, {}, spec.seed);
    if (matrix) p.place_using(*matrix);
    if (spec.replacement.enabled()) p.replacement(spec.replacement);
    if (spec.wait) p.wait_strategy(*spec.wait);
    if (spec.memory != mem::MemoryPolicy::Heap) p.memory_policy(spec.memory);
    RunReport rep = p.run(backend);
    res.grants = rep.grants;
    res.placed = rep.placed;
    if (record_epochs) {
      res.epochs = rep.epochs;
      res.replacements = rep.replacements;
      if (&backend == timing.get()) {
        if (tracing) trace = std::move(rep.trace);
        if (keep_metrics) res.metrics = std::move(rep.metrics);
      }
    }
    return rep.seconds;
  };

  // `fetch_run`: whether anything will actually read the fetcher's state
  // after this phase — skip the (expensive, native) emulated execution
  // otherwise.
  const auto time_phase = [&](place::Policy policy,
                              const std::optional<comm::CommMatrix>& matrix,
                              bool fetch_run) -> Stats {
    const Stats stats = sample(spec.warmup, spec.repetitions, [&] {
      return run_on(*timing, policy, matrix);
    });
    if (fetch_run && fetcher != timing.get())
      run_on(*fetcher, policy, matrix);
    return stats;
  };

  const auto check = [&](std::string& error) {
    std::string why;
    if (built.verify(*fetcher, why)) return true;
    error = why;
    return false;
  };

  // Phase 1: the requested policy on the workload's STATIC pattern.
  res.time = time_phase(spec.policy, std::nullopt, need_fetch);
  res.num_tasks = built.num_tasks;
  if (spec.verify) {
    res.verify_ran = true;
    res.verified = check(res.verify_error);
  }

  record_epochs = false;

  // Observability flags restored before the feedback phase: its re-runs
  // are not part of the written trace.
  if (tracing) {
    obs::enable_tracing(prev_trace);
    res.trace_events = trace.total_events();
    res.trace_dropped = trace.dropped;
    if (obs::write_chrome_trace_file(spec.trace_path, trace))
      std::cout << "wrote " << spec.trace_path << '\n';
  }
  if (keep_metrics) obs::enable_detailed_metrics(prev_detail);

  // Phase 2 (feedback): re-place with TreeMatch on the flow matrix the
  // runtime MEASURED during phase 1, and re-run — Algorithm 1 fed by
  // instrumentation instead of the declared pattern.
  if (spec.feedback) {
    const comm::CommMatrix measured = measured_matrix(*fetcher);
    res.feedback.measured_bytes = measured.total_volume();
    // Only verification reads the fetcher after this phase.
    res.feedback.time = time_phase(place::Policy::TreeMatch, measured,
                                   spec.verify && res.verified);
    res.feedback.ran = true;
    res.feedback.speedup = res.feedback.time.median > 0.0
                               ? res.time.median / res.feedback.time.median
                               : 0.0;
    if (spec.verify && res.verified) {
      std::string why;
      if (!check(why)) {
        res.verified = false;
        res.verify_error = "feedback run: " + why;
      }
    }
  }
  return res;
}

void write_histogram(JsonWriter& json, const std::string& key,
                     const obs::HistogramSnapshot& h) {
  json.begin_object(key);
  json.member("count", h.count);
  json.member("sum", h.sum);
  json.member("mean", h.mean());
  json.member("p50", h.quantile(0.50));
  json.member("p95", h.quantile(0.95));
  json.member("p99", h.quantile(0.99));
  // Sparse non-zero log2 buckets as [inclusive_upper_bound, count] pairs.
  json.begin_array("buckets");
  for (int i = 0; i < obs::HistogramSnapshot::kBuckets; ++i) {
    const std::uint64_t count = h.buckets[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    json.begin_object();
    json.member("le", obs::HistogramSnapshot::bucket_upper(i));
    json.member("count", count);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::vector<CaseResult> run_sweep(const CaseSpec& base,
                                  const std::vector<place::Policy>& policies,
                                  const std::vector<std::string>& backends,
                                  bool force_trace_split) {
  std::vector<CaseResult> out;
  out.reserve(policies.size() * backends.size());
  const bool many =
      force_trace_split || policies.size() * backends.size() > 1;
  for (const std::string& backend : backends) {
    for (const place::Policy policy : policies) {
      CaseSpec spec = base;
      spec.backend = backend;
      spec.policy = policy;
      // One trace file per case: splice the case name into the path so a
      // sweep does not overwrite one file repeatedly.
      if (!spec.trace_path.empty() && many)
        spec.trace_path = trace_path_for(base.trace_path, case_name(spec));
      out.push_back(run_case(spec));
    }
  }
  return out;
}

void write_json(std::ostream& os, const std::vector<CaseResult>& results) {
  emit_document(os, "orwl_bench", nullptr, [&results](JsonWriter& json) {
    for (const CaseResult& r : results) {
      json.begin_object();
      json.member("name", case_name(r.spec));
      json.member("workload", r.spec.workload);
      json.member("backend", r.spec.backend);
      json.member("policy", place::to_string(r.spec.policy));
      json.member("topology", r.spec.backend == "runtime"
                                  ? std::string("host")
                                  : (r.spec.topo_spec.empty()
                                         ? std::string("paper_machine")
                                         : r.spec.topo_spec));
      json.member("tasks", r.spec.params.tasks);
      json.member("size", r.spec.params.size);
      json.member("iterations", r.spec.params.iterations);
      json.member("num_tasks", r.num_tasks);
      json.member("warmup", r.spec.warmup);
      json.member("repetitions", r.spec.repetitions);
      json.member("wait_strategy", r.spec.wait ? sync::to_string(*r.spec.wait)
                                               : std::string("default"));
      json.member("memory_policy", mem::to_string(r.spec.memory));
      json.member("grants", r.grants);
      json.member("placed", r.placed);
      write_stats(json, "seconds", r.time);
      json.member("verify_ran", r.verify_ran);
      json.member("verified", r.verified);
      if (!r.verify_error.empty())
        json.member("verify_error", r.verify_error);
      if (r.feedback.ran) {
        json.begin_object("feedback");
        write_stats(json, "seconds", r.feedback.time);
        json.member("speedup_vs_static", r.feedback.speedup);
        json.member("measured_bytes", r.feedback.measured_bytes);
        json.end_object();
      } else {
        json.null_member("feedback");
      }
      // Observability (harness_schema >= 3): present only when the case
      // asked for it (trace_path / collect_metrics).
      if (!r.spec.trace_path.empty()) {
        json.member("trace_path", r.spec.trace_path);
        json.member("trace_events", r.trace_events);
        json.member("trace_dropped", r.trace_dropped);
      }
      if (!r.metrics.empty()) {
        json.begin_object("metrics");
        for (const auto& [name, v] : r.metrics.counters)
          json.member(name, v);
        for (const auto& [name, v] : r.metrics.gauges)
          json.member(name, static_cast<long>(v));
        json.begin_object("histograms");
        for (const obs::HistogramSnapshot& h : r.metrics.histograms) {
          if (h.empty()) continue;
          write_histogram(json, h.name, h);
        }
        json.end_object();
        json.end_object();
      }
      // Online re-placement trace (docs/benchmarks.md "per-epoch fields").
      json.member("replacement",
                  place::to_string(r.spec.replacement.mode));
      if (r.spec.replacement.enabled()) {
        json.member("epoch_length", r.spec.replacement.epoch_length);
        json.member("drift_threshold", r.spec.replacement.drift_threshold);
        json.member("replacements", r.replacements);
        json.begin_array("epochs");
        for (const orwl::RunReport::EpochRecord& e : r.epochs) {
          json.begin_object();
          json.member("epoch", e.epoch);
          json.member("round", e.round);
          json.member("drift", e.drift);
          json.member("replaced", e.replaced);
          json.member("migrated", e.migrated);
          json.member("rebind_failures", e.rebind_failures);
          json.member("moved_locations", e.moved_locations);
          json.member("replace_seconds", e.replace_seconds);
          json.begin_array("compute_pu");
          for (const int pu : e.compute_pu)
            json.element(static_cast<double>(pu));
          json.end_array();
          json.end_object();
        }
        json.end_array();
      }
      json.end_object();
    }
  });
}

bool write_json_file(const std::string& path,
                     const std::vector<CaseResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return false;
  }
  write_json(out, results);
  std::cout << "wrote " << path << '\n';
  return true;
}

bool write_bench_file(const std::string& path, const std::string& bench,
                      const std::function<void(JsonWriter&)>& context_extra,
                      const std::function<void(JsonWriter&)>& benchmarks) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return false;
  }
  emit_document(out, bench, context_extra, benchmarks);
  std::cout << "wrote " << path << '\n';
  return true;
}

double simulated_exchange_seconds(const topo::Topology& topo,
                                  const comm::CommMatrix& m,
                                  const std::vector<int>& mapping,
                                  double exchanges_per_iteration) {
  const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
  sim::Workload load;
  const int n = m.order();
  for (int i = 0; i < n; ++i) load.threads.push_back({1e5, 1e5, 0});
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (m.at(i, j) > 0)
        load.edges.push_back({i, j, exchanges_per_iteration * m.at(i, j)});
  sim::Placement place;
  place.compute_pu = mapping;
  place.control_pu.assign(static_cast<std::size_t>(n), -1);
  place.data_home_pu = mapping;
  // Unbound entries would be re-placed randomly; pin them to PU 0 so the
  // quality tables stay deterministic.
  for (auto& pu : place.compute_pu)
    if (pu < 0) pu = 0;
  for (auto& pu : place.data_home_pu)
    if (pu < 0) pu = 0;
  return sim::simulate(topo, cost, load, place).total_seconds;
}

}  // namespace orwl::harness
