#pragma once
// Robust summary statistics for benchmark samples. The harness reports
// median and MAD (median absolute deviation) rather than mean/stddev so a
// single noisy repetition — a scheduler hiccup, a cold cache — cannot drag
// the headline number.

#include <functional>
#include <vector>

namespace orwl::harness {

struct Stats {
  int samples = 0;
  double median = 0.0;
  double mad = 0.0;  ///< median absolute deviation from the median
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Median of `values`; 0 when empty. Even counts average the two middle
/// elements.
double median_of(std::vector<double> values);

/// Full summary of a sample set; all-zero Stats when empty.
Stats summarize(const std::vector<double>& samples);

/// The canonical sampling loop: invoke `once` (which returns elapsed
/// seconds) `warmup + repetitions` times, discard the warmup results, and
/// summarize the rest. Every bench driver samples through this so the
/// semantics (what warmup means, what gets kept) live in one place.
Stats sample(int warmup, int repetitions, const std::function<double()>& once);

}  // namespace orwl::harness
