#pragma once
// Minimal streaming JSON writer for the benchmark harness — enough to emit
// the BENCH_*.json result files (objects, arrays, escaped strings, finite
// numbers) without an external dependency. Output is pretty-printed with
// two-space indentation and is always syntactically valid as long as the
// begin/end calls nest correctly (enforced with ORWL_CHECK).

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace orwl::harness {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers. The key-taking forms are for members of an object.
  void begin_object();
  void begin_object(const std::string& key);
  void end_object();
  void begin_array();
  void begin_array(const std::string& key);
  void end_array();

  // Object members.
  void member(const std::string& key, const std::string& value);
  void member(const std::string& key, const char* value);
  void member(const std::string& key, double value);
  void member(const std::string& key, std::uint64_t value);
  void member(const std::string& key, int value);
  void member(const std::string& key, long value);
  void member(const std::string& key, bool value);
  void null_member(const std::string& key);

  // Array elements.
  void element(const std::string& value);
  void element(double value);

  /// JSON string escaping, exposed for tests.
  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void comma_and_indent();
  void key_prefix(const std::string& key);
  void write_number(double v);

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
};

}  // namespace orwl::harness
