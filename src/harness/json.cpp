#include "harness/json.h"

#include <cmath>
#include <cstdio>

#include "support/assert.h"

namespace orwl::harness {

JsonWriter::~JsonWriter() { os_.flush(); }

void JsonWriter::comma_and_indent() {
  if (stack_.empty()) return;  // top-level value
  if (!first_in_scope_) os_ << ',';
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  first_in_scope_ = false;
}

void JsonWriter::key_prefix(const std::string& key) {
  ORWL_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                 "JSON key '" << key << "' outside an object");
  comma_and_indent();
  os_ << '"' << escape(key) << "\": ";
}

void JsonWriter::begin_object() {
  if (!stack_.empty()) {
    ORWL_CHECK_MSG(stack_.back() == Scope::Array,
                   "anonymous object inside an object — use the key form");
    comma_and_indent();
  }
  os_ << '{';
  stack_.push_back(Scope::Object);
  first_in_scope_ = true;
}

void JsonWriter::begin_object(const std::string& key) {
  key_prefix(key);
  os_ << '{';
  stack_.push_back(Scope::Object);
  first_in_scope_ = true;
}

void JsonWriter::end_object() {
  ORWL_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                 "end_object without begin_object");
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << '}';
  first_in_scope_ = false;
}

void JsonWriter::begin_array() {
  if (!stack_.empty()) {
    ORWL_CHECK_MSG(stack_.back() == Scope::Array,
                   "anonymous array inside an object — use the key form");
    comma_and_indent();
  }
  os_ << '[';
  stack_.push_back(Scope::Array);
  first_in_scope_ = true;
}

void JsonWriter::begin_array(const std::string& key) {
  key_prefix(key);
  os_ << '[';
  stack_.push_back(Scope::Array);
  first_in_scope_ = true;
}

void JsonWriter::end_array() {
  ORWL_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                 "end_array without begin_array");
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << ']';
  first_in_scope_ = false;
}

void JsonWriter::write_number(double v) {
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
}

void JsonWriter::member(const std::string& key, const std::string& value) {
  key_prefix(key);
  os_ << '"' << escape(value) << '"';
}

void JsonWriter::member(const std::string& key, const char* value) {
  member(key, std::string(value));
}

void JsonWriter::member(const std::string& key, double value) {
  key_prefix(key);
  write_number(value);
}

void JsonWriter::member(const std::string& key, std::uint64_t value) {
  key_prefix(key);
  os_ << value;
}

void JsonWriter::member(const std::string& key, int value) {
  key_prefix(key);
  os_ << value;
}

void JsonWriter::member(const std::string& key, long value) {
  key_prefix(key);
  os_ << value;
}

void JsonWriter::member(const std::string& key, bool value) {
  key_prefix(key);
  os_ << (value ? "true" : "false");
}

void JsonWriter::null_member(const std::string& key) {
  key_prefix(key);
  os_ << "null";
}

void JsonWriter::element(const std::string& value) {
  ORWL_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                 "array element outside an array");
  comma_and_indent();
  os_ << '"' << escape(value) << '"';
}

void JsonWriter::element(double value) {
  ORWL_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                 "array element outside an array");
  comma_and_indent();
  write_number(value);
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace orwl::harness
