#pragma once
// Channel: one shared segment connecting exactly two processes — the
// OWNER, which hosts every location FIFO and arbitrates grants, and the
// PEER, whose lock operations are forwarded over the ops ring and whose
// grants come back over the grant ring (ipc/transport.h pumps both).
//
// The segment is created by the owner (Channel::create) and mapped by the
// peer either by name (Channel::attach) or by inherited file descriptor
// (Channel::attach_fd — the fork path; memfd segments have no name at
// all). Attach validates the header field-by-field and throws
// ContractError on a magic/version/size mismatch: a process must never
// run the protocol against bytes it does not fully recognize.
//
// Failure semantics (step 1 of the cross-address-space plan, see
// docs/ipc.md): each side registers its pid; every cross-process wait is
// bounded, and on timeout the survivor probes the other pid. A vanished
// peer poisons the channel — the protocol is fail-stop, recovery is a
// later step. That guarantee — bounded-time loud failure, never a hang —
// is what tests/ipc_test.cpp and tools/check_ipc.py pin down.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ipc/layout.h"
#include "ipc/ring.h"
#include "mem/segment.h"
#include "sync/wait_strategy.h"

namespace orwl::ipc {

class Channel {
 public:
  enum class Role : std::uint8_t { Owner, Peer };

  /// One shared location to carve out of the segment.
  struct LocationSpec {
    std::string name;
    std::size_t bytes = 0;
  };

  struct CreateOptions {
    /// shm object name ("/orwl-..."); empty = anonymous memfd whose fd is
    /// inherited across fork (attach_fd on the child side).
    std::string shm_name;
    /// Slots per ring. Must be a power of two and at least the number of
    /// in-flight messages (peer handles for grants; bursts of ops).
    std::uint32_t ring_capacity = 64;
    std::vector<LocationSpec> locations;
  };

  /// Owner side: size, create and lay out the segment (state = Init; call
  /// set_state(OwnerReady) once the runtime is primed).
  [[nodiscard]] static Channel create(const CreateOptions& opts);

  /// Peer side: map a named segment and validate it.
  [[nodiscard]] static Channel attach(const std::string& shm_name);

  /// Peer side: map an inherited fd (fork/memfd path) and validate it.
  /// The fd is dup()ed; the caller keeps ownership.
  [[nodiscard]] static Channel attach_fd(int fd);

  Channel(Channel&&) = default;
  Channel& operator=(Channel&&) = default;

  [[nodiscard]] Role role() const { return role_; }
  /// Segment fd to pass to a forked child (owner side, memfd channels).
  [[nodiscard]] int shm_fd() const { return seg_.shm_fd(); }

  // --- locations ---------------------------------------------------------

  [[nodiscard]] std::uint32_t num_locations() const;
  [[nodiscard]] std::string location_name(std::uint32_t index) const;
  [[nodiscard]] std::span<std::byte> location_bytes(std::uint32_t index);

  // --- rings (fixed direction, independent of this side's role) ----------

  /// peer -> owner lock operations.
  [[nodiscard]] SpscRing& ops() { return ops_; }
  /// owner -> peer grant announcements.
  [[nodiscard]] SpscRing& grants() { return grants_; }

  // --- handshake / liveness ----------------------------------------------

  [[nodiscard]] ChannelState state() const;
  /// Publish a new state and wake cross-process waiters. Poisoned is
  /// terminal; any other transition must move the state forward.
  void set_state(ChannelState s);
  /// Park until the state is >= `at_least` (or Poisoned, which also
  /// returns) or `timeout_ns` passes. Bounded, like every shm wait.
  [[nodiscard]] sync::SharedWait wait_state(ChannelState at_least,
                                            std::int64_t timeout_ns,
                                            const sync::WaitStrategy& ws);
  /// Mark the channel failed (terminal) and wake everyone.
  void poison() { set_state(ChannelState::Poisoned); }

  /// Record this process's pid in its role's liveness slot.
  void announce_self();
  /// The other side's pid; 0 until it announced itself.
  [[nodiscard]] int peer_pid() const;
  /// Probe the other side: true while it has not announced, or while
  /// kill(pid, 0) says the process still exists.
  [[nodiscard]] bool peer_alive() const;

 private:
  Channel(mem::Segment seg, Role role);
  /// Overlay header/rings/table onto seg_, validating when attaching.
  void map(bool validate);
  [[nodiscard]] const LocationEntry& entry(std::uint32_t index) const;

  mem::Segment seg_;
  SegmentHeader* hdr_ = nullptr;
  SpscRing ops_;
  SpscRing grants_;
  Role role_ = Role::Owner;
};

}  // namespace orwl::ipc
