#pragma once
// In-shm layout of an ipc:: channel segment — the ONLY structures
// both processes interpret byte-for-byte. Everything here must stay
// address-free (lock-free std::atomic, no pointers, fixed-width fields)
// and append-only across versions: layout changes bump kVersion and
// attach rejects a mismatch rather than guessing.
//
// Segment map (offsets in the SegmentHeader, all 64-byte aligned):
//
//   [SegmentHeader][ops ring: peer->owner][grant ring: owner->peer]
//   [LocationEntry table][location data...]
//
// The header's `state` word is the channel handshake (ChannelState),
// parked on cross-process through sync/shared_futex.h. Ring memory
// ordering is the classic SPSC contract: the producer's release store of
// `tail` publishes the slot payload (and, transitively, every shared-data
// write sequenced before the push); the consumer's acquire load of `tail`
// consumes it. docs/ipc.md walks the full visibility chain.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace orwl::ipc {

/// "ORWLSHM" + version-independent sentinel byte. An attach that does not
/// find this exact value is looking at garbage (or at nothing at all).
inline constexpr std::uint64_t kMagic = 0x314d48534c57524full;  // "ORWLSHM1"
/// Layout version; bump on any change to the structs below.
inline constexpr std::uint32_t kVersion = 1;

/// Alignment of every block inside the segment (one cache line).
inline constexpr std::size_t kBlockAlign = 64;

inline constexpr std::size_t align_up(std::size_t n) {
  return (n + (kBlockAlign - 1)) & ~(kBlockAlign - 1);
}

/// Channel handshake, held in SegmentHeader::state. Strictly increasing
/// except Poisoned, which any side may jump to at any time.
enum class ChannelState : std::uint32_t {
  Init = 0,       ///< owner is still laying out the segment
  OwnerReady,     ///< owner primed its handles; pump is draining ops
  PeerAttached,   ///< peer validated the header and said Hello
  PeerDone,       ///< peer sent Bye; no further ops will arrive
  Poisoned,       ///< a side detected failure; segment is fail-stop
};

/// What a WireMsg means.
enum class MsgKind : std::uint32_t {
  Hello = 1,     ///< peer->owner: arg = number of peer handle slots
  Request,       ///< peer->owner: queue a request (arg = AccessMode)
  Release,       ///< peer->owner: release the granted request
  ReleaseRenew,  ///< peer->owner: atomic release + renew (iterative step)
  Grant,         ///< owner->peer: slot's request was granted (arg = ticket)
  Bye,           ///< peer->owner: clean detach; no ops follow
};

/// One fixed-size ring message. 24 bytes, no padding holes (asserted), so
/// a torn or truncated slot cannot smuggle uninitialized memory across
/// the process boundary.
struct WireMsg {
  std::uint64_t arg = 0;    ///< kind-specific payload (ticket, mode, count)
  std::uint32_t kind = 0;   ///< MsgKind
  std::uint32_t slot = 0;   ///< peer handle slot the message refers to
  std::uint32_t loc = 0;    ///< channel location index
  std::uint32_t pad = 0;    ///< keep zero; reserved
};
static_assert(sizeof(WireMsg) == 24, "wire format is fixed at 24 bytes");

/// Header of one SPSC ring block. Head (consumer cursor) and tail
/// (producer cursor) live on separate cache lines so cross-process
/// cursor updates do not false-share; `WireMsg slots[capacity]` follows.
/// Cursors are free-running (wrap at 2^32; index = cursor & (cap - 1)).
struct RingHeader {
  std::uint32_t capacity = 0;  ///< slot count, power of two
  std::uint32_t reserved = 0;
  alignas(kBlockAlign) std::atomic<std::uint32_t> head{0};
  alignas(kBlockAlign) std::atomic<std::uint32_t> tail{0};
};
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "ring cursors must be address-free");

/// One shared location: where its bytes live inside the segment.
struct LocationEntry {
  char name[40] = {};        ///< NUL-terminated, truncated if longer
  std::uint64_t offset = 0;  ///< from segment base
  std::uint64_t bytes = 0;
};
static_assert(sizeof(LocationEntry) == 56, "keep the table entry packed");

/// First bytes of the segment. Validated field-by-field at attach; any
/// mismatch is a ContractError naming the offending field.
struct SegmentHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t ring_capacity = 0;   ///< slots per ring
  std::uint64_t total_bytes = 0;     ///< segment size the creator laid out
  std::uint64_t ops_ring_off = 0;    ///< peer -> owner
  std::uint64_t grant_ring_off = 0;  ///< owner -> peer
  std::uint64_t loc_table_off = 0;
  std::uint32_t num_locations = 0;
  std::uint32_t reserved = 0;
  /// Handshake word (ChannelState); cross-process park point.
  alignas(kBlockAlign) std::atomic<std::uint32_t> state{0};
  /// Liveness registry: each side stores its pid when it comes up, so the
  /// other side can probe kill(pid, 0) when a wait times out.
  std::atomic<std::int32_t> owner_pid{0};
  std::atomic<std::int32_t> peer_pid{0};
};

}  // namespace orwl::ipc
