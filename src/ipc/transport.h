#pragma once
// The shm grant transport: how a two-process ORWL program runs.
//
// Exactly one process — the OWNER — hosts every shared location's
// FifoQueue and therefore all arbitration; FIFO order, grant tickets and
// the read-run/exclusive-write rules never cross a process boundary. The
// PEER's handles are rerouted (RequestPort) so request / release /
// release_and_renew become WireMsgs on the channel's ops ring; the owner
// pump materializes them as PROXY requests (Request::owner ==
// kRemoteOwner) in the real queues. Grants for proxies flow back through
// the RemoteGrantSink onto the grant ring; the peer pump matches them to
// the waiting Request by slot and wakes the parked handle through the
// runtime's normal delivery path — Handles and Sections are unchanged.
//
// Canonical priming across processes: the owner primes its handles first
// (manually or via run()), then start() publishes OwnerReady; the peer's
// start() waits for that before sending its primes — so the global FIFO
// order is owner's handles in their order, then the peer's in its order,
// exactly the single-process discipline.
//
// Failure semantics are FAIL-STOP (step 1): every pump wait is bounded;
// on timeout the pump probes the other pid, and a vanished counterpart
// poisons the channel and invokes EndpointOptions::on_peer_failure — by
// default a log line and _Exit(kPeerFailureExitCode), because a parked
// handle whose grant died with the peer can never be woken safely.
// Recovery/fencing is the cluster transport's problem (ROADMAP step 2).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ipc/channel.h"
#include "obs/metrics.h"
#include "orwl/queue.h"
#include "orwl/runtime.h"
#include "support/thread_annotations.h"
#include "sync/mutex.h"
#include "sync/wait_strategy.h"

namespace orwl::ipc {

/// Exit code of the default on_peer_failure handler — asserted end-to-end
/// by tools/check_ipc.py (EX_TEMPFAIL: the run may be retried).
inline constexpr int kPeerFailureExitCode = 75;

struct EndpointOptions {
  /// Spin/park behaviour of every transport wait.
  sync::WaitStrategy wait{};
  /// Pump re-check interval: an idle pump wakes this often to probe peer
  /// liveness and the stop flag.
  std::int64_t tick_ns = 20'000'000;  // 20 ms
  /// Bound on handshake and ring-full waits; exceeding it with a live
  /// peer still fails the channel (wedged counterpart).
  std::int64_t handshake_timeout_ns = 10'000'000'000;  // 10 s
  /// Called (once) when the counterpart is detected dead or wedged, with
  /// a diagnostic. Default: log + std::_Exit(kPeerFailureExitCode) —
  /// fail-stop, see the header comment. Tests override this to observe
  /// the detection without dying.
  std::function<void(const std::string&)> on_peer_failure;
};

/// GrantSink the owner Runtime routes kRemoteOwner grants to: publishes
/// {slot, ticket} onto the grant ring. Pushes from different location
/// queues (different locks) are serialized by mu_ so the ring keeps a
/// single logical producer.
class RemoteGrantSink final : public GrantSink {
 public:
  RemoteGrantSink(SpscRing& ring, obs::Counter& published);

  /// Bounded-block on a full ring before giving up (set from
  /// EndpointOptions by the endpoint that owns this sink).
  void set_push_timeout(std::int64_t ns) { push_timeout_ns_ = ns; }
  void set_failure_handler(std::function<void(const std::string&)> fn) {
    on_failure_ = std::move(fn);
  }

  // sink-contract: no-queue-reentry — serializes on its own leaf mutex
  // and pushes one WireMsg into the shm ring; never touches a FifoQueue.
  void on_grant(Request& req) override;

 private:
  SpscRing& ring_;
  obs::Counter& published_;
  sync::Mutex mu_;
  std::int64_t push_timeout_ns_ = 1'000'000'000;
  std::function<void(const std::string&)> on_failure_;
};

/// Owner-process side: binds channel locations to the runtime that hosts
/// their queues, pumps the ops ring into proxy requests, and wires the
/// RemoteGrantSink into the runtime. Lifecycle:
///
///   OwnerEndpoint ep(ch, rt);          // rt has Transport::Shm
///   ep.bind_location(0, loc);          // loc = rt.add_shared_location(...)
///   ... prime owner handles ...
///   ep.start();                        // pump up, state -> OwnerReady
///   ep.wait_peer_attached();           // peer's primes are in the FIFOs
///   rt.run();
///   ep.wait_peer_done();               // bounded wait for the peer's Bye
///   ep.stop();
class OwnerEndpoint {
 public:
  OwnerEndpoint(Channel& ch, Runtime& rt, EndpointOptions opts = {});
  ~OwnerEndpoint();

  OwnerEndpoint(const OwnerEndpoint&) = delete;
  OwnerEndpoint& operator=(const OwnerEndpoint&) = delete;

  /// Map channel location `chan_index` to the runtime location whose
  /// storage is that channel block. Before start().
  void bind_location(std::uint32_t chan_index, LocationId loc);

  void start();
  /// Stop the pump (idempotent; the destructor calls it).
  void stop();

  /// True once the peer's Bye was drained (clean shutdown).
  [[nodiscard]] bool peer_done() const {
    // order: acquire — pairs with the pump's release store; observing the
    // flag publishes the drained ring.
    return peer_done_.load(std::memory_order_acquire);
  }
  /// True once on_peer_failure fired (only observable when the handler
  /// was overridden to not exit).
  [[nodiscard]] bool failed() const {
    // order: acquire — same contract as peer_done().
    return failed_.load(std::memory_order_acquire);
  }
  /// Bounded wait (handshake_timeout_ns) until the peer announced itself
  /// primed (PeerAttached) AND the pump drained every one of its initial
  /// requests into the FIFOs. Without this barrier the owner's first
  /// release could find an empty queue and re-grant itself — canonical
  /// priming requires ALL first requests queued before anyone runs.
  [[nodiscard]] bool wait_peer_attached();
  /// Bounded wait for the peer's clean detach; false on timeout/failure.
  [[nodiscard]] bool wait_peer_done();

 private:
  /// Proxy pair for one peer handle slot: mirrors Handle's two-slot
  /// renewal so release_and_renew works for remote handles too. Requests
  /// are REFERENCED by the queue, so the vector holding these is sized
  /// once (at Hello, before anything is queued) and never reallocated.
  struct ProxySlot {
    Request reqs[2];
    int active = 0;
    bool queued = false;  ///< a request of this slot is in some FIFO
  };

  void pump();
  void handle_msg(const WireMsg& msg);
  void fail(const std::string& why);

  Channel& ch_;
  Runtime& rt_;
  EndpointOptions opts_;
  RemoteGrantSink sink_;
  obs::Counter& drained_;
  std::vector<LocationId> loc_map_;
  std::vector<ProxySlot> proxies_;  // pump-thread only after Hello
  int outstanding_ = 0;             // queued proxies; pump-thread only
  /// Peer's handle-slot count from Hello / count of Request messages the
  /// pump has queued — together they implement wait_peer_attached().
  std::atomic<std::uint32_t> hello_slots_{0};
  std::atomic<std::uint32_t> requests_seen_{0};
  std::thread pump_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> peer_done_{false};
  std::atomic<bool> failed_{false};
  bool started_ = false;
};

/// Peer-process side: reroutes handle operations onto the ops ring and
/// pumps grant announcements back into parked handles. Lifecycle:
///
///   PeerEndpoint ep(ch, rt);                    // rt has Transport::Shm
///   LocationId loc = ep.add_location(0);        // port installed
///   ... add tasks/handles on loc (prime = false) ...
///   ep.start();             // waits OwnerReady, says Hello, pump up
///   ... rt.handle(h).request() for every handle, canonical order ...
///   ep.announce_primed();   // state -> PeerAttached, owner may run
///   rt.run();
///   ep.stop();              // Bye, state -> PeerDone
class PeerEndpoint {
 public:
  PeerEndpoint(Channel& ch, Runtime& rt, EndpointOptions opts = {});
  ~PeerEndpoint();

  PeerEndpoint(const PeerEndpoint&) = delete;
  PeerEndpoint& operator=(const PeerEndpoint&) = delete;

  /// Register channel location `chan_index` with the runtime and install
  /// the forwarding port. Handles added on the returned id behave like
  /// local ones; their operations cross the ring.
  LocationId add_location(std::uint32_t chan_index, std::string name = {});

  void start();
  /// Publish PeerAttached after every handle's first request() was sent —
  /// the owner's wait_peer_attached() barrier releases only once those
  /// primes are all queued (step 1 primes ALL peer handles up front,
  /// matching the canonical in-process discipline).
  void announce_primed();
  /// Clean detach: send Bye, publish PeerDone, stop the pump.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool failed() const {
    // order: acquire — pairs with fail()'s release store.
    return failed_.load(std::memory_order_acquire);
  }

 private:
  class RemotePort final : public RequestPort {
   public:
    RemotePort(PeerEndpoint& ep, std::uint32_t chan_index)
        : ep_(ep), chan_index_(chan_index) {}
    void insert(Request& req) override;
    void release(Request& req) override;
    void release_and_renew(Request& current, Request& next) override;

   private:
    PeerEndpoint& ep_;
    std::uint32_t chan_index_;
  };

  void pump();
  void send(const WireMsg& msg);
  void fail(const std::string& why);

  Channel& ch_;
  Runtime& rt_;
  EndpointOptions opts_;
  obs::Counter& sent_;
  obs::Counter& drained_;
  std::vector<std::unique_ptr<RemotePort>> ports_;
  /// In-flight request per handle slot, written by the issuing compute
  /// thread (release) and read by the pump (acquire) when its grant
  /// arrives — atomics so the in-process ordering is explicit even
  /// though the real synchronization runs through the shm ring.
  std::vector<std::atomic<Request*>> pending_;
  sync::Mutex send_mu_;  ///< serializes ops-ring producers (leaf lock)
  std::thread pump_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  bool started_ = false;
};

}  // namespace orwl::ipc
