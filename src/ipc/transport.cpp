#include "ipc/transport.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/trace.h"
#include "support/assert.h"
#include "support/log.h"
#include "support/thread.h"

namespace orwl::ipc {

namespace {

/// Default fail-stop reaction: a parked handle whose grant lives in a
/// dead process can never be woken safely, so the survivor reports and
/// leaves with a distinctive exit code (asserted by tools/check_ipc.py).
void default_failure(const std::string& why) {
  ORWL_LOG(Error) << "ipc peer failure (fail-stop): " << why;
  std::_Exit(kPeerFailureExitCode);
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

AccessMode mode_of(std::uint64_t wire) {
  return wire == 0 ? AccessMode::Read : AccessMode::Write;
}

std::uint64_t wire_of(AccessMode m) {
  return m == AccessMode::Read ? 0 : 1;
}

}  // namespace

// --- RemoteGrantSink --------------------------------------------------------

RemoteGrantSink::RemoteGrantSink(SpscRing& ring, obs::Counter& published)
    : ring_(ring), published_(published) {}

void RemoteGrantSink::on_grant(Request& req) {
  // Announcing queue's lock is held; mu_ is a leaf below it (nothing under
  // mu_ takes any other lock), so the order queue-lock -> mu_ is safe.
  WireMsg msg;
  msg.arg = req.ticket;
  msg.kind = static_cast<std::uint32_t>(MsgKind::Grant);
  msg.slot = static_cast<std::uint32_t>(req.handle);  // peer slot id
  msg.loc = static_cast<std::uint32_t>(req.location);
  sync::LockGuard lock(mu_);
  if (ring_.push_wait(msg, push_timeout_ns_) == sync::SharedWait::TimedOut) {
    // A full grant ring for this long means the peer stopped draining —
    // outstanding grants are bounded by the peer's handle count, which
    // the Hello capacity check kept within one ring.
    (on_failure_ ? on_failure_ : default_failure)(
        "grant ring full for " + std::to_string(push_timeout_ns_) +
        " ns — peer stopped draining");
    return;
  }
  published_.add(1);
  obs::trace(obs::EventKind::RingPublish, msg.kind);
}

// --- OwnerEndpoint ----------------------------------------------------------

OwnerEndpoint::OwnerEndpoint(Channel& ch, Runtime& rt, EndpointOptions opts)
    : ch_(ch),
      rt_(rt),
      opts_(std::move(opts)),
      sink_(ch.grants(), rt.metrics().counter("ipc.grants_published")),
      drained_(rt.metrics().counter("ipc.ops_drained")) {
  ORWL_CHECK_MSG(ch_.role() == Channel::Role::Owner,
                 "OwnerEndpoint needs the channel's owner side");
  sink_.set_push_timeout(opts_.handshake_timeout_ns);
  if (opts_.on_peer_failure)
    sink_.set_failure_handler(opts_.on_peer_failure);
  loc_map_.assign(ch_.num_locations(), -1);
}

OwnerEndpoint::~OwnerEndpoint() { stop(); }

void OwnerEndpoint::bind_location(std::uint32_t chan_index, LocationId loc) {
  ORWL_CHECK_MSG(!started_, "bind_location() must precede start()");
  ORWL_CHECK_MSG(chan_index < loc_map_.size(),
                 "channel has no location " << chan_index);
  loc_map_[chan_index] = loc;
  // The runtime location's bytes must be the channel block itself, or the
  // two processes would not be looking at the same data.
  ORWL_CHECK_MSG(rt_.location_data(loc).data() ==
                     ch_.location_bytes(chan_index).data(),
                 "location " << loc << " is not backed by channel block "
                             << chan_index);
}

void OwnerEndpoint::start() {
  ORWL_CHECK_MSG(!started_, "OwnerEndpoint::start() may only run once");
  for (std::size_t i = 0; i < loc_map_.size(); ++i)
    ORWL_CHECK_MSG(loc_map_[i] >= 0,
                   "channel location " << i << " was never bound");
  started_ = true;
  // Every peer proxy slot is one more potential request owner on each
  // mapped location ring. Grow the rings NOW — still single-threaded, no
  // pump thread, owner-side primes queued but quiescent — because
  // reserve_owners rebuilds the ring and must not race queue traffic.
  // Hello (which carries the actual slot count) arrives on the pump
  // thread, possibly mid-run, so we size for the checked upper bound:
  // Hello rejects any count above the grant ring's capacity.
  for (const LocationId loc : loc_map_)
    rt_.location_queue(loc).reserve_owners(ch_.grants().capacity());
  rt_.set_remote_sink(&sink_);
  ch_.announce_self();
  pump_thread_ = std::thread([this] { pump(); });
  // OwnerReady releases the peer's handshake wait — every owner-side
  // prime that should precede the peer's must already be queued.
  ch_.set_state(ChannelState::OwnerReady);
}

void OwnerEndpoint::stop() {
  if (!started_) return;
  // order: release — the pump's next tick load (acquire) sees the flag.
  stop_.store(true, std::memory_order_release);
  if (pump_thread_.joinable()) pump_thread_.join();
}

bool OwnerEndpoint::wait_peer_attached() {
  const std::int64_t deadline = now_ns() + opts_.handshake_timeout_ns;
  // PeerAttached is published AFTER the peer's last prime hit the ops
  // ring (FIFO), so state >= PeerAttached plus `requests_seen_ == slots`
  // means every initial request is already in its FifoQueue.
  while (now_ns() < deadline) {
    if (failed() || ch_.state() == ChannelState::Poisoned) return false;
    if (ch_.state() >= ChannelState::PeerAttached) {
      // order: acquire — pairs with the pump's release increments; the
      // queued proxy requests are visible once the counts line up.
      const std::uint32_t slots =
          hello_slots_.load(std::memory_order_acquire);
      if (slots != 0 &&
          requests_seen_.load(std::memory_order_acquire) >= slots)
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

bool OwnerEndpoint::wait_peer_done() {
  const auto res = ch_.wait_state(ChannelState::PeerDone,
                                  opts_.handshake_timeout_ns, opts_.wait);
  return res == sync::SharedWait::Changed &&
         ch_.state() == ChannelState::PeerDone && !failed();
}

void OwnerEndpoint::fail(const std::string& why) {
  // order: release — pairs with failed()'s acquire load.
  failed_.store(true, std::memory_order_release);
  ch_.poison();
  (opts_.on_peer_failure ? opts_.on_peer_failure : default_failure)(why);
}

void OwnerEndpoint::pump() {
  set_current_thread_name("ipc:owner");
  // order: acquire — pairs with stop()'s release store.
  while (!stop_.load(std::memory_order_acquire)) {
    WireMsg msg;
    if (ch_.ops().pop_wait(msg, opts_.tick_ns, opts_.wait) ==
        sync::SharedWait::TimedOut) {
      // Idle tick: probe the counterpart. A peer that attached and then
      // vanished without Bye is a failure — with queued proxies its death
      // mid-section would wedge every waiter, so fail loudly either way.
      if (peer_done()) return;  // clean Bye already drained
      if (!ch_.peer_alive()) {
        fail("peer process (pid " + std::to_string(ch_.peer_pid()) +
             ") died without Bye; " + std::to_string(outstanding_) +
             " proxied request(s) outstanding");
        return;
      }
      continue;
    }
    obs::trace(obs::EventKind::RingDrain, 1);
    drained_.add(1);
    handle_msg(msg);
    if (peer_done()) return;
  }
}

void OwnerEndpoint::handle_msg(const WireMsg& msg) {
  const auto kind = static_cast<MsgKind>(msg.kind);
  switch (kind) {
    case MsgKind::Hello: {
      ORWL_CHECK_MSG(proxies_.empty(), "duplicate Hello from peer");
      const auto slots = static_cast<std::uint32_t>(msg.arg);
      // One grant can be in flight per slot; keeping slots <= capacity is
      // what makes the grant ring's push_wait a liveness bound, not a
      // deadlock (see RemoteGrantSink::on_grant).
      ORWL_CHECK_MSG(slots > 0 && slots <= ch_.grants().capacity(),
                     "peer announced " << slots
                                       << " handle slots; ring capacity is "
                                       << ch_.grants().capacity());
      // Sized exactly once, while nothing is queued: the FIFOs hold raw
      // Request pointers, so this vector must never reallocate again.
      proxies_.resize(slots);
      // order: release — pairs with wait_peer_attached()'s acquire.
      hello_slots_.store(slots, std::memory_order_release);
      return;
    }
    case MsgKind::Request: {
      ORWL_CHECK_MSG(msg.slot < proxies_.size(),
                     "peer slot " << msg.slot << " out of range");
      ORWL_CHECK_MSG(msg.loc < loc_map_.size(),
                     "peer referenced unknown channel location " << msg.loc);
      ProxySlot& ps = proxies_[msg.slot];
      ORWL_CHECK_MSG(!ps.queued,
                     "peer slot " << msg.slot << " already has a request");
      const LocationId loc = loc_map_[msg.loc];
      Request& r = ps.reqs[ps.active];
      r.mode = mode_of(msg.arg);
      r.owner = kRemoteOwner;
      r.handle = static_cast<HandleId>(msg.slot);
      r.location = loc;
      ps.queued = true;
      ++outstanding_;
      rt_.location_queue(loc).insert(r);
      // lint: allow-rmw(one-off counter for the priming barrier)
      // order: release — the insert above must be visible to whoever sees
      // the count (wait_peer_attached's priming barrier).
      requests_seen_.fetch_add(1, std::memory_order_release);
      return;
    }
    case MsgKind::Release: {
      ORWL_CHECK_MSG(msg.slot < proxies_.size(),
                     "peer slot " << msg.slot << " out of range");
      ProxySlot& ps = proxies_[msg.slot];
      ORWL_CHECK_MSG(ps.queued, "Release for idle slot " << msg.slot);
      Request& r = ps.reqs[ps.active];
      ps.queued = false;
      --outstanding_;
      rt_.location_queue(r.location).release(r);
      return;
    }
    case MsgKind::ReleaseRenew: {
      ORWL_CHECK_MSG(msg.slot < proxies_.size(),
                     "peer slot " << msg.slot << " out of range");
      ProxySlot& ps = proxies_[msg.slot];
      ORWL_CHECK_MSG(ps.queued, "ReleaseRenew for idle slot " << msg.slot);
      Request& cur = ps.reqs[ps.active];
      Request& next = ps.reqs[ps.active ^ 1];
      next.mode = mode_of(msg.arg);
      next.owner = kRemoteOwner;
      next.handle = cur.handle;
      next.location = cur.location;
      ps.active ^= 1;
      rt_.location_queue(cur.location).release_and_renew(cur, next);
      return;
    }
    case MsgKind::Bye: {
      ORWL_CHECK_MSG(outstanding_ == 0,
                     "peer said Bye with " << outstanding_
                                           << " request(s) still queued");
      // order: release — pairs with peer_done()'s acquire load.
      peer_done_.store(true, std::memory_order_release);
      return;
    }
    case MsgKind::Grant:
      break;  // owner never receives grants
  }
  fail("protocol violation: unexpected message kind " +
       std::to_string(msg.kind) + " on the ops ring");
}

// --- PeerEndpoint -----------------------------------------------------------

PeerEndpoint::PeerEndpoint(Channel& ch, Runtime& rt, EndpointOptions opts)
    : ch_(ch),
      rt_(rt),
      opts_(std::move(opts)),
      sent_(rt.metrics().counter("ipc.ops_sent")),
      drained_(rt.metrics().counter("ipc.grants_drained")) {
  ORWL_CHECK_MSG(ch_.role() == Channel::Role::Peer,
                 "PeerEndpoint needs the channel's peer side");
}

PeerEndpoint::~PeerEndpoint() { stop(); }

LocationId PeerEndpoint::add_location(std::uint32_t chan_index,
                                      std::string name) {
  ORWL_CHECK_MSG(!started_, "add_location() must precede start()");
  if (name.empty()) name = ch_.location_name(chan_index);
  const LocationId loc =
      rt_.add_shared_location(ch_.location_bytes(chan_index),
                              std::move(name));
  ports_.push_back(std::make_unique<RemotePort>(*this, chan_index));
  rt_.set_location_port(loc, ports_.back().get());
  return loc;
}

void PeerEndpoint::start() {
  ORWL_CHECK_MSG(!started_, "PeerEndpoint::start() may only run once");
  ORWL_CHECK_MSG(rt_.num_handles() > 0,
                 "peer has no handles — nothing to transport");
  // pending_ is indexed by HandleId (the slot id on the wire); all
  // handles must exist before the table is sized.
  pending_ = std::vector<std::atomic<Request*>>(
      static_cast<std::size_t>(rt_.num_handles()));
  started_ = true;
  ch_.announce_self();
  // The owner primes its handles before publishing OwnerReady; waiting
  // here is what serializes the two processes' primes (canonical order).
  const auto res = ch_.wait_state(ChannelState::OwnerReady,
                                  opts_.handshake_timeout_ns, opts_.wait);
  ORWL_CHECK_MSG(res == sync::SharedWait::Changed &&
                     ch_.state() != ChannelState::Poisoned,
                 "owner never became ready (state "
                     << static_cast<int>(ch_.state()) << ")");
  WireMsg hello;
  hello.kind = static_cast<std::uint32_t>(MsgKind::Hello);
  hello.arg = static_cast<std::uint64_t>(rt_.num_handles());
  send(hello);
  pump_thread_ = std::thread([this] { pump(); });
}

void PeerEndpoint::announce_primed() {
  ORWL_CHECK_MSG(started_, "announce_primed() before start()");
  // The primes went through send() before this call, so they sit ahead of
  // the state flip in ring order — the owner's barrier counts on that.
  ch_.set_state(ChannelState::PeerAttached);
}

void PeerEndpoint::stop() {
  if (!started_) return;
  started_ = false;
  // order: release — the pump's next load (acquire) sees the flag. Set
  // BEFORE Bye/PeerDone: the moment the owner sees PeerDone it may exit,
  // and a pump tick that still probed liveness would mistake that clean
  // exit for a crash.
  stop_.store(true, std::memory_order_release);
  if (!failed()) {
    WireMsg bye;
    bye.kind = static_cast<std::uint32_t>(MsgKind::Bye);
    send(bye);
    ch_.set_state(ChannelState::PeerDone);
  }
  if (pump_thread_.joinable()) pump_thread_.join();
}

void PeerEndpoint::send(const WireMsg& msg) {
  sync::LockGuard lock(send_mu_);
  if (ch_.ops().push_wait(msg, opts_.handshake_timeout_ns) ==
      sync::SharedWait::TimedOut) {
    fail("ops ring full — owner stopped draining");
    return;
  }
  sent_.add(1);
  obs::trace(obs::EventKind::RingPublish, msg.kind);
}

void PeerEndpoint::fail(const std::string& why) {
  // order: release — pairs with failed()'s acquire load.
  failed_.store(true, std::memory_order_release);
  ch_.poison();
  (opts_.on_peer_failure ? opts_.on_peer_failure : default_failure)(why);
}

void PeerEndpoint::pump() {
  set_current_thread_name("ipc:peer");
  // order: acquire — pairs with stop()'s release store.
  while (!stop_.load(std::memory_order_acquire)) {
    WireMsg msg;
    if (ch_.grants().pop_wait(msg, opts_.tick_ns, opts_.wait) ==
        sync::SharedWait::TimedOut) {
      // order: acquire — stop() may have flagged during the wait; a
      // stopping peer must not probe (the owner may have exited cleanly).
      if (stop_.load(std::memory_order_acquire)) return;
      // Idle tick: a dead owner can never grant again; any parked local
      // handle would wait forever — fail-stop (see header comment).
      if (!ch_.peer_alive()) {
        fail("owner process (pid " + std::to_string(ch_.peer_pid()) +
             ") died — grants can no longer arrive");
        return;
      }
      continue;
    }
    obs::trace(obs::EventKind::RingDrain, 1);
    drained_.add(1);
    const auto kind = static_cast<MsgKind>(msg.kind);
    if (kind != MsgKind::Grant) {
      fail("protocol violation: message kind " + std::to_string(msg.kind) +
           " on the grant ring");
      return;
    }
    ORWL_CHECK_MSG(msg.slot < pending_.size(),
                   "grant for unknown slot " << msg.slot);
    // order: acquire — pairs with the issuing thread's release store in
    // RemotePort; the Request's fields are fully visible here.
    Request* req = pending_[msg.slot].load(std::memory_order_acquire);
    ORWL_CHECK_MSG(req != nullptr,
                   "grant for slot " << msg.slot
                                     << " with no request in flight");
    req->ticket = msg.arg;
    // order: release — publishes the previous holder's location-buffer
    // writes (carried here by the ring's release/acquire pair) to the
    // handle's acquire load; pairs with Handle::acquire / test.
    req->state.store(RequestState::Granted, std::memory_order_release);
    rt_.route_grant(*req);
  }
}

// --- PeerEndpoint::RemotePort -----------------------------------------------

void PeerEndpoint::RemotePort::insert(Request& req) {
  ORWL_CHECK_MSG(ep_.started_, "remote location used before start()");
  // order: relaxed — the issuing thread itself consumes Requested (the
  // same contract as FifoQueue::insert_locked).
  req.state.store(RequestState::Requested, std::memory_order_relaxed);
  // order: release — pairs with the pump's acquire load when the grant
  // comes back; publishes the request's setup.
  ep_.pending_[static_cast<std::size_t>(req.handle)].store(
      &req, std::memory_order_release);
  WireMsg msg;
  msg.kind = static_cast<std::uint32_t>(MsgKind::Request);
  msg.arg = wire_of(req.mode);
  msg.slot = static_cast<std::uint32_t>(req.handle);
  msg.loc = chan_index_;
  ep_.send(msg);
}

void PeerEndpoint::RemotePort::release(Request& req) {
  // order: relaxed — only the owning thread reuses the slot, and it is
  // executing this store (same contract as FifoQueue::release_locked).
  req.state.store(RequestState::Inactive, std::memory_order_relaxed);
  // order: relaxed — no grant can be in flight for a slot whose request
  // is held Granted by this very thread; the next insert re-publishes.
  ep_.pending_[static_cast<std::size_t>(req.handle)].store(
      nullptr, std::memory_order_relaxed);
  WireMsg msg;
  msg.kind = static_cast<std::uint32_t>(MsgKind::Release);
  msg.slot = static_cast<std::uint32_t>(req.handle);
  msg.loc = chan_index_;
  ep_.send(msg);
}

void PeerEndpoint::RemotePort::release_and_renew(Request& current,
                                                 Request& next) {
  ORWL_CHECK_MSG(&current != &next,
                 "release_and_renew needs two distinct requests");
  // order: relaxed — issuing thread consumes its own Requested store.
  next.state.store(RequestState::Requested, std::memory_order_relaxed);
  // order: relaxed — see release(): the slot is quiescent while Granted
  // is held here; it is the ring (send below), not this store, that
  // orders the owner's grant against this pointer.
  ep_.pending_[static_cast<std::size_t>(next.handle)].store(
      &next, std::memory_order_relaxed);
  // order: relaxed — owning-thread slot reuse, as in release().
  current.state.store(RequestState::Inactive, std::memory_order_relaxed);
  WireMsg msg;
  msg.kind = static_cast<std::uint32_t>(MsgKind::ReleaseRenew);
  msg.arg = wire_of(next.mode);
  msg.slot = static_cast<std::uint32_t>(next.handle);
  msg.loc = chan_index_;
  ep_.send(msg);
}

}  // namespace orwl::ipc
