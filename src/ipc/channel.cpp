#include "ipc/channel.h"

#include <cstring>
#include <new>

#ifdef __linux__
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#endif

#include "support/assert.h"
#include "sync/shared_futex.h"

namespace orwl::ipc {

namespace {

/// Segment map: header, ops ring, grant ring, location table, data.
struct Layout {
  std::size_t ops_off, grant_off, table_off, data_off, total;
};

Layout compute_layout(std::uint32_t ring_capacity,
                      const std::vector<Channel::LocationSpec>& locs) {
  Layout l{};
  l.ops_off = align_up(sizeof(SegmentHeader));
  l.grant_off = l.ops_off + SpscRing::bytes_needed(ring_capacity);
  l.table_off = l.grant_off + SpscRing::bytes_needed(ring_capacity);
  l.data_off =
      l.table_off + align_up(sizeof(LocationEntry) * locs.size());
  std::size_t cursor = l.data_off;
  for (const auto& spec : locs) cursor += align_up(spec.bytes);
  l.total = cursor;
  return l;
}

}  // namespace

Channel::Channel(mem::Segment seg, Role role)
    : seg_(std::move(seg)), role_(role) {}

Channel Channel::create(const CreateOptions& opts) {
  ORWL_CHECK_MSG(!opts.locations.empty(),
                 "a channel needs at least one shared location");
  const Layout l = compute_layout(opts.ring_capacity, opts.locations);
  Channel ch(mem::Segment::create_shm(opts.shm_name, l.total), Role::Owner);
  std::byte* base = ch.seg_.bytes().data();

  auto* hdr = new (base) SegmentHeader{};
  hdr->ring_capacity = opts.ring_capacity;
  hdr->total_bytes = l.total;
  hdr->ops_ring_off = l.ops_off;
  hdr->grant_ring_off = l.grant_off;
  hdr->loc_table_off = l.table_off;
  hdr->num_locations = static_cast<std::uint32_t>(opts.locations.size());

  ch.ops_ = SpscRing::create(base + l.ops_off, opts.ring_capacity);
  ch.grants_ = SpscRing::create(base + l.grant_off, opts.ring_capacity);

  auto* table = reinterpret_cast<LocationEntry*>(base + l.table_off);
  std::size_t cursor = l.data_off;
  for (std::size_t i = 0; i < opts.locations.size(); ++i) {
    LocationEntry& e = table[i];
    std::strncpy(e.name, opts.locations[i].name.c_str(),
                 sizeof(e.name) - 1);
    e.offset = cursor;
    e.bytes = opts.locations[i].bytes;
    cursor += align_up(opts.locations[i].bytes);
  }

  ch.hdr_ = hdr;
  // Magic and version go in LAST: an attacher that races segment setup
  // sees a zero magic and is rejected, never a half-built table.
  hdr->version = kVersion;
  // order: release — publishes the full layout above before the magic
  // becomes visible to a concurrently attaching peer.
  std::atomic_thread_fence(std::memory_order_release);
  hdr->magic = kMagic;
  return ch;
}

Channel Channel::attach(const std::string& shm_name) {
  Channel ch(mem::Segment::attach_shm(shm_name), Role::Peer);
  ch.map(/*validate=*/true);
  return ch;
}

Channel Channel::attach_fd(int fd) {
  Channel ch(mem::Segment::attach_shm_fd(fd), Role::Peer);
  ch.map(/*validate=*/true);
  return ch;
}

void Channel::map(bool validate) {
  std::span<std::byte> bytes = seg_.bytes();
  ORWL_CHECK_MSG(bytes.size() >= sizeof(SegmentHeader),
                 "segment truncated: " << bytes.size()
                                       << " bytes cannot hold the header");
  std::byte* base = bytes.data();
  auto* hdr = reinterpret_cast<SegmentHeader*>(base);
  if (validate) {
    ORWL_CHECK_MSG(hdr->magic == kMagic,
                   "segment magic mismatch (got 0x" << std::hex << hdr->magic
                                                    << "): not an ORWL "
                                                       "channel, or not "
                                                       "finished yet");
    ORWL_CHECK_MSG(hdr->version == kVersion,
                   "segment layout version " << hdr->version
                                             << " != expected " << kVersion);
    ORWL_CHECK_MSG(hdr->total_bytes <= bytes.size(),
                   "segment truncated: header claims "
                       << hdr->total_bytes << " bytes, mapping holds "
                       << bytes.size());
    ORWL_CHECK_MSG(hdr->ops_ring_off >= sizeof(SegmentHeader) &&
                       hdr->grant_ring_off > hdr->ops_ring_off &&
                       hdr->loc_table_off > hdr->grant_ring_off &&
                       hdr->loc_table_off +
                               sizeof(LocationEntry) * hdr->num_locations <=
                           hdr->total_bytes,
                   "segment header offsets are inconsistent");
  }
  hdr_ = hdr;
  ops_ = SpscRing::attach(base + hdr->ops_ring_off,
                          hdr->grant_ring_off - hdr->ops_ring_off);
  grants_ = SpscRing::attach(base + hdr->grant_ring_off,
                             hdr->loc_table_off - hdr->grant_ring_off);
  if (validate) {
    ORWL_CHECK_MSG(ops_.capacity() == hdr->ring_capacity &&
                       grants_.capacity() == hdr->ring_capacity,
                   "ring capacity disagrees with the segment header");
    for (std::uint32_t i = 0; i < hdr->num_locations; ++i) {
      const LocationEntry& e = entry(i);
      ORWL_CHECK_MSG(e.offset + e.bytes <= hdr->total_bytes,
                     "location " << i << " extends past the segment end");
    }
  }
}

const LocationEntry& Channel::entry(std::uint32_t index) const {
  ORWL_CHECK_MSG(index < num_locations(),
                 "location index " << index << " out of range");
  const auto* table = reinterpret_cast<const LocationEntry*>(
      seg_.bytes().data() + hdr_->loc_table_off);
  return table[index];
}

std::uint32_t Channel::num_locations() const { return hdr_->num_locations; }

std::string Channel::location_name(std::uint32_t index) const {
  const LocationEntry& e = entry(index);
  return {e.name, strnlen(e.name, sizeof(e.name))};
}

std::span<std::byte> Channel::location_bytes(std::uint32_t index) {
  const LocationEntry& e = entry(index);
  return seg_.bytes().subspan(static_cast<std::size_t>(e.offset),
                              static_cast<std::size_t>(e.bytes));
}

ChannelState Channel::state() const {
  // order: acquire — pairs with set_state's release store: observing a
  // state also publishes whatever the mover wrote before moving it.
  return static_cast<ChannelState>(
      hdr_->state.load(std::memory_order_acquire));
}

void Channel::set_state(ChannelState s) {
  // order: acquire — read-side of the transition check only.
  const auto cur = static_cast<ChannelState>(
      hdr_->state.load(std::memory_order_acquire));
  if (cur == ChannelState::Poisoned) return;  // terminal, stay poisoned
  ORWL_CHECK_MSG(s == ChannelState::Poisoned || s > cur,
                 "channel state may only advance (have "
                     << static_cast<int>(cur) << ", asked for "
                     << static_cast<int>(s) << ")");
  // order: release — publishes everything this side wrote (primed queues,
  // segment setup) to the peer's acquire load / parked wait.
  hdr_->state.store(static_cast<std::uint32_t>(s),
                    std::memory_order_release);
  sync::shared_futex_wake_all(hdr_->state);
}

sync::SharedWait Channel::wait_state(ChannelState at_least,
                                     std::int64_t timeout_ns,
                                     const sync::WaitStrategy& ws) {
  for (;;) {
    // order: acquire — see state().
    const std::uint32_t cur = hdr_->state.load(std::memory_order_acquire);
    const auto cs = static_cast<ChannelState>(cur);
    if (cs >= at_least || cs == ChannelState::Poisoned)
      return sync::SharedWait::Changed;
    if (sync::wait_while_equal_shared(hdr_->state, cur, ws, timeout_ns) ==
        sync::SharedWait::TimedOut)
      return sync::SharedWait::TimedOut;
  }
}

void Channel::announce_self() {
#ifdef __linux__
  const auto pid = static_cast<std::int32_t>(::getpid());
#else
  const std::int32_t pid = 1;  // liveness probing is Linux-only anyway
#endif
  // order: release — the pid store is part of coming-up; the prober's
  // acquire load sees a fully attached side.
  (role_ == Role::Owner ? hdr_->owner_pid : hdr_->peer_pid)
      .store(pid, std::memory_order_release);
}

int Channel::peer_pid() const {
  // order: acquire — pairs with announce_self's release store.
  return (role_ == Role::Owner ? hdr_->peer_pid : hdr_->owner_pid)
      .load(std::memory_order_acquire);
}

bool Channel::peer_alive() const {
  const int pid = peer_pid();
  if (pid == 0) return true;  // not announced yet: give it time
#ifdef __linux__
  return ::kill(pid, 0) == 0 || errno != ESRCH;
#else
  return true;
#endif
}

}  // namespace orwl::ipc
