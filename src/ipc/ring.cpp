#include "ipc/ring.h"

#include <bit>
#include <chrono>
#include <thread>

#include "support/assert.h"
#include "sync/waiter.h"

namespace orwl::ipc {

namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t SpscRing::bytes_needed(std::uint32_t capacity) {
  return align_up(sizeof(RingHeader)) +
         align_up(sizeof(WireMsg) * capacity);
}

SpscRing SpscRing::create(std::byte* base, std::uint32_t capacity) {
  ORWL_CHECK_MSG(base != nullptr, "ring needs memory to live in");
  ORWL_CHECK_MSG(capacity > 0 && std::has_single_bit(capacity),
                 "ring capacity must be a nonzero power of two, got "
                     << capacity);
  auto* hdr = new (base) RingHeader{};
  hdr->capacity = capacity;
  auto* slots =
      reinterpret_cast<WireMsg*>(base + align_up(sizeof(RingHeader)));
  return {hdr, slots};
}

SpscRing SpscRing::attach(std::byte* base, std::size_t avail) {
  ORWL_CHECK_MSG(base != nullptr, "ring attach needs memory");
  ORWL_CHECK_MSG(avail >= sizeof(RingHeader),
                 "ring block truncated: " << avail << " bytes cannot hold a "
                                          << sizeof(RingHeader)
                                          << "-byte header");
  // std::launder not needed: the creator placement-new'ed the same type at
  // the same address, and the other process sees plain object bytes.
  auto* hdr = reinterpret_cast<RingHeader*>(base);
  const std::uint32_t cap = hdr->capacity;
  ORWL_CHECK_MSG(cap > 0 && std::has_single_bit(cap),
                 "ring header corrupt: capacity " << cap
                                                  << " is not a power of two");
  ORWL_CHECK_MSG(bytes_needed(cap) <= avail,
                 "ring block truncated: capacity " << cap << " needs "
                                                   << bytes_needed(cap)
                                                   << " bytes, have "
                                                   << avail);
  auto* slots =
      reinterpret_cast<WireMsg*>(base + align_up(sizeof(RingHeader)));
  return {hdr, slots};
}

std::uint32_t SpscRing::size() const {
  // order: acquire on tail — a consumer calling size() may pop what it
  // counted; the producer-side head load needs no payload (relaxed).
  const std::uint32_t t = hdr_->tail.load(std::memory_order_acquire);
  const std::uint32_t h = hdr_->head.load(std::memory_order_relaxed);
  return t - h;
}

bool SpscRing::try_push(const WireMsg& msg) {
  // order: relaxed — only this producer advances tail.
  const std::uint32_t t = hdr_->tail.load(std::memory_order_relaxed);
  // order: acquire — pairs with the consumer's release store of head,
  // ensuring the slot we are about to overwrite was fully consumed.
  const std::uint32_t h = hdr_->head.load(std::memory_order_acquire);
  if (t - h == hdr_->capacity) return false;  // full
  slots_[t & (hdr_->capacity - 1)] = msg;
  // order: release — publishes the slot write (and every shared write
  // sequenced before this push) to the consumer's acquire load of tail.
  hdr_->tail.store(t + 1, std::memory_order_release);
  sync::shared_futex_wake_all(hdr_->tail);
  return true;
}

sync::SharedWait SpscRing::push_wait(const WireMsg& msg,
                                     std::int64_t timeout_ns) {
  const std::int64_t deadline = now_ns() + timeout_ns;
  int round = 0;
  while (!try_push(msg)) {
    if (now_ns() >= deadline) return sync::SharedWait::TimedOut;
    // Full means the consumer is behind by a whole ring — spin briefly,
    // then yield; no futex park (the consumer does not wake producers).
    if (round++ < sync::WaitStrategy::kRelaxRounds)
      sync::cpu_relax();
    else
      std::this_thread::yield();
  }
  return sync::SharedWait::Changed;
}

bool SpscRing::try_pop(WireMsg& out) {
  // order: relaxed — only this consumer advances head.
  const std::uint32_t h = hdr_->head.load(std::memory_order_relaxed);
  // order: acquire — pairs with the producer's release store of tail; see
  // the visibility contract in ring.h.
  const std::uint32_t t = hdr_->tail.load(std::memory_order_acquire);
  if (t == h) return false;  // empty
  out = slots_[h & (hdr_->capacity - 1)];
  // order: release — hands the slot back to the producer (its acquire
  // load of head in try_push).
  hdr_->head.store(h + 1, std::memory_order_release);
  return true;
}

sync::SharedWait SpscRing::pop_wait(WireMsg& out, std::int64_t timeout_ns,
                                    const sync::WaitStrategy& ws) {
  if (try_pop(out)) return sync::SharedWait::Changed;
  const std::int64_t deadline = now_ns() + timeout_ns;
  for (;;) {
    // order: relaxed — the park below re-reads with acquire; this load
    // only picks the value to park against.
    const std::uint32_t t = hdr_->tail.load(std::memory_order_relaxed);
    if (try_pop(out)) return sync::SharedWait::Changed;
    const std::int64_t left = deadline - now_ns();
    if (left <= 0) return sync::SharedWait::TimedOut;
    (void)sync::wait_while_equal_shared(hdr_->tail, t, ws, left);
  }
}

}  // namespace orwl::ipc
