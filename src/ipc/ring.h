#pragma once
// SpscRing: a fixed-slot single-producer / single-consumer message ring
// living in shared memory, parked on cross-process with sync/shared_futex.
//
// The ring is a non-owning VIEW: create()/attach() overlay a RingHeader +
// slot array onto caller-provided bytes (a block of an ipc::Channel
// segment, or a heap buffer in tests). One process pushes, the other
// pops; the roles are fixed per ring, which is why a channel carries two.
//
// Visibility contract (the one sentence everything hangs on): the
// producer writes the slot, then stores `tail` with release and wakes the
// shared futex; the consumer's acquire load of `tail` therefore observes
// the slot payload AND every shared-memory write the producer sequenced
// before the push — this is how location buffer writes travel with the
// grant messages that license reading them.
//
// Waits are always bounded (shared_futex.h rationale: a dead peer wakes
// nobody); pop_wait returning TimedOut is the caller's cue to probe peer
// liveness and re-arm.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "ipc/layout.h"
#include "sync/shared_futex.h"
#include "sync/wait_strategy.h"

namespace orwl::ipc {

class SpscRing {
 public:
  /// Bytes a ring of `capacity` slots occupies (header + slots, aligned).
  [[nodiscard]] static std::size_t bytes_needed(std::uint32_t capacity);

  /// Overlay a new ring onto `base` (zeroed, kBlockAlign-aligned, at
  /// least bytes_needed(capacity) long). `capacity` must be a nonzero
  /// power of two.
  [[nodiscard]] static SpscRing create(std::byte* base,
                                       std::uint32_t capacity);

  /// Overlay an EXISTING ring. Validates the stored capacity (nonzero
  /// power of two, slots within `avail` bytes) and throws ContractError
  /// on anything suspicious — a truncated or scribbled-on segment must
  /// fail here, not corrupt the protocol later.
  [[nodiscard]] static SpscRing attach(std::byte* base, std::size_t avail);

  SpscRing() = default;

  [[nodiscard]] std::uint32_t capacity() const { return hdr_->capacity; }
  /// Messages currently buffered (racy snapshot; exact for the caller's
  /// own role: the producer can only under-, the consumer over-estimate).
  [[nodiscard]] std::uint32_t size() const;

  /// Producer: append `msg`; false when the ring is full. Wakes the
  /// consumer on success.
  bool try_push(const WireMsg& msg);

  /// Producer: try_push with a bounded spin/yield retry. A correctly
  /// sized ring (capacity >= outstanding requests) never fills, so
  /// exhausting `timeout_ns` means the consumer is gone or wedged.
  [[nodiscard]] sync::SharedWait push_wait(const WireMsg& msg,
                                           std::int64_t timeout_ns);

  /// Consumer: pop into `out`; false when empty.
  bool try_pop(WireMsg& out);

  /// Consumer: pop, parking on the tail word up to `timeout_ns`.
  /// Changed => `out` holds a message; TimedOut => probe liveness, re-arm.
  [[nodiscard]] sync::SharedWait pop_wait(WireMsg& out,
                                          std::int64_t timeout_ns,
                                          const sync::WaitStrategy& ws);

 private:
  SpscRing(RingHeader* hdr, WireMsg* slots) : hdr_(hdr), slots_(slots) {}

  RingHeader* hdr_ = nullptr;
  WireMsg* slots_ = nullptr;
};

}  // namespace orwl::ipc
