#include "sim/cost_model.h"

#include "sim/calibration.h"
#include "support/assert.h"
#include "support/cast.h"

namespace orwl::sim {

void LinkCost::check(const topo::Topology& topo) const {
  ORWL_CHECK_MSG(ssize_of(latency) == topo.depth(),
                 "latency ladder has " << latency.size() << " entries, "
                                       << "topology depth is "
                                       << topo.depth());
  ORWL_CHECK_MSG(ssize_of(bandwidth) == topo.depth(),
                 "bandwidth ladder size mismatch");
  for (double l : latency) ORWL_CHECK_MSG(l >= 0.0, "negative latency");
  for (double b : bandwidth) ORWL_CHECK_MSG(b > 0.0, "non-positive bandwidth");
  ORWL_CHECK(domain_bandwidth > 0.0 && compute_rate > 0.0);
  ORWL_CHECK_MSG(grant_overhead >= 0.0, "negative grant overhead");
  ORWL_CHECK_MSG(grant_batch_overhead >= 0.0,
                 "negative batch grant overhead");
  ORWL_CHECK_MSG(migration_cost >= 0.0, "negative migration cost");
  ORWL_CHECK_MSG(interleave_bandwidth > 0.0,
                 "non-positive interleave bandwidth");
  ORWL_CHECK_MSG(page_move_bandwidth > 0.0,
                 "non-positive page-move bandwidth");
}

LinkCost LinkCost::defaults_for(const topo::Topology& topo) {
  LinkCost c;
  const int depth = topo.depth();
  c.latency.resize(static_cast<std::size_t>(depth));
  c.bandwidth.resize(static_cast<std::size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    // Distance of the dca from the leaves: 0 = same PU, 1 = same core, ...
    const int up = depth - 1 - d;
    double lat = 0.0;
    double bw = 0.0;
    switch (up) {
      case 0: lat = 2e-8; bw = 60e9; break;   // same PU (register/L1)
      case 1: lat = 5e-8; bw = 40e9; break;   // same core / L2
      case 2: lat = 2e-7; bw = 20e9; break;   // same package / L3
      default: lat = 1e-6; bw = 6e9; break;   // cross package / interconnect
    }
    c.latency[static_cast<std::size_t>(d)] = lat;
    c.bandwidth[static_cast<std::size_t>(d)] = bw;
  }
  // Measured host calibration, if the environment activates one for THIS
  // host (sim/calibration.h). Without a record every default above stands
  // untouched, so recorded simulation outputs remain bit-identical.
  if (const CalibrationRecord* cal = active_calibration()) {
    if (cal->park_wake_pair_seconds > 0.0) {
      // The bench measures the blocking-vs-spinning handoff delta as one
      // pair; the model needs halves, and nothing distinguishes them.
      c.park_latency = cal->park_wake_pair_seconds / 2.0;
      c.wake_latency = cal->park_wake_pair_seconds / 2.0;
    }
    if (cal->grant_batch_overhead_seconds > 0.0)
      c.grant_batch_overhead = cal->grant_batch_overhead_seconds;
  }
  return c;
}

}  // namespace orwl::sim
