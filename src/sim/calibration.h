#pragma once
// Host-measured calibration records for the analytic cost model.
//
// The baked LinkCost defaults carry a hard-coded park/wake split (0.3 us
// each) chosen to reproduce the paper's headline numbers. A real host can
// do better: bench/micro_orwl_overhead measures the futex park+wake pair
// (park_wake_calibration case) and the batch-amortized announce cost
// (runtime_shared_reads batch sweep) and, with --calibration PATH, writes
// them into a small host-fingerprinted record. When the environment
// variable ORWL_CALIBRATION names such a record AND its fingerprint
// matches the current host, LinkCost::defaults_for folds the measured
// numbers in; in every other case the baked defaults stand, so recorded
// simulation results stay bit-identical unless a calibration is
// explicitly activated for the host it was measured on.
//
// The record format is deliberately trivial (one `key value` per line,
// `#` comments) so it diffs cleanly next to the BENCH_*.json recordings.

#include <optional>
#include <string>

namespace orwl::sim {

/// One host-fingerprinted measurement record.
struct CalibrationRecord {
  std::string host;  ///< fingerprint of the measuring host (gethostname)
  /// Measured futex park+wake pair (seconds); split evenly onto
  /// LinkCost::park_latency / wake_latency.
  double park_wake_pair_seconds = 0.0;
  /// Batch-amortized per-grant announcement cost (seconds) for shared-read
  /// runs; 0 = not measured (LinkCost::grant_batch_overhead keeps its
  /// default, which equals grant_overhead — i.e. no batch discount).
  double grant_batch_overhead_seconds = 0.0;
};

/// Parse a record file. Unknown keys are ignored (forward compatibility);
/// nullopt on a missing or unparsable file. Pure: no environment access,
/// no host check — tests feed it arbitrary files.
std::optional<CalibrationRecord> load_calibration_file(
    const std::string& path);

/// Serialize a record in the file format load_calibration_file reads.
std::string format_calibration(const CalibrationRecord& rec);

/// This host's fingerprint (gethostname; "unknown" when unavailable).
std::string host_fingerprint();

/// The record the environment activates for THIS host: the file named by
/// ORWL_CALIBRATION, iff it loads and its host matches host_fingerprint().
/// Resolved once per process (first call) and cached; nullptr when the
/// variable is unset, the file is bad, or the host differs.
const CalibrationRecord* active_calibration();

}  // namespace orwl::sim
