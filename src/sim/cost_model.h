#pragma once
// LinkCost: the analytic machine model used by the simulator. All data
// movement between two PUs is charged according to the depth of their
// deepest common ancestor (dca) in the topology tree: crossing a package
// boundary is slower than staying inside a shared cache, which is slower
// than staying on one core.
//
// This replaces the paper's physical 24-socket SMP (unavailable here); the
// defaults are calibrated so the simulated Figure 1 lands near the paper's
// headline numbers (ORWL Bind ~11 s at 192 cores; see EXPERIMENTS.md).

#include <vector>

#include "topo/topology.h"

namespace orwl::sim {

struct LinkCost {
  /// Per-dca-depth one-way latency in seconds (size = topo.depth()).
  /// Index 0 = the root (cross-package), back() = same PU.
  std::vector<double> latency;
  /// Per-dca-depth per-flow bandwidth in bytes/s.
  std::vector<double> bandwidth;

  /// Aggregate bandwidth of one memory domain (NUMA node / package).
  /// Requests from many threads to one domain serialize against this —
  /// the first-touch hotspot that ruins the naive OpenMP version.
  double domain_bandwidth = 24e9;

  /// Local-vs-remote memory model for the location-memory policies
  /// (mem/policy.h). Effective per-thread stream bandwidth when the
  /// thread's pages are interleaved across all domains (numa_interleave):
  /// between the local-stream and cross-package figures, since 1/N of the
  /// lines are local and the rest pay the interconnect.
  double interleave_bandwidth = 12e9;

  /// Bandwidth at which the runtime migrates location pages to a new node
  /// at a re-placement boundary (mbind MPOL_MF_MOVE). Charged once per
  /// moved byte under memory policy numa_local; heap never moves pages
  /// (and keeps paying remote streams instead).
  double page_move_bandwidth = 4e9;

  /// Effective per-core compute throughput (flops/s) for the memory-bound
  /// stencil kernel. An *effective* number including local-memory stalls,
  /// calibrated so ORWL Bind lands near the paper's ~11 s at 192 cores.
  double compute_rate = 130e6;

  /// Cost of granting one lock request through a well-placed control path.
  double grant_overhead = 2e-6;
  /// Per-grant cost of an acquisition announced as part of a batched
  /// shared-read run (FifoQueue::on_grant_batch: one dispatch + one event
  /// post amortized over the run). DEFAULTS EQUAL to grant_overhead, so
  /// the simulator charges exactly the pre-batching arithmetic — recorded
  /// results stay bit-identical — until a host calibration record
  /// (sim/calibration.h, env ORWL_CALIBRATION) supplies a measured value.
  double grant_batch_overhead = 2e-6;
  /// Extra per-grant cost when the control thread is unmanaged (OS-placed):
  /// wakeup migration and queueing delay.
  double unmanaged_grant_penalty = 20e-6;

  /// Futex park / wake halves of a blocking grant delivery, measured by
  /// bench/micro_orwl_overhead's park_wake_calibration case (the delta
  /// between a blocking and a spinning handoff of one atomic word).
  /// Spin-mode workloads (Workload::spin_waits) dodge this pair on the
  /// grant path, so the simulator discounts their per-grant cost by it —
  /// floored at grant_overhead/4, since announcement and queue work
  /// remain. Blocking workloads are charged grant_overhead unchanged,
  /// keeping recorded blocking-mode results bit-identical. Defaults split
  /// the calibration's measured ~0.6 us blocking-vs-spinning handoff
  /// delta evenly across the two halves.
  double park_latency = 0.3e-6;
  double wake_latency = 0.3e-6;

  /// Per-hop cost of a fork-join barrier (the barrier costs
  /// barrier_hop * ceil(log2(P)) * 2 per iteration).
  double barrier_hop = 3e-6;

  /// One-time cost of migrating one thread to a new PU during online
  /// re-placement (epoch boundary): the setaffinity call, the scheduler
  /// move, and the warm-cache refill of the thread's hot state. Charged
  /// per task whose compute PU changed; the colder data penalty (first
  /// touch does not move) is charged naturally through the remote-memory
  /// streams of the following epochs.
  double migration_cost = 20e-6;

  /// Validate vector sizes against a topology. Throws ContractError.
  void check(const topo::Topology& topo) const;

  /// Calibrated defaults for any topology: a latency/bandwidth ladder by
  /// distance-from-leaf (same PU, same core, same package, cross package).
  /// When the environment activates a host calibration record
  /// (ORWL_CALIBRATION, host fingerprint matching — see sim/calibration.h)
  /// the measured park/wake pair replaces the baked 0.3/0.3 us split and a
  /// measured batch announce cost replaces grant_batch_overhead; otherwise
  /// the baked numbers stand unchanged.
  static LinkCost defaults_for(const topo::Topology& topo);
};

}  // namespace orwl::sim
