#include "sim/calibration.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifdef __linux__
#include <unistd.h>
#endif

namespace orwl::sim {

std::optional<CalibrationRecord> load_calibration_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CalibrationRecord rec;
  bool saw_host = false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;  // blank / comment-only line
    if (key == "host") {
      if (!(fields >> rec.host)) return std::nullopt;
      saw_host = true;
    } else if (key == "park_wake_pair_seconds") {
      if (!(fields >> rec.park_wake_pair_seconds)) return std::nullopt;
    } else if (key == "grant_batch_overhead_seconds") {
      if (!(fields >> rec.grant_batch_overhead_seconds)) return std::nullopt;
    }
    // Unknown keys: ignored, so older binaries read newer records.
  }
  if (!saw_host) return std::nullopt;
  if (rec.park_wake_pair_seconds < 0.0 ||
      rec.grant_batch_overhead_seconds < 0.0)
    return std::nullopt;
  return rec;
}

std::string format_calibration(const CalibrationRecord& rec) {
  std::ostringstream out;
  out << "# orwl calibration record (sim/calibration.h); measured by\n"
      << "# bench/micro_orwl_overhead --calibration on the host below.\n"
      << "host " << rec.host << "\n";
  out.precision(17);
  out << "park_wake_pair_seconds " << rec.park_wake_pair_seconds << "\n"
      << "grant_batch_overhead_seconds " << rec.grant_batch_overhead_seconds
      << "\n";
  return out.str();
}

std::string host_fingerprint() {
#ifdef __linux__
  char name[256] = {};
  if (gethostname(name, sizeof name - 1) == 0 && name[0] != '\0')
    return name;
#endif
  return "unknown";
}

const CalibrationRecord* active_calibration() {
  // Resolved once: the env var and the file are read on the first call and
  // the decision is frozen for the process — simulations within one run
  // must all see the same model.
  static const std::optional<CalibrationRecord> active =
      []() -> std::optional<CalibrationRecord> {
    const char* path = std::getenv("ORWL_CALIBRATION");
    if (path == nullptr || *path == '\0') return std::nullopt;
    std::optional<CalibrationRecord> rec = load_calibration_file(path);
    if (!rec) return std::nullopt;
    if (rec->host != host_fingerprint()) return std::nullopt;
    return rec;
  }();
  return active ? &*active : nullptr;
}

}  // namespace orwl::sim
