#pragma once
// Simulation models of the three Livermore Kernel 23 implementations of
// the paper's Figure 1:
//
//  * OpenMP      — fork-join sweeps over row strips, barrier per iteration,
//                  serial first touch (all data in PU 0's memory domain),
//  * ORWL NoBind — the ORWL block decomposition (one main operation plus
//                  one frontier operation per neighbour, each its own
//                  thread) with all threads left to the OS scheduler,
//  * ORWL Bind   — the same decomposition bound with Algorithm 1
//                  (TreeMatch + oversubscription + control threads).
//
// The models share the cost model and the machine; only placement and
// synchronization differ — exactly the variable the paper isolates.

#include <cstdint>
#include <string>
#include <utility>

#include "sim/simulator.h"
#include "treematch/treematch.h"

namespace orwl::sim {

enum class Lk23Impl { OpenMP, OrwlNoBind, OrwlBind };

const char* to_string(Lk23Impl impl);

struct Lk23SimSpec {
  int matrix_n = 16384;   ///< N×N doubles (paper: 16384)
  int iterations = 100;   ///< paper: 100
  int tasks = 192;        ///< number of blocks == cores exercised
  /// Effective flops per stencil point (LK23: 4 mul + 4 add + relax).
  double flops_per_point = 10.0;
  /// Effective bytes streamed from memory per point and iteration (za plus
  /// the five coefficient arrays of the original kernel: ~6 streams).
  double bytes_per_point = 48.0;
  std::uint64_t seed = 7;
};

/// Near-square factorization bx*by == tasks with bx >= by.
std::pair<int, int> block_grid(int tasks);

/// A fully built model: workload + placement (+ the TreeMatch result for
/// OrwlBind, for diagnostics).
struct Lk23Model {
  Workload load;
  Placement place;
  treematch::Result mapping;  ///< only populated for OrwlBind
  int num_threads = 0;
};

Lk23Model build_lk23_model(Lk23Impl impl, const topo::Topology& topo,
                           const Lk23SimSpec& spec);

/// Convenience: build and run.
Report simulate_lk23(Lk23Impl impl, const topo::Topology& topo,
                     const LinkCost& cost, const Lk23SimSpec& spec);

}  // namespace orwl::sim
