#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/cast.h"
#include "support/rng.h"

namespace orwl::sim {

namespace {

// Memory domain of a PU: the package (or the machine when the tree has no
// package level). Identified by the ancestor object at the domain depth.
int domain_depth(const topo::Topology& topo) {
  for (int d = 0; d < topo.depth(); ++d) {
    for (const topo::Object* obj : topo.level(d)) {
      if (obj->type == topo::ObjType::Package ||
          obj->type == topo::ObjType::NUMANode)
        return d;
    }
  }
  return 0;  // single domain
}

int domain_of(const topo::Topology& topo, int pu, int dom_depth) {
  const topo::Object* obj = topo.pus()[static_cast<std::size_t>(pu)];
  while (obj->depth > dom_depth) obj = obj->parent;
  return obj->logical_index;
}

}  // namespace

int memory_domain_of(const topo::Topology& topo, int pu) {
  ORWL_CHECK_MSG(pu >= 0 && pu < topo.num_pus(), "bad pu " << pu);
  return domain_of(topo, pu, domain_depth(topo));
}

Report simulate(const topo::Topology& topo, const LinkCost& cost,
                const Workload& load, const Placement& placement,
                std::uint64_t seed) {
  cost.check(topo);
  const int n = static_cast<int>(load.threads.size());
  ORWL_CHECK_MSG(n >= 1, "workload has no threads");
  ORWL_CHECK_MSG(ssize_of(placement.compute_pu) == n,
                 "placement.compute_pu size mismatch");
  ORWL_CHECK_MSG(ssize_of(placement.control_pu) == n,
                 "placement.control_pu size mismatch");
  ORWL_CHECK_MSG(ssize_of(placement.data_home_pu) == n,
                 "placement.data_home_pu size mismatch");
  ORWL_CHECK_MSG(placement.data_interleaved.empty() ||
                     ssize_of(placement.data_interleaved) == n,
                 "placement.data_interleaved size mismatch");
  ORWL_CHECK_MSG(load.iterations >= 1, "need at least one iteration");
  const int npus = topo.num_pus();
  for (const Edge& e : load.edges)
    ORWL_CHECK_MSG(e.a >= 0 && e.a < n && e.b >= 0 && e.b < n && e.a != e.b,
                   "bad edge (" << e.a << ',' << e.b << ')');

  const auto pus = topo.pus();
  const int dom_depth = domain_depth(topo);
  const int ndomains =
      static_cast<int>(topo.level(dom_depth).size());

  ORWL_CHECK_MSG(placement.choices == 1 || placement.choices == 2,
                 "placement.choices must be 1 or 2");
  Xoshiro256 rng(seed);

  // Estimated per-thread weight for the scheduler model (what the OS sees
  // as runnable load): compute plus an optimistic local memory stream.
  std::vector<double> weight(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const SimThread& th = load.threads[static_cast<std::size_t>(t)];
    weight[static_cast<std::size_t>(t)] =
        th.flops / cost.compute_rate + th.mem_bytes / cost.bandwidth.back();
  }

  std::vector<double> est_load(static_cast<std::size_t>(npus), 0.0);
  // Fixed threads contribute to the load the scheduler balances around.
  for (int t = 0; t < n; ++t) {
    const int fixed = placement.compute_pu[static_cast<std::size_t>(t)];
    if (fixed >= 0)
      est_load[static_cast<std::size_t>(fixed)] +=
          weight[static_cast<std::size_t>(t)];
  }

  auto pick_pu = [&]() {
    const int a = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(npus)));
    if (placement.choices == 1) return a;
    const int b = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(npus)));
    return est_load[static_cast<std::size_t>(a)] <=
                   est_load[static_cast<std::size_t>(b)]
               ? a
               : b;
  };

  // Current PU of each thread; unbound threads start scheduler-placed.
  std::vector<int> at(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const int fixed = placement.compute_pu[static_cast<std::size_t>(t)];
    if (fixed >= 0) {
      at[static_cast<std::size_t>(t)] = fixed;
    } else {
      const int pu = pick_pu();
      at[static_cast<std::size_t>(t)] = pu;
      est_load[static_cast<std::size_t>(pu)] +=
          weight[static_cast<std::size_t>(t)];
    }
  }

  // Data home PU (fixed for the whole run: first touch).
  std::vector<int> home(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const int h = placement.data_home_pu[static_cast<std::size_t>(t)];
    home[static_cast<std::size_t>(t)] = h >= 0 ? h : 0;
  }

  Report rep;
  std::vector<double> pu_time(static_cast<std::size_t>(npus));
  std::vector<int> pu_load(static_cast<std::size_t>(npus));
  std::vector<double> domain_bytes(static_cast<std::size_t>(ndomains));

  for (int it = 0; it < load.iterations; ++it) {
    // 1. Re-place unbound threads (stickiness + scheduler choice model).
    for (int t = 0; t < n; ++t) {
      if (placement.compute_pu[static_cast<std::size_t>(t)] >= 0) continue;
      if (rng.uniform() >= placement.stickiness) {
        est_load[static_cast<std::size_t>(
            at[static_cast<std::size_t>(t)])] -=
            weight[static_cast<std::size_t>(t)];
        const int pu = pick_pu();
        at[static_cast<std::size_t>(t)] = pu;
        est_load[static_cast<std::size_t>(pu)] +=
            weight[static_cast<std::size_t>(t)];
      }
    }

    std::fill(pu_time.begin(), pu_time.end(), 0.0);
    std::fill(pu_load.begin(), pu_load.end(), 0);
    std::fill(domain_bytes.begin(), domain_bytes.end(), 0.0);

    double it_compute = 0.0;
    double it_memory = 0.0;
    double it_comm = 0.0;
    double it_lock = 0.0;

    // 2. Per-thread costs, serialized per PU.
    for (int t = 0; t < n; ++t) {
      const SimThread& th = load.threads[static_cast<std::size_t>(t)];
      const int pu = at[static_cast<std::size_t>(t)];
      const topo::Object& pu_obj = *pus[static_cast<std::size_t>(pu)];

      const double compute = th.flops / cost.compute_rate;

      double memory = 0.0;
      if (!placement.data_interleaved.empty() &&
          placement.data_interleaved[static_cast<std::size_t>(t)]) {
        // Interleaved pages: the stream runs at the blended bandwidth and
        // its bytes spread evenly over every domain controller.
        memory = th.mem_bytes / cost.interleave_bandwidth;
        const double share = th.mem_bytes / ndomains;
        for (int d = 0; d < ndomains; ++d)
          domain_bytes[static_cast<std::size_t>(d)] += share;
      } else {
        const int hpu = home[static_cast<std::size_t>(t)];
        const int mem_dca = topo.common_ancestor_depth(
            pu_obj, *pus[static_cast<std::size_t>(hpu)]);
        memory =
            th.mem_bytes / cost.bandwidth[static_cast<std::size_t>(mem_dca)];
        domain_bytes[static_cast<std::size_t>(
            domain_of(topo, hpu, dom_depth))] += th.mem_bytes;
      }

      double lock = 0.0;
      if (th.acquires > 0) {
        const int cpu = placement.control_pu[static_cast<std::size_t>(t)];
        double per_grant = cost.grant_overhead;
        if (load.spin_waits) {
          // Spinning waiters consume the grant without the futex
          // park/wake pair; the floor keeps announcement + queue work
          // charged even when the measured pair exceeds the overhead.
          per_grant = std::max(
              cost.grant_overhead - cost.park_latency - cost.wake_latency,
              0.25 * cost.grant_overhead);
        }
        if (cpu < 0) {
          per_grant += cost.unmanaged_grant_penalty;
        } else {
          const int dca = topo.common_ancestor_depth(
              pu_obj, *pus[static_cast<std::size_t>(cpu)]);
          per_grant += cost.latency[static_cast<std::size_t>(dca)];
        }
        lock = th.acquires * per_grant;
        // Batched shared-read announcements: re-charge the batched subset
        // at the (calibrated) amortized cost. The guard keeps the
        // arithmetic byte-for-byte identical to the pre-batching model
        // whenever no calibration record distinguishes the two overheads.
        if (th.batched_acquires > 0 &&
            cost.grant_batch_overhead != cost.grant_overhead) {
          const int batched = std::min(th.batched_acquires, th.acquires);
          lock += batched * (cost.grant_batch_overhead - cost.grant_overhead);
        }
      }

      pu_time[static_cast<std::size_t>(pu)] += compute + memory + lock;
      pu_load[static_cast<std::size_t>(pu)] += 1;
      it_compute = std::max(it_compute, compute);
      it_memory = std::max(it_memory, memory);
      it_lock = std::max(it_lock, lock);
    }

    // 3. Exchange edges: both endpoints pay latency + bytes/bw at the dca
    //    level of their *current* PUs.
    for (const Edge& e : load.edges) {
      const int pa = at[static_cast<std::size_t>(e.a)];
      const int pb = at[static_cast<std::size_t>(e.b)];
      const int dca = topo.common_ancestor_depth(
          *pus[static_cast<std::size_t>(pa)],
          *pus[static_cast<std::size_t>(pb)]);
      const double c = cost.latency[static_cast<std::size_t>(dca)] +
                       e.bytes / cost.bandwidth[static_cast<std::size_t>(dca)];
      pu_time[static_cast<std::size_t>(pa)] += c;
      pu_time[static_cast<std::size_t>(pb)] += c;
      it_comm = std::max(it_comm, c);
    }

    // 4. Iteration time: busiest PU, bounded below by the busiest memory
    //    domain (its controller serializes all bytes it serves), plus the
    //    global synchronization term.
    double busiest_pu = 0.0;
    for (double t : pu_time) busiest_pu = std::max(busiest_pu, t);
    double busiest_domain = 0.0;
    for (double b : domain_bytes)
      busiest_domain = std::max(busiest_domain, b / cost.domain_bandwidth);

    double sync = 0.0;
    if (load.sync == SyncModel::ForkJoinBarrier) {
      const double hops = std::ceil(std::log2(std::max(2, n)));
      sync = 2.0 * hops * cost.barrier_hop;
    }

    rep.total_seconds += std::max(busiest_pu, busiest_domain) + sync;
    rep.compute_seconds += it_compute;
    rep.memory_seconds += std::max(it_memory, busiest_domain);
    rep.comm_seconds += it_comm;
    rep.sync_seconds += sync;
    rep.lock_seconds += it_lock;
    for (int l : pu_load) rep.max_pu_load = std::max(rep.max_pu_load, l);
  }
  return rep;
}

}  // namespace orwl::sim
