#pragma once
// Analytic per-iteration simulator of a task-parallel program on a NUMA
// machine. Given a topology, a cost model, a workload (threads, exchange
// edges, synchronization style) and a placement, it charges:
//
//   * compute        — flops / compute_rate per thread,
//   * memory         — each thread streams its working set from the PU
//                      where its data lives (first touch); remote streams
//                      pay the dca-level bandwidth, and every memory
//                      domain serializes all bytes it serves,
//   * communication  — per exchange edge, dca-level latency + bytes/bw,
//   * locks/sync     — per-acquire grant cost (ORWL) or a log2(P) barrier
//                      (fork-join),
//   * oversubscription — threads sharing a PU serialize.
//
// Placement can be Fixed (bound threads) or Unbound: unbound threads are
// re-placed every iteration by sampling random PUs (balls-in-bins), with a
// stickiness probability modelling the OS scheduler's partial affinity.
// Iteration time = max over PUs of the serialized per-PU work, bounded
// below by the busiest memory domain, plus the sync term.

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"
#include "topo/topology.h"

namespace orwl::sim {

/// One simulated thread (an ORWL operation or a fork-join worker).
struct SimThread {
  double flops = 0.0;        ///< useful work per iteration
  double mem_bytes = 0.0;    ///< working set streamed per iteration
  int acquires = 0;          ///< ORWL lock acquisitions per iteration
  /// How many of `acquires` arrive as members of a batched shared-read
  /// run (FifoQueue::on_grant_batch) — reads on locations with multiple
  /// concurrent readers. Charged grant_batch_overhead instead of
  /// grant_overhead, which only differs when a host calibration record is
  /// active (LinkCost::grant_batch_overhead); 0 changes nothing.
  int batched_acquires = 0;
};

/// A per-iteration pairwise exchange.
struct Edge {
  int a = 0;
  int b = 0;
  double bytes = 0.0;
};

enum class SyncModel {
  OrwlEvents,      ///< decentralized; costs are per-acquire only
  ForkJoinBarrier  ///< global barrier per iteration
};

struct Workload {
  std::vector<SimThread> threads;
  std::vector<Edge> edges;
  SyncModel sync = SyncModel::OrwlEvents;
  int iterations = 1;
  /// Waiters spin (spin / spin_then_park / auto) instead of blocking:
  /// grant delivery skips the futex park/wake pair, so per-grant cost is
  /// discounted by LinkCost::park_latency + wake_latency (floored at a
  /// quarter of grant_overhead). False = blocking waits, charged the full
  /// grant_overhead exactly as before this knob existed.
  bool spin_waits = false;
};

/// Where threads and their data live.
struct Placement {
  /// Fixed PU per thread (logical index); entry -1 = unbound (the thread is
  /// re-placed randomly every iteration).
  std::vector<int> compute_pu;
  /// Control-thread PU per thread; -1 = unmanaged (pays the unmanaged grant
  /// penalty).
  std::vector<int> control_pu;
  /// PU whose memory domain holds the thread's data (first touch); -1 =
  /// everything on PU 0's domain (serial initialization — the naive OpenMP
  /// first-touch pattern).
  std::vector<int> data_home_pu;
  /// Per thread: nonzero = its working set is interleaved across all
  /// memory domains (memory policy numa_interleave) — streams run at
  /// LinkCost::interleave_bandwidth and the bytes spread evenly over the
  /// domains instead of landing on one home. Empty = nobody interleaved.
  std::vector<char> data_interleaved;
  /// Probability an unbound thread keeps last iteration's PU.
  double stickiness = 0.5;
  /// How an unbound thread picks a PU when it moves: 1 = uniformly random,
  /// 2 = power-of-two-choices on estimated PU load (models the OS
  /// scheduler's partial load balancing).
  int choices = 2;
};

struct Report {
  double total_seconds = 0.0;
  // Per-component integrals over the run (max-composed per iteration, so
  // they do not sum to total_seconds; they show what dominated).
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double comm_seconds = 0.0;
  double sync_seconds = 0.0;
  double lock_seconds = 0.0;
  /// Maximum number of threads that shared one PU in any iteration.
  int max_pu_load = 0;
};

/// Run the model. Deterministic in `seed` (used only for unbound threads).
Report simulate(const topo::Topology& topo, const LinkCost& cost,
                const Workload& load, const Placement& placement,
                std::uint64_t seed = 1);

/// Logical index of the memory domain serving a PU — the first package /
/// NUMA level of the tree (the whole machine when there is none). The
/// granularity at which simulate() serializes domain traffic and at which
/// the numa_local policy considers pages to have physically moved.
int memory_domain_of(const topo::Topology& topo, int pu);

}  // namespace orwl::sim
