#include "sim/lk23_model.h"

#include <cmath>

#include "comm/comm_matrix.h"
#include "support/assert.h"
#include "support/rng.h"

namespace orwl::sim {

const char* to_string(Lk23Impl impl) {
  switch (impl) {
    case Lk23Impl::OpenMP: return "OpenMP";
    case Lk23Impl::OrwlNoBind: return "ORWL NoBind";
    case Lk23Impl::OrwlBind: return "ORWL Bind";
  }
  return "?";
}

std::pair<int, int> block_grid(int tasks) {
  ORWL_CHECK_MSG(tasks >= 1, "need at least one task");
  int by = static_cast<int>(std::sqrt(static_cast<double>(tasks)));
  while (tasks % by != 0) --by;
  return {tasks / by, by};
}

namespace {

// Shared geometry of the ORWL decomposition.
struct Geometry {
  int bx, by;
  long rows_per_block, cols_per_block;
  double edge_bytes_h;  // horizontal neighbour edge (column) in bytes
  double edge_bytes_v;  // vertical neighbour edge (row) in bytes
  long points_per_block;
};

Geometry make_geometry(const Lk23SimSpec& spec) {
  Geometry g{};
  const auto [bx, by] = block_grid(spec.tasks);
  g.bx = bx;
  g.by = by;
  g.rows_per_block = spec.matrix_n / by;
  g.cols_per_block = spec.matrix_n / bx;
  g.points_per_block = g.rows_per_block * g.cols_per_block;
  g.edge_bytes_h = static_cast<double>(g.rows_per_block) * 8.0;
  g.edge_bytes_v = static_cast<double>(g.cols_per_block) * 8.0;
  return g;
}

// Build the ORWL workload: per block one main thread plus one frontier
// thread per existing neighbour (8-neighbourhood, non-periodic).
// Returns the workload and fills `comm` (order == #threads) with the edge
// bytes, for TreeMatch.
Workload build_orwl_workload(const Lk23SimSpec& spec, const Geometry& g,
                             comm::CommMatrix& comm) {
  const int B = spec.tasks;
  Workload load;
  load.sync = SyncModel::OrwlEvents;
  load.iterations = spec.iterations;

  // First pass: main thread ids are 0..B-1; frontier threads appended.
  // Every block gets exactly 8 frontier operations (paper Sec. III: "a
  // main operation ... and eight sub-operations"); exports without a
  // neighbour (global border) have no consumer.
  struct Fop {
    int block;
    int neighbour_block;  // -1 at the global border
    double bytes;
  };
  std::vector<Fop> fops;
  auto block_id = [&](int x, int y) { return y * g.bx + x; };
  for (int y = 0; y < g.by; ++y) {
    for (int x = 0; x < g.bx; ++x) {
      const int b = block_id(x, y);
      const int dx8[] = {+1, -1, 0, 0, +1, +1, -1, -1};
      const int dy8[] = {0, 0, +1, -1, +1, -1, +1, -1};
      for (int d = 0; d < 8; ++d) {
        const int nx = x + dx8[d];
        const int ny = y + dy8[d];
        const bool exists =
            nx >= 0 && ny >= 0 && nx < g.bx && ny < g.by;
        const bool diagonal = dx8[d] != 0 && dy8[d] != 0;
        const double bytes = diagonal ? 8.0
                             : (dx8[d] != 0 ? g.edge_bytes_h
                                            : g.edge_bytes_v);
        fops.push_back({b, exists ? block_id(nx, ny) : -1, bytes});
      }
    }
  }

  const int nthreads = B + static_cast<int>(fops.size());
  load.threads.resize(static_cast<std::size_t>(nthreads));
  comm = comm::CommMatrix(nthreads);

  const double block_bytes = static_cast<double>(g.points_per_block) * 8.0;
  for (int b = 0; b < B; ++b) {
    SimThread& th = load.threads[static_cast<std::size_t>(b)];
    th.flops = static_cast<double>(g.points_per_block) * spec.flops_per_point;
    th.mem_bytes =
        static_cast<double>(g.points_per_block) * spec.bytes_per_point;
    th.acquires = 1;  // own block write; +1 per neighbour read below
    // All 9 operations of a block share its block location: pairwise
    // affinity of the block size ("cluster threads that share data").
    for (int fa = 0; fa < 8; ++fa) {
      comm.add(b, B + b * 8 + fa, block_bytes);
      for (int fb = fa + 1; fb < 8; ++fb)
        comm.add(B + b * 8 + fa, B + b * 8 + fb, block_bytes);
    }
  }
  for (std::size_t f = 0; f < fops.size(); ++f) {
    const int tid = B + static_cast<int>(f);
    const Fop& fop = fops[f];
    SimThread& th = load.threads[static_cast<std::size_t>(tid)];
    th.flops = fop.bytes;  // copying the frontier is ~1 flop per byte moved
    th.mem_bytes = 2.0 * fop.bytes;
    th.acquires = 2;  // read own block, write own frontier location

    // Frontier thread exchanges with its own main (reads the block) and
    // the neighbour's main (which reads the frontier location). The
    // intra-block affinity (block-location sharing) is already in the
    // matrix; the simulator *edges* carry the bytes that actually move.
    load.edges.push_back({tid, fop.block, fop.bytes});
    if (fop.neighbour_block >= 0) {
      load.edges.push_back({tid, fop.neighbour_block, fop.bytes});
      comm.add(tid, fop.neighbour_block, fop.bytes);
      load.threads[static_cast<std::size_t>(fop.neighbour_block)].acquires +=
          1;
    }
  }
  return load;
}

}  // namespace

Lk23Model build_lk23_model(Lk23Impl impl, const topo::Topology& topo,
                           const Lk23SimSpec& spec) {
  ORWL_CHECK_MSG(spec.matrix_n >= 1 && spec.iterations >= 1,
                 "bad LK23 spec");
  const Geometry g = make_geometry(spec);
  const int npus = topo.num_pus();
  Lk23Model model;

  switch (impl) {
    case Lk23Impl::OpenMP: {
      // Row-strip fork-join: one worker per task, static schedule, global
      // barrier. Serial initialization => all pages on PU 0's domain.
      const int P = spec.tasks;
      model.load.sync = SyncModel::ForkJoinBarrier;
      model.load.iterations = spec.iterations;
      model.load.threads.resize(static_cast<std::size_t>(P));
      const long points_per_worker =
          static_cast<long>(spec.matrix_n) * spec.matrix_n / P;
      for (int t = 0; t < P; ++t) {
        SimThread& th = model.load.threads[static_cast<std::size_t>(t)];
        th.flops = static_cast<double>(points_per_worker) *
                   spec.flops_per_point;
        th.mem_bytes = static_cast<double>(points_per_worker) *
                       spec.bytes_per_point;
      }
      const double row_bytes = static_cast<double>(spec.matrix_n) * 8.0;
      for (int t = 0; t + 1 < P; ++t)
        model.load.edges.push_back({t, t + 1, row_bytes});

      // Workers run compact (one per PU while they fit) — generous to
      // OpenMP; the first-touch hotspot is what kills it.
      model.place.compute_pu.resize(static_cast<std::size_t>(P));
      for (int t = 0; t < P; ++t)
        model.place.compute_pu[static_cast<std::size_t>(t)] = t % npus;
      model.place.control_pu.assign(static_cast<std::size_t>(P), 0);
      model.place.data_home_pu.assign(static_cast<std::size_t>(P), -1);
      model.num_threads = P;
      break;
    }
    case Lk23Impl::OrwlNoBind: {
      comm::CommMatrix comm(1);
      model.load = build_orwl_workload(spec, g, comm);
      const int n = static_cast<int>(model.load.threads.size());
      model.place.compute_pu.assign(static_cast<std::size_t>(n), -1);
      model.place.control_pu.assign(static_cast<std::size_t>(n), -1);
      // First touch happened wherever the unbound thread started.
      Xoshiro256 rng(spec.seed);
      model.place.data_home_pu.resize(static_cast<std::size_t>(n));
      for (int t = 0; t < n; ++t)
        model.place.data_home_pu[static_cast<std::size_t>(t)] =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(npus)));
      model.num_threads = n;
      break;
    }
    case Lk23Impl::OrwlBind: {
      comm::CommMatrix comm(1);
      model.load = build_orwl_workload(spec, g, comm);
      const int n = static_cast<int>(model.load.threads.size());
      model.mapping = treematch::map_threads(topo, comm);
      model.place.compute_pu = model.mapping.compute_pu;
      model.place.control_pu = model.mapping.control_pu;
      // Unmanaged control threads run beside their bound compute thread.
      for (int t = 0; t < n; ++t)
        if (model.place.control_pu[static_cast<std::size_t>(t)] < 0)
          model.place.control_pu[static_cast<std::size_t>(t)] =
              model.place.compute_pu[static_cast<std::size_t>(t)];
      // Bound owners first-touch their own data.
      model.place.data_home_pu = model.place.compute_pu;
      model.num_threads = n;
      break;
    }
  }
  return model;
}

Report simulate_lk23(Lk23Impl impl, const topo::Topology& topo,
                     const LinkCost& cost, const Lk23SimSpec& spec) {
  const Lk23Model model = build_lk23_model(impl, topo, spec);
  return simulate(topo, cost, model.load, model.place, spec.seed);
}

}  // namespace orwl::sim
