#include "obs/metrics.h"

#include <algorithm>

namespace orwl::obs {

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; walk buckets until reached.
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      // order: relaxed — exact after writers quiesced, lower bound
      // concurrently (the ShardedCounter contract).
      const std::uint64_t n = s.buckets[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
      out.buckets[static_cast<std::size_t>(i)] += n;
      out.count += n;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

template <class T>
T& get_or_create(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>& slots,
    const std::string& name) {
  for (auto& [n, slot] : slots)
    if (n == name) return *slot;
  slots.emplace_back(name, std::make_unique<T>());
  return *slots.back().second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  sync::LockGuard lock(mu_);
  return get_or_create(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  sync::LockGuard lock(mu_);
  return get_or_create(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  sync::LockGuard lock(mu_);
  return get_or_create(histograms_, name);
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot out;
  {
    sync::LockGuard lock(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
      out.counters.emplace_back(name, c->read());
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
      out.gauges.emplace_back(name, g->read());
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot snap = h->snapshot();
      snap.name = name;
      out.histograms.push_back(std::move(snap));
    }
  }
  std::sort(out.counters.begin(), out.counters.end());
  std::sort(out.gauges.begin(), out.gauges.end());
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

Registry& global_registry() {
  static Registry* reg = new Registry;  // leaked: usable during shutdown
  return *reg;
}

}  // namespace orwl::obs
