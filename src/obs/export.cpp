#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <vector>

namespace orwl::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome `ts` is in microseconds; keep nanosecond precision as a
/// fractional part so distinct events never collapse onto one timestamp.
void write_ts_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

struct EventSink {
  std::ostream& os;
  bool first = true;

  void begin(std::int32_t tid, std::uint64_t ts, const char* name,
             std::uint64_t arg) {
    open(tid, ts, name, "B");
    os << ",\"args\":{\"arg\":" << arg << "}}";
  }
  void end(std::int32_t tid, std::uint64_t ts, const char* name) {
    open(tid, ts, name, "E");
    os << '}';
  }
  void instant(std::int32_t tid, std::uint64_t ts, const char* name,
               std::uint64_t arg) {
    open(tid, ts, name, "i");
    os << ",\"s\":\"t\",\"args\":{\"arg\":" << arg << "}}";
  }
  void thread_name(std::int32_t tid, const std::string& name) {
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    write_escaped(os, name);
    os << "}}";
  }

 private:
  void comma() {
    if (!first) os << ",\n";
    first = false;
  }
  void open(std::int32_t tid, std::uint64_t ts, const char* name,
            const char* ph) {
    comma();
    os << "{\"name\":\"" << name << "\",\"ph\":\"" << ph
       << "\",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
    write_ts_us(os, ts);
  }
};

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceData& data) {
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const TraceThread& t : data.threads)
    for (const TraceEvent& ev : t.events) base = std::min(base, ev.ts_ns);
  if (data.threads.empty()) base = 0;

  os << "{\"traceEvents\":[\n";
  EventSink sink{os};
  for (const TraceThread& t : data.threads) {
    sink.thread_name(t.tid, t.name);
    std::vector<EventKind> open_spans;
    std::uint64_t last_ts = 0;
    for (const TraceEvent& ev : t.events) {
      const std::uint64_t ts = ev.ts_ns - base;
      last_ts = ts;
      if (is_span_begin(ev.kind)) {
        open_spans.push_back(ev.kind);
        sink.begin(t.tid, ts, span_name(ev.kind), ev.arg);
      } else if (is_span_end(ev.kind)) {
        if (!open_spans.empty() && open_spans.back() == begin_of(ev.kind)) {
          open_spans.pop_back();
          sink.end(t.tid, ts, span_name(ev.kind));
        } else {
          // Orphaned End (its Begin was overwritten in the ring, or
          // nesting was broken by a torn tail): demote to an instant so
          // the stream stays balanced.
          sink.instant(t.tid, ts, span_name(ev.kind), ev.arg);
        }
      } else {
        sink.instant(t.tid, ts, to_string(ev.kind), ev.arg);
      }
    }
    // Close Begins that never ended (run stopped mid-span) at the
    // thread's last timestamp, innermost first.
    while (!open_spans.empty()) {
      sink.end(t.tid, last_ts, span_name(open_spans.back()));
      open_spans.pop_back();
    }
  }
  os << "\n],\n\"otherData\":{\"dropped\":" << data.dropped << "}}\n";
}

bool write_chrome_trace_file(const std::string& path, const TraceData& data) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot open trace file '" << path << "'\n";
    return false;
  }
  write_chrome_trace(out, data);
  return static_cast<bool>(out);
}

void dump_metrics(std::ostream& os, const RegistrySnapshot& snap) {
  for (const auto& [name, v] : snap.counters)
    os << "counter " << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << "gauge " << name << " " << v << "\n";
  for (const HistogramSnapshot& h : snap.histograms) {
    os << "hist " << h.name << " count=" << h.count << " sum=" << h.sum
       << " mean=" << h.mean() << " p50<=" << h.quantile(0.50)
       << " p95<=" << h.quantile(0.95) << " p99<=" << h.quantile(0.99);
    os << " buckets=";
    bool first = true;
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      os << (first ? "" : ",") << "le" << HistogramSnapshot::bucket_upper(i)
         << ":" << n;
      first = false;
    }
    if (first) os << "-";
    os << "\n";
  }
}

}  // namespace orwl::obs
