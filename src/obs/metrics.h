#pragma once
// Metrics registry: named counters, gauges, and log2-bucketed histograms.
//
// Writers follow the sync::ShardedCounter idiom — cache-line-padded shards,
// one uncontended relaxed fetch_add per record — so instrumented hot paths
// (grant announcement runs with a location queue lock held) stay cheap.
// Reads sum the shards and are exact once the writers have quiesced; a
// concurrent read is a consistent lower bound.
//
// Naming scheme (docs/observability.md): dot-separated, lower-case,
// subsystem first — "orwl.grants.read", "orwl.wait_rounds/h3",
// "trace.dropped". A per-instance suffix ("/h<id>") comes last.
//
// Metric objects returned by Registry::counter()/gauge()/histogram() are
// stable references, valid for the registry's lifetime — look up once at
// construction, then record lock-free.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/thread.h"
#include "support/thread_annotations.h"
#include "sync/mutex.h"
#include "sync/sharded_counter.h"

namespace orwl::obs {

/// Monotonic named counter (a thin wrapper keeping the sharded idiom).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.add(n); }
  /// Exact after writers quiesced, lower bound concurrently.
  [[nodiscard]] std::uint64_t read() const noexcept { return value_.read(); }

 private:
  sync::ShardedCounter value_;
};

/// Last-written named value (writes are rare — epoch boundaries, config).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    // order: relaxed — gauges carry no payload to publish; report readers
    // are ordered by the quiesce that precedes them.
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t read() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time histogram state (also the exchange format for exporters
/// and the harness JSON).
struct HistogramSnapshot {
  /// Bucket i counts values with bit_width(v) == i: bucket 0 is exactly
  /// zero, bucket i >= 1 covers [2^(i-1), 2^i - 1].
  static constexpr int kBuckets = 65;

  std::string name;
  std::uint64_t count = 0;  ///< total recorded values
  std::uint64_t sum = 0;    ///< sum of recorded values
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Inclusive upper bound of bucket i (0, 1, 3, 7, ...).
  [[nodiscard]] static std::uint64_t bucket_upper(int i) {
    return i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
  }
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]).
  [[nodiscard]] std::uint64_t quantile(double q) const;
};

/// log2-bucketed histogram of non-negative integer samples (latencies in
/// ns, wait-spin rounds, batch sizes). Shard count is lower than
/// ShardedCounter's because histograms are per-handle and each shard is
/// several cache lines.
class Histogram {
 public:
  static constexpr int kShards = 4;  // power of two (mask indexing)

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    auto& shard = shards_[static_cast<std::size_t>(current_thread_index()) &
                          (kShards - 1)];
    // order: relaxed — same contract as ShardedCounter: exact after the
    // writers quiesce, lower bound concurrently.
    shard.buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Sum the shards (exact after writers quiesced). `name` is stamped by
  /// Registry::snapshot(); direct callers may leave it empty.
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  struct alignas(sync::kCacheLine) Shard {
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

/// Everything a registry knew at one quiescent point, sorted by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metric store. get-or-create lookups take a mutex (do them at
/// construction time); the returned references record lock-free and stay
/// valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Zero-valued metrics are kept: a counter that never fired is signal.
  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  template <class T>
  using Slots = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  mutable sync::Mutex mu_;
  Slots<Counter> counters_ ORWL_GUARDED_BY(mu_);
  Slots<Gauge> gauges_ ORWL_GUARDED_BY(mu_);
  Slots<Histogram> histograms_ ORWL_GUARDED_BY(mu_);
};

/// Process-global registry for metrics with no natural owner (the
/// `trace.dropped` counter). Runtime-scoped metrics live in the Runtime's
/// own Registry so concurrent runtimes and tests stay isolated.
[[nodiscard]] Registry& global_registry();

// --- detailed-metrics gate ---------------------------------------------------
// Per-handle acquire-latency histograms need two clock reads per acquire;
// that is cheap but not free, so it sits behind its own runtime flag
// (enabled by `orwl_bench --metrics` / trace runs). Wait-round counts are
// a by-product of the existing spin loop and are recorded unconditionally.

namespace detail {
inline std::atomic<bool> g_detailed_metrics{false};
}  // namespace detail

[[nodiscard]] inline bool detailed_metrics_enabled() noexcept {
  // order: relaxed — gates best-effort measurement only; flips happen at
  // run boundaries (see obs/trace.h for the same reasoning).
  return detail::g_detailed_metrics.load(std::memory_order_relaxed);
}

/// Flip the detailed-metrics gate. Returns the previous value.
inline bool enable_detailed_metrics(bool on) noexcept {
  return detail::g_detailed_metrics.exchange(on, std::memory_order_relaxed);
}

}  // namespace orwl::obs
