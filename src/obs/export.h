#pragma once
// Exporters for collected traces and metric snapshots.
//
// write_chrome_trace emits the Chrome/Perfetto `trace_event` JSON object
// format ({"traceEvents":[...]}): load the file at https://ui.perfetto.dev
// or chrome://tracing. Begin/End event kinds become `B`/`E` duration
// spans, everything else becomes an instant event, and each thread gets a
// `thread_name` metadata record. Timestamps are rebased so the trace
// starts at ~0 and converted to the format's microsecond unit.
//
// The writer sanitizes span nesting (a ring that dropped its oldest
// events may hold an End without its Begin, or a Begin that never ends):
// unmatched Ends are emitted as instants, unclosed Begins are closed at
// the thread's last timestamp. tools/check_trace.py validates the result.
//
// dump_metrics is the plain-text twin for terminals and logs: one line
// per metric, histograms as count/mean/quantiles plus sparse non-zero
// log2 buckets.

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace orwl::obs {

void write_chrome_trace(std::ostream& os, const TraceData& data);

/// Write the trace to `path`. Returns false (after printing to stderr) if
/// the file cannot be opened.
bool write_chrome_trace_file(const std::string& path, const TraceData& data);

void dump_metrics(std::ostream& os, const RegistrySnapshot& snap);

}  // namespace orwl::obs
