#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>

#ifdef __linux__
#include <pthread.h>
#endif

#include "obs/metrics.h"
#include "support/thread.h"
#include "sync/mutex.h"
#include "sync/sharded_counter.h"

namespace orwl::obs {

namespace {

const char* const kKindNames[] = {
    "acquire_begin", "acquire_end", "grant",         "release",
    "event_pop",     "epoch_begin", "epoch_end",     "replace_begin",
    "replace_end",   "page_move",   "compute_begin", "compute_end",
    "ring_publish",  "ring_drain",  "grant_batch",
};
static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) ==
                  static_cast<std::size_t>(EventKind::kCount),
              "kind name table out of sync with EventKind");

}  // namespace

const char* to_string(EventKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < static_cast<std::size_t>(EventKind::kCount) ? kKindNames[i]
                                                         : "unknown";
}

const char* span_name(EventKind k) {
  switch (k) {
    case EventKind::AcquireBegin:
    case EventKind::AcquireEnd:
      return "acquire";
    case EventKind::EpochBegin:
    case EventKind::EpochEnd:
      return "epoch";
    case EventKind::ReplaceBegin:
    case EventKind::ReplaceEnd:
      return "replace";
    case EventKind::ComputeBegin:
    case EventKind::ComputeEnd:
      return "compute";
    default:
      return to_string(k);
  }
}

bool is_span_begin(EventKind k) {
  return k == EventKind::AcquireBegin || k == EventKind::EpochBegin ||
         k == EventKind::ReplaceBegin || k == EventKind::ComputeBegin;
}

bool is_span_end(EventKind k) {
  return k == EventKind::AcquireEnd || k == EventKind::EpochEnd ||
         k == EventKind::ReplaceEnd || k == EventKind::ComputeEnd;
}

EventKind begin_of(EventKind end) {
  switch (end) {
    case EventKind::AcquireEnd:
      return EventKind::AcquireBegin;
    case EventKind::EpochEnd:
      return EventKind::EpochBegin;
    case EventKind::ReplaceEnd:
      return EventKind::ReplaceBegin;
    case EventKind::ComputeEnd:
      return EventKind::ComputeBegin;
    default:
      return EventKind::kCount;
  }
}

#ifndef ORWL_OBS_NO_TRACE

namespace {

constexpr std::size_t kRingCapacity = 1u << 14;  // power of two (mask)

/// SPSC ring: the owning thread writes, collectors read after quiesce.
/// Overflow overwrites the oldest slot — the write index never stops.
struct Ring {
  // order: the write index is stored with release after the slot write so
  // a (quiesced or racing) reader that acquires it sees complete records.
  alignas(sync::kCacheLine) std::atomic<std::uint64_t> widx{0};
  TraceEvent slots[kRingCapacity];

  void push(const TraceEvent& ev) noexcept {
    // order: relaxed — only the owning thread advances widx.
    const std::uint64_t w = widx.load(std::memory_order_relaxed);
    slots[w & (kRingCapacity - 1)] = ev;
    // order: release — publishes the slot write above to collectors.
    widx.store(w + 1, std::memory_order_release);
  }
};

/// All rings ever allocated plus a free list of rings whose owning thread
/// exited; a new tracing thread leases a free ring before allocating.
struct RingRegistry {
  sync::Mutex mu;
  std::vector<std::unique_ptr<Ring>> rings ORWL_GUARDED_BY(mu);
  std::vector<Ring*> free_rings ORWL_GUARDED_BY(mu);
  std::unordered_map<std::int32_t, std::string> thread_names
      ORWL_GUARDED_BY(mu);
  /// Drops already accounted to `trace.dropped` per ring (collect() adds
  /// only the delta, so repeated collects never double-count).
  std::unordered_map<const Ring*, std::uint64_t> reported_drops
      ORWL_GUARDED_BY(mu);

  static RingRegistry& instance() {
    static RingRegistry* reg = new RingRegistry;  // leaked: threads may
    return *reg;  // trace during static destruction of the main thread
  }
};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string current_pthread_name() {
#ifdef __linux__
  char buf[32] = {};
  if (pthread_getname_np(pthread_self(), buf, sizeof(buf)) == 0 &&
      buf[0] != '\0')
    return buf;
#endif
  return {};
}

/// Thread-local ring lease: acquired on the first traced event, returned
/// to the free list when the thread exits (events already written carry
/// their tid, so handing the buffer to another thread later is safe).
struct RingLease {
  Ring* ring = nullptr;

  Ring* get() {
    if (ring == nullptr) {
      RingRegistry& reg = RingRegistry::instance();
      const int tid = current_thread_index();
      sync::LockGuard lock(reg.mu);
      if (!reg.free_rings.empty()) {
        ring = reg.free_rings.back();
        reg.free_rings.pop_back();
      } else {
        reg.rings.push_back(std::make_unique<Ring>());
        ring = reg.rings.back().get();
      }
      std::string name = current_pthread_name();
      if (name.empty()) name = "t" + std::to_string(tid);
      reg.thread_names[tid] = std::move(name);
    }
    return ring;
  }

  ~RingLease() {
    if (ring == nullptr) return;
    RingRegistry& reg = RingRegistry::instance();
    sync::LockGuard lock(reg.mu);
    reg.free_rings.push_back(ring);
  }
};

thread_local RingLease t_lease;

}  // namespace

namespace detail {

void record(EventKind kind, std::uint64_t arg) noexcept {
  TraceEvent ev;
  ev.ts_ns = now_ns();
  ev.arg = arg;
  ev.tid = current_thread_index();
  ev.kind = kind;
  t_lease.get()->push(ev);
}

}  // namespace detail

bool enable_tracing(bool on) noexcept {
  // lint: allow-rmw(single flag flip returning the old value, no protocol)
  // order: relaxed — see tracing_enabled(); run boundaries order the flip.
  return detail::g_trace_enabled.exchange(on, std::memory_order_relaxed);
}

TraceData collect() {
  RingRegistry& reg = RingRegistry::instance();
  std::unordered_map<std::int32_t, std::vector<TraceEvent>> by_tid;
  TraceData out;
  {
    sync::LockGuard lock(reg.mu);
    for (const auto& ring : reg.rings) {
      // order: acquire — pairs with push()'s release store so the slot
      // contents below are visible.
      const std::uint64_t w = ring->widx.load(std::memory_order_acquire);
      const std::uint64_t lost = w > kRingCapacity ? w - kRingCapacity : 0;
      std::uint64_t& reported = reg.reported_drops[ring.get()];
      if (lost > reported) {
        out.dropped += lost - reported;
        reported = lost;
      }
      const std::uint64_t first = lost;
      for (std::uint64_t i = first; i < w; ++i)
        by_tid[ring->slots[i & (kRingCapacity - 1)].tid].push_back(
            ring->slots[i & (kRingCapacity - 1)]);
    }
    for (auto& [tid, events] : by_tid) {
      std::sort(events.begin(), events.end(),
                [](const TraceEvent& a, const TraceEvent& b) {
                  return a.ts_ns < b.ts_ns;
                });
      TraceThread t;
      t.tid = tid;
      const auto it = reg.thread_names.find(tid);
      t.name = it != reg.thread_names.end() ? it->second
                                            : "t" + std::to_string(tid);
      t.events = std::move(events);
      out.threads.push_back(std::move(t));
    }
  }
  std::sort(out.threads.begin(), out.threads.end(),
            [](const TraceThread& a, const TraceThread& b) {
              return a.tid < b.tid;
            });
  if (out.dropped != 0)
    global_registry().counter("trace.dropped").add(out.dropped);
  return out;
}

void reset() {
  RingRegistry& reg = RingRegistry::instance();
  sync::LockGuard lock(reg.mu);
  for (const auto& ring : reg.rings)
    // order: relaxed — producers are quiescent by contract; the next
    // thread-create/join pair orders the clear against new pushes.
    ring->widx.store(0, std::memory_order_relaxed);
  reg.reported_drops.clear();
}

std::size_t buffered_events() {
  RingRegistry& reg = RingRegistry::instance();
  sync::LockGuard lock(reg.mu);
  std::size_t n = 0;
  for (const auto& ring : reg.rings) {
    // order: acquire — same pairing as collect().
    const std::uint64_t w = ring->widx.load(std::memory_order_acquire);
    n += static_cast<std::size_t>(std::min<std::uint64_t>(w, kRingCapacity));
  }
  return n;
}

std::size_t ring_capacity() { return kRingCapacity; }

#else  // ORWL_OBS_NO_TRACE: recording compiled out, collection is empty.

bool enable_tracing(bool) noexcept { return false; }
TraceData collect() { return {}; }
void reset() {}
std::size_t buffered_events() { return 0; }
std::size_t ring_capacity() { return 0; }

#endif

}  // namespace orwl::obs
