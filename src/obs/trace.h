#pragma once
// Always-on runtime tracing: per-thread SPSC ring buffers of fixed-size
// binary events, drained post-run (or at any quiescent point) into a
// Chrome/Perfetto-compatible timeline (obs/export.h).
//
// Design constraints, in order:
//  * The DISABLED hot path is one relaxed load — tracing is compiled in by
//    default (ORWL_OBS_NO_TRACE compiles the hooks away entirely) but
//    gated by a process-global runtime flag, so the grant path of an
//    untraced run pays a single branch.
//  * Recording never blocks and never allocates after a thread's first
//    event: each thread owns a cache-line-padded ring of kRingCapacity
//    fixed-size events; on overflow the OLDEST events are overwritten and
//    counted (surfaced as the `trace.dropped` metric), so a slow reader
//    can never stall the runtime.
//  * Events self-describe their thread (dense index from
//    support/thread.h), so rings are plain storage and can be leased to a
//    new thread once their previous owner exits — total ring memory is
//    bounded by the peak LIVE thread count, not the historical one.
//
// Collection contract: collect()/reset() assume the producing threads
// have quiesced (joined, or parked at a barrier) — the same contract as
// sync::ShardedCounter reads. A concurrent collect is safe but may
// observe a torn tail, which the exporter's span sanitizer absorbs.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace orwl::obs {

/// What happened. Begin/End pairs become Chrome `B`/`E` spans; the rest
/// export as instant events. Keep to_string / span tables in trace.cpp in
/// sync when adding kinds.
enum class EventKind : std::uint8_t {
  AcquireBegin,   ///< Handle::acquire entered            (arg = handle id)
  AcquireEnd,     ///< grant observed, buffer returned    (arg = handle id)
  Grant,          ///< FIFO announced a grant             (arg = handle id)
  Release,        ///< lock given up (or renewed)         (arg = handle id)
  EventPop,       ///< control thread drained a batch     (arg = batch size)
  EpochBegin,     ///< epoch boundary formed, hook starts (arg = epoch)
  EpochEnd,       ///< boundary released                  (arg = epoch)
  ReplaceBegin,   ///< re-placement evaluation starts     (arg = epoch)
  ReplaceEnd,     ///< re-placement done                  (arg = migrated)
  PageMove,       ///< location pages re-targeted         (arg = locations)
  ComputeBegin,   ///< sim: analytic segment starts       (arg = segment)
  ComputeEnd,     ///< sim: analytic segment ends         (arg = segment)
  RingPublish,    ///< ipc: message pushed into a shm ring (arg = msg kind)
  RingDrain,      ///< ipc: messages drained from a ring   (arg = count)
  GrantBatch,     ///< FIFO announced a shared-read run    (arg = run size)
  kCount,
};

[[nodiscard]] const char* to_string(EventKind k);
/// Chrome span name shared by a Begin/End pair ("acquire", "epoch", ...).
[[nodiscard]] const char* span_name(EventKind k);
[[nodiscard]] bool is_span_begin(EventKind k);
[[nodiscard]] bool is_span_end(EventKind k);
/// The Begin kind an End kind closes (End kinds only).
[[nodiscard]] EventKind begin_of(EventKind end);

/// One fixed-size binary trace record.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< process-wide monotonic clock
  std::uint64_t arg = 0;    ///< kind-specific payload
  std::int32_t tid = 0;     ///< dense thread index (or task id for sim)
  EventKind kind = EventKind::kCount;
};
static_assert(sizeof(TraceEvent) == 24, "keep trace records fixed-size");

// --- global on/off ---------------------------------------------------------

#ifndef ORWL_OBS_NO_TRACE
namespace detail {
/// Process-global runtime gate. Inline so the disabled hot path inlines to
/// one relaxed load + branch at every instrumentation point.
inline std::atomic<bool> g_trace_enabled{false};
/// Out-of-line slow path: stamp the clock and push into this thread's ring
/// (leasing one on the first event).
void record(EventKind kind, std::uint64_t arg) noexcept;
}  // namespace detail
#endif

[[nodiscard]] inline bool tracing_enabled() noexcept {
#ifdef ORWL_OBS_NO_TRACE
  return false;
#else
  // order: relaxed — the flag gates best-effort recording only; enable /
  // disable sit at run boundaries where thread create/join provide the
  // ordering that matters.
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#endif
}

/// Flip the runtime gate. Returns the previous value.
bool enable_tracing(bool on) noexcept;

/// Record one event. The whole disabled path is the inline flag check.
inline void trace(EventKind kind, std::uint64_t arg = 0) noexcept {
#ifdef ORWL_OBS_NO_TRACE
  (void)kind;
  (void)arg;
#else
  if (tracing_enabled()) detail::record(kind, arg);
#endif
}

// --- collection ------------------------------------------------------------

/// Events of one thread, in timestamp order.
struct TraceThread {
  std::int32_t tid = 0;
  std::string name;  ///< pthread name at first event ("w0", "ctl:w0", ...)
  std::vector<TraceEvent> events;
};

/// A drained trace: per-thread event lists plus the overwrite count.
struct TraceData {
  std::vector<TraceThread> threads;
  std::uint64_t dropped = 0;  ///< oldest events overwritten ring-wide
  [[nodiscard]] bool empty() const { return threads.empty(); }
  [[nodiscard]] std::size_t total_events() const {
    std::size_t n = 0;
    for (const TraceThread& t : threads) n += t.events.size();
    return n;
  }
};

/// Snapshot every ring, grouped by event tid and sorted by timestamp.
/// Also bumps the process-global `trace.dropped` counter by the newly
/// observed overwrites. Producers must be quiescent for an exact result.
[[nodiscard]] TraceData collect();

/// Clear every ring (events and drop counts). Producers must be
/// quiescent. Ring leases and thread names survive.
void reset();

/// Events currently buffered across all rings (tests/diagnostics).
[[nodiscard]] std::size_t buffered_events();

/// Ring capacity in events (power of two). Exposed for the wraparound
/// tests and the docs' overhead math.
[[nodiscard]] std::size_t ring_capacity();

}  // namespace orwl::obs
