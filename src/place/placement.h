#pragma once
// Placement policies. TreeMatch is the paper's contribution; the others are
// the standard baselines used in the ablation benches:
//   None     — leave everything to the OS scheduler (ORWL NoBind),
//   Compact  — fill PUs in logical order (hwloc-style "compact"),
//   Scatter  — spread across the highest topology level first,
//   Random   — seeded random permutation of PUs.

#include <cstdint>
#include <string>

#include "comm/comm_matrix.h"
#include "comm/metrics.h"
#include "orwl/runtime.h"
#include "topo/topology.h"
#include "treematch/treematch.h"

namespace orwl::place {

enum class Policy { None, Compact, Scatter, Random, TreeMatch };

const char* to_string(Policy p);
Policy parse_policy(const std::string& name);

/// A computed placement: logical PU index per task for the compute thread
/// and (optionally, TreeMatch only) the control thread; -1 = unbound.
struct Plan {
  comm::Mapping compute_pu;
  comm::Mapping control_pu;
  /// Populated for Policy::TreeMatch.
  treematch::Result treematch;
};

/// Compute a plan for `num_tasks` tasks. The communication matrix is only
/// consulted by TreeMatch; pass the runtime's static or measured matrix.
/// Tasks beyond the PU count wrap around (oversubscription).
Plan compute_plan(Policy policy, const topo::Topology& topo,
                  const comm::CommMatrix& m,
                  const treematch::Options& tm_opts = {},
                  std::uint64_t seed = 42);

/// Install the plan's bindings on the runtime (cpusets of the mapped PUs)
/// and place location memory per the runtime's memory policy
/// (Runtime::place_location_memory: numa_local pages go to the planned
/// writers' nodes). Tasks with -1 entries are left unbound.
void apply_plan(const Plan& plan, const topo::Topology& topo,
                Runtime& runtime);

/// The PU visit order used by Policy::Scatter: mixed-radix digit reversal
/// of the logical PU index (top topology level varies fastest). Exposed for
/// tests.
std::vector<int> scatter_order(const topo::Topology& topo);

}  // namespace orwl::place
