#include "place/placement.h"

#include <algorithm>
#include <cctype>
#include <numeric>

#include "support/assert.h"
#include "support/rng.h"

namespace orwl::place {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::None: return "none";
    case Policy::Compact: return "compact";
    case Policy::Scatter: return "scatter";
    case Policy::Random: return "random";
    case Policy::TreeMatch: return "treematch";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (const char c : name)
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "none" || s == "nobind") return Policy::None;
  if (s == "compact") return Policy::Compact;
  if (s == "scatter") return Policy::Scatter;
  if (s == "random") return Policy::Random;
  if (s == "treematch" || s == "bind") return Policy::TreeMatch;
  ORWL_CHECK_MSG(false, "unknown placement policy '"
                            << name
                            << "'; known: none|compact|scatter|random|"
                               "treematch (aliases: nobind, bind)");
  return Policy::None;  // unreachable
}

std::vector<int> scatter_order(const topo::Topology& topo) {
  const int n = topo.num_pus();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  if (!topo.is_balanced()) {
    // Irregular tree: fall back to logical order.
    order.resize(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    return order;
  }
  const std::vector<int> arities = topo.arities();
  // Logical PU index is a mixed-radix number with digits (top..leaf).
  // Reversing the digits makes the *top* level vary fastest: consecutive
  // scatter slots land on different packages.
  for (int i = 0; i < n; ++i) {
    int rest = i;
    std::vector<int> digits(arities.size());
    for (std::size_t d = arities.size(); d-- > 0;) {
      digits[d] = rest % arities[d];
      rest /= arities[d];
    }
    int idx = 0;
    for (std::size_t d = 0; d < arities.size(); ++d) {
      // Reversed digit order: leaf digit becomes most significant.
      idx = idx * arities[arities.size() - 1 - d] +
            digits[arities.size() - 1 - d];
    }
    order.push_back(idx);
  }
  // `order[i]` now is the scatter rank of PU i; invert to get the visit
  // order (rank -> PU).
  std::vector<int> visit(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) visit[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  return visit;
}

Plan compute_plan(Policy policy, const topo::Topology& topo,
                  const comm::CommMatrix& m, const treematch::Options& tm_opts,
                  std::uint64_t seed) {
  const int p = m.order();
  ORWL_CHECK_MSG(p >= 1, "plan needs at least one task");
  const int npus = topo.num_pus();

  Plan plan;
  plan.compute_pu.assign(static_cast<std::size_t>(p), -1);
  plan.control_pu.assign(static_cast<std::size_t>(p), -1);

  switch (policy) {
    case Policy::None:
      break;
    case Policy::Compact:
      for (int t = 0; t < p; ++t)
        plan.compute_pu[static_cast<std::size_t>(t)] = t % npus;
      break;
    case Policy::Scatter: {
      const std::vector<int> visit = scatter_order(topo);
      for (int t = 0; t < p; ++t)
        plan.compute_pu[static_cast<std::size_t>(t)] =
            visit[static_cast<std::size_t>(t % npus)];
      break;
    }
    case Policy::Random: {
      std::vector<int> perm(static_cast<std::size_t>(npus));
      std::iota(perm.begin(), perm.end(), 0);
      Xoshiro256 rng(seed);
      for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[static_cast<std::size_t>(
                                   rng.below(static_cast<std::uint64_t>(i)))]);
      for (int t = 0; t < p; ++t)
        plan.compute_pu[static_cast<std::size_t>(t)] =
            perm[static_cast<std::size_t>(t % npus)];
      break;
    }
    case Policy::TreeMatch: {
      plan.treematch = treematch::map_threads(topo, m, tm_opts);
      plan.compute_pu = plan.treematch.compute_pu;
      plan.control_pu = plan.treematch.control_pu;
      break;
    }
  }
  return plan;
}

void apply_plan(const Plan& plan, const topo::Topology& topo,
                Runtime& runtime) {
  ORWL_CHECK_MSG(static_cast<int>(plan.compute_pu.size()) >=
                     runtime.num_tasks(),
                 "plan covers fewer tasks than the runtime has");
  const auto pus = topo.pus();
  for (TaskId t = 0; t < runtime.num_tasks(); ++t) {
    const int cpu = plan.compute_pu[static_cast<std::size_t>(t)];
    if (cpu >= 0)
      runtime.set_compute_binding(
          t, pus[static_cast<std::size_t>(cpu)]->cpuset);
    const int ctl = t < static_cast<int>(plan.control_pu.size())
                        ? plan.control_pu[static_cast<std::size_t>(t)]
                        : -1;
    if (ctl >= 0)
      runtime.set_control_binding(
          t, pus[static_cast<std::size_t>(ctl)]->cpuset);
    else if (cpu >= 0)
      // Control thread defaults to its compute thread's PU when the policy
      // does not manage it separately.
      runtime.set_control_binding(
          t, pus[static_cast<std::size_t>(cpu)]->cpuset);
  }
  // Location pages follow the plan too (RuntimeOptions::memory): under
  // numa_local each location lands on its planned writer's node, under
  // numa_interleave it is spread across all nodes. No-op for heap.
  runtime.place_location_memory(plan.compute_pu, topo);
}

}  // namespace orwl::place
