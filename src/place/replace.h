#pragma once
// Online adaptive re-placement. The paper closes its feedback loop offline
// (run, harvest the measured comm matrix, re-place, run again); this module
// closes it *while the program runs*: the runtime accumulates the flow
// matrix per epoch (a configurable window of iterations), and at each epoch
// boundary a Replacer compares the fresh window against the matrix the
// current mapping was computed from. When the normalized distance
// (comm::normalized_distance — total variation of the volume-normalized
// patterns) exceeds the policy's threshold, Algorithm 1 re-runs on the
// fresh window and the backend rebinds the compute and control threads
// in place (topo::bind_thread), without stopping the run.
//
// Both backends drive the same Replacer: RuntimeBackend feeds it measured
// Instrument windows and physically migrates threads; SimBackend feeds it
// the analytic per-window matrices of the declared access schedule and
// charges LinkCost::migration_cost per migrated thread — so predictions
// and real runs adapt identically.

#include <cstdint>
#include <optional>
#include <string>

#include "comm/comm_matrix.h"
#include "place/placement.h"
#include "topo/topology.h"
#include "treematch/treematch.h"

namespace orwl::place {

/// When (if ever) to re-run Algorithm 1 during a run.
struct ReplacementPolicy {
  enum class Mode {
    Off,         ///< static placement only (the default)
    EveryEpoch,  ///< re-place on every epoch's fresh matrix, unconditionally
    OnDrift,     ///< re-place only when drift exceeds drift_threshold
  };

  Mode mode = Mode::Off;
  /// Epoch window length in iterations (>= 1 when the mode is not Off).
  int epoch_length = 0;
  /// OnDrift trigger: normalized distance in [0, 1] between the epoch's
  /// matrix and the one the current mapping was computed from.
  double drift_threshold = 0.25;

  [[nodiscard]] bool enabled() const { return mode != Mode::Off; }

  static ReplacementPolicy off() { return {}; }
  static ReplacementPolicy every_epoch(int epoch_length) {
    return {Mode::EveryEpoch, epoch_length, 0.0};
  }
  static ReplacementPolicy on_drift(double threshold, int epoch_length) {
    return {Mode::OnDrift, epoch_length, threshold};
  }
};

const char* to_string(ReplacementPolicy::Mode m);
/// Accepts "off", "every"/"every_epoch", "drift"/"on_drift" (any case).
ReplacementPolicy::Mode parse_replacement_mode(const std::string& name);

/// The per-epoch decision engine. Construct once per run with the matrix
/// the initial mapping was computed from; feed it each epoch's fresh flow
/// matrix. Decisions are deterministic in the inputs.
class Replacer {
 public:
  /// `basis` is the matrix the current mapping was computed from — the
  /// declared static matrix, or the explicit place_using() override.
  /// `topo` must outlive the Replacer.
  Replacer(ReplacementPolicy policy, const topo::Topology& topo,
           treematch::Options tm_opts, std::uint64_t seed,
           comm::CommMatrix basis);

  struct Decision {
    /// Normalized distance between the epoch matrix and the basis.
    double drift = 0.0;
    /// Algorithm 1 re-ran; `plan` holds the new mapping and the epoch
    /// matrix became the new basis.
    bool replaced = false;
    Plan plan;
  };

  /// Evaluate one epoch window. An empty (zero-volume) window never
  /// triggers — nothing was measured, so nothing drifted.
  Decision evaluate(const comm::CommMatrix& epoch_matrix);

  [[nodiscard]] const ReplacementPolicy& policy() const { return policy_; }
  [[nodiscard]] int replacements() const { return replacements_; }

 private:
  ReplacementPolicy policy_;
  const topo::Topology& topo_;
  treematch::Options tm_opts_;
  std::uint64_t seed_;
  comm::CommMatrix basis_;
  int replacements_ = 0;
};

/// Tasks whose compute PU differs between the two mappings — what a
/// re-placement actually migrates. Sizes must match.
int count_migrations(const comm::Mapping& from, const comm::Mapping& to);

}  // namespace orwl::place
