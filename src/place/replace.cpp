#include "place/replace.h"

#include <cctype>
#include <utility>

#include "comm/metrics.h"
#include "support/assert.h"

namespace orwl::place {

const char* to_string(ReplacementPolicy::Mode m) {
  switch (m) {
    case ReplacementPolicy::Mode::Off: return "off";
    case ReplacementPolicy::Mode::EveryEpoch: return "every_epoch";
    case ReplacementPolicy::Mode::OnDrift: return "on_drift";
  }
  return "?";
}

ReplacementPolicy::Mode parse_replacement_mode(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (const char c : name)
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "off") return ReplacementPolicy::Mode::Off;
  if (s == "every" || s == "every_epoch" || s == "every-epoch")
    return ReplacementPolicy::Mode::EveryEpoch;
  if (s == "drift" || s == "on_drift" || s == "on-drift")
    return ReplacementPolicy::Mode::OnDrift;
  ORWL_CHECK_MSG(false, "unknown replacement mode '"
                            << name << "'; known: off|every_epoch|on_drift");
  return ReplacementPolicy::Mode::Off;  // unreachable
}

Replacer::Replacer(ReplacementPolicy policy, const topo::Topology& topo,
                   treematch::Options tm_opts, std::uint64_t seed,
                   comm::CommMatrix basis)
    : policy_(policy),
      topo_(topo),
      tm_opts_(tm_opts),
      seed_(seed),
      basis_(std::move(basis)) {
  if (policy_.enabled()) {
    ORWL_CHECK_MSG(policy_.epoch_length >= 1,
                   "replacement needs an epoch length >= 1, got "
                       << policy_.epoch_length);
    ORWL_CHECK_MSG(policy_.drift_threshold >= 0.0 &&
                       policy_.drift_threshold <= 1.0,
                   "drift threshold must be in [0, 1], got "
                       << policy_.drift_threshold);
  }
}

Replacer::Decision Replacer::evaluate(const comm::CommMatrix& epoch_matrix) {
  Decision d;
  if (!policy_.enabled()) return d;
  ORWL_CHECK_MSG(epoch_matrix.order() == basis_.order(),
                 "epoch matrix order " << epoch_matrix.order()
                                       << " != basis order "
                                       << basis_.order());
  if (epoch_matrix.total_volume() == 0.0) return d;  // nothing measured

  d.drift = comm::normalized_distance(epoch_matrix, basis_);
  const bool fire =
      policy_.mode == ReplacementPolicy::Mode::EveryEpoch ||
      (policy_.mode == ReplacementPolicy::Mode::OnDrift &&
       d.drift > policy_.drift_threshold);
  if (!fire) return d;

  d.plan = compute_plan(Policy::TreeMatch, topo_, epoch_matrix, tm_opts_,
                        seed_);
  d.replaced = true;
  basis_ = epoch_matrix;
  ++replacements_;
  return d;
}

int count_migrations(const comm::Mapping& from, const comm::Mapping& to) {
  ORWL_CHECK_MSG(from.size() == to.size(),
                 "mapping sizes differ: " << from.size() << " vs "
                                          << to.size());
  int n = 0;
  for (std::size_t t = 0; t < from.size(); ++t)
    if (from[t] != to[t]) ++n;
  return n;
}

}  // namespace orwl::place
