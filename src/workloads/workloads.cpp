#include "workloads/workloads.h"

#include <algorithm>
#include <sstream>

#include "lk23/lk23_program.h"
#include "support/assert.h"
#include "workloads/builders.h"

namespace orwl::workloads {

namespace detail {

namespace {

/// Predicted FLOW pattern of a declaration: writer -> reader (and
/// writer -> writer, ownership moves) pairs per location, weighted by the
/// location size. Unlike Program::static_comm_matrix() this excludes
/// reader-reader cache-sharing pairs, so its support matches what
/// Instrument::record_flow can actually observe.
comm::CommMatrix flow_pattern_matrix(const Program& p) {
  const auto& locs = p.location_decls();
  const auto& tasks = p.task_decls();
  comm::CommMatrix m(p.num_tasks());
  for (int loc = 0; loc < p.num_locations(); ++loc) {
    const auto bytes =
        static_cast<double>(locs[static_cast<std::size_t>(loc)].bytes);
    if (bytes == 0.0) continue;
    std::vector<int> writers, readers;
    for (int t = 0; t < p.num_tasks(); ++t) {
      for (const Program::AccessDecl& a :
           tasks[static_cast<std::size_t>(t)].accesses) {
        if (a.location != loc) continue;
        auto& side = a.mode == AccessMode::Write ? writers : readers;
        if (std::find(side.begin(), side.end(), t) == side.end())
          side.push_back(t);
      }
    }
    for (std::size_t i = 0; i < writers.size(); ++i) {
      for (const int r : readers)
        if (r != writers[i]) m.add(writers[i], r, bytes);
      for (std::size_t j = i + 1; j < writers.size(); ++j)
        m.add(writers[i], writers[j], bytes);
    }
  }
  return m;
}

}  // namespace

Built build_lk23(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 2 &&
                     params.iterations >= 0,
                 "lk23 needs tasks >= 1, size >= 2, iterations >= 0");
  const lk23::Spec spec =
      lk23::spec_for_tasks(params.size, params.iterations, params.tasks);
  const lk23::ProgramDef def = lk23::define_lk23_program(p, spec);

  Built built;
  built.num_tasks = def.num_tasks;
  built.predicted = flow_pattern_matrix(p);
  built.verify = [def](Backend& backend, std::string& why) {
    const std::vector<double> ref = lk23::blocked_reference(def.spec);
    const std::vector<double> got = lk23::fetch_field(backend, def);
    const double diff = lk23::max_abs_diff(got, ref);
    if (diff == 0.0) return true;  // bit-identical by design (Sec. III)
    std::ostringstream os;
    os << "max |err| vs blocked reference = " << diff;
    why = os.str();
    return false;
  };
  return built;
}

}  // namespace detail

const std::vector<Workload>& registry() {
  static const std::vector<Workload> entries = {
      {"lk23",
       "Livermore Kernel 23 block decomposition: per-block main ops plus 8 "
       "frontier ops (paper Sec. III)",
       {.tasks = 4, .size = 128, .iterations = 10},
       detail::build_lk23},
      {"stencil2d",
       "2-D Jacobi heat stencil: one task per block, direct face exchange "
       "with the 4 axis neighbours",
       {.tasks = 4, .size = 64, .iterations = 8},
       detail::build_stencil2d},
      {"wavefront",
       "block wavefront sweep: west/north incoming, east/south outgoing "
       "edges pipeline across the grid",
       {.tasks = 4, .size = 64, .iterations = 6},
       detail::build_wavefront},
      {"alltoall",
       "every task publishes a chunk per round and reads every other "
       "task's chunk (worst case for locality)",
       {.tasks = 6, .size = 1024, .iterations = 8},
       detail::build_alltoall},
      {"pipeline",
       "linear stage chain streaming frames hand-to-hand through bounded "
       "buffers",
       {.tasks = 4, .size = 4096, .iterations = 16},
       detail::build_pipeline},
      {"phaseshift",
       "block-grid stencil that switches to a transpose exchange halfway "
       "through the run (online re-placement showcase)",
       {.tasks = 64, .size = 65536, .iterations = 32},
       detail::build_phaseshift},
      {"oversub",
       "oversubscription stress: periodic token ring with tasks >> PUs "
       "(2*tasks live threads; yield storms, futex convoys)",
       {.tasks = 48, .size = 128, .iterations = 6},
       detail::build_oversub},
  };
  return entries;
}

const Workload* find(const std::string& name) {
  for (const Workload& w : registry())
    if (w.name == name) return &w;
  return nullptr;
}

const Workload& get(const std::string& name) {
  const Workload* w = find(name);
  if (w == nullptr) {
    std::ostringstream os;
    os << "unknown workload '" << name << "'; registered:";
    for (const Workload& known : registry()) os << ' ' << known.name;
    ORWL_CHECK_MSG(false, os.str());
  }
  return *w;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const Workload& w : registry()) out.push_back(w.name);
  return out;
}

}  // namespace orwl::workloads
