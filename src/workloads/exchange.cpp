// Exchange workloads:
//
//   alltoall — every task publishes a fresh chunk each round and reads
//              every other task's chunk, accumulating a running sum. The
//              densest possible communication support (uniform_matrix) and
//              the worst case for any locality-seeking placement.
//   pipeline — a linear chain of stages streaming frames through bounded
//              hand-off buffers: stage 0 produces, inner stages transform,
//              the last stage reduces each frame to a checksum. Support is
//              the open ring (ring_matrix, periodic off).
//
// Both verify against closed-form sequential replays with identical
// summation order, so equality is exact.

#include <numeric>
#include <sstream>
#include <vector>

#include "comm/patterns.h"
#include "support/assert.h"
#include "workloads/builders.h"

namespace orwl::workloads::detail {

namespace {

/// Chunk element k published by task i in round r.
double chunk_value(int i, int r, long k) {
  return static_cast<double>((i * 31 + r * 17 + k * 7) & 255) / 256.0;
}

/// Pipeline source frame element k of frame r.
double frame_value(int r, long k) {
  return static_cast<double>((r * 13 + k * 5) & 127) / 128.0;
}

/// Per-stage pipeline transform (applied by stages 1..n-1).
double stage_transform(int stage, double v) {
  return 0.5 * v + 0.01 * static_cast<double>(stage);
}

}  // namespace

Built build_alltoall(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 1 &&
                     params.iterations >= 1,
                 "alltoall needs tasks >= 1, size >= 1, iterations >= 1");
  const int n = params.tasks;
  const auto elems = static_cast<std::size_t>(params.size);
  const int T = params.iterations;

  std::vector<Location<double>> chunks, accs;
  chunks.reserve(static_cast<std::size_t>(n));
  accs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    chunks.push_back(p.location<double>(elems, "chunk" + std::to_string(i)));
    accs.push_back(p.location<double>(1, "acc" + std::to_string(i)));
  }

  for (int i = 0; i < n; ++i) {
    TaskBuilder builder = p.task("peer" + std::to_string(i));
    builder.writes(chunks[static_cast<std::size_t>(i)], {.rank = 0});
    for (int j = 0; j < n; ++j)
      if (j != i) builder.reads(chunks[static_cast<std::size_t>(j)],
                                {.rank = 1});
    builder.writes(accs[static_cast<std::size_t>(i)], {.rank = 2});

    const auto bytes = static_cast<double>(elems * sizeof(double));
    builder.iterations(T)
        .cost(static_cast<double>(n) * static_cast<double>(elems),
              static_cast<double>(n) * bytes)
        .body([i, n, elems, chunks, accs, acc = 0.0](Step& s) mutable {
          if (s.first()) acc = 0.0;
          const int r = s.round();
          s.write(chunks[static_cast<std::size_t>(i)],
                  [&](std::span<double> out) {
                    for (std::size_t k = 0; k < elems; ++k)
                      out[k] = chunk_value(i, r, static_cast<long>(k));
                  });
          for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            acc += s.read(chunks[static_cast<std::size_t>(j)],
                          [](std::span<const double> in) {
                            return std::accumulate(in.begin(), in.end(), 0.0);
                          });
          }
          s.write(accs[static_cast<std::size_t>(i)],
                  [&](std::span<double> out) { out[0] = acc; });
        });
  }

  Built built;
  built.num_tasks = n;
  built.predicted = comm::uniform_matrix(
      n, static_cast<double>(elems * sizeof(double)));
  built.verify = [n, elems, T, accs](Backend& backend, std::string& why) {
    for (int i = 0; i < n; ++i) {
      double want = 0.0;
      for (int r = 0; r < T; ++r)
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          double sum = 0.0;
          for (std::size_t k = 0; k < elems; ++k)
            sum += chunk_value(j, r, static_cast<long>(k));
          want += sum;
        }
      const double have =
          backend.fetch(accs[static_cast<std::size_t>(i)])[0];
      if (have != want) {
        std::ostringstream os;
        os << "peer " << i << " accumulated " << have << ", expected "
           << want;
        why = os.str();
        return false;
      }
    }
    return true;
  };
  return built;
}

Built build_pipeline(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 1 &&
                     params.iterations >= 1,
                 "pipeline needs tasks >= 1, size >= 1, iterations >= 1");
  const int n = params.tasks;
  const auto elems = static_cast<std::size_t>(params.size);
  const int T = params.iterations;  // frames

  // Hand-off buffer between stage i and stage i+1, plus the per-frame
  // checksum store the last stage fills in.
  std::vector<Location<double>> bufs;
  for (int i = 0; i + 1 < n; ++i)
    bufs.push_back(p.location<double>(elems, "buf" + std::to_string(i)));
  const Location<double> sums =
      p.location<double>(static_cast<std::size_t>(T), "sums");

  const auto bytes = static_cast<double>(elems * sizeof(double));
  for (int i = 0; i < n; ++i) {
    const bool head = i == 0;
    const bool tail = i == n - 1;
    const Location<double> in =
        head ? Location<double>{} : bufs[static_cast<std::size_t>(i - 1)];
    const Location<double> out =
        tail ? Location<double>{} : bufs[static_cast<std::size_t>(i)];

    TaskBuilder builder = p.task("stage" + std::to_string(i));
    if (out.valid()) builder.writes(out, {.rank = 0});
    if (tail) builder.writes(sums, {.rank = 0});
    if (in.valid()) builder.reads(in, {.rank = 1});

    builder.iterations(T)
        .cost(static_cast<double>(elems), 2.0 * bytes)
        .body([i, elems, in, out, sums, head, tail,
               frame = std::vector<double>(elems)](Step& s) mutable {
          const int r = s.round();
          if (head) {
            for (std::size_t k = 0; k < elems; ++k)
              frame[k] = frame_value(r, static_cast<long>(k));
          } else {
            s.read(in, [&](std::span<const double> prev) {
              for (std::size_t k = 0; k < elems; ++k)
                frame[k] = stage_transform(i, prev[k]);
            });
          }
          if (!tail) {
            s.write(out, [&](std::span<double> next) {
              std::copy(frame.begin(), frame.end(), next.begin());
            });
          } else {
            const double sum =
                std::accumulate(frame.begin(), frame.end(), 0.0);
            s.write(sums, [&](std::span<double> store) {
              store[static_cast<std::size_t>(r)] = sum;
            });
          }
        });
  }

  Built built;
  built.num_tasks = n;
  built.predicted = comm::ring_matrix(n, bytes, /*periodic=*/false);
  built.verify = [n, elems, T, sums](Backend& backend, std::string& why) {
    const std::vector<double> got = backend.fetch(sums);
    for (int r = 0; r < T; ++r) {
      std::vector<double> frame(elems);
      for (std::size_t k = 0; k < elems; ++k)
        frame[k] = frame_value(r, static_cast<long>(k));
      for (int stage = 1; stage < n; ++stage)
        for (std::size_t k = 0; k < elems; ++k)
          frame[k] = stage_transform(stage, frame[k]);
      const double want = std::accumulate(frame.begin(), frame.end(), 0.0);
      if (got[static_cast<std::size_t>(r)] != want) {
        std::ostringstream os;
        os << "frame " << r << " checksum " << got[static_cast<std::size_t>(r)]
           << ", expected " << want;
        why = os.str();
        return false;
      }
    }
    return true;
  };
  return built;
}

}  // namespace orwl::workloads::detail
