// Block wavefront sweep workload: the global field is updated in row-major
// wavefront order, each point depending on its *already updated* west and
// north neighbours (the Smith-Waterman / SOR dependency shape). One task
// per block; a block waits for the west neighbour's east edge and the
// north neighbour's south edge of the SAME iteration, sweeps, then exports
// its own east/south edges — so iterations pipeline diagonally across the
// block grid instead of running in lock-step.
//
// Communication support is the axis-neighbour pattern with only the
// east/south pairs populated, i.e. exactly comm::stencil_matrix with
// corners off (each undirected pair appears once).

#include <array>
#include <cstdint>
#include <sstream>
#include <vector>

#include "comm/patterns.h"
#include "sim/lk23_model.h"  // block_grid
#include "support/assert.h"
#include "workloads/builders.h"

namespace orwl::workloads::detail {

namespace {

/// Deterministic initial value at global (i, j).
double init_h(long i, long j) {
  const auto h = static_cast<std::uint64_t>(i) * 40503ull +
                 static_cast<std::uint64_t>(j) * 2654435761ull;
  return static_cast<double>(h & 2047ull) / 2048.0;
}

/// West/north boundary feeds (outside the global field).
double west_boundary(long i) { return 0.5 + 0.25 * init_h(i, -1); }
double north_boundary(long j) { return 0.5 + 0.25 * init_h(-1, j); }

double wave_point(double west, double north, double old) {
  return 0.35 * west + 0.35 * north + 0.3 * old;
}

struct Geometry {
  int gx = 1, gy = 1;
  long brows = 1, bcols = 1;
  long rows = 1, cols = 1;
};

Geometry geometry(const Params& params) {
  Geometry g;
  const auto [gx, gy] = sim::block_grid(params.tasks);
  g.gx = gx;
  g.gy = gy;
  g.bcols = std::max<long>(2, params.size / gx);
  g.brows = std::max<long>(2, params.size / gy);
  g.rows = g.brows * gy;
  g.cols = g.bcols * gx;
  return g;
}

/// Sequential oracle: per iteration one row-major sweep over the global
/// field; west/north operands are the values already updated this sweep.
std::vector<double> reference(const Geometry& g, int iterations) {
  const long R = g.rows, C = g.cols;
  std::vector<double> h(static_cast<std::size_t>(R * C));
  for (long i = 0; i < R; ++i)
    for (long j = 0; j < C; ++j)
      h[static_cast<std::size_t>(i * C + j)] = init_h(i, j);
  for (int t = 0; t < iterations; ++t) {
    for (long i = 0; i < R; ++i) {
      for (long j = 0; j < C; ++j) {
        const double west = j > 0 ? h[static_cast<std::size_t>(i * C + j - 1)]
                                  : west_boundary(i);
        const double north = i > 0
                                 ? h[static_cast<std::size_t>((i - 1) * C + j)]
                                 : north_boundary(j);
        double& v = h[static_cast<std::size_t>(i * C + j)];
        v = wave_point(west, north, v);
      }
    }
  }
  return h;
}

}  // namespace

Built build_wavefront(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 2 &&
                     params.iterations >= 1,
                 "wavefront needs tasks >= 1, size >= 2, iterations >= 1");
  const Geometry g = geometry(params);
  const int B = g.gx * g.gy;
  const int T = params.iterations;
  const long brows = g.brows, bcols = g.bcols;

  // Locations: the block fields plus an east edge (read by the east
  // neighbour) and a south edge (read by the south neighbour) where such a
  // neighbour exists.
  std::vector<Location<double>> blocks, east, south;
  blocks.reserve(static_cast<std::size_t>(B));
  east.resize(static_cast<std::size_t>(B));
  south.resize(static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b) {
    blocks.push_back(p.location<double>(
        static_cast<std::size_t>(brows * bcols), "h" + std::to_string(b)));
    const int x = b % g.gx, y = b / g.gx;
    if (x + 1 < g.gx)
      east[static_cast<std::size_t>(b)] = p.location<double>(
          static_cast<std::size_t>(brows), "east" + std::to_string(b));
    if (y + 1 < g.gy)
      south[static_cast<std::size_t>(b)] = p.location<double>(
          static_cast<std::size_t>(bcols), "south" + std::to_string(b));
  }

  const auto points = static_cast<double>(brows * bcols);
  for (int b = 0; b < B; ++b) {
    const int x = b % g.gx, y = b / g.gx;
    const long row0 = y * brows;
    const long col0 = x * bcols;
    const Location<double> block = blocks[static_cast<std::size_t>(b)];
    const Location<double> my_east = east[static_cast<std::size_t>(b)];
    const Location<double> my_south = south[static_cast<std::size_t>(b)];
    const Location<double> in_west =
        x > 0 ? east[static_cast<std::size_t>(b - 1)] : Location<double>{};
    const Location<double> in_north =
        y > 0 ? south[static_cast<std::size_t>(b - g.gx)]
              : Location<double>{};

    TaskBuilder builder = p.task("wave" + std::to_string(b));
    builder.writes(block, {.rank = 0});
    if (my_east.valid()) builder.writes(my_east, {.rank = 1});
    if (my_south.valid()) builder.writes(my_south, {.rank = 1});
    if (in_west.valid()) builder.reads(in_west, {.rank = 2});
    if (in_north.valid()) builder.reads(in_north, {.rank = 2});

    builder.iterations(T)
        .cost(3.0 * points, 16.0 * points)
        .body([=, cur = std::vector<double>(),
               wcol = std::vector<double>(static_cast<std::size_t>(brows)),
               nrow = std::vector<double>(static_cast<std::size_t>(bcols))](
                  Step& s) mutable {
          const auto at = [bcols](long r, long c) {
            return static_cast<std::size_t>(r * bcols + c);
          };
          if (s.first()) {
            cur.resize(static_cast<std::size_t>(brows * bcols));
            for (long r = 0; r < brows; ++r)
              for (long c = 0; c < bcols; ++c)
                cur[at(r, c)] = init_h(row0 + r, col0 + c);
          }
          // Incoming edges carry the SAME iteration's updated values — the
          // FIFO alternation staggers the blocks into a wavefront.
          if (in_west.valid())
            s.read(in_west, [&](std::span<const double> edge) {
              std::copy(edge.begin(), edge.end(), wcol.begin());
            });
          if (in_north.valid())
            s.read(in_north, [&](std::span<const double> edge) {
              std::copy(edge.begin(), edge.end(), nrow.begin());
            });
          for (long r = 0; r < brows; ++r) {
            for (long c = 0; c < bcols; ++c) {
              const double west =
                  c > 0 ? cur[at(r, c - 1)]
                        : (in_west.valid() ? wcol[static_cast<std::size_t>(r)]
                                           : west_boundary(row0 + r));
              const double north =
                  r > 0 ? cur[at(r - 1, c)]
                        : (in_north.valid()
                               ? nrow[static_cast<std::size_t>(c)]
                               : north_boundary(col0 + c));
              cur[at(r, c)] = wave_point(west, north, cur[at(r, c)]);
            }
          }
          if (my_east.valid())
            s.write(my_east, [&](std::span<double> out) {
              for (long r = 0; r < brows; ++r)
                out[static_cast<std::size_t>(r)] = cur[at(r, bcols - 1)];
            });
          if (my_south.valid())
            s.write(my_south, [&](std::span<double> out) {
              for (long c = 0; c < bcols; ++c)
                out[static_cast<std::size_t>(c)] = cur[at(brows - 1, c)];
            });
          s.write(block, [&](std::span<double> out) {
            std::copy(cur.begin(), cur.end(), out.begin());
          });
        });
  }

  Built built;
  built.num_tasks = B;
  comm::StencilSpec st;
  st.blocks_x = g.gx;
  st.blocks_y = g.gy;
  st.block_rows = static_cast<int>(brows);
  st.block_cols = static_cast<int>(bcols);
  st.corners = false;
  built.predicted = comm::stencil_matrix(st);
  built.verify = [g, T, blocks](Backend& backend, std::string& why) {
    const std::vector<double> ref = reference(g, T);
    double worst = 0.0;
    for (int b = 0; b < g.gx * g.gy; ++b) {
      const long row0 = (b / g.gx) * g.brows;
      const long col0 = (b % g.gx) * g.bcols;
      const std::vector<double> got =
          backend.fetch(blocks[static_cast<std::size_t>(b)]);
      for (long r = 0; r < g.brows; ++r)
        for (long c = 0; c < g.bcols; ++c) {
          const double want =
              ref[static_cast<std::size_t>((row0 + r) * g.cols + col0 + c)];
          const double have =
              got[static_cast<std::size_t>(r * g.bcols + c)];
          const double d = have > want ? have - want : want - have;
          if (d > worst) worst = d;
        }
    }
    if (worst <= 1e-12) return true;
    std::ostringstream os;
    os << "max |err| vs wavefront reference = " << worst;
    why = os.str();
    return false;
  };
  return built;
}

}  // namespace orwl::workloads::detail
