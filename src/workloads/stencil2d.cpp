// 2-D Jacobi heat stencil workload: one ORWL task per block of a gy x gx
// block grid, exchanging block faces with the 4 axis neighbours through
// dedicated face locations. Unlike LK23 there are no frontier sub-tasks —
// the owner exports its own faces — so the measured flow matrix is exactly
// the axis-neighbour pattern of comm::stencil_matrix (corners off).
//
// Numerics: u'(i,j) = 0.25 * (N + S + W + E) over the interior of the
// global field; the global border is pinned to its initial values. Values
// outside the block come from the neighbours' previous-iteration faces,
// which is precisely global Jacobi — the sequential reference matches the
// parallel result bit for bit.

#include <array>
#include <cstdint>
#include <sstream>
#include <vector>

#include "comm/patterns.h"
#include "sim/lk23_model.h"  // block_grid
#include "support/assert.h"
#include "workloads/builders.h"

namespace orwl::workloads::detail {

namespace {

enum Dir { kN = 0, kS = 1, kW = 2, kE = 3 };
constexpr int kDirX[] = {0, 0, -1, +1};
constexpr int kDirY[] = {-1, +1, 0, 0};
constexpr Dir kOpp[] = {kS, kN, kE, kW};

/// Deterministic initial temperature at global (i, j).
double init_u(long i, long j) {
  const auto h = static_cast<std::uint64_t>(i) * 2654435761ull +
                 static_cast<std::uint64_t>(j) * 97531ull;
  return static_cast<double>(h & 4095ull) / 4096.0;
}

double jacobi_point(double n, double s, double w, double e) {
  return 0.25 * (n + s + w + e);
}

struct Geometry {
  int gx = 1, gy = 1;       ///< block grid
  long brows = 1, bcols = 1;  ///< per-block field size
  long rows = 1, cols = 1;    ///< global field size
};

Geometry geometry(const Params& params) {
  Geometry g;
  const auto [gx, gy] = sim::block_grid(params.tasks);
  g.gx = gx;
  g.gy = gy;
  g.bcols = std::max<long>(2, params.size / gx);
  g.brows = std::max<long>(2, params.size / gy);
  g.rows = g.brows * gy;
  g.cols = g.bcols * gx;
  return g;
}

/// Sequential global Jacobi with pinned border — the oracle.
std::vector<double> reference(const Geometry& g, int iterations) {
  const long R = g.rows, C = g.cols;
  std::vector<double> cur(static_cast<std::size_t>(R * C));
  for (long i = 0; i < R; ++i)
    for (long j = 0; j < C; ++j)
      cur[static_cast<std::size_t>(i * C + j)] = init_u(i, j);
  std::vector<double> next = cur;
  for (int t = 0; t < iterations; ++t) {
    for (long i = 1; i + 1 < R; ++i)
      for (long j = 1; j + 1 < C; ++j)
        next[static_cast<std::size_t>(i * C + j)] = jacobi_point(
            cur[static_cast<std::size_t>((i - 1) * C + j)],
            cur[static_cast<std::size_t>((i + 1) * C + j)],
            cur[static_cast<std::size_t>(i * C + j - 1)],
            cur[static_cast<std::size_t>(i * C + j + 1)]);
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace

Built build_stencil2d(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 2 &&
                     params.iterations >= 0,
                 "stencil2d needs tasks >= 1, size >= 2, iterations >= 0");
  const Geometry g = geometry(params);
  const int B = g.gx * g.gy;
  const int T = params.iterations;
  const long brows = g.brows, bcols = g.bcols;

  auto neighbour = [&](int b, int d) -> int {
    const int nx = b % g.gx + kDirX[d];
    const int ny = b / g.gx + kDirY[d];
    if (nx < 0 || ny < 0 || nx >= g.gx || ny >= g.gy) return -1;
    return ny * g.gx + nx;
  };
  const auto face_elems = [brows, bcols](int d) {
    return static_cast<std::size_t>(d == kW || d == kE ? brows : bcols);
  };

  // Locations: one block field per task plus one face location per
  // (block, direction-with-neighbour) pair.
  std::vector<Location<double>> blocks;
  blocks.reserve(static_cast<std::size_t>(B));
  std::vector<std::array<Location<double>, 4>> faces(
      static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b) {
    blocks.push_back(p.location<double>(
        static_cast<std::size_t>(brows * bcols), "u" + std::to_string(b)));
    for (int d = 0; d < 4; ++d)
      if (neighbour(b, d) >= 0)
        faces[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)] =
            p.location<double>(face_elems(d), "face" + std::to_string(b) +
                                                  "d" + std::to_string(d));
  }

  const auto points = static_cast<double>(brows * bcols);
  for (int b = 0; b < B; ++b) {
    const long row0 = (b / g.gx) * brows;
    const long col0 = (b % g.gx) * bcols;
    const Location<double> block = blocks[static_cast<std::size_t>(b)];
    const std::array<Location<double>, 4> own =
        faces[static_cast<std::size_t>(b)];
    // My halo in direction d is the neighbour's face pointing back at me.
    std::array<Location<double>, 4> halo_src{};
    for (int d = 0; d < 4; ++d) {
      const int nb = neighbour(b, d);
      if (nb >= 0)
        halo_src[static_cast<std::size_t>(d)] =
            faces[static_cast<std::size_t>(nb)]
                 [static_cast<std::size_t>(kOpp[d])];
    }

    TaskBuilder builder = p.task("heat" + std::to_string(b));
    builder.writes(block, {.rank = 0});
    for (int d = 0; d < 4; ++d)
      if (own[static_cast<std::size_t>(d)].valid())
        builder.writes(own[static_cast<std::size_t>(d)], {.rank = 1});
    for (int d = 0; d < 4; ++d)
      if (halo_src[static_cast<std::size_t>(d)].valid())
        builder.reads(halo_src[static_cast<std::size_t>(d)], {.rank = 2});

    const long R = g.rows, C = g.cols;
    builder.iterations(T + 1)  // round 0 initializes, rounds 1..T sweep
        .cost(4.0 * points, 16.0 * points)
        .body([=, cur = std::vector<double>(), next = std::vector<double>(),
               halo = std::array<std::vector<double>, 4>{}](Step& s) mutable {
          const auto at = [bcols](long r, long c) {
            return static_cast<std::size_t>(r * bcols + c);
          };
          if (s.first()) {
            cur.resize(static_cast<std::size_t>(brows * bcols));
            next.resize(cur.size());
            for (int d = 0; d < 4; ++d)
              halo[static_cast<std::size_t>(d)].assign(face_elems(d), 0.0);
            for (long r = 0; r < brows; ++r)
              for (long c = 0; c < bcols; ++c)
                cur[at(r, c)] = init_u(row0 + r, col0 + c);
          } else {
            // Gather the neighbours' previous-iteration faces.
            for (int d = 0; d < 4; ++d) {
              const Location<double> src = halo_src[static_cast<std::size_t>(d)];
              if (!src.valid()) continue;
              s.read(src, [&](std::span<const double> face) {
                std::copy(face.begin(), face.end(),
                          halo[static_cast<std::size_t>(d)].begin());
              });
            }
            for (long r = 0; r < brows; ++r) {
              for (long c = 0; c < bcols; ++c) {
                const long gi = row0 + r, gj = col0 + c;
                if (gi == 0 || gj == 0 || gi == R - 1 || gj == C - 1) {
                  next[at(r, c)] = cur[at(r, c)];  // pinned border
                  continue;
                }
                const double n = r > 0 ? cur[at(r - 1, c)]
                                       : halo[kN][static_cast<std::size_t>(c)];
                const double sv = r + 1 < brows
                                      ? cur[at(r + 1, c)]
                                      : halo[kS][static_cast<std::size_t>(c)];
                const double w = c > 0 ? cur[at(r, c - 1)]
                                       : halo[kW][static_cast<std::size_t>(r)];
                const double e = c + 1 < bcols
                                     ? cur[at(r, c + 1)]
                                     : halo[kE][static_cast<std::size_t>(r)];
                next[at(r, c)] = jacobi_point(n, sv, w, e);
              }
            }
            std::swap(cur, next);
          }
          // Export the (new) boundary and publish the block.
          for (int d = 0; d < 4; ++d) {
            const Location<double> f = own[static_cast<std::size_t>(d)];
            if (!f.valid()) continue;
            s.write(f, [&](std::span<double> out) {
              switch (d) {
                case kN:
                  for (long c = 0; c < bcols; ++c)
                    out[static_cast<std::size_t>(c)] = cur[at(0, c)];
                  break;
                case kS:
                  for (long c = 0; c < bcols; ++c)
                    out[static_cast<std::size_t>(c)] = cur[at(brows - 1, c)];
                  break;
                case kW:
                  for (long r = 0; r < brows; ++r)
                    out[static_cast<std::size_t>(r)] = cur[at(r, 0)];
                  break;
                case kE:
                  for (long r = 0; r < brows; ++r)
                    out[static_cast<std::size_t>(r)] = cur[at(r, bcols - 1)];
                  break;
              }
            });
          }
          s.write(block, [&](std::span<double> out) {
            std::copy(cur.begin(), cur.end(), out.begin());
          });
        });
  }

  Built built;
  built.num_tasks = B;
  comm::StencilSpec st;
  st.blocks_x = g.gx;
  st.blocks_y = g.gy;
  st.block_rows = static_cast<int>(brows);
  st.block_cols = static_cast<int>(bcols);
  st.corners = false;
  built.predicted = comm::stencil_matrix(st);
  built.verify = [g, T, blocks](Backend& backend, std::string& why) {
    const std::vector<double> ref = reference(g, T);
    double worst = 0.0;
    for (int b = 0; b < g.gx * g.gy; ++b) {
      const long row0 = (b / g.gx) * g.brows;
      const long col0 = (b % g.gx) * g.bcols;
      const std::vector<double> got =
          backend.fetch(blocks[static_cast<std::size_t>(b)]);
      for (long r = 0; r < g.brows; ++r)
        for (long c = 0; c < g.bcols; ++c) {
          const double want =
              ref[static_cast<std::size_t>((row0 + r) * g.cols + col0 + c)];
          const double have =
              got[static_cast<std::size_t>(r * g.bcols + c)];
          const double d = have > want ? have - want : want - have;
          if (d > worst) worst = d;
        }
    }
    if (worst <= 1e-12) return true;
    std::ostringstream os;
    os << "max |err| vs global Jacobi reference = " << worst;
    why = os.str();
    return false;
  };
  return built;
}

}  // namespace orwl::workloads::detail
