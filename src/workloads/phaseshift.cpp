// Phase-shifting workload: a block-grid stencil that switches to a
// transpose exchange halfway through the run — the communication pattern
// the online re-placer (place/replace.h) exists for. Phase A (rounds
// [0, H)) exchanges faces with the 4 axis neighbours, exactly like
// stencil2d; phase B (rounds [H, T)) exchanges a chunk with the transpose
// partner (block (x, y) with block (y, x)), the worst case for any mapping
// that clustered grid neighbours. A static TreeMatch placement has to
// compromise between the two patterns; ReplacementPolicy::on_drift detects
// the shift from the measured per-epoch flow matrix and re-places mid-run.
//
// Phase A and phase B use disjoint location sets whose accesses carry
// round windows (AccessOpts::from_round/until_round), so the simulator
// derives the same two-phase schedule the runtime measures. Tasks
// accumulate everything they read into a per-task accumulator verified
// against a closed-form sequential replay with identical summation order —
// equality is exact.

#include <array>
#include <sstream>
#include <vector>

#include "sim/lk23_model.h"  // block_grid
#include "support/assert.h"
#include "workloads/builders.h"

namespace orwl::workloads::detail {

namespace {

enum Dir { kN = 0, kS = 1, kW = 2, kE = 3 };
constexpr int kDirX[] = {0, 0, -1, +1};
constexpr int kDirY[] = {-1, +1, 0, 0};
constexpr Dir kOpp[] = {kS, kN, kE, kW};

/// Face element k published by task i in direction d at round r.
double face_value(int i, int d, int r, long k) {
  return static_cast<double>((i * 131 + d * 37 + r * 17 + k * 7) & 255) /
         256.0;
}

/// Transpose-chunk element k published by task i at round r.
double chunk_value(int i, int r, long k) {
  return static_cast<double>((i * 59 + r * 23 + k * 11) & 255) / 256.0;
}

}  // namespace

Built build_phaseshift(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 1 &&
                     params.iterations >= 1,
                 "phaseshift needs tasks >= 1, size >= 1, iterations >= 1");
  const auto [gx, gy] = sim::block_grid(params.tasks);
  const int B = gx * gy;
  const int T = params.iterations;
  const int H = (T + 1) / 2;  // first transpose round; T == 1 has no phase B
  const auto elems = static_cast<std::size_t>(params.size);
  const auto bytes = static_cast<double>(elems * sizeof(double));

  const auto neighbour = [gx, gy](int b, int d) -> int {
    const int nx = b % gx + kDirX[d];
    const int ny = b / gx + kDirY[d];
    if (nx < 0 || ny < 0 || nx >= gx || ny >= gy) return -1;
    return ny * gx + nx;
  };
  // Transpose partner of block (x, y) is block (y, x) — defined when it
  // lies inside the (possibly non-square) grid and is not the block
  // itself. The relation is symmetric, so partners pair up.
  const auto partner = [gx, gy, T, H](int b) -> int {
    if (T <= H) return -1;  // no phase B rounds at all
    const int x = b % gx;
    const int y = b / gx;
    if (x == y || x >= gy || y >= gx) return -1;
    return x * gx + y;
  };

  // Locations: per-direction faces (phase A) and the transpose chunk
  // (phase B) — disjoint sets, so at the shift both sides of every face
  // simply stop touching it and the primed chunk requests start being
  // consumed.
  std::vector<std::array<Location<double>, 4>> faces(
      static_cast<std::size_t>(B));
  std::vector<Location<double>> chunks(static_cast<std::size_t>(B));
  std::vector<Location<double>> accs;
  accs.reserve(static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b) {
    for (int d = 0; d < 4; ++d)
      if (neighbour(b, d) >= 0)
        faces[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)] =
            p.location<double>(elems, "face" + std::to_string(b) + "d" +
                                          std::to_string(d));
    if (partner(b) >= 0)
      chunks[static_cast<std::size_t>(b)] =
          p.location<double>(elems, "tchunk" + std::to_string(b));
    accs.push_back(p.location<double>(1, "acc" + std::to_string(b)));
  }

  for (int b = 0; b < B; ++b) {
    const std::array<Location<double>, 4> own =
        faces[static_cast<std::size_t>(b)];
    std::array<Location<double>, 4> halo{};
    std::array<int, 4> halo_owner{-1, -1, -1, -1};
    for (int d = 0; d < 4; ++d) {
      const int nb = neighbour(b, d);
      if (nb < 0) continue;
      halo[static_cast<std::size_t>(d)] =
          faces[static_cast<std::size_t>(nb)][static_cast<std::size_t>(
              kOpp[d])];
      halo_owner[static_cast<std::size_t>(d)] = nb;
    }
    const int pb = partner(b);
    const Location<double> out_chunk = chunks[static_cast<std::size_t>(b)];
    const Location<double> in_chunk =
        pb >= 0 ? chunks[static_cast<std::size_t>(pb)] : Location<double>{};
    const Location<double> acc_loc = accs[static_cast<std::size_t>(b)];

    TaskBuilder builder = p.task("shift" + std::to_string(b));
    for (int d = 0; d < 4; ++d)
      if (own[static_cast<std::size_t>(d)].valid())
        builder.writes(own[static_cast<std::size_t>(d)],
                       {.rank = 0, .until_round = H});
    if (out_chunk.valid())
      builder.writes(out_chunk, {.rank = 0, .from_round = H});
    for (int d = 0; d < 4; ++d)
      if (halo[static_cast<std::size_t>(d)].valid())
        builder.reads(halo[static_cast<std::size_t>(d)],
                      {.rank = 1, .until_round = H});
    if (in_chunk.valid())
      builder.reads(in_chunk, {.rank = 1, .from_round = H});
    builder.writes(acc_loc, {.rank = 2});

    builder.iterations(T)
        .cost(1024.0, 4096.0)  // light: the pattern, not the flops, matters
        .body([b, H, elems, own, halo, out_chunk, in_chunk, acc_loc,
               acc = 0.0](Step& s) mutable {
          if (s.first()) acc = 0.0;
          const int r = s.round();
          if (r < H) {
            for (int d = 0; d < 4; ++d) {
              const Location<double> f = own[static_cast<std::size_t>(d)];
              if (!f.valid()) continue;
              s.write(f, [&](std::span<double> outv) {
                for (std::size_t k = 0; k < elems; ++k)
                  outv[k] = face_value(b, d, r, static_cast<long>(k));
              });
            }
            for (int d = 0; d < 4; ++d) {
              const Location<double> f = halo[static_cast<std::size_t>(d)];
              if (!f.valid()) continue;
              s.read(f, [&](std::span<const double> in) {
                for (const double v : in) acc += v;
              });
            }
          } else {
            if (out_chunk.valid())
              s.write(out_chunk, [&](std::span<double> outv) {
                for (std::size_t k = 0; k < elems; ++k)
                  outv[k] = chunk_value(b, r, static_cast<long>(k));
              });
            if (in_chunk.valid())
              s.read(in_chunk, [&](std::span<const double> in) {
                for (const double v : in) acc += v;
              });
          }
          s.write(acc_loc,
                  [&](std::span<double> store) { store[0] = acc; });
        });
  }

  Built built;
  built.num_tasks = B;
  comm::CommMatrix predicted(B);
  for (int b = 0; b < B; ++b) {
    for (int d = 0; d < 4; ++d)
      if (neighbour(b, d) >= 0) predicted.add(b, neighbour(b, d), bytes);
    if (partner(b) >= 0) predicted.add(b, partner(b), bytes);
  }
  built.predicted = predicted;
  built.verify = [B, T, H, elems, neighbour, partner, accs](
                     Backend& backend, std::string& why) {
    for (int b = 0; b < B; ++b) {
      double want = 0.0;
      for (int r = 0; r < T; ++r) {
        if (r < H) {
          for (int d = 0; d < 4; ++d) {
            const int nb = neighbour(b, d);
            if (nb < 0) continue;
            for (std::size_t k = 0; k < elems; ++k)
              want += face_value(nb, kOpp[d], r, static_cast<long>(k));
          }
        } else if (partner(b) >= 0) {
          for (std::size_t k = 0; k < elems; ++k)
            want += chunk_value(partner(b), r, static_cast<long>(k));
        }
      }
      const double have =
          backend.fetch(accs[static_cast<std::size_t>(b)])[0];
      if (have != want) {
        std::ostringstream os;
        os << "task " << b << " accumulated " << have << ", expected "
           << want;
        why = os.str();
        return false;
      }
    }
    return true;
  };
  return built;
}

}  // namespace orwl::workloads::detail
