#pragma once
// Workload registry: named, parameterized ORWL Program definitions with
// built-in result verification and an analytic predicted-communication
// matrix (src/comm/patterns.*) that mirrors what the runtime's Instrument
// should measure. The registry is what turns the repo from a single-figure
// LK23 reproduction into a scenario-diverse placement testbed: the bench
// harness (src/harness) sweeps every entry across placement policies and
// backends, and closes the paper's feedback loop (measured matrix ->
// TreeMatch -> re-run) for each of them.
//
// Registered workloads:
//   lk23      — the paper's Livermore Kernel 23 block decomposition
//               (mains + frontier ops), ported from src/lk23;
//   stencil2d — 2-D Jacobi heat stencil, one task per block, direct
//               face-location exchange with the 4 axis neighbours;
//   wavefront — block wavefront sweep (west/north incoming, east/south
//               outgoing dependencies), the classic pipelined-DAG shape;
//   alltoall  — every task publishes a chunk every round and reads every
//               other task's chunk (the worst case for locality);
//   pipeline  — a linear stage chain streaming frames hand-to-hand;
//   phaseshift — block-grid stencil that switches to a transpose exchange
//               halfway through the run: the demonstration workload for
//               epoch-based online re-placement (place/replace.h);
//   oversub   — oversubscription stress: a periodic token ring whose
//               default task count dwarfs any host's PU count, surfacing
//               the scheduling pathologies (yield storms, futex convoys)
//               that only appear when threads far outnumber PUs.
//
// Every Built workload can verify its numerical result against a
// sequential reference, bit-for-bit where the decomposition allows it.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/comm_matrix.h"
#include "orwl/backend.h"
#include "orwl/program.h"

namespace orwl::workloads {

/// Scale knobs shared by all workloads. Meaning of `size` is per workload:
/// the global matrix side for the grid workloads, elements per chunk /
/// frame for the exchange workloads.
struct Params {
  int tasks = 4;
  long size = 64;
  int iterations = 4;
};

/// What building a workload into a Program yields, besides the Program
/// itself: the task count, the analytic predicted-comm matrix, and a
/// verification closure to run after execution.
struct Built {
  int num_tasks = 0;
  /// Analytic pattern matrix (order == num_tasks). Nonzero support must
  /// match the measured flow matrix of an instrumented run — the parity
  /// the workloads_test checks per workload.
  comm::CommMatrix predicted;
  /// Check the backend's post-run location contents against the
  /// sequential reference. On failure returns false and fills `why`.
  /// Requires a fetch-capable backend (RuntimeBackend, or SimBackend with
  /// emulate).
  std::function<bool(Backend& backend, std::string& why)> verify;
};

/// A registry entry: a named factory of Program definitions.
struct Workload {
  std::string name;
  std::string description;
  Params defaults;
  /// Build the workload into `p` at the given scale. The body closures
  /// reset their captured state on Step::first(), so the resulting
  /// Program can be run repeatedly (the harness re-runs it per
  /// repetition).
  std::function<Built(Program& p, const Params& params)> build;
};

/// All registered workloads, in registration order.
const std::vector<Workload>& registry();

/// Lookup by name; nullptr when unknown.
const Workload* find(const std::string& name);

/// Lookup by name; throws ContractError naming the known workloads when
/// unknown.
const Workload& get(const std::string& name);

/// Registered names, in registration order.
std::vector<std::string> names();

}  // namespace orwl::workloads
