// Oversubscription stress workload: a periodic token ring with, by
// default, far more tasks than any reasonable host has PUs. Each peer
// publishes a fresh chunk every round and folds its left neighbour's
// chunk into a running sum. Communication is the periodic ring; the
// stress is in the thread count — with PerTask control threads the run
// holds 2*tasks live threads, so the 1-PU pathologies the ROADMAP names
// (yield storms, futex convoys, grant bursts against a parked consumer)
// are exercised on any machine. Verifies against a closed-form replay
// with identical summation order, so equality is exact.

#include <numeric>
#include <sstream>
#include <vector>

#include "comm/patterns.h"
#include "support/assert.h"
#include "workloads/builders.h"

namespace orwl::workloads::detail {

namespace {

/// Chunk element k published by peer i in round r.
double token_value(int i, int r, long k) {
  return static_cast<double>((i * 29 + r * 11 + k * 3) & 255) / 256.0;
}

}  // namespace

Built build_oversub(Program& p, const Params& params) {
  ORWL_CHECK_MSG(params.tasks >= 1 && params.size >= 1 &&
                     params.iterations >= 1,
                 "oversub needs tasks >= 1, size >= 1, iterations >= 1");
  const int n = params.tasks;
  const auto elems = static_cast<std::size_t>(params.size);
  const int T = params.iterations;

  std::vector<Location<double>> ring, accs;
  ring.reserve(static_cast<std::size_t>(n));
  accs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ring.push_back(p.location<double>(elems, "ring" + std::to_string(i)));
    accs.push_back(p.location<double>(1, "osacc" + std::to_string(i)));
  }

  const auto bytes = static_cast<double>(elems * sizeof(double));
  for (int i = 0; i < n; ++i) {
    const int left = (i + n - 1) % n;
    TaskBuilder builder = p.task("peer" + std::to_string(i));
    builder.writes(ring[static_cast<std::size_t>(i)], {.rank = 0});
    if (n > 1)
      builder.reads(ring[static_cast<std::size_t>(left)], {.rank = 1});
    builder.writes(accs[static_cast<std::size_t>(i)], {.rank = 2});

    builder.iterations(T)
        .cost(static_cast<double>(elems), 2.0 * bytes)
        .body([i, left, n, elems, ring, accs, acc = 0.0](Step& s) mutable {
          if (s.first()) acc = 0.0;
          const int r = s.round();
          s.write(ring[static_cast<std::size_t>(i)],
                  [&](std::span<double> out) {
                    for (std::size_t k = 0; k < elems; ++k)
                      out[k] = token_value(i, r, static_cast<long>(k));
                  });
          if (n > 1) {
            acc += s.read(ring[static_cast<std::size_t>(left)],
                          [](std::span<const double> in) {
                            return std::accumulate(in.begin(), in.end(),
                                                   0.0);
                          });
          }
          s.write(accs[static_cast<std::size_t>(i)],
                  [&](std::span<double> out) { out[0] = acc; });
        });
  }

  Built built;
  built.num_tasks = n;
  built.predicted = comm::ring_matrix(n, bytes, /*periodic=*/true);
  built.verify = [n, elems, T, accs](Backend& backend, std::string& why) {
    for (int i = 0; i < n; ++i) {
      const int left = (i + n - 1) % n;
      double want = 0.0;
      if (n > 1) {
        for (int r = 0; r < T; ++r)
          for (std::size_t k = 0; k < elems; ++k)
            want += token_value(left, r, static_cast<long>(k));
      }
      const double have =
          backend.fetch(accs[static_cast<std::size_t>(i)])[0];
      if (have != want) {
        std::ostringstream os;
        os << "peer " << i << " accumulated " << have << ", expected "
           << want;
        why = os.str();
        return false;
      }
    }
    return true;
  };
  return built;
}

}  // namespace orwl::workloads::detail
