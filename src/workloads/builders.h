#pragma once
// Internal: the per-file workload builders the registry assembles. Each
// returns a Built whose verify closure replays a sequential reference of
// the same numerics. Not part of the public workloads API.

#include "workloads/workloads.h"

namespace orwl::workloads::detail {

Built build_lk23(Program& p, const Params& params);
Built build_stencil2d(Program& p, const Params& params);
Built build_wavefront(Program& p, const Params& params);
Built build_alltoall(Program& p, const Params& params);
Built build_pipeline(Program& p, const Params& params);
Built build_phaseshift(Program& p, const Params& params);
Built build_oversub(Program& p, const Params& params);

}  // namespace orwl::workloads::detail
