#include "mem/segment.h"

#include <cstring>
#include <new>
#include <utility>

#ifdef __linux__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

#include "mem/numa.h"
#include "support/assert.h"

namespace orwl::mem {

namespace {

void release(std::byte* data, std::size_t size, Segment::Backing backing,
             int fd, const std::string& shm_name, int creator_pid) {
  switch (backing) {
    case Segment::Backing::None:
    case Segment::Backing::External:
      break;
    case Segment::Backing::Heap:
      ::operator delete(data, std::align_val_t{kSegmentAlignment});
      break;
    case Segment::Backing::Mmap:
    case Segment::Backing::Shm:
#ifdef __linux__
      if (data != nullptr) ::munmap(data, size);
      if (fd >= 0) ::close(fd);
      // Only the process that created a NAMED object unlinks it: a
      // fork-inherited Segment copy dying in the child must not yank the
      // name from under the parent (or vice versa).
      if (!shm_name.empty() && creator_pid == ::getpid())
        ::shm_unlink(shm_name.c_str());
#else
      (void)size;
      (void)fd;
      (void)shm_name;
      (void)creator_pid;
#endif
      break;
  }
}

#ifdef __linux__
/// Map `bytes` of `fd` shared; returns nullptr on failure.
std::byte* map_shared_fd(int fd, std::size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  return p == MAP_FAILED ? nullptr : static_cast<std::byte*>(p);
}
#endif

}  // namespace

Segment::~Segment() {
  release(data_, size_, backing_, fd_, shm_name_, creator_pid_);
}

Segment::Segment(Segment&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      backing_(std::exchange(o.backing_, Backing::None)),
      target_node_(std::exchange(o.target_node_, -1)),
      interleaved_(std::exchange(o.interleaved_, false)),
      placed_(std::exchange(o.placed_, false)),
      fd_(std::exchange(o.fd_, -1)),
      shm_name_(std::exchange(o.shm_name_, {})),
      creator_pid_(std::exchange(o.creator_pid_, -1)) {}

Segment& Segment::operator=(Segment&& o) noexcept {
  if (this == &o) return *this;
  release(data_, size_, backing_, fd_, shm_name_, creator_pid_);
  data_ = std::exchange(o.data_, nullptr);
  size_ = std::exchange(o.size_, 0);
  backing_ = std::exchange(o.backing_, Backing::None);
  target_node_ = std::exchange(o.target_node_, -1);
  interleaved_ = std::exchange(o.interleaved_, false);
  placed_ = std::exchange(o.placed_, false);
  fd_ = std::exchange(o.fd_, -1);
  shm_name_ = std::exchange(o.shm_name_, {});
  creator_pid_ = std::exchange(o.creator_pid_, -1);
  return *this;
}

bool Segment::bind_to_node(int node) {
  ORWL_CHECK_MSG(node >= 0, "bind_to_node needs a node id, got " << node);
  target_node_ = node;
  interleaved_ = false;
  if (size_ == 0) {
    placed_ = true;  // nothing to move: vacuously satisfied
    return true;
  }
  placed_ = backing_ == Backing::Mmap &&
            bind_pages_to_node(data_, size_, node);
  return placed_;
}

bool Segment::interleave(const std::vector<int>& node_ids) {
  ORWL_CHECK_MSG(!node_ids.empty(), "interleave needs at least one node");
  target_node_ = -1;
  interleaved_ = true;
  if (size_ == 0) {
    placed_ = true;
    return true;
  }
  placed_ = backing_ == Backing::Mmap &&
            interleave_pages(data_, size_, node_ids);
  return placed_;
}

Segment Segment::create_shm(const std::string& name, std::size_t bytes) {
  ORWL_CHECK_MSG(bytes > 0, "shared segments cannot be empty");
#ifdef __linux__
  int fd = -1;
  if (name.empty()) {
    fd = static_cast<int>(::syscall(SYS_memfd_create, "orwl-ipc", 0u));
    ORWL_CHECK_MSG(fd >= 0, "memfd_create failed: " << std::strerror(errno));
  } else {
    ORWL_CHECK_MSG(name.front() == '/', "shm names start with '/': " << name);
    fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    ORWL_CHECK_MSG(fd >= 0, "shm_open(" << name << ") failed: "
                                        << std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    if (!name.empty()) ::shm_unlink(name.c_str());
    ORWL_CHECK_MSG(false, "ftruncate to " << bytes << " bytes failed");
  }
  std::byte* p = map_shared_fd(fd, bytes);
  if (p == nullptr) {
    ::close(fd);
    if (!name.empty()) ::shm_unlink(name.c_str());
    ORWL_CHECK_MSG(false, "mmap of " << bytes << " shared bytes failed");
  }
  Segment seg;
  seg.data_ = p;  // tmpfs pages are zero-filled on allocation
  seg.size_ = bytes;
  seg.backing_ = Backing::Shm;
  seg.fd_ = fd;
  seg.shm_name_ = name;
  seg.creator_pid_ = ::getpid();
  return seg;
#else
  ORWL_CHECK_MSG(false, "shared segments require Linux (shm_open/memfd)");
#endif
}

Segment Segment::attach_shm(const std::string& name,
                            std::size_t expect_bytes) {
#ifdef __linux__
  ORWL_CHECK_MSG(!name.empty() && name.front() == '/',
                 "attach_shm needs a '/name', got '" << name << "'");
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  ORWL_CHECK_MSG(fd >= 0, "shm_open(" << name << ") failed: "
                                      << std::strerror(errno));
  Segment seg = attach_shm_fd(fd, expect_bytes);
  ::close(fd);  // attach_shm_fd dup()ed it
  return seg;
#else
  (void)expect_bytes;
  ORWL_CHECK_MSG(false, "shared segments require Linux (shm_open/memfd)");
#endif
}

Segment Segment::attach_shm_fd(int fd, std::size_t expect_bytes) {
#ifdef __linux__
  ORWL_CHECK_MSG(fd >= 0, "attach_shm_fd needs a valid fd");
  struct stat st{};
  ORWL_CHECK_MSG(::fstat(fd, &st) == 0, "fstat on shm fd failed");
  const auto bytes = static_cast<std::size_t>(st.st_size);
  ORWL_CHECK_MSG(bytes > 0, "shm object is empty — creator not done?");
  ORWL_CHECK_MSG(expect_bytes == 0 || bytes >= expect_bytes,
                 "shm object truncated: holds " << bytes << " bytes, need "
                                                << expect_bytes);
  const int own = ::fcntl(fd, F_DUPFD_CLOEXEC, 0);
  ORWL_CHECK_MSG(own >= 0, "dup of shm fd failed");
  std::byte* p = map_shared_fd(own, bytes);
  if (p == nullptr) {
    ::close(own);
    ORWL_CHECK_MSG(false, "mmap of " << bytes << " shared bytes failed");
  }
  Segment seg;
  seg.data_ = p;
  seg.size_ = bytes;
  seg.backing_ = Backing::Shm;
  seg.fd_ = own;
  return seg;
#else
  (void)fd;
  (void)expect_bytes;
  ORWL_CHECK_MSG(false, "shared segments require Linux (shm_open/memfd)");
#endif
}

Segment Segment::external_view(std::byte* data, std::size_t bytes) {
  ORWL_CHECK_MSG(bytes == 0 || data != nullptr,
                 "external view needs memory to point at");
  Segment seg;
  seg.data_ = bytes == 0 ? nullptr : data;
  seg.size_ = bytes;
  seg.backing_ = bytes == 0 ? Backing::None : Backing::External;
  return seg;
}

bool Arena::numa_backed() const {
  return opts_.policy != MemoryPolicy::Heap && !opts_.force_fallback &&
         numa_syscalls_available();
}

Segment Arena::allocate(std::size_t bytes) const {
  Segment seg;
  if (bytes == 0) return seg;
  seg.size_ = bytes;
#ifdef __linux__
  if (numa_backed()) {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      // Anonymous pages are zero on first touch; no memset needed (and
      // touching here would defeat late page placement).
      seg.data_ = static_cast<std::byte*>(p);
      seg.backing_ = Segment::Backing::Mmap;
      return seg;
    }
  }
#endif
  seg.data_ = static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{kSegmentAlignment}));
  std::memset(seg.data_, 0, bytes);
  seg.backing_ = Segment::Backing::Heap;
  return seg;
}

}  // namespace orwl::mem
