#include "mem/segment.h"

#include <cstring>
#include <new>
#include <utility>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "mem/numa.h"
#include "support/assert.h"

namespace orwl::mem {

namespace {

void release(std::byte* data, std::size_t size, Segment::Backing backing) {
  switch (backing) {
    case Segment::Backing::None:
      break;
    case Segment::Backing::Heap:
      ::operator delete(data, std::align_val_t{kSegmentAlignment});
      break;
    case Segment::Backing::Mmap:
#ifdef __linux__
      ::munmap(data, size);
#else
      (void)size;
#endif
      break;
  }
}

}  // namespace

Segment::~Segment() { release(data_, size_, backing_); }

Segment::Segment(Segment&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      backing_(std::exchange(o.backing_, Backing::None)),
      target_node_(std::exchange(o.target_node_, -1)),
      interleaved_(std::exchange(o.interleaved_, false)),
      placed_(std::exchange(o.placed_, false)) {}

Segment& Segment::operator=(Segment&& o) noexcept {
  if (this == &o) return *this;
  release(data_, size_, backing_);
  data_ = std::exchange(o.data_, nullptr);
  size_ = std::exchange(o.size_, 0);
  backing_ = std::exchange(o.backing_, Backing::None);
  target_node_ = std::exchange(o.target_node_, -1);
  interleaved_ = std::exchange(o.interleaved_, false);
  placed_ = std::exchange(o.placed_, false);
  return *this;
}

bool Segment::bind_to_node(int node) {
  ORWL_CHECK_MSG(node >= 0, "bind_to_node needs a node id, got " << node);
  target_node_ = node;
  interleaved_ = false;
  if (size_ == 0) {
    placed_ = true;  // nothing to move: vacuously satisfied
    return true;
  }
  placed_ = backing_ == Backing::Mmap &&
            bind_pages_to_node(data_, size_, node);
  return placed_;
}

bool Segment::interleave(const std::vector<int>& node_ids) {
  ORWL_CHECK_MSG(!node_ids.empty(), "interleave needs at least one node");
  target_node_ = -1;
  interleaved_ = true;
  if (size_ == 0) {
    placed_ = true;
    return true;
  }
  placed_ = backing_ == Backing::Mmap &&
            interleave_pages(data_, size_, node_ids);
  return placed_;
}

bool Arena::numa_backed() const {
  return opts_.policy != MemoryPolicy::Heap && !opts_.force_fallback &&
         numa_syscalls_available();
}

Segment Arena::allocate(std::size_t bytes) const {
  Segment seg;
  if (bytes == 0) return seg;
  seg.size_ = bytes;
#ifdef __linux__
  if (numa_backed()) {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      // Anonymous pages are zero on first touch; no memset needed (and
      // touching here would defeat late page placement).
      seg.data_ = static_cast<std::byte*>(p);
      seg.backing_ = Segment::Backing::Mmap;
      return seg;
    }
  }
#endif
  seg.data_ = static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{kSegmentAlignment}));
  std::memset(seg.data_, 0, bytes);
  seg.backing_ = Segment::Backing::Heap;
  return seg;
}

}  // namespace orwl::mem
