#pragma once
// Thin NUMA layer, libnuma-free:
//
//   * NumaInfo — the node inventory parsed from sysfs
//     (/sys/devices/system/node/nodeN/{cpulist,meminfo,distance}): which
//     OS cpus belong to which node, node memory sizes, the SLIT distance
//     rows. Pure file reads; works even where the policy syscalls are
//     blocked (containers).
//   * page ops — mbind / get_mempolicy issued directly via syscall(2), so
//     there is no hard libnuma dependency. Every entry point degrades
//     gracefully: on non-Linux builds, kernels without the syscalls,
//     seccomp-filtered containers, or ORWL_MEM_FORCE_FALLBACK builds the
//     ops report failure and callers fall back to plain heap behaviour.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topo/bitmap.h"

namespace orwl::mem {

/// One NUMA node as described under /sys/devices/system/node/nodeN.
struct NumaNode {
  int id = -1;               ///< OS node id (the N in nodeN)
  topo::Bitmap cpus;         ///< OS cpu indices local to this node
  long long mem_bytes = -1;  ///< MemTotal of the node; -1 unknown
  /// SLIT distance row (one entry per inventory node, in nodes() order);
  /// empty when the distance file is absent.
  std::vector<int> distances;
};

/// Immutable NUMA node inventory.
class NumaInfo {
 public:
  NumaInfo() = default;

  /// Parse the inventory under `sysfs_root` (normally "/sys"). An empty
  /// inventory (no node directories) yields available() == false.
  static NumaInfo detect(const std::string& sysfs_root = "/sys");

  /// The host inventory, detected once and cached.
  static const NumaInfo& host();

  /// Fabricate an inventory from per-node cpusets (node ids 0..n-1) —
  /// for tests that need a multi-node machine on a single-node host.
  static NumaInfo from_node_cpus(std::vector<topo::Bitmap> node_cpus);

  [[nodiscard]] bool available() const { return !nodes_.empty(); }
  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] const std::vector<NumaNode>& nodes() const { return nodes_; }

  /// OS node id owning `os_cpu`, or -1 when unknown.
  [[nodiscard]] int node_of_cpu(int os_cpu) const;

  /// All OS node ids, in nodes() order.
  [[nodiscard]] std::vector<int> node_ids() const;

 private:
  std::vector<NumaNode> nodes_;  ///< sorted by id
};

/// True when the memory-policy syscalls (mbind / get_mempolicy) work in
/// this process. Probed once and cached. Always false in
/// ORWL_MEM_FORCE_FALLBACK builds (the CI no-NUMA leg).
bool numa_syscalls_available();

/// Prefer `node` for the pages of [addr, addr+len): mbind with
/// MPOL_PREFERRED | MPOL_MF_MOVE, so already-touched pages migrate.
/// `addr` need not be page-aligned (the range is widened to page
/// boundaries). Returns false when the syscall layer is unavailable or
/// the kernel rejects the request.
bool bind_pages_to_node(void* addr, std::size_t len, int node);

/// Interleave the pages of [addr, addr+len) across `node_ids`
/// (MPOL_INTERLEAVE | MPOL_MF_MOVE). Same failure semantics.
bool interleave_pages(void* addr, std::size_t len,
                      const std::vector<int>& node_ids);

/// NUMA node currently backing the (touched) page at `addr`, or nullopt
/// when it cannot be queried. Diagnostic / test helper.
std::optional<int> page_node_of(const void* addr);

/// The system page size (sysconf), cached.
std::size_t page_size();

}  // namespace orwl::mem
