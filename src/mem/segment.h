#pragma once
// Segment / Arena: pluggable location storage.
//
// A Segment is the byte store behind one LocationBuffer — a chunk of
// zero-initialized memory that is NOT assumed to be process-private heap.
// Today there are two backings (heap, anonymous mmap with NUMA page
// placement); the abstraction is also the seam a multi-process shm
// transport plugs into later (a Segment backed by a shared mapping).
//
// The Arena decides the backing from the MemoryPolicy: numa policies use
// mmap so pages can be bound / interleaved / migrated with mem/numa.h;
// when the syscall layer is unavailable (non-Linux, seccomp, the CI
// no-NUMA leg) allocation falls back to the heap and the page ops record
// *intent* only — programs run identically, placement just stays
// advisory. That keeps `--memory-policy numa_local` working end-to-end on
// any host.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mem/policy.h"

namespace orwl::mem {

/// Minimum alignment every non-empty Segment guarantees, regardless of
/// backing (a cache line; mmap-backed segments are page-aligned).
inline constexpr std::size_t kSegmentAlignment = 64;

/// One owned, zero-initialized byte range. Move-only; the destructor
/// releases per backing. Obtained from Arena::allocate.
class Segment {
 public:
  enum class Backing {
    None,      ///< empty (default-constructed or zero bytes)
    Heap,      ///< aligned operator new
    Mmap,      ///< anonymous private mapping (NUMA page ops reach the kernel)
    Shm,       ///< shared mapping of a shm_open/memfd object (ipc transport)
    External,  ///< non-owning view into memory someone else owns
  };

  Segment() = default;
  ~Segment();
  Segment(Segment&& o) noexcept;
  Segment& operator=(Segment&& o) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<std::byte> bytes() { return {data_, size_}; }
  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {data_, size_};
  }
  [[nodiscard]] Backing backing() const { return backing_; }

  /// NUMA node the pages are intended to live on; -1 = unconstrained.
  /// Intent is recorded even on the fallback path, so placement decisions
  /// stay observable on hosts where the syscalls do nothing.
  [[nodiscard]] int target_node() const { return target_node_; }
  /// The pages are interleaved across nodes (NumaInterleave applied).
  [[nodiscard]] bool interleaved() const { return interleaved_; }
  /// The last bind/interleave request physically reached the kernel.
  [[nodiscard]] bool physically_placed() const { return placed_; }

  /// Place — or, for already-touched pages, migrate (MPOL_MF_MOVE) — the
  /// segment onto `node`. Records the intent unconditionally; returns
  /// true when the kernel accepted the request (vacuously true for empty
  /// segments). Contents are preserved either way.
  bool bind_to_node(int node);

  /// Interleave the pages across `node_ids`. Same intent/return
  /// semantics as bind_to_node.
  bool interleave(const std::vector<int>& node_ids);

  // --- cross-address-space backings (the ipc:: transport seam) -------------

  /// Create a shared, zero-filled shm object of `bytes` and map it
  /// (MAP_SHARED, page-aligned). `name` empty -> an anonymous memfd whose
  /// fd the creating process passes to children (fork inheritance); a
  /// name like "/orwl-xyz" -> shm_open(O_CREAT|O_EXCL), unlinked again
  /// when the CREATING process destroys the segment (a fork-inherited
  /// copy destroyed in a child leaves the name alone). Linux only; throws
  /// ContractError elsewhere or on failure.
  [[nodiscard]] static Segment create_shm(const std::string& name,
                                          std::size_t bytes);

  /// Map an existing named shm object. `expect_bytes` nonzero -> the
  /// object must be at least that large (attach-time truncation check).
  [[nodiscard]] static Segment attach_shm(const std::string& name,
                                          std::size_t expect_bytes = 0);

  /// Map an shm object by file descriptor (the memfd handed across a
  /// fork). The fd is dup()ed; the caller keeps ownership of `fd`.
  [[nodiscard]] static Segment attach_shm_fd(int fd,
                                             std::size_t expect_bytes = 0);

  /// Non-owning window into memory owned elsewhere (a slice of a shared
  /// segment). The destructor releases nothing; the underlying mapping
  /// must outlive the view.
  [[nodiscard]] static Segment external_view(std::byte* data,
                                             std::size_t bytes);

  /// The shm object's file descriptor (Backing::Shm only, else -1) — pass
  /// it to a forked child for attach_shm_fd.
  [[nodiscard]] int shm_fd() const { return fd_; }

 private:
  friend class Arena;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  Backing backing_ = Backing::None;
  int target_node_ = -1;
  bool interleaved_ = false;
  bool placed_ = false;
  int fd_ = -1;            ///< owned shm fd (Backing::Shm)
  std::string shm_name_;   ///< non-empty: unlink on destroy (creator only)
  int creator_pid_ = -1;   ///< pid that created the named object
};

/// Segment factory for one MemoryPolicy.
class Arena {
 public:
  struct Options {
    MemoryPolicy policy = MemoryPolicy::Heap;
    /// Use the heap fallback even when the NUMA syscalls would work
    /// (tests; the ORWL_FORCE_NO_NUMA CMake option forces this
    /// process-wide instead, via the syscall probe).
    bool force_fallback = false;
  };

  Arena() = default;
  explicit Arena(Options opts) : opts_(opts) {}

  [[nodiscard]] MemoryPolicy policy() const { return opts_.policy; }

  /// True when allocations are mmap-backed and page ops reach the kernel
  /// — i.e. a numa policy is in force and the host supports it.
  [[nodiscard]] bool numa_backed() const;

  /// A zero-initialized segment of `bytes` (0 -> empty segment). Aligned
  /// to at least kSegmentAlignment; page-aligned when numa_backed().
  [[nodiscard]] Segment allocate(std::size_t bytes) const;

 private:
  Options opts_;
};

}  // namespace orwl::mem
