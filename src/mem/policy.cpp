#include "mem/policy.h"

#include <cctype>

#include "support/assert.h"

namespace orwl::mem {

const char* to_string(MemoryPolicy p) {
  switch (p) {
    case MemoryPolicy::Heap: return "heap";
    case MemoryPolicy::NumaLocal: return "numa_local";
    case MemoryPolicy::NumaInterleave: return "numa_interleave";
  }
  return "?";
}

MemoryPolicy parse_memory_policy(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (const char c : name)
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "heap") return MemoryPolicy::Heap;
  if (s == "numa_local" || s == "local") return MemoryPolicy::NumaLocal;
  if (s == "numa_interleave" || s == "interleave")
    return MemoryPolicy::NumaInterleave;
  ORWL_CHECK_MSG(false, "unknown memory policy '"
                            << name
                            << "'; known: heap|numa_local|numa_interleave "
                               "(aliases: local, interleave)");
  return MemoryPolicy::Heap;  // unreachable
}

}  // namespace orwl::mem
