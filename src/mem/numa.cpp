#include "mem/numa.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "support/file.h"

namespace orwl::mem {

namespace {

// Local MPOL_* constants (uapi/linux/mempolicy.h): the syscalls are issued
// directly so the repo carries no libnuma / numaif.h dependency.
constexpr int kMpolPreferred = 1;
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1u << 1;
constexpr unsigned long kMpolFNode = 1u << 0;
constexpr unsigned long kMpolFAddr = 1u << 1;

#if defined(__linux__) && defined(SYS_mbind) && defined(SYS_get_mempolicy)
#define ORWL_MEM_HAVE_SYSCALLS 1
#else
#define ORWL_MEM_HAVE_SYSCALLS 0
#endif

#if ORWL_MEM_HAVE_SYSCALLS
long sys_mbind(void* addr, unsigned long len, int mode,
               const unsigned long* nodemask, unsigned long maxnode,
               unsigned flags) {
  return ::syscall(SYS_mbind, addr, len, mode, nodemask, maxnode, flags);
}

long sys_get_mempolicy(int* mode, unsigned long* nodemask,
                       unsigned long maxnode, const void* addr,
                       unsigned long flags) {
  return ::syscall(SYS_get_mempolicy, mode, nodemask, maxnode, addr, flags);
}
#endif

/// Node-id set as the nodemask words mbind expects; maxnode covers the
/// highest bit.
struct NodeMask {
  std::vector<unsigned long> words;
  unsigned long maxnode = 0;
};

NodeMask make_mask(const std::vector<int>& node_ids) {
  constexpr unsigned long kBits = sizeof(unsigned long) * 8;
  NodeMask mask;
  int max_id = -1;
  for (const int id : node_ids) max_id = std::max(max_id, id);
  if (max_id < 0) return mask;
  mask.words.assign(static_cast<std::size_t>(max_id) / kBits + 1, 0UL);
  for (const int id : node_ids) {
    if (id < 0) continue;
    mask.words[static_cast<std::size_t>(id) / kBits] |=
        1UL << (static_cast<unsigned long>(id) % kBits);
  }
  mask.maxnode = mask.words.size() * kBits;
  return mask;
}

/// Widen [addr, addr+len) to page boundaries (mbind wants aligned addr).
std::pair<void*, std::size_t> page_span(void* addr, std::size_t len) {
  const std::size_t ps = page_size();
  auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t start = base / ps * ps;
  const std::size_t span = ((base + len + ps - 1) / ps * ps) - start;
  return {reinterpret_cast<void*>(start), span};
}

bool apply_policy(void* addr, std::size_t len, int mode,
                  const std::vector<int>& node_ids) {
  if (addr == nullptr || len == 0 || node_ids.empty()) return false;
  if (!numa_syscalls_available()) return false;
#if ORWL_MEM_HAVE_SYSCALLS
  const NodeMask mask = make_mask(node_ids);
  if (mask.words.empty()) return false;
  const auto [start, span] = page_span(addr, len);
  return sys_mbind(start, span, mode, mask.words.data(), mask.maxnode,
                   kMpolMfMove) == 0;
#else
  return false;
#endif
}

/// "Node 0 MemTotal:   16309732 kB" -> bytes; -1 when unparseable.
long long parse_meminfo_total(const std::string& meminfo) {
  const std::size_t key = meminfo.find("MemTotal:");
  if (key == std::string::npos) return -1;
  std::istringstream is(meminfo.substr(key + sizeof("MemTotal:") - 1));
  long long kb = -1;
  if (!(is >> kb) || kb < 0) return -1;
  return kb * 1024;
}

std::vector<int> parse_distance_row(const std::string& row) {
  std::istringstream is(row);
  std::vector<int> out;
  int d = 0;
  while (is >> d) out.push_back(d);
  return out;
}

}  // namespace

bool numa_syscalls_available() {
#ifdef ORWL_MEM_FORCE_FALLBACK
  return false;
#elif ORWL_MEM_HAVE_SYSCALLS
  // One probe per process: a mode-only get_mempolicy succeeds iff the
  // syscall exists and is not filtered away.
  static const bool ok = [] {
    int mode = 0;
    return sys_get_mempolicy(&mode, nullptr, 0, nullptr, 0) == 0;
  }();
  return ok;
#else
  return false;
#endif
}

bool bind_pages_to_node(void* addr, std::size_t len, int node) {
  if (node < 0) return false;
  return apply_policy(addr, len, kMpolPreferred, {node});
}

bool interleave_pages(void* addr, std::size_t len,
                      const std::vector<int>& node_ids) {
  return apply_policy(addr, len, kMpolInterleave, node_ids);
}

std::optional<int> page_node_of(const void* addr) {
  if (addr == nullptr || !numa_syscalls_available()) return std::nullopt;
#if ORWL_MEM_HAVE_SYSCALLS
  int node = -1;
  if (sys_get_mempolicy(&node, nullptr, 0, addr, kMpolFNode | kMpolFAddr) !=
      0)
    return std::nullopt;
  if (node < 0) return std::nullopt;
  return node;
#else
  return std::nullopt;
#endif
}

std::size_t page_size() {
#ifdef __linux__
  static const std::size_t ps = [] {
    const long v = ::sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{4096};
  }();
  return ps;
#else
  return 4096;
#endif
}

NumaInfo NumaInfo::detect(const std::string& sysfs_root) {
  namespace fs = std::filesystem;
  NumaInfo info;
  const fs::path node_dir = fs::path(sysfs_root) / "devices/system/node";
  std::error_code ec;
  if (!fs::is_directory(node_dir, ec)) return info;
  for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    NumaNode node;
    try {
      node.id = std::stoi(name.substr(4));
    } catch (const std::exception&) {
      continue;
    }
    const auto cpulist = read_file_trimmed(entry.path() / "cpulist");
    if (!cpulist) continue;
    try {
      node.cpus = topo::Bitmap::parse_list(*cpulist);
    } catch (const std::exception&) {
      continue;  // malformed node: skip it rather than fail detection
    }
    if (const auto meminfo = read_file_trimmed(entry.path() / "meminfo"))
      node.mem_bytes = parse_meminfo_total(*meminfo);
    if (const auto distance = read_file_trimmed(entry.path() / "distance"))
      node.distances = parse_distance_row(*distance);
    info.nodes_.push_back(std::move(node));
  }
  std::sort(info.nodes_.begin(), info.nodes_.end(),
            [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
  return info;
}

const NumaInfo& NumaInfo::host() {
  static const NumaInfo info = detect("/sys");
  return info;
}

NumaInfo NumaInfo::from_node_cpus(std::vector<topo::Bitmap> node_cpus) {
  NumaInfo info;
  for (std::size_t i = 0; i < node_cpus.size(); ++i) {
    NumaNode node;
    node.id = static_cast<int>(i);
    node.cpus = std::move(node_cpus[i]);
    info.nodes_.push_back(std::move(node));
  }
  return info;
}

int NumaInfo::node_of_cpu(int os_cpu) const {
  if (os_cpu < 0) return -1;
  for (const NumaNode& node : nodes_)
    if (node.cpus.test(os_cpu)) return node.id;
  return -1;
}

std::vector<int> NumaInfo::node_ids() const {
  std::vector<int> ids;
  ids.reserve(nodes_.size());
  for (const NumaNode& node : nodes_) ids.push_back(node.id);
  return ids;
}

}  // namespace orwl::mem
