#pragma once
// MemoryPolicy: where location storage lives. The knob travels
// RuntimeOptions::memory -> Program::memory_policy() -> mem::Arena, and the
// harness / orwl_bench expose it per case (--memory-policy).

#include <string>

namespace orwl::mem {

/// Placement policy for location pages.
enum class MemoryPolicy {
  /// Process heap (aligned operator new). Pages live wherever the thread
  /// that first touched them ran — for the zero-initializing allocation
  /// that is the thread constructing the Runtime. The default.
  Heap,
  /// Anonymous mmap; pages are placed (and at epoch re-placements moved)
  /// on the NUMA node of each location's planned writer.
  NumaLocal,
  /// Anonymous mmap; pages are interleaved across all NUMA nodes, trading
  /// peak locality for an even load on the memory controllers.
  NumaInterleave,
};

const char* to_string(MemoryPolicy p);

/// Accepts "heap", "numa_local", "numa_interleave" plus the short aliases
/// "local" and "interleave" (any case). Throws ContractError on unknown
/// names.
MemoryPolicy parse_memory_policy(const std::string& name);

}  // namespace orwl::mem
