#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.h"

namespace orwl {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ORWL_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ORWL_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has "
                            << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) rule += "  ";
    rule.append(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto cell = [&](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (char ch : s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      cell(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace orwl
