#pragma once
// Checked narrowing conversions (CppCoreGuidelines ES.46).

#include <limits>
#include <type_traits>

#include "support/assert.h"

namespace orwl {

/// Convert between integer types, throwing ContractError on value change.
template <class To, class From>
constexpr To checked_cast(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  const To out = static_cast<To>(v);
  ORWL_CHECK_MSG(static_cast<From>(out) == v &&
                     ((out < To{}) == (v < From{})),
                 "narrowing changed value " << v);
  return out;
}

/// Signed size of a container (ES.107: avoid unsigned loop variables).
template <class C>
constexpr std::ptrdiff_t ssize_of(const C& c) {
  return static_cast<std::ptrdiff_t>(c.size());
}

}  // namespace orwl
