#pragma once
// Wall-clock timing helpers for benchmarks and the runtime.

#include <chrono>
#include <cstdint>
#include <string>

namespace orwl {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds.
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Format a duration in seconds as a human-readable string ("11.3 s",
/// "42.1 ms", "812 us").
std::string format_seconds(double s);

}  // namespace orwl
