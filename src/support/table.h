#pragma once
// ASCII table and CSV emission for benchmark harnesses. The figure/table
// benches print paper-style rows with this.

#include <iosfwd>
#include <string>
#include <vector>

namespace orwl {

/// Column-aligned ASCII table builder.
///
///   Table t({"cores", "OpenMP", "ORWL NoBind", "ORWL Bind"});
///   t.add_row({"192", "55.1", "30.9", "11.0"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
std::string fmt(double v, int precision = 2);

}  // namespace orwl
