#include "support/time.h"

#include <cmath>
#include <cstdio>

namespace orwl {

std::string format_seconds(double s) {
  char buf[64];
  const double a = std::fabs(s);
  if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", s * 1e9);
  }
  return buf;
}

}  // namespace orwl
