#include "support/log.h"

#include <cstdio>
#include <cstdlib>

#include "sync/mutex.h"

namespace orwl::log {

namespace {

Level initial_level() {
  if (const char* env = std::getenv("ORWL_LOG_LEVEL")) {
    return parse_level(env);
  }
  return Level::Warn;
}

std::atomic<Level>& level_store() {
  static std::atomic<Level> lvl{initial_level()};
  return lvl;
}

constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};

}  // namespace

void set_level(Level lvl) noexcept { level_store().store(lvl); }

Level level() noexcept { return level_store().load(std::memory_order_relaxed); }

Level parse_level(std::string_view name) noexcept {
  if (name == "trace") return Level::Trace;
  if (name == "debug") return Level::Debug;
  if (name == "info") return Level::Info;
  if (name == "warn") return Level::Warn;
  if (name == "error") return Level::Error;
  if (name == "off") return Level::Off;
  return Level::Info;
}

namespace detail {

void emit(Level lvl, const std::string& message) {
  // order: n/a — the annotated sync::Mutex serializes whole lines.
  static sync::Mutex mu;
  const int idx = static_cast<int>(lvl);
  if (idx < 0 || idx > 4) return;
  sync::LockGuard lock(mu);
  std::fprintf(stderr, "[orwl %s] %s\n", kNames[idx], message.c_str());
}

}  // namespace detail

}  // namespace orwl::log
