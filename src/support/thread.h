#pragma once
// Thread naming and identification helpers.

#include <string>

namespace orwl {

/// Name the calling thread (visible in debuggers / /proc). Truncated to the
/// platform limit (15 chars on Linux). Best-effort; never fails.
void set_current_thread_name(const std::string& name);

/// Small dense id for the calling thread, assigned on first call.
int current_thread_index();

}  // namespace orwl
