#pragma once
// Small file-reading helpers shared by the sysfs parsers (topo/sysfs.cpp,
// mem/numa.cpp).

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace orwl {

/// Whole file as a string, trailing newlines/spaces trimmed; nullopt when
/// the file cannot be opened.
inline std::optional<std::string> read_file_trimmed(
    const std::filesystem::path& p) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  std::string s = os.str();
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

}  // namespace orwl
