#include "support/thread.h"

#include <atomic>

#ifdef __linux__
#include <pthread.h>
#endif

namespace orwl {

void set_current_thread_name(const std::string& name) {
#ifdef __linux__
  std::string trimmed = name.substr(0, 15);
  pthread_setname_np(pthread_self(), trimmed.c_str());
#else
  (void)name;
#endif
}

int current_thread_index() {
  static std::atomic<int> counter{0};
  // lint: allow-rmw(monotonic id allocation, no ordering protocol)
  thread_local int idx = counter.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace orwl
