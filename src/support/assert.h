#pragma once
// Contract-checking macros used across the library.
//
// ORWL_CHECK       - always-on precondition check; throws orwl::ContractError.
// ORWL_CHECK_MSG   - same, with a formatted explanation.
// ORWL_ASSERT      - protocol-invariant check: stays enabled in
//                    RelWithDebInfo/Release builds (unlike assert(), which
//                    NDEBUG silences there) so ORWL protocol violations —
//                    sink re-entry, corrupted request states — surface in
//                    the builds benches and CI actually run. Compiled out
//                    only with -DORWL_DISABLE_PROTOCOL_ASSERTS
//                    (cmake -DORWL_PROTOCOL_ASSERTS=OFF).
// ORWL_ASSERT_MSG  - ORWL_ASSERT with a formatted explanation.
// ORWL_DCHECK      - debug-only check (compiled out in NDEBUG builds).
//
// Exceptions (rather than abort) are used so that tests can exercise
// failure-injection paths; see CppCoreGuidelines I.6/E.x.

#include <sstream>
#include <stdexcept>
#include <string>

namespace orwl {

/// Thrown when a library precondition or invariant is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace orwl

#define ORWL_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::orwl::detail::contract_fail(#expr, __FILE__, __LINE__, {});   \
  } while (0)

#define ORWL_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::orwl::detail::contract_fail(#expr, __FILE__, __LINE__,        \
                                    os_.str());                       \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define ORWL_DCHECK(expr) ((void)0)
#else
#define ORWL_DCHECK(expr) ORWL_CHECK(expr)
#endif

// Protocol-invariant asserts: on by default in EVERY build type, gated by
// their own flag instead of NDEBUG. ORWL_PROTOCOL_ASSERTS_ENABLED is
// usable in #if for code that exists only to feed these checks (e.g. the
// grant-sink re-entrancy marker).
#ifdef ORWL_DISABLE_PROTOCOL_ASSERTS
#define ORWL_PROTOCOL_ASSERTS_ENABLED 0
#define ORWL_ASSERT(expr) ((void)0)
#define ORWL_ASSERT_MSG(expr, msg) ((void)0)
#else
#define ORWL_PROTOCOL_ASSERTS_ENABLED 1
#define ORWL_ASSERT(expr) ORWL_CHECK(expr)
#define ORWL_ASSERT_MSG(expr, msg) ORWL_CHECK_MSG(expr, msg)
#endif
