#pragma once
// Contract-checking macros used across the library.
//
// ORWL_CHECK       - always-on invariant check; throws orwl::ContractError.
// ORWL_CHECK_MSG   - same, with a formatted explanation.
// ORWL_DCHECK      - debug-only check (compiled out in NDEBUG builds).
//
// Exceptions (rather than abort) are used so that tests can exercise
// failure-injection paths; see CppCoreGuidelines I.6/E.x.

#include <sstream>
#include <stdexcept>
#include <string>

namespace orwl {

/// Thrown when a library precondition or invariant is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace orwl

#define ORWL_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::orwl::detail::contract_fail(#expr, __FILE__, __LINE__, {});   \
  } while (0)

#define ORWL_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::orwl::detail::contract_fail(#expr, __FILE__, __LINE__,        \
                                    os_.str());                       \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define ORWL_DCHECK(expr) ((void)0)
#else
#define ORWL_DCHECK(expr) ORWL_CHECK(expr)
#endif
