#pragma once
// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage:
//   ORWL_LOG(Info) << "mapped " << n << " threads";
// Level is filtered by orwl::log::set_level() or the ORWL_LOG_LEVEL
// environment variable (trace|debug|info|warn|error|off).

#include <atomic>
#include <sstream>
#include <string_view>

namespace orwl::log {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Set the global filter level.
void set_level(Level lvl) noexcept;
/// Current filter level.
Level level() noexcept;
/// Parse a level name; returns Info on unknown names.
Level parse_level(std::string_view name) noexcept;

namespace detail {
void emit(Level lvl, const std::string& message);

class Line {
 public:
  explicit Line(Level lvl) : lvl_(lvl) {}
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  ~Line() { emit(lvl_, os_.str()); }
  template <class T>
  Line& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace orwl::log

#define ORWL_LOG(lvl)                                            \
  if (::orwl::log::Level::lvl < ::orwl::log::level()) {          \
  } else                                                         \
    ::orwl::log::detail::Line(::orwl::log::Level::lvl)
