#pragma once
// Clang Thread Safety Analysis macros (-Wthread-safety).
//
// These wrap the clang `capability` attribute family so lock-protected
// state can be annotated once and checked statically on every build with
// clang (tools/check_thread_safety.py, the gating thread-safety CI leg).
// Under gcc — which has no thread-safety analysis — every macro expands to
// nothing, so annotations are free for non-clang builds.
//
// Vocabulary (see docs/correctness.md for the full guide):
//   ORWL_CAPABILITY("mutex")  - this type is a lockable capability
//   ORWL_SCOPED_CAPABILITY    - RAII type that acquires/releases in
//                               ctor/dtor (sync::LockGuard)
//   ORWL_GUARDED_BY(mu)       - field may only be touched with mu held
//   ORWL_PT_GUARDED_BY(mu)    - pointee may only be touched with mu held
//   ORWL_REQUIRES(mu)         - caller must hold mu (the _locked helpers)
//   ORWL_ACQUIRE(mu)/ORWL_RELEASE(mu) - function takes / gives up mu
//   ORWL_TRY_ACQUIRE(ok, mu)  - conditional acquire, true result = held
//   ORWL_EXCLUDES(mu)         - caller must NOT hold mu (non-reentrant)
//   ORWL_ASSERT_CAPABILITY(mu)- runtime assertion that mu is held
//   ORWL_RETURN_CAPABILITY(mu)- function returns a reference to mu
//   ORWL_NO_THREAD_SAFETY_ANALYSIS - opt a function out (justify why!)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ORWL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ORWL_THREAD_ANNOTATION
#define ORWL_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define ORWL_CAPABILITY(x) ORWL_THREAD_ANNOTATION(capability(x))
#define ORWL_SCOPED_CAPABILITY ORWL_THREAD_ANNOTATION(scoped_lockable)
#define ORWL_GUARDED_BY(x) ORWL_THREAD_ANNOTATION(guarded_by(x))
#define ORWL_PT_GUARDED_BY(x) ORWL_THREAD_ANNOTATION(pt_guarded_by(x))
#define ORWL_REQUIRES(...) \
  ORWL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ORWL_REQUIRES_SHARED(...) \
  ORWL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ORWL_ACQUIRE(...) \
  ORWL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ORWL_ACQUIRE_SHARED(...) \
  ORWL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ORWL_RELEASE(...) \
  ORWL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ORWL_RELEASE_SHARED(...) \
  ORWL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ORWL_TRY_ACQUIRE(...) \
  ORWL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ORWL_EXCLUDES(...) ORWL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ORWL_ASSERT_CAPABILITY(x) \
  ORWL_THREAD_ANNOTATION(assert_capability(x))
#define ORWL_RETURN_CAPABILITY(x) ORWL_THREAD_ANNOTATION(lock_returned(x))
#define ORWL_NO_THREAD_SAFETY_ANALYSIS \
  ORWL_THREAD_ANNOTATION(no_thread_safety_analysis)
