#pragma once
// Deterministic, fast PRNGs for tests, property sweeps and workload
// generation. Not cryptographic. Header-only.

#include <cstdint>
#include <limits>

namespace orwl {

/// SplitMix64 — used to seed larger generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — general-purpose generator. Satisfies
/// UniformRandomBitGenerator so it works with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  constexpr std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace orwl
