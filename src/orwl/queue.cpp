#include "orwl/queue.h"

#include "support/assert.h"
#include "sync/waiter.h"
#include "topo/binding.h"

namespace orwl {

namespace {

#if ORWL_PROTOCOL_ASSERTS_ENABLED
/// Queue this thread is currently announcing grants for; the documented
/// "must not re-enter the queue" sink contract becomes a protocol assert
/// (live in RelWithDebInfo/Release builds too) instead of a silent
/// lock-free livelock.
thread_local const FifoQueue* tl_announcing = nullptr;

/// RAII marker for the announcement window (single grant or batch) so a
/// throwing sink — or the re-entrancy assert itself — cannot leave the
/// thread-local marker stale.
struct AnnounceScope {
  const FifoQueue* prev;
  explicit AnnounceScope(const FifoQueue* q) : prev(tl_announcing) {
    tl_announcing = q;
  }
  ~AnnounceScope() { tl_announcing = prev; }
};
#endif

}  // namespace

void FifoQueue::check_not_reentered() const {
#if ORWL_PROTOCOL_ASSERTS_ENABLED
  ORWL_ASSERT_MSG(tl_announcing != this,
                  "grant sink re-entered its own FifoQueue — sinks must "
                  "only announce, never call back into the queue");
#endif
}

FifoQueue::FifoQueue(GrantSink* sink) : sink_(sink) {
  ORWL_CHECK_MSG(sink_ != nullptr, "FifoQueue needs a grant sink");
  ensure_capacity(kDefaultCapacity);
}

void FifoQueue::ensure_capacity(std::size_t want) {
  std::size_t cap = slots_ ? mask_ + 1 : 0;
  if (want <= cap) return;
  std::size_t fresh_cap = cap == 0 ? 1 : cap;
  while (fresh_cap < want) fresh_cap <<= 1;
  auto fresh = std::make_unique<Slot[]>(fresh_cap);
  // Quiescent rebuild: re-seat every live ticket into the slot it maps to
  // under the new mask, and seed every free slot with the ticket of its
  // next lap (Vyukov seq init, generalized to a running ring).
  // order: relaxed — quiescence is the caller's contract (single-threaded
  // setup); later threads synchronize through thread creation / attach.
  const Ticket head = head_.load(std::memory_order_relaxed);
  const Ticket tail = tail_.load(std::memory_order_relaxed);
  for (Ticket t = head; t != head + fresh_cap; ++t) {
    Slot& d = fresh[t & (fresh_cap - 1)];
    if (t < tail) {
      const Slot& s = slots_[t & mask_];
      d.mode = s.mode;
      // order: relaxed — same quiescent-rebuild contract as above.
      d.req.store(s.req.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      // order: relaxed — quiescent rebuild (see above).
      d.released.store(s.released.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      // order: relaxed — quiescent rebuild (see above).
      d.announced.store(s.announced.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      // order: relaxed — quiescent rebuild (see above).
      d.seq.store(t + 1, std::memory_order_relaxed);
    } else {
      // order: relaxed — free slot, first used by the inserter of ticket t.
      d.seq.store(t, std::memory_order_relaxed);
    }
  }
  slots_ = std::move(fresh);
  mask_ = fresh_cap - 1;
  // Read-run scratch sized to the ring: a grant run can never exceed
  // capacity, so the combiner's collection loop never allocates.
  batch_slots_.reserve(fresh_cap);
  batch_tickets_.reserve(fresh_cap);
  batch_reqs_.reserve(fresh_cap);
  announce_slots_.reserve(fresh_cap);
}

void FifoQueue::reserve_owners(std::size_t n) {
  owners_ += n;
  // The ORWL discipline keeps at most 2 requests in flight per owner
  // (a Handle's two slots; a remote proxy mirrors one handle). +2 slack
  // covers a renewal that holds both of an owner's slots mid-swap.
  ensure_capacity(2 * owners_ + 2);
}

void FifoQueue::insert(Request& req) {
  check_not_reentered();
  enqueue(req);
  combine();
}

void FifoQueue::release(Request& req) {
  check_not_reentered();
  mark_released(req);
  combine();
}

void FifoQueue::release_and_renew(Request& current, Request& next) {
  check_not_reentered();
  ORWL_CHECK_MSG(&current != &next,
                 "release_and_renew needs two distinct requests");
  // Validated BEFORE the renewal takes a ticket, so a contract violation
  // leaves `next` untouched.
  // order: acquire — same contract as the check in mark_released.
  const RequestState cur =
      current.state.load(std::memory_order_acquire);
  ORWL_CHECK_MSG(cur == RequestState::Granted,
                 "cannot renew a request that is not granted");
  // Order matters: the renewal must take its ticket before the release
  // lets any later request advance past it — the iterative ORWL step.
  enqueue(next);
  mark_released(current);
  combine();
}

void FifoQueue::enqueue(Request& req) {
  // order: relaxed — an Inactive request has no concurrent writer (it is
  // in no queue); the owner issuing this call is the only toucher.
  const RequestState st = req.state.load(std::memory_order_relaxed);
  ORWL_CHECK_MSG(st == RequestState::Inactive,
                 "request already queued (state " << static_cast<int>(st)
                                                  << ")");
  // order: relaxed — the ticket needs only uniqueness + monotonicity; all
  // publication rides the slot's seq protocol below.
  const Ticket t = tail_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[t & mask_];
  // Ring backpressure: wait for the slot's previous lap to be reclaimed.
  // reserve_owners sizing makes this spin unreachable in runtime use (the
  // ORWL in-flight bound is 2 per owner, and the ring always exceeds
  // 2*owners); it only throttles raw-queue stress that overcommits.
  // order: acquire — pairs with the combiner's reclaiming release store,
  // so the slot's previous-lap fields are fully dead before we write.
  sync::spin_until(
      [&] { return s.seq.load(std::memory_order_acquire) == t; });
  req.ticket = t;
  // order: relaxed — only the owning thread consumes Requested, and it is
  // the thread issuing this call.
  req.state.store(RequestState::Requested, std::memory_order_relaxed);
  s.mode = req.mode;
  // order: relaxed — slot fields are republished as a unit by the seq
  // release store below; nobody reads them before its acquire pairing.
  s.released.store(false, std::memory_order_relaxed);
  s.announced.store(false, std::memory_order_relaxed);
  // order: relaxed — republished by the seq release store (see above).
  s.req.store(&req, std::memory_order_relaxed);
  // order: release — publishes the slot (req/mode/flags) for round t;
  // pairs with the seq acquire loads in advance()/size()/snapshot().
  s.seq.store(t + 1, std::memory_order_release);
}

void FifoQueue::mark_released(Request& req) {
  // order: acquire — pairs with the combiner's Granted release store for
  // direct queue users; Handle owners already synchronized in acquire().
  const RequestState st = req.state.load(std::memory_order_acquire);
  ORWL_CHECK_MSG(st == RequestState::Granted,
                 "releasing a request that is not granted (state "
                     << static_cast<int>(st) << ")");
  Slot& s = slots_[req.ticket & mask_];
  // order: relaxed — diagnostic identity check only; a Granted request
  // cannot have had its slot reclaimed (reclaim requires released).
  ORWL_ASSERT_MSG(s.req.load(std::memory_order_relaxed) == &req,
                  "released request not in queue — protocol state corrupt");
  // The combiner may still be inside the sink call announcing this very
  // grant (a spinning owner can observe Granted before the sink returns).
  // Wait it out so no queue-side reference to `req` survives this call.
  // Bounded: sinks are non-blocking by contract; in the delivery path the
  // wake itself came through the sink, so announced is already set.
  // order: acquire — pairs with the combiner's announced release store,
  // ordering the combiner's last use of `req` before the owner reuses it.
  sync::spin_until(
      [&] { return s.announced.load(std::memory_order_acquire); });
  // order: relaxed — only the owner (this thread) reuses the request.
  req.state.store(RequestState::Inactive, std::memory_order_relaxed);
  // order: release — hands the slot back to the combiner's reclaim
  // acquire load; also the edge that publishes this owner's location
  // buffer writes into the release→reclaim→grant happens-before chain.
  s.released.store(true, std::memory_order_release);
}

void FifoQueue::combine() {
  // The caller's cached NUMA node feeds the combiner's preferred-owner
  // handoff (sync/combiner.h): sync:: sits below topo::, so the node id is
  // plumbed in here, at the first layer that may know the topology.
  combiner_.run([this] { advance(); }, topo::current_node_id());
}

void FifoQueue::advance() {
  const std::size_t cap = mask_ + 1;
  // order: relaxed — head_/granted_ are combiner-private: only mutated
  // while holding the Combiner role, whose seq_cst handoff orders them
  // across combiner threads. Atomic only for quiescent observers.
  Ticket head = head_.load(std::memory_order_relaxed);

  // Phase 1 — reclaim: pop released slots off the head, freeing each for
  // the ring's next lap.
  for (;; ++head) {
    Slot& s = slots_[head & mask_];
    // order: acquire — pairs with the inserter's publishing release store;
    // guards every read of the slot's fields below.
    if (s.seq.load(std::memory_order_acquire) != head + 1) break;
    // order: acquire — pairs with the releaser's release store; the
    // owner's buffer writes become visible to the combiner here, which
    // extends the happens-before chain to the next grantee.
    if (!s.released.load(std::memory_order_acquire)) break;
    // order: relaxed — republished by the seq release store below.
    s.req.store(nullptr, std::memory_order_relaxed);
    // order: release — frees the slot for ticket head+cap; pairs with
    // that future inserter's seq acquire spin.
    s.seq.store(head + cap, std::memory_order_release);
  }
  // order: relaxed — combiner-private (see above).
  head_.store(head, std::memory_order_relaxed);

  // Phase 2 — grant frontier: head Write alone, or the maximal head run
  // of Reads (skipping already-released ones — an out-of-order reader
  // release must not shrink the run). Announcements happen inside the
  // combiner, so they are globally serialized and strictly
  // ticket-monotone: identical to a single-threaded replay.
  // order: relaxed — combiner-private (see above).
  Ticket granted = granted_.load(std::memory_order_relaxed);
  for (Ticket i = head;; ++i) {
    Slot& s = slots_[i & mask_];
    // order: acquire — publication guard, as in phase 1. A not-yet-
    // published slot ends the frontier (the inserter will re-announce).
    if (s.seq.load(std::memory_order_acquire) != i + 1) break;
    // order: acquire — a concurrent release may land mid-scan; skip the
    // slot (it was a granted read) and keep extending the run.
    if (s.released.load(std::memory_order_acquire)) continue;
    if (s.mode == AccessMode::Write) {
      // A write is granted only alone at the head; if it is not at the
      // head yet, the pending release in front will re-trigger us. A write
      // can only sit at the head, so no collected reads precede it here.
      if (i != head) break;
      if (i >= granted) {
        grant_one(s, i);
        granted = i + 1;
      }
      break;  // exclusive: nothing behind a write can be granted
    }
    if (i >= granted) {
      if (batch_grants_) {
        // Collect the read run; announced as ONE batch after the scan.
        batch_slots_.push_back(&s);
        batch_tickets_.push_back(i);
      } else {
        grant_one(s, i);
      }
      granted = i + 1;
    }
  }
  if (!batch_slots_.empty()) {
    if (batch_slots_.size() == 1) {
      // Run of one: announced per-grant. The collection scratch is
      // emptied BEFORE the sink call (grant_run does the same) so a
      // throwing sink cannot leave a stale run for the next advance() —
      // which would re-announce tickets whose slots phase-1 reclaim may
      // already have recycled.
      Slot& s = *batch_slots_.front();
      const Ticket t = batch_tickets_.front();
      batch_slots_.clear();
      batch_tickets_.clear();
      grant_one(s, t);
    } else {
      grant_run(batch_tickets_.back());
    }
  }
}

void FifoQueue::grant_run(Ticket t_last) {
  // order: relaxed — combiner-private frontier; the WHOLE run is persisted
  // BEFORE the sink call so a throwing sink cannot cause a second
  // announcement of any of its tickets (at-most-once contract).
  granted_.store(t_last + 1, std::memory_order_relaxed);
  batch_reqs_.clear();
  announce_slots_.clear();
  for (Slot* s : batch_slots_) {
    announce_slots_.push_back(s);
    // order: relaxed — the slot's seq acquire load (advance) already
    // guards this field.
    Request& r = *s->req.load(std::memory_order_relaxed);
    batch_reqs_.push_back(&r);
    // order: release — publishes the previous holder's buffer writes to
    // the grantee, exactly as in grant_one.
    r.state.store(RequestState::Granted, std::memory_order_release);
  }
  // The collection scratch is emptied BEFORE the sink call: a throwing
  // sink unwinds into the combiner's exception recovery, and the next
  // advance() must not find (and re-announce) a stale run — its slots may
  // since have been reclaimed, or reused by a later lap's requests. The
  // in-flight run lives on in announce_slots_/batch_reqs_, read only by
  // this announcement and its guard.
  batch_slots_.clear();
  batch_tickets_.clear();

#if ORWL_PROTOCOL_ASSERTS_ENABLED
  AnnounceScope announce_scope(this);
#endif
  // RAII: every slot's announced flag must be set even when the sink
  // throws, or the owners' releases would spin forever. Owners of EARLY
  // requests in the run may observe Granted (spinning waiters) and
  // release while the batch announcement is still in flight; their
  // mark_released spins on this flag, so the queue-side Request
  // references stay valid for the whole sink call — the same protocol as
  // a single grant, with a longer window.
  struct BatchAnnouncedGuard {
    std::vector<Slot*>& slots;
    ~BatchAnnouncedGuard() {
      for (Slot* s : slots)
        // order: release — pairs with the releaser's announced acquire
        // spin; orders the sink's last use of the Request before reuse.
        s->announced.store(true, std::memory_order_release);
    }
  } announced_guard{announce_slots_};
  sink_->on_grant_batch({batch_reqs_.data(), batch_reqs_.size()});
}

void FifoQueue::grant_one(Slot& s, Ticket t) {
  // order: relaxed — combiner-private frontier; persisted BEFORE the sink
  // call so a throwing sink cannot cause a second announcement of this
  // ticket (at-most-once announcement contract).
  granted_.store(t + 1, std::memory_order_relaxed);
  // order: relaxed — the slot's seq acquire load (advance) already
  // guards this field.
  Request& r = *s.req.load(std::memory_order_relaxed);
  // order: release — publishes the previous holder's buffer writes to the
  // grantee: releaser's released store (release) → combiner's acquire →
  // this store → grantee's acquire load in Handle::acquire.
  r.state.store(RequestState::Granted, std::memory_order_release);

#if ORWL_PROTOCOL_ASSERTS_ENABLED
  AnnounceScope announce_scope(this);
#endif
  // RAII: the announced flag must be set even when the sink throws, or
  // the owner's release would spin forever on a wedged announcement.
  struct AnnouncedGuard {
    Slot& slot;
    ~AnnouncedGuard() {
      // order: release — pairs with the releaser's announced acquire
      // spin; orders the sink's (and our) last use of the Request before
      // the owner reuses it.
      slot.announced.store(true, std::memory_order_release);
    }
  } announced_guard{s};
  sink_->on_grant(r);
}

std::size_t FifoQueue::size() const {
  std::size_t n = 0;
  // order: acquire — quiescent observer (header contract); acquire keeps
  // the scan race-free if callers are merely *nearly* quiescent.
  for (Ticket i = head_.load(std::memory_order_acquire);; ++i) {
    const Slot& s = slots_[i & mask_];
    // order: acquire — publication guard, as in advance().
    if (s.seq.load(std::memory_order_acquire) != i + 1) break;
    // order: acquire — released entries are no longer queued.
    if (!s.released.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<FifoQueue::Entry> FifoQueue::snapshot() const {
  std::vector<Entry> out;
  // order: acquire — same quiescent-observer contract as size().
  for (Ticket i = head_.load(std::memory_order_acquire);; ++i) {
    const Slot& s = slots_[i & mask_];
    // order: acquire — publication guard, as in advance().
    if (s.seq.load(std::memory_order_acquire) != i + 1) break;
    // order: acquire — skip released entries; their Request may already
    // be reused by its owner.
    if (s.released.load(std::memory_order_acquire)) continue;
    // order: relaxed — guarded by the seq acquire above.
    const Request* req = s.req.load(std::memory_order_relaxed);
    // order: acquire — pairs with the combiner's Granted release store.
    out.push_back({i, s.mode, req->state.load(std::memory_order_acquire)});
  }
  return out;
}

}  // namespace orwl
