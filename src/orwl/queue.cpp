#include "orwl/queue.h"

#include <algorithm>

#include "support/assert.h"

namespace orwl {

FifoQueue::FifoQueue(GrantSink on_grant) : on_grant_(std::move(on_grant)) {
  ORWL_CHECK_MSG(on_grant_ != nullptr, "FifoQueue needs a grant sink");
}

void FifoQueue::insert(Request& req) {
  std::lock_guard lock(mu_);
  insert_locked(req);
}

void FifoQueue::insert_locked(Request& req) {
  ORWL_CHECK_MSG(req.state == RequestState::Inactive,
                 "request already queued (state "
                     << static_cast<int>(req.state) << ")");
  req.ticket = next_ticket_++;
  req.state = RequestState::Requested;
  queue_.push_back(&req);
  advance_locked();
}

void FifoQueue::release(Request& req) {
  std::lock_guard lock(mu_);
  release_locked(req);
  advance_locked();
}

void FifoQueue::release_and_renew(Request& current, Request& next) {
  std::lock_guard lock(mu_);
  ORWL_CHECK_MSG(&current != &next,
                 "release_and_renew needs two distinct requests");
  ORWL_CHECK_MSG(current.state == RequestState::Granted,
                 "cannot renew a request that is not granted");
  // Order matters: the renewal must take its FIFO position before the
  // release lets any later request advance past it.
  ORWL_CHECK_MSG(next.state == RequestState::Inactive,
                 "renewal request already queued");
  next.ticket = next_ticket_++;
  next.state = RequestState::Requested;
  queue_.push_back(&next);
  release_locked(current);
  advance_locked();
}

void FifoQueue::release_locked(Request& req) {
  ORWL_CHECK_MSG(req.state == RequestState::Granted,
                 "releasing a request that is not granted (state "
                     << static_cast<int>(req.state) << ")");
  const auto it = std::find(queue_.begin(), queue_.end(), &req);
  ORWL_CHECK_MSG(it != queue_.end(), "released request not in queue");
  queue_.erase(it);
  req.state = RequestState::Inactive;
}

void FifoQueue::advance_locked() {
  if (queue_.empty()) return;
  // Grant frontier: head Write alone, or the maximal head run of Reads.
  if (queue_.front()->mode == AccessMode::Write) {
    Request& head = *queue_.front();
    if (head.state == RequestState::Requested) {
      head.state = RequestState::Granted;
      on_grant_(head);
    }
    return;
  }
  for (Request* req : queue_) {
    if (req->mode != AccessMode::Read) break;
    if (req->state == RequestState::Requested) {
      req->state = RequestState::Granted;
      on_grant_(*req);
    }
  }
}

std::size_t FifoQueue::size() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::vector<FifoQueue::Entry> FifoQueue::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<Entry> out;
  out.reserve(queue_.size());
  for (const Request* req : queue_)
    out.push_back({req->ticket, req->mode, req->state});
  return out;
}

}  // namespace orwl
