#include "orwl/queue.h"

#include <algorithm>

#include "support/assert.h"

namespace orwl {

namespace {

#if ORWL_PROTOCOL_ASSERTS_ENABLED
/// Queue this thread is currently announcing grants for; the documented
/// "must not re-enter the queue" sink contract becomes a protocol assert
/// (live in RelWithDebInfo/Release builds too) instead of a silent
/// recursive-mutex deadlock.
thread_local const FifoQueue* tl_announcing = nullptr;
#endif

RequestState state_of(const Request& req) {
  // order: relaxed — every call site holds the queue lock, which already
  // orders these loads against the queue's own stores.
  return req.state.load(std::memory_order_relaxed);
}

}  // namespace

void FifoQueue::check_not_reentered() const {
#if ORWL_PROTOCOL_ASSERTS_ENABLED
  ORWL_ASSERT_MSG(tl_announcing != this,
                  "grant sink re-entered its own FifoQueue — sinks must "
                  "only announce, never call back into the queue");
#endif
}

FifoQueue::FifoQueue(GrantSink* sink) : sink_(sink) {
  ORWL_CHECK_MSG(sink_ != nullptr, "FifoQueue needs a grant sink");
}

void FifoQueue::insert(Request& req) {
  check_not_reentered();
  sync::LockGuard lock(mu_);
  insert_locked(req);
}

void FifoQueue::insert_locked(Request& req) {
  ORWL_CHECK_MSG(state_of(req) == RequestState::Inactive,
                 "request already queued (state "
                     << static_cast<int>(state_of(req)) << ")");
  req.ticket = next_ticket_++;
  // order: relaxed — only the owning thread consumes Requested, and it
  // issued (or is issuing) this very call.
  req.state.store(RequestState::Requested, std::memory_order_relaxed);
  queue_.push_back(&req);
  advance_locked();
}

void FifoQueue::release(Request& req) {
  check_not_reentered();
  sync::LockGuard lock(mu_);
  release_locked(req);
  advance_locked();
}

void FifoQueue::release_and_renew(Request& current, Request& next) {
  check_not_reentered();
  sync::LockGuard lock(mu_);
  ORWL_CHECK_MSG(&current != &next,
                 "release_and_renew needs two distinct requests");
  ORWL_CHECK_MSG(state_of(current) == RequestState::Granted,
                 "cannot renew a request that is not granted");
  // Order matters: the renewal must take its FIFO position before the
  // release lets any later request advance past it.
  ORWL_CHECK_MSG(state_of(next) == RequestState::Inactive,
                 "renewal request already queued");
  next.ticket = next_ticket_++;
  // order: relaxed — same as insert_locked: the owner itself is issuing
  // this renewal; nobody else consumes Requested.
  next.state.store(RequestState::Requested, std::memory_order_relaxed);
  queue_.push_back(&next);
  release_locked(current);
  advance_locked();
}

void FifoQueue::release_locked(Request& req) {
  ORWL_CHECK_MSG(state_of(req) == RequestState::Granted,
                 "releasing a request that is not granted (state "
                     << static_cast<int>(state_of(req)) << ")");
  const auto it = std::find(queue_.begin(), queue_.end(), &req);
  ORWL_ASSERT_MSG(it != queue_.end(),
                  "released request not in queue — protocol state corrupt");
  queue_.erase(it);
  // order: relaxed — the owner that released is the only thread that will
  // reuse this slot, and it is the thread executing this store.
  req.state.store(RequestState::Inactive, std::memory_order_relaxed);
}

void FifoQueue::advance_locked() {
  if (queue_.empty()) return;
#if ORWL_PROTOCOL_ASSERTS_ENABLED
  // RAII so a throwing sink (or the re-entrancy assert itself) cannot
  // leave the thread-local marker stale.
  struct AnnounceScope {
    const FifoQueue* prev;
    explicit AnnounceScope(const FifoQueue* q) : prev(tl_announcing) {
      tl_announcing = q;
    }
    ~AnnounceScope() { tl_announcing = prev; }
  } announce_scope(this);
#endif
  // Grant frontier: head Write alone, or the maximal head run of Reads.
  // order: release on the Granted stores — the next holder's acquire load
  // of the state is what publishes the previous holder's writes to the
  // location buffer.
  if (queue_.front()->mode == AccessMode::Write) {
    Request& head = *queue_.front();
    if (state_of(head) == RequestState::Requested) {
      // order: release — publishes the previous holder's writes to the
      // grantee (pairs with Handle::acquire's acquire load).
      head.state.store(RequestState::Granted, std::memory_order_release);
      sink_->on_grant(head);
    }
  } else {
    for (Request* req : queue_) {
      if (req->mode != AccessMode::Read) break;
      if (state_of(*req) == RequestState::Requested) {
        // order: release — same publication contract as the Write branch.
        req->state.store(RequestState::Granted, std::memory_order_release);
        sink_->on_grant(*req);
      }
    }
  }
}

std::size_t FifoQueue::size() const {
  sync::LockGuard lock(mu_);
  return queue_.size();
}

std::vector<FifoQueue::Entry> FifoQueue::snapshot() const {
  sync::LockGuard lock(mu_);
  std::vector<Entry> out;
  out.reserve(queue_.size());
  for (const Request* req : queue_)
    out.push_back({req->ticket, req->mode, state_of(*req)});
  return out;
}

}  // namespace orwl
