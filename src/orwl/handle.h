#pragma once
// Handle: a task's capability on a location (the orwl_handle primitive).
//
// Life cycle per iteration:
//   request()            — enqueue into the location FIFO (done once by the
//                          runtime in canonical order when auto-primed)
//   acquire()            — block until the grant is delivered; returns the
//                          guarded buffer
//   release()            — give the lock up, or
//   release_and_renew()  — give it up AND re-enqueue in the same FIFO
//                          position relative to the other iterative handles
//                          (the ORWL iterative discipline).
//
// A handle keeps two Request slots and alternates between them so a renewal
// can be in flight while the current grant is still held.
//
// There is no per-handle mutex: acquire() parks directly on the active
// Request's atomic state through the sync:: waiter, and grant delivery is
// a notify on that atomic. An uncontended acquire (grant already made) is
// one acquire load.

#include <span>

#include "obs/metrics.h"
#include "orwl/location.h"
#include "orwl/queue.h"
#include "sync/adaptive_wait.h"
#include "sync/wait_strategy.h"
#include "sync/waiter.h"

namespace orwl {

class Handle {
 public:
  Handle(HandleId id, TaskId task, LocationBuffer& location, AccessMode mode,
         sync::WaitStrategy wait = {});

  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  [[nodiscard]] HandleId id() const { return id_; }
  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] LocationId location() const { return location_.id(); }
  [[nodiscard]] AccessMode mode() const { return mode_; }

  /// Enqueue the next request. Called by the runtime for priming; user code
  /// calls it only for non-iterative (manual) protocols.
  void request();

  /// Block until granted. Returns the location buffer (read-only views are
  /// fine for Write handles; Read handles must not write — enforced in
  /// debug builds by checksumming in tests, not at runtime).
  std::span<std::byte> acquire();

  /// Const acquire path: same blocking semantics as acquire(), but hands
  /// back a read-only view so Read handles can go straight to
  /// as_span<const T> without a manual std::span<const std::byte>
  /// conversion.
  std::span<const std::byte> acquire_const();

  /// Non-blocking poll: true when the grant has been made (it may still be
  /// in flight through a control thread's event queue — the waiter does
  /// not need the notify once the state reads Granted).
  [[nodiscard]] bool test() const;

  /// Release without renewing (last iteration / manual protocols).
  void release();

  /// Release and atomically re-enqueue for the next iteration.
  void release_and_renew();

  /// True while the task holds the lock (between acquire and release).
  [[nodiscard]] bool acquired() const { return acquired_; }

  /// Grant delivery — called by the runtime (directly or from a control
  /// thread): wakes the waiter parked on the request's state. The Granted
  /// store has already been published by the queue; delivery only
  /// notifies. Not for user code.
  static void deliver_grant(Request& req) { sync::notify_all(req.state); }

  /// Wire the per-handle observability sinks (done by Runtime::add_handle;
  /// either may be null). `wait_rounds` gets every acquire's spin-round
  /// count (one relaxed fetch_add — always on); `acquire_ns` gets
  /// wall-clock acquire latency, recorded only while
  /// obs::detailed_metrics_enabled() since it costs two clock reads.
  void set_metrics(obs::Histogram* wait_rounds, obs::Histogram* acquire_ns) {
    wait_rounds_ = wait_rounds;
    acquire_ns_ = acquire_ns;
  }

  /// Wire the self-tuned spin budget (WaitMode::Auto only; done by
  /// Runtime::add_handle, may be null). acquire() re-reads it every wait,
  /// so epoch-boundary retunes apply immediately.
  void set_spin_budget(const sync::AdaptiveWaitBudget* budget) {
    spin_budget_ = budget;
  }

 private:
  Request& current() { return slots_[active_]; }
  [[nodiscard]] const Request& current() const { return slots_[active_]; }
  Request& spare() { return slots_[active_ ^ 1]; }

  HandleId id_;
  TaskId task_;
  LocationBuffer& location_;
  AccessMode mode_;
  sync::WaitStrategy wait_;

  Request slots_[2];
  int active_ = 0;
  bool acquired_ = false;  // owner-thread view; no lock needed

  obs::Histogram* wait_rounds_ = nullptr;  // observability sinks, optional
  obs::Histogram* acquire_ns_ = nullptr;
  const sync::AdaptiveWaitBudget* spin_budget_ = nullptr;  // Auto mode
};

/// Typed view helper: reinterpret a byte span as a span of T.
template <class T>
std::span<T> as_span(std::span<std::byte> bytes) {
  return {reinterpret_cast<T*>(bytes.data()), bytes.size() / sizeof(T)};
}
template <class T>
std::span<const T> as_span(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const T*>(bytes.data()),
          bytes.size() / sizeof(T)};
}

}  // namespace orwl
