#pragma once
// FifoQueue: the per-location request FIFO at the heart of the ORWL model.
//
// Requests are served in strict insertion order: the head of the queue is
// granted; when the head is a Read, the maximal run of consecutive Reads
// behind it is granted with it (shared read access); a Write is granted
// alone (exclusive). Releasing a granted request removes it and advances
// the grant frontier.
//
// Grants are *announced* through a callback so the runtime can route them
// through control threads (the decentralized event-based design the paper
// describes) or deliver them directly.

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "orwl/fwd.h"

namespace orwl {

/// State of a request in its location FIFO.
enum class RequestState : std::uint8_t {
  Inactive,   ///< not in any queue
  Requested,  ///< queued, not yet at the grant frontier
  Granted,    ///< lock held; data may be accessed
};

/// One entry of a location FIFO. Owned by the issuing Handle; the queue
/// stores non-owning pointers. Lifetime: must outlive its queue membership.
struct Request {
  AccessMode mode = AccessMode::Read;
  RequestState state = RequestState::Inactive;
  Ticket ticket = 0;       ///< insertion order stamp (per location)
  TaskId owner = -1;       ///< task that issued the request
  HandleId handle = -1;    ///< handle the request belongs to
  LocationId location = -1;  ///< location whose FIFO the request is in
  void* user = nullptr;    ///< delivery cookie (the owning Handle)
};

/// Callback invoked (with the queue lock held) for every newly granted
/// request. Implementations must not re-enter the queue.
using GrantSink = std::function<void(Request&)>;

class FifoQueue {
 public:
  explicit FifoQueue(GrantSink on_grant);

  FifoQueue(const FifoQueue&) = delete;
  FifoQueue& operator=(const FifoQueue&) = delete;

  /// Append a request. The request must be Inactive. May grant it (and
  /// announce the grant) immediately when it lands in the head run.
  void insert(Request& req);

  /// Release a Granted request: remove it and advance the grant frontier,
  /// announcing any newly granted requests. Throws ContractError if the
  /// request is not currently granted.
  void release(Request& req);

  /// Atomically insert `next` and release `current` — the iterative ORWL
  /// step: the renewal lands in the FIFO *before* the lock is given up, so
  /// the cyclic per-iteration order is preserved forever.
  void release_and_renew(Request& current, Request& next);

  /// Number of queued (Requested + Granted) requests.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of (ticket, mode, state) for tests/diagnostics.
  struct Entry {
    Ticket ticket;
    AccessMode mode;
    RequestState state;
  };
  [[nodiscard]] std::vector<Entry> snapshot() const;

 private:
  void insert_locked(Request& req);
  void release_locked(Request& req);
  void advance_locked();  // grant the head run, announce new grants

  mutable std::mutex mu_;
  std::deque<Request*> queue_;
  Ticket next_ticket_ = 0;
  GrantSink on_grant_;
};

}  // namespace orwl
