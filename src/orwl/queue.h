#pragma once
// FifoQueue: the per-location request FIFO at the heart of the ORWL model.
//
// Requests are served in strict insertion order: the head of the queue is
// granted; when the head is a Read, the maximal run of consecutive Reads
// behind it is granted with it (shared read access); a Write is granted
// alone (exclusive). Releasing a granted request removes it and advances
// the grant frontier.
//
// Grants are *announced* through the non-allocating GrantSink interface so
// the runtime can route them through control threads (the decentralized
// event-based design the paper describes) or deliver them directly.
//
// Request.state is an atomic the waiting compute thread parks on directly
// (sync/waiter.h): the queue stores Granted (release) under its lock, the
// delivery path notifies, and an uncontended grant is consumed with a
// single acquire load — no per-handle mutex anywhere on the grant path.

#include <atomic>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "orwl/fwd.h"
#include "support/thread_annotations.h"
#include "sync/mutex.h"

namespace orwl {

/// State of a request in its location FIFO. 32-bit so the waiter's park
/// maps onto a futex (see sync/waiter.h).
enum class RequestState : std::uint32_t {
  Inactive,   ///< not in any queue
  Requested,  ///< queued, not yet at the grant frontier
  Granted,    ///< lock held; data may be accessed
};

/// One entry of a location FIFO. Owned by the issuing Handle; the queue
/// stores non-owning pointers. Lifetime: must outlive its queue membership.
///
/// `state` is written by the queue (under its lock, Granted with release
/// ordering) and read by the owning thread's waiter (acquire), which may
/// park on it directly. Copying is provided for single-threaded setup and
/// test convenience only — it snapshots the atomic non-atomically.
struct Request {
  AccessMode mode = AccessMode::Read;
  std::atomic<RequestState> state{RequestState::Inactive};
  Ticket ticket = 0;       ///< insertion order stamp (per location)
  TaskId owner = -1;       ///< task that issued the request
  HandleId handle = -1;    ///< handle the request belongs to
  LocationId location = -1;  ///< location whose FIFO the request is in

  Request() = default;
  Request(const Request& o)
      : mode(o.mode),
        // order: relaxed — copying is documented single-threaded setup
        // only; there is no concurrent writer to synchronize with.
        state(o.state.load(std::memory_order_relaxed)),
        ticket(o.ticket),
        owner(o.owner),
        handle(o.handle),
        location(o.location) {}
  Request& operator=(const Request& o) {
    mode = o.mode;
    // order: relaxed — single-threaded setup/test copies only (see above).
    state.store(o.state.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    ticket = o.ticket;
    owner = o.owner;
    handle = o.handle;
    location = o.location;
    return *this;
  }
};

/// Grant announcement target, invoked (with the queue lock held) for every
/// newly granted request. Implementations must be non-blocking and must
/// not re-enter the announcing queue — ORWL_ASSERT fires on re-entry, in
/// release builds too. Every on_grant override must carry the
/// `sink-contract: no-queue-reentry` comment (enforced by
/// tools/orwl_lint.py) as an explicit acknowledgement of that contract.
/// An intrusive interface (the Runtime *is* the sink) instead of a
/// std::function, so announcing a grant allocates nothing.
class GrantSink {
 public:
  virtual void on_grant(Request& req) = 0;

 protected:
  ~GrantSink() = default;
};

/// Adapter wrapping a callable as a GrantSink (tests and benches; the
/// callable is stored inline, so announcement stays allocation-free).
template <class F>
class GrantFn final : public GrantSink {
 public:
  explicit GrantFn(F fn) : fn_(std::move(fn)) {}
  // sink-contract: no-queue-reentry — forwards to the wrapped callable,
  // which inherits the obligation not to call back into the queue.
  void on_grant(Request& req) override { fn_(req); }

 private:
  F fn_;
};

/// Where a Handle sends its lock operations. The in-process case is the
/// location's own FifoQueue; a cross-address-space location substitutes a
/// port that forwards the operations to the process hosting the queue
/// (ipc::RemotePort) — the GrantSink split covers the grant direction,
/// this interface covers the request direction. Implementations must keep
/// the FifoQueue semantics: release_and_renew inserts `next` before
/// `current`'s slot is given up.
class RequestPort {
 public:
  virtual void insert(Request& req) = 0;
  virtual void release(Request& req) = 0;
  virtual void release_and_renew(Request& current, Request& next) = 0;

 protected:
  ~RequestPort() = default;
};

class FifoQueue : public RequestPort {
 public:
  /// `sink` is non-owning and must outlive the queue.
  explicit FifoQueue(GrantSink* sink);

  FifoQueue(const FifoQueue&) = delete;
  FifoQueue& operator=(const FifoQueue&) = delete;

  /// Append a request. The request must be Inactive. May grant it (and
  /// announce the grant) immediately when it lands in the head run.
  void insert(Request& req) override ORWL_EXCLUDES(mu_);

  /// Release a Granted request: remove it and advance the grant frontier,
  /// announcing any newly granted requests. Throws ContractError if the
  /// request is not currently granted.
  void release(Request& req) override ORWL_EXCLUDES(mu_);

  /// Atomically insert `next` and release `current` — the iterative ORWL
  /// step: the renewal lands in the FIFO *before* the lock is given up, so
  /// the cyclic per-iteration order is preserved forever.
  void release_and_renew(Request& current, Request& next) override
      ORWL_EXCLUDES(mu_);

  /// Number of queued (Requested + Granted) requests.
  [[nodiscard]] std::size_t size() const ORWL_EXCLUDES(mu_);

  /// Snapshot of (ticket, mode, state) for tests/diagnostics.
  struct Entry {
    Ticket ticket;
    AccessMode mode;
    RequestState state;
  };
  [[nodiscard]] std::vector<Entry> snapshot() const ORWL_EXCLUDES(mu_);

 private:
  void insert_locked(Request& req) ORWL_REQUIRES(mu_);
  void release_locked(Request& req) ORWL_REQUIRES(mu_);
  /// Grant the head run, announce new grants.
  void advance_locked() ORWL_REQUIRES(mu_);
  /// Protocol assert: the grant sink must not call back in.
  void check_not_reentered() const;

  mutable sync::Mutex mu_;
  std::deque<Request*> queue_ ORWL_GUARDED_BY(mu_);
  Ticket next_ticket_ ORWL_GUARDED_BY(mu_) = 0;
  GrantSink* sink_;
};

}  // namespace orwl
