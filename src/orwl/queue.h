#pragma once
// FifoQueue: the per-location request FIFO at the heart of the ORWL model.
//
// Requests are served in strict insertion order: the head of the queue is
// granted; when the head is a Read, the maximal run of consecutive Reads
// behind it is granted with it (shared read access); a Write is granted
// alone (exclusive). Releasing a granted request removes it and advances
// the grant frontier.
//
// Grants are *announced* through the non-allocating GrantSink interface so
// the runtime can route them through control threads (the decentralized
// event-based design the paper describes) or deliver them directly.
//
// LOCK-FREE DESIGN (docs/correctness.md "The lock-free grant path" has the
// full ordering contract). The queue is a ticket ring, not a mutex-guarded
// deque:
//
//   * insert       = one atomic fetch_add on the ticket counter + a
//                    publish of the request into the ring slot the ticket
//                    maps to (Vyukov-style per-slot sequence numbers).
//   * release      = one release-store on the slot's `released` flag —
//                    the owner never touches other requests.
//   * advancement  = a flat-combining step (sync::Combiner): whichever
//                    thread announced work last reclaims released head
//                    slots and grants the new head run. Announcements are
//                    globally serialized and strictly ticket-monotone, so
//                    grant sequences are identical to a single-threaded
//                    replay in ticket order.
//
// Request.state is an atomic the waiting compute thread parks on directly
// (sync/waiter.h): the combiner stores Granted (release), the delivery
// path notifies, and an uncontended grant is consumed with a single
// acquire load — no lock anywhere on the grant path.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "orwl/fwd.h"
#include "sync/combiner.h"

namespace orwl {

/// State of a request in its location FIFO. 32-bit so the waiter's park
/// maps onto a futex (see sync/waiter.h).
enum class RequestState : std::uint32_t {
  Inactive,   ///< not in any queue
  Requested,  ///< queued, not yet at the grant frontier
  Granted,    ///< lock held; data may be accessed
};

/// One entry of a location FIFO. Owned by the issuing Handle; the queue
/// stores non-owning pointers. Lifetime: must outlive its queue membership
/// (the queue guarantees it never touches the request after the owner's
/// release() returns — see FifoQueue).
///
/// `state` is written by the queue's combiner (Granted, release ordering)
/// and read by the owning thread's waiter (acquire), which may park on it
/// directly. Copying is provided for single-threaded setup and test
/// convenience only — it snapshots the atomic non-atomically.
struct Request {
  AccessMode mode = AccessMode::Read;
  std::atomic<RequestState> state{RequestState::Inactive};
  Ticket ticket = 0;       ///< insertion order stamp (per location)
  TaskId owner = -1;       ///< task that issued the request
  HandleId handle = -1;    ///< handle the request belongs to
  LocationId location = -1;  ///< location whose FIFO the request is in

  Request() = default;
  Request(const Request& o)
      : mode(o.mode),
        // order: relaxed — copying is documented single-threaded setup
        // only; there is no concurrent writer to synchronize with.
        state(o.state.load(std::memory_order_relaxed)),
        ticket(o.ticket),
        owner(o.owner),
        handle(o.handle),
        location(o.location) {}
  Request& operator=(const Request& o) {
    mode = o.mode;
    // order: relaxed — single-threaded setup/test copies only (see above).
    state.store(o.state.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    ticket = o.ticket;
    owner = o.owner;
    handle = o.handle;
    location = o.location;
    return *this;
  }
};

/// Grant announcement target, invoked (from inside the combining step, so
/// announcements are serialized) for every newly granted request.
/// Implementations must be non-blocking and must not re-enter the
/// announcing queue — ORWL_ASSERT fires on re-entry, in release builds
/// too. Every on_grant override must carry the
/// `sink-contract: no-queue-reentry` comment (enforced by
/// tools/orwl_lint.py) as an explicit acknowledgement of that contract.
/// An intrusive interface (the Runtime *is* the sink) instead of a
/// std::function, so announcing a grant allocates nothing.
class GrantSink {
 public:
  virtual void on_grant(Request& req) = 0;

  /// Batched announcement: a run of concurrent READ grants (>= 2, ticket
  /// order) announced through ONE virtual call, so N readers cost one
  /// dispatch — and a routing sink can push one event / coalesce wakes
  /// instead of paying N hops. Same contract as on_grant (serialized
  /// inside the combining step, non-blocking, no queue re-entry; every
  /// request is already Granted when the call is made). The default
  /// replays the batch through on_grant one by one, so sinks that never
  /// opted in observe the exact per-grant sequence they always did.
  // sink-contract: no-queue-reentry — inherits on_grant's obligation.
  virtual void on_grant_batch(std::span<Request* const> reqs) {
    for (Request* r : reqs) on_grant(*r);
  }

 protected:
  ~GrantSink() = default;
};

/// Adapter wrapping a callable as a GrantSink (tests and benches; the
/// callable is stored inline, so announcement stays allocation-free).
template <class F>
class GrantFn final : public GrantSink {
 public:
  explicit GrantFn(F fn) : fn_(std::move(fn)) {}
  // sink-contract: no-queue-reentry — forwards to the wrapped callable,
  // which inherits the obligation not to call back into the queue.
  void on_grant(Request& req) override { fn_(req); }

 private:
  F fn_;
};

/// Where a Handle sends its lock operations. The in-process case is the
/// location's own FifoQueue; a cross-address-space location substitutes a
/// port that forwards the operations to the process hosting the queue
/// (ipc::RemotePort) — the GrantSink split covers the grant direction,
/// this interface covers the request direction. Implementations must keep
/// the FifoQueue semantics: release_and_renew inserts `next` before
/// `current`'s slot is given up.
class RequestPort {
 public:
  virtual void insert(Request& req) = 0;
  virtual void release(Request& req) = 0;
  virtual void release_and_renew(Request& current, Request& next) = 0;

 protected:
  ~RequestPort() = default;
};

class FifoQueue : public RequestPort {
 public:
  /// Ring capacity a fresh queue starts with; generous enough for every
  /// direct-queue test/bench. Runtimes size precisely via reserve_owners.
  static constexpr std::size_t kDefaultCapacity = 256;

  /// `sink` is non-owning and must outlive the queue.
  explicit FifoQueue(GrantSink* sink);

  FifoQueue(const FifoQueue&) = delete;
  FifoQueue& operator=(const FifoQueue&) = delete;

  /// Append a request. The request must be Inactive. May grant it (and
  /// announce the grant) immediately when it lands in the head run.
  void insert(Request& req) override;

  /// Release a Granted request: remove it and advance the grant frontier,
  /// announcing any newly granted requests. Throws ContractError if the
  /// request is not currently granted. After this returns the queue holds
  /// no reference to `req` — the owner may immediately reuse or destroy
  /// it.
  void release(Request& req) override;

  /// Atomically insert `next` and release `current` — the iterative ORWL
  /// step: the renewal takes its ticket *before* the current slot is given
  /// up, so the cyclic per-iteration order is preserved forever.
  void release_and_renew(Request& current, Request& next) override;

  /// Number of queued (Requested + Granted) requests. Exact only while the
  /// queue is quiescent (no insert/release in flight) — all callers are.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of (ticket, mode, state) for tests/diagnostics. Same
  /// quiescence contract as size().
  struct Entry {
    Ticket ticket;
    AccessMode mode;
    RequestState state;
  };
  [[nodiscard]] std::vector<Entry> snapshot() const;

  /// Declare `n` additional request owners (handles or remote proxies)
  /// that will operate on this queue; grows the ring so the ORWL
  /// in-flight bound (2 requests per owner) can never fill it. A full
  /// ring would deadlock release_and_renew, whose renewal must take a
  /// slot BEFORE the current grant's slot is reclaimed. Single-threaded
  /// setup only (Runtime::add_handle, ipc attach) — the ring is rebuilt.
  void reserve_owners(std::size_t n);

  /// Grow the ring to at least `want` slots (rounded up to a power of
  /// two). Quiescent single-threaded use only: no concurrent queue op may
  /// be in flight while the ring is rebuilt.
  void ensure_capacity(std::size_t want);

  /// Current ring capacity (insert backpressure threshold).
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Batched shared-read announcement (on by default): a head run of >= 2
  /// concurrent readers is announced through one on_grant_batch call
  /// instead of per-request on_grant calls. Quiescent setup only (the
  /// runtime applies RuntimeOptions::batch_grants; benches A/B it).
  void set_batch_grants(bool on) { batch_grants_ = on; }

  /// The grant-path combiner — exposed for stats (handoffs/cross_node
  /// metrics export) and for tests that shrink its handoff spin budgets.
  [[nodiscard]] sync::Combiner& combiner() { return combiner_; }
  [[nodiscard]] const sync::Combiner& combiner() const { return combiner_; }

 private:
  /// One ring slot. A ticket t lives in slots_[t & mask_]; the slot's
  /// `seq` walks t (free for round t) → t+1 (occupied by round t) →
  /// t+capacity (free for the next lap), publishing the other fields
  /// Vyukov-style. `mode` is plain: written by the inserter before the
  /// seq release-store, read by others only after the seq acquire-load.
  struct alignas(64) Slot {
    std::atomic<Ticket> seq{0};
    std::atomic<Request*> req{nullptr};
    /// Owner finished with the grant; slot is reclaimable.
    std::atomic<bool> released{false};
    /// Combiner finished announcing (sink returned); until then the
    /// owner's release spins, so the combiner's Request& stays valid.
    std::atomic<bool> announced{false};
    AccessMode mode = AccessMode::Read;
  };

  void enqueue(Request& req);      ///< ticket + slot publish (no combine)
  void mark_released(Request& req);  ///< contract checks + released flag
  void combine();                  ///< announce work, maybe run advance()
  void advance();                  ///< combiner body: reclaim + grant
  void grant_one(Slot& s, Ticket t);  ///< store Granted + announce once
  /// Store Granted on a collected read run (>= 2, ticket order, last
  /// ticket `t_last`) and announce it through ONE on_grant_batch call.
  /// Uses the batch_* scratch members (combiner-private).
  void grant_run(Ticket t_last);
  /// Protocol assert: the grant sink must not call back in.
  void check_not_reentered() const;

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  std::size_t owners_ = 0;  ///< registered request owners (reserve_owners)

  /// Next ticket to hand out. The only atomic inserters contend on.
  std::atomic<Ticket> tail_{0};
  /// First not-yet-reclaimed ticket. Combiner-private (only mutated while
  /// holding the Combiner role); atomic so quiescent observers
  /// (size/snapshot) are race-free.
  std::atomic<Ticket> head_{0};
  /// Frontier of announced grants: every ticket < granted_ has had its
  /// single announcement. Combiner-private like head_.
  std::atomic<Ticket> granted_{0};

  sync::Combiner combiner_;
  GrantSink* sink_;

  bool batch_grants_ = true;
  /// Read-run collection scratch, combiner-private (only touched while
  /// holding the combiner role). Reserved to ring capacity by
  /// ensure_capacity, so the steady-state grant path never allocates.
  /// Emptied BEFORE every sink call: a throwing sink unwinds into the
  /// combiner's exception recovery, and the next advance() must never
  /// find a stale collected run to re-announce.
  std::vector<Slot*> batch_slots_;
  std::vector<Ticket> batch_tickets_;
  /// The run currently being announced (requests + their slots), owned by
  /// the in-flight on_grant_batch call and its announced-flag guard —
  /// separate from the collection scratch so that scratch can be cleared
  /// before the sink runs. Same reservation contract as above.
  std::vector<Request*> batch_reqs_;
  std::vector<Slot*> announce_slots_;
};

}  // namespace orwl
