#pragma once
// Event queue feeding a control thread. The ORWL runtime is event-based:
// when a request reaches the grant frontier of a location FIFO, the grant
// is *announced* to the owning task's control thread, which performs the
// delivery (waking the compute thread). Binding these control threads well
// is half of the paper's placement problem.
//
// The consumer parks on an atomic sequence word through the shared sync::
// waiter (same wait-strategy knob as every other parking point of the
// core) instead of a condition variable: post() bumps the sequence and
// notifies; pop() re-checks the backlog whenever the sequence moves, so a
// post between the backlog check and the park is never missed.

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "orwl/fwd.h"
#include "support/thread_annotations.h"
#include "sync/mutex.h"
#include "sync/wait_strategy.h"

namespace orwl {

struct Request;

/// A grant announcement.
struct Event {
  Request* request = nullptr;
};

/// Unbounded MPSC event queue with blocking pop and shutdown.
class EventQueue {
 public:
  explicit EventQueue(sync::WaitStrategy wait = {}) : wait_(wait) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueue an event. Safe from any thread, including while a location
  /// queue lock is held.
  void post(Event ev) ORWL_EXCLUDES(mu_);

  /// Enqueue a batch of events with ONE lock acquisition, ONE sequence
  /// bump and ONE wake — the posting half of the batched shared-read
  /// grant path (a run of N readers costs one EventQueue hop, not N).
  /// Same thread-safety contract as post(). Empty spans are a no-op.
  void post_batch(std::span<const Event> evs) ORWL_EXCLUDES(mu_);

  /// Block until an event is available or stop() is called.
  /// Returns nullopt once stopped and drained.
  std::optional<Event> pop() ORWL_EXCLUDES(mu_);

  /// Batched pop: block like pop(), then drain the ENTIRE backlog in one
  /// pass, appending it to `out` (one lock acquisition per wake instead of
  /// one per event — the burst path of the control threads). Returns
  /// false once stopped and drained, leaving `out` untouched.
  bool pop_all(std::vector<Event>& out) ORWL_EXCLUDES(mu_);

  /// Wake all poppers; subsequent pops drain the backlog then return
  /// nullopt.
  void stop() ORWL_EXCLUDES(mu_);

  /// Events currently queued (diagnostics).
  [[nodiscard]] std::size_t pending() const ORWL_EXCLUDES(mu_);

  /// Lock-free backlog probe for the inline-idle-delivery fast path: true
  /// when the queue LOOKED empty just now. Advisory only — a concurrent
  /// post can make the answer stale by the time the caller acts on it;
  /// callers must be correct either way (grant delivery is, because a
  /// notify is idempotent and waiters re-check state, never counts).
  [[nodiscard]] bool idle() const {
    // order: relaxed — advisory snapshot; see the comment above.
    return backlog_.load(std::memory_order_relaxed) == 0;
  }

 private:
  mutable sync::Mutex mu_;
  std::deque<Event> events_ ORWL_GUARDED_BY(mu_);
  bool stopped_ ORWL_GUARDED_BY(mu_) = false;
  /// Bumped (release) on every post/stop; the consumer parks on it.
  std::atomic<std::uint32_t> seq_{0};
  /// Mirror of events_.size(), maintained under mu_ but readable without
  /// it (idle() above).
  std::atomic<std::uint32_t> backlog_{0};
  sync::WaitStrategy wait_;
};

}  // namespace orwl
