#include "orwl/location.h"

namespace orwl {

LocationBuffer::LocationBuffer(LocationId id, std::size_t bytes, std::string name,
                   GrantSink on_grant)
    : id_(id),
      name_(std::move(name)),
      data_(bytes),
      queue_(std::move(on_grant)) {}

}  // namespace orwl
