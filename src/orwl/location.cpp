#include "orwl/location.h"

#include <utility>

namespace orwl {

LocationBuffer::LocationBuffer(LocationId id, mem::Segment storage,
                   std::string name, GrantSink* sink)
    : id_(id),
      name_(std::move(name)),
      storage_(std::move(storage)),
      queue_(sink) {}

}  // namespace orwl
