#include "orwl/location.h"

namespace orwl {

LocationBuffer::LocationBuffer(LocationId id, std::size_t bytes, std::string name,
                   GrantSink* sink)
    : id_(id),
      name_(std::move(name)),
      data_(bytes),
      queue_(sink) {}

}  // namespace orwl
