#include "orwl/runtime.h"

#include <algorithm>
#include <exception>
#include <mutex>

#include "mem/numa.h"
#include "obs/trace.h"
#include "support/assert.h"
#include "topo/topology.h"
#include "support/log.h"
#include "support/thread.h"
#include "sync/waiter.h"
#include "topo/binding.h"

namespace orwl {

Handle& TaskContext::handle(HandleId h) { return runtime_.handle(h); }

Runtime::Runtime(RuntimeOptions opts)
    : opts_(opts), arena_({.policy = opts.memory}), stats_(0, metrics_) {
  if (opts_.control == RuntimeOptions::ControlMode::SharedPool) {
    ORWL_CHECK_MSG(opts_.shared_control_threads >= 1,
                   "shared control pool needs at least one thread");
    for (int i = 0; i < opts_.shared_control_threads; ++i)
      shared_queues_.push_back(std::make_unique<EventQueue>(opts_.wait));
    shared_bindings_.resize(
        static_cast<std::size_t>(opts_.shared_control_threads));
  }
}

Runtime::~Runtime() = default;

LocationId Runtime::add_location(std::size_t bytes, std::string name) {
  ORWL_CHECK_MSG(!ran_, "cannot add locations after run()");
  const LocationId id = static_cast<LocationId>(locations_.size());
  if (name.empty()) name = "loc" + std::to_string(id);
  // The cast to the private base is accessible here (member scope).
  locations_.push_back(std::make_unique<LocationBuffer>(
      id, arena_.allocate(bytes), std::move(name),
      static_cast<GrantSink*>(this)));
  locations_.back()->queue().set_batch_grants(opts_.batch_grants);
  return id;
}

LocationId Runtime::add_shared_location(std::span<std::byte> bytes,
                                        std::string name) {
  ORWL_CHECK_MSG(!ran_, "cannot add locations after run()");
  ORWL_CHECK_MSG(opts_.transport == RuntimeOptions::Transport::Shm,
                 "shared locations need Transport::Shm");
  const LocationId id = static_cast<LocationId>(locations_.size());
  if (name.empty()) name = "shloc" + std::to_string(id);
  locations_.push_back(std::make_unique<LocationBuffer>(
      id, mem::Segment::external_view(bytes.data(), bytes.size()),
      std::move(name), static_cast<GrantSink*>(this)));
  locations_.back()->queue().set_batch_grants(opts_.batch_grants);
  return id;
}

void Runtime::set_location_port(LocationId loc, RequestPort* port) {
  ORWL_CHECK_MSG(!ran_, "cannot reroute a location after run()");
  ORWL_CHECK_MSG(opts_.transport == RuntimeOptions::Transport::Shm,
                 "location ports need Transport::Shm");
  ORWL_CHECK_MSG(loc >= 0 && loc < num_locations(), "unknown location " << loc);
  ORWL_CHECK_MSG(port != nullptr, "location port must not be null");
  locations_[static_cast<std::size_t>(loc)]->set_port(port);
}

FifoQueue& Runtime::location_queue(LocationId loc) {
  ORWL_CHECK_MSG(loc >= 0 && loc < num_locations(), "unknown location " << loc);
  return locations_[static_cast<std::size_t>(loc)]->queue();
}

void Runtime::set_remote_sink(GrantSink* sink) {
  ORWL_CHECK_MSG(opts_.transport == RuntimeOptions::Transport::Shm,
                 "a remote sink needs Transport::Shm");
  remote_sink_ = sink;
}

TaskId Runtime::add_task(std::string name, TaskFn fn) {
  ORWL_CHECK_MSG(!ran_, "cannot add tasks after run()");
  ORWL_CHECK_MSG(fn != nullptr, "task body must be callable");
  const TaskId id = static_cast<TaskId>(tasks_.size());
  if (name.empty()) name = "task" + std::to_string(id);
  TaskRec rec;
  rec.name = std::move(name);
  rec.fn = std::move(fn);
  rec.events = std::make_unique<EventQueue>(opts_.wait);
  tasks_.push_back(std::move(rec));
  stats_.resize(static_cast<int>(tasks_.size()));
  return id;
}

HandleId Runtime::add_handle(TaskId task, LocationId location, AccessMode mode,
                             bool prime) {
  ORWL_CHECK_MSG(!ran_, "cannot add handles after run()");
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  ORWL_CHECK_MSG(location >= 0 && location < num_locations(),
                 "unknown location " << location);
  const HandleId id = static_cast<HandleId>(handles_.size());
  LocationBuffer& loc = *locations_[static_cast<std::size_t>(location)];
  // One more request owner on this location's ring: keep the ORWL
  // in-flight bound (2 requests per owner) below ring capacity so
  // release_and_renew can never fill it (see FifoQueue::reserve_owners).
  loc.queue().reserve_owners(1);
  handles_.push_back(std::make_unique<Handle>(id, task, loc, mode,
                                              opts_.wait));
  // Per-handle observability: wait-length and acquire-latency histograms,
  // named by handle so the dump/report can attribute contention.
  const std::string suffix = "/h" + std::to_string(id);
  obs::Histogram& wait_rounds =
      metrics_.histogram("orwl.wait_rounds" + suffix);
  handles_.back()->set_metrics(&wait_rounds,
                               &metrics_.histogram("orwl.acquire_ns" + suffix));
  if (opts_.wait.mode == sync::WaitMode::Auto) {
    // Self-tuning wait: the handle re-reads this budget every acquire;
    // retune_wait_budgets() re-derives it from wait_rounds at every epoch
    // boundary and exports it through the gauge.
    auto rec = std::make_unique<WaitTuneRec>();
    rec->wait_rounds = &wait_rounds;
    rec->budget_gauge = &metrics_.gauge("orwl.spin_budget" + suffix);
    rec->budget_gauge->set(rec->budget.spins());
    handles_.back()->set_spin_budget(&rec->budget);
    wait_tuners_.push_back(std::move(rec));
  }
  if (prime) prime_order_.push_back(id);
  return id;
}

void Runtime::set_compute_binding(TaskId task, topo::Bitmap cpuset) {
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  tasks_[static_cast<std::size_t>(task)].compute_bind = std::move(cpuset);
}

void Runtime::set_control_binding(TaskId task, topo::Bitmap cpuset) {
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  tasks_[static_cast<std::size_t>(task)].control_bind = std::move(cpuset);
}

void Runtime::set_shared_control_binding(int pool_index, topo::Bitmap cpuset) {
  ORWL_CHECK_MSG(opts_.control == RuntimeOptions::ControlMode::SharedPool,
                 "shared control bindings need ControlMode::SharedPool");
  ORWL_CHECK_MSG(pool_index >= 0 &&
                     pool_index < static_cast<int>(shared_bindings_.size()),
                 "pool index " << pool_index << " out of range");
  shared_bindings_[static_cast<std::size_t>(pool_index)] = std::move(cpuset);
}

void Runtime::set_epoch_hook(int epoch_length, EpochHook hook) {
  ORWL_CHECK_MSG(!ran_, "cannot install an epoch hook after run()");
  ORWL_CHECK_MSG(epoch_length >= 1,
                 "epoch length must be >= 1, got " << epoch_length);
  ORWL_CHECK_MSG(hook != nullptr, "epoch hook must be callable");
  epoch_length_ = epoch_length;
  epoch_hook_ = std::move(hook);
}

void Runtime::epoch_fire(sync::UniqueLock& lock) {
  // Everyone expected has arrived: parked threads cannot advance and no
  // task can retire, so the hook owns the run. Release the lock while it
  // executes — the hook calls back into rebind_* and the Instrument.
  // order: relaxed — the generation is only ever bumped under esync_mu_,
  // which the caller holds.
  const int epoch =
      static_cast<int>(esync_generation_.load(std::memory_order_relaxed)) + 1;
  const int round = esync_round_;
  lock.unlock();
  obs::trace(obs::EventKind::EpochBegin, static_cast<std::uint64_t>(epoch));
  std::exception_ptr hook_error;
  try {
    if (epoch_hook_) epoch_hook_(epoch, round);
  } catch (...) {
    hook_error = std::current_exception();
  }
  obs::trace(obs::EventKind::EpochEnd, static_cast<std::uint64_t>(epoch));
  // Self-tuning waits ride the same boundary: the compute threads are
  // still parked, so the wait-round histograms are quiescent and the
  // epoch-window deltas exact.
  retune_wait_budgets();
  lock.lock();
  esync_arrived_ = 0;
  // lint: allow-rmw(epoch generation bump, not a lock-free protocol)
  // order: release — the bump releases the parked arrivals: it publishes
  // the hook's effects (acquire-load in the waiter); notify wakes them.
  esync_generation_.fetch_add(1, std::memory_order_release);
  sync::notify_all(esync_generation_);
  if (hook_error) std::rethrow_exception(hook_error);
}

void Runtime::retune_wait_budgets() {
  for (const auto& rec : wait_tuners_) {
    const obs::HistogramSnapshot snap = rec->wait_rounds->snapshot();
    std::array<std::uint64_t, obs::HistogramSnapshot::kBuckets> delta;
    for (std::size_t i = 0; i < delta.size(); ++i)
      delta[i] = snap.buckets[i] - rec->last[i];
    rec->last = snap.buckets;
    rec->budget_gauge->set(rec->budget.retune(delta.data(), delta.size()));
  }
}

void Runtime::epoch_arrive(TaskId task, int round) {
  if (epoch_length_ <= 0) return;
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  std::uint32_t gen;
  {
    sync::UniqueLock lock(esync_mu_);
    if (esync_retired_[static_cast<std::size_t>(task)]) return;
    esync_round_ = round;
    ++esync_arrived_;
    if (esync_arrived_ == esync_members_) {
      epoch_fire(lock);
      return;
    }
    // order: relaxed — read the generation before dropping the lock (which
    // orders it): a boundary that fires in between bumps it, so the park
    // below returns immediately.
    gen = esync_generation_.load(std::memory_order_relaxed);
  }
  (void)sync::wait_while_equal(esync_generation_, gen, opts_.wait);
}

void Runtime::epoch_retire(TaskId task) {
  if (epoch_length_ <= 0) return;
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  sync::UniqueLock lock(esync_mu_);
  if (esync_retired_[static_cast<std::size_t>(task)]) return;
  esync_retired_[static_cast<std::size_t>(task)] = 1;
  --esync_members_;
  // The departure may complete a boundary the remaining tasks are parked
  // at.
  if (esync_members_ > 0 && esync_arrived_ == esync_members_)
    epoch_fire(lock);
}

bool Runtime::rebind_compute_thread(TaskId task, const topo::Bitmap& cpuset) {
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  sync::LockGuard lock(esync_mu_);
  const auto& h = compute_handles_[static_cast<std::size_t>(task)];
  return h && topo::bind_thread(*h, cpuset);
}

bool Runtime::rebind_control_thread(TaskId task, const topo::Bitmap& cpuset) {
  ORWL_CHECK_MSG(task >= 0 && task < num_tasks(), "unknown task " << task);
  if (opts_.control != RuntimeOptions::ControlMode::PerTask) return false;
  sync::LockGuard lock(esync_mu_);
  const auto& h = control_handles_[static_cast<std::size_t>(task)];
  return h && topo::bind_thread(*h, cpuset);
}

int Runtime::place_location_memory(const std::vector<int>& compute_pu,
                                   const topo::Topology& topo,
                                   const mem::NumaInfo* numa) {
  if (opts_.memory == mem::MemoryPolicy::Heap) return 0;
  const mem::NumaInfo& info = numa ? *numa : mem::NumaInfo::host();
  if (!info.available()) return 0;
  int moved = 0;

  if (opts_.memory == mem::MemoryPolicy::NumaInterleave) {
    // Interleave is node-agnostic: apply once per location, re-placements
    // have nothing to move.
    const std::vector<int> ids = info.node_ids();
    for (const auto& loc : locations_) {
      if (loc->size() == 0 || loc->storage().interleaved()) continue;
      loc->storage().interleave(ids);
      ++moved;
    }
    if (moved > 0)
      obs::trace(obs::EventKind::PageMove, static_cast<std::uint64_t>(moved));
    return moved;
  }

  // NumaLocal. The planned writer of a location is the task behind its
  // first Write handle in registration (= canonical priming) order.
  std::vector<TaskId> writer(locations_.size(), -1);
  for (const auto& h : handles_) {
    if (h->mode() != AccessMode::Write) continue;
    const auto li = static_cast<std::size_t>(h->location());
    if (writer[li] < 0) writer[li] = h->task();
  }
  const auto pus = topo.pus();
  for (std::size_t li = 0; li < locations_.size(); ++li) {
    const TaskId w = writer[li];
    if (w < 0 || static_cast<std::size_t>(w) >= compute_pu.size()) continue;
    const int cpu = compute_pu[static_cast<std::size_t>(w)];
    if (cpu < 0 || cpu >= static_cast<int>(pus.size())) continue;
    const int node =
        info.node_of_cpu(pus[static_cast<std::size_t>(cpu)]->os_index);
    if (node < 0) continue;
    LocationBuffer& loc = *locations_[li];
    if (loc.size() == 0 || loc.storage().target_node() == node) continue;
    loc.storage().bind_to_node(node);
    ++moved;
  }
  if (moved > 0)
    obs::trace(obs::EventKind::PageMove, static_cast<std::uint64_t>(moved));
  return moved;
}

int Runtime::location_node(LocationId loc) const {
  ORWL_CHECK_MSG(loc >= 0 && loc < num_locations(), "unknown location " << loc);
  return locations_[static_cast<std::size_t>(loc)]->storage().target_node();
}

const mem::Segment& Runtime::location_storage(LocationId loc) const {
  ORWL_CHECK_MSG(loc >= 0 && loc < num_locations(), "unknown location " << loc);
  return locations_[static_cast<std::size_t>(loc)]->storage();
}

Handle& Runtime::handle(HandleId h) {
  ORWL_CHECK_MSG(h >= 0 && h < num_handles(), "unknown handle " << h);
  return *handles_[static_cast<std::size_t>(h)];
}

const std::string& Runtime::task_name(TaskId t) const {
  ORWL_CHECK_MSG(t >= 0 && t < num_tasks(), "unknown task " << t);
  return tasks_[static_cast<std::size_t>(t)].name;
}

std::span<std::byte> Runtime::location_data(LocationId loc) {
  ORWL_CHECK_MSG(loc >= 0 && loc < num_locations(), "unknown location " << loc);
  return locations_[static_cast<std::size_t>(loc)]->data();
}

std::size_t Runtime::location_size(LocationId loc) const {
  ORWL_CHECK_MSG(loc >= 0 && loc < num_locations(), "unknown location " << loc);
  return locations_[static_cast<std::size_t>(loc)]->size();
}

void Runtime::on_grant(Request& req) {
  // Called with the location queue lock held — keep it lean. The trace
  // hook is one relaxed flag load when tracing is off.
  obs::trace(obs::EventKind::Grant, static_cast<std::uint64_t>(req.handle));
  stats_.record_grant(req.mode);
  LocationBuffer& loc = *locations_[static_cast<std::size_t>(req.location)];
  if (req.owner == kRemoteOwner) {
    // Proxied peer request: the owner is not a local task, so neither the
    // task table nor the flow shards may be indexed with it — hand the
    // grant to the transport sink, which publishes it into the shm ring.
    if (req.mode == AccessMode::Write) loc.set_last_writer(kRemoteOwner);
    ORWL_ASSERT_MSG(remote_sink_ != nullptr,
                    "remote-owned grant with no remote sink installed");
    remote_sink_->on_grant(req);
    return;
  }
  // Reads consume the last writer's bytes; a write-after-write moves
  // ownership of the buffer — either way the flow edge is the same.
  // (record_flow ignores negative producers, so a remote last writer
  // simply drops the edge — cross-process flows are the transport's
  // metrics, not this Instrument's.)
  if (opts_.record_flows)
    stats_.record_flow(loc.last_writer(), req.owner, loc.size());
  if (req.mode == AccessMode::Write) loc.set_last_writer(req.owner);
  route_grant(req);
}

void Runtime::route_grant(Request& req) {
  // Inline idle delivery (RuntimeOptions::inline_idle_delivery): an empty
  // control backlog means there is nothing to batch, so the hop through
  // the control thread would only add wake latency — deliver here. The
  // idle() probe is advisory; a stale answer is safe either way because
  // delivery is a notify (idempotent, the waiter re-checks state).
  switch (opts_.control) {
    case RuntimeOptions::ControlMode::Direct:
      Handle::deliver_grant(req);
      break;
    case RuntimeOptions::ControlMode::PerTask: {
      EventQueue& q = *tasks_[static_cast<std::size_t>(req.owner)].events;
      if (opts_.inline_idle_delivery && q.idle())
        Handle::deliver_grant(req);
      else
        q.post({&req});
      break;
    }
    case RuntimeOptions::ControlMode::SharedPool: {
      EventQueue& q = *shared_queues_[static_cast<std::size_t>(req.owner) %
                                      shared_queues_.size()];
      if (opts_.inline_idle_delivery && q.idle())
        Handle::deliver_grant(req);
      else
        q.post({&req});
      break;
    }
  }
}

void Runtime::on_grant_batch(std::span<Request* const> reqs) {
  // A whole shared-read run in one announcement. The per-request
  // bookkeeping below is exactly on_grant's; the batch buys one virtual
  // dispatch for the run plus the grouped routing at the end (one event
  // post and one wake per destination queue instead of one per reader).
  obs::trace(obs::EventKind::GrantBatch, reqs.size());
  // Scratch is thread-local, not a member: combiners of DIFFERENT
  // locations may announce concurrently, and one thread never nests
  // announcements (sinks must not re-enter queues). Steady-state the
  // vector is warm — no allocation on the grant path.
  thread_local std::vector<Request*> local;
  local.clear();
  for (Request* req : reqs) {
    obs::trace(obs::EventKind::Grant, static_cast<std::uint64_t>(req->handle));
    stats_.record_grant(req->mode);
    LocationBuffer& loc =
        *locations_[static_cast<std::size_t>(req->location)];
    if (req->owner == kRemoteOwner) {
      // Proxied peer request (see on_grant): not a local task, so it must
      // not reach the task table or flow shards — the transport publishes
      // it into the shm ring. Batches are read runs, but keep the
      // last-writer discipline symmetric with on_grant anyway.
      if (req->mode == AccessMode::Write) loc.set_last_writer(kRemoteOwner);
      ORWL_ASSERT_MSG(remote_sink_ != nullptr,
                      "remote-owned grant with no remote sink installed");
      remote_sink_->on_grant(*req);
      continue;
    }
    if (opts_.record_flows)
      stats_.record_flow(loc.last_writer(), req->owner, loc.size());
    if (req->mode == AccessMode::Write) loc.set_last_writer(req->owner);
    local.push_back(req);
  }
  route_grant_batch({local.data(), local.size()});
}

void Runtime::route_grant_batch(std::span<Request* const> reqs) {
  if (reqs.empty()) return;
  if (opts_.control == RuntimeOptions::ControlMode::Direct) {
    for (Request* r : reqs) Handle::deliver_grant(*r);
    return;
  }
  const auto queue_of = [this](const Request* r) -> EventQueue& {
    if (opts_.control == RuntimeOptions::ControlMode::PerTask)
      return *tasks_[static_cast<std::size_t>(r->owner)].events;
    return *shared_queues_[static_cast<std::size_t>(r->owner) %
                           shared_queues_.size()];
  };
  // Group by destination queue with the same tiny-quadratic scan as
  // deliver_batch (runs are bounded by the location's reader count). Each
  // group goes through ONE post_batch — one lock round-trip and one wake
  // for the whole run — unless the queue is idle, in which case the
  // announcer delivers inline: every waiter needs its own notify no matter
  // who issues it, so the control-thread hop would only add latency (the
  // same reasoning as route_grant's single-grant short-cut).
  thread_local std::vector<Event> events;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EventQueue& q = queue_of(reqs[i]);
    bool grouped = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (&queue_of(reqs[j]) == &q) {
        grouped = true;
        break;
      }
    }
    if (grouped) continue;
    events.clear();
    for (std::size_t j = i; j < reqs.size(); ++j)
      if (&queue_of(reqs[j]) == &q) events.push_back({reqs[j]});
    if (opts_.inline_idle_delivery && q.idle()) {
      for (const Event& ev : events) Handle::deliver_grant(*ev.request);
    } else {
      q.post_batch({events.data(), events.size()});
    }
  }
}

void Runtime::deliver_batch(const std::vector<Event>& batch) {
  // Coalesce per handle: a request whose renewal was granted while its
  // earlier announcement still sat in the backlog appears twice — one
  // notify covers both (the waiter re-checks the state, never the count).
  // Batches are bounded by the serviced tasks' handle counts, so the
  // quadratic scan stays tiny.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request* req = batch[i].request;
    bool coalesced = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (batch[j].request == req) {
        coalesced = true;
        break;
      }
    }
    if (!coalesced) Handle::deliver_grant(*req);
  }
}

void Runtime::shared_control_loop(int pool_index) {
  set_current_thread_name("ctlpool:" + std::to_string(pool_index));
  const auto& bind = shared_bindings_[static_cast<std::size_t>(pool_index)];
  if (bind) topo::bind_current_thread(*bind);
  EventQueue& queue = *shared_queues_[static_cast<std::size_t>(pool_index)];
  // Batched delivery: drain the whole backlog per wake instead of paying
  // one lock round-trip (and possibly one park) per event under bursts.
  std::vector<Event> batch;
  while (queue.pop_all(batch)) {
    deliver_batch(batch);
    batch.clear();
  }
}

void Runtime::control_loop(TaskId task) {
  TaskRec& rec = tasks_[static_cast<std::size_t>(task)];
  set_current_thread_name("ctl:" + rec.name);
  {
    sync::LockGuard lock(esync_mu_);
    control_handles_[static_cast<std::size_t>(task)] =
        topo::current_thread_handle();
  }
  if (rec.control_bind) topo::bind_current_thread(*rec.control_bind);
  std::vector<Event> batch;
  while (rec.events->pop_all(batch)) {
    deliver_batch(batch);
    batch.clear();
  }
}

void Runtime::run() {
  ORWL_CHECK_MSG(!ran_, "Runtime::run() may only be called once");
  ORWL_CHECK_MSG(!tasks_.empty(), "no tasks to run");
  ran_ = true;

  // Epoch barrier population: every task participates until it retires.
  // (Still single-threaded here, but the barrier fields are guarded by
  // esync_mu_, so take it — uncontended — to keep the annotation honest.)
  {
    sync::LockGuard lock(esync_mu_);
    esync_members_ = num_tasks();
    esync_arrived_ = 0;
    // order: relaxed — no thread exists yet; thread creation below is the
    // synchronization point that publishes this store.
    esync_generation_.store(0, std::memory_order_relaxed);
    esync_retired_.assign(tasks_.size(), 0);
    compute_handles_.assign(tasks_.size(), std::nullopt);
    control_handles_.assign(tasks_.size(), std::nullopt);
  }

  // Canonical priming: initial requests in registration order. This global
  // deterministic order is what makes iterative ORWL programs live.
  for (HandleId h : prime_order_)
    handles_[static_cast<std::size_t>(h)]->request();

  // Control threads first so primed grants get delivered.
  std::vector<std::thread> control;
  if (opts_.control == RuntimeOptions::ControlMode::PerTask) {
    control.reserve(tasks_.size());
    for (TaskId t = 0; t < num_tasks(); ++t)
      control.emplace_back([this, t] { control_loop(t); });
  } else if (opts_.control == RuntimeOptions::ControlMode::SharedPool) {
    control.reserve(shared_queues_.size());
    for (int i = 0; i < static_cast<int>(shared_queues_.size()); ++i)
      control.emplace_back([this, i] { shared_control_loop(i); });
  }

  sync::Mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> compute;
  compute.reserve(tasks_.size());
  for (TaskId t = 0; t < num_tasks(); ++t) {
    compute.emplace_back([this, t, &err_mu, &first_error] {
      TaskRec& rec = tasks_[static_cast<std::size_t>(t)];
      set_current_thread_name(rec.name);
      {
        sync::LockGuard lock(esync_mu_);
        compute_handles_[static_cast<std::size_t>(t)] =
            topo::current_thread_handle();
      }
      if (rec.compute_bind) topo::bind_current_thread(*rec.compute_bind);
      TaskContext ctx(*this, t);
      const auto record_error = [&] {
        sync::LockGuard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      };
      try {
        rec.fn(ctx);
      } catch (...) {
        record_error();
      }
      // A body that returned (or threw) makes no further epoch arrivals;
      // without this, a boundary would wait for it forever. Retiring can
      // complete a boundary and run the epoch hook here — catch its
      // exceptions too, or they would escape the thread and terminate.
      try {
        epoch_retire(t);
      } catch (...) {
        record_error();
      }
    });
  }

  for (auto& th : compute) th.join();
  for (auto& rec : tasks_) rec.events->stop();
  for (auto& q : shared_queues_) q->stop();
  for (auto& th : control) th.join();

  // Combiner locality stats, summed over the location queues now that
  // everything is quiescent, so post-run snapshots read exact totals.
  std::uint64_t handoffs = 0;
  std::uint64_t cross_node = 0;
  for (const auto& loc : locations_) {
    handoffs += loc->queue().combiner().handoffs();
    cross_node += loc->queue().combiner().cross_node();
  }
  metrics_.counter("orwl.combiner.handoffs").add(handoffs);
  metrics_.counter("orwl.combiner.cross_node").add(cross_node);

  if (first_error) std::rethrow_exception(first_error);
}

comm::CommMatrix Runtime::static_comm_matrix() const {
  // "We cluster threads that share data" (paper Sec. II): every pair of
  // tasks holding handles on the same location gets an affinity of the
  // location's size — including reader-reader pairs, which share the
  // buffer in cache even though no bytes flow between them.
  comm::CommMatrix m(num_tasks());
  for (const auto& loc : locations_) {
    const auto bytes = static_cast<double>(loc->size());
    if (bytes == 0.0) continue;
    std::vector<TaskId> sharers;
    for (const auto& h : handles_) {
      if (h->location() != loc->id()) continue;
      if (std::find(sharers.begin(), sharers.end(), h->task()) ==
          sharers.end())
        sharers.push_back(h->task());
    }
    for (std::size_t i = 0; i < sharers.size(); ++i)
      for (std::size_t j = i + 1; j < sharers.size(); ++j)
        m.add(sharers[i], sharers[j], bytes);
  }
  return m;
}

comm::CommMatrix Runtime::measured_comm_matrix() const {
  return stats_.flow_matrix();
}

}  // namespace orwl
