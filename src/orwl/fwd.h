#pragma once
// Shared identifiers and enums of the ORWL runtime.

#include <cstdint>

namespace orwl {

/// Dense id of a location within a Runtime.
using LocationId = int;
/// Dense id of a task (one task == one operation == one compute thread).
using TaskId = int;
/// Dense id of a handle within a Runtime.
using HandleId = int;
/// Per-location monotonically increasing request ticket.
using Ticket = std::uint64_t;

/// Sentinel TaskId marking a request proxied for a peer process (the
/// ipc:: transport). A grant for such a request must never be routed to
/// the local task table — the Runtime hands it to its remote sink instead.
inline constexpr TaskId kRemoteOwner = -2;

/// Access mode of a request. Consecutive Read requests at the head of a
/// location's FIFO are granted together; Write is exclusive.
enum class AccessMode : std::uint8_t { Read, Write };

inline const char* to_string(AccessMode m) {
  return m == AccessMode::Read ? "read" : "write";
}

}  // namespace orwl
