#pragma once
// LocationBuffer: the runtime-internal ORWL abstraction of a shared
// resource — a byte buffer guarded by an ordered read-write lock (a
// FifoQueue). The typed, user-facing view is orwl::Location<T> in
// orwl/program.h.
//
// Storage is a mem::Segment, not a raw heap vector: the Runtime's Arena
// decides the backing per RuntimeOptions::memory, so location pages can be
// bound to (and migrated between) NUMA nodes — and later backed by shared
// mappings for the multi-process transport — without this class changing.

#include <atomic>
#include <cstddef>
#include <span>
#include <string>

#include "mem/segment.h"
#include "orwl/queue.h"

namespace orwl {

class LocationBuffer {
 public:
  /// `storage` may be empty (pure synchronization location). `sink` is
  /// non-owning (the Runtime) and must outlive the buffer.
  LocationBuffer(LocationId id, mem::Segment storage, std::string name,
           GrantSink* sink);

  LocationBuffer(const LocationBuffer&) = delete;
  LocationBuffer& operator=(const LocationBuffer&) = delete;

  [[nodiscard]] LocationId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return storage_.size(); }

  /// The guarded buffer. Callers must hold a granted request to touch it;
  /// handles enforce this, direct Runtime access is for pre-run init.
  [[nodiscard]] std::span<std::byte> data() { return storage_.bytes(); }
  [[nodiscard]] std::span<const std::byte> data() const {
    return storage_.bytes();
  }

  /// The backing segment, for page placement/migration (Runtime only —
  /// never move pages while a task holds a grant mid-write on another
  /// thread; the epoch barrier provides that exclusion).
  [[nodiscard]] mem::Segment& storage() { return storage_; }
  [[nodiscard]] const mem::Segment& storage() const { return storage_; }

  [[nodiscard]] FifoQueue& queue() { return queue_; }
  [[nodiscard]] const FifoQueue& queue() const { return queue_; }

  /// Where this location's handles send their lock operations. Defaults
  /// to the local FifoQueue; a cross-address-space peer points it at an
  /// ipc::RemotePort that forwards the operations to the hosting process.
  [[nodiscard]] RequestPort& port() { return *port_; }
  /// Swap the port (single-threaded setup, before any handle operates).
  /// `port` is non-owning and must outlive the buffer's use.
  void set_port(RequestPort* port) { port_ = port; }

  /// Task that last held a Write grant; -1 initially. Used by the
  /// instrumentation to attribute read bytes to a producer.
  [[nodiscard]] TaskId last_writer() const {
    // order: relaxed — only read/written from the grant announcement path,
    // which the queue's combiner role serializes (sync/combiner.h).
    return last_writer_.load(std::memory_order_relaxed);
  }
  void set_last_writer(TaskId t) {
    // order: relaxed — see last_writer(): the combiner role serializes
    // all access.
    last_writer_.store(t, std::memory_order_relaxed);
  }

 private:
  LocationId id_;
  std::string name_;
  mem::Segment storage_;
  FifoQueue queue_;
  RequestPort* port_ = &queue_;
  std::atomic<TaskId> last_writer_{-1};
};

}  // namespace orwl
