#pragma once
// LocationBuffer: the runtime-internal ORWL abstraction of a shared
// resource — a byte buffer guarded by an ordered read-write lock (a
// FifoQueue). The typed, user-facing view is orwl::Location<T> in
// orwl/program.h.

#include <atomic>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "orwl/queue.h"

namespace orwl {

class LocationBuffer {
 public:
  /// `bytes` may be zero (pure synchronization location). `sink` is
  /// non-owning (the Runtime) and must outlive the buffer.
  LocationBuffer(LocationId id, std::size_t bytes, std::string name,
           GrantSink* sink);

  LocationBuffer(const LocationBuffer&) = delete;
  LocationBuffer& operator=(const LocationBuffer&) = delete;

  [[nodiscard]] LocationId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// The guarded buffer. Callers must hold a granted request to touch it;
  /// handles enforce this, direct Runtime access is for pre-run init.
  [[nodiscard]] std::span<std::byte> data() {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const std::byte> data() const {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] FifoQueue& queue() { return queue_; }
  [[nodiscard]] const FifoQueue& queue() const { return queue_; }

  /// Task that last held a Write grant; -1 initially. Used by the
  /// instrumentation to attribute read bytes to a producer.
  [[nodiscard]] TaskId last_writer() const {
    return last_writer_.load(std::memory_order_relaxed);
  }
  void set_last_writer(TaskId t) {
    last_writer_.store(t, std::memory_order_relaxed);
  }

 private:
  LocationId id_;
  std::string name_;
  std::vector<std::byte> data_;
  FifoQueue queue_;
  std::atomic<TaskId> last_writer_{-1};
};

}  // namespace orwl
