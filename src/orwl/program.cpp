#include "orwl/program.h"

#include <algorithm>

#include "orwl/backend.h"

namespace orwl {

TaskBuilder Program::task(std::string name) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  TaskDecl decl;
  decl.name = name.empty() ? "task" + std::to_string(id) : std::move(name);
  tasks_.push_back(std::move(decl));
  return TaskBuilder(*this, id);
}

LocationId Program::add_location(std::size_t bytes, std::size_t elem_size,
                                 std::string name) {
  const LocationId id = static_cast<LocationId>(locations_.size());
  if (name.empty()) name = "loc" + std::to_string(id);
  locations_.push_back({std::move(name), bytes, elem_size});
  return id;
}

TaskBuilder& TaskBuilder::iterations(int n) {
  ORWL_CHECK_MSG(n >= 0, "negative iteration count " << n);
  program_->tasks_[static_cast<std::size_t>(task_)].iterations = n;
  return *this;
}

TaskBuilder& TaskBuilder::cost(double flops, double mem_bytes) {
  ORWL_CHECK_MSG(flops >= 0.0 && mem_bytes >= 0.0, "negative cost");
  Program::TaskDecl& decl = program_->tasks_[static_cast<std::size_t>(task_)];
  decl.flops = flops;
  decl.mem_bytes = mem_bytes;
  return *this;
}

TaskBuilder& TaskBuilder::body(StepFn fn) {
  ORWL_CHECK_MSG(fn != nullptr, "task body must be callable");
  program_->tasks_[static_cast<std::size_t>(task_)].fn = std::move(fn);
  return *this;
}

void TaskBuilder::declare(LocationId loc, AccessMode mode, AccessOpts opts) {
  ORWL_CHECK_MSG(loc >= 0 && loc < program_->num_locations(),
                 "unknown location " << loc);
  Program::TaskDecl& decl = program_->tasks_[static_cast<std::size_t>(task_)];
  for (const Program::AccessDecl& a : decl.accesses)
    ORWL_CHECK_MSG(!(a.location == loc && a.mode == mode),
                   "task '" << decl.name << "' declares " << to_string(mode)
                            << " access to location " << loc << " twice");
  const std::size_t loc_bytes =
      program_->locations_[static_cast<std::size_t>(loc)].bytes;
  ORWL_CHECK_MSG(opts.touch_bytes <= loc_bytes,
                 "touch_bytes " << opts.touch_bytes
                                << " exceeds location size " << loc_bytes);
  ORWL_CHECK_MSG(opts.from_round >= 0,
                 "negative from_round " << opts.from_round);
  ORWL_CHECK_MSG(opts.until_round == -1 || opts.until_round > opts.from_round,
                 "empty access window [" << opts.from_round << ", "
                                         << opts.until_round << ")");
  decl.accesses.push_back({loc, mode, opts.rank, opts.touch_bytes,
                           program_->next_seq_++, opts.from_round,
                           opts.until_round});
}

comm::CommMatrix Program::static_comm_matrix() const {
  // Same rule as Runtime::static_comm_matrix(): every pair of tasks
  // holding handles on the same location gets an affinity of the
  // location's size ("we cluster threads that share data").
  comm::CommMatrix m(num_tasks());
  for (LocationId loc = 0; loc < num_locations(); ++loc) {
    const auto bytes =
        static_cast<double>(locations_[static_cast<std::size_t>(loc)].bytes);
    if (bytes == 0.0) continue;
    std::vector<TaskId> sharers;
    for (TaskId t = 0; t < num_tasks(); ++t) {
      for (const AccessDecl& a :
           tasks_[static_cast<std::size_t>(t)].accesses) {
        if (a.location != loc) continue;
        if (std::find(sharers.begin(), sharers.end(), t) == sharers.end())
          sharers.push_back(t);
      }
    }
    for (std::size_t i = 0; i < sharers.size(); ++i)
      for (std::size_t j = i + 1; j < sharers.size(); ++j)
        m.add(sharers[i], sharers[j], bytes);
  }
  return m;
}

std::vector<std::pair<int, int>> Program::prime_sequence() const {
  struct Key {
    int rank;
    std::size_t seq;
    int task;
    int access;
  };
  std::vector<Key> keys;
  for (int t = 0; t < num_tasks(); ++t) {
    const TaskDecl& decl = tasks_[static_cast<std::size_t>(t)];
    for (int a = 0; a < static_cast<int>(decl.accesses.size()); ++a) {
      const AccessDecl& acc = decl.accesses[static_cast<std::size_t>(a)];
      keys.push_back({acc.rank, acc.seq, t, a});
    }
  }
  std::sort(keys.begin(), keys.end(), [](const Key& x, const Key& y) {
    return x.rank != y.rank ? x.rank < y.rank : x.seq < y.seq;
  });
  std::vector<std::pair<int, int>> out;
  out.reserve(keys.size());
  for (const Key& k : keys) out.emplace_back(k.task, k.access);
  return out;
}

void Program::validate_executable() const {
  ORWL_CHECK_MSG(!tasks_.empty(), "program has no tasks");
  for (const TaskDecl& decl : tasks_)
    ORWL_CHECK_MSG(decl.fn != nullptr,
                   "task '" << decl.name << "' has no body");
}

RunReport Program::run(Backend& backend) const { return backend.run(*this); }

}  // namespace orwl
