#pragma once
// Task: one ORWL operation, executed by an independent compute thread.

#include <functional>

#include "orwl/fwd.h"

namespace orwl {

class Runtime;
class Handle;

/// Execution context passed to a task body.
class TaskContext {
 public:
  TaskContext(Runtime& rt, TaskId id) : runtime_(rt), id_(id) {}

  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] TaskId id() const { return id_; }

  /// Handle lookup (must belong to this task).
  Handle& handle(HandleId h);

 private:
  Runtime& runtime_;
  TaskId id_;
};

/// A task body. Runs on its own thread; communicates only through handles.
using TaskFn = std::function<void(TaskContext&)>;

}  // namespace orwl
