#pragma once
// Runtime: owns locations, tasks, handles and the control threads; runs the
// whole ORWL program. This is the decentralized event-based runtime of the
// paper plus the binding hooks the placement module drives.
//
// NOTE FOR NEWCOMERS: this is the low-level, byte-span layer. Applications
// should normally be written against the typed orwl::Program front-end
// (orwl/program.h) — typed locations, fluent task declarations, sections
// that renew themselves — and executed through a Backend (orwl/backend.h),
// which drives this Runtime (or the simulator) for you, placement
// included. The raw API below stays supported for runtime-internal work
// and for code that needs manual handle control.
//
// Typical (low-level) use:
//   Runtime rt;
//   auto data  = rt.add_location(nbytes, "block0");
//   auto t     = rt.add_task("main0", body);
//   auto h     = rt.add_handle(t, data, AccessMode::Write);
//   rt.set_compute_binding(t, cpuset);        // optional (ORWL Bind)
//   rt.run();                                 // primes FIFOs, spawns, joins
//
// Handle registration order defines the canonical initial FIFO insertion
// order — the ORWL liveness discipline for iterative programs.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm_matrix.h"
#include "orwl/events.h"
#include "orwl/handle.h"
#include "orwl/instrument.h"
#include "orwl/location.h"
#include "orwl/task.h"
#include "topo/bitmap.h"

namespace orwl {

struct RuntimeOptions {
  /// How lock grants reach the waiting compute thread.
  enum class ControlMode {
    Direct,      ///< granted in the releaser's context (no control threads)
    PerTask,     ///< routed through the owning task's control thread
    SharedPool,  ///< routed through a small pool of control threads
  };
  ControlMode control = ControlMode::PerTask;

  /// Pool size for ControlMode::SharedPool. Tasks are assigned to pool
  /// threads round-robin (task id modulo pool size).
  int shared_control_threads = 2;

  /// Record the measured communication-flow matrix (small overhead).
  bool record_flows = true;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- program construction (single-threaded, before run()) -------------

  /// Create a location holding `bytes` bytes (zero-initialized).
  LocationId add_location(std::size_t bytes, std::string name = {});

  /// Create a task (one compute thread; one control thread in PerTask
  /// mode).
  TaskId add_task(std::string name, TaskFn fn);

  /// Register task access to a location. When `prime` is true the runtime
  /// inserts the first request during run() start-up, in registration
  /// order.
  HandleId add_handle(TaskId task, LocationId location, AccessMode mode,
                      bool prime = true);

  // --- placement hooks ---------------------------------------------------

  /// Bind the task's compute thread to the given cpuset for the whole run.
  void set_compute_binding(TaskId task, topo::Bitmap cpuset);
  /// Bind the task's control thread (PerTask mode).
  void set_control_binding(TaskId task, topo::Bitmap cpuset);
  /// Bind a shared-pool control thread (SharedPool mode).
  void set_shared_control_binding(int pool_index, topo::Bitmap cpuset);

  // --- accessors ----------------------------------------------------------

  [[nodiscard]] int num_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] int num_locations() const {
    return static_cast<int>(locations_.size());
  }
  [[nodiscard]] int num_handles() const {
    return static_cast<int>(handles_.size());
  }

  Handle& handle(HandleId h);
  [[nodiscard]] const std::string& task_name(TaskId t) const;

  /// Direct buffer access for pre-run initialization (first touch!) and
  /// post-run result extraction. Do not use while tasks are running.
  std::span<std::byte> location_data(LocationId loc);
  [[nodiscard]] std::size_t location_size(LocationId loc) const;

  // --- execution ----------------------------------------------------------

  /// Prime the FIFOs, spawn control + compute threads, wait for all task
  /// bodies to return. Runs once; a second call throws. Exceptions thrown
  /// by task bodies are rethrown here (first one wins).
  void run();

  // --- communication matrices (paper Sec. II) -----------------------------

  /// Static matrix derived from handle registrations: producers (Write
  /// handles) exchange the location size with every consumer (Read handle)
  /// and with co-producers.
  [[nodiscard]] comm::CommMatrix static_comm_matrix() const;

  /// Measured matrix from recorded grant flows (available after run()).
  [[nodiscard]] comm::CommMatrix measured_comm_matrix() const;

  [[nodiscard]] const Instrument& stats() const { return stats_; }

 private:
  struct TaskRec {
    std::string name;
    TaskFn fn;
    std::optional<topo::Bitmap> compute_bind;
    std::optional<topo::Bitmap> control_bind;
    std::unique_ptr<EventQueue> events;
  };

  void dispatch_grant(Request& req);  // GrantSink target
  void control_loop(TaskId task);
  void shared_control_loop(int pool_index);

  RuntimeOptions opts_;
  std::vector<std::unique_ptr<LocationBuffer>> locations_;
  std::vector<TaskRec> tasks_;
  std::vector<std::unique_ptr<Handle>> handles_;
  std::vector<HandleId> prime_order_;
  std::vector<std::unique_ptr<EventQueue>> shared_queues_;
  std::vector<std::optional<topo::Bitmap>> shared_bindings_;
  Instrument stats_;
  bool ran_ = false;
};

}  // namespace orwl
