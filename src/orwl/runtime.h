#pragma once
// Runtime: owns locations, tasks, handles and the control threads; runs the
// whole ORWL program. This is the decentralized event-based runtime of the
// paper plus the binding hooks the placement module drives.
//
// NOTE FOR NEWCOMERS: this is the low-level, byte-span layer. Applications
// should normally be written against the typed orwl::Program front-end
// (orwl/program.h) — typed locations, fluent task declarations, sections
// that renew themselves — and executed through a Backend (orwl/backend.h),
// which drives this Runtime (or the simulator) for you, placement
// included. The raw API below stays supported for runtime-internal work
// and for code that needs manual handle control.
//
// Typical (low-level) use:
//   Runtime rt;
//   auto data  = rt.add_location(nbytes, "block0");
//   auto t     = rt.add_task("main0", body);
//   auto h     = rt.add_handle(t, data, AccessMode::Write);
//   rt.set_compute_binding(t, cpuset);        // optional (ORWL Bind)
//   rt.run();                                 // primes FIFOs, spawns, joins
//
// Handle registration order defines the canonical initial FIFO insertion
// order — the ORWL liveness discipline for iterative programs.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm_matrix.h"
#include "mem/policy.h"
#include "mem/segment.h"
#include "obs/metrics.h"
#include "orwl/events.h"
#include "orwl/handle.h"
#include "orwl/instrument.h"
#include "orwl/location.h"
#include "orwl/task.h"
#include "support/thread_annotations.h"
#include "sync/adaptive_wait.h"
#include "sync/mutex.h"
#include "sync/wait_strategy.h"
#include "topo/binding.h"
#include "topo/bitmap.h"

namespace orwl::mem {
class NumaInfo;
}
namespace orwl::topo {
class Topology;
}

namespace orwl {

struct RuntimeOptions {
  /// How lock grants reach the waiting compute thread.
  enum class ControlMode {
    Direct,      ///< granted in the releaser's context (no control threads)
    PerTask,     ///< routed through the owning task's control thread
    SharedPool,  ///< routed through a small pool of control threads
  };
  ControlMode control = ControlMode::PerTask;

  /// Pool size for ControlMode::SharedPool. Tasks are assigned to pool
  /// threads round-robin (task id modulo pool size).
  int shared_control_threads = 2;

  /// Record the measured communication-flow matrix (small overhead).
  bool record_flows = true;

  /// Inline idle delivery: when a grant is announced and the target
  /// control queue's backlog is empty, the announcing thread delivers the
  /// grant itself (one notify on the waiter's state word) instead of
  /// posting an event — skipping a control-thread hop (futex wake, context
  /// switch, futex wake) that buys nothing when there is no backlog to
  /// batch. The lock-free grant path makes this safe: announcement holds
  /// no lock, so the woken thread's next queue operation cannot convoy
  /// behind the announcer. Control threads still drain bursts. Ignored in
  /// ControlMode::Direct (delivery is already inline).
  bool inline_idle_delivery = true;

  /// Batched shared-read grants: a head run of >= 2 concurrent readers is
  /// announced through ONE GrantSink::on_grant_batch call and routed with
  /// one event post (one lock round-trip, one wake) per destination
  /// control queue, instead of a virtual call + queue hop per reader. Off
  /// reproduces the per-grant announcement sequence exactly (benches A/B
  /// the two; delivery order within a run is unchanged either way).
  bool batch_grants = true;

  /// How every parking point of this runtime waits (handle grant waits,
  /// control-thread event pops, the epoch barrier): block, spin, or
  /// spin-then-park. See sync/wait_strategy.h.
  sync::WaitStrategy wait{};

  /// Where location pages live (mem/policy.h): the process heap (default)
  /// or NUMA-aware mmap segments that place_location_memory() binds to the
  /// planned writers' nodes / interleaves across nodes. Falls back to the
  /// heap on hosts without the NUMA syscalls.
  mem::MemoryPolicy memory = mem::MemoryPolicy::Heap;

  /// How this runtime reaches its peers (cross-address-space ORWL).
  /// Inproc: every task lives in this process (the default; nothing
  /// changes). Shm: some locations live in a shared mapping and an ipc::
  /// endpoint (OwnerEndpoint or PeerEndpoint) is wired onto this runtime —
  /// the option is carried through RuntimeBackend so programs select the
  /// transport the same way they select control/memory policy.
  enum class Transport : std::uint8_t { Inproc, Shm };
  Transport transport = Transport::Inproc;
};

/// The Runtime itself is the GrantSink of every location FIFO: a grant
/// announcement is a virtual call on `this`, never an allocation.
class Runtime : private GrantSink {
 public:
  explicit Runtime(RuntimeOptions opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- program construction (single-threaded, before run()) -------------

  /// Create a location holding `bytes` bytes (zero-initialized).
  LocationId add_location(std::size_t bytes, std::string name = {});

  /// Create a task (one compute thread; one control thread in PerTask
  /// mode).
  TaskId add_task(std::string name, TaskFn fn);

  /// Register task access to a location. When `prime` is true the runtime
  /// inserts the first request during run() start-up, in registration
  /// order.
  HandleId add_handle(TaskId task, LocationId location, AccessMode mode,
                      bool prime = true);

  // --- cross-address-space locations (RuntimeOptions::transport) ----------

  /// Create a location whose bytes live in memory owned elsewhere — a
  /// window into an ipc:: shared segment. The mapping must outlive the
  /// runtime; the FIFO (and grant arbitration) still live here, in the
  /// process that calls this. Requires Transport::Shm.
  LocationId add_shared_location(std::span<std::byte> bytes,
                                 std::string name = {});

  /// Redirect a location's handle operations to `port` (peer side of the
  /// shm transport: operations are forwarded to the hosting process).
  /// Single-threaded setup only, before run(). Requires Transport::Shm.
  void set_location_port(LocationId loc, RequestPort* port);

  /// The location's local FIFO (the ipc:: owner endpoint inserts proxied
  /// peer requests into it directly).
  [[nodiscard]] FifoQueue& location_queue(LocationId loc);

  /// Sink that receives grants whose request is owned by a remote peer
  /// (Request::owner == kRemoteOwner) instead of a local task — the
  /// ipc::RemoteGrantSink publishing into the shm ring. Non-owning; must
  /// outlive run(). Requires Transport::Shm.
  void set_remote_sink(GrantSink* sink);

  /// Deliver one granted request to its local waiter per this runtime's
  /// ControlMode (the delivery half of on_grant, minus stats). Used by the
  /// ipc:: peer pump to hand ring grants to parked handles; `req.owner`
  /// must be a local task.
  void route_grant(Request& req);

  // --- placement hooks ---------------------------------------------------

  /// Bind the task's compute thread to the given cpuset for the whole run.
  void set_compute_binding(TaskId task, topo::Bitmap cpuset);
  /// Bind the task's control thread (PerTask mode).
  void set_control_binding(TaskId task, topo::Bitmap cpuset);
  /// Bind a shared-pool control thread (SharedPool mode).
  void set_shared_control_binding(int pool_index, topo::Bitmap cpuset);

  // --- epochs (online re-placement) ---------------------------------------
  //
  // An epoch is a window of `epoch_length` iterations. Task bodies built by
  // the backends call epoch_arrive() between iterations at every epoch
  // boundary; the arrivals form a barrier over all not-yet-retired tasks.
  // When the last participant arrives, the installed hook runs in that
  // thread — with every other participating compute thread parked — and may
  // inspect the Instrument's epoch window and rebind threads before the
  // barrier releases. Tasks leave the barrier population with
  // epoch_retire() (idempotent; called automatically when a task body
  // returns) so heterogeneous iteration counts cannot deadlock a boundary.

  /// Runs at each epoch boundary: `epoch` counts boundaries from 1, `round`
  /// is the iteration index about to start.
  using EpochHook = std::function<void(int epoch, int round)>;

  /// Install the epoch schedule. Call before run(); epoch_length >= 1.
  void set_epoch_hook(int epoch_length, EpochHook hook);
  [[nodiscard]] int epoch_length() const { return epoch_length_; }

  /// Barrier arrival at the boundary before iteration `round`. Blocks
  /// until the boundary completes. No-op when no hook is installed.
  void epoch_arrive(TaskId task, int round);
  /// The task will make no further epoch_arrive() calls.
  void epoch_retire(TaskId task);

  /// Re-bind a live thread mid-run (epoch-hook context: the compute
  /// threads are parked at the barrier). Returns false when the thread
  /// cannot be rebound — not yet started, already exited, or (control) not
  /// running in PerTask mode.
  bool rebind_compute_thread(TaskId task, const topo::Bitmap& cpuset);
  bool rebind_control_thread(TaskId task, const topo::Bitmap& cpuset);

  // --- location memory placement (RuntimeOptions::memory) ----------------

  /// Place every location's pages according to the memory policy, given
  /// the compute mapping the placement produced (logical PU per task, -1
  /// unbound): numa_local targets the NUMA node of each location's
  /// planned writer (its first Write handle in registration order),
  /// numa_interleave spreads pages across all nodes; heap is a no-op.
  /// Already-touched pages are migrated (MPOL_MF_MOVE), so this serves
  /// both the initial apply_plan and epoch-boundary re-placement — call
  /// it only before run() or from an epoch hook (compute threads parked).
  /// `numa` overrides the host node inventory (tests); pass nullptr for
  /// the real machine. Returns the number of locations whose target
  /// changed (intent — on fallback hosts the kernel may not move bytes).
  int place_location_memory(const std::vector<int>& compute_pu,
                            const topo::Topology& topo,
                            const mem::NumaInfo* numa = nullptr);

  /// Intended NUMA node of a location's pages; -1 = unconstrained.
  [[nodiscard]] int location_node(LocationId loc) const;
  /// The backing segment (tests/diagnostics).
  [[nodiscard]] const mem::Segment& location_storage(LocationId loc) const;
  [[nodiscard]] mem::MemoryPolicy memory_policy() const {
    return opts_.memory;
  }

  // --- accessors ----------------------------------------------------------

  [[nodiscard]] int num_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] int num_locations() const {
    return static_cast<int>(locations_.size());
  }
  [[nodiscard]] int num_handles() const {
    return static_cast<int>(handles_.size());
  }

  Handle& handle(HandleId h);
  [[nodiscard]] const std::string& task_name(TaskId t) const;

  /// Direct buffer access for pre-run initialization (first touch!) and
  /// post-run result extraction. Do not use while tasks are running.
  std::span<std::byte> location_data(LocationId loc);
  [[nodiscard]] std::size_t location_size(LocationId loc) const;

  // --- execution ----------------------------------------------------------

  /// Prime the FIFOs, spawn control + compute threads, wait for all task
  /// bodies to return. Runs once; a second call throws. Exceptions thrown
  /// by task bodies are rethrown here (first one wins).
  void run();

  // --- communication matrices (paper Sec. II) -----------------------------

  /// Static matrix derived from handle registrations: producers (Write
  /// handles) exchange the location size with every consumer (Read handle)
  /// and with co-producers.
  [[nodiscard]] comm::CommMatrix static_comm_matrix() const;

  /// Measured matrix from recorded grant flows (available after run()).
  [[nodiscard]] comm::CommMatrix measured_comm_matrix() const;

  [[nodiscard]] const Instrument& stats() const { return stats_; }
  /// Mutable access for epoch-window management (begin_epoch).
  [[nodiscard]] Instrument& stats() { return stats_; }

  /// This runtime's metric store: the Instrument counters plus the
  /// per-handle wait-round / acquire-latency histograms. Snapshot it after
  /// run() (or from an epoch hook) for an exact read.
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }

 private:
  struct TaskRec {
    std::string name;
    TaskFn fn;
    std::optional<topo::Bitmap> compute_bind;
    std::optional<topo::Bitmap> control_bind;
    std::unique_ptr<EventQueue> events;
  };

  /// GrantSink: called by a location FIFO (its lock held) for every newly
  /// granted request — records stats and routes delivery per ControlMode.
  // sink-contract: no-queue-reentry — only posts to event queues / notifies
  // the waiter; never calls back into the announcing FifoQueue.
  void on_grant(Request& req) override;
  /// GrantSink: one announcement for a whole shared-read run. Bookkeeping
  /// is per request (identical to on_grant); routing is grouped so each
  /// destination control queue is hit once per run.
  // sink-contract: no-queue-reentry — same as on_grant; only posts to
  // event queues / notifies waiters, never re-enters the announcing queue.
  void on_grant_batch(std::span<Request* const> reqs) override;
  /// Deliver a batch of LOCAL granted requests per ControlMode, posting at
  /// most one event batch per destination queue. Serialized per location
  /// by the combiner; safe across locations (thread-local scratch only).
  void route_grant_batch(std::span<Request* const> reqs);
  /// Re-derive every Auto handle's spin budget from its wait-round
  /// histogram's last-epoch window (epoch-boundary context: compute
  /// threads parked, so the snapshots are exact). No-op unless
  /// RuntimeOptions::wait is spin_then_park(auto).
  void retune_wait_budgets();
  void control_loop(TaskId task);
  void shared_control_loop(int pool_index);
  /// Deliver a drained event batch, coalescing duplicate announcements of
  /// the same request (one notify per handle per pass).
  static void deliver_batch(const std::vector<Event>& batch);
  /// Complete the current epoch boundary: run the hook (lock released
  /// while it executes), then wake the parked tasks. Caller holds `lock`
  /// on esync_mu_; the analysis cannot follow a capability through a lock
  /// object passed by reference, hence the opt-out.
  void epoch_fire(sync::UniqueLock& lock) ORWL_NO_THREAD_SAFETY_ANALYSIS;

  RuntimeOptions opts_;
  mem::Arena arena_;
  std::vector<std::unique_ptr<LocationBuffer>> locations_;
  std::vector<TaskRec> tasks_;
  std::vector<std::unique_ptr<Handle>> handles_;
  std::vector<HandleId> prime_order_;
  std::vector<std::unique_ptr<EventQueue>> shared_queues_;
  std::vector<std::optional<topo::Bitmap>> shared_bindings_;
  obs::Registry metrics_;  // declared before stats_: Instrument borrows it
  Instrument stats_;

  /// Self-tuning wait state, one per handle when RuntimeOptions::wait is
  /// Auto (empty otherwise). unique_ptr: handles keep a pointer to the
  /// budget, so records must not move when the vector grows.
  struct WaitTuneRec {
    sync::AdaptiveWaitBudget budget;
    obs::Histogram* wait_rounds = nullptr;  ///< source histogram
    obs::Gauge* budget_gauge = nullptr;     ///< exported current budget
    /// Bucket snapshot at the previous retune; retunes act on the delta.
    std::array<std::uint64_t, obs::HistogramSnapshot::kBuckets> last{};
  };
  std::vector<std::unique_ptr<WaitTuneRec>> wait_tuners_;

  GrantSink* remote_sink_ = nullptr;
  bool ran_ = false;

  // Epoch barrier state, guarded by esync_mu_ — except the generation
  // word, which parked arrivals wait on through the sync:: waiter (the
  // same strategy as every other parking point). Thread handles are
  // registered under the same mutex (compute threads self-register before
  // their first possible arrival; control handles are recorded before any
  // compute thread exists), so the hook always sees them.
  int epoch_length_ = 0;
  EpochHook epoch_hook_;
  sync::Mutex esync_mu_;
  /// Tasks still participating.
  int esync_members_ ORWL_GUARDED_BY(esync_mu_) = 0;
  /// Arrivals at the current boundary.
  int esync_arrived_ ORWL_GUARDED_BY(esync_mu_) = 0;
  /// Completed boundaries; bumped (release) when a boundary fires and
  /// notified so parked arrivals resume.
  std::atomic<std::uint32_t> esync_generation_{0};
  /// Round of the boundary being formed.
  int esync_round_ ORWL_GUARDED_BY(esync_mu_) = 0;
  std::vector<char> esync_retired_ ORWL_GUARDED_BY(esync_mu_);
  std::vector<std::optional<topo::ThreadHandle>> compute_handles_
      ORWL_GUARDED_BY(esync_mu_);
  std::vector<std::optional<topo::ThreadHandle>> control_handles_
      ORWL_GUARDED_BY(esync_mu_);
};

}  // namespace orwl
