#include "orwl/instrument.h"

#include "support/assert.h"
#include "support/thread.h"
#include "sync/mutex.h"

namespace orwl {

Instrument::Instrument(int num_tasks, obs::Registry& registry)
    : read_grants_(registry.counter("orwl.grants.read")),
      write_grants_(registry.counter("orwl.grants.write")),
      releases_(registry.counter("orwl.releases")),
      order_(num_tasks) {
  for (FlowShard& s : shards_) s.flows.resize(num_tasks);
}

bool Instrument::pristine() const {
  if (read_grants_.read() != 0 || write_grants_.read() != 0 ||
      releases_.read() != 0)
    return false;
  for (const FlowShard& s : shards_) {
    sync::LockGuard lock(s.mu);
    if (s.flows.total_volume() != 0.0) return false;
  }
  return true;
}

void Instrument::resize(int num_tasks) {
  ORWL_CHECK_MSG(num_tasks >= order_,
                 "instrument cannot shrink below recorded tasks");
  // Construction-phase-only contract: a resize concurrent with (or after)
  // recording would race the flow shards and silently drop edges.
  ORWL_ASSERT_MSG(pristine(),
                  "Instrument::resize after recording started; add tasks "
                  "before the run records grants or flows");
  order_ = num_tasks;
  for (FlowShard& s : shards_) {
    sync::LockGuard lock(s.mu);
    s.flows.resize(num_tasks);
  }
}

void Instrument::record_grant(AccessMode mode) {
  (mode == AccessMode::Read ? read_grants_ : write_grants_).add(1);
}

void Instrument::record_release() { releases_.add(1); }

void Instrument::record_flow(TaskId from, TaskId to, std::size_t bytes) {
  if (from < 0 || to < 0 || from == to || bytes == 0) return;
  FlowShard& shard =
      shards_[static_cast<std::size_t>(current_thread_index()) &
              (kFlowShards - 1)];
  sync::LockGuard lock(shard.mu);
  if (from >= shard.flows.order() || to >= shard.flows.order()) return;
  shard.flows.add(from, to, static_cast<double>(bytes));
}

comm::CommMatrix Instrument::flow_matrix() const {
  comm::CommMatrix total;
  for (const FlowShard& s : shards_) {
    sync::LockGuard lock(s.mu);
    if (total.order() < s.flows.order()) total.resize(s.flows.order());
    for (int i = 0; i < s.flows.order(); ++i)
      for (int j = i + 1; j < s.flows.order(); ++j) {
        const double v = s.flows.at(i, j);
        if (v != 0.0) total.add(i, j, v);
      }
  }
  return total;
}

void Instrument::begin_epoch() {
  comm::CommMatrix snapshot = flow_matrix();
  sync::LockGuard lock(epoch_mu_);
  epoch_base_ = std::move(snapshot);
}

comm::CommMatrix Instrument::epoch_flow_matrix() const {
  const comm::CommMatrix now = flow_matrix();
  sync::LockGuard lock(epoch_mu_);
  comm::CommMatrix delta(now.order());
  for (int i = 0; i < now.order(); ++i) {
    for (int j = i + 1; j < now.order(); ++j) {
      const double base = i < epoch_base_.order() && j < epoch_base_.order()
                              ? epoch_base_.at(i, j)
                              : 0.0;
      const double d = now.at(i, j) - base;
      if (d > 0.0) delta.set(i, j, d);
    }
  }
  return delta;
}

}  // namespace orwl
