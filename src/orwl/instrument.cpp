#include "orwl/instrument.h"

#include "support/assert.h"

namespace orwl {

Instrument::Instrument(int num_tasks) : flows_(num_tasks) {}

void Instrument::resize(int num_tasks) {
  std::lock_guard lock(mu_);
  ORWL_CHECK_MSG(num_tasks >= flows_.order(),
                 "instrument cannot shrink below recorded tasks");
  flows_.resize(num_tasks);
}

void Instrument::record_grant(AccessMode mode) {
  auto& ctr = mode == AccessMode::Read ? read_grants_ : write_grants_;
  ctr.fetch_add(1, std::memory_order_relaxed);
}

void Instrument::record_release() {
  releases_.fetch_add(1, std::memory_order_relaxed);
}

void Instrument::record_flow(TaskId from, TaskId to, std::size_t bytes) {
  if (from < 0 || to < 0 || from == to || bytes == 0) return;
  std::lock_guard lock(mu_);
  if (from >= flows_.order() || to >= flows_.order()) return;
  flows_.add(from, to, static_cast<double>(bytes));
}

comm::CommMatrix Instrument::flow_matrix() const {
  std::lock_guard lock(mu_);
  return flows_;
}

void Instrument::begin_epoch() {
  std::lock_guard lock(mu_);
  epoch_base_ = flows_;
}

comm::CommMatrix Instrument::epoch_flow_matrix() const {
  std::lock_guard lock(mu_);
  comm::CommMatrix delta(flows_.order());
  for (int i = 0; i < flows_.order(); ++i) {
    for (int j = i + 1; j < flows_.order(); ++j) {
      const double base =
          i < epoch_base_.order() && j < epoch_base_.order()
              ? epoch_base_.at(i, j)
              : 0.0;
      const double d = flows_.at(i, j) - base;
      if (d > 0.0) delta.set(i, j, d);
    }
  }
  return delta;
}

}  // namespace orwl
