#include "orwl/backend.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"
#include "support/rng.h"
#include "support/time.h"

namespace orwl {

namespace {

/// Build the program into a runtime: locations, tasks whose bodies run the
/// per-iteration Step loop, and handles registered in the program's
/// canonical priming order.
void build_runtime(const Program& program, Runtime& rt) {
  program.validate_executable();

  for (const Program::LocationDecl& loc : program.location_decls())
    rt.add_location(loc.bytes, loc.name);

  // Slot tables are filled after handle registration below; the task
  // lambdas only dereference them once the runtime actually runs.
  std::vector<std::shared_ptr<std::vector<Step::Slot>>> tables;
  tables.reserve(program.task_decls().size());

  for (const Program::TaskDecl& decl : program.task_decls()) {
    auto table = std::make_shared<std::vector<Step::Slot>>();
    tables.push_back(table);
    rt.add_task(decl.name,
                [fn = decl.fn, rounds = decl.iterations,
                 table](TaskContext& ctx) {
                  // Copy: pending flags are per-execution state.
                  Step step(ctx.runtime(), ctx.id(), rounds, *table);
                  for (int r = 0; r < rounds; ++r) {
                    step.set_round(r);
                    fn(step);
                  }
                  step.drain();
                });
  }

  for (const auto& [task, access] : program.prime_sequence()) {
    const Program::AccessDecl& acc =
        program.task_decls()[static_cast<std::size_t>(task)]
            .accesses[static_cast<std::size_t>(access)];
    const HandleId h = rt.add_handle(task, acc.location, acc.mode,
                                     /*prime=*/true);
    tables[static_cast<std::size_t>(task)]->push_back(
        {acc.location, acc.mode, h, /*pending=*/true});
  }
}

void apply_inits(const Program& program, Runtime& rt) {
  for (const Program::InitHook& hook : program.init_hooks())
    hook.fn(rt.location_data(hook.location));
}

place::Plan plan_for(const Program& program, const topo::Topology& topo,
                     const comm::CommMatrix& m) {
  // An explicit placement matrix (the measured-flow feedback loop) beats
  // the backend's default static matrix.
  const std::optional<comm::CommMatrix>& override = program.placement_matrix();
  if (override) {
    ORWL_CHECK_MSG(override->order() == program.num_tasks(),
                   "placement matrix order " << override->order()
                                             << " != task count "
                                             << program.num_tasks());
  }
  return place::compute_plan(*program.policy(), topo, override ? *override : m,
                             program.treematch_options(),
                             program.place_seed());
}

}  // namespace

// --------------------------------------------------------------------------
// RuntimeBackend
// --------------------------------------------------------------------------

RuntimeBackend::RuntimeBackend(RuntimeOptions opts)
    : opts_(opts), topo_(topo::Topology::host()) {}

RuntimeBackend::RuntimeBackend(RuntimeOptions opts, topo::Topology topo)
    : opts_(opts), topo_(std::move(topo)) {}

RunReport RuntimeBackend::run(const Program& program) {
  rt_ = std::make_unique<Runtime>(opts_);
  build_runtime(program, *rt_);
  apply_inits(program, *rt_);

  RunReport rep;
  rep.backend = "runtime";
  if (program.policy()) {
    rep.plan = plan_for(program, topo_, rt_->static_comm_matrix());
    place::apply_plan(rep.plan, topo_, *rt_);
    rep.placed = true;
  }

  WallTimer timer;
  rt_->run();
  rep.seconds = timer.seconds();
  rep.grants = rt_->stats().read_grants() + rt_->stats().write_grants();
  return rep;
}

std::vector<std::byte> RuntimeBackend::fetch_bytes(LocationId loc) {
  ORWL_CHECK_MSG(rt_ != nullptr, "fetch before run()");
  const std::span<std::byte> data = rt_->location_data(loc);
  return {data.begin(), data.end()};
}

Runtime& RuntimeBackend::runtime() {
  ORWL_CHECK_MSG(rt_ != nullptr, "runtime() before run()");
  return *rt_;
}

// --------------------------------------------------------------------------
// SimBackend
// --------------------------------------------------------------------------

SimBackend::SimBackend(topo::Topology topo)
    : topo_(std::move(topo)), cost_(sim::LinkCost::defaults_for(topo_)) {}

SimBackend::SimBackend(topo::Topology topo, sim::LinkCost cost,
                       SimBackendOptions opts)
    : topo_(std::move(topo)), cost_(std::move(cost)), opts_(opts) {}

sim::Workload SimBackend::workload(const Program& program) const {
  const auto& tasks = program.task_decls();
  const auto& locs = program.location_decls();

  sim::Workload load;
  load.sync = sim::SyncModel::OrwlEvents;
  load.threads.resize(tasks.size());
  load.iterations = 1;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    sim::SimThread& th = load.threads[t];
    th.flops = tasks[t].flops;
    th.mem_bytes = tasks[t].mem_bytes;
    th.acquires = static_cast<int>(tasks[t].accesses.size());
    load.iterations = std::max(load.iterations, tasks[t].iterations);
  }

  // Exchange edges: for every location, each (writer, reader) task pair
  // moves the smaller of the two declared touch extents (a frontier op
  // reads a whole block but only ships one face).
  struct Party {
    int task;
    double bytes;
  };
  std::vector<std::vector<Party>> writers(locs.size()), readers(locs.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const Program::AccessDecl& acc : tasks[t].accesses) {
      const auto li = static_cast<std::size_t>(acc.location);
      const double bytes = static_cast<double>(
          acc.touch_bytes > 0 ? acc.touch_bytes : locs[li].bytes);
      auto& side = acc.mode == AccessMode::Write ? writers[li] : readers[li];
      side.push_back({static_cast<int>(t), bytes});
    }
  }
  for (std::size_t li = 0; li < locs.size(); ++li)
    for (const Party& w : writers[li])
      for (const Party& r : readers[li]) {
        if (w.task == r.task) continue;
        load.edges.push_back({w.task, r.task, std::min(w.bytes, r.bytes)});
      }
  return load;
}

RunReport SimBackend::run(const Program& program) {
  ORWL_CHECK_MSG(program.num_tasks() > 0, "program has no tasks");
  const sim::Workload load = workload(program);
  const int n = program.num_tasks();
  const int npus = topo_.num_pus();

  RunReport rep;
  rep.backend = "sim";

  sim::Placement placement;
  if (program.policy()) {
    rep.plan = plan_for(program, topo_, program.static_comm_matrix());
    rep.placed = true;
    placement.compute_pu = rep.plan.compute_pu;
    placement.control_pu = rep.plan.control_pu;
  } else {
    placement.compute_pu.assign(static_cast<std::size_t>(n), -1);
    placement.control_pu.assign(static_cast<std::size_t>(n), -1);
  }
  // Bound tasks: an unmanaged control thread rides on the compute PU
  // (mirrors place::apply_plan) and the owner first-touches its own data.
  // Unbound tasks: the control path stays unmanaged and first touch lands
  // wherever the OS started the thread (seeded lottery).
  placement.data_home_pu.resize(static_cast<std::size_t>(n));
  Xoshiro256 rng(opts_.seed);
  for (int t = 0; t < n; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    const int cpu = placement.compute_pu[ti];
    if (cpu >= 0) {
      if (placement.control_pu[ti] < 0) placement.control_pu[ti] = cpu;
      placement.data_home_pu[ti] = cpu;
    } else {
      placement.data_home_pu[ti] = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(npus)));
    }
  }

  last_ = sim::simulate(topo_, cost_, load, placement, opts_.seed);
  rep.sim = last_;
  rep.seconds = last_.total_seconds;
  std::uint64_t acquires = 0;
  for (const Program::TaskDecl& task : program.task_decls())
    acquires += static_cast<std::uint64_t>(task.accesses.size()) *
                static_cast<std::uint64_t>(task.iterations);
  rep.grants = acquires;

  if (opts_.emulate) {
    RuntimeOptions ro;
    ro.control = RuntimeOptions::ControlMode::Direct;
    emu_rt_ = std::make_unique<Runtime>(ro);
    build_runtime(program, *emu_rt_);
    apply_inits(program, *emu_rt_);
    emu_rt_->run();
  } else {
    emu_rt_.reset();
  }
  return rep;
}

Runtime& SimBackend::emulated_runtime() {
  ORWL_CHECK_MSG(emu_rt_ != nullptr,
                 "emulated_runtime() needs SimBackendOptions::emulate and a "
                 "prior run()");
  return *emu_rt_;
}

std::vector<std::byte> SimBackend::fetch_bytes(LocationId loc) {
  ORWL_CHECK_MSG(emu_rt_ != nullptr,
                 "SimBackend::fetch needs SimBackendOptions::emulate and a "
                 "prior run()");
  const std::span<std::byte> data = emu_rt_->location_data(loc);
  return {data.begin(), data.end()};
}

}  // namespace orwl
