#include "orwl/backend.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "place/replace.h"
#include "support/assert.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/time.h"

namespace orwl {

namespace {

/// Build the program into a runtime: locations, tasks whose bodies run the
/// per-iteration Step loop, and handles registered in the program's
/// canonical priming order.
void build_runtime(const Program& program, Runtime& rt) {
  program.validate_executable();

  for (const Program::LocationDecl& loc : program.location_decls())
    rt.add_location(loc.bytes, loc.name);

  // Slot tables are filled after handle registration below; the task
  // lambdas only dereference them once the runtime actually runs.
  std::vector<std::shared_ptr<std::vector<Step::Slot>>> tables;
  tables.reserve(program.task_decls().size());

  for (const Program::TaskDecl& decl : program.task_decls()) {
    auto table = std::make_shared<std::vector<Step::Slot>>();
    tables.push_back(table);
    rt.add_task(decl.name,
                [fn = decl.fn, rounds = decl.iterations,
                 table](TaskContext& ctx) {
                  // Copy: pending flags are per-execution state.
                  Step step(ctx.runtime(), ctx.id(), rounds, *table);
                  Runtime& runtime = ctx.runtime();
                  for (int r = 0; r < rounds; ++r) {
                    // Epoch boundary rendezvous (online re-placement);
                    // no-op unless an epoch hook is installed.
                    const int len = runtime.epoch_length();
                    if (len > 0 && r > 0 && r % len == 0)
                      runtime.epoch_arrive(ctx.id(), r);
                    step.set_round(r);
                    fn(step);
                  }
                  // Leave the epoch barrier population before draining:
                  // remaining tasks must not wait for this one at future
                  // boundaries.
                  runtime.epoch_retire(ctx.id());
                  step.drain();
                });
  }

  for (const auto& [task, access] : program.prime_sequence()) {
    const Program::AccessDecl& acc =
        program.task_decls()[static_cast<std::size_t>(task)]
            .accesses[static_cast<std::size_t>(access)];
    const HandleId h = rt.add_handle(task, acc.location, acc.mode,
                                     /*prime=*/true);
    tables[static_cast<std::size_t>(task)]->push_back(
        {acc.location, acc.mode, h, /*pending=*/true});
  }
}

void apply_inits(const Program& program, Runtime& rt) {
  for (const Program::InitHook& hook : program.init_hooks())
    hook.fn(rt.location_data(hook.location));
}

place::Plan plan_for(const Program& program, const topo::Topology& topo,
                     const comm::CommMatrix& m) {
  // An explicit placement matrix (the measured-flow feedback loop) beats
  // the backend's default static matrix.
  const std::optional<comm::CommMatrix>& override = program.placement_matrix();
  if (override) {
    ORWL_CHECK_MSG(override->order() == program.num_tasks(),
                   "placement matrix order " << override->order()
                                             << " != task count "
                                             << program.num_tasks());
  }
  return place::compute_plan(*program.policy(), topo, override ? *override : m,
                             program.treematch_options(),
                             program.place_seed());
}

}  // namespace

// --------------------------------------------------------------------------
// RuntimeBackend
// --------------------------------------------------------------------------

RuntimeBackend::RuntimeBackend(RuntimeOptions opts)
    : opts_(opts), topo_(topo::Topology::host()) {}

RuntimeBackend::RuntimeBackend(RuntimeOptions opts, topo::Topology topo)
    : opts_(opts), topo_(std::move(topo)) {}

RunReport RuntimeBackend::run(const Program& program) {
  // A fresh trace window per run: whatever an earlier run left in the
  // rings is not this report's business. (Earlier runs' threads have
  // joined, so the producers are quiescent as reset() requires.)
  if (obs::tracing_enabled()) obs::reset();
  RuntimeOptions opts = opts_;
  // The program's wait-strategy and memory knobs beat the backend
  // defaults: the knobs travel with the declaration, so one Program can
  // be swept across strategies without reconstructing backends.
  if (program.wait_strategy()) opts.wait = *program.wait_strategy();
  if (program.memory_policy()) opts.memory = *program.memory_policy();
  rt_ = std::make_unique<Runtime>(opts);
  build_runtime(program, *rt_);
  apply_inits(program, *rt_);

  RunReport rep;
  rep.backend = "runtime";
  if (program.policy()) {
    rep.plan = plan_for(program, topo_, rt_->static_comm_matrix());
    place::apply_plan(rep.plan, topo_, *rt_);
    rep.placed = true;
  } else {
    // No placement plan: numa_interleave still applies (it needs no task
    // mapping), keeping the runtime in step with the sim's model;
    // numa_local has no planned writers to follow and stays first-touch.
    rt_->place_location_memory({}, topo_);
  }

  // Online re-placement: at every epoch boundary the hook reads the
  // Instrument's fresh flow window, asks the Replacer, and — when drift
  // warrants it — rebinds the live compute and control threads while they
  // are parked at the barrier. The run never stops.
  const place::ReplacementPolicy& rp = program.replacement_policy();
  std::optional<place::Replacer> replacer;
  place::Plan current = rep.plan;
  if (rp.enabled()) {
    ORWL_CHECK_MSG(program.policy(),
                   "online re-placement needs a placement policy — call "
                   "place() before replacement()");
    const std::optional<comm::CommMatrix>& basis = program.placement_matrix();
    replacer.emplace(rp, topo_, program.treematch_options(),
                     program.place_seed(),
                     basis ? *basis : rt_->static_comm_matrix());
    rt_->stats().begin_epoch();
    rt_->set_epoch_hook(
        rp.epoch_length, [this, &rep, &replacer, &current](int epoch,
                                                           int round) {
          obs::trace(obs::EventKind::ReplaceBegin,
                     static_cast<std::uint64_t>(epoch));
          WallTimer replace_timer;
          Instrument& stats = rt_->stats();
          const comm::CommMatrix window = stats.epoch_flow_matrix();
          stats.begin_epoch();
          const place::Replacer::Decision dec = replacer->evaluate(window);
          RunReport::EpochRecord rec;
          rec.epoch = epoch;
          rec.round = round;
          rec.drift = dec.drift;
          rec.replaced = dec.replaced;
          if (dec.replaced) {
            rec.migrated = place::count_migrations(current.compute_pu,
                                                   dec.plan.compute_pu);
            const auto pus = topo_.pus();
            for (TaskId t = 0; t < rt_->num_tasks(); ++t) {
              const auto ti = static_cast<std::size_t>(t);
              const int cpu = dec.plan.compute_pu[ti];
              if (cpu >= 0 &&
                  !rt_->rebind_compute_thread(
                      t, pus[static_cast<std::size_t>(cpu)]->cpuset))
                ++rec.rebind_failures;
              // Control thread follows its compute thread unless the plan
              // manages it separately (mirrors place::apply_plan).
              // Best-effort: only PerTask control threads are rebindable.
              const int ctl = dec.plan.control_pu[ti] >= 0
                                  ? dec.plan.control_pu[ti]
                                  : cpu;
              if (ctl >= 0)
                rt_->rebind_control_thread(
                    t, pus[static_cast<std::size_t>(ctl)]->cpuset);
            }
            if (rec.rebind_failures > 0) {
              ORWL_LOG(Warn)
                  << "epoch " << epoch << ": " << rec.rebind_failures
                  << " compute thread(s) could not be rebound; recorded "
                     "mapping is intent, not fact, for them";
            }
            // Location pages follow the migrated writers (numa policies;
            // no-op under heap). Safe here: the compute threads are
            // parked at the barrier, so nobody is touching the buffers.
            rec.moved_locations = rt_->place_location_memory(
                dec.plan.compute_pu, topo_);
            current = dec.plan;
            ++rep.replacements;
          }
          rec.replace_seconds = replace_timer.seconds();
          rec.compute_pu = current.compute_pu;
          obs::trace(obs::EventKind::ReplaceEnd,
                     static_cast<std::uint64_t>(rec.migrated));
          rep.epochs.push_back(std::move(rec));
        });
  }

  WallTimer timer;
  rt_->run();
  rep.seconds = timer.seconds();
  rep.grants = rt_->stats().read_grants() + rt_->stats().write_grants();
  rep.metrics = rt_->metrics().snapshot();
  if (obs::tracing_enabled()) rep.trace = obs::collect();
  return rep;
}

std::vector<std::byte> RuntimeBackend::fetch_bytes(LocationId loc) {
  ORWL_CHECK_MSG(rt_ != nullptr, "fetch before run()");
  const std::span<std::byte> data = rt_->location_data(loc);
  return {data.begin(), data.end()};
}

Runtime& RuntimeBackend::runtime() {
  ORWL_CHECK_MSG(rt_ != nullptr, "runtime() before run()");
  return *rt_;
}

// --------------------------------------------------------------------------
// SimBackend
// --------------------------------------------------------------------------

SimBackend::SimBackend(topo::Topology topo)
    : topo_(std::move(topo)), cost_(sim::LinkCost::defaults_for(topo_)) {}

SimBackend::SimBackend(topo::Topology topo, sim::LinkCost cost,
                       SimBackendOptions opts)
    : topo_(std::move(topo)), cost_(std::move(cost)), opts_(opts) {}

namespace {

/// An exchange edge annotated with the rounds in which it is active —
/// the intersection of the two declared access windows, clipped to the
/// run length. Phase-stationary programs get [0, iterations) everywhere.
struct WindowedEdge {
  int a = 0;
  int b = 0;
  double bytes = 0.0;  ///< per active round
  int from = 0;
  int until = 0;  ///< exclusive
};

int window_overlap(const WindowedEdge& e, int r0, int r1) {
  return std::max(0, std::min(e.until, r1) - std::max(e.from, r0));
}

/// One declared access's active window, clipped to the run length.
struct AccessWindow {
  int from = 0;
  int until = 0;  ///< exclusive
  LocationId location = -1;
  /// Read access. Whether its grants arrive as members of a batched
  /// shared-read run (FifoQueue::on_grant_batch) is decided per segment
  /// from the OTHER reader windows actually overlapping there
  /// (apply_segment_acquires) — a phase where this is the lone active
  /// reader is granted, and charged, singly.
  bool is_read = false;
};

struct DerivedLoad {
  sim::Workload base;  ///< threads, sync model, iterations; edges empty
  std::vector<WindowedEdge> edges;
  /// Per task: the active windows of its declared accesses — the source
  /// of per-segment acquire counts (lock-cost parity with the runtime,
  /// which only acquires phase-active handles).
  std::vector<std::vector<AccessWindow>> access_windows;
  std::size_t num_locations = 0;
  /// Modelled grand total of lock acquisitions over the whole run.
  std::uint64_t total_grants = 0;
};

DerivedLoad derive_load(const Program& program) {
  const auto& tasks = program.task_decls();
  const auto& locs = program.location_decls();

  DerivedLoad out;
  sim::Workload& load = out.base;
  load.sync = sim::SyncModel::OrwlEvents;
  // Programs that opted into a spinning wait strategy dodge the futex
  // park/wake pair on every grant; tell the simulator so its per-grant
  // charge matches what the runtime would pay (sim::Workload::spin_waits).
  if (program.wait_strategy())
    load.spin_waits = program.wait_strategy()->mode != sync::WaitMode::Block;
  load.threads.resize(tasks.size());
  load.iterations = 1;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    sim::SimThread& th = load.threads[t];
    th.flops = tasks[t].flops;
    th.mem_bytes = tasks[t].mem_bytes;
    load.iterations = std::max(load.iterations, tasks[t].iterations);
  }

  // Read windows per location (clipped to the run): a read access shares
  // its grants with the run of concurrent readers only in rounds where at
  // least one OTHER task's read window on the location is active — a
  // lone active reader is granted (and charged) alone, even when the
  // location has co-readers in other phases.
  struct ReadWin {
    int task;
    int from;
    int until;
  };
  std::vector<std::vector<ReadWin>> loc_readers(locs.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const Program::AccessDecl& acc : tasks[t].accesses) {
      if (acc.mode != AccessMode::Read) continue;
      const int until = acc.until_round < 0
                            ? load.iterations
                            : std::min(acc.until_round, load.iterations);
      if (until > acc.from_round)
        loc_readers[static_cast<std::size_t>(acc.location)].push_back(
            {static_cast<int>(t), acc.from_round, until});
    }
  }
  // Rounds of [from, until) covered by the union of `spans` (the other
  // tasks' read windows on the same location).
  const auto shared_rounds = [](int from, int until,
                                std::vector<std::pair<int, int>> spans) {
    std::sort(spans.begin(), spans.end());
    int covered = 0;
    int cursor = from;
    for (const auto& [f, u] : spans) {
      const int lo = std::max(f, cursor);
      const int hi = std::min(u, until);
      if (hi > lo) {
        covered += hi - lo;
        cursor = hi;
      }
    }
    return covered;
  };

  out.num_locations = locs.size();
  out.access_windows.resize(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const Program::AccessDecl& acc : tasks[t].accesses) {
      const int until = acc.until_round < 0
                            ? load.iterations
                            : std::min(acc.until_round, load.iterations);
      if (until > acc.from_round)
        out.access_windows[t].push_back({acc.from_round, until, acc.location,
                                         acc.mode == AccessMode::Read});
      // Grants clip to the owning task's iteration count (matching the
      // pre-window accounting for stationary programs).
      const int grant_until = std::min(
          acc.until_round < 0 ? tasks[t].iterations : acc.until_round,
          tasks[t].iterations);
      if (grant_until > acc.from_round)
        out.total_grants +=
            static_cast<std::uint64_t>(grant_until - acc.from_round);
    }
    // The whole-run average acquire count per iteration (exact declared
    // count for stationary programs). Batched rounds are those where a
    // co-reader's window overlaps — the same per-round rule the segment
    // accounting applies.
    double active = 0.0;
    double batched_active = 0.0;
    for (const AccessWindow& w : out.access_windows[t]) {
      active += w.until - w.from;
      if (!w.is_read) continue;
      std::vector<std::pair<int, int>> others;
      for (const ReadWin& rw :
           loc_readers[static_cast<std::size_t>(w.location)])
        if (rw.task != static_cast<int>(t))
          others.emplace_back(rw.from, rw.until);
      batched_active += shared_rounds(w.from, w.until, std::move(others));
    }
    load.threads[t].acquires = static_cast<int>(
        std::lround(active / load.iterations));
    load.threads[t].batched_acquires = static_cast<int>(
        std::lround(batched_active / load.iterations));
  }

  // Exchange edges: for every location, each (writer, reader) task pair
  // moves the smaller of the two declared touch extents (a frontier op
  // reads a whole block but only ships one face), during the rounds where
  // both accesses are active.
  struct Party {
    int task;
    double bytes;
    int from;
    int until;
  };
  std::vector<std::vector<Party>> writers(locs.size()), readers(locs.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const Program::AccessDecl& acc : tasks[t].accesses) {
      const auto li = static_cast<std::size_t>(acc.location);
      const double bytes = static_cast<double>(
          acc.touch_bytes > 0 ? acc.touch_bytes : locs[li].bytes);
      const int until = acc.until_round < 0 ? load.iterations
                                            : std::min(acc.until_round,
                                                       load.iterations);
      auto& side = acc.mode == AccessMode::Write ? writers[li] : readers[li];
      side.push_back({static_cast<int>(t), bytes, acc.from_round, until});
    }
  }
  for (std::size_t li = 0; li < locs.size(); ++li)
    for (const Party& w : writers[li])
      for (const Party& r : readers[li]) {
        if (w.task == r.task) continue;
        const int from = std::max(w.from, r.from);
        const int until = std::min(w.until, r.until);
        if (from >= until) continue;
        out.edges.push_back(
            {w.task, r.task, std::min(w.bytes, r.bytes), from, until});
      }
  return out;
}

/// The analytic flow matrix of the window [r0, r1): what the Instrument
/// would have measured there. Fed to the Replacer for backend parity.
comm::CommMatrix window_matrix(const DerivedLoad& load, int num_tasks,
                               int r0, int r1) {
  comm::CommMatrix m(num_tasks);
  for (const WindowedEdge& e : load.edges) {
    const int rounds = window_overlap(e, r0, r1);
    if (rounds > 0) m.add(e.a, e.b, e.bytes * rounds);
  }
  return m;
}

/// Edges of one simulated segment [r0, r1): per-round bytes averaged over
/// the segment (an edge fully active in the segment keeps its bytes; the
/// segment boundaries make partial overlap rare).
std::vector<sim::Edge> segment_edges(const DerivedLoad& load, int r0,
                                     int r1) {
  std::vector<sim::Edge> edges;
  for (const WindowedEdge& e : load.edges) {
    const int rounds = window_overlap(e, r0, r1);
    if (rounds <= 0) continue;
    edges.push_back({e.a, e.b, e.bytes * rounds / (r1 - r0)});
  }
  return edges;
}

/// Per-thread acquire counts for a segment starting at r0. Segments never
/// span an access-window boundary, so activity at r0 holds throughout —
/// including the set of concurrently active readers, from which the
/// batched-grant decision is made per segment (not per declaration): a
/// segment where only one reader is active delivers its grants singly and
/// is charged accordingly.
void apply_segment_acquires(const DerivedLoad& load, int r0,
                            sim::Workload& seg) {
  // Distinct tasks with a read window active at r0, per location.
  std::vector<int> active_readers(load.num_locations, 0);
  std::vector<char> counted(load.num_locations);
  for (const std::vector<AccessWindow>& windows : load.access_windows) {
    std::fill(counted.begin(), counted.end(), 0);
    for (const AccessWindow& w : windows) {
      if (!w.is_read || !(w.from <= r0 && r0 < w.until)) continue;
      const auto li = static_cast<std::size_t>(w.location);
      if (!counted[li]) {
        counted[li] = 1;
        ++active_readers[li];
      }
    }
  }
  for (std::size_t t = 0; t < seg.threads.size(); ++t) {
    int active = 0;
    int batched = 0;
    for (const AccessWindow& w : load.access_windows[t]) {
      if (w.from <= r0 && r0 < w.until) {
        ++active;
        if (w.is_read &&
            active_readers[static_cast<std::size_t>(w.location)] >= 2)
          ++batched;
      }
    }
    seg.threads[t].acquires = active;
    seg.threads[t].batched_acquires = batched;
  }
}

}  // namespace

sim::Workload SimBackend::workload(const Program& program) const {
  DerivedLoad derived = derive_load(program);
  derived.base.edges =
      segment_edges(derived, 0, derived.base.iterations);
  return derived.base;
}

RunReport SimBackend::run(const Program& program) {
  ORWL_CHECK_MSG(program.num_tasks() > 0, "program has no tasks");
  const DerivedLoad derived = derive_load(program);
  const int n = program.num_tasks();
  const int npus = topo_.num_pus();
  const int rounds = derived.base.iterations;

  RunReport rep;
  rep.backend = "sim";

  sim::Placement placement;
  if (program.policy()) {
    rep.plan = plan_for(program, topo_, program.static_comm_matrix());
    rep.placed = true;
    placement.compute_pu = rep.plan.compute_pu;
    placement.control_pu = rep.plan.control_pu;
  } else {
    placement.compute_pu.assign(static_cast<std::size_t>(n), -1);
    placement.control_pu.assign(static_cast<std::size_t>(n), -1);
  }
  // Location-memory policy (mirrors RuntimeOptions::memory). Heap keeps
  // the historical model below untouched, so heap predictions stay
  // bit-identical; numa_local additionally moves data homes with epoch
  // migrations (pages follow the writer, at a page-move charge); and
  // numa_interleave spreads every working set across the domains.
  const mem::MemoryPolicy mempol =
      program.memory_policy().value_or(mem::MemoryPolicy::Heap);
  if (mempol == mem::MemoryPolicy::NumaInterleave)
    placement.data_interleaved.assign(static_cast<std::size_t>(n), 1);

  // Bound tasks: an unmanaged control thread rides on the compute PU
  // (mirrors place::apply_plan) and the owner first-touches its own data.
  // Unbound tasks: the control path stays unmanaged and first touch lands
  // wherever the OS started the thread (seeded lottery).
  placement.data_home_pu.resize(static_cast<std::size_t>(n));
  Xoshiro256 rng(opts_.seed);
  for (int t = 0; t < n; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    const int cpu = placement.compute_pu[ti];
    if (cpu >= 0) {
      if (placement.control_pu[ti] < 0) placement.control_pu[ti] = cpu;
      placement.data_home_pu[ti] = cpu;
    } else {
      placement.data_home_pu[ti] = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(npus)));
    }
  }

  // Bytes and location count each task "owns" — locations whose planned
  // writer it is (first Write access in priming order). What numa_local
  // migrates when the task's compute PU changes; only that configuration
  // pays the scan.
  std::vector<double> owned_bytes(static_cast<std::size_t>(n), 0.0);
  std::vector<int> owned_locs(static_cast<std::size_t>(n), 0);
  if (mempol == mem::MemoryPolicy::NumaLocal &&
      program.replacement_policy().enabled()) {
    std::vector<char> claimed(program.location_decls().size(), 0);
    for (const auto& [task, access] : program.prime_sequence()) {
      const Program::AccessDecl& acc =
          program.task_decls()[static_cast<std::size_t>(task)]
              .accesses[static_cast<std::size_t>(access)];
      if (acc.mode != AccessMode::Write) continue;
      const auto li = static_cast<std::size_t>(acc.location);
      if (claimed[li]) continue;
      claimed[li] = 1;
      const auto ti = static_cast<std::size_t>(task);
      owned_bytes[ti] += static_cast<double>(
          program.location_decls()[li].bytes);
      if (program.location_decls()[li].bytes > 0) ++owned_locs[ti];
    }
  }

  // Online re-placement, mirrored analytically: the same Replacer the
  // RuntimeBackend drives, fed the per-window matrices of the declared
  // access schedule, with LinkCost::migration_cost charged per migrated
  // thread. Under the heap policy data homes do not move (first touch),
  // so post-migration remote-memory streams are charged naturally in
  // later segments; under numa_local the homes follow the migrated
  // writers at a page-move charge (below).
  const place::ReplacementPolicy& rp = program.replacement_policy();
  std::optional<place::Replacer> replacer;
  if (rp.enabled()) {
    ORWL_CHECK_MSG(program.policy(),
                   "online re-placement needs a placement policy — call "
                   "place() before replacement()");
    const std::optional<comm::CommMatrix>& basis = program.placement_matrix();
    replacer.emplace(rp, topo_, program.treematch_options(),
                     program.place_seed(),
                     basis ? *basis : program.static_comm_matrix());
  }

  // Segment the run at access-window boundaries (so each phase is costed
  // with its true edges and acquire counts, not a run-wide average) and at
  // epoch boundaries where a re-placement actually fired (so the new
  // mapping takes effect). Epoch boundaries that only *evaluate* do not
  // split the simulation — a stationary program with replacement enabled
  // therefore predicts bit-identically to its static twin, unbound-thread
  // scheduler lottery included.
  std::vector<int> phase_cuts;
  for (const std::vector<AccessWindow>& windows : derived.access_windows)
    for (const AccessWindow& w : windows) {
      if (w.from > 0 && w.from < rounds) phase_cuts.push_back(w.from);
      if (w.until > 0 && w.until < rounds) phase_cuts.push_back(w.until);
    }
  std::vector<int> points = phase_cuts;
  points.push_back(rounds);
  if (rp.enabled())
    for (int r = rp.epoch_length; r < rounds; r += rp.epoch_length)
      points.push_back(r);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  std::sort(phase_cuts.begin(), phase_cuts.end());

  last_ = sim::Report{};
  int seg_start = 0;
  // Synthetic spans from the analytic timeline (only while tracing is on):
  // every costed segment becomes a `compute` span on each task's row, and
  // each fired re-placement becomes a `replace` span on an extra "sim"
  // row — so a predicted run opens next to a real one in Perfetto.
  const bool synth = obs::tracing_enabled();
  std::vector<std::vector<obs::TraceEvent>> synth_rows;
  if (synth)
    synth_rows.resize(static_cast<std::size_t>(n) + 1);  // [n] = sim row
  double sim_clock = 0.0;  // cumulative predicted seconds
  int seg_index = 0;
  const auto synth_span = [&](std::size_t row, obs::EventKind begin,
                              obs::EventKind end, double t0, double t1,
                              std::uint64_t arg) {
    const auto ns = [](double s) {
      return static_cast<std::uint64_t>(s * 1e9);
    };
    synth_rows[row].push_back(
        {ns(t0), arg, static_cast<std::int32_t>(row), begin});
    synth_rows[row].push_back(
        {ns(t1), arg, static_cast<std::int32_t>(row), end});
  };
  const auto flush_segment = [&](int r) {
    if (r <= seg_start) return;
    sim::Workload seg = derived.base;
    seg.iterations = r - seg_start;
    seg.edges = segment_edges(derived, seg_start, r);
    apply_segment_acquires(derived, seg_start, seg);
    const sim::Report sr =
        sim::simulate(topo_, cost_, seg, placement, opts_.seed);
    last_.total_seconds += sr.total_seconds;
    last_.compute_seconds += sr.compute_seconds;
    last_.memory_seconds += sr.memory_seconds;
    last_.comm_seconds += sr.comm_seconds;
    last_.sync_seconds += sr.sync_seconds;
    last_.lock_seconds += sr.lock_seconds;
    last_.max_pu_load = std::max(last_.max_pu_load, sr.max_pu_load);
    if (synth) {
      const double t1 = sim_clock + sr.total_seconds;
      for (int t = 0; t < n; ++t)
        synth_span(static_cast<std::size_t>(t), obs::EventKind::ComputeBegin,
                   obs::EventKind::ComputeEnd, sim_clock, t1,
                   static_cast<std::uint64_t>(seg_index));
      ++seg_index;
    }
    sim_clock += sr.total_seconds;
    seg_start = r;
  };

  for (const int r : points) {
    const bool is_epoch =
        replacer && r < rounds && r % rp.epoch_length == 0;
    std::optional<place::Replacer::Decision> dec;
    if (is_epoch)
      dec = replacer->evaluate(
          window_matrix(derived, n, r - rp.epoch_length, r));
    // Simulate up to r with the placement in force there — before any
    // re-placement applies — when the edge set changes, a re-placement
    // fired, or the run ends.
    if (std::binary_search(phase_cuts.begin(), phase_cuts.end(), r) ||
        (dec && dec->replaced) || r == rounds)
      flush_segment(r);
    if (!dec) continue;
    RunReport::EpochRecord rec;
    rec.epoch = r / rp.epoch_length;
    rec.round = r;
    rec.drift = dec->drift;
    rec.replaced = dec->replaced;
    if (dec->replaced) {
      rec.migrated = place::count_migrations(placement.compute_pu,
                                             dec->plan.compute_pu);
      // numa_local: pages follow the migrated writers — the data home
      // moves with the thread and the moved bytes pay the page-move
      // bandwidth once. Heap homes stay put (first touch).
      double moved_bytes = 0.0;
      if (mempol == mem::MemoryPolicy::NumaLocal) {
        for (int t = 0; t < n; ++t) {
          const auto ti = static_cast<std::size_t>(t);
          const int to = dec->plan.compute_pu[ti];
          if (to < 0 || to == placement.compute_pu[ti]) continue;
          const int from_home = std::max(placement.data_home_pu[ti], 0);
          // Pages (and with them the data home) move only when the
          // writer leaves its memory domain — a same-node rebind gives
          // mbind nothing to do and the pages stay where they are
          // (mirrors Runtime::place_location_memory).
          if (sim::memory_domain_of(topo_, from_home) !=
              sim::memory_domain_of(topo_, to)) {
            placement.data_home_pu[ti] = to;
            moved_bytes += owned_bytes[ti];
            rec.moved_locations += owned_locs[ti];
          }
        }
      }
      placement.compute_pu = dec->plan.compute_pu;
      placement.control_pu = dec->plan.control_pu;
      for (int t = 0; t < n; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        if (placement.compute_pu[ti] >= 0 && placement.control_pu[ti] < 0)
          placement.control_pu[ti] = placement.compute_pu[ti];
      }
      rec.replace_seconds = rec.migrated * cost_.migration_cost +
                            moved_bytes / cost_.page_move_bandwidth;
      last_.total_seconds += rec.replace_seconds;
      if (synth) {
        synth_span(static_cast<std::size_t>(n), obs::EventKind::ReplaceBegin,
                   obs::EventKind::ReplaceEnd, sim_clock,
                   sim_clock + rec.replace_seconds,
                   static_cast<std::uint64_t>(rec.migrated));
        if (rec.moved_locations > 0)
          synth_rows[static_cast<std::size_t>(n)].push_back(
              {static_cast<std::uint64_t>(sim_clock * 1e9),
               static_cast<std::uint64_t>(rec.moved_locations),
               static_cast<std::int32_t>(n), obs::EventKind::PageMove});
      }
      sim_clock += rec.replace_seconds;
      ++rep.replacements;
    }
    rec.compute_pu = placement.compute_pu;
    rep.epochs.push_back(std::move(rec));
  }
  flush_segment(rounds);
  rep.sim = last_;
  rep.seconds = last_.total_seconds;
  rep.grants = derived.total_grants;

  if (synth) {
    for (std::size_t row = 0; row < synth_rows.size(); ++row) {
      if (synth_rows[row].empty()) continue;
      obs::TraceThread tt;
      tt.tid = static_cast<std::int32_t>(row);
      tt.name = row < static_cast<std::size_t>(n)
                    ? "sim:" + program.task_decls()[row].name
                    : "sim:runtime";
      tt.events = std::move(synth_rows[row]);
      rep.trace.threads.push_back(std::move(tt));
    }
  }

  if (opts_.emulate) {
    RuntimeOptions ro;
    ro.control = RuntimeOptions::ControlMode::Direct;
    emu_rt_ = std::make_unique<Runtime>(ro);
    build_runtime(program, *emu_rt_);
    apply_inits(program, *emu_rt_);
    emu_rt_->run();
    rep.metrics = emu_rt_->metrics().snapshot();
  } else {
    emu_rt_.reset();
  }
  return rep;
}

Runtime& SimBackend::emulated_runtime() {
  ORWL_CHECK_MSG(emu_rt_ != nullptr,
                 "emulated_runtime() needs SimBackendOptions::emulate and a "
                 "prior run()");
  return *emu_rt_;
}

std::vector<std::byte> SimBackend::fetch_bytes(LocationId loc) {
  ORWL_CHECK_MSG(emu_rt_ != nullptr,
                 "SimBackend::fetch needs SimBackendOptions::emulate and a "
                 "prior run()");
  const std::span<std::byte> data = emu_rt_->location_data(loc);
  return {data.begin(), data.end()};
}

}  // namespace orwl
