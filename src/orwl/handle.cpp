#include "orwl/handle.h"

#include <chrono>

#include "obs/trace.h"
#include "support/assert.h"
#include "sync/waiter.h"

namespace orwl {

Handle::Handle(HandleId id, TaskId task, LocationBuffer& location,
               AccessMode mode, sync::WaitStrategy wait)
    : id_(id), task_(task), location_(location), mode_(mode), wait_(wait) {
  for (Request& r : slots_) {
    r.mode = mode;
    r.owner = task;
    r.handle = id;
    r.location = location.id();
  }
}

void Handle::request() {
  ORWL_CHECK_MSG(!acquired_, "request() while holding the lock; use "
                             "release_and_renew() instead");
  // order: relaxed — only the owning thread moves a slot out of
  // Inactive, and that owner is the caller.
  ORWL_CHECK_MSG(current().state.load(std::memory_order_relaxed) ==
                     RequestState::Inactive,
                 "handle " << id_ << " already has a request in flight");
  location_.port().insert(current());
}

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::span<std::byte> Handle::acquire() {
  ORWL_CHECK_MSG(!acquired_, "acquire() while already holding the lock");
  obs::trace(obs::EventKind::AcquireBegin,
             static_cast<std::uint64_t>(id_));
  // Acquire latency needs two clock reads; gate them behind the
  // detailed-metrics flag so the default acquire stays clock-free.
  const bool timed = acquire_ns_ != nullptr && obs::detailed_metrics_enabled();
  const std::uint64_t t0 = timed ? steady_ns() : 0;
  Request& cur = current();
  // order: acquire — pairs with the queue's release store of Granted; it
  // publishes the previous holder's buffer writes on the fast path.
  RequestState s = cur.state.load(std::memory_order_acquire);
  ORWL_CHECK_MSG(s != RequestState::Inactive,
                 "acquire() without a prior request()");
  // Fast path: the grant was already made (and published with release
  // ordering by the queue) — consume it with this one acquire load.
  // Otherwise park on the state word until delivery notifies. The only
  // transition out of Requested is to Granted, so one wait suffices.
  if (s != RequestState::Granted) {
    // Auto mode: substitute the current self-tuned spin budget (one
    // relaxed load) so epoch-boundary retunes take effect on the very
    // next wait. Without a wired budget, Auto degrades to the strategy's
    // static spin count inside the waiter.
    sync::WaitStrategy eff = wait_;
    if (eff.mode == sync::WaitMode::Auto && spin_budget_ != nullptr)
      eff.spins = spin_budget_->spins();
    sync::WaitLength len;
    s = sync::wait_while_equal(cur.state, RequestState::Requested, eff,
                               wait_rounds_ != nullptr ? &len : nullptr);
    ORWL_CHECK_MSG(s == RequestState::Granted,
                   "request state corrupted while waiting (state "
                       << static_cast<int>(s) << ")");
    if (wait_rounds_ != nullptr) wait_rounds_->record(len.rounds);
  } else if (wait_rounds_ != nullptr) {
    // Uncontended acquires land in bucket 0 — the fast-path share of the
    // distribution is signal for the wait auto-tuner.
    wait_rounds_->record(0);
  }
  if (timed) acquire_ns_->record(steady_ns() - t0);
  acquired_ = true;
  obs::trace(obs::EventKind::AcquireEnd, static_cast<std::uint64_t>(id_));
  return location_.data();
}

std::span<const std::byte> Handle::acquire_const() {
  const std::span<std::byte> bytes = acquire();
  return {bytes.data(), bytes.size()};
}

bool Handle::test() const {
  // order: acquire — a true result may be followed by buffer access
  // without a further acquire (same pairing as the acquire() fast path).
  return current().state.load(std::memory_order_acquire) ==
         RequestState::Granted;
}

void Handle::release() {
  ORWL_CHECK_MSG(acquired_, "release() without acquire()");
  acquired_ = false;
  obs::trace(obs::EventKind::Release, static_cast<std::uint64_t>(id_));
  location_.port().release(current());
}

void Handle::release_and_renew() {
  ORWL_CHECK_MSG(acquired_, "release_and_renew() without acquire()");
  acquired_ = false;
  obs::trace(obs::EventKind::Release, static_cast<std::uint64_t>(id_));
  // The spare slot becomes the next-iteration request; it may be granted
  // (and delivered) before release_and_renew returns.
  Request& cur = current();
  Request& next = spare();
  active_ ^= 1;
  location_.port().release_and_renew(cur, next);
}

}  // namespace orwl
