#include "orwl/handle.h"

#include "support/assert.h"

namespace orwl {

Handle::Handle(HandleId id, TaskId task, LocationBuffer& location, AccessMode mode)
    : id_(id), task_(task), location_(location), mode_(mode) {
  for (Request& r : slots_) {
    r.mode = mode;
    r.owner = task;
    r.handle = id;
    r.location = location.id();
    r.user = this;
  }
}

void Handle::request() {
  ORWL_CHECK_MSG(!acquired_, "request() while holding the lock; use "
                             "release_and_renew() instead");
  ORWL_CHECK_MSG(current().state == RequestState::Inactive,
                 "handle " << id_ << " already has a request in flight");
  location_.queue().insert(current());
}

std::span<std::byte> Handle::acquire() {
  ORWL_CHECK_MSG(!acquired_, "acquire() while already holding the lock");
  ORWL_CHECK_MSG(current().state != RequestState::Inactive,
                 "acquire() without a prior request()");
  {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return delivered_; });
  }
  acquired_ = true;
  return location_.data();
}

std::span<const std::byte> Handle::acquire_const() {
  const std::span<std::byte> bytes = acquire();
  return {bytes.data(), bytes.size()};
}

bool Handle::test() const {
  std::lock_guard lock(mu_);
  return delivered_;
}

void Handle::release() {
  ORWL_CHECK_MSG(acquired_, "release() without acquire()");
  {
    std::lock_guard lock(mu_);
    delivered_ = false;
  }
  acquired_ = false;
  location_.queue().release(current());
}

void Handle::release_and_renew() {
  ORWL_CHECK_MSG(acquired_, "release_and_renew() without acquire()");
  {
    std::lock_guard lock(mu_);
    delivered_ = false;
  }
  acquired_ = false;
  // The spare slot becomes the next-iteration request; it may be granted
  // (and delivered) before release_and_renew returns.
  Request& cur = current();
  Request& next = spare();
  active_ ^= 1;
  location_.queue().release_and_renew(cur, next);
}

void Handle::deliver_grant() {
  {
    std::lock_guard lock(mu_);
    delivered_ = true;
  }
  cv_.notify_one();
}

}  // namespace orwl
