#pragma once
// Backend: executes an orwl::Program.
//
//   RuntimeBackend — builds a real Runtime (locations, tasks, handles in
//                    the program's canonical priming order), applies the
//                    requested placement on its topology, spawns the
//                    threads and runs to completion.
//   SimBackend     — derives the analytic NUMA-model workload (threads,
//                    exchange edges, lock acquisitions) from the very same
//                    declaration and predicts the run on an arbitrary
//                    machine. With `emulate` set it additionally executes
//                    the bodies on an unbound in-process runtime, so data
//                    results can be fetched and compared against a real
//                    run (backend parity).
//
// Both consume the identical Program, which is what makes "run it here"
// vs "predict it on the paper's 24-socket SMP" a one-line difference.

#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "orwl/program.h"
#include "orwl/runtime.h"
#include "place/placement.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace orwl {

/// What a backend reports about one execution.
struct RunReport {
  std::string backend;      ///< "runtime" or "sim"
  double seconds = 0.0;     ///< wall time (runtime) or predicted (sim)
  std::uint64_t grants = 0; ///< delivered (runtime) or modelled acquisitions
  bool placed = false;      ///< a placement policy was applied
  place::Plan plan;         ///< the INITIAL placement, when placed
  sim::Report sim;          ///< cost-model breakdown (SimBackend only)

  /// One entry per epoch boundary when online re-placement ran
  /// (Program::replacement): the drift decision and the mapping in force
  /// for the following window.
  struct EpochRecord {
    int epoch = 0;   ///< 1-based boundary index
    int round = 0;   ///< first iteration of the following window
    double drift = 0.0;        ///< normalized distance vs the basis matrix
    bool replaced = false;     ///< Algorithm 1 re-ran at this boundary
    int migrated = 0;          ///< tasks whose compute PU changed
    /// Compute threads the OS refused to rebind (exited thread, foreign
    /// cpuset). 0 on SimBackend; nonzero means `compute_pu` is intent,
    /// not fact, for those tasks.
    int rebind_failures = 0;
    /// Locations whose pages were retargeted to follow their migrated
    /// writer (memory policy numa_local; 0 under heap/interleave).
    int moved_locations = 0;
    double replace_seconds = 0.0;  ///< measured (runtime) / modelled (sim)
    comm::Mapping compute_pu;  ///< mapping after the boundary
  };
  std::vector<EpochRecord> epochs;
  int replacements = 0;  ///< boundaries at which Algorithm 1 re-ran

  /// Observability (filled only while obs::tracing_enabled()): the
  /// collected per-thread trace of the run — real recorded events from the
  /// RuntimeBackend, synthetic spans from the SimBackend's analytic
  /// timeline, so both open side by side in the same Perfetto view. Write
  /// out with obs::write_chrome_trace_file.
  obs::TraceData trace;
  /// Snapshot of the executing runtime's metric registry (Instrument
  /// counters, per-handle wait/latency histograms). Empty for a pure
  /// (non-emulated) sim run.
  obs::RegistrySnapshot metrics;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Execute (or predict) the program. May be called with different
  /// programs; state from the latest run stays fetchable.
  virtual RunReport run(const Program& program) = 0;

  /// Raw bytes of a location after the latest run().
  virtual std::vector<std::byte> fetch_bytes(LocationId loc) = 0;

  /// The instrumented Runtime behind the latest run(), when this backend
  /// has one — its Instrument carries the measured flow matrix the
  /// feedback-placement harness feeds back to TreeMatch. nullptr when the
  /// backend executed nothing (e.g. SimBackend without emulation).
  [[nodiscard]] virtual Runtime* instrumented_runtime() { return nullptr; }

  /// Typed post-run location contents.
  template <class T>
  std::vector<T> fetch(Location<T> loc) {
    const std::vector<std::byte> bytes = fetch_bytes(loc.id());
    ORWL_CHECK_MSG(bytes.size() == loc.bytes(),
                   "location " << loc.id() << " holds " << bytes.size()
                               << " bytes, expected " << loc.bytes());
    std::vector<T> out(loc.count());
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }
};

/// Real execution on the event-based ORWL runtime of this machine (or any
/// topology you hand in — bindings outside the host cpuset fail, so pass
/// sub-topologies only).
class RuntimeBackend : public Backend {
 public:
  explicit RuntimeBackend(RuntimeOptions opts = {});
  RuntimeBackend(RuntimeOptions opts, topo::Topology topo);

  RunReport run(const Program& program) override;
  std::vector<std::byte> fetch_bytes(LocationId loc) override;
  [[nodiscard]] Runtime* instrumented_runtime() override {
    return rt_.get();
  }

  /// The runtime of the latest run() — stats, measured comm matrix.
  [[nodiscard]] Runtime& runtime();
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }

 private:
  RuntimeOptions opts_;
  topo::Topology topo_;
  std::unique_ptr<Runtime> rt_;
};

struct SimBackendOptions {
  /// Additionally execute the program's bodies on an unbound in-process
  /// runtime so location contents can be fetched (parity checking).
  /// Leave off for large what-if programs that only exist as structure.
  bool emulate = false;
  /// Seed for the unbound-thread placement lottery and data homes.
  std::uint64_t seed = 7;
};

/// Prediction on the analytic NUMA cost model (src/sim) — the paper's
/// 24-socket machine, or any synthetic topology.
class SimBackend : public Backend {
 public:
  explicit SimBackend(topo::Topology topo);
  SimBackend(topo::Topology topo, sim::LinkCost cost,
             SimBackendOptions opts = {});

  RunReport run(const Program& program) override;

  /// Requires SimBackendOptions::emulate.
  std::vector<std::byte> fetch_bytes(LocationId loc) override;

  /// The emulation runtime, or nullptr without emulate.
  [[nodiscard]] Runtime* instrumented_runtime() override {
    return emu_rt_.get();
  }

  [[nodiscard]] const sim::Report& report() const { return last_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }

  /// The unbound in-process runtime of the latest emulated run() — its
  /// Instrument holds the measured flow matrix the feedback-placement
  /// harness re-feeds to TreeMatch. Requires SimBackendOptions::emulate.
  [[nodiscard]] Runtime& emulated_runtime();

  /// The derived analytic workload — exposed for tests and diagnostics.
  [[nodiscard]] sim::Workload workload(const Program& program) const;

 private:
  topo::Topology topo_;
  sim::LinkCost cost_;
  SimBackendOptions opts_;
  sim::Report last_{};
  std::unique_ptr<Runtime> emu_rt_;
};

}  // namespace orwl
