#pragma once
// Program: the typed, RAII-safe front-end of the ORWL runtime.
//
// A Program is a declarative description of an ORWL computation — typed
// locations, tasks with declared read/write accesses, per-iteration bodies
// — that can be executed by any Backend (orwl/backend.h): RuntimeBackend
// runs it for real on the event-based Runtime; SimBackend predicts its
// behaviour on an arbitrary machine with the NUMA cost model. The same
// definition drives both, which is what lets the benches compare native
// and simulated placements on identical programs.
//
//   Program p;
//   auto a = p.location<long>(1, "a");
//   auto b = p.location<long>(1, "b");
//   p.task("stage0").reads(a).writes(b).iterations(10).body([=](Step& s) {
//     const long v = s.read(a, [](std::span<const long> x) { return x[0]; });
//     s.write(b, [v](std::span<long> x) { x[0] = v + 1; });
//   });
//   p.place(place::Policy::TreeMatch);
//   RuntimeBackend be;
//   RunReport rep = p.run(be);
//   long result = be.fetch(b)[0];
//
// The API encodes the ORWL iterative discipline in the type system:
//  * Location<T> carries the element type, so task bodies see std::span<T>
//    — no byte spans, no reinterpret casts;
//  * bodies name locations, not handle indices — the builder wires the
//    handles;
//  * Section<T> guards (returned by Step::read / Step::write) acquire on
//    construction and automatically release_and_renew() on destruction —
//    or plain release() in the task's last iteration — so the canonical
//    renewal pattern cannot be mis-typed.
//
// Priming order. Handles are enqueued into the location FIFOs in a global
// canonical order that defines which task gets each first grant (the ORWL
// liveness discipline). By default that order is declaration order; when a
// program needs handle-level interleaving across tasks (e.g. "all block
// writes before any frontier read", as in the LK23 decomposition), give
// accesses an explicit rank: all rank-0 accesses are primed first (in
// declaration order), then rank 1, and so on.

#include <cstddef>
#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "comm/comm_matrix.h"
#include "mem/policy.h"
#include "orwl/handle.h"
#include "orwl/runtime.h"
#include "place/placement.h"
#include "place/replace.h"
#include "support/assert.h"
#include "treematch/treematch.h"

namespace orwl {

class Backend;
class Program;
class Step;
struct RunReport;

/// Typed reference to a Program location holding `count()` elements of T.
/// A cheap value type; obtained from Program::location<T>().
template <class T>
class Location {
 public:
  Location() = default;

  [[nodiscard]] LocationId id() const { return id_; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t bytes() const { return count_ * sizeof(T); }
  [[nodiscard]] bool valid() const { return id_ >= 0; }

 private:
  friend class Program;
  Location(LocationId id, std::size_t count) : id_(id), count_(count) {}

  LocationId id_ = -1;
  std::size_t count_ = 0;
};

/// RAII section guard: holds a granted lock on a location and exposes the
/// buffer as a typed span. Acquired by Step::read / Step::write; the
/// destructor performs the canonical iterative step — release_and_renew(),
/// or a plain release() when this is the task's last iteration.
template <class T>
class Section {
 public:
  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;
  Section(Section&& other) noexcept
      : handle_(other.handle_), span_(other.span_), renew_(other.renew_) {
    other.handle_ = nullptr;
  }
  Section& operator=(Section&&) = delete;

  ~Section() {
    if (handle_ == nullptr) return;
    if (renew_)
      handle_->release_and_renew();
    else
      handle_->release();
  }

  [[nodiscard]] std::span<T> span() const { return span_; }
  operator std::span<T>() const { return span_; }  // NOLINT(google-explicit-constructor)
  [[nodiscard]] std::size_t size() const { return span_.size(); }
  [[nodiscard]] T& operator[](std::size_t i) const { return span_[i]; }
  [[nodiscard]] T* data() const { return span_.data(); }
  [[nodiscard]] T* begin() const { return span_.data(); }
  [[nodiscard]] T* end() const { return span_.data() + span_.size(); }

 private:
  friend class Step;
  Section(Handle& h, std::span<T> span, bool renew)
      : handle_(&h), span_(span), renew_(renew) {}

  Handle* handle_;
  std::span<T> span_;
  bool renew_;
};

/// Per-iteration execution context handed to a task body. Knows the task's
/// handles (by location) and the loop position, so sections it hands out
/// renew themselves on every iteration except the last.
///
/// Constructed by backends; user code only consumes it inside bodies.
class Step {
 public:
  /// One declared access, resolved to a runtime handle. Backend internal.
  struct Slot {
    LocationId location = -1;
    AccessMode mode = AccessMode::Read;
    HandleId handle = -1;
    bool pending = true;  ///< a request is enqueued but not yet consumed
  };

  Step(Runtime& rt, TaskId task, int rounds, std::vector<Slot> slots)
      : rt_(rt), task_(task), rounds_(rounds), slots_(std::move(slots)) {}

  Step(const Step&) = delete;
  Step& operator=(const Step&) = delete;

  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] int round() const { return round_; }
  [[nodiscard]] int rounds() const { return rounds_; }
  [[nodiscard]] bool first() const { return round_ == 0; }
  [[nodiscard]] bool last() const { return round_ + 1 >= rounds_; }

  /// Acquire the task's write lock on `loc`. Blocks until granted.
  template <class T>
  [[nodiscard]] Section<T> write(Location<T> loc) {
    Slot& slot = find(loc.id(), AccessMode::Write);
    Handle& h = rt_.handle(slot.handle);
    const std::span<std::byte> bytes = h.acquire();
    check_extent(loc.bytes(), bytes.size(), loc.id());
    const bool renew = !last();
    slot.pending = renew;
    return Section<T>(h, as_span<T>(bytes), renew);
  }

  /// Acquire the task's read lock on `loc`. Blocks until granted.
  template <class T>
  [[nodiscard]] Section<const T> read(Location<T> loc) {
    Slot& slot = find(loc.id(), AccessMode::Read);
    Handle& h = rt_.handle(slot.handle);
    const std::span<const std::byte> bytes = h.acquire_const();
    check_extent(loc.bytes(), bytes.size(), loc.id());
    const bool renew = !last();
    slot.pending = renew;
    return Section<const T>(h, as_span<const T>(bytes), renew);
  }

  /// Scoped form: acquire, run `fn` on the typed span, release-or-renew.
  /// Returns whatever `fn` returns.
  template <class T, class F>
  decltype(auto) write(Location<T> loc, F&& fn) {
    const Section<T> s = write(loc);
    return std::forward<F>(fn)(s.span());
  }
  template <class T, class F>
  decltype(auto) read(Location<T> loc, F&& fn) {
    const Section<const T> s = read(loc);
    return std::forward<F>(fn)(s.span());
  }

  /// Consume any request still pending after the task's last iteration
  /// (declared-but-unused handles, or handles renewed in an iteration that
  /// turned out to be their final use). Called by backends after the body
  /// loop; keeps the location FIFOs drained so other tasks stay live.
  void drain() {
    for (Slot& slot : slots_) {
      if (!slot.pending) continue;
      Handle& h = rt_.handle(slot.handle);
      h.acquire();
      h.release();
      slot.pending = false;
    }
  }

  /// Backend internal: position the step at iteration `r`.
  void set_round(int r) { round_ = r; }

 private:
  Slot& find(LocationId loc, AccessMode mode) {
    for (Slot& slot : slots_)
      if (slot.location == loc && slot.mode == mode) return slot;
    ORWL_CHECK_MSG(false, "task " << task_ << " did not declare "
                                  << to_string(mode) << " access to location "
                                  << loc);
    return slots_.front();  // unreachable
  }

  static void check_extent(std::size_t expect, std::size_t got,
                           LocationId loc) {
    ORWL_CHECK_MSG(expect == got,
                   "location " << loc << " holds " << got
                               << " bytes but the typed reference expects "
                               << expect
                               << " — Location from a different Program?");
  }

  Runtime& rt_;
  TaskId task_;
  int rounds_;
  int round_ = 0;
  std::vector<Slot> slots_;
};

/// A task body: invoked once per iteration with the positioned Step.
using StepFn = std::function<void(Step&)>;

/// Options for one declared access.
struct AccessOpts {
  /// Priming rank: lower ranks are enqueued into the location FIFOs first
  /// (ties broken by declaration order). Defaults to declaration order.
  int rank = 0;
  /// Bytes this access actually moves per grant (simulation hint for
  /// partial reads/writes, e.g. one face of a block). 0 = the whole
  /// location.
  std::size_t touch_bytes = 0;
  /// Round window [from_round, until_round) during which the body actually
  /// exercises this access — the declaration hint behind phase-shifting
  /// workloads. The runtime does not enforce it (the body's control flow
  /// does); SimBackend uses it to derive per-phase exchange edges and the
  /// per-epoch matrices the online re-placer sees. Defaults to all rounds
  /// (until_round == -1 means "to the end of the run").
  int from_round = 0;
  int until_round = -1;
};

/// Fluent builder returned by Program::task(). Cheap value; mutates the
/// task declaration in place, so partial chains are fine.
class TaskBuilder {
 public:
  template <class T>
  TaskBuilder& reads(Location<T> loc, AccessOpts opts = {}) {
    declare(loc.id(), AccessMode::Read, opts);
    return *this;
  }
  template <class T>
  TaskBuilder& writes(Location<T> loc, AccessOpts opts = {}) {
    declare(loc.id(), AccessMode::Write, opts);
    return *this;
  }

  /// Number of times the body runs (the task's iteration count). The
  /// guards renew on every iteration except the last. Default 1.
  TaskBuilder& iterations(int n);

  /// Per-iteration cost annotation for SimBackend: useful flops and bytes
  /// streamed from memory. Ignored by RuntimeBackend.
  TaskBuilder& cost(double flops, double mem_bytes);

  /// The per-iteration body. Terminal in spirit but chainable; a task
  /// without a body can still be analysed (comm matrix, placement) — only
  /// execution requires one.
  TaskBuilder& body(StepFn fn);

  [[nodiscard]] TaskId id() const { return task_; }

 private:
  friend class Program;
  TaskBuilder(Program& p, TaskId t) : program_(&p), task_(t) {}
  void declare(LocationId loc, AccessMode mode, AccessOpts opts);

  Program* program_;
  TaskId task_;
};

/// The declarative ORWL program: typed locations + tasks + placement
/// policy. Execute with Program::run(Backend&); one Program may be run on
/// several backends (that is the point).
class Program {
 public:
  // --- IR, exposed read-only to backends ---------------------------------

  struct LocationDecl {
    std::string name;
    std::size_t bytes = 0;
    std::size_t elem_size = 1;
  };
  struct AccessDecl {
    LocationId location = -1;
    AccessMode mode = AccessMode::Read;
    int rank = 0;
    std::size_t touch_bytes = 0;  ///< 0 = whole location
    std::size_t seq = 0;          ///< program-wide declaration stamp
    int from_round = 0;           ///< active-round window start
    int until_round = -1;         ///< one past the window end; -1 = all
  };
  struct TaskDecl {
    std::string name;
    int iterations = 1;
    double flops = 0.0;      ///< per-iteration, for SimBackend
    double mem_bytes = 0.0;  ///< per-iteration, for SimBackend
    StepFn fn;
    std::vector<AccessDecl> accesses;
  };
  struct InitHook {
    LocationId location = -1;
    std::function<void(std::span<std::byte>)> fn;
  };

  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  // --- construction -------------------------------------------------------

  /// Create a typed location of `count` elements of T (zero-initialized at
  /// execution time).
  template <class T>
  Location<T> location(std::size_t count, std::string name = {}) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ORWL locations hold trivially copyable data");
    return Location<T>(add_location(count * sizeof(T), sizeof(T),
                                    std::move(name)),
                       count);
  }

  /// Declare a task; wire it up through the returned fluent builder.
  TaskBuilder task(std::string name);

  /// Pre-run initialization of a location's buffer: `fn(std::span<T>)` is
  /// applied by the backend before execution (after zero-init).
  template <class T, class F>
  void init(Location<T> loc, F&& fn) {
    inits_.push_back(
        {loc.id(), [fn = std::forward<F>(fn),
                    count = loc.count()](std::span<std::byte> bytes) {
           fn(std::span<T>(reinterpret_cast<T*>(bytes.data()), count));
         }});
  }

  /// One-call topology-aware placement: the backend extracts the
  /// communication matrix, runs the policy (Algorithm 1 for TreeMatch) and
  /// installs the bindings — the whole static_comm_matrix → compute_plan →
  /// apply_plan pipeline.
  void place(place::Policy policy, treematch::Options tm_opts = {},
             std::uint64_t seed = 42) {
    policy_ = policy;
    tm_opts_ = tm_opts;
    place_seed_ = seed;
  }

  /// Override the communication matrix the placement policy consumes:
  /// instead of the declaration's static matrix, feed Algorithm 1 an
  /// explicit one — typically the MEASURED flow matrix of a previous
  /// instrumented run (Runtime::measured_comm_matrix), which closes the
  /// paper's feedback loop. Order must equal the task count at run time.
  /// Requires a prior place() — without a policy the matrix would be
  /// silently ignored.
  void place_using(comm::CommMatrix measured) {
    ORWL_CHECK_MSG(policy_.has_value(),
                   "place_using() without a placement policy — call "
                   "place() first");
    place_matrix_ = std::move(measured);
  }

  /// Wait-strategy knob for real execution (RuntimeBackend): how this
  /// program's compute threads, control threads and epoch barrier wait —
  /// block, spin, or spin-then-park (sync/wait_strategy.h). Unset leaves
  /// the backend's RuntimeOptions default in force. SimBackend ignores it
  /// (the analytic lock model does not distinguish parking disciplines).
  void wait_strategy(sync::WaitStrategy ws) { wait_ = ws; }
  [[nodiscard]] const std::optional<sync::WaitStrategy>& wait_strategy()
      const {
    return wait_;
  }

  /// Location-memory knob (mem/policy.h): where this program's location
  /// pages live — heap (default), the planned writer's NUMA node
  /// (numa_local, pages migrate with epoch re-placements), or interleaved
  /// across nodes. RuntimeBackend forwards it to RuntimeOptions::memory;
  /// SimBackend models it (post-migration data homes, interleave
  /// bandwidth, page-move cost — sim/cost_model.h). Unset leaves the
  /// backend's RuntimeOptions default in force.
  void memory_policy(mem::MemoryPolicy mp) { memory_ = mp; }
  [[nodiscard]] const std::optional<mem::MemoryPolicy>& memory_policy()
      const {
    return memory_;
  }

  /// Enable online adaptive re-placement (place/replace.h): the backend
  /// accumulates the communication matrix per epoch of
  /// `rp.epoch_length` iterations and, per the policy, re-runs Algorithm 1
  /// on the fresh matrix and rebinds the threads mid-run. Requires a prior
  /// place() — re-placement adapts an existing placement.
  void replacement(place::ReplacementPolicy rp) {
    ORWL_CHECK_MSG(!rp.enabled() || policy_.has_value(),
                   "replacement() without a placement policy — call "
                   "place() first");
    replacement_ = rp;
  }

  // --- execution ----------------------------------------------------------

  /// Run on the given backend. Equivalent to backend.run(*this).
  RunReport run(Backend& backend) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] int num_tasks() const {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] int num_locations() const {
    return static_cast<int>(locations_.size());
  }
  [[nodiscard]] const std::vector<LocationDecl>& location_decls() const {
    return locations_;
  }
  [[nodiscard]] const std::vector<TaskDecl>& task_decls() const {
    return tasks_;
  }
  [[nodiscard]] const std::vector<InitHook>& init_hooks() const {
    return inits_;
  }
  [[nodiscard]] std::optional<place::Policy> policy() const {
    return policy_;
  }
  [[nodiscard]] const treematch::Options& treematch_options() const {
    return tm_opts_;
  }
  [[nodiscard]] std::uint64_t place_seed() const { return place_seed_; }
  [[nodiscard]] const std::optional<comm::CommMatrix>& placement_matrix()
      const {
    return place_matrix_;
  }
  [[nodiscard]] const place::ReplacementPolicy& replacement_policy() const {
    return replacement_;
  }

  /// The static communication matrix of the declaration: every pair of
  /// tasks sharing a location gets an affinity of the location's size —
  /// identical to Runtime::static_comm_matrix() on the built program.
  [[nodiscard]] comm::CommMatrix static_comm_matrix() const;

  /// Global priming order: indices (task, access) sorted by access rank,
  /// ties by declaration order. Backends register handles in exactly this
  /// order.
  [[nodiscard]] std::vector<std::pair<int, int>> prime_sequence() const;

  /// Structural checks an executable program must satisfy (bodies present,
  /// iteration counts sane). Throws ContractError.
  void validate_executable() const;

 private:
  friend class TaskBuilder;
  LocationId add_location(std::size_t bytes, std::size_t elem_size,
                          std::string name);

  std::vector<LocationDecl> locations_;
  std::vector<TaskDecl> tasks_;
  std::vector<InitHook> inits_;
  std::optional<place::Policy> policy_;
  std::optional<comm::CommMatrix> place_matrix_;
  std::optional<sync::WaitStrategy> wait_;
  std::optional<mem::MemoryPolicy> memory_;
  place::ReplacementPolicy replacement_;
  treematch::Options tm_opts_;
  std::uint64_t place_seed_ = 42;
  std::size_t next_seq_ = 0;
};

}  // namespace orwl
