#pragma once
// Runtime instrumentation: grant/release counters and the measured
// communication-flow matrix the placement module feeds to Algorithm 1.
// "We exploit application information as it is gathered from ORWL runtime
// to construct a weighted matrix that expresses the communication volume
// between threads" (paper, Sec. II).
//
// The write paths run on the grant hot path (with a location queue lock
// held), so there is no global instrument mutex: the grant/release
// counters are cache-line-padded sharded counters (sync/sharded_counter.h)
// and the flow matrix is striped into per-thread shards, each with its own
// (practically uncontended) lock. Readers — reports, epoch boundaries —
// flush by summing the shards; they are rare and off the hot path.

#include <cstdint>

#include "comm/comm_matrix.h"
#include "obs/metrics.h"
#include "orwl/fwd.h"
#include "support/thread_annotations.h"
#include "sync/mutex.h"
#include "sync/sharded_counter.h"

namespace orwl {

class Instrument {
 public:
  /// The grant/release counters live in `registry` ("orwl.grants.read",
  /// "orwl.grants.write", "orwl.releases") so reports and the metrics dump
  /// see them alongside the rest of the runtime's metrics. The registry
  /// must outlive the Instrument (the Runtime owns both, registry first).
  Instrument(int num_tasks, obs::Registry& registry);

  /// Grow the matrix when tasks are added after construction.
  /// Construction-phase only (enforced): must not race record_flow, so it
  /// asserts that nothing has been recorded yet.
  void resize(int num_tasks);

  void record_grant(AccessMode mode);
  void record_release();

  /// Account `bytes` flowing from task `from` (producer) to `to`
  /// (consumer). Ignored when from < 0 or from == to.
  void record_flow(TaskId from, TaskId to, std::size_t bytes);

  [[nodiscard]] std::uint64_t read_grants() const {
    return read_grants_.read();
  }
  [[nodiscard]] std::uint64_t write_grants() const {
    return write_grants_.read();
  }
  [[nodiscard]] std::uint64_t releases() const { return releases_.read(); }

  /// True until the first record_grant/record_release/record_flow — the
  /// construction-phase window in which resize() is legal.
  [[nodiscard]] bool pristine() const;

  /// Symmetric matrix of bytes exchanged between tasks so far (the flush:
  /// sums the per-thread shards).
  [[nodiscard]] comm::CommMatrix flow_matrix() const;

  // --- epoch windows (online re-placement, place/replace.h) ---------------
  //
  // An epoch is a window of iterations; the runtime marks its start with
  // begin_epoch() and reads the flows accumulated *within* the window with
  // epoch_flow_matrix(). The cumulative flow_matrix() is unaffected.

  /// Mark the start of a new epoch window: subsequent epoch_flow_matrix()
  /// calls report only flows recorded after this point.
  void begin_epoch();

  /// Flows recorded since the last begin_epoch() (or construction).
  [[nodiscard]] comm::CommMatrix epoch_flow_matrix() const;

 private:
  static constexpr int kFlowShards = 8;  // power of two (mask indexing)

  struct alignas(sync::kCacheLine) FlowShard {
    mutable sync::Mutex mu;
    comm::CommMatrix flows ORWL_GUARDED_BY(mu);
  };

  obs::Counter& read_grants_;   // owned by the registry (see ctor note)
  obs::Counter& write_grants_;
  obs::Counter& releases_;
  FlowShard shards_[kFlowShards];
  int order_ = 0;  ///< construction-phase only (resize before run)

  mutable sync::Mutex epoch_mu_;
  /// flow_matrix() snapshot at begin_epoch().
  comm::CommMatrix epoch_base_ ORWL_GUARDED_BY(epoch_mu_);
};

}  // namespace orwl
