#pragma once
// Runtime instrumentation: grant/release counters and the measured
// communication-flow matrix the placement module feeds to Algorithm 1.
// "We exploit application information as it is gathered from ORWL runtime
// to construct a weighted matrix that expresses the communication volume
// between threads" (paper, Sec. II).

#include <atomic>
#include <cstdint>
#include <mutex>

#include "comm/comm_matrix.h"
#include "orwl/fwd.h"

namespace orwl {

class Instrument {
 public:
  explicit Instrument(int num_tasks);

  /// Grow the matrix when tasks are added after construction.
  void resize(int num_tasks);

  void record_grant(AccessMode mode);
  void record_release();

  /// Account `bytes` flowing from task `from` (producer) to `to`
  /// (consumer). Ignored when from < 0 or from == to.
  void record_flow(TaskId from, TaskId to, std::size_t bytes);

  [[nodiscard]] std::uint64_t read_grants() const {
    return read_grants_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t write_grants() const {
    return write_grants_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t releases() const {
    return releases_.load(std::memory_order_relaxed);
  }

  /// Symmetric matrix of bytes exchanged between tasks so far.
  [[nodiscard]] comm::CommMatrix flow_matrix() const;

  // --- epoch windows (online re-placement, place/replace.h) ---------------
  //
  // An epoch is a window of iterations; the runtime marks its start with
  // begin_epoch() and reads the flows accumulated *within* the window with
  // epoch_flow_matrix(). The cumulative flow_matrix() is unaffected.

  /// Mark the start of a new epoch window: subsequent epoch_flow_matrix()
  /// calls report only flows recorded after this point.
  void begin_epoch();

  /// Flows recorded since the last begin_epoch() (or construction).
  [[nodiscard]] comm::CommMatrix epoch_flow_matrix() const;

 private:
  std::atomic<std::uint64_t> read_grants_{0};
  std::atomic<std::uint64_t> write_grants_{0};
  std::atomic<std::uint64_t> releases_{0};
  mutable std::mutex mu_;
  comm::CommMatrix flows_;
  comm::CommMatrix epoch_base_;  ///< snapshot of flows_ at begin_epoch()
};

}  // namespace orwl
