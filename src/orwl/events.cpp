#include "orwl/events.h"

#include "sync/waiter.h"

namespace orwl {

void EventQueue::post(Event ev) {
  {
    std::lock_guard lock(mu_);
    events_.push_back(ev);
  }
  seq_.fetch_add(1, std::memory_order_release);
  sync::notify_one(seq_);
}

std::optional<Event> EventQueue::pop() {
  for (;;) {
    // Read the sequence BEFORE inspecting the backlog: a post that lands
    // after the (empty) inspection has bumped seq_ past `s`, so the wait
    // below returns immediately instead of missing the wake.
    const std::uint32_t s = seq_.load(std::memory_order_acquire);
    {
      std::lock_guard lock(mu_);
      if (!events_.empty()) {
        Event ev = events_.front();
        events_.pop_front();
        return ev;
      }
      if (stopped_) return std::nullopt;
    }
    (void)sync::wait_while_equal(seq_, s, wait_);
  }
}

bool EventQueue::pop_all(std::vector<Event>& out) {
  for (;;) {
    // Same ordering protocol as pop(): read the sequence before the
    // backlog so a concurrent post cannot slip between inspection and
    // park.
    const std::uint32_t s = seq_.load(std::memory_order_acquire);
    {
      std::lock_guard lock(mu_);
      if (!events_.empty()) {
        out.insert(out.end(), events_.begin(), events_.end());
        events_.clear();
        return true;
      }
      if (stopped_) return false;
    }
    (void)sync::wait_while_equal(seq_, s, wait_);
  }
}

void EventQueue::stop() {
  {
    std::lock_guard lock(mu_);
    stopped_ = true;
  }
  seq_.fetch_add(1, std::memory_order_release);
  sync::notify_all(seq_);
}

std::size_t EventQueue::pending() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

}  // namespace orwl
