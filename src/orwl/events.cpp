#include "orwl/events.h"

namespace orwl {

void EventQueue::post(Event ev) {
  {
    std::lock_guard lock(mu_);
    events_.push_back(ev);
  }
  cv_.notify_one();
}

std::optional<Event> EventQueue::pop() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return stopped_ || !events_.empty(); });
  if (events_.empty()) return std::nullopt;
  Event ev = events_.front();
  events_.pop_front();
  return ev;
}

void EventQueue::stop() {
  {
    std::lock_guard lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

std::size_t EventQueue::pending() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

}  // namespace orwl
