#include "orwl/events.h"

#include "obs/trace.h"
#include "sync/mutex.h"
#include "sync/waiter.h"

namespace orwl {

void EventQueue::post(Event ev) {
  {
    sync::LockGuard lock(mu_);
    events_.push_back(ev);
    // order: relaxed — backlog mirror for idle(); mu_ orders the writers.
    backlog_.store(static_cast<std::uint32_t>(events_.size()),
                   std::memory_order_relaxed);
  }
  // lint: allow-rmw(futex sequence bump; the wait side lives in sync/)
  // order: release — the bump publishes the backlog entry; the consumer's
  // acquire load in the waiter pairs with it before re-checking.
  seq_.fetch_add(1, std::memory_order_release);
  sync::notify_one(seq_);
}

void EventQueue::post_batch(std::span<const Event> evs) {
  if (evs.empty()) return;
  {
    sync::LockGuard lock(mu_);
    events_.insert(events_.end(), evs.begin(), evs.end());
    // order: relaxed — backlog mirror for idle(); mu_ orders the writers.
    backlog_.store(static_cast<std::uint32_t>(events_.size()),
                   std::memory_order_relaxed);
  }
  // lint: allow-rmw(futex sequence bump; the wait side lives in sync/)
  // order: release — one bump publishes the whole batch; the consumer's
  // acquire load in the waiter pairs with it before re-checking.
  seq_.fetch_add(1, std::memory_order_release);
  sync::notify_one(seq_);
}

std::optional<Event> EventQueue::pop() {
  for (;;) {
    // order: acquire — read the sequence BEFORE inspecting the backlog: a
    // post that lands after the (empty) inspection has bumped seq_ past
    // `s`, so the wait below returns immediately instead of missing the
    // wake.
    // order: acquire — pairs with post()'s release bump; see above.
    const std::uint32_t s = seq_.load(std::memory_order_acquire);
    {
      sync::LockGuard lock(mu_);
      if (!events_.empty()) {
        Event ev = events_.front();
        events_.pop_front();
        // order: relaxed — backlog mirror for idle(); mu_ orders writers.
        backlog_.store(static_cast<std::uint32_t>(events_.size()),
                       std::memory_order_relaxed);
        return ev;
      }
      if (stopped_) return std::nullopt;
    }
    (void)sync::wait_while_equal(seq_, s, wait_);
  }
}

bool EventQueue::pop_all(std::vector<Event>& out) {
  for (;;) {
    // order: acquire — same ordering protocol as pop(): read the sequence
    // before the backlog so a concurrent post cannot slip between
    // inspection and park.
    const std::uint32_t s = seq_.load(std::memory_order_acquire);
    {
      sync::LockGuard lock(mu_);
      if (!events_.empty()) {
        obs::trace(obs::EventKind::EventPop, events_.size());
        out.insert(out.end(), events_.begin(), events_.end());
        events_.clear();
        // order: relaxed — backlog mirror for idle(); mu_ orders writers.
        backlog_.store(0, std::memory_order_relaxed);
        return true;
      }
      if (stopped_) return false;
    }
    (void)sync::wait_while_equal(seq_, s, wait_);
  }
}

void EventQueue::stop() {
  {
    sync::LockGuard lock(mu_);
    stopped_ = true;
  }
  // lint: allow-rmw(futex sequence bump; the wait side lives in sync/)
  // order: release — publishes stopped_ to poppers the same way post()
  // publishes a backlog entry.
  seq_.fetch_add(1, std::memory_order_release);
  sync::notify_all(seq_);
}

std::size_t EventQueue::pending() const {
  sync::LockGuard lock(mu_);
  return events_.size();
}

}  // namespace orwl
