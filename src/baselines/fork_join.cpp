#include "baselines/fork_join.h"

#include "support/assert.h"
#include "support/thread.h"
#include "topo/binding.h"

namespace orwl::baselines {

ForkJoinPool::ForkJoinPool(
    int num_threads, std::vector<std::optional<topo::Bitmap>> worker_cpusets)
    : num_threads_(num_threads) {
  ORWL_CHECK_MSG(num_threads >= 1, "pool needs at least one thread");
  ORWL_CHECK_MSG(worker_cpusets.empty() ||
                     static_cast<int>(worker_cpusets.size()) == num_threads,
                 "cpuset list size must match thread count");
  if (!worker_cpusets.empty() && worker_cpusets[0])
    topo::bind_current_thread(*worker_cpusets[0]);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int rank = 1; rank < num_threads; ++rank) {
    std::optional<topo::Bitmap> cpuset;
    if (!worker_cpusets.empty())
      cpuset = worker_cpusets[static_cast<std::size_t>(rank)];
    workers_.emplace_back([this, rank, cpuset] { worker_loop(rank, cpuset); });
  }
}

ForkJoinPool::~ForkJoinPool() {
  {
    sync::LockGuard lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::pair<long, long> ForkJoinPool::static_chunk(long n, int rank,
                                                 int nranks) {
  ORWL_CHECK_MSG(rank >= 0 && rank < nranks, "bad rank " << rank);
  const long base = n / nranks;
  const long extra = n % nranks;
  // First `extra` ranks get one item more, like OpenMP schedule(static).
  const long begin = rank * base + std::min<long>(rank, extra);
  const long len = base + (rank < extra ? 1 : 0);
  return {begin, begin + len};
}

void ForkJoinPool::run_chunk(int rank) {
  const long n = end_ - begin_;
  const auto [cb, ce] = static_chunk(n, rank, num_threads_);
  if (cb >= ce) return;
  try {
    (*body_)(begin_ + cb, begin_ + ce);
  } catch (...) {
    sync::LockGuard lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
}

void ForkJoinPool::worker_loop(int rank, std::optional<topo::Bitmap> cpuset) {
  set_current_thread_name("fj:" + std::to_string(rank));
  if (cpuset) topo::bind_current_thread(*cpuset);
  std::uint64_t seen = 0;
  while (true) {
    {
      sync::UniqueLock lock(mu_);
      // Explicit wait loop (not the predicate overload): the analysis can
      // then check the guarded reads against the held lock directly.
      while (!stopping_ && epoch_ == seen) start_cv_.wait(lock);
      if (stopping_) return;
      seen = epoch_;
    }
    run_chunk(rank);
    bool last = false;
    {
      sync::LockGuard lock(mu_);
      last = --remaining_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void ForkJoinPool::parallel_for(long begin, long end,
                                const std::function<void(long, long)>& body) {
  ORWL_CHECK_MSG(begin <= end, "bad range [" << begin << ", " << end << ")");
  {
    sync::LockGuard lock(mu_);
    begin_ = begin;
    end_ = end;
    body_ = &body;
    error_ = nullptr;
    remaining_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the caller is rank 0
  {
    sync::UniqueLock lock(mu_);
    while (remaining_ != 0) done_cv_.wait(lock);
    body_ = nullptr;
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void ForkJoinPool::parallel_for_each(long begin, long end,
                                     const std::function<void(long)>& body) {
  parallel_for(begin, end, [&](long b, long e) {
    for (long i = b; i < e; ++i) body(i);
  });
}

}  // namespace orwl::baselines
