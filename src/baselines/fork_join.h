#pragma once
// ForkJoinPool: an OpenMP-equivalent execution model — a persistent worker
// pool running statically-chunked parallel-for loops with an implicit
// barrier. This is the "OpenMP of equivalent abstraction" baseline of the
// paper's Figure 1: fork-join sweeps with no topology awareness (unless
// cpusets are supplied).

#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"
#include "sync/mutex.h"
#include "topo/bitmap.h"

namespace orwl::baselines {

class ForkJoinPool {
 public:
  /// Use `num_threads` threads in total: the calling thread (rank 0) plus
  /// num_threads - 1 spawned workers. `worker_cpusets`, when provided,
  /// binds rank i to worker_cpusets[i] (empty optional = unbound).
  explicit ForkJoinPool(
      int num_threads,
      std::vector<std::optional<topo::Bitmap>> worker_cpusets = {});
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  [[nodiscard]] int size() const { return num_threads_; }

  /// Run body(chunk_begin, chunk_end) over static chunks of [begin, end);
  /// implicit barrier before returning. The calling thread participates as
  /// rank 0. Exceptions from the body propagate (first one wins). Must be
  /// called from the thread that constructed the pool.
  void parallel_for(long begin, long end,
                    const std::function<void(long, long)>& body);

  /// Convenience: body(i) per index.
  void parallel_for_each(long begin, long end,
                         const std::function<void(long)>& body);

  /// Static chunk [begin, end) handed to `rank` of `nranks` for a global
  /// range of `n` items (OpenMP schedule(static) semantics). Exposed for
  /// tests.
  static std::pair<long, long> static_chunk(long n, int rank, int nranks);

 private:
  void worker_loop(int rank, std::optional<topo::Bitmap> cpuset);
  void run_chunk(int rank) ORWL_EXCLUDES(mu_);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  sync::Mutex mu_;
  // condition_variable_any: waits on the annotated sync::UniqueLock.
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  std::uint64_t epoch_ ORWL_GUARDED_BY(mu_) = 0;  // bumped per parallel_for
  int remaining_ ORWL_GUARDED_BY(mu_) = 0;  // workers still in the epoch
  bool stopping_ ORWL_GUARDED_BY(mu_) = false;

  // Loop descriptor for the current epoch. Written under mu_ by
  // parallel_for; workers read it between the start and done waits, when
  // the protocol (not the mutex) guarantees exclusive stability.
  long begin_ = 0;
  long end_ = 0;
  const std::function<void(long, long)>* body_ = nullptr;
  std::exception_ptr error_ ORWL_GUARDED_BY(mu_);
};

}  // namespace orwl::baselines
