#include "comm/comm_matrix.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace orwl::comm {

CommMatrix::CommMatrix(int order) : order_(order) {
  ORWL_CHECK_MSG(order >= 0, "negative matrix order " << order);
  w_.assign(static_cast<std::size_t>(order) * static_cast<std::size_t>(order),
            0.0);
}

std::size_t CommMatrix::idx(int i, int j) const {
  ORWL_CHECK_MSG(i >= 0 && i < order_ && j >= 0 && j < order_,
                 "index (" << i << ',' << j << ") out of order " << order_);
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(order_) +
         static_cast<std::size_t>(j);
}

double CommMatrix::at(int i, int j) const { return w_[idx(i, j)]; }

void CommMatrix::set(int i, int j, double w) {
  ORWL_CHECK_MSG(w >= 0.0, "negative communication weight " << w);
  w_[idx(i, j)] = w;
  w_[idx(j, i)] = w;
}

void CommMatrix::add(int i, int j, double w) {
  ORWL_CHECK_MSG(w >= 0.0, "negative communication weight " << w);
  w_[idx(i, j)] += w;
  if (i != j) w_[idx(j, i)] += w;
}

double CommMatrix::total_volume() const {
  double sum = 0.0;
  for (int i = 0; i < order_; ++i)
    for (int j = i + 1; j < order_; ++j) sum += at(i, j);
  return sum;
}

void CommMatrix::resize(int order) {
  ORWL_CHECK_MSG(order >= 0, "negative matrix order " << order);
  CommMatrix next(order);
  const int keep = std::min(order, order_);
  for (int i = 0; i < keep; ++i)
    for (int j = 0; j < keep; ++j) next.w_[next.idx(i, j)] = at(i, j);
  *this = std::move(next);
}

CommMatrix CommMatrix::padded(int extra) const {
  ORWL_CHECK_MSG(extra >= 0, "negative padding " << extra);
  CommMatrix out = *this;
  out.resize(order_ + extra);
  return out;
}

CommMatrix CommMatrix::aggregated(
    const std::vector<std::vector<int>>& groups) const {
  const int g = static_cast<int>(groups.size());
  CommMatrix out(g);
  for (int a = 0; a < g; ++a) {
    for (int b = 0; b < g; ++b) {
      if (a == b) continue;
      double sum = 0.0;
      for (int i : groups[static_cast<std::size_t>(a)]) {
        for (int j : groups[static_cast<std::size_t>(b)]) {
          sum += at(i, j);
        }
      }
      out.w_[out.idx(a, b)] = sum;
    }
  }
  return out;
}

void CommMatrix::save_csv(std::ostream& os) const {
  for (int i = 0; i < order_; ++i) {
    for (int j = 0; j < order_; ++j) {
      if (j) os << ',';
      os << at(i, j);
    }
    os << '\n';
  }
}

CommMatrix CommMatrix::load_csv(std::istream& is) {
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) row.push_back(std::stod(cell));
    rows.push_back(std::move(row));
  }
  const int n = static_cast<int>(rows.size());
  CommMatrix m(n);
  for (int i = 0; i < n; ++i) {
    ORWL_CHECK_MSG(static_cast<int>(rows[static_cast<std::size_t>(i)].size()) ==
                       n,
                   "CSV row " << i << " has wrong width");
    for (int j = 0; j < n; ++j)
      m.w_[m.idx(i, j)] = rows[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(j)];
  }
  // Enforce symmetry (average asymmetric inputs).
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (m.at(i, j) + m.at(j, i));
      m.set(i, j, avg);
    }
  return m;
}

}  // namespace orwl::comm
