#pragma once
// Synthetic communication-pattern generators. The block-stencil generator
// reproduces the pattern the ORWL Livermore Kernel 23 decomposition induces
// (Sec. III of the paper): each block exchanges edges with its 4 axis
// neighbours and corners with its 4 diagonal neighbours.

#include <cstdint>

#include "comm/comm_matrix.h"

namespace orwl::comm {

/// Geometry of a 2-D block decomposition.
struct StencilSpec {
  int blocks_x = 1;          ///< number of blocks horizontally
  int blocks_y = 1;          ///< number of blocks vertically
  int block_rows = 1;        ///< matrix rows per block
  int block_cols = 1;        ///< matrix columns per block
  int elem_bytes = 8;        ///< sizeof(double)
  bool periodic = false;     ///< wrap-around neighbours
  bool corners = true;       ///< include diagonal (corner) exchanges
};

/// Thread-per-block stencil communication matrix (order = bx * by).
/// Edge weight = edge length in elements * elem_bytes; corner weight =
/// elem_bytes. Block (x, y) is thread index y * blocks_x + x.
CommMatrix stencil_matrix(const StencilSpec& spec);

/// 1-D ring of n threads exchanging `bytes` with each neighbour.
CommMatrix ring_matrix(int n, double bytes, bool periodic = true);

/// All-pairs uniform communication (the worst case for locality).
CommMatrix uniform_matrix(int n, double bytes);

/// Random sparse symmetric matrix: each pair communicates with probability
/// `density` and weight uniform in [1, max_weight]. Deterministic in `seed`.
CommMatrix random_matrix(int n, double density, double max_weight,
                         std::uint64_t seed);

/// Clustered matrix: n threads in n/cluster_size clusters; heavy intra-
/// cluster weight, light inter-cluster weight. The best case for TreeMatch.
CommMatrix clustered_matrix(int n, int cluster_size, double intra,
                            double inter);

}  // namespace orwl::comm
