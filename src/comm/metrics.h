#pragma once
// Locality metrics for evaluating a thread→PU mapping against a
// communication matrix on a topology. Used by the ablation benches and the
// property tests ("TreeMatch ≥ random").

#include <vector>

#include "comm/comm_matrix.h"
#include "topo/topology.h"

namespace orwl::comm {

/// A mapping assigns thread t to PU index mapping[t] (logical PU index in
/// topo.pus(), NOT the OS index). -1 means unmapped (skipped by metrics).
using Mapping = std::vector<int>;

/// Hop-bytes: sum over thread pairs of weight(i,j) * hop_distance(pu_i,pu_j).
/// Lower is better; 0 when all communicating threads share PUs.
double hop_bytes(const topo::Topology& topo, const CommMatrix& m,
                 const Mapping& mapping);

/// Communication cost with per-level weights: for each pair, the cost factor
/// is level_cost[dca_depth] where dca_depth is the depth of the deepest
/// common ancestor of the two PUs (level_cost.size() must be >= topo.depth()).
/// Models "crossing a higher level is more expensive".
double weighted_cost(const topo::Topology& topo, const CommMatrix& m,
                     const Mapping& mapping,
                     const std::vector<double>& level_cost);

/// Fraction of communication volume that stays below the given depth (e.g.
/// within a package when depth = package depth). In [0, 1].
double locality_fraction(const topo::Topology& topo, const CommMatrix& m,
                         const Mapping& mapping, int depth);

/// Validate a mapping: every entry in [-1, num_pus), and no PU oversubscribed
/// beyond `max_per_pu`. Throws ContractError on violation.
void validate_mapping(const topo::Topology& topo, const Mapping& mapping,
                      int max_per_pu = 1);

/// Normalized distance between two communication matrices in [0, 1]: the
/// total-variation distance of the volume-normalized weight distributions,
/// 0.5 * sum |a_ij/vol(a) - b_ij/vol(b)| over off-diagonal pairs. Scale
/// invariant (measuring twice as long does not register as drift); 0 for
/// identical patterns, 1 for disjoint supports. A zero-volume matrix is at
/// distance 0 from another zero-volume matrix and 1 from any non-empty
/// one. Orders must match. This is the drift metric the online re-placer
/// (place/replace.h) applies to per-epoch flow windows.
double normalized_distance(const CommMatrix& a, const CommMatrix& b);

}  // namespace orwl::comm
