#pragma once
// CommMatrix: the weighted matrix expressing communication volume between
// threads, as gathered from the ORWL runtime (paper, Sec. II). Entry (i, j)
// is the number of bytes threads i and j exchange per iteration. The matrix
// is kept symmetric: at(i, j) == at(j, i).

#include <iosfwd>
#include <string>
#include <vector>

namespace orwl::comm {

class CommMatrix {
 public:
  /// Zero matrix of the given order. order >= 0.
  explicit CommMatrix(int order = 0);

  [[nodiscard]] int order() const { return order_; }

  /// Read entry (i, j).
  [[nodiscard]] double at(int i, int j) const;

  /// Set both (i, j) and (j, i). Diagonal writes are allowed but the
  /// diagonal is ignored by all consumers. Weights must be >= 0.
  void set(int i, int j, double w);

  /// Add to both (i, j) and (j, i) (to (i,i) once when i == j).
  void add(int i, int j, double w);

  /// Sum of all off-diagonal entries, each pair counted once.
  [[nodiscard]] double total_volume() const;

  /// Grow (zero-filled) or shrink to a new order.
  void resize(int order);

  /// Return a copy extended by `extra` zero rows/columns.
  [[nodiscard]] CommMatrix padded(int extra) const;

  /// Aggregate by groups: result order = groups.size(); entry (a, b) is the
  /// sum of at(i, j) over i in groups[a], j in groups[b]. Every index in the
  /// groups must be < order(). This is AggregateComMatrix from Algorithm 1.
  [[nodiscard]] CommMatrix aggregated(
      const std::vector<std::vector<int>>& groups) const;

  /// CSV I/O: one row per line, comma-separated weights.
  void save_csv(std::ostream& os) const;
  static CommMatrix load_csv(std::istream& is);

  bool operator==(const CommMatrix& o) const = default;

 private:
  [[nodiscard]] std::size_t idx(int i, int j) const;
  int order_ = 0;
  std::vector<double> w_;  // row-major order_ x order_
};

}  // namespace orwl::comm
