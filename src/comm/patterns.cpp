#include "comm/patterns.h"

#include "support/assert.h"
#include "support/rng.h"

namespace orwl::comm {

CommMatrix stencil_matrix(const StencilSpec& spec) {
  ORWL_CHECK_MSG(spec.blocks_x >= 1 && spec.blocks_y >= 1,
                 "stencil needs at least one block");
  ORWL_CHECK_MSG(spec.block_rows >= 1 && spec.block_cols >= 1,
                 "blocks must be non-empty");
  const int bx = spec.blocks_x;
  const int by = spec.blocks_y;
  CommMatrix m(bx * by);

  auto tid = [&](int x, int y) { return y * bx + x; };
  auto wrap = [](int v, int n) { return ((v % n) + n) % n; };

  for (int y = 0; y < by; ++y) {
    for (int x = 0; x < bx; ++x) {
      const int self = tid(x, y);
      // Axis neighbours: horizontal edges carry block_rows elements,
      // vertical edges carry block_cols elements.
      struct Step {
        int dx, dy;
        double elems;
      };
      const Step axis[] = {
          {+1, 0, static_cast<double>(spec.block_rows)},
          {0, +1, static_cast<double>(spec.block_cols)},
      };
      for (const auto& s : axis) {
        int nx = x + s.dx;
        int ny = y + s.dy;
        if (spec.periodic) {
          nx = wrap(nx, bx);
          ny = wrap(ny, by);
        } else if (nx >= bx || ny >= by) {
          continue;
        }
        const int other = tid(nx, ny);
        if (other == self) continue;  // degenerate periodic dimension
        m.add(self, other, s.elems * spec.elem_bytes);
      }
      if (spec.corners) {
        const int diag[][2] = {{+1, +1}, {+1, -1}};
        for (const auto& d : diag) {
          int nx = x + d[0];
          int ny = y + d[1];
          if (spec.periodic) {
            nx = wrap(nx, bx);
            ny = wrap(ny, by);
          } else if (nx < 0 || ny < 0 || nx >= bx || ny >= by) {
            continue;
          }
          const int other = tid(nx, ny);
          if (other == self) continue;
          m.add(self, other, static_cast<double>(spec.elem_bytes));
        }
      }
    }
  }
  return m;
}

CommMatrix ring_matrix(int n, double bytes, bool periodic) {
  ORWL_CHECK_MSG(n >= 1, "ring needs at least one thread");
  CommMatrix m(n);
  for (int i = 0; i + 1 < n; ++i) m.add(i, i + 1, bytes);
  if (periodic && n > 2) m.add(n - 1, 0, bytes);
  return m;
}

CommMatrix uniform_matrix(int n, double bytes) {
  ORWL_CHECK_MSG(n >= 1, "matrix needs at least one thread");
  CommMatrix m(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) m.set(i, j, bytes);
  return m;
}

CommMatrix random_matrix(int n, double density, double max_weight,
                         std::uint64_t seed) {
  ORWL_CHECK_MSG(n >= 1, "matrix needs at least one thread");
  ORWL_CHECK_MSG(density >= 0.0 && density <= 1.0,
                 "density must be in [0,1], got " << density);
  ORWL_CHECK_MSG(max_weight >= 1.0, "max_weight must be >= 1");
  Xoshiro256 rng(seed);
  CommMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.uniform() < density)
        m.set(i, j, 1.0 + rng.uniform() * (max_weight - 1.0));
    }
  }
  return m;
}

CommMatrix clustered_matrix(int n, int cluster_size, double intra,
                            double inter) {
  ORWL_CHECK_MSG(n >= 1 && cluster_size >= 1, "bad cluster spec");
  ORWL_CHECK_MSG(intra >= inter && inter >= 0.0,
                 "clustered matrix expects intra >= inter >= 0");
  CommMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool same = (i / cluster_size) == (j / cluster_size);
      const double w = same ? intra : inter;
      if (w > 0.0) m.set(i, j, w);
    }
  }
  return m;
}

}  // namespace orwl::comm
