#include "comm/metrics.h"

#include <cmath>

#include "support/assert.h"
#include "support/cast.h"

namespace orwl::comm {

namespace {

// Apply f(weight, pu_a, pu_b) to every communicating mapped pair.
template <class F>
void for_each_pair(const topo::Topology& topo, const CommMatrix& m,
                   const Mapping& mapping, F&& f) {
  ORWL_CHECK_MSG(ssize_of(mapping) >= m.order(),
                 "mapping shorter than matrix order");
  const auto pus = topo.pus();
  for (int i = 0; i < m.order(); ++i) {
    const int pi = mapping[static_cast<std::size_t>(i)];
    if (pi < 0) continue;
    for (int j = i + 1; j < m.order(); ++j) {
      const int pj = mapping[static_cast<std::size_t>(j)];
      if (pj < 0) continue;
      const double w = m.at(i, j);
      if (w == 0.0) continue;
      f(w, *pus[static_cast<std::size_t>(pi)],
        *pus[static_cast<std::size_t>(pj)]);
    }
  }
}

}  // namespace

double hop_bytes(const topo::Topology& topo, const CommMatrix& m,
                 const Mapping& mapping) {
  double total = 0.0;
  for_each_pair(topo, m, mapping,
                [&](double w, const topo::Object& a, const topo::Object& b) {
                  total += w * topo.hop_distance(a, b);
                });
  return total;
}

double weighted_cost(const topo::Topology& topo, const CommMatrix& m,
                     const Mapping& mapping,
                     const std::vector<double>& level_cost) {
  ORWL_CHECK_MSG(ssize_of(level_cost) >= topo.depth(),
                 "level_cost needs an entry per topology level");
  double total = 0.0;
  for_each_pair(topo, m, mapping,
                [&](double w, const topo::Object& a, const topo::Object& b) {
                  const int dca = topo.common_ancestor_depth(a, b);
                  total += w * level_cost[static_cast<std::size_t>(dca)];
                });
  return total;
}

double locality_fraction(const topo::Topology& topo, const CommMatrix& m,
                         const Mapping& mapping, int depth) {
  double local = 0.0;
  double total = 0.0;
  for_each_pair(topo, m, mapping,
                [&](double w, const topo::Object& a, const topo::Object& b) {
                  total += w;
                  if (topo.common_ancestor_depth(a, b) >= depth) local += w;
                });
  return total == 0.0 ? 1.0 : local / total;
}

double normalized_distance(const CommMatrix& a, const CommMatrix& b) {
  ORWL_CHECK_MSG(a.order() == b.order(),
                 "normalized_distance needs equal orders, got "
                     << a.order() << " and " << b.order());
  const double va = a.total_volume();
  const double vb = b.total_volume();
  if (va == 0.0 && vb == 0.0) return 0.0;
  if (va == 0.0 || vb == 0.0) return 1.0;
  double dist = 0.0;
  for (int i = 0; i < a.order(); ++i)
    for (int j = i + 1; j < a.order(); ++j)
      dist += std::abs(a.at(i, j) / va - b.at(i, j) / vb);
  return 0.5 * dist;
}

void validate_mapping(const topo::Topology& topo, const Mapping& mapping,
                      int max_per_pu) {
  ORWL_CHECK_MSG(max_per_pu >= 1, "max_per_pu must be positive");
  std::vector<int> load(static_cast<std::size_t>(topo.num_pus()), 0);
  for (std::size_t t = 0; t < mapping.size(); ++t) {
    const int pu = mapping[t];
    if (pu < 0) continue;
    ORWL_CHECK_MSG(pu < topo.num_pus(),
                   "thread " << t << " mapped to PU " << pu << " but topology"
                             << " has " << topo.num_pus() << " PUs");
    load[static_cast<std::size_t>(pu)]++;
    ORWL_CHECK_MSG(load[static_cast<std::size_t>(pu)] <= max_per_pu,
                   "PU " << pu << " oversubscribed beyond " << max_per_pu);
  }
}

}  // namespace orwl::comm
