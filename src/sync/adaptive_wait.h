#pragma once
// AdaptiveWaitBudget: the self-tuned spin budget behind
// WaitMode::Auto ("spin_then_park(auto)").
//
// A spin-then-park waiter has one knob: how many spin rounds to burn
// before paying for a futex park. The right setting depends on the wait
// distribution the handle actually sees — a handle whose grants arrive
// within a few hundred rounds should spin just past that; one whose
// grants take a scheduler quantum should park immediately and stop
// wasting its (possibly only) core. That distribution is already
// measured: every acquire records its spin-round count into a per-handle
// log2 histogram (obs/metrics.h, "orwl.wait_rounds/h<id>").
//
// This class closes the loop. The runtime feeds it, at every epoch
// boundary, the DELTA of those histogram buckets over the last epoch;
// retune() re-derives the budget from the window's p50/p95:
//
//   * p50 >= budget  — most waits outlast the spin phase; spinning is
//     pure waste, so collapse toward kMinSpins (park almost immediately).
//   * otherwise      — spins resolve most waits; size the budget to
//     2 * p95 (clamped to [kMinSpins, kMaxSpins]) so the common case
//     stays park-free without chasing outliers.
//
// Waiters re-read spins() on every wait (one relaxed load), so a retune
// takes effect immediately without synchronization. Lives in sync/
// (taking raw bucket arrays, not obs:: types) so the dependency points
// obs -> sync, never back.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace orwl::sync {

class AdaptiveWaitBudget {
 public:
  static constexpr int kMinSpins = 16;     ///< never fully give up spinning
  static constexpr int kMaxSpins = 4096;   ///< cap the burn on long tails
  static constexpr int kInitialSpins = 256;  ///< pre-tuning default

  /// Current spin budget, re-read by the waiter on every wait.
  [[nodiscard]] int spins() const noexcept {
    // order: relaxed — a stale budget only mis-sizes one spin phase; the
    // retune is advisory, not a synchronization event.
    return spins_.load(std::memory_order_relaxed);
  }

  /// Re-derive the budget from one epoch window of wait-round samples.
  /// `buckets` are log2 counts in the obs::Histogram convention — bucket 0
  /// counts exact zeros, bucket i >= 1 counts rounds in [2^(i-1), 2^i - 1]
  /// — already DELTA'd to the window (caller subtracts the previous
  /// snapshot). An empty window keeps the current budget (no evidence, no
  /// change). Returns the budget now in effect.
  int retune(const std::uint64_t* buckets, std::size_t n) noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += buckets[i];
    if (total == 0) return spins();

    const std::uint64_t p50 = quantile_upper(buckets, n, total, 0.50);
    const std::uint64_t p95 = quantile_upper(buckets, n, total, 0.95);
    const int cur = spins();
    int next;
    if (p50 >= static_cast<std::uint64_t>(cur)) {
      // The median wait outlasts the whole spin phase: spinning buys
      // nothing, halve toward the floor (gradual, so one pathological
      // epoch cannot zero a healthy budget).
      next = cur / 2;
    } else {
      const std::uint64_t want = 2 * p95;
      next = want > static_cast<std::uint64_t>(kMaxSpins)
                 ? kMaxSpins
                 : static_cast<int>(want);
    }
    if (next < kMinSpins) next = kMinSpins;
    if (next > kMaxSpins) next = kMaxSpins;
    // order: relaxed — see spins().
    spins_.store(next, std::memory_order_relaxed);
    return next;
  }

 private:
  /// Inclusive upper bound of the bucket holding the q-quantile.
  [[nodiscard]] static std::uint64_t quantile_upper(
      const std::uint64_t* buckets, std::size_t n, std::uint64_t total,
      double q) noexcept {
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < n; ++i) {
      seen += buckets[i];
      if (seen > rank)
        return i == 0 ? 0
                      : (i >= 64 ? ~0ull : (std::uint64_t{1} << i) - 1);
    }
    return 0;  // unreachable with total > 0
  }

  std::atomic<int> spins_{kInitialSpins};
};

}  // namespace orwl::sync
