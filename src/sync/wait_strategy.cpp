#include "sync/wait_strategy.h"

#include <algorithm>
#include <cctype>

#include "support/assert.h"

namespace orwl::sync {

std::string to_string(const WaitStrategy& ws) {
  switch (ws.mode) {
    case WaitMode::Block:
      return "block";
    case WaitMode::Spin:
      return "spin";
    case WaitMode::SpinThenPark:
      return "spin_then_park(" + std::to_string(ws.spins) + ")";
    case WaitMode::Auto:
      return "spin_then_park(auto)";
  }
  return "unknown";
}

WaitStrategy parse_wait_strategy(const std::string& text) {
  std::string s = text;
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "block") return WaitStrategy::block();
  if (s == "spin") return WaitStrategy::spin();
  if (s == "spin_then_park") return WaitStrategy::spin_then_park();
  if (s == "auto") return WaitStrategy::spin_then_park_auto();
  // spin_then_park(N) / spin_then_park:N / spin_then_park(auto)
  const std::string prefix = "spin_then_park";
  if (s.rfind(prefix, 0) == 0 && s.size() > prefix.size()) {
    std::string arg = s.substr(prefix.size());
    if (arg.front() == ':') arg = arg.substr(1);
    else if (arg.front() == '(' && arg.back() == ')')
      arg = arg.substr(1, arg.size() - 2);
    else
      arg.clear();
    if (arg == "auto") return WaitStrategy::spin_then_park_auto();
    if (!arg.empty() &&
        std::all_of(arg.begin(), arg.end(),
                    [](unsigned char c) { return std::isdigit(c); })) {
      try {
        return WaitStrategy::spin_then_park(std::stoi(arg));
      } catch (const std::out_of_range&) {
        ORWL_CHECK_MSG(false, "spin count '" << arg
                                             << "' does not fit an int");
      }
    }
  }
  ORWL_CHECK_MSG(false,
                 "unknown wait strategy '"
                     << text
                     << "'; use block | spin | spin_then_park[(N)] | "
                        "spin_then_park(auto)");
  return {};  // unreachable
}

}  // namespace orwl::sync
