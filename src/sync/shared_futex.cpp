#include "sync/shared_futex.h"

#include <chrono>
#include <thread>

#include "sync/waiter.h"

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

namespace orwl::sync {

namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifdef __linux__
/// One FUTEX_WAIT round (shared — no FUTEX_PRIVATE_FLAG). Returns false
/// only on genuine timeout; value changes, spurious wakes and EINTR all
/// return true and let the caller re-check.
bool futex_wait_once(const std::atomic<std::uint32_t>& word,
                     std::uint32_t old, std::int64_t timeout_ns) noexcept {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_ns > 0) {
    ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
    tsp = &ts;
  }
  // The kernel compares the 32-bit word at this address itself; the atomic
  // wrapper is layout-identical to its value (asserted in the header).
  const long rc =
      ::syscall(SYS_futex,
                reinterpret_cast<const std::uint32_t*>(&word), FUTEX_WAIT,
                old, tsp, nullptr, 0);
  return !(rc == -1 && errno == ETIMEDOUT);
}
#endif

}  // namespace

bool shared_futex_available() noexcept {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

SharedWait shared_futex_wait(const std::atomic<std::uint32_t>& word,
                             std::uint32_t old,
                             std::int64_t timeout_ns) noexcept {
  const std::int64_t deadline = now_ns() + timeout_ns;
  for (;;) {
    // order: acquire — pairs with the waker's release store, publishing
    // whatever the store protects (ring slots, channel state) on return.
    if (word.load(std::memory_order_acquire) != old) return SharedWait::Changed;
    const std::int64_t left = deadline - now_ns();
    if (left <= 0) return SharedWait::TimedOut;
#ifdef __linux__
    if (!futex_wait_once(word, old, left)) {
      // Timed out inside the kernel — one final re-check closes the race
      // where the word changed while the syscall was expiring.
      // order: acquire — same pairing as above.
      return word.load(std::memory_order_acquire) != old
                 ? SharedWait::Changed
                 : SharedWait::TimedOut;
    }
#else
    // Fallback park: cooperative yield, bounded by the deadline re-check
    // above. Correct on any host, just not syscall-cheap.
    std::this_thread::yield();
#endif
  }
}

void shared_futex_wake_all(std::atomic<std::uint32_t>& word) noexcept {
#ifdef __linux__
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
            INT32_MAX, nullptr, nullptr, 0);
#else
  (void)word;  // fallback waiters poll; nothing to kick
#endif
}

SharedWait wait_while_equal_shared(const std::atomic<std::uint32_t>& word,
                                   std::uint32_t old, const WaitStrategy& ws,
                                   std::int64_t timeout_ns,
                                   std::uint32_t* out) noexcept {
  const std::int64_t deadline = now_ns() + timeout_ns;
  const auto finish = [&](std::uint32_t v, SharedWait r) {
    if (out != nullptr) *out = v;
    return r;
  };
  // order: acquire — every load pairs with the waker's release store (the
  // waiter.h contract, shared flavour).
  std::uint32_t v = word.load(std::memory_order_acquire);
  if (v != old) return finish(v, SharedWait::Changed);

  // Spin phase per the strategy — identical shape to waiter.h (relax
  // rounds, then yields), except the deadline is honoured throughout.
  const int spins = ws.mode == WaitMode::Spin       ? INT32_MAX
                    : ws.mode == WaitMode::SpinThenPark ? ws.spins
                                                        : 0;
  for (int round = 0; round < spins; ++round) {
    // order: acquire — same pairing as above.
    v = word.load(std::memory_order_acquire);
    if (v != old) return finish(v, SharedWait::Changed);
    if (now_ns() >= deadline) return finish(v, SharedWait::TimedOut);
    if (round < WaitStrategy::kRelaxRounds)
      cpu_relax();
    else
      std::this_thread::yield();
  }

  for (;;) {
    const std::int64_t left = deadline - now_ns();
    if (left <= 0) {
      // order: acquire — final observation for the caller.
      v = word.load(std::memory_order_acquire);
      return finish(v, v != old ? SharedWait::Changed : SharedWait::TimedOut);
    }
    if (shared_futex_wait(word, old, left) == SharedWait::Changed) {
      // order: acquire — consume the new value after the park reported a
      // change.
      return finish(word.load(std::memory_order_acquire),
                    SharedWait::Changed);
    }
  }
}

}  // namespace orwl::sync
